.PHONY: build test chaos check bench clean

build:
	dune build

test: build
	dune runtest

# The chaos gate: randomized fault schedules against every scheme family,
# exits non-zero on any recovery-invariant violation. Deterministic per seed.
chaos: build
	dune exec bin/ratool.exe -- chaos --trials 50

check: build test chaos

bench: build
	dune exec bench/main.exe

clean:
	dune clean
