.PHONY: build test chaos check bench bench-json bench-check clean

build:
	dune build

test: build
	dune runtest

# The chaos gate: randomized fault schedules against every scheme family,
# exits non-zero on any recovery-invariant violation. Deterministic per seed.
chaos: build
	dune exec bin/ratool.exe -- chaos --trials 50

check: build test chaos

# Full harness: regenerate every table/figure + Bechamel microbenchmarks.
bench: build
	dune exec bench/main.exe

# Refresh the committed perf baselines (full-size buffers and budgets).
# Run on an otherwise idle machine, then commit the BENCH_*.json diff.
bench-json: build
	dune exec bench/main.exe -- --json .

# Perf-regression gate: quick measurements against the committed baselines.
# 20% tolerance assumes the same machine as the baseline; CI uses a looser
# value because its hosts differ from the baseline machine.
bench-check: build
	dune exec bin/ratool.exe -- bench --out _build/bench-current
	dune exec bench/compare.exe -- \
	  BENCH_crypto.json _build/bench-current/BENCH_crypto.json \
	  BENCH_sim.json _build/bench-current/BENCH_sim.json

clean:
	dune clean
