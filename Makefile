.PHONY: build test lint lint-update chaos fleet fleet-chaos replay serve server-chaos server-kill-gate check bench bench-json bench-check clean

build:
	dune build

test: build
	dune runtest

# Static-analysis gate (DESIGN.md §10, §14): determinism, parallel-safety,
# unsafe-code discipline and interface hygiene per file, then the
# interprocedural lock-discipline / protocol-order / secret-flow fixpoint
# over the whole tree, ratcheted against LINT_BASELINE.json (kept empty).
# Exits non-zero on any non-baselined finding; stale entries are drift.
# The tool prints file count + wall time on stderr so the fixpoint cost
# stays visible.
lint: build
	dune exec bin/ralint.exe -- --gate-empty-baseline

# Accept the current findings into the ratchet baseline (review the
# LINT_BASELINE.json diff before committing — prefer fixing or an
# in-source `ralint: allow` waiver over ratcheting).
lint-update: build
	dune exec bin/ralint.exe -- --update-baseline

# The chaos gate: randomized fault schedules against every scheme family,
# exits non-zero on any recovery-invariant violation. Deterministic per seed.
chaos: build
	dune exec bin/ratool.exe -- chaos --trials 50

# The fleet gate: 200 devices under the health supervisor with scheduled
# crash/partition/corruption/malware faults; asserts convergence invariants
# and that counters are bit-identical across job counts. Exits non-zero on
# any violation.
fleet-chaos: build
	dune exec bin/ratool.exe -- fleet-chaos --devices 200 --jobs 4 --check-jobs 1

# The sharded roll-call gate: 100k virtually provisioned devices attested
# through Fleet.sharded_roll_call, then re-run at another jobs value and
# another shard count; the fleet Merkle root and every exact counter must
# be bit-identical across all three runs (DESIGN.md §12).
fleet: build
	dune exec bin/ratool.exe -- fleet --devices 100000 --shards 8 \
	  --check-jobs 2 --check-shards 3

# The crash-recovery gate: record a campaign into a write-ahead journal,
# kill the verifier mid-campaign (torn WAL tail), resume from
# journal+snapshot and require a digest bit-identical to a never-killed
# run at two job counts; then replay the repaired journal record-by-record.
replay: build
	dune exec bin/ratool.exe -- fleet-chaos --devices 200 --jobs 4 \
	  --kill-at-round 5 --resume --check-jobs 1 --journal _build/fleet-chaos-journal
	dune exec bin/ratool.exe -- replay --journal _build/fleet-chaos-journal/j4

# Run the attestation control plane on localhost with a journal under
# _build (kill -9 it and re-run: it restarts through Journal.restart).
# Drive it from another shell with `dune exec bin/ratool.exe -- loadgen`.
serve: build
	dune exec bin/ratool.exe -- serve --dir _build/ra-server

# The control-plane chaos gate, in process: seeded campaigns over the
# simulated network under torn writes / stalls / resets / corruption with
# a kill -9 mid-ingest; asserts bit-identical recovery, convergence via
# retry/backoff, and per-seed + cross-jobs determinism.
server-chaos: build
	dune exec bin/ratool.exe -- server-chaos --trials 5

# The real-socket kill gate: start `ratool serve`, run loadgen against
# it, kill -9 the server mid-ingest, restart it, and require the
# recovered fleet root and counters to match an unkilled reference run.
server-kill-gate: build
	sh scripts/server_kill_gate.sh

check: build test lint chaos fleet fleet-chaos replay server-chaos

# Full harness: regenerate every table/figure + Bechamel microbenchmarks.
bench: build
	dune exec bench/main.exe

# Refresh the committed perf baselines (full-size buffers and budgets).
# Run on an otherwise idle machine, then commit the BENCH_*.json diff.
bench-json: build
	dune exec bench/main.exe -- --json .

# Perf-regression gate, two passes over the same quick run:
#   1. exact metrics (event/byte/hit counts) — deterministic on any host,
#      compared for equality, failure fails the target;
#   2. wall-time metrics — tolerance-gated and advisory (the `-` prefix):
#      20% suits the baseline machine, other hosts will drift.
bench-check: build
	dune exec bin/ratool.exe -- bench --out _build/bench-current
	dune exec bench/compare.exe -- --only exact \
	  BENCH_crypto.json _build/bench-current/BENCH_crypto.json \
	  BENCH_sim.json _build/bench-current/BENCH_sim.json
	-dune exec bench/compare.exe -- --only wall \
	  BENCH_crypto.json _build/bench-current/BENCH_crypto.json \
	  BENCH_sim.json _build/bench-current/BENCH_sim.json

clean:
	dune clean
