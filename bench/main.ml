(* Benchmark and regeneration harness.

   Part 1 regenerates every table and figure of the paper (the experiment
   harness output the evaluation section is judged by); part 2 runs Bechamel
   microbenchmarks of the real from-scratch crypto and the simulator, which
   double as the "real implementation" shape check behind Fig. 2. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate the paper's artifacts                            *)
(* ------------------------------------------------------------------ *)

let banner title =
  let rule = String.make 74 '=' in
  Printf.printf "\n%s\n== %s\n%s\n" rule title rule

let timed label f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  Printf.printf "[%s regenerated in %.2f s]\n" label (Unix.gettimeofday () -. t0);
  result

let regenerate_fig1 () =
  banner "E1 / Fig. 1 — on-demand RA timeline";
  let device = Ra_device.Device.create Ra_device.Device.default_config in
  let verifier = Ra_core.Verifier.of_device device in
  let events = ref None in
  Ra_core.Protocol.on_demand device verifier Ra_core.Mp.default_config
    ~net_delay:(Ra_sim.Timebase.ms 40) ~auth_time:(Ra_sim.Timebase.us 200)
    ~on_done:(fun e -> events := Some e)
    ();
  Ra_device.Device.run device;
  match !events with
  | None -> print_endline "protocol did not complete"
  | Some e ->
    print_string (Ra_core.Timeline.render (Ra_core.Protocol.events_to_markers e));
    Printf.printf "verdict: %s\n"
      (Ra_core.Verifier.verdict_to_string e.Ra_core.Protocol.verdict)

let regenerate_fig2 () =
  banner "E2 / Fig. 2 — hash & signature timing model (ODROID-XU4 calibration)";
  let cost = Ra_device.Cost_model.odroid_xu4 in
  print_string (Ra_experiments.Fig2.render cost);
  print_newline ();
  print_string (Ra_experiments.Fig2.render_claims cost);
  print_newline ();
  print_string (Ra_experiments.Fig2.crossover_table cost)

let regenerate_table1 () =
  banner "E3 / Table 1 — measured feature matrix";
  print_string (Ra_experiments.Table1.render ~trials:40 ())

let regenerate_fig4 () =
  banner "E4 / Fig. 4 — temporal consistency";
  print_string (Ra_experiments.Fig4.render ())

let regenerate_fig5 () =
  banner "E6 / Fig. 5 — Quality of Attestation";
  print_string (Ra_experiments.Fig5.render_story ());
  print_newline ();
  print_string
    (Ra_experiments.Fig5.detection_sweep ~trials:60 ~t_m:(Ra_sim.Timebase.s 10)
       ~dwells:(List.map Ra_sim.Timebase.s [ 1; 2; 4; 6; 8; 10; 12 ])
       ());
  print_newline ();
  print_string (Ra_experiments.Fig5.freshness_table ())

let regenerate_smarm () =
  banner "E5 / Section 3.2 — SMARM escape probabilities";
  print_string
    (Ra_experiments.Smarm_sweep.sweep_rounds ~blocks:64 ~max_rounds:14
       ~game_trials:200_000 ~seed:7 ());
  print_newline ();
  print_string
    (Ra_experiments.Smarm_sweep.sweep_blocks ~blocks_list:[ 4; 16; 64; 256; 1024 ]
       ~trials:200_000 ~seed:7 ());
  let escape, (lo, hi) =
    Ra_experiments.Smarm_sweep.simulated_escape_rate ~blocks:64 ~rounds:1 ~trials:200
      ~seed:7 ()
  in
  Printf.printf
    "full-device simulation (B=64, 1 round, 200 trials): escape %.3f [%.3f, %.3f]\n"
    escape lo hi

let regenerate_fire_alarm () =
  banner "E7 / Section 2.5 — fire alarm latency";
  print_string (Ra_experiments.Fire_alarm.render ())

let regenerate_ablations () =
  banner "Ablations";
  print_string (Ra_experiments.Ablations.lock_granularity ());
  print_newline ();
  print_string (Ra_experiments.Ablations.measurement_order ());
  print_newline ();
  print_string (Ra_experiments.Ablations.smarm_block_count ~trials:50_000 ());
  print_newline ();
  print_string (Ra_experiments.Ablations.zero_data_countermeasure ());
  print_newline ();
  print_string (Ra_experiments.Ablations.platform_contrast ());
  print_newline ();
  print_string (Ra_experiments.Ablations.hybrid_schemes ~trials:30 ())

let regenerate_swarm () =
  banner "E10 — collective attestation (extension)";
  let open Ra_swarm in
  let show label r =
    Printf.printf "%-32s healthy=%4d tampered=%3d unresponsive=%4d messages=%5d round=%s\n"
      label r.Swarm.healthy r.Swarm.tampered r.Swarm.unresponsive r.Swarm.messages
      (Ra_sim.Timebase.to_string r.Swarm.duration)
  in
  show "31 nodes, clean" (Swarm.run Swarm.default_config ~infected:[]);
  show "31 nodes, 3 infected" (Swarm.run Swarm.default_config ~infected:[ 4; 11; 27 ]);
  show "127 nodes, 10% loss"
    (Swarm.run { Swarm.default_config with Swarm.nodes = 127; loss = 0.1 } ~infected:[ 9 ])

let regenerate_schedulability () =
  banner "Workload-level schedulability (rate-monotonic task sets)";
  print_string (Ra_device.Taskset.schedulability_table ())

let regenerate_incremental () =
  banner "Incremental (Merkle) attestation — extension";
  print_string (Ra_experiments.Incremental_eval.render ())

let regenerate_latency () =
  banner "Real-time latency profile + lock occupancy";
  print_string (Ra_experiments.Latency_profile.render ())

let regenerate_dos () =
  banner "DoS resilience (Section 3.3 SeED claim)";
  print_string (Ra_experiments.Dos.render ())

let regenerate_swatt () =
  banner "Software-based attestation (Section 2.1 background)";
  print_string
    (Ra_core.Swatt.separation_table ~trials:150 Ra_core.Swatt.default_config
       ~overhead:1.15 ~jitter_levels:[ 0.0; 0.01; 0.05; 0.15; 0.30; 0.60 ])

let regenerate_heartbeat () =
  banner "DARPA-style heartbeat absence detection (extension)";
  let open Ra_swarm in
  let capture =
    { Heartbeat.node = 5; from_ = Ra_sim.Timebase.s 20; until_ = Ra_sim.Timebase.s 30 }
  in
  let r = Heartbeat.run Heartbeat.default_config ~captures:[ capture ] in
  Printf.printf "10 s capture of node 5: alarmed=[%s] false=%d missed=%d\n"
    (String.concat "; " (List.map string_of_int r.Heartbeat.alarmed))
    r.Heartbeat.false_alarms r.Heartbeat.missed;
  print_string
    (Heartbeat.threshold_sweep
       { Heartbeat.default_config with Heartbeat.loss = 0.2 }
       ~capture_length:(Ra_sim.Timebase.s 6)
       ~factors:[ 1.5; 2.5; 4.0; 7.0 ])

let regenerate_chaos () =
  banner "Chaos — fault injection vs recovery invariants (extension)";
  print_string (Ra_experiments.Chaos.render (Ra_experiments.Chaos.run ~trials:30 ()));
  print_newline ();
  print_string (Ra_experiments.Dos.render_duplicates ())

let regenerate_fleet () =
  banner "Fleet attestation with HKDF-derived per-device keys (extension)";
  let fleet = Ra_core.Fleet.create ~master_secret:(Bytes.of_string "bench-master") () in
  let config =
    { Ra_device.Device.default_config with Ra_device.Device.block_size = 256 }
  in
  let ids = [ "hvac-1"; "hvac-2"; "door-lock"; "smoke-3"; "camera-9" ] in
  List.iter (fun id -> ignore (Ra_core.Fleet.provision fleet id ~config ())) ids;
  let infected = Ra_core.Fleet.device fleet "door-lock" in
  let rng = Ra_sim.Prng.split (Ra_sim.Engine.prng infected.Ra_device.Device.engine) in
  ignore
    (Ra_malware.Malware.install infected ~rng ~block:10 ~priority:8
       Ra_malware.Malware.Static);
  let roll = Ra_core.Fleet.attest_all fleet Ra_core.Mp.default_config in
  Printf.printf "clean:    %s\n" (String.concat ", " roll.Ra_core.Fleet.clean);
  Printf.printf "tampered: %s\n" (String.concat ", " roll.Ra_core.Fleet.tampered)

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel microbenchmarks of the real implementations        *)
(* ------------------------------------------------------------------ *)

let buffer_64k = Ra_sim.Prng.bytes (Ra_sim.Prng.create ~seed:1) 65536

let hash_tests =
  List.map
    (fun hash ->
      Test.make
        ~name:(Ra_crypto.Algo.hash_name hash ^ " 64KiB")
        (Staged.stage (fun () -> ignore (Ra_crypto.Algo.digest hash buffer_64k))))
    Ra_crypto.Algo.all_hashes
  @
  (* Interleaved kernel over the same 64 KiB, cut into 1 KiB messages. *)
  let batch = Array.init 64 (fun i -> Bytes.sub buffer_64k (i * 1024) 1024) in
  [
    Test.make ~name:"SHA-256 64KiB batch (2 lanes)"
      (Staged.stage (fun () ->
           ignore (Ra_crypto.Sha256_multi.digest_many ~lanes:2 batch)));
    Test.make ~name:"SHA-256 64KiB batch (4 lanes)"
      (Staged.stage (fun () ->
           ignore (Ra_crypto.Sha256_multi.digest_many ~lanes:4 batch)));
  ]

let mac_tests =
  let key = Bytes.of_string "bench-mac-key" in
  [
    Test.make ~name:"HMAC-SHA-256 64KiB"
      (Staged.stage (fun () -> ignore (Ra_crypto.Hmac.Sha256.mac ~key buffer_64k)));
    Test.make ~name:"BLAKE2b keyed 64KiB"
      (Staged.stage (fun () -> ignore (Ra_crypto.Blake2b.mac ~key buffer_64k)));
    (let pairs =
       Array.init 64 (fun i ->
           let m = Bytes.sub buffer_64k (i * 1024) 1024 in
           (m, Ra_crypto.Hmac.Sha256.mac ~key m))
     in
     Test.make ~name:"HMAC-SHA-256 verify_many 64x1KiB"
       (Staged.stage (fun () ->
            ignore (Ra_crypto.Hmac.Sha256.verify_many ~key pairs))));
  ]

let bignum_tests =
  let open Ra_bignum in
  let m = Nat.of_hex Ra_pk.Rsa_keys.n1024 in
  let base = Nat.of_decimal "123456789123456789123456789" in
  let e65537 = Nat.of_int 65537 in
  let a = Nat.of_hex (String.sub Ra_pk.Rsa_keys.n2048 0 128) in
  let b = Nat.of_hex (String.sub Ra_pk.Rsa_keys.n2048 128 128) in
  [
    Test.make ~name:"Nat.mul 512x512 bits"
      (Staged.stage (fun () -> ignore (Nat.mul a b)));
    Test.make ~name:"Nat.divmod 1024/512 bits"
      (Staged.stage (fun () -> ignore (Nat.divmod m a)));
    Test.make ~name:"Nat.mod_pow e=65537 mod 1024-bit"
      (Staged.stage (fun () -> ignore (Nat.mod_pow ~base ~exponent:e65537 ~modulus:m)));
    Test.make ~name:"Nat.mod_pow_fast e=65537 mod 1024-bit"
      (Staged.stage (fun () -> ignore (Nat.mod_pow_fast ~base ~exponent:e65537 ~modulus:m)));
  ]

let pk_tests =
  let msg = Bytes.of_string "benchmark message" in
  let rsa = Ra_pk.Rsa.test_key_1024 in
  let rsa_signature = Ra_pk.Rsa.sign ~hash:Ra_pk.Rsa.SHA_256 rsa msg in
  let rng = Ra_sim.Prng.create ~seed:2 in
  let kp = Ra_pk.Ecdsa.generate Ra_pk.Ec.secp256r1 rng in
  let ecdsa_signature = Ra_pk.Ecdsa.sign ~hash:Ra_crypto.Algo.SHA_256 kp rng msg in
  [
    Test.make ~name:"RSA-1024 sign"
      (Staged.stage (fun () -> ignore (Ra_pk.Rsa.sign ~hash:Ra_pk.Rsa.SHA_256 rsa msg)));
    Test.make ~name:"RSA-1024 verify"
      (Staged.stage (fun () ->
           ignore
             (Ra_pk.Rsa.verify ~hash:Ra_pk.Rsa.SHA_256 rsa.Ra_pk.Rsa.pub ~msg
                ~signature:rsa_signature)));
    Test.make ~name:"ECDSA-P256 sign"
      (Staged.stage (fun () ->
           ignore (Ra_pk.Ecdsa.sign ~hash:Ra_crypto.Algo.SHA_256 kp rng msg)));
    Test.make ~name:"ECDSA-P256 verify"
      (Staged.stage (fun () ->
           ignore
             (Ra_pk.Ecdsa.verify ~hash:Ra_crypto.Algo.SHA_256 ~curve:Ra_pk.Ec.secp256r1
                ~public:kp.Ra_pk.Ecdsa.q msg ecdsa_signature)));
  ]

let extra_crypto_tests =
  let cmac_key = Bytes.of_string "0123456789abcdef" in
  let memory = Ra_sim.Prng.bytes (Ra_sim.Prng.create ~seed:5) 16384 in
  let leaves = Array.init 64 (fun i -> Bytes.sub memory (i * 256) 256) in
  let tree = Ra_core.Merkle.build Ra_crypto.Algo.SHA_256 ~leaves in
  let det_key =
    Ra_pk.Ecdsa.keypair_of_scalar Ra_pk.Ec.secp256r1 (Ra_bignum.Nat.of_int 123456789)
  in
  [
    Test.make ~name:"AES-128-CMAC 16KiB"
      (Staged.stage (fun () -> ignore (Ra_crypto.Cmac.mac ~key:cmac_key memory)));
    Test.make ~name:"HKDF-SHA-256 derive 32B"
      (Staged.stage (fun () ->
           ignore
             (Ra_crypto.Hkdf.derive ~ikm:cmac_key ~info:(Bytes.of_string "bench")
                ~length:32 ())));
    Test.make ~name:"Merkle update (64 leaves)"
      (Staged.stage (fun () ->
           Ra_core.Merkle.update tree ~index:17 ~content:(Bytes.sub memory 0 256)));
    Test.make ~name:"ECDSA-P256 sign (RFC 6979)"
      (Staged.stage (fun () ->
           ignore
             (Ra_pk.Ecdsa.sign_deterministic ~hash:Ra_crypto.Algo.SHA_256 det_key
                (Bytes.of_string "bench message"))));
  ]

let sim_tests =
  [
    Test.make ~name:"engine: 10k timer events"
      (Staged.stage (fun () ->
           let eng = Ra_sim.Engine.create () in
           for i = 1 to 10_000 do
             ignore (Ra_sim.Engine.schedule eng ~at:i (fun _ -> ()))
           done;
           Ra_sim.Engine.run eng));
    Test.make ~name:"full SMART measurement (64 blocks)"
      (Staged.stage (fun () ->
           let device =
             Ra_device.Device.create
               { Ra_device.Device.default_config with Ra_device.Device.block_size = 256 }
           in
           Ra_core.Mp.run device Ra_core.Mp.default_config
             ~nonce:(Bytes.of_string "bench-nonce")
             ~on_complete:(fun _ -> ())
             ();
           Ra_device.Device.run device));
    (* recovery-latency overhead: a full attestation session retrying
       through 20% loss and 20% frame corruption, vs the ideal-channel
       session above *)
    Test.make ~name:"reliable session (20% loss, 20% corruption)"
      (Staged.stage (fun () ->
           let device =
             Ra_device.Device.create
               { Ra_device.Device.default_config with Ra_device.Device.block_size = 256 }
           in
           let verifier = Ra_core.Verifier.of_device device in
           Ra_core.Reliable_protocol.run device verifier
             {
               Ra_core.Reliable_protocol.default_config with
               Ra_core.Reliable_protocol.channel =
                 {
                   Ra_sim.Channel.ideal with
                   Ra_sim.Channel.delay = Ra_sim.Timebase.ms 5;
                   loss = 0.2;
                   corrupt = 0.2;
                 };
               retry_timeout = Ra_sim.Timebase.s 1;
               max_attempts = 10;
             }
             ~on_done:(fun _ -> ())
             ();
           Ra_device.Device.run device));
  ]

let run_group name tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:Measure.[| run |] in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  (* Bechamel hands results back as a Hashtbl; fold in bucket order and
     sort at the fold site so the printed table never depends on it. *)
  let rows =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (Hashtbl.fold
         (fun key ols_result acc ->
           let estimate =
             match Analyze.OLS.estimates ols_result with
             | Some [ est ] -> est
             | Some _ | None -> nan
           in
           (key, estimate) :: acc)
         results [])
  in
  Printf.printf "\n-- %s --\n" name;
  List.iter
    (fun (key, ns) ->
      if Float.is_nan ns then Printf.printf "%-44s (no estimate)\n" key
      else if ns > 1e6 then Printf.printf "%-44s %10.3f ms/run\n" key (ns /. 1e6)
      else if ns > 1e3 then Printf.printf "%-44s %10.3f us/run\n" key (ns /. 1e3)
      else Printf.printf "%-44s %10.1f ns/run\n" key ns)
    rows;
  rows

(* Shape check: the real from-scratch hashes should preserve the figure's
   "BLAKE2b fast, hashing dominates beyond ~1 MB" story on this host too. *)
let shape_check rows =
  let contains needle k =
    let n = String.length needle in
    let rec scan i = i + n <= String.length k && (String.sub k i n = needle || scan (i + 1)) in
    scan 0
  in
  let find needle = List.find_opt (fun (k, _) -> contains needle k) rows in
  match (find "BLAKE2b", find "SHA-256") with
  | Some (_, b2b), Some (_, sha) when not (Float.is_nan b2b || Float.is_nan sha) ->
    Printf.printf
      "\nshape check: host BLAKE2b %.1f MB/s vs SHA-256 %.1f MB/s (pure-OCaml\n\
boxed-Int64 BLAKE2b can trail SHA-256 here; the calibrated model, not host\n\
speed, carries the Fig. 2 ordering)\n"
      (65536. /. b2b *. 1e9 /. 1e6)
      (65536. /. sha *. 1e9 /. 1e6)
  | _ -> print_endline "\nshape check: estimates unavailable"

(* ------------------------------------------------------------------ *)
(* --json mode: emit BENCH_crypto.json / BENCH_sim.json                *)
(* ------------------------------------------------------------------ *)

let emit_json ~quick dir =
  let open Ra_experiments.Benchkit in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let crypto =
    { suite = "crypto"; metrics = crypto_metrics ~quick () }
  in
  let sim = { suite = "sim"; metrics = sim_metrics ~quick () } in
  List.iter
    (fun (file, suite) ->
      let path = Filename.concat dir file in
      write_file path suite;
      Printf.printf "wrote %s (%d metrics)\n" path (List.length suite.metrics))
    [ ("BENCH_crypto.json", crypto); ("BENCH_sim.json", sim) ]

let usage_text =
  "usage: bench/main.exe [--json [DIR]] [--quick] [--jobs N]\n\
   \  (no flags)      regenerate all tables/figures + Bechamel microbenches\n\
   \  --json [DIR]    write BENCH_crypto.json and BENCH_sim.json to DIR (default .)\n\
   \  --quick         shrink buffers/budgets for a fast smoke run\n\
   \  --jobs N        domain count for the parallel experiment drivers\n\
   \  --help          show this message"

(* unknown flags: usage on stderr, non-zero exit — same contract as ratool *)
let usage () =
  prerr_endline usage_text;
  exit 2

let () =
  let json_dir = ref None and quick = ref false in
  let rec parse = function
    | [] -> ()
    | ("--help" | "-h" | "-help") :: _ ->
      print_endline usage_text;
      exit 0
    | "--json" :: rest -> (
      match rest with
      | dir :: rest when String.length dir > 0 && dir.[0] <> '-' ->
        json_dir := Some dir;
        parse rest
      | rest ->
        json_dir := Some ".";
        parse rest)
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some jobs when jobs >= 1 ->
        Ra_parallel.set_default_jobs jobs;
        parse rest
      | _ -> usage ())
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !json_dir with
  | Some dir ->
    emit_json ~quick:!quick dir;
    exit 0
  | None -> ()

let () =
  timed "fig1" regenerate_fig1;
  timed "fig2" regenerate_fig2;
  timed "table1" regenerate_table1;
  timed "fig4" regenerate_fig4;
  timed "fig5" regenerate_fig5;
  timed "smarm" regenerate_smarm;
  timed "fire-alarm" regenerate_fire_alarm;
  timed "ablations" regenerate_ablations;
  timed "swarm" regenerate_swarm;
  timed "swatt" regenerate_swatt;
  timed "dos" regenerate_dos;
  timed "latency" regenerate_latency;
  timed "incremental" regenerate_incremental;
  timed "schedulability" regenerate_schedulability;
  timed "heartbeat" regenerate_heartbeat;
  timed "fleet" regenerate_fleet;
  timed "chaos" regenerate_chaos;
  banner "Bechamel microbenchmarks (real from-scratch implementations)";
  let hash_rows = run_group "hash" hash_tests in
  ignore (run_group "mac" mac_tests);
  ignore (run_group "bignum" bignum_tests);
  ignore (run_group "pk" pk_tests);
  ignore (run_group "crypto-extras" extra_crypto_tests);
  ignore (run_group "sim" sim_tests);
  shape_check hash_rows
