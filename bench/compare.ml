(* Diff a bench run against a committed baseline; exit non-zero on
   regression. Usage:

     compare.exe [--tolerance 0.2] [--only exact|wall] BASELINE.json CURRENT.json [...]

   Files pair up positionally: baseline1 current1 baseline2 current2 ...
   The default 20% tolerance suits same-machine comparisons; CI passes a
   looser value because the committed baselines come from another host.

   --only exact restricts the comparison to deterministic count metrics
   (compared for equality — the gating CI pass); --only wall restricts it
   to the remaining wall-time/throughput metrics (tolerance-gated, run
   non-gating in CI because they flake across runners). *)

type only = All | Exact_only | Wall_only

let () =
  let tolerance = ref 0.2 in
  let only = ref All in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t > 0. ->
        tolerance := t;
        parse rest
      | _ ->
        prerr_endline "compare: --tolerance expects a positive float";
        exit 2)
    | "--only" :: v :: rest -> (
      match v with
      | "exact" ->
        only := Exact_only;
        parse rest
      | "wall" ->
        only := Wall_only;
        parse rest
      | _ ->
        prerr_endline "compare: --only expects 'exact' or 'wall'";
        exit 2)
    | flag :: _ when String.length flag > 1 && flag.[0] = '-' ->
      Printf.eprintf "compare: unknown flag %s\n" flag;
      exit 2
    | file :: rest ->
      files := file :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let files = List.rev !files in
  let rec pairs = function
    | [] -> []
    | baseline :: current :: rest -> (baseline, current) :: pairs rest
    | [ _ ] ->
      prerr_endline
        "compare: expected BASELINE CURRENT file pairs (odd count given)";
      exit 2
  in
  let pairs = pairs files in
  if pairs = [] then begin
    prerr_endline
      "usage: compare.exe [--tolerance T] BASELINE.json CURRENT.json [...]";
    exit 2
  end;
  let ok =
    List.for_all
      (fun (baseline_file, current_file) ->
        let open Ra_experiments.Benchkit in
        match (read_file baseline_file, read_file current_file) with
        | exception (Parse_error msg | Sys_error msg) ->
          Printf.eprintf "compare: %s\n" msg;
          false
        | baseline, current ->
          Printf.printf "== %s: %s vs %s%s\n" baseline.suite baseline_file
            current_file
            (match !only with
            | All -> ""
            | Exact_only -> " (exact metrics only)"
            | Wall_only -> " (wall metrics only)");
          let keep m =
            match !only with
            | All -> true
            | Exact_only -> m.exact
            | Wall_only -> not m.exact
          in
          let baseline =
            { baseline with metrics = List.filter keep baseline.metrics }
          in
          let comparisons =
            compare_suites ~tolerance:!tolerance ~baseline ~current
          in
          let report, ok = render_comparison ~tolerance:!tolerance comparisons in
          print_string report;
          ok)
      pairs
  in
  exit (if ok then 0 else 1)
