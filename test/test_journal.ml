(* Tests for the write-ahead journal: record framing and torn-tail
   truncation, the fault-injecting in-memory disk, crash-consistent
   snapshots, supervisor state serialization, and the crash/resume/replay
   loop over a recorded fleet-chaos campaign. *)

open Ra_journal
module Prng = Ra_sim.Prng
module Supervisor = Ra_supervisor.Supervisor
module Fleet_chaos = Ra_experiments.Fleet_chaos

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- event codec --------------------------------------------------------- *)

let arb_event =
  let open QCheck in
  let value =
    oneof
      [
        map (fun i -> Event.I i) int;
        map (fun s -> Event.S s) string;
        map (fun s -> Event.B (Bytes.of_string s)) string;
      ]
  in
  map
    (fun (tag, fields) -> Event.make tag fields)
    (pair (string_of_size (Gen.int_bound 12)) (small_list (pair string value)))

let prop_event_roundtrip =
  QCheck.Test.make ~name:"event encode/decode round trip" ~count:500 arb_event
    (fun e ->
      match Event.decode (Event.encode e) with
      | Ok e' -> Event.equal e e'
      | Error _ -> false)

(* --- WAL framing --------------------------------------------------------- *)

let encode_log payloads =
  let b = Buffer.create 256 in
  List.iteri
    (fun i p -> Buffer.add_bytes b (Wal.encode ~seq:(i + 1) (Bytes.of_string p)))
    payloads;
  Buffer.to_bytes b

let test_wal_roundtrip () =
  let payloads = [ "alpha"; ""; "gamma with a longer payload" ] in
  let scan = Wal.scan (encode_log payloads) in
  check Alcotest.(option string) "clean" None scan.Wal.damage;
  check
    Alcotest.(list string)
    "payloads" payloads
    (List.map Bytes.to_string scan.Wal.records)

(* Cutting the log at any byte boundary loses at most the record the cut
   lands in — every fully-written record before the cut survives. *)
let prop_wal_torn_tail =
  QCheck.Test.make ~name:"torn tail truncates to a record boundary" ~count:300
    QCheck.(pair (small_list (string_of_size (Gen.int_bound 20))) (int_bound 1000))
    (fun (payloads, cut) ->
      let log = encode_log payloads in
      let cut = min cut (Bytes.length log) in
      let scan = Wal.scan (Bytes.sub log 0 cut) in
      let n = List.length scan.Wal.records in
      (* accepted records are exactly the original prefix *)
      List.for_all2
        (fun a b -> a = Bytes.to_string b)
        (List.filteri (fun i _ -> i < n) payloads)
        scan.Wal.records
      && scan.Wal.good_bytes <= cut
      && (cut = Bytes.length log || scan.Wal.damage <> None
         || scan.Wal.good_bytes = cut))

let test_wal_duplicated_tail_rejected () =
  let log = encode_log [ "one"; "two" ] in
  let last = Wal.encode ~seq:2 (Bytes.of_string "two") in
  (* a crash re-appends the tail record: CRC is fine, seq repeats *)
  let dup = Bytes.cat log last in
  let scan = Wal.scan dup in
  check Alcotest.int "only the original records" 2 (List.length scan.Wal.records);
  check Alcotest.bool "damage reported" true (scan.Wal.damage <> None)

let test_wal_corrupt_middle () =
  let log = encode_log [ "aaaa"; "bbbb"; "cccc" ] in
  Bytes.set log 20 '\xff';
  (* inside some record *)
  let scan = Wal.scan log in
  check Alcotest.bool "damage reported" true (scan.Wal.damage <> None);
  check Alcotest.bool "prefix only" true (List.length scan.Wal.records < 3)

(* --- journal over the fault-injecting disk ------------------------------- *)

let ev i = Event.make "tick" [ ("n", Event.I i) ]

(* Acknowledged (committed) records survive any crash; recovery yields a
   contiguous prefix of what was appended, no less than what was
   committed, and replays to the same events. *)
let prop_crash_never_loses_acknowledged =
  QCheck.Test.make ~name:"crash never loses an acknowledged record" ~count:200
    QCheck.(pair (int_bound 60) (pair (int_bound 59) int))
    (fun (total, (committed_at, crash_seed)) ->
      let total = max 1 total in
      let committed_at = min committed_at total in
      let store = Disk.Mem.create () in
      let disk = Disk.Mem.disk store in
      let j = Journal.create ~snapshot_every:1000 disk in
      for i = 1 to total do
        Journal.append j (ev i);
        if i = committed_at then Journal.commit j
      done;
      Disk.Mem.crash ~rng:(Prng.create ~seed:crash_seed) store;
      match Journal.recover disk with
      | Error _ -> false
      | Ok r ->
        let n = Array.length r.Journal.events in
        n >= committed_at && n <= total
        && Array.for_all Fun.id
             (Array.mapi (fun i e -> Event.equal e (ev (i + 1))) r.Journal.events))

(* A snapshot whose rename the crash undoes must fall back cleanly to the
   previous snapshot (or none), never to a half-written file. *)
let prop_snapshot_power_loss =
  QCheck.Test.make ~name:"power loss mid-snapshot falls back" ~count:200
    QCheck.int (fun crash_seed ->
      let store = Disk.Mem.create () in
      let disk = Disk.Mem.disk store in
      let j = Journal.create ~snapshot_every:1 disk in
      let state n = Bytes.of_string (Printf.sprintf "state-%d" n) in
      for round = 1 to 3 do
        Journal.append j (ev round);
        Journal.commit j;
        Journal.snapshot j ~round ~state:(state round)
      done;
      Disk.Mem.crash ~rng:(Prng.create ~seed:crash_seed) store;
      match Journal.recover disk with
      | Error _ -> false
      | Ok r -> (
        match r.Journal.snapshot with
        | None -> true
        | Some (round, covered, s) ->
          round >= 1 && round <= 3
          && Bytes.equal s (state round)
          && covered <= Array.length r.Journal.events))

let test_journal_resume_truncates () =
  let store = Disk.Mem.create () in
  let disk = Disk.Mem.disk store in
  let j = Journal.create disk in
  for i = 1 to 5 do
    Journal.append j (ev i)
  done;
  Journal.commit j;
  (* two uncommitted records past the consistency point, plus a torn tail *)
  Journal.append j (ev 6);
  Journal.append j (ev 7);
  disk.Disk.append Journal.wal_file (Bytes.of_string "RJ\x00");
  let r = Result.get_ok (Journal.recover disk) in
  check Alcotest.int "recovered through the intact records" 7
    (Array.length r.Journal.events);
  check Alcotest.bool "torn tail reported" true (r.Journal.damage <> None);
  let j2 = Journal.resume disk r ~keep:5 in
  Journal.append j2 (ev 6);
  Journal.commit j2;
  let r2 = Result.get_ok (Journal.recover disk) in
  check Alcotest.(option string) "resumed log clean" None r2.Journal.damage;
  check Alcotest.int "5 kept + 1 new" 6 (Array.length r2.Journal.events);
  check Alcotest.bool "seq continued" true
    (Event.equal r2.Journal.events.(5) (ev 6))

let test_verifier_divergence () =
  let recorded = [| ev 1; ev 2; ev 3 |] in
  let v = Journal.verifier recorded in
  Journal.append v (ev 1);
  Journal.append v (ev 99);
  check Alcotest.bool "divergence detected" true
    (Result.is_error (Journal.verified v));
  let v2 = Journal.verifier recorded in
  Array.iter (Journal.append v2) recorded;
  check Alcotest.bool "clean replay verifies" true
    (Result.is_ok (Journal.verified v2))

(* --- prng state ---------------------------------------------------------- *)

let test_prng_state_roundtrip () =
  let g = Prng.create ~seed:42 in
  for _ = 1 to 17 do
    ignore (Prng.bits64 g)
  done;
  let saved = Prng.to_bytes g in
  let expected = List.init 8 (fun _ -> Prng.bits64 g) in
  let g2 = Prng.create ~seed:0 in
  Prng.set_bytes g2 saved;
  let got = List.init 8 (fun _ -> Prng.bits64 g2) in
  check Alcotest.bool "same stream after restore" true (expected = got)

(* --- supervisor state + crash/resume/replay ------------------------------ *)

(* Small but fully chaotic fleet: 30 devices cover every fault kind. *)
let devices = 30
let seed = 11
let max_rounds = 20

let test_supervisor_serialize_load_roundtrip () =
  let r = Fleet_chaos.run ~devices ~seed ~jobs:1 ~max_rounds () in
  check Alcotest.(list string) "chaos invariants" [] r.Fleet_chaos.violations;
  (* a second identical world, loaded from the first one's image *)
  let r2 = Fleet_chaos.run ~devices ~seed ~jobs:1 ~max_rounds () in
  check Alcotest.string "identical campaigns" r.Fleet_chaos.report.Supervisor.counter_digest
    r2.Fleet_chaos.report.Supervisor.counter_digest

let kill_resume_matches ~record_jobs ~resume_jobs ~kill_at_round =
  let reference = Fleet_chaos.run ~devices ~seed ~jobs:1 ~max_rounds () in
  check Alcotest.(list string) "reference invariants" []
    reference.Fleet_chaos.violations;
  let store = Disk.Mem.create () in
  let disk = Disk.Mem.disk store in
  let killed =
    Fleet_chaos.record_killed ~disk ~devices ~seed ~jobs:record_jobs ~max_rounds
      ~kill_at_round ()
  in
  check Alcotest.bool "killed mid-campaign" true killed;
  match Fleet_chaos.resume ~disk ~jobs:resume_jobs () with
  | Error e -> Alcotest.failf "resume failed: %s" e
  | Ok resumed ->
    check Alcotest.(list string) "resumed invariants" []
      resumed.Fleet_chaos.violations;
    check Alcotest.string "bit-identical digest"
      reference.Fleet_chaos.report.Supervisor.counter_digest
      resumed.Fleet_chaos.report.Supervisor.counter_digest;
    check Alcotest.int "same detection count"
      (List.length reference.Fleet_chaos.report.Supervisor.detections)
      (List.length resumed.Fleet_chaos.report.Supervisor.detections);
    (* the finished journal replays bit-identically at any jobs value *)
    (match Fleet_chaos.replay ~disk ~jobs:1 () with
    | Error e -> Alcotest.failf "replay failed: %s" e
    | Ok replayed ->
      check Alcotest.string "replay digest"
        reference.Fleet_chaos.report.Supervisor.counter_digest
        replayed.Fleet_chaos.report.Supervisor.counter_digest)

let test_kill_resume_jobs1 () =
  kill_resume_matches ~record_jobs:1 ~resume_jobs:1 ~kill_at_round:5

let test_kill_resume_jobs_mixed () =
  (* recorded under parallel execution, resumed sequentially: the journal
     and the continuation must not care *)
  kill_resume_matches ~record_jobs:2 ~resume_jobs:2 ~kill_at_round:7

let test_resume_refuses_garbage () =
  let store = Disk.Mem.create () in
  let disk = Disk.Mem.disk store in
  check Alcotest.bool "no journal" true
    (Result.is_error (Fleet_chaos.resume ~disk ()));
  disk.Disk.write Journal.wal_file (Bytes.of_string "not a journal at all");
  disk.Disk.sync Journal.wal_file;
  check Alcotest.bool "garbage rejected" true
    (Result.is_error (Fleet_chaos.resume ~disk ()))

(* Recovery of a corrupted journal must never materialize an illegal
   health edge: flip payload bytes at random and require that recovery
   plus state reconstruction either fails cleanly or yields a state whose
   every history chains legally (Supervisor.load re-validates). *)
let prop_corrupt_journal_never_illegal_edge =
  QCheck.Test.make ~name:"corrupted journal never yields an illegal edge"
    ~count:20
    QCheck.(int_bound 1_000_000)
    (fun flip_seed ->
      let store = Disk.Mem.create () in
      let disk = Disk.Mem.disk store in
      let killed =
        Fleet_chaos.record_killed ~disk ~devices ~seed ~jobs:1 ~max_rounds
          ~kill_at_round:5 ()
      in
      let rng = Prng.create ~seed:flip_seed in
      (match disk.Disk.read Journal.wal_file with
      | Some buf when Bytes.length buf > 0 ->
        for _ = 0 to 3 do
          let i = Prng.int rng ~bound:(Bytes.length buf) in
          Bytes.set buf i (Char.chr (Prng.int rng ~bound:256))
        done;
        disk.Disk.write Journal.wal_file buf;
        disk.Disk.sync Journal.wal_file
      | _ -> ());
      killed
      &&
      match Fleet_chaos.resume ~disk () with
      | Error _ -> true (* clean refusal is a correct outcome *)
      | Ok r ->
        (* if it does resume (corruption landed past the CRC-accepted
           prefix), the campaign must still satisfy every invariant —
           including "every recorded transition is a declared edge" *)
        r.Fleet_chaos.violations = [])

let () =
  Alcotest.run "ra_journal"
    [
      ( "codec",
        [
          qtest prop_event_roundtrip;
          Alcotest.test_case "wal round trip" `Quick test_wal_roundtrip;
          qtest prop_wal_torn_tail;
          Alcotest.test_case "duplicated tail rejected" `Quick
            test_wal_duplicated_tail_rejected;
          Alcotest.test_case "corrupt middle truncates" `Quick
            test_wal_corrupt_middle;
        ] );
      ( "crash",
        [
          qtest prop_crash_never_loses_acknowledged;
          qtest prop_snapshot_power_loss;
          Alcotest.test_case "resume truncates uncommitted tail" `Quick
            test_journal_resume_truncates;
          Alcotest.test_case "verifier catches divergence" `Quick
            test_verifier_divergence;
        ] );
      ( "state",
        [
          Alcotest.test_case "prng state round trip" `Quick
            test_prng_state_roundtrip;
          Alcotest.test_case "identical campaigns, identical digests" `Slow
            test_supervisor_serialize_load_roundtrip;
        ] );
      ( "resume",
        [
          Alcotest.test_case "kill at 5, resume, jobs 1" `Slow
            test_kill_resume_jobs1;
          Alcotest.test_case "kill at 7, resume, jobs 2" `Slow
            test_kill_resume_jobs_mixed;
          Alcotest.test_case "refuses garbage journals" `Quick
            test_resume_refuses_garbage;
          qtest prop_corrupt_journal_never_illegal_edge;
        ] );
    ]
