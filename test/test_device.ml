(* Tests for the device substrate: memory + locks + journal, CPU arbiter,
   cost model calibration, and the critical application. *)

open Ra_sim
open Ra_device

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let image n = Device.firmware_image ~seed:99 ~size:n

let make_memory () = Memory.create ~image:(image 1024) ~block_size:256

(* --- Memory ------------------------------------------------------------------ *)

let test_memory_shape () =
  let m = make_memory () in
  check Alcotest.int "blocks" 4 (Memory.block_count m);
  check Alcotest.int "block size" 256 (Memory.block_size m);
  check Alcotest.int "size" 1024 (Memory.size m);
  Alcotest.check_raises "bad image"
    (Invalid_argument "Memory.create: image must be a positive multiple of block_size")
    (fun () -> ignore (Memory.create ~image:(image 1000) ~block_size:256))

let test_memory_write_read () =
  let m = make_memory () in
  let payload = Bytes.of_string "hello" in
  (match Memory.write m ~time:5 ~block:1 ~offset:10 payload with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write should succeed");
  let content = Memory.read_block m 1 in
  check Alcotest.string "written bytes visible" "hello"
    (Bytes.sub_string content 10 5);
  Alcotest.check_raises "slice exceeds block"
    (Invalid_argument "Memory.write: slice exceeds block") (fun () ->
      ignore (Memory.write m ~time:6 ~block:1 ~offset:252 payload));
  Alcotest.check_raises "block out of range"
    (Invalid_argument "Memory: block out of range") (fun () ->
      ignore (Memory.read_block m 4))

let test_memory_locking () =
  let m = make_memory () in
  Memory.lock m 2;
  check Alcotest.bool "locked" true (Memory.is_locked m 2);
  check Alcotest.int "locked count" 1 (Memory.locked_count m);
  (match Memory.write m ~time:1 ~block:2 ~offset:0 (Bytes.of_string "x") with
  | Error (Memory.Locked 2) -> ()
  | Error (Memory.Locked _) | Ok () -> Alcotest.fail "expected Locked 2");
  (* locked write must not modify *)
  check Alcotest.bytes "content untouched"
    (Bytes.sub (Memory.initial_image m) 512 256)
    (Memory.read_block m 2);
  Memory.unlock m 2;
  check Alcotest.bool "unlocked" false (Memory.is_locked m 2);
  Memory.lock_all m;
  check Alcotest.int "all locked" 4 (Memory.locked_count m);
  Memory.unlock_all m;
  check Alcotest.int "all released" 0 (Memory.locked_count m)

let test_memory_unlock_notification () =
  let m = make_memory () in
  let events = ref [] in
  Memory.subscribe_unlock m (fun b -> events := b :: !events);
  Memory.lock m 1;
  Memory.unlock m 1;
  Memory.unlock m 1;
  (* idempotent: only one edge *)
  check (Alcotest.list Alcotest.int) "one notification" [ 1 ] !events;
  Memory.lock_all m;
  Memory.unlock_all m;
  check Alcotest.int "notified for each block" 5 (List.length !events)

let test_memory_journal () =
  let m = make_memory () in
  let w time block c =
    match Memory.write m ~time ~block ~offset:0 (Bytes.make 4 c) with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "write failed"
  in
  w 10 0 'a';
  w 20 1 'b';
  w 30 0 'c';
  (* content_at reconstructs points in time *)
  let at t = Bytes.sub_string (Memory.block_content_at m ~time:t ~block:0) 0 4 in
  check Alcotest.string "before writes" (Bytes.sub_string (Memory.initial_image m) 0 4) (at 5);
  check Alcotest.string "after first" "aaaa" (at 15);
  check Alcotest.string "at exact instant" "aaaa" (at 10);
  check Alcotest.string "after second" "cccc" (at 35);
  let full = Memory.content_at m ~time:25 in
  check Alcotest.string "full image mid-way" "aaaa" (Bytes.sub_string full 0 4);
  check Alcotest.string "other block" "bbbb" (Bytes.sub_string full 256 4);
  check Alcotest.int "writes in (5, 25]" 2 (List.length (Memory.writes_between m 5 25));
  check Alcotest.int "writes in (10, 30]" 2 (List.length (Memory.writes_between m 10 30));
  check Alcotest.bytes "content_at now = snapshot" (Memory.snapshot m)
    (Memory.content_at m ~time:1000)

let test_memory_cow_lock () =
  let m = make_memory () in
  let frozen = Memory.read_block m 1 in
  Memory.lock_cow m 1;
  check Alcotest.bool "cow counts as locked" true (Memory.is_locked m 1);
  check Alcotest.bool "no shadow yet" false (Memory.has_shadow m 1);
  (* writes succeed but readers keep the frozen view *)
  (match Memory.write m ~time:10 ~block:1 ~offset:0 (Bytes.of_string "diverted") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "cow write should succeed");
  check Alcotest.bool "shadow exists" true (Memory.has_shadow m 1);
  check Alcotest.bytes "reader sees frozen content" frozen (Memory.read_block m 1);
  check Alcotest.int "nothing journaled during the lock" 0
    (List.length (Memory.writes_between m 0 100));
  (* second write into the same shadow *)
  (match Memory.write m ~time:20 ~block:1 ~offset:8 (Bytes.of_string "!") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "second cow write should succeed");
  (* release merges, journaled at the release time *)
  let notified = ref [] in
  Memory.subscribe_unlock m (fun b -> notified := b :: !notified);
  Memory.unlock ~time:50 m 1;
  check Alcotest.string "merged content visible" "diverted!"
    (Bytes.sub_string (Memory.read_block m 1) 0 9);
  check (Alcotest.list Alcotest.int) "unlock notified" [ 1 ] !notified;
  (match Memory.writes_between m 0 100 with
  | [ (50, 1) ] -> ()
  | _ -> Alcotest.fail "merge should journal exactly once at release time");
  check Alcotest.bytes "content before release time is frozen" frozen
    (Memory.block_content_at m ~time:49 ~block:1)

let test_memory_cow_clean_release () =
  let m = make_memory () in
  Memory.lock_all_cow m;
  check Alcotest.int "all cow-locked" 4 (Memory.locked_count m);
  Memory.unlock_all ~time:5 m;
  check Alcotest.int "no journal entries without shadows" 0
    (List.length (Memory.writes_between m 0 100))

(* Regression: releasing a cow lock with a pending shadow used to default
   to time:0, journaling the merge at virtual time 0 and corrupting every
   temporal-consistency reconstruction after it. It must now demand an
   explicit release time. *)
let test_memory_unlock_requires_time_with_shadow () =
  let m = make_memory () in
  Memory.lock_cow m 2;
  (match Memory.write m ~time:10 ~block:2 ~offset:0 (Bytes.of_string "shadowed") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "cow write should succeed");
  Alcotest.check_raises "unlock without ~time raises"
    (Invalid_argument
       "Memory.unlock: releasing a cow lock with a pending shadow requires \
        ~time")
    (fun () -> Memory.unlock m 2);
  (* the rejected release must leave the lock and shadow untouched *)
  check Alcotest.bool "still locked" true (Memory.is_locked m 2);
  check Alcotest.bool "shadow retained" true (Memory.has_shadow m 2);
  Memory.unlock ~time:30 m 2;
  (match Memory.writes_between m 0 100 with
  | [ (30, 2) ] -> ()
  | _ -> Alcotest.fail "merge should journal at the explicit release time");
  (* shadow-free cow locks and plain locks still release without a time *)
  Memory.lock_cow m 3;
  Memory.unlock m 3;
  Memory.lock m 1;
  Memory.unlock m 1;
  check Alcotest.int "all released" 0 (Memory.locked_count m)

let test_memory_versions () =
  let m = make_memory () in
  check Alcotest.int "fresh block at version 0" 0 (Memory.version m 1);
  (match Memory.write m ~time:5 ~block:1 ~offset:0 (Bytes.of_string "x") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write should succeed");
  check Alcotest.int "write bumps" 1 (Memory.version m 1);
  check Alcotest.int "other blocks untouched" 0 (Memory.version m 2);
  (* rejected write on a hard lock must not bump *)
  Memory.lock m 1;
  (match Memory.write m ~time:6 ~block:1 ~offset:0 (Bytes.of_string "y") with
  | Error (Memory.Locked _) -> ()
  | Ok () -> Alcotest.fail "locked write should fail");
  check Alcotest.int "rejected write does not bump" 1 (Memory.version m 1);
  Memory.unlock m 1;
  (* diverted cow writes bump only at merge: readers see frozen bytes, so
     the version (the cache key) must stay frozen with them *)
  Memory.lock_cow m 1;
  (match Memory.write m ~time:10 ~block:1 ~offset:0 (Bytes.of_string "z") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "cow write should succeed");
  check Alcotest.int "diverted write does not bump" 1 (Memory.version m 1);
  Memory.unlock ~time:20 m 1;
  check Alcotest.int "merge bumps once" 2 (Memory.version m 1);
  (* with_block exposes the live bytes without copying *)
  Memory.with_block m 1 (fun content ->
      check Alcotest.char "live view" 'z' (Bytes.get content 0))

let prop_journal_replay =
  QCheck.Test.make ~name:"content_at replays any prefix" ~count:50
    QCheck.(list_of_size Gen.(1 -- 20) (pair (int_range 0 3) (int_range 0 255)))
    (fun writes ->
      let m = make_memory () in
      let snapshots =
        List.mapi
          (fun i (block, v) ->
            let time = (i + 1) * 10 in
            (match
               Memory.write m ~time ~block ~offset:0 (Bytes.make 8 (Char.chr v))
             with
            | Ok () -> ()
            | Error _ -> assert false);
            (time, Memory.snapshot m))
          writes
      in
      List.for_all
        (fun (time, snap) -> Bytes.equal snap (Memory.content_at m ~time))
        snapshots)

(* --- Cpu --------------------------------------------------------------------- *)

let test_cpu_fifo_same_priority () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng in
  let log = ref [] in
  let submit name =
    ignore
      (Cpu.submit cpu ~name ~priority:1 ~duration:(Timebase.ms 10)
         ~on_complete:(fun () -> log := name :: !log)
         ())
  in
  submit "a";
  submit "b";
  submit "c";
  Engine.run eng;
  check (Alcotest.list Alcotest.string) "fifo" [ "a"; "b"; "c" ] (List.rev !log);
  check Alcotest.int "clock = total work" (Timebase.ms 30) (Engine.now eng)

let test_cpu_preemption () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng in
  let finish = ref [] in
  ignore
    (Cpu.submit cpu ~name:"low" ~priority:1 ~duration:(Timebase.ms 100)
       ~on_complete:(fun () -> finish := ("low", Engine.now eng) :: !finish)
       ());
  ignore
    (Engine.schedule eng ~at:(Timebase.ms 30) (fun _ ->
         ignore
           (Cpu.submit cpu ~name:"high" ~priority:5 ~duration:(Timebase.ms 20)
              ~on_complete:(fun () -> finish := ("high", Engine.now eng) :: !finish)
              ())));
  Engine.run eng;
  (match List.rev !finish with
  | [ ("high", t_high); ("low", t_low) ] ->
    check Alcotest.int "high finishes at 50ms" (Timebase.ms 50) t_high;
    check Alcotest.int "low resumes and finishes at 120ms" (Timebase.ms 120) t_low
  | _ -> Alcotest.fail "unexpected completion order");
  check Alcotest.int "low busy time" (Timebase.ms 100) (Cpu.busy_ns cpu ~name:"low");
  check Alcotest.int "high busy time" (Timebase.ms 20) (Cpu.busy_ns cpu ~name:"high");
  check Alcotest.int "total busy" (Timebase.ms 120) (Cpu.total_busy_ns cpu)

let test_cpu_atomic_not_preempted () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng in
  let finish = ref [] in
  ignore
    (Cpu.submit cpu ~atomic:true ~name:"atomic" ~priority:1
       ~duration:(Timebase.ms 100)
       ~on_complete:(fun () -> finish := ("atomic", Engine.now eng) :: !finish)
       ());
  ignore
    (Engine.schedule eng ~at:(Timebase.ms 30) (fun _ ->
         ignore
           (Cpu.submit cpu ~name:"high" ~priority:5 ~duration:(Timebase.ms 20)
              ~on_complete:(fun () -> finish := ("high", Engine.now eng) :: !finish)
              ())));
  Engine.run eng;
  match List.rev !finish with
  | [ ("atomic", t_atomic); ("high", t_high) ] ->
    check Alcotest.int "atomic runs to completion" (Timebase.ms 100) t_atomic;
    check Alcotest.int "high deferred until after" (Timebase.ms 120) t_high
  | _ -> Alcotest.fail "atomic job should not be preempted"

let test_cpu_cancel () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng in
  let fired = ref false in
  let job =
    Cpu.submit cpu ~name:"victim" ~priority:1 ~duration:(Timebase.ms 10)
      ~on_complete:(fun () -> fired := true)
      ()
  in
  Cpu.cancel cpu job;
  Engine.run eng;
  check Alcotest.bool "cancelled job silent" false !fired;
  check Alcotest.bool "not complete" false (Cpu.is_complete job)

let test_cpu_zero_duration () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng in
  let fired = ref false in
  ignore
    (Cpu.submit cpu ~name:"instant" ~priority:1 ~duration:Timebase.zero
       ~on_complete:(fun () -> fired := true)
       ());
  Engine.run eng;
  check Alcotest.bool "zero-duration job completes" true !fired

let test_cpu_running () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng in
  check Alcotest.bool "idle" true (Cpu.running cpu = None);
  ignore
    (Cpu.submit cpu ~name:"job" ~priority:3 ~duration:(Timebase.ms 5)
       ~on_complete:(fun () -> ())
       ());
  check Alcotest.bool "running visible" true (Cpu.running cpu = Some ("job", 3));
  Engine.run eng;
  check Alcotest.bool "idle again" true (Cpu.running cpu = None)

(* The arbiter conserves work: with any mix of priorities and durations and
   no idling gaps, total busy time equals the sum of demands and the last
   completion lands exactly at that sum. *)
let prop_cpu_work_conservation =
  QCheck.Test.make ~name:"cpu conserves work" ~count:100
    QCheck.(list_of_size Gen.(1 -- 12) (pair (int_range 1 5) (int_range 1 2000)))
    (fun jobs ->
      let eng = Engine.create () in
      let cpu = Cpu.create eng in
      let total = List.fold_left (fun acc (_, d) -> acc + d) 0 jobs in
      let completions = ref 0 in
      List.iter
        (fun (priority, duration) ->
          ignore
            (Cpu.submit cpu ~name:"j" ~priority ~duration
               ~on_complete:(fun () -> incr completions)
               ()))
        jobs;
      Engine.run eng;
      !completions = List.length jobs
      && Cpu.total_busy_ns cpu = total
      && Engine.now eng = total)

(* Under copy-on-write, the merged block equals exactly what a plain write
   sequence would have produced. *)
let prop_cow_merge_equals_plain =
  QCheck.Test.make ~name:"cow merge = plain writes" ~count:100
    QCheck.(list_of_size Gen.(1 -- 10) (pair (int_range 0 248) (string_of_size Gen.(1 -- 8))))
    (fun writes ->
      let plain = make_memory () in
      let cow = make_memory () in
      Memory.lock_cow cow 1;
      List.iteri
        (fun i (offset, data) ->
          let payload = Bytes.of_string data in
          (match Memory.write plain ~time:i ~block:1 ~offset payload with
          | Ok () -> ()
          | Error _ -> assert false);
          match Memory.write cow ~time:i ~block:1 ~offset payload with
          | Ok () -> ()
          | Error _ -> assert false)
        writes;
      Memory.unlock ~time:1000 cow 1;
      Bytes.equal (Memory.read_block plain 1) (Memory.read_block cow 1))

(* --- Cost model ----------------------------------------------------------------- *)

let test_cost_model_anchors () =
  let cost = Cost_model.odroid_xu4 in
  let t100 =
    Timebase.to_seconds
      (Cost_model.hash_time cost Ra_crypto.Algo.SHA_256 ~bytes:(100 * 1024 * 1024))
  in
  check Alcotest.bool "paper anchor: ~0.9 s per 100 MB" true (t100 > 0.8 && t100 < 1.0);
  let t2g =
    Timebase.to_seconds
      (Cost_model.hash_time cost Ra_crypto.Algo.BLAKE2b ~bytes:(2 * 1024 * 1024 * 1024))
  in
  check Alcotest.bool "paper anchor: ~14 s per 2 GB" true (t2g > 13. && t2g < 16.)

let test_cost_model_monotonic () =
  let cost = Cost_model.odroid_xu4 in
  List.iter
    (fun hash ->
      let t1 = Cost_model.hash_time cost hash ~bytes:1_000_000 in
      let t2 = Cost_model.hash_time cost hash ~bytes:2_000_000 in
      check Alcotest.bool "monotonic in size" true (t2 > t1))
    Ra_crypto.Algo.all_hashes

let test_crossover () =
  let cost = Cost_model.odroid_xu4 in
  let bytes = Cost_model.crossover_bytes cost Ra_crypto.Algo.SHA_256 Cost_model.RSA_2048 in
  (* hashing that many bytes should cost about one signature *)
  let hash_cost = Cost_model.hash_time_raw cost Ra_crypto.Algo.SHA_256 ~bytes in
  let sign_cost = Cost_model.sign_time cost Cost_model.RSA_2048 in
  let ratio = Timebase.to_seconds hash_cost /. Timebase.to_seconds sign_cost in
  check Alcotest.bool "crossover balances costs" true (ratio > 0.95 && ratio < 1.05)

let test_signature_names () =
  List.iter
    (fun alg ->
      match Cost_model.signature_of_name (Cost_model.signature_name alg) with
      | Some alg' -> check Alcotest.bool "roundtrip" true (alg = alg')
      | None -> Alcotest.fail "name roundtrip failed")
    Cost_model.all_signatures

let test_measurement_time_composition () =
  let cost = Cost_model.odroid_xu4 in
  let plain = Cost_model.measurement_time cost Ra_crypto.Algo.SHA_256 ~bytes:1000 () in
  let signed =
    Cost_model.measurement_time cost Ra_crypto.Algo.SHA_256
      ~signature:Cost_model.ECDSA_256 ~bytes:1000 ()
  in
  check Alcotest.int "signature adds its cost"
    (Timebase.add plain (Cost_model.sign_time cost Cost_model.ECDSA_256))
    signed

(* --- Device ------------------------------------------------------------------------ *)

let test_device_create () =
  let device = Device.create Device.default_config in
  check Alcotest.int "blocks" 64 (Memory.block_count device.Device.memory);
  check Alcotest.int "attested bytes" (1024 * 1024 * 1024) (Device.attested_bytes device);
  check Alcotest.bool "no data blocks by default" false (Device.is_data_block device 0)

let test_device_firmware_deterministic () =
  let a = Device.firmware_image ~seed:5 ~size:512 in
  let b = Device.firmware_image ~seed:5 ~size:512 in
  let c = Device.firmware_image ~seed:6 ~size:512 in
  check Alcotest.bytes "same seed same image" a b;
  check Alcotest.bool "different seed different image" false (Bytes.equal a c)

let test_device_validation () =
  Alcotest.check_raises "data block out of range"
    (Invalid_argument "Device.create: data block out of range") (fun () ->
      ignore (Device.create { Device.default_config with Device.data_blocks = [ 64 ] }))

(* --- App --------------------------------------------------------------------------- *)

let app_fixture ?(data_blocks = []) ?(period = Timebase.ms 100) () =
  let device =
    Device.create { Device.default_config with Device.block_size = 256; data_blocks }
  in
  let config =
    {
      App.default_config with
      App.period;
      execution = Timebase.ms 2;
      deadline = Some (Timebase.ms 50);
      data_blocks;
      write_bytes = 16;
      first_activation = Timebase.zero;
    }
  in
  (device, App.start device.Device.engine device.Device.cpu device.Device.memory config)

let test_app_periodic () =
  let device, app = app_fixture () in
  Engine.run ~until:(Timebase.ms 950) device.Device.engine;
  App.stop app;
  Engine.run ~until:(Timebase.s 2) device.Device.engine;
  check Alcotest.int "10 activations in 950 ms at 100 ms period" 10 (App.activations app);
  check Alcotest.int "all completed" 10 (App.completions app);
  check Alcotest.int "no deadline misses unloaded" 0 (App.deadline_misses app);
  check Alcotest.bool "latency = execution time" true
    (Stats.max_value (App.latencies app) < 0.003)

let test_app_blocked_by_lock () =
  let device, app = app_fixture ~data_blocks:[ 2 ] () in
  let mem = device.Device.memory in
  Memory.lock mem 2;
  ignore
    (Engine.schedule device.Device.engine ~at:(Timebase.ms 210) (fun _ ->
         Memory.unlock mem 2));
  Engine.run ~until:(Timebase.ms 450) device.Device.engine;
  App.stop app;
  Engine.run ~until:(Timebase.s 1) device.Device.engine;
  (* activations at 0, 100, 200 stalled until 210; deadline misses expected *)
  check Alcotest.bool "blocked time accrued" true (App.blocked_ns app > 0);
  check Alcotest.bool "deadline misses recorded" true (App.deadline_misses app >= 2)

let test_app_fire_alarm () =
  let device, app = app_fixture () in
  App.declare_fire app ~at:(Timebase.ms 250);
  Engine.run ~until:(Timebase.ms 600) device.Device.engine;
  App.stop app;
  Engine.run ~until:(Timebase.s 1) device.Device.engine;
  match App.alarm_latency app with
  | None -> Alcotest.fail "alarm never raised"
  | Some latency ->
    (* next activation at 300 ms + 2 ms compute *)
    check Alcotest.int "alarm at next activation" (Timebase.ms 52) latency

(* --- Taskset ----------------------------------------------------------------------- *)

let prop_uunifast_sums =
  qtest
    (QCheck.Test.make ~name:"uunifast sums to target and stays positive" ~count:200
       QCheck.(triple small_int (int_range 1 12) (int_range 1 100))
       (fun (seed, tasks, pct) ->
         let total = float_of_int pct /. 100. in
         let rng = Prng.create ~seed in
         let u = Taskset.uunifast rng ~tasks ~total_utilization:total in
         let sum = Array.fold_left ( +. ) 0. u in
         Array.length u = tasks
         && Float.abs (sum -. total) < 1e-9
         && Array.for_all (fun x -> x >= 0.) u))

let test_taskset_generate () =
  let rng = Prng.create ~seed:12 in
  let tasks = Taskset.generate rng ~tasks:6 ~total_utilization:0.5 () in
  check Alcotest.int "six tasks" 6 (List.length tasks);
  List.iter
    (fun t ->
      check Alcotest.bool "execution within period" true
        (t.Taskset.execution >= 1 && t.Taskset.execution <= t.Taskset.period);
      check Alcotest.bool "period in range" true
        (t.Taskset.period >= Timebase.ms 50 && t.Taskset.period <= Timebase.s 2))
    tasks;
  (* rate-monotonic: sorting by priority descending gives ascending periods *)
  let by_priority =
    List.sort (fun a b -> Int.compare b.Taskset.priority a.Taskset.priority) tasks
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a.Taskset.period <= b.Taskset.period && monotone rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "rate-monotonic priorities" true (monotone by_priority);
  Alcotest.check_raises "utilization range"
    (Invalid_argument "Taskset.uunifast: utilization out of (0, 1]") (fun () ->
      ignore (Taskset.uunifast rng ~tasks:3 ~total_utilization:1.5))

let test_taskset_atomic_vs_interruptible () =
  let rng = Prng.create ~seed:13 in
  let tasks = Taskset.generate rng ~tasks:5 ~total_utilization:0.3 () in
  let run scheme_atomic =
    Taskset.run_under_attestation ~seed:13 ~tasks ~scheme_atomic
      ~horizon:(Timebase.s 20) ~attested_bytes:(1024 * 1024 * 1024)
  in
  let atomic = run true in
  let interruptible = run false in
  check Alcotest.bool "atomic blackout misses deadlines" true
    (atomic.Taskset.deadline_misses > 10);
  check Alcotest.int "interruptible misses none" 0
    interruptible.Taskset.deadline_misses;
  check Alcotest.bool "worst latency contrast" true
    (atomic.Taskset.worst_latency_s > 5. *. interruptible.Taskset.worst_latency_s);
  check Alcotest.bool "work completed either way" true
    (interruptible.Taskset.completions > 50)

let () =
  Alcotest.run "ra_device"
    [
      ( "memory",
        [
          Alcotest.test_case "shape" `Quick test_memory_shape;
          Alcotest.test_case "write/read" `Quick test_memory_write_read;
          Alcotest.test_case "locking" `Quick test_memory_locking;
          Alcotest.test_case "unlock notification" `Quick test_memory_unlock_notification;
          Alcotest.test_case "journal" `Quick test_memory_journal;
          Alcotest.test_case "copy-on-write lock" `Quick test_memory_cow_lock;
          Alcotest.test_case "cow clean release" `Quick test_memory_cow_clean_release;
          Alcotest.test_case "unlock with shadow requires time" `Quick
            test_memory_unlock_requires_time_with_shadow;
          Alcotest.test_case "block versions" `Quick test_memory_versions;
          qtest prop_journal_replay;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "fifo" `Quick test_cpu_fifo_same_priority;
          Alcotest.test_case "preemption" `Quick test_cpu_preemption;
          Alcotest.test_case "atomic" `Quick test_cpu_atomic_not_preempted;
          Alcotest.test_case "cancel" `Quick test_cpu_cancel;
          Alcotest.test_case "zero duration" `Quick test_cpu_zero_duration;
          Alcotest.test_case "running" `Quick test_cpu_running;
          qtest prop_cpu_work_conservation;
          qtest prop_cow_merge_equals_plain;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "paper anchors" `Quick test_cost_model_anchors;
          Alcotest.test_case "monotonicity" `Quick test_cost_model_monotonic;
          Alcotest.test_case "crossover" `Quick test_crossover;
          Alcotest.test_case "signature names" `Quick test_signature_names;
          Alcotest.test_case "composition" `Quick test_measurement_time_composition;
        ] );
      ( "device",
        [
          Alcotest.test_case "create" `Quick test_device_create;
          Alcotest.test_case "deterministic firmware" `Quick test_device_firmware_deterministic;
          Alcotest.test_case "validation" `Quick test_device_validation;
        ] );
      ( "app",
        [
          Alcotest.test_case "periodic" `Quick test_app_periodic;
          Alcotest.test_case "blocked by lock" `Quick test_app_blocked_by_lock;
          Alcotest.test_case "fire alarm" `Quick test_app_fire_alarm;
        ] );
      ( "taskset",
        [
          prop_uunifast_sums;
          Alcotest.test_case "generate" `Quick test_taskset_generate;
          Alcotest.test_case "atomic vs interruptible" `Quick
            test_taskset_atomic_vs_interruptible;
        ] );
    ]
