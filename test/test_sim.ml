(* Tests for the simulation kernel: PRNG, heap, time, engine, trace, stats. *)

open Ra_sim

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Prng ------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.bits64 a) (Prng.bits64 b) then incr same
  done;
  check Alcotest.int "different seeds, different streams" 0 !same

let test_prng_copy_independent () =
  let a = Prng.create ~seed:9 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copy continues identically" (Prng.bits64 a) (Prng.bits64 b);
  (* advancing one does not affect the other *)
  ignore (Prng.bits64 a);
  ignore (Prng.bits64 a);
  let va = Prng.bits64 a and vb = Prng.bits64 b in
  check Alcotest.bool "diverged after unequal draws" false (Int64.equal va vb)

let test_prng_split_independent () =
  let a = Prng.create ~seed:9 in
  let b = Prng.split a in
  let equal_draws = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.bits64 a) (Prng.bits64 b) then incr equal_draws
  done;
  check Alcotest.bool "split streams differ" true (!equal_draws < 4)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let g = Prng.create ~seed in
      let v = Prng.int g ~bound in
      v >= 0 && v < bound)

let prop_float_unit_interval =
  QCheck.Test.make ~name:"Prng.float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let g = Prng.create ~seed in
      let v = Prng.float g in
      v >= 0. && v < 1.)

let prop_permutation_valid =
  QCheck.Test.make ~name:"Prng.permutation is a permutation" ~count:200
    QCheck.(pair small_int (int_range 1 200))
    (fun (seed, n) ->
      let g = Prng.create ~seed in
      let p = Prng.permutation g n in
      let seen = Array.make n false in
      Array.iter (fun i -> seen.(i) <- true) p;
      Array.length p = n && Array.for_all (fun b -> b) seen)

let test_prng_int_uniformish () =
  let g = Prng.create ~seed:5 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.int g ~bound:10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d count %d too far from %d" i c expected)
    counts

let test_prng_bernoulli () =
  let g = Prng.create ~seed:6 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Prng.bernoulli g ~p:0.25 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check (Alcotest.float 0.02) "bernoulli rate" 0.25 rate

let test_prng_exponential_mean () =
  let g = Prng.create ~seed:8 in
  let sum = ref 0. in
  let n = 50_000 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential g ~mean:3.0
  done;
  check (Alcotest.float 0.1) "exponential mean" 3.0 (!sum /. float_of_int n)

let test_prng_bytes () =
  let g = Prng.create ~seed:3 in
  let b = Prng.bytes g 1000 in
  check Alcotest.int "length" 1000 (Bytes.length b);
  (* all 256 values should appear at length 1000 with high probability for
     at least 150 distinct values *)
  let seen = Hashtbl.create 256 in
  Bytes.iter (fun c -> Hashtbl.replace seen c ()) b;
  check Alcotest.bool "byte diversity" true (Hashtbl.length seen > 150)

(* --- Heap ---------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create () in
  Heap.push h ~key:5 ~seq:0 "e";
  Heap.push h ~key:1 ~seq:1 "a";
  Heap.push h ~key:3 ~seq:2 "c";
  Heap.push h ~key:1 ~seq:3 "b";
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, _, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list Alcotest.string) "key order, ties by seq" [ "a"; "b"; "c"; "e" ]
    (List.rev !order)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops sorted" ~count:200
    QCheck.(list (pair int int))
    (fun entries ->
      let h = Heap.create () in
      List.iteri (fun seq (k, _) -> Heap.push h ~key:k ~seq k) entries;
      let rec drain acc =
        match Heap.pop h with Some (k, _, _) -> drain (k :: acc) | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort Int.compare popped)

(* The contract both priority-queue implementations share: the pop
   sequence equals a stable sort of the pushed entries by (key, seq).
   Run against the legacy boxed Heap and the structure-of-arrays Eventq
   that replaced it on the engine hot path. *)
let prop_pop_is_stable_sort name push_all drain =
  QCheck.Test.make
    ~name:(name ^ " pop sequence = stable sort by (key, seq)")
    ~count:300
    QCheck.(list (int_range (-50) 50))
    (fun keys ->
      let entries = List.mapi (fun seq k -> (k, seq)) keys in
      let expected =
        List.stable_sort
          (fun (k1, s1) (k2, s2) ->
            match compare k1 k2 with 0 -> compare s1 s2 | c -> c)
          entries
      in
      drain (push_all entries) = expected)

let prop_heap_stable_sort =
  prop_pop_is_stable_sort "Heap"
    (fun entries ->
      let h = Heap.create () in
      List.iter (fun (k, seq) -> Heap.push h ~key:k ~seq (k, seq)) entries;
      h)
    (fun h ->
      let rec drain acc =
        match Heap.pop h with
        | Some (_, _, v) -> drain (v :: acc)
        | None -> List.rev acc
      in
      drain [])

let prop_eventq_stable_sort =
  prop_pop_is_stable_sort "Eventq"
    (fun entries ->
      let q = Eventq.create () in
      List.iter (fun (k, seq) -> Eventq.push q ~key:k ~seq (k, seq)) entries;
      q)
    (fun q ->
      let rec drain acc =
        if Eventq.is_empty q then List.rev acc
        else begin
          let v = Eventq.min_value q in
          Eventq.drop_min q;
          drain (v :: acc)
        end
      in
      drain [])

let test_eventq_min_accessors () =
  let q = Eventq.create () in
  check Alcotest.bool "empty" true (Eventq.is_empty q);
  check Alcotest.bool "min_key raises" true
    (match Eventq.min_key q with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Eventq.push q ~key:7 ~seq:0 "late";
  Eventq.push q ~key:2 ~seq:1 "early";
  check Alcotest.int "min_key" 2 (Eventq.min_key q);
  check Alcotest.int "min_seq" 1 (Eventq.min_seq q);
  check Alcotest.string "min_value" "early" (Eventq.min_value q);
  check Alcotest.int "length" 2 (Eventq.length q);
  Eventq.drop_min q;
  check Alcotest.string "next" "late" (Eventq.min_value q);
  Eventq.clear q;
  check Alcotest.bool "cleared" true (Eventq.is_empty q)

let test_heap_peek_clear () =
  let h = Heap.create () in
  check Alcotest.bool "empty" true (Heap.is_empty h);
  check Alcotest.bool "peek empty" true (Heap.peek h = None);
  Heap.push h ~key:2 ~seq:0 21;
  Heap.push h ~key:1 ~seq:1 11;
  (match Heap.peek h with
  | Some (1, 1, 11) -> ()
  | Some _ | None -> Alcotest.fail "peek should see minimum");
  check Alcotest.int "length" 2 (Heap.length h);
  Heap.clear h;
  check Alcotest.bool "cleared" true (Heap.is_empty h)

(* --- Timebase -------------------------------------------------------------- *)

let test_timebase_units () =
  check Alcotest.int "us" 1_000 (Timebase.us 1);
  check Alcotest.int "ms" 1_000_000 (Timebase.ms 1);
  check Alcotest.int "s" 1_000_000_000 (Timebase.s 1);
  check Alcotest.int "minutes" 60_000_000_000 (Timebase.minutes 1);
  check Alcotest.int "of_seconds" 1_500_000_000 (Timebase.of_seconds 1.5);
  check (Alcotest.float 1e-9) "to_seconds" 0.25 (Timebase.to_seconds (Timebase.ms 250))

let test_timebase_pp () =
  check Alcotest.string "seconds" "2.500 s" (Timebase.to_string (Timebase.ms 2500));
  check Alcotest.string "millis" "12.000 ms" (Timebase.to_string (Timebase.ms 12));
  check Alcotest.string "micros" "3.000 us" (Timebase.to_string (Timebase.us 3));
  check Alcotest.string "nanos" "42 ns" (Timebase.to_string 42);
  check Alcotest.string "zero" "0 s" (Timebase.to_string 0)

(* --- Engine ------------------------------------------------------------------ *)

let test_engine_order () =
  let eng = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule eng ~at:(Timebase.ms 5) (fun _ -> log := "b" :: !log));
  ignore (Engine.schedule eng ~at:(Timebase.ms 1) (fun _ -> log := "a" :: !log));
  ignore (Engine.schedule eng ~at:(Timebase.ms 9) (fun _ -> log := "c" :: !log));
  Engine.run eng;
  check (Alcotest.list Alcotest.string) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check Alcotest.int "clock at last event" (Timebase.ms 9) (Engine.now eng)

let test_engine_tie_order () =
  let eng = Engine.create () in
  let log = ref [] in
  let t = Timebase.ms 2 in
  ignore (Engine.schedule eng ~at:t (fun _ -> log := 1 :: !log));
  ignore (Engine.schedule eng ~at:t (fun _ -> log := 2 :: !log));
  ignore (Engine.schedule eng ~at:t (fun _ -> log := 3 :: !log));
  Engine.run eng;
  check (Alcotest.list Alcotest.int) "submission order on ties" [ 1; 2; 3 ]
    (List.rev !log)

let test_engine_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let id = Engine.schedule eng ~at:(Timebase.ms 1) (fun _ -> fired := true) in
  Engine.cancel eng id;
  Engine.cancel eng id;
  check Alcotest.int "pending after cancel" 0 (Engine.pending eng);
  Engine.run eng;
  check Alcotest.bool "cancelled event did not fire" false !fired

let test_engine_cancel_after_fire () =
  let eng = Engine.create () in
  let id = Engine.schedule eng ~at:(Timebase.ms 1) (fun _ -> ()) in
  Engine.run eng;
  (* cancelling an event that already fired must not corrupt the live
     counter or leave a tombstone behind *)
  Engine.cancel eng id;
  check Alcotest.int "pending still zero" 0 (Engine.pending eng);
  check Alcotest.int "no tombstone" 0 (Engine.tracked_events eng);
  let fired = ref false in
  ignore (Engine.schedule eng ~at:(Timebase.ms 2) (fun _ -> fired := true));
  check Alcotest.int "new event counted" 1 (Engine.pending eng);
  Engine.run eng;
  check Alcotest.bool "new event fired" true !fired

let test_engine_cancel_table_bounded () =
  (* A long-running simulation that keeps cancelling — both pending and
     already-fired events — must not grow internal state without bound. *)
  let eng = Engine.create () in
  let fired = ref 0 in
  let high_water = ref 0 in
  for round = 0 to 9_999 do
    let at = Timebase.ms (1 + round) in
    let keep = Engine.schedule eng ~at (fun _ -> incr fired) in
    let doomed = Engine.schedule eng ~at (fun _ -> assert false) in
    Engine.cancel eng doomed;
    Engine.run ~until:at eng;
    (* cancel after the event fired: must be a no-op *)
    Engine.cancel eng keep;
    Engine.cancel eng doomed;
    high_water := max !high_water (Engine.tracked_events eng)
  done;
  check Alcotest.int "all live events fired" 10_000 !fired;
  check Alcotest.int "table empty after drain" 0 (Engine.tracked_events eng);
  check Alcotest.bool
    (Printf.sprintf "table bounded by queue length (high water %d)" !high_water)
    true (!high_water <= 2);
  check Alcotest.int "live counter intact" 0 (Engine.pending eng)

let test_engine_run_until () =
  let eng = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule eng ~at:(Timebase.ms 1) (fun _ -> fired := 1 :: !fired));
  ignore (Engine.schedule eng ~at:(Timebase.ms 10) (fun _ -> fired := 10 :: !fired));
  Engine.run ~until:(Timebase.ms 5) eng;
  check (Alcotest.list Alcotest.int) "only early event" [ 1 ] (List.rev !fired);
  check Alcotest.int "clock advanced to horizon" (Timebase.ms 5) (Engine.now eng);
  check Alcotest.int "late event still queued" 1 (Engine.pending eng);
  Engine.run eng;
  check (Alcotest.list Alcotest.int) "late event eventually fires" [ 1; 10 ]
    (List.rev !fired)

let test_engine_past_rejected () =
  let eng = Engine.create () in
  ignore (Engine.schedule eng ~at:(Timebase.ms 5) (fun _ -> ()));
  Engine.run eng;
  Alcotest.check_raises "scheduling in the past"
    (Invalid_argument "Engine.schedule: time 1000000 is before now 5000000")
    (fun () -> ignore (Engine.schedule eng ~at:(Timebase.ms 1) (fun _ -> ())))

let test_engine_nested_scheduling () =
  let eng = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule eng ~at:(Timebase.ms 1) (fun e ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule_after e ~delay:(Timebase.ms 1) (fun _ ->
                log := "inner" :: !log))));
  Engine.run eng;
  check (Alcotest.list Alcotest.string) "nested events" [ "outer"; "inner" ]
    (List.rev !log)

(* --- Channel ------------------------------------------------------------------ *)

let test_channel_ideal () =
  let eng = Engine.create () in
  let arrived = ref [] in
  let ch =
    Channel.create eng Channel.ideal
      ~deliver:(fun m -> arrived := (m, Engine.now eng) :: !arrived)
      ()
  in
  Channel.send ch "hello";
  Engine.run eng;
  (match !arrived with
  | [ ("hello", t) ] -> check Alcotest.int "base delay" (Timebase.ms 40) t
  | _ -> Alcotest.fail "expected one delivery");
  check Alcotest.int "sent" 1 (Channel.sent ch);
  check Alcotest.int "delivered" 1 (Channel.delivered ch)

let test_channel_loss () =
  let eng = Engine.create ~seed:3 () in
  let ch =
    Channel.create eng { Channel.ideal with Channel.loss = 0.5 } ~deliver:(fun _ -> ()) ()
  in
  for i = 1 to 1000 do
    Channel.send ch i
  done;
  Engine.run eng;
  let rate = float_of_int (Channel.delivered ch) /. 1000. in
  check Alcotest.bool "about half delivered" true (rate > 0.42 && rate < 0.58)

let test_channel_total_loss_and_duplicates () =
  let eng = Engine.create ~seed:4 () in
  let dead =
    Channel.create eng { Channel.ideal with Channel.loss = 1.0 } ~deliver:(fun _ -> ()) ()
  in
  Channel.send dead ();
  Engine.run eng;
  check Alcotest.int "nothing survives loss 1.0" 0 (Channel.delivered dead);
  let dup =
    Channel.create eng { Channel.ideal with Channel.duplicate = 1.0 } ~deliver:(fun _ -> ()) ()
  in
  Channel.send dup ();
  Engine.run eng;
  check Alcotest.int "always duplicated" 2 (Channel.delivered dup)

let test_channel_jitter_bounds () =
  let eng = Engine.create ~seed:5 () in
  let times = ref [] in
  let ch =
    Channel.create eng
      { Channel.ideal with Channel.jitter = Timebase.ms 20 }
      ~deliver:(fun () -> times := Engine.now eng :: !times) ()
  in
  for _ = 1 to 50 do
    Channel.send ch ()
  done;
  Engine.run eng;
  List.iter
    (fun t ->
      if t < Timebase.ms 40 || t > Timebase.ms 60 then
        Alcotest.failf "latency %d out of [40,60] ms" t)
    !times;
  check Alcotest.int "all delivered" 50 (List.length !times)

let test_channel_validation () =
  let eng = Engine.create () in
  Alcotest.check_raises "bad loss" (Invalid_argument "Channel: bad loss") (fun () ->
      ignore (Channel.create eng { Channel.ideal with Channel.loss = 1.5 } ~deliver:ignore ()))

(* --- Trace -------------------------------------------------------------------- *)

let test_trace_basic () =
  let tr = Trace.create () in
  Trace.record tr ~time:(Timebase.ms 1) ~tag:"a" "one";
  Trace.recordf tr ~time:(Timebase.ms 2) ~tag:"b" "%d+%d" 1 2;
  Trace.record tr ~time:(Timebase.ms 3) ~tag:"a" "two";
  check Alcotest.int "length" 3 (Trace.length tr);
  check Alcotest.int "filtered" 2 (List.length (Trace.filter tr ~tag:"a"));
  (match Trace.entries tr with
  | [ e1; e2; e3 ] ->
    check Alcotest.string "first" "one" e1.Trace.detail;
    check Alcotest.string "formatted" "1+2" e2.Trace.detail;
    check Alcotest.string "last" "two" e3.Trace.detail
  | _ -> Alcotest.fail "expected 3 entries");
  Trace.clear tr;
  check Alcotest.int "cleared" 0 (Trace.length tr)

(* --- Stats -------------------------------------------------------------------- *)

let test_stats_moments () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check Alcotest.int "count" 8 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.mean s);
  check (Alcotest.float 1e-9) "variance (unbiased)" (32. /. 7.) (Stats.variance s);
  check (Alcotest.float 1e-9) "min" 2.0 (Stats.min_value s);
  check (Alcotest.float 1e-9) "max" 9.0 (Stats.max_value s);
  check (Alcotest.float 1e-9) "total" 40.0 (Stats.total s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "median" 50.5 (Stats.percentile s 50.);
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile s 0.);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile s 100.)

let test_stats_empty () =
  let s = Stats.create () in
  check (Alcotest.float 0.) "mean of empty" 0. (Stats.mean s);
  Alcotest.check_raises "percentile of empty"
    (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile s 50.))

let test_stats_wilson () =
  let lo, hi = Stats.binomial_confidence ~successes:0 ~trials:100 in
  check (Alcotest.float 1e-6) "zero successes lower bound" 0. lo;
  check Alcotest.bool "zero successes upper < 0.05" true (hi < 0.05);
  let lo, hi = Stats.binomial_confidence ~successes:50 ~trials:100 in
  check Alcotest.bool "half interval straddles 0.5" true (lo < 0.5 && hi > 0.5);
  let lo, hi = Stats.binomial_confidence ~successes:0 ~trials:0 in
  check (Alcotest.float 0.) "no data: [0,1]" 0. lo;
  check (Alcotest.float 0.) "no data: [0,1] hi" 1. hi

let test_stats_histogram () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. ];
  let h = Stats.histogram s ~bins:5 in
  check Alcotest.int "bins" 5 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  check Alcotest.int "all samples binned" 10 total

let () =
  Alcotest.run "ra_sim"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
          Alcotest.test_case "split" `Quick test_prng_split_independent;
          Alcotest.test_case "uniformity" `Quick test_prng_int_uniformish;
          Alcotest.test_case "bernoulli" `Quick test_prng_bernoulli;
          Alcotest.test_case "exponential" `Quick test_prng_exponential_mean;
          Alcotest.test_case "bytes" `Quick test_prng_bytes;
          qtest prop_int_in_bounds;
          qtest prop_float_unit_interval;
          qtest prop_permutation_valid;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "peek/clear" `Quick test_heap_peek_clear;
          qtest prop_heap_sorted;
          qtest prop_heap_stable_sort;
        ] );
      ( "eventq",
        [
          Alcotest.test_case "min accessors" `Quick test_eventq_min_accessors;
          qtest prop_eventq_stable_sort;
        ] );
      ( "timebase",
        [
          Alcotest.test_case "units" `Quick test_timebase_units;
          Alcotest.test_case "pretty printing" `Quick test_timebase_pp;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_order;
          Alcotest.test_case "tie order" `Quick test_engine_tie_order;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "cancel after fire" `Quick
            test_engine_cancel_after_fire;
          Alcotest.test_case "cancel table bounded" `Quick
            test_engine_cancel_table_bounded;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
        ] );
      ( "channel",
        [
          Alcotest.test_case "ideal" `Quick test_channel_ideal;
          Alcotest.test_case "loss" `Quick test_channel_loss;
          Alcotest.test_case "total loss & duplicates" `Quick
            test_channel_total_loss_and_duplicates;
          Alcotest.test_case "jitter bounds" `Quick test_channel_jitter_bounds;
          Alcotest.test_case "validation" `Quick test_channel_validation;
        ] );
      ("trace", [ Alcotest.test_case "basic" `Quick test_trace_basic ]);
      ( "stats",
        [
          Alcotest.test_case "moments" `Quick test_stats_moments;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "wilson interval" `Quick test_stats_wilson;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
        ] );
    ]
