(* Tests for the two-level digest cache: cached vs uncached measurement
   bit-identity under adversarial write schedules, version-keyed
   invalidation, cross-device sharing through the content-addressed store,
   and jobs-invariance of fleet roll-call counters. *)

open Ra_sim
open Ra_device
open Ra_core
open Ra_malware

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let blocks = 4

let small_config ?store () =
  {
    Device.default_config with
    Device.blocks;
    block_size = 64;
    modeled_block_bytes = 64;
    seed = 3;
    store;
  }

let hash = Ra_crypto.Algo.SHA_256
let nonce = Bytes.of_string "cache-test-nonce"
let order = Array.init blocks (fun i -> i)

(* The measurement a verifier would check, computed two ways over the same
   live memory: through the device's cache, and from scratch. *)
let cached_mac device =
  let digests = Array.map (Mp.block_digest device hash) order in
  Mp.mac_over_digests ~hash ~key:device.Device.config.Device.key ~nonce
    ~counter:None ~order ~digests ()

let uncached_mac device =
  Mp.mac_over ~hash ~key:device.Device.config.Device.key ~nonce ~counter:None
    ~order
    ~block_content:(Memory.read_block device.Device.memory)

(* --- cached = uncached under adversarial schedules ----------------------- *)

type op =
  | Write of int * int  (** block, byte value *)
  | Cow_lock of int
  | Unlock of int
  | Relocate  (** drive the self-relocating malware's measurement hook *)

let op_to_string = function
  | Write (b, v) -> Printf.sprintf "Write(%d,%d)" b v
  | Cow_lock b -> Printf.sprintf "Cow_lock(%d)" b
  | Unlock b -> Printf.sprintf "Unlock(%d)" b
  | Relocate -> "Relocate"

let ops_arbitrary =
  let open QCheck.Gen in
  let op =
    frequency
      [
        (4, map2 (fun b v -> Write (b, v)) (int_bound (blocks - 1)) (int_bound 255));
        (2, map (fun b -> Cow_lock b) (int_bound (blocks - 1)));
        (2, map (fun b -> Unlock b) (int_bound (blocks - 1)));
        (2, return Relocate);
      ]
  in
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_to_string ops))
    (list_size (1 -- 40) op)

let apply device malware ~time = function
  | Write (block, v) -> (
    match
      Memory.write device.Device.memory ~time ~block ~offset:0
        (Bytes.make 8 (Char.chr v))
    with
    | Ok () | Error (Memory.Locked _) -> ())
  | Cow_lock block -> Memory.lock_cow device.Device.memory block
  | Unlock block -> Memory.unlock ~time device.Device.memory block
  | Relocate ->
    (* immediate hop (or a blocked attempt, if locks are in the way) *)
    Malware.on_block_measured malware ~measured:1 ~total:blocks

let prop_cached_equals_uncached =
  QCheck.Test.make ~name:"cached MAC = uncached MAC under any schedule"
    ~count:100 ops_arbitrary (fun ops ->
      let store = Ra_cache.Store.create () in
      let device = Device.create (small_config ~store ()) in
      let malware =
        Malware.install device
          ~rng:(Prng.create ~seed:42)
          ~block:(blocks - 1) ~priority:7
          (Malware.Self_relocating Malware.Uniform_hop)
      in
      (* warm the cache, then interleave checks with the schedule: every
         content change (write, shadow merge, relocation) must bump the
         version and invalidate, or a stale digest shows up as a MAC
         mismatch *)
      let ok = ref (Bytes.equal (cached_mac device) (uncached_mac device)) in
      List.iteri
        (fun i op ->
          apply device malware ~time:((i + 1) * 10) op;
          if not (Bytes.equal (cached_mac device) (uncached_mac device)) then
            ok := false)
        ops;
      (* release any cow locks left by the schedule and re-check: shadow
         merges are content changes too *)
      Memory.unlock_all ~time:10_000 device.Device.memory;
      !ok && Bytes.equal (cached_mac device) (uncached_mac device))

let test_relocation_invalidates () =
  let device = Device.create (small_config ()) in
  let benign = cached_mac device in
  let malware =
    Malware.install device
      ~rng:(Prng.create ~seed:7)
      ~block:1 ~priority:7
      (Malware.Self_relocating Malware.Uniform_hop)
  in
  let infected = cached_mac device in
  check Alcotest.bool "infection changes the cached MAC" false
    (Bytes.equal benign infected);
  (* force hops until one actually relocates *)
  let rec force n =
    if Malware.relocations malware = 0 && n < 100 then begin
      Malware.on_block_measured malware ~measured:1 ~total:blocks;
      force (n + 1)
    end
  in
  force 0;
  check Alcotest.bool "malware relocated" true (Malware.relocations malware > 0);
  check Alcotest.bytes "cached tracks the move" (uncached_mac device)
    (cached_mac device)

(* --- cross-device sharing ------------------------------------------------ *)

let test_store_shares_across_devices () =
  let store = Ra_cache.Store.create () in
  let k = 4 in
  let devices =
    List.init k (fun _ -> Device.create (small_config ~store ()))
  in
  List.iter
    (fun d -> Array.iter (fun b -> ignore (Mp.block_digest d hash b)) order)
    devices;
  (* identical firmware: each distinct block content hashed exactly once
     fleet-wide, every other demand served by the store *)
  check Alcotest.int "lookups" (k * blocks) (Ra_cache.Store.lookups store);
  check Alcotest.int "computed once per distinct block" blocks
    (Ra_cache.Store.computed store);
  check Alcotest.int "distinct contents" blocks
    (Ra_cache.Store.distinct_contents store);
  let stats d = Ra_cache.stats (Option.get d.Device.cache) in
  (match devices with
  | first :: rest ->
    check Alcotest.int "first device computes" blocks (stats first).Ra_cache.misses;
    List.iter
      (fun d ->
        check Alcotest.int "later devices hit the store" blocks
          (stats d).Ra_cache.store_hits)
      rest
  | [] -> assert false);
  (* a second measurement round is all level-1 memo hits *)
  let first = List.hd devices in
  Array.iter (fun b -> ignore (Mp.block_digest first hash b)) order;
  check Alcotest.int "re-measurement memo hits" blocks
    (stats first).Ra_cache.hits;
  check Alcotest.int "store not consulted again" (k * blocks)
    (Ra_cache.Store.lookups store)

let test_cache_accounting () =
  let cost = Device.default_config.Device.cost in
  let acc =
    Cost_model.cache_accounting cost hash ~block_bytes:1024 ~hits:3 ~misses:1
  in
  check Alcotest.int "blocks hashed" 1 acc.Cost_model.blocks_hashed;
  check Alcotest.int "blocks hit" 3 acc.Cost_model.blocks_hit;
  (* modeled time is charged for hits and misses alike *)
  check Alcotest.bool "hit time charged" true
    (acc.Cost_model.modeled_ns_hit = 3. /. 4. *. acc.Cost_model.modeled_ns_total);
  check Alcotest.bool "total positive" true (acc.Cost_model.modeled_ns_total > 0.)

(* --- batch entry points -------------------------------------------------- *)

(* A small content pool forces in-batch duplicates — the case where batch
   and sequential accounting could plausibly diverge. *)
let batch_arbitrary =
  let open QCheck.Gen in
  let content =
    map2 (fun tag len -> Bytes.make len (Char.chr (65 + tag))) (int_bound 4)
      (int_bound 9)
  in
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun b -> Printf.sprintf "%S" (Bytes.to_string b)) l))
    (list_size (0 -- 12) content)

let prop_store_digest_many_replay =
  QCheck.Test.make ~name:"Store.digest_many = sequential Store.digest replay"
    ~count:200 batch_arbitrary (fun contents ->
      let batch = Array.of_list contents in
      let s_batch = Ra_cache.Store.create () in
      let s_seq = Ra_cache.Store.create () in
      (* pre-warm both stores with one element so the batch also sees real
         table hits, not just in-batch duplicates *)
      (match contents with
      | first :: _ ->
        ignore (Ra_cache.Store.digest s_batch hash first);
        ignore (Ra_cache.Store.digest s_seq hash first)
      | [] -> ());
      let got = Ra_cache.Store.digest_many s_batch hash batch in
      let want = Array.map (Ra_cache.Store.digest s_seq hash) batch in
      got = want
      && Ra_cache.Store.lookups s_batch = Ra_cache.Store.lookups s_seq
      && Ra_cache.Store.computed s_batch = Ra_cache.Store.computed s_seq
      && Ra_cache.Store.distinct_contents s_batch
         = Ra_cache.Store.distinct_contents s_seq
      && Ra_cache.Store.batched_computes s_batch
         = Array.fold_left
             (fun acc (hit, _) -> if hit then acc else acc + 1)
             0 got)

let test_block_digest_many_replay () =
  let batch_cache = Ra_cache.create ~store:(Ra_cache.Store.create ()) () in
  let seq_cache = Ra_cache.create ~store:(Ra_cache.Store.create ()) () in
  let contents r =
    Array.init blocks (fun b ->
        Bytes.make 16 (Char.chr (if r = 1 && b = 2 then 90 else 65 + b)))
  in
  let versions r = Array.init blocks (fun b -> if r = 1 && b = 2 then 1 else 0) in
  let round r =
    let contents = contents r and versions = versions r in
    let got =
      Ra_cache.block_digest_many batch_cache hash ~blocks:order ~versions
        contents
    in
    let want =
      Array.mapi
        (fun i b ->
          Ra_cache.block_digest seq_cache hash ~block:b ~version:versions.(i)
            contents.(i))
        order
    in
    check (Alcotest.array Alcotest.bytes) "round digests" want got
  in
  (* round 0 is all misses; repeating it is all memo hits; round 1 bumps
     one block's version and content — a single store miss *)
  round 0;
  round 0;
  round 1;
  let sb = Ra_cache.stats batch_cache and ss = Ra_cache.stats seq_cache in
  check Alcotest.int "memo hits" ss.Ra_cache.hits sb.Ra_cache.hits;
  check Alcotest.int "store hits" ss.Ra_cache.store_hits sb.Ra_cache.store_hits;
  check Alcotest.int "misses" ss.Ra_cache.misses sb.Ra_cache.misses;
  let bstore = Option.get (Ra_cache.store batch_cache) in
  let sstore = Option.get (Ra_cache.store seq_cache) in
  check Alcotest.int "store lookups" (Ra_cache.Store.lookups sstore)
    (Ra_cache.Store.lookups bstore);
  check Alcotest.int "store computed" (Ra_cache.Store.computed sstore)
    (Ra_cache.Store.computed bstore);
  check Alcotest.int "everything computed was batched"
    (Ra_cache.Store.computed bstore)
    (Ra_cache.Store.batched_computes bstore)

let store_counters store =
  ( Ra_cache.Store.lookups store,
    Ra_cache.Store.computed store,
    Ra_cache.Store.batched_computes store,
    Ra_cache.Store.distinct_contents store )

let test_store_batch_jobs_invariant () =
  (* Overlapping batches from racing domains: task i shares half its
     contents with its neighbours, so under jobs > 1 the domains race to
     compute the shared ones. The lock serializes whole batches, so WHO
     computes is a race but every counter total is not. *)
  let run jobs =
    let store = Ra_cache.Store.create () in
    ignore
      (Ra_parallel.parallel_init ~jobs 8 (fun i ->
           let batch =
             Array.init 6 (fun k ->
                 let j = ((i * 3) + k) mod 12 in
                 Bytes.make (8 + j) (Char.chr (65 + j)))
           in
           Ra_cache.Store.digest_many store hash batch));
    store_counters store
  in
  let l1, c1, b1, d1 = run 1 in
  check Alcotest.int "lookups = sum of batch sizes" (8 * 6) l1;
  check Alcotest.int "computed = distinct contents" 12 c1;
  check Alcotest.int "all computes batched" 12 b1;
  check Alcotest.int "distinct" 12 d1;
  check Alcotest.bool "store counters identical across jobs" true
    ((l1, c1, b1, d1) = run 4)

(* --- striped store = flat store ------------------------------------------ *)

(* Adversarial interleavings: racing domains submit overlapping batches
   and single probes to a striped store and to a stripes:1 (single-mutex)
   store. Striping only changes which lock guards which key, never what is
   computed or counted, so results and every summed counter must match. *)
let striped_ops_arbitrary =
  let open QCheck.Gen in
  let content =
    map2 (fun tag len -> Bytes.make (1 + len) (Char.chr (65 + tag))) (int_bound 9)
      (int_bound 9)
  in
  let batch = list_size (0 -- 8) content in
  QCheck.make
    ~print:(fun batches ->
      String.concat " | "
        (List.map
           (fun b ->
             String.concat ";"
               (List.map (fun c -> Printf.sprintf "%S" (Bytes.to_string c)) b))
           batches))
    (list_size (1 -- 6) batch)

let prop_striped_equals_flat =
  QCheck.Test.make ~name:"striped store = flat store under racing batches"
    ~count:60 striped_ops_arbitrary (fun batches ->
      let run store =
        let batches = Array.of_list (List.map Array.of_list batches) in
        (* WHICH racing task computes a shared fresh content first (and so
           sees the miss) is schedule-dependent — only the digests and the
           counter totals are invariant, so that is what we compare. *)
        let results =
          Ra_parallel.parallel_init ~jobs:3 (Array.length batches) (fun i ->
              if i mod 2 = 0 then Ra_cache.Store.digest_many store hash batches.(i)
              else Array.map (Ra_cache.Store.digest store hash) batches.(i))
        in
        (Array.map (Array.map snd) results, store_counters store)
      in
      let striped = run (Ra_cache.Store.create ~stripes:8 ()) in
      let flat = run (Ra_cache.Store.create ~stripes:1 ()) in
      striped = flat)

let test_stripe_rounding () =
  check Alcotest.int "default" 16 (Ra_cache.Store.stripes (Ra_cache.Store.create ()));
  check Alcotest.int "rounded up" 8 (Ra_cache.Store.stripes (Ra_cache.Store.create ~stripes:5 ()));
  check Alcotest.int "clamped low" 1 (Ra_cache.Store.stripes (Ra_cache.Store.create ~stripes:0 ()));
  check Alcotest.int "clamped high" 4096
    (Ra_cache.Store.stripes (Ra_cache.Store.create ~stripes:1_000_000 ()))

(* --- fleet roll call ----------------------------------------------------- *)

let build_fleet () =
  let fleet = Fleet.create ~master_secret:(Bytes.of_string "cache test master") () in
  let config = { (small_config ()) with Device.blocks = 8 } in
  for i = 0 to 5 do
    ignore (Fleet.provision fleet (Printf.sprintf "dev-%d" i) ~config ())
  done;
  ignore
    (Malware.install (Fleet.device fleet "dev-2")
       ~rng:(Prng.create ~seed:5)
       ~block:3 ~priority:7 Malware.Static);
  fleet

let test_roll_call_jobs_invariant () =
  let rc1 = Fleet.roll_call (build_fleet ()) ~jobs:1 Mp.default_config in
  let rc3 = Fleet.roll_call (build_fleet ()) ~jobs:3 Mp.default_config in
  check (Alcotest.list Alcotest.string) "tampered" [ "dev-2" ] rc1.Fleet.tampered;
  check Alcotest.int "clean count" 5 (List.length rc1.Fleet.clean);
  check Alcotest.bool "roll calls identical across jobs" true (rc1 = rc3);
  check Alcotest.int "requests add up" rc1.Fleet.digest_requests
    (rc1.Fleet.cache_hits + rc1.Fleet.store_hits + rc1.Fleet.hashed);
  check Alcotest.bool "sharing happened" true (rc1.Fleet.store_hits > 0);
  (* default measurement is atomic on both sides, so every computed digest
     flowed through the store's batch entry point *)
  check Alcotest.int "all hashing went through the batch entry point"
    rc1.Fleet.hashed rc1.Fleet.batch_hashed;
  check Alcotest.bool "something was hashed" true (rc1.Fleet.hashed > 0);
  check Alcotest.bool "hit rate sane" true
    (Fleet.hit_rate rc1 > 0. && Fleet.hit_rate rc1 <= 1.)

(* Counter-and-root signature of a roll call, minus the fields that
   legitimately differ between entry points (shards, shard_roots). *)
let rc_signature rc =
  ( (rc.Fleet.clean, rc.Fleet.tampered),
    ( rc.Fleet.digest_requests,
      rc.Fleet.cache_hits,
      rc.Fleet.store_hits,
      rc.Fleet.hashed,
      rc.Fleet.batch_hashed,
      rc.Fleet.distinct_blocks ),
    rc.Fleet.fleet_root )

let test_virtual_equals_materialized () =
  let build virtual_devices =
    let fleet =
      Fleet.create ~master_secret:(Bytes.of_string "cache test master") ()
    in
    let config = { (small_config ()) with Device.blocks = 8 } in
    let tamper d =
      ignore
        (Malware.install d ~rng:(Prng.create ~seed:5) ~block:3 ~priority:7
           Malware.Static)
    in
    for i = 0 to 5 do
      let id = Printf.sprintf "dev-%d" i in
      if virtual_devices then
        Fleet.provision_virtual fleet id ~config
          ?tamper:(if i = 2 then Some tamper else None)
          ()
      else begin
        let d = Fleet.provision fleet id ~config () in
        if i = 2 then tamper d
      end
    done;
    fleet
  in
  let materialized = Fleet.roll_call (build false) ~jobs:2 Mp.default_config in
  let virt = Fleet.roll_call (build true) ~jobs:2 Mp.default_config in
  check (Alcotest.list Alcotest.string) "tampered" [ "dev-2" ] virt.Fleet.tampered;
  check Alcotest.bool "virtual roster = materialized roster" true
    (rc_signature materialized = rc_signature virt);
  check Alcotest.bool "fleet root nonempty" true
    (Bytes.length virt.Fleet.fleet_root > 0)

(* Multi-segment fleet (> Fleet.segment_size devices) so the sharded path
   actually merges shards and segment roots, not just degenerates to one. *)
let build_multi_segment_fleet n =
  let fleet =
    Fleet.create ~stripes:8
      ~master_secret:(Bytes.of_string "sharded roll call master") ()
  in
  let config = small_config () in
  for i = 0 to n - 1 do
    let tamper d =
      ignore
        (Malware.install d ~rng:(Prng.create ~seed:i) ~block:1 ~priority:7
           Malware.Static)
    in
    Fleet.provision_virtual fleet
      (Printf.sprintf "dev-%05d" i)
      ~config
      ?tamper:(if i mod 97 = 13 then Some tamper else None)
      ()
  done;
  fleet

let test_sharded_equals_flat () =
  let n = (2 * Fleet.segment_size) + 150 in
  let flat = Fleet.roll_call (build_multi_segment_fleet n) ~jobs:2 Mp.default_config in
  check Alcotest.int "flat is one shard" 1 flat.Fleet.shards;
  check Alcotest.int "some tampered" (((n - 14) / 97) + 1)
    (List.length flat.Fleet.tampered);
  List.iter
    (fun (shards, jobs) ->
      let rc =
        Fleet.sharded_roll_call (build_multi_segment_fleet n) ~jobs ~shards
          Mp.default_config
      in
      let label = Printf.sprintf "shards=%d jobs=%d" shards jobs in
      check Alcotest.bool (label ^ " = flat") true
        (rc_signature rc = rc_signature flat);
      (* 3 segments: requested counts clamp to at most 3 *)
      check Alcotest.int (label ^ " effective shards") (min shards 3) rc.Fleet.shards;
      check Alcotest.int (label ^ " shard roots") rc.Fleet.shards
        (Array.length rc.Fleet.shard_roots))
    [ (1, 1); (2, 2); (3, 2); (8, 1) ]

let () =
  Alcotest.run "ra_cache"
    [
      ( "bit-identity",
        [
          qtest prop_cached_equals_uncached;
          Alcotest.test_case "relocation invalidates" `Quick
            test_relocation_invalidates;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "store shared across devices" `Quick
            test_store_shares_across_devices;
          Alcotest.test_case "cost accounting" `Quick test_cache_accounting;
        ] );
      ( "batch",
        [
          qtest prop_store_digest_many_replay;
          Alcotest.test_case "block_digest_many replays block_digest" `Quick
            test_block_digest_many_replay;
          Alcotest.test_case "batch counters jobs-invariant" `Quick
            test_store_batch_jobs_invariant;
        ] );
      ( "striping",
        [
          qtest prop_striped_equals_flat;
          Alcotest.test_case "stripe rounding" `Quick test_stripe_rounding;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "roll call jobs-invariant" `Quick
            test_roll_call_jobs_invariant;
          Alcotest.test_case "virtual = materialized" `Quick
            test_virtual_equals_materialized;
          Alcotest.test_case "sharded = flat" `Slow test_sharded_equals_flat;
        ] );
    ]
