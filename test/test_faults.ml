(* Tests for the fault-injection layer: channel fault statistics, CRC
   framing, RTT estimation, device crash/reboot semantics, the watchdog,
   and end-to-end recovery of the reliable protocol, ERASMUS and SeED. *)

open Ra_sim
open Ra_device
open Ra_core
open Ra_faults

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- channel fault statistics ------------------------------------------- *)

let sends = 3000

let rate_of ~seed config =
  let eng = Engine.create ~seed () in
  let ch =
    Channel.create eng config ~corrupt:Channel.flip_random_bit
      ~deliver:(fun _ -> ())
      ()
  in
  for _ = 1 to sends do
    Channel.send ch (Bytes.of_string "payload")
  done;
  Engine.run eng;
  ch

let prop_loss_rate_converges =
  QCheck.Test.make ~name:"channel loss converges to configured rate" ~count:20
    QCheck.(pair small_int (float_range 0. 0.8))
    (fun (seed, loss) ->
      let ch = rate_of ~seed { Channel.ideal with Channel.loss } in
      let survived = float_of_int (Channel.delivered ch) /. float_of_int sends in
      Float.abs (survived -. (1. -. loss)) < 0.05)

let prop_duplicate_rate_converges =
  QCheck.Test.make ~name:"channel duplication converges to configured rate"
    ~count:20
    QCheck.(pair small_int (float_range 0. 0.8))
    (fun (seed, duplicate) ->
      let ch = rate_of ~seed { Channel.ideal with Channel.duplicate } in
      let copies = float_of_int (Channel.delivered ch) /. float_of_int sends in
      Float.abs (copies -. (1. +. duplicate)) < 0.05)

let prop_corrupt_rate_converges =
  QCheck.Test.make ~name:"channel corruption converges to configured rate"
    ~count:20
    QCheck.(pair small_int (float_range 0. 0.8))
    (fun (seed, corrupt) ->
      let ch = rate_of ~seed { Channel.ideal with Channel.corrupt } in
      let hit = float_of_int (Channel.corrupted ch) /. float_of_int sends in
      Float.abs (hit -. corrupt) < 0.05)

let test_partition_window () =
  let eng = Engine.create ~seed:8 () in
  let arrivals = ref 0 in
  let ch =
    Channel.create eng
      {
        Channel.ideal with
        Channel.delay = Timebase.ms 1;
        partitions = [ (Timebase.ms 10, Timebase.ms 50) ];
      }
      ~deliver:(fun _ -> incr arrivals)
      ()
  in
  (* one send every 5 ms over [0, 100): 8 land inside [10, 50) *)
  for i = 0 to 19 do
    ignore
      (Engine.schedule eng ~at:(Timebase.ms (5 * i)) (fun _ -> Channel.send ch i))
  done;
  Engine.run eng;
  check Alcotest.int "sent" 20 (Channel.sent ch);
  check Alcotest.int "dropped in window" 8 (Channel.partition_drops ch);
  check Alcotest.int "delivered outside window" 12 !arrivals;
  check Alcotest.int "delivered counter agrees" 12 (Channel.delivered ch)

let test_reorder_displaces () =
  let eng = Engine.create ~seed:9 () in
  let order = ref [] in
  let ch =
    Channel.create eng
      { Channel.ideal with Channel.delay = Timebase.ms 10; reorder = 1.0 }
      ~deliver:(fun i -> order := i :: !order)
      ()
  in
  for i = 0 to 19 do
    ignore
      (Engine.schedule eng ~at:(Timebase.ms i) (fun _ -> Channel.send ch i))
  done;
  Engine.run eng;
  check Alcotest.int "every frame displaced" 20 (Channel.reordered ch);
  check Alcotest.int "all arrive eventually" 20 (List.length !order);
  check Alcotest.bool "arrival order differs from send order" true
    (List.rev !order <> List.init 20 Fun.id)

let test_corrupt_requires_mutator () =
  let eng = Engine.create () in
  Alcotest.check_raises "mutator mandatory"
    (Invalid_argument "Channel: corrupt > 0 requires a ~corrupt mutator")
    (fun () ->
      ignore
        (Channel.create eng
           { Channel.ideal with Channel.corrupt = 0.5 }
           ~deliver:ignore ()))

(* --- CRC-32 and framing -------------------------------------------------- *)

let test_crc32_vectors () =
  check Alcotest.int "check value" 0xCBF43926
    (Ra_crypto.Crc32.digest (Bytes.of_string "123456789"));
  check Alcotest.int "empty" 0 (Ra_crypto.Crc32.digest Bytes.empty);
  let a = Bytes.of_string "1234" and b = Bytes.of_string "56789" in
  check Alcotest.int "streaming = one-shot"
    (Ra_crypto.Crc32.digest (Bytes.of_string "123456789"))
    (Ra_crypto.Crc32.update (Ra_crypto.Crc32.update 0 a) b)

let test_frame_roundtrip () =
  let payload = Bytes.of_string "attestation report bytes" in
  (match Frame.open_ (Frame.seal payload) with
  | Ok p -> check Alcotest.bytes "payload intact" payload p
  | Error e -> Alcotest.fail e);
  (match Frame.open_ (Bytes.of_string "abc") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated frame accepted")

let prop_single_bit_flip_always_detected =
  QCheck.Test.make ~name:"CRC catches every single-bit flip" ~count:300
    QCheck.(pair small_int (string_of_size Gen.(1 -- 64)))
    (fun (seed, s) ->
      let rng = Prng.create ~seed in
      let frame = Frame.seal (Bytes.of_string s) in
      match Frame.open_ (Channel.flip_random_bit rng frame) with
      | Error _ -> true
      | Ok _ -> false)

(* Truncation edges: a frame cut anywhere — inside the payload, inside the
   4-byte CRC trailer, or down to nothing — must come back as a clean
   [Error], never an exception, and never be accepted as intact. *)
let prop_frame_truncation_clean_error =
  QCheck.Test.make ~name:"truncated frame: clean error, no exception" ~count:500
    QCheck.(pair (string_of_size Gen.(0 -- 64)) small_nat)
    (fun (s, cut_raw) ->
      let frame = Frame.seal (Bytes.of_string s) in
      let cut = cut_raw mod Bytes.length frame in
      match Frame.open_ (Bytes.sub frame 0 cut) with
      | Error _ -> true
      | Ok _ -> false)

let test_frame_zero_length_payload () =
  (match Frame.open_ (Frame.seal Bytes.empty) with
  | Ok p -> check Alcotest.int "empty payload roundtrips" 0 (Bytes.length p)
  | Error e -> Alcotest.fail e);
  (match Frame.open_ Bytes.empty with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty frame accepted");
  (* cuts strictly inside the CRC trailer *)
  let frame = Frame.seal Bytes.empty in
  for cut = 0 to Bytes.length frame - 1 do
    match Frame.open_ (Bytes.sub frame 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "trailer cut at %d accepted" cut)
  done

let wire_report =
  {
    Report.scheme_name = "smart";
    hash = Ra_crypto.Algo.SHA_256;
    nonce = Bytes.of_string "0123456789abcdef";
    order = Array.init 16 (fun i -> i);
    mac = Bytes.make 32 '\x5a';
    data_copy = [ (3, Bytes.of_string "volatile data block contents") ];
    t_start = Timebase.ms 10;
    t_end = Timebase.ms 150;
    t_release = Timebase.ms 150;
    signature = None;
    counter = Some 42;
  }

(* The length-prefixed report encoding, cut at every possible byte: header
   cuts, cuts inside a length field, cuts inside the MAC — all clean
   errors. *)
let test_report_decode_every_truncation () =
  let encoded = Report.encode wire_report in
  (match Report.decode encoded with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("intact report rejected: " ^ e));
  for cut = 0 to Bytes.length encoded - 1 do
    match Report.decode (Bytes.sub encoded 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "truncation at %d accepted" cut)
  done

(* --- stream framing: incremental reader ----------------------------------- *)

let drain_reader r =
  let rec go acc =
    match Frame.Reader.next r with
    | Frame.Reader.Frame p -> go (p :: acc)
    | Frame.Reader.Await -> Ok (List.rev acc)
    | Frame.Reader.Corrupt e -> Error e
  in
  go []

(* Exhaustive split coverage: two stream frames back to back, the byte
   stream cut at EVERY boundary — inside the magic, the length field, the
   payload, the CRC trailer, and exactly between the frames. Feeding the
   two halves separately must always yield exactly the two payloads. *)
let test_reader_every_split_point () =
  let a = Bytes.of_string "first report" in
  let b = Bytes.of_string "second, longer attestation report payload" in
  let stream = Bytes.cat (Frame.seal_stream a) (Frame.seal_stream b) in
  let n = Bytes.length stream in
  for cut = 0 to n do
    let r = Frame.Reader.create () in
    Frame.Reader.feed r ~off:0 ~len:cut stream;
    Frame.Reader.feed r ~off:cut ~len:(n - cut) stream;
    (match drain_reader r with
    | Ok [ pa; pb ] when Bytes.equal pa a && Bytes.equal pb b -> ()
    | Ok ps ->
      Alcotest.failf "cut at %d: %d frame(s) with wrong payloads" cut
        (List.length ps)
    | Error e -> Alcotest.failf "cut at %d: spurious corrupt: %s" cut e);
    check Alcotest.int "no residue" 0 (Frame.Reader.buffered r);
    check Alcotest.int "two frames counted" 2 (Frame.Reader.frames r);
    check Alcotest.int "all bytes accounted" n (Frame.Reader.bytes_fed r)
  done

let test_reader_byte_at_a_time () =
  (* the degenerate chunking — every read returns one byte — including an
     empty payload, whose frame is pure framing overhead *)
  let payloads = [ Bytes.empty; Bytes.of_string "x"; Bytes.make 300 'q' ] in
  let stream = Bytes.concat Bytes.empty (List.map Frame.seal_stream payloads) in
  let r = Frame.Reader.create () in
  let out = ref [] in
  for i = 0 to Bytes.length stream - 1 do
    Frame.Reader.feed r ~off:i ~len:1 stream;
    match drain_reader r with
    | Ok ps -> out := !out @ ps
    | Error e -> Alcotest.failf "byte %d: %s" i e
  done;
  check Alcotest.int "all frames recovered" (List.length payloads)
    (List.length !out);
  List.iter2
    (fun want got -> check Alcotest.bytes "payload intact" want got)
    payloads !out

let prop_reader_reassembles_any_chunking =
  QCheck.Test.make ~name:"stream reader: any chunking reassembles exactly"
    ~count:300
    QCheck.(pair small_int (small_list (string_of_size Gen.(0 -- 40))))
    (fun (seed, payloads) ->
      let rng = Prng.create ~seed in
      let stream =
        Bytes.concat Bytes.empty
          (List.map (fun s -> Frame.seal_stream (Bytes.of_string s)) payloads)
      in
      let r = Frame.Reader.create () in
      let out = ref [] in
      let pos = ref 0 in
      let n = Bytes.length stream in
      while !pos < n do
        let len = 1 + Prng.int rng ~bound:(min 7 (n - !pos)) in
        Frame.Reader.feed r ~off:!pos ~len stream;
        pos := !pos + len;
        match drain_reader r with
        | Ok ps -> out := !out @ List.map Bytes.to_string ps
        | Error e -> Alcotest.fail e
      done;
      !out = payloads
      && Frame.Reader.frames r = List.length payloads
      && Frame.Reader.bytes_fed r = n
      && Frame.Reader.buffered r = 0)

(* A flipped bit anywhere in the stream must never surface as a wrong
   payload: the reader either latches Corrupt or keeps Awaiting (a grown
   length field can make it wait for bytes that never come — that is the
   peer's RTO's problem, not a parsing bug). *)
let prop_reader_bit_flip_never_wrong_payload =
  QCheck.Test.make ~name:"stream reader: bit flip never yields a wrong payload"
    ~count:300
    QCheck.(pair small_int (string_of_size Gen.(0 -- 64)))
    (fun (seed, s) ->
      let rng = Prng.create ~seed in
      let stream = Channel.flip_random_bit rng (Frame.seal_stream (Bytes.of_string s)) in
      let r = Frame.Reader.create () in
      Frame.Reader.feed r stream;
      match drain_reader r with
      | Error _ | Ok [] -> true
      | Ok _ -> false)

let test_reader_corrupt_is_sticky () =
  let r = Frame.Reader.create () in
  Frame.Reader.feed r (Bytes.of_string "XXgarbage, not a frame magic");
  (match Frame.Reader.next r with
  | Frame.Reader.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic not detected");
  (* a perfectly valid frame fed after the latch must be discarded: there
     is no trustworthy resynchronisation point in a broken stream *)
  Frame.Reader.feed r (Frame.seal_stream (Bytes.of_string "late valid frame"));
  (match Frame.Reader.next r with
  | Frame.Reader.Corrupt _ -> ()
  | Frame.Reader.Frame _ -> Alcotest.fail "reader resynchronised on garbage"
  | Frame.Reader.Await -> Alcotest.fail "corrupt latch forgotten");
  check Alcotest.int "no frames ever" 0 (Frame.Reader.frames r)

let test_reader_rejects_oversized_length () =
  (* a hostile length field must be rejected from the 6 header bytes alone,
     before the reader buffers anything like max_payload *)
  let header = Bytes.make 6 '\x00' in
  Bytes.set header 0 'R';
  Bytes.set header 1 'F';
  Bytes.set_int32_be header 2 (Int32.of_int (Frame.max_payload + 1));
  let r = Frame.Reader.create () in
  Frame.Reader.feed r header;
  match Frame.Reader.next r with
  | Frame.Reader.Corrupt _ -> ()
  | _ -> Alcotest.fail "oversized length not rejected"

(* --- RTT estimator -------------------------------------------------------- *)

let test_rtt_estimator () =
  let rtt = Rtt.create () in
  check Alcotest.int "conservative before samples" (Timebase.s 15) (Rtt.rto rtt);
  Rtt.observe rtt (Timebase.ms 100);
  check Alcotest.int "first sample: rto = srtt + 4*rttvar" (Timebase.ms 300)
    (Rtt.rto rtt);
  check Alcotest.bool "srtt recorded" true (Rtt.srtt rtt = Some (Timebase.ms 100));
  for _ = 1 to 20 do
    Rtt.observe rtt (Timebase.ms 100)
  done;
  check Alcotest.bool "steady samples shrink the rto" true
    (Rtt.rto rtt < Timebase.ms 300);
  let before = Rtt.rto rtt in
  Rtt.backoff rtt;
  check Alcotest.int "backoff doubles" (min (Timebase.minutes 2) (2 * before))
    (Rtt.rto rtt);
  let floor_rtt = Rtt.create () in
  Rtt.observe floor_rtt (Timebase.us 1);
  check Alcotest.int "rto floor" (Timebase.ms 200) (Rtt.rto floor_rtt)

(* A prover reboot can reset the clock mid-exchange, making the apparent
   RTT zero or negative. The estimator must clamp such samples — never
   raise, never drive SRTT/RTTVAR (and hence the RTO) negative. *)
let test_rtt_clamps_clock_reset_samples () =
  let rtt = Rtt.create () in
  for _ = 1 to 5 do
    Rtt.observe rtt (Timebase.ms 100)
  done;
  Rtt.observe rtt (-Timebase.ms 500);
  Rtt.observe rtt 0;
  check Alcotest.int "both anomalies counted" 2 (Rtt.clamped rtt);
  check Alcotest.bool "srtt still positive" true
    (match Rtt.srtt rtt with Some s -> s > 0 | None -> false);
  (* the clamp inflates RTTVAR (a 1 ns sample is a big deviation) but the
     RTO must stay positive and bounded, not swing negative *)
  check Alcotest.bool "rto stays in bounds" true
    (Rtt.rto rtt >= Timebase.ms 200 && Rtt.rto rtt <= Timebase.s 1);
  (* a first-ever sample that is negative must not poison a fresh estimator *)
  let fresh = Rtt.create () in
  Rtt.observe fresh (-1);
  check Alcotest.int "fresh estimator clamps too" (Timebase.ms 200) (Rtt.rto fresh)

(* Karn's rule means a recovering session may never feed a sample, so the
   backoff multiplier must be reset explicitly on the first clean exchange
   after a give-up. *)
let test_rtt_backoff_reset_after_gave_up () =
  let rtt = Rtt.create ~initial_rto:(Timebase.s 1) ~max_rto:(Timebase.s 8) () in
  for _ = 1 to 3 do
    Rtt.observe rtt (Timebase.ms 100)
  done;
  let anchored = Rtt.rto rtt in
  for _ = 1 to 5 do
    Rtt.backoff rtt
  done;
  Rtt.note_gave_up rtt;
  check Alcotest.int "backoffs accumulated" 5 (Rtt.backoffs rtt);
  check Alcotest.bool "rto backed off" true (Rtt.rto rtt > anchored);
  Rtt.note_success rtt;
  check Alcotest.int "backoffs reset" 0 (Rtt.backoffs rtt);
  check Alcotest.int "rto re-anchored on the estimate" anchored (Rtt.rto rtt);
  (* without any sample ever, recovery falls back to the initial RTO *)
  let blind = Rtt.create ~initial_rto:(Timebase.s 1) ~max_rto:(Timebase.s 8) () in
  Rtt.backoff blind;
  Rtt.backoff blind;
  Rtt.note_gave_up blind;
  Rtt.note_success blind;
  check Alcotest.int "blind recovery: initial rto" (Timebase.s 1) (Rtt.rto blind)

(* --- device crash/reboot -------------------------------------------------- *)

let test_device_crash_semantics () =
  let device = Device.create Device.default_config in
  let eng = device.Device.engine in
  let completed = ref false in
  let crashed = ref 0 and rebooted = ref 0 in
  Device.on_crash device (fun () -> incr crashed);
  Device.on_reboot device (fun () -> incr rebooted);
  ignore
    (Cpu.submit device.Device.cpu ~name:"victim" ~priority:1
       ~duration:(Timebase.s 1)
       ~on_complete:(fun () -> completed := true)
       ());
  ignore
    (Engine.schedule eng ~at:(Timebase.ms 500) (fun _ ->
         Device.crash ~reboot_delay:(Timebase.ms 100) device;
         check Alcotest.bool "down immediately" false (Device.is_up device);
         (* crashing a crashed device is a no-op *)
         Device.crash device;
         check Alcotest.int "no double crash" 1 (Device.crash_count device)));
  Engine.run eng;
  check Alcotest.bool "volatile job never completed" false !completed;
  check Alcotest.bool "back up" true (Device.is_up device);
  check Alcotest.int "epoch advanced once" 1 (Device.epoch device);
  check Alcotest.int "crash hook ran" 1 !crashed;
  check Alcotest.int "reboot hook ran" 1 !rebooted;
  check Alcotest.int "boot time recorded" (Timebase.ms 600)
    (Device.last_boot_at device)

(* --- watchdog ------------------------------------------------------------- *)

let test_watchdog_pet_and_bite () =
  let eng = Engine.create () in
  let bitten = ref [] in
  let wd =
    Watchdog.create eng ~timeout:(Timebase.ms 100) ~on_bite:(fun () ->
        bitten := Engine.now eng :: !bitten)
  in
  (* pet every 50 ms until t = 300 ms, then go silent *)
  for i = 1 to 6 do
    ignore
      (Engine.schedule eng ~at:(Timebase.ms (50 * i)) (fun _ -> Watchdog.pet wd))
  done;
  Engine.run ~until:(Timebase.ms 450) eng;
  check Alcotest.int "one bite after pets stop" 1 (Watchdog.bites wd);
  (match !bitten with
  | [ t ] -> check Alcotest.int "bite at last pet + timeout" (Timebase.ms 400) t
  | _ -> Alcotest.fail "expected exactly one bite");
  Watchdog.disarm wd;
  Engine.run ~until:(Timebase.s 2) eng;
  check Alcotest.int "disarmed: no further bites" 1 (Watchdog.bites wd)

let test_watchdog_restarts_hung_device () =
  let device = Device.create Device.default_config in
  let eng = device.Device.engine in
  let wd =
    Watchdog.create eng ~timeout:(Timebase.ms 100) ~on_bite:(fun () ->
        Device.crash ~reboot_delay:(Timebase.ms 50) device)
  in
  (* nobody ever pets: the hung device is power-cycled by the watchdog *)
  Engine.run ~until:(Timebase.ms 120) eng;
  check Alcotest.int "watchdog reset the device" 1 (Device.crash_count device);
  (* observe between the reboot (150 ms) and the next bite (200 ms — the
     rebooted firmware never pets either) *)
  Engine.run ~until:(Timebase.ms 180) eng;
  check Alcotest.bool "device rebooted" true (Device.is_up device);
  Watchdog.disarm wd

(* --- reliable protocol under faults --------------------------------------- *)

let mk_device ~seed =
  Device.create
    {
      Device.default_config with
      Device.seed;
      block_size = 256;
      modeled_block_bytes = 1024 * 1024 (* MP ~ 0.58 s *);
    }

let run_session ?crash_at ?reboot_delay ~config ~seed () =
  let device = mk_device ~seed in
  let eng = device.Device.engine in
  let verifier = Verifier.of_device device in
  let result = ref None in
  Reliable_protocol.run device verifier config
    ~on_done:(fun r -> result := Some r)
    ();
  (match crash_at with
  | Some at ->
    ignore
      (Engine.schedule eng ~at (fun _ -> Device.crash ?reboot_delay device))
  | None -> ());
  Engine.run eng;
  match !result with
  | Some r -> (r, device)
  | None -> Alcotest.fail "session never finished"

let fast_channel = { Channel.ideal with Channel.delay = Timebase.ms 10 }

let test_crash_during_measurement () =
  (* the crash lands mid-MP: the measurement dies with the CPU, the verifier
     retries, and the second boot measures afresh *)
  let r, device =
    run_session ~crash_at:(Timebase.ms 300)
      ~config:
        {
          Reliable_protocol.default_config with
          Reliable_protocol.channel = fast_channel;
          retry_timeout = Timebase.s 2;
          max_attempts = 6;
        }
      ~seed:11 ()
  in
  check Alcotest.int "crashed once" 1 (Device.crash_count device);
  check Alcotest.bool "clean verdict after reboot" true
    (r.Reliable_protocol.verdict = Some Verifier.Clean);
  check Alcotest.int "fresh measurement on second boot" 2
    r.Reliable_protocol.measurements_run;
  check Alcotest.bool "took a retransmission" true
    (r.Reliable_protocol.attempts >= 2)

let partition_config =
  (* reply path dead until 1.5 s: the report is measured and cached, but
     never reaches the verifier before the partition heals *)
  {
    Reliable_protocol.default_config with
    Reliable_protocol.channel =
      {
        fast_channel with
        Channel.partitions = [ (Timebase.ms 100, Timebase.ms 1500) ];
      };
    retry_timeout = Timebase.s 2;
    backoff_jitter = 0.;
    max_attempts = 6;
  }

let test_crash_discards_cached_report () =
  (* report cached at ~0.6 s, swallowed by the partition; the crash at 1 s
     wipes the cache; the post-heal retransmission must trigger a second
     measurement — replaying the stale report would be the bug *)
  let r, device =
    run_session ~crash_at:(Timebase.s 1) ~config:partition_config ~seed:12 ()
  in
  check Alcotest.int "crashed once" 1 (Device.crash_count device);
  check Alcotest.bool "clean verdict" true
    (r.Reliable_protocol.verdict = Some Verifier.Clean);
  check Alcotest.int "stale cache not replayed: re-measured" 2
    r.Reliable_protocol.measurements_run;
  (match r.Reliable_protocol.completed_at with
  | Some at -> check Alcotest.bool "completed after the heal" true (at > Timebase.ms 1500)
  | None -> Alcotest.fail "no completion time")

let test_cached_report_survives_without_crash () =
  (* the same partition without a crash: the cache answers the retry and the
     prover measures exactly once *)
  let r, device = run_session ~config:partition_config ~seed:12 () in
  check Alcotest.int "no crash" 0 (Device.crash_count device);
  check Alcotest.bool "clean verdict" true
    (r.Reliable_protocol.verdict = Some Verifier.Clean);
  check Alcotest.int "cache absorbed the retry" 1
    r.Reliable_protocol.measurements_run;
  check Alcotest.bool "a retry was needed" true (r.Reliable_protocol.attempts >= 2)

let test_partition_heal_with_backoff () =
  (* total outage for the first 20 s; exponential backoff walks out of it:
     attempts at 0, 2, 6, 14, 30 s — the fifth lands after the heal *)
  let r, _ =
    run_session
      ~config:
        {
          Reliable_protocol.default_config with
          Reliable_protocol.channel =
            {
              fast_channel with
              Channel.partitions = [ (Timebase.zero, Timebase.s 20) ];
            };
          retry_timeout = Timebase.s 2;
          backoff = 2.0;
          backoff_jitter = 0.;
          max_timeout = Timebase.minutes 2;
          max_attempts = 8;
        }
      ~seed:13 ()
  in
  check Alcotest.bool "completed after heal" true
    (r.Reliable_protocol.verdict = Some Verifier.Clean);
  check Alcotest.int "four attempts burnt in the outage" 5
    r.Reliable_protocol.attempts;
  (match r.Reliable_protocol.completed_at with
  | Some at -> check Alcotest.bool "verdict postdates the heal" true (at > Timebase.s 20)
  | None -> Alcotest.fail "no completion time")

let test_corruption_never_accepted () =
  (* every frame arrives with a flipped bit: the session must time out —
     with no verdict at all — rather than report the benign device Tampered *)
  let r, _ =
    run_session
      ~config:
        {
          Reliable_protocol.default_config with
          Reliable_protocol.channel = { fast_channel with Channel.corrupt = 1.0 };
          retry_timeout = Timebase.ms 500;
          max_attempts = 5;
        }
      ~seed:14 ()
  in
  check Alcotest.bool "no verdict, not a false Tampered" true
    (r.Reliable_protocol.verdict = None);
  check Alcotest.bool "corrupted frames accounted" true
    (r.Reliable_protocol.corrupted_dropped >= 5);
  check Alcotest.bool "gave_up_at reported" true
    (r.Reliable_protocol.gave_up_at <> None);
  check Alcotest.bool "completed_at empty" true
    (r.Reliable_protocol.completed_at = None)

let test_duplicate_taxonomy () =
  (* duplicate=1.0: the initial request arrives twice (one channel dup),
     and so does the reply *)
  let r, _ =
    run_session
      ~config:
        {
          Reliable_protocol.default_config with
          Reliable_protocol.channel = { fast_channel with Channel.duplicate = 1.0 };
        }
      ~seed:15 ()
  in
  check Alcotest.bool "clean" true (r.Reliable_protocol.verdict = Some Verifier.Clean);
  check Alcotest.int "channel dup absorbed" 1
    r.Reliable_protocol.channel_duplicates_absorbed;
  check Alcotest.int "no verifier retransmits" 0
    r.Reliable_protocol.retransmits_absorbed;
  check Alcotest.int "back-compat total" 1 r.Reliable_protocol.duplicates_suppressed;
  check Alcotest.int "duplicated reply discarded" 1
    r.Reliable_protocol.duplicate_replies_ignored;
  check Alcotest.int "one measurement" 1 r.Reliable_protocol.measurements_run

let test_retransmit_taxonomy () =
  (* a 3 s one-way delay against a 1 s flat timeout: every retry is a true
     verifier retransmission, absorbed without re-measuring *)
  let r, _ =
    run_session
      ~config:
        {
          Reliable_protocol.default_config with
          Reliable_protocol.channel = { Channel.ideal with Channel.delay = Timebase.s 3 };
          retry_timeout = Timebase.s 1;
          backoff = 1.0;
          backoff_jitter = 0.;
          max_attempts = 8;
        }
      ~seed:16 ()
  in
  check Alcotest.bool "clean" true (r.Reliable_protocol.verdict = Some Verifier.Clean);
  check Alcotest.bool "retransmits absorbed" true
    (r.Reliable_protocol.retransmits_absorbed >= 2);
  check Alcotest.int "none were channel duplicates" 0
    r.Reliable_protocol.channel_duplicates_absorbed;
  check Alcotest.int "still one measurement" 1 r.Reliable_protocol.measurements_run

let test_rtt_adaptive_timeout () =
  (* a shared estimator across sessions on a clean channel learns an RTO far
     below the 15 s default *)
  let rtt = Rtt.create () in
  let device = mk_device ~seed:17 in
  let verifier = Verifier.of_device device in
  let finished = ref 0 in
  let config =
    { Reliable_protocol.default_config with Reliable_protocol.channel = fast_channel }
  in
  let rec session n =
    if n > 0 then
      Reliable_protocol.run device verifier config ~rtt
        ~on_done:(fun r ->
          check Alcotest.bool "clean" true
            (r.Reliable_protocol.verdict = Some Verifier.Clean);
          incr finished;
          session (n - 1))
        ()
  in
  session 5;
  Engine.run device.Device.engine;
  check Alcotest.int "all sessions completed" 5 !finished;
  check Alcotest.int "one sample per clean exchange" 5 (Rtt.samples rtt);
  check Alcotest.bool "rto adapted well below the default" true
    (Rtt.rto rtt < Timebase.s 2)

(* --- ERASMUS under crashes ------------------------------------------------ *)

let mk_small_device ~seed =
  Device.create
    {
      Device.default_config with
      Device.seed;
      block_size = 256;
      modeled_block_bytes = 64 * 1024 (* MP ~ 36 ms *);
    }

let run_erasmus ~persistent ~crash_at ~seed =
  let device = mk_small_device ~seed in
  let eng = device.Device.engine in
  let verifier = Verifier.of_device device in
  let era =
    Erasmus.start device
      {
        Erasmus.default_config with
        Erasmus.period = Timebase.s 1;
        capacity = 64;
        persistent_log = persistent;
      }
  in
  (match crash_at with
  | Some at -> ignore (Engine.schedule eng ~at (fun _ -> Device.crash device))
  | None -> ());
  Engine.run ~until:(Timebase.s 6) eng;
  Erasmus.stop era;
  Engine.run ~until:(Timebase.s 7) eng;
  (era, device, Erasmus.audit ~expect_from:1 verifier (Erasmus.stored era))

let test_erasmus_volatile_log_gap () =
  (* crash at 3.5 s wipes measurements 1-4; the collector's audit reports
     the wipe as an explicit counter gap, with zero Tampered verdicts *)
  let era, device, audit =
    run_erasmus ~persistent:false ~crash_at:(Some (Timebase.ms 3500)) ~seed:21
  in
  check Alcotest.int "crashed" 1 (Device.crash_count device);
  check Alcotest.bool "reports were lost" true (Erasmus.reports_lost_to_crash era > 0);
  check Alcotest.int "nothing audits as tampered" 0 audit.Erasmus.audit_tampered;
  check Alcotest.int "order preserved" 0 audit.Erasmus.out_of_order;
  (match audit.Erasmus.gaps with
  | [ (1, hi) ] -> check Alcotest.bool "gap covers the wiped prefix" true (hi >= 3)
  | gaps -> Alcotest.failf "expected one leading gap, got %d" (List.length gaps));
  check Alcotest.bool "schedule resumed after reboot" true
    (List.length (Erasmus.stored era) >= 2)

let test_erasmus_persistent_log_survives () =
  let era, device, audit =
    run_erasmus ~persistent:true ~crash_at:(Some (Timebase.ms 3500)) ~seed:22
  in
  check Alcotest.int "crashed" 1 (Device.crash_count device);
  check Alcotest.int "flash log lost nothing" 0 (Erasmus.reports_lost_to_crash era);
  check Alcotest.int "clean audit" 0 audit.Erasmus.audit_tampered;
  let gap_width =
    List.fold_left (fun a (lo, hi) -> a + hi - lo + 1) 0 audit.Erasmus.gaps
  in
  check Alcotest.bool "at most the in-flight measurement missing" true
    (gap_width <= Device.crash_count device)

let test_erasmus_no_crash_no_gap () =
  let era, _, audit = run_erasmus ~persistent:false ~crash_at:None ~seed:23 in
  check Alcotest.int "no loss" 0 (Erasmus.reports_lost_to_crash era);
  check Alcotest.bool "contiguous log" true (audit.Erasmus.gaps = []);
  check Alcotest.int "clean audit" 0 audit.Erasmus.audit_tampered

(* --- SeED through a crash ------------------------------------------------- *)

let test_seed_triggers_survive_crash () =
  let device = mk_small_device ~seed:24 in
  let eng = device.Device.engine in
  let received = ref [] in
  let prover =
    Seed_ra.start device
      { Seed_ra.default_config with Seed_ra.mean_interval = Timebase.s 1 }
      ~send:(fun (t, r) -> received := (t, r) :: !received)
  in
  (* down from 2 s to 5 s: the hardware trigger keeps ticking, firing into
     a dead CPU *)
  ignore
    (Engine.schedule eng ~at:(Timebase.s 2) (fun _ ->
         Device.crash ~reboot_delay:(Timebase.s 3) device));
  Engine.run ~until:(Timebase.s 10) eng;
  Seed_ra.stop prover;
  Engine.run ~until:(Timebase.s 11) eng;
  check Alcotest.bool "triggers missed while down" true
    (Seed_ra.missed_triggers prover >= 1);
  check Alcotest.bool "reports resumed after reboot" true
    (List.exists (fun (t, _) -> t > Timebase.s 5) !received);
  let verifier = Verifier.of_device device in
  let outcome =
    Seed_ra.monitor verifier
      ~expected:(List.map (fun (t, _) -> t) (List.rev !received))
      ~tolerance:(Timebase.s 1) (List.rev !received)
  in
  check Alcotest.int "no false tampering across the reboot" 0
    outcome.Seed_ra.tampered;
  check Alcotest.int "counters stay monotonic across the reboot" 0
    outcome.Seed_ra.replayed

(* --- fault plans ----------------------------------------------------------- *)

let prop_random_plan_within_caps =
  QCheck.Test.make ~name:"fault plans respect caps and windows" ~count:200
    QCheck.small_int (fun seed ->
      let rng = Prng.create ~seed in
      let horizon = Timebase.s 60 in
      List.for_all
        (fun profile ->
          let plan = Faults.random_plan rng ~horizon profile in
          let c = plan.Faults.channel in
          c.Channel.loss <= 0.35 && c.Channel.duplicate <= 0.3
          && c.Channel.corrupt <= 0.3 && c.Channel.reorder <= 0.3
          && List.for_all
               (fun (a, b) -> a >= 0 && b > a && b <= horizon)
               c.Channel.partitions
          && (match plan.Faults.crash_at with
             | None -> profile <> Faults.With_crash
             | Some at -> profile = Faults.With_crash && at >= 0 && at <= horizon / 2))
        [ Faults.Network_only; Faults.With_partition; Faults.With_crash ])

let () =
  Alcotest.run "ra_faults"
    [
      ( "channel-faults",
        [
          qtest prop_loss_rate_converges;
          qtest prop_duplicate_rate_converges;
          qtest prop_corrupt_rate_converges;
          Alcotest.test_case "partition window" `Quick test_partition_window;
          Alcotest.test_case "reordering" `Quick test_reorder_displaces;
          Alcotest.test_case "corrupt needs mutator" `Quick test_corrupt_requires_mutator;
        ] );
      ( "framing",
        [
          Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
          qtest prop_single_bit_flip_always_detected;
          qtest prop_frame_truncation_clean_error;
          Alcotest.test_case "zero-length payload and trailer cuts" `Quick
            test_frame_zero_length_payload;
          Alcotest.test_case "report decode: every truncation" `Quick
            test_report_decode_every_truncation;
        ] );
      ( "stream-framing",
        [
          Alcotest.test_case "every split point" `Quick
            test_reader_every_split_point;
          Alcotest.test_case "byte at a time" `Quick test_reader_byte_at_a_time;
          qtest prop_reader_reassembles_any_chunking;
          qtest prop_reader_bit_flip_never_wrong_payload;
          Alcotest.test_case "corrupt latch is sticky" `Quick
            test_reader_corrupt_is_sticky;
          Alcotest.test_case "oversized length rejected" `Quick
            test_reader_rejects_oversized_length;
        ] );
      ( "rtt",
        [
          Alcotest.test_case "estimator" `Quick test_rtt_estimator;
          Alcotest.test_case "clock-reset samples clamped" `Quick
            test_rtt_clamps_clock_reset_samples;
          Alcotest.test_case "backoff reset after give-up" `Quick
            test_rtt_backoff_reset_after_gave_up;
        ] );
      ( "device-crash",
        [ Alcotest.test_case "crash semantics" `Quick test_device_crash_semantics ] );
      ( "watchdog",
        [
          Alcotest.test_case "pet and bite" `Quick test_watchdog_pet_and_bite;
          Alcotest.test_case "restarts hung device" `Quick
            test_watchdog_restarts_hung_device;
        ] );
      ( "reliable-protocol",
        [
          Alcotest.test_case "crash during measurement" `Quick
            test_crash_during_measurement;
          Alcotest.test_case "crash discards cached report" `Quick
            test_crash_discards_cached_report;
          Alcotest.test_case "cache survives without crash" `Quick
            test_cached_report_survives_without_crash;
          Alcotest.test_case "partition heal with backoff" `Quick
            test_partition_heal_with_backoff;
          Alcotest.test_case "corruption never accepted" `Quick
            test_corruption_never_accepted;
          Alcotest.test_case "duplicate taxonomy" `Quick test_duplicate_taxonomy;
          Alcotest.test_case "retransmit taxonomy" `Quick test_retransmit_taxonomy;
          Alcotest.test_case "adaptive timeout" `Quick test_rtt_adaptive_timeout;
        ] );
      ( "erasmus",
        [
          Alcotest.test_case "volatile log gap" `Quick test_erasmus_volatile_log_gap;
          Alcotest.test_case "persistent log survives" `Quick
            test_erasmus_persistent_log_survives;
          Alcotest.test_case "no crash, no gap" `Quick test_erasmus_no_crash_no_gap;
        ] );
      ( "seed",
        [
          Alcotest.test_case "triggers survive crash" `Quick
            test_seed_triggers_survive_crash;
        ] );
      ("plans", [ qtest prop_random_plan_within_caps ]);
    ]
