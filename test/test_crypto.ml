(* Tests for the crypto substrate against official vectors (FIPS 180-4,
   RFC 7693, RFC 4231) plus structural properties. *)

open Ra_crypto

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let hex = Bytesutil.to_hex

(* --- Bytesutil ------------------------------------------------------------ *)

let test_hex_roundtrip () =
  let b = Bytes.of_string "\x00\x01\xfe\xff ok" in
  check Alcotest.bytes "roundtrip" b (Bytesutil.of_hex (Bytesutil.to_hex b));
  check Alcotest.string "known" "00fe" (Bytesutil.to_hex (Bytes.of_string "\x00\xfe"));
  Alcotest.check_raises "odd length" (Invalid_argument "Bytesutil.of_hex: odd length")
    (fun () -> ignore (Bytesutil.of_hex "abc"));
  Alcotest.check_raises "bad char"
    (Invalid_argument "Bytesutil.of_hex: invalid character") (fun () ->
      ignore (Bytesutil.of_hex "zz"))

let test_xor () =
  let a = Bytes.of_string "\x0f\xf0" and b = Bytes.of_string "\xff\xff" in
  check Alcotest.string "xor" "f00f" (hex (Bytesutil.xor a b))

let test_constant_time_equal () =
  let a = Bytes.of_string "same-bytes" in
  check Alcotest.bool "equal" true (Bytesutil.constant_time_equal a (Bytes.copy a));
  check Alcotest.bool "different" false
    (Bytesutil.constant_time_equal a (Bytes.of_string "same-byteZ"));
  check Alcotest.bool "length mismatch" false
    (Bytesutil.constant_time_equal a (Bytes.of_string "same"))

let prop_load_store_roundtrip =
  QCheck.Test.make ~name:"32/64-bit load/store roundtrips" ~count:300
    QCheck.(pair int64 (int_bound 0xFFFFFFFF))
    (fun (v64, v32) ->
      let b = Bytes.create 8 in
      Bytesutil.store64_be b 0 v64;
      let be64 = Bytesutil.load64_be b 0 in
      Bytesutil.store64_le b 0 v64;
      let le64 = Bytesutil.load64_le b 0 in
      Bytesutil.store32_be b 0 v32;
      let be32 = Bytesutil.load32_be b 0 in
      Bytesutil.store32_le b 0 v32;
      let le32 = Bytesutil.load32_le b 0 in
      Int64.equal be64 v64 && Int64.equal le64 v64 && be32 = v32 && le32 = v32)

(* --- Hash vectors ----------------------------------------------------------- *)

let vector_tests =
  let cases =
    [
      ( "sha256 empty", Sha256.hex_digest "",
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" );
      ( "sha256 abc", Sha256.hex_digest "abc",
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" );
      ( "sha256 448-bit",
        Sha256.hex_digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ( "sha256 million a", Sha256.hex_digest (String.make 1_000_000 'a'),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0" );
      ( "sha512 empty", Sha512.hex_digest "",
        "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
      );
      ( "sha512 abc", Sha512.hex_digest "abc",
        "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
      );
      ( "sha512 896-bit",
        Sha512.hex_digest
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
        "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909"
      );
      ( "blake2b empty", Blake2b.hex_digest "",
        "786a02f742015903c6c6fd852552d272912f4740e15847618a86e217f71f5419d25e1031afee585313896444934eb04b903a685b1448b755d56f701afe9be2ce"
      );
      ( "blake2b abc", Blake2b.hex_digest "abc",
        "ba80a53f981c4d0d6a2797b69f12f6e94c212f14685ac4b74b12bb6fdbffa2d17d87c5392aab792dc252d5de4533cc9518d38aa8dbf1925ab92386edd4009923"
      );
      ( "blake2s empty", Blake2s.hex_digest "",
        "69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9" );
      ( "blake2s abc", Blake2s.hex_digest "abc",
        "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982" );
    ]
  in
  List.map
    (fun (name, got, expected) ->
      Alcotest.test_case name `Quick (fun () -> check Alcotest.string name expected got))
    cases

let test_blake2_keyed () =
  let key = Bytes.of_string "secret-key-0123456789" in
  let msg = Bytes.of_string "The quick brown fox" in
  check Alcotest.string "blake2b keyed"
    "3cf1e81405b4575678170dba73f6384af3e404eae6b89f04c67cc0156c4d65bab157ed9ae5d18e55a6b7a179fc82d519a45b9d3bf8d492c18d131a1f2efe20f4"
    (hex (Blake2b.mac ~key msg));
  check Alcotest.string "blake2s keyed"
    "51d24e8e02a2571c49f3354f314abd47d15104f3a930a3acebfeaa3088b11b9a"
    (hex (Blake2s.mac ~key msg))

let test_blake2_sized () =
  check Alcotest.string "blake2b-160" "70e8ece5e293e1bda064deef6b080edde357010f"
    (hex (Blake2b.digest_sized ~size:20 (Bytes.of_string "hello world")));
  check Alcotest.string "blake2s-128" "37deae0226c30da2ab424a7b8ee14e83"
    (hex (Blake2s.digest_sized ~size:16 (Bytes.of_string "hello world")))

let test_blake2_param_validation () =
  Alcotest.check_raises "blake2b size 0"
    (Invalid_argument "Blake2b: digest size out of range") (fun () ->
      ignore (Blake2b.digest_sized ~size:0 Bytes.empty));
  Alcotest.check_raises "blake2s size 33"
    (Invalid_argument "Blake2s: digest size out of range") (fun () ->
      ignore (Blake2s.digest_sized ~size:33 Bytes.empty));
  Alcotest.check_raises "blake2s long key"
    (Invalid_argument "Blake2s: key longer than 32 bytes") (fun () ->
      ignore (Blake2s.init_keyed ~key:(Bytes.make 33 'k') ~size:32))

(* Incremental absorption must equal one-shot digests for any chunking. *)
let incremental_property (module H : Digest_intf.S) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s incremental = one-shot" H.name)
    ~count:100
    QCheck.(pair (string_of_size Gen.(0 -- 1000)) (list_of_size Gen.(0 -- 8) (int_range 1 200)))
    (fun (input, cuts) ->
      let data = Bytes.of_string input in
      let ctx = H.init () in
      let pos = ref 0 in
      List.iter
        (fun size ->
          let len = min size (Bytes.length data - !pos) in
          if len > 0 then begin
            H.update ctx data ~pos:!pos ~len;
            pos := !pos + len
          end)
        cuts;
      if !pos < Bytes.length data then
        H.update ctx data ~pos:!pos ~len:(Bytes.length data - !pos);
      Bytes.equal (H.finalize ctx) (H.digest data))

(* The optimized compress functions (unsafe array/byte accesses, rotation
   tricks) must agree with the bounds-checked reference in Checked on every
   input. Lengths concentrate around the 64/128-byte block boundaries where
   padding and buffering edge cases live. *)
let equivalence_property name optimized checked =
  let boundary_lengths =
    QCheck.Gen.oneof
      [
        QCheck.Gen.int_range 0 300;
        (* +/- 2 around multiples of 64 up to 4 blocks of 128 *)
        QCheck.Gen.(
          map2
            (fun blocks delta -> max 0 ((blocks * 64) + delta))
            (int_range 0 8) (int_range (-2) 2));
      ]
  in
  let arb =
    QCheck.make
      ~print:(fun s -> Printf.sprintf "%d bytes: %S" (String.length s) s)
      QCheck.Gen.(boundary_lengths >>= fun n -> string_size (return n))
  in
  QCheck.Test.make ~name:(name ^ " optimized = checked") ~count:300 arb
    (fun input ->
      let data = Bytes.of_string input in
      Bytes.equal (optimized data) (checked data))

let equivalence_tests =
  [
    equivalence_property "SHA-256" Sha256.digest Checked.sha256;
    equivalence_property "SHA-512" Sha512.digest Checked.sha512;
    equivalence_property "BLAKE2b" Blake2b.digest Checked.blake2b;
    equivalence_property "BLAKE2s" Blake2s.digest Checked.blake2s;
  ]

(* Batch kernel vs reference: ragged lengths biased to block boundaries
   (the lockstep/scalar hand-off points), batch sizes covering 0, 1, odd
   counts and lane-count boundaries for every supported lane width. *)
let prop_digest_many_matches_checked =
  let boundary_len =
    QCheck.Gen.(
      frequency
        [
          (3, 0 -- 300);
          (2, oneofl [ 0; 1; 55; 56; 63; 64; 65; 119; 127; 128; 129; 191; 192 ]);
        ])
  in
  let arb =
    QCheck.make
      ~print:(fun msgs ->
        Printf.sprintf "[%s]"
          (String.concat "; " (List.map string_of_int msgs)))
      QCheck.Gen.(0 -- 9 >>= fun n -> list_size (return n) boundary_len)
  in
  QCheck.Test.make ~name:"digest_many (lanes 1/2/4) = map Checked.sha256"
    ~count:300 arb (fun lens ->
      let msgs =
        Array.of_list
          (List.mapi
             (fun i len ->
               Bytes.init len (fun j -> Char.chr ((i + (j * 131)) land 0xFF)))
             lens)
      in
      let reference = Checked.sha256_many msgs in
      List.for_all
        (fun lanes ->
          let got = Sha256_multi.digest_many ~lanes msgs in
          Array.length got = Array.length reference
          && Array.for_all2 Bytes.equal got reference)
        [ 1; 2; 4 ])

let prop_algo_digest_many =
  QCheck.Test.make ~name:"Algo.digest_many = map Algo.digest" ~count:60
    QCheck.(list_of_size Gen.(0 -- 6) (string_of_size Gen.(0 -- 200)))
    (fun inputs ->
      let msgs = Array.of_list (List.map Bytes.of_string inputs) in
      List.for_all
        (fun h ->
          Array.for_all2 Bytes.equal
            (Algo.digest_many h msgs)
            (Array.map (Algo.digest h) msgs))
        Algo.all_hashes)

let test_digest_many_lane_validation () =
  Alcotest.check_raises "lanes = 3"
    (Invalid_argument "Sha256_multi.digest_many: lanes must be 1, 2 or 4")
    (fun () -> ignore (Sha256_multi.digest_many ~lanes:3 [| Bytes.empty |]))

(* cross-check: this test IS the cross-check — unsafe_load* diffed against
   the bounds-checked load* on every offset *)
(* bounds: i ranges over 0..24 of a 32-byte buffer, so i+7 <= 31 *)
let test_unsafe_load_matches_checked () =
  let b = Bytes.init 32 (fun i -> Char.chr ((i * 37 + 5) land 0xFF)) in
  for i = 0 to 24 do
    check Alcotest.int "load32_be" (Bytesutil.load32_be b i)
      (Bytesutil.unsafe_load32_be b i);
    check Alcotest.int "load32_le" (Bytesutil.load32_le b i)
      (Bytesutil.unsafe_load32_le b i);
    check Alcotest.int64 "load64_be" (Bytesutil.load64_be b i)
      (Bytesutil.unsafe_load64_be b i);
    check Alcotest.int64 "load64_le" (Bytesutil.load64_le b i)
      (Bytesutil.unsafe_load64_le b i)
  done

let test_update_bounds () =
  let ctx = Sha256.init () in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Sha256.update: slice out of bounds") (fun () ->
      Sha256.update ctx (Bytes.create 4) ~pos:2 ~len:4)

(* --- HMAC (RFC 4231) ---------------------------------------------------------- *)

let test_hmac_vectors () =
  let case ~key ~msg = Hmac.Sha256.mac ~key:(Bytes.of_string key) (Bytes.of_string msg) in
  check Alcotest.string "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (hex (case ~key:(String.make 20 '\x0b') ~msg:"Hi There"));
  check Alcotest.string "case 2 (short key)"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex (case ~key:"Jefe" ~msg:"what do ya want for nothing?"));
  check Alcotest.string "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (hex (case ~key:(String.make 20 '\xaa') ~msg:(String.make 50 '\xdd')));
  check Alcotest.string "case 6 (key longer than block)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (hex
       (case ~key:(String.make 131 '\xaa')
          ~msg:"Test Using Larger Than Block-Size Key - Hash Key First"));
  check Alcotest.string "sha512 case 1"
    "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cdedaa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
    (hex
       (Hmac.Sha512.mac
          ~key:(Bytes.of_string (String.make 20 '\x0b'))
          (Bytes.of_string "Hi There")))

let test_hmac_verify () =
  let key = Bytes.of_string "k" and msg = Bytes.of_string "m" in
  let tag = Hmac.Sha256.mac ~key msg in
  check Alcotest.bool "verify ok" true (Hmac.Sha256.verify ~key ~tag msg);
  check Alcotest.bool "verify bad msg" false
    (Hmac.Sha256.verify ~key ~tag (Bytes.of_string "x"));
  check Alcotest.bool "verify bad key" false
    (Hmac.Sha256.verify ~key:(Bytes.of_string "kk") ~tag msg)

let test_hmac_schedule_reuse () =
  let key = Bytes.of_string "schedule-key" in
  let sched = Hmac.Sha256.schedule ~key in
  let m1 = Bytes.of_string "first message" and m2 = Bytes.of_string "second" in
  check Alcotest.string "mac_with = mac" (hex (Hmac.Sha256.mac ~key m1))
    (hex (Hmac.Sha256.mac_with sched m1));
  (* The schedule must survive a finalize: this second use is exactly the
     "context dies after final" bug the schedule split fixes. *)
  check Alcotest.string "schedule survives finalize"
    (hex (Hmac.Sha256.mac ~key m2))
    (hex (Hmac.Sha256.mac_with sched m2));
  let ctx = Hmac.Sha256.init_with sched in
  Hmac.Sha256.update ctx m1 ~pos:0 ~len:5;
  Hmac.Sha256.update ctx m1 ~pos:5 ~len:(Bytes.length m1 - 5);
  check Alcotest.string "init_with incremental" (hex (Hmac.Sha256.mac ~key m1))
    (hex (Hmac.Sha256.finalize ctx));
  check Alcotest.bool "verify_with ok" true
    (Hmac.Sha256.verify_with sched ~tag:(Hmac.Sha256.mac ~key m1) m1)

let prop_hmac_verify_many =
  QCheck.Test.make ~name:"verify_many = map verify (incl. tampered tags)"
    ~count:100
    QCheck.(
      pair (string_of_size Gen.(0 -- 64))
        (small_list (pair (string_of_size Gen.(0 -- 120)) bool)))
    (fun (key, specs) ->
      let key = Bytes.of_string key in
      let pairs =
        Array.of_list
          (List.map
             (fun (msg, tamper) ->
               let msg = Bytes.of_string msg in
               let tag = Hmac.Sha256.mac ~key msg in
               if tamper then
                 Bytes.set tag 0 (Char.chr (Char.code (Bytes.get tag 0) lxor 1));
               (msg, tag))
             specs)
      in
      let got = Hmac.Sha256.verify_many ~key pairs in
      let expected =
        Array.map (fun (msg, tag) -> Hmac.Sha256.verify ~key ~tag msg) pairs
      in
      got = expected
      && Array.for_all2
           (fun ok (_, tamper) -> ok = not tamper)
           got
           (Array.of_list specs))

let prop_hmac_incremental =
  QCheck.Test.make ~name:"HMAC incremental = one-shot" ~count:100
    QCheck.(pair (string_of_size Gen.(0 -- 64)) (string_of_size Gen.(0 -- 500)))
    (fun (key, msg) ->
      let key = Bytes.of_string key and msg = Bytes.of_string msg in
      let ctx = Hmac.Sha256.init ~key in
      let half = Bytes.length msg / 2 in
      Hmac.Sha256.update ctx msg ~pos:0 ~len:half;
      Hmac.Sha256.update ctx msg ~pos:half ~len:(Bytes.length msg - half);
      Bytes.equal (Hmac.Sha256.finalize ctx) (Hmac.Sha256.mac ~key msg))

(* --- AES-128 / CMAC (FIPS 197, NIST SP 800-38B) ------------------------------------ *)

let test_aes_fips197 () =
  let key = Aes.expand_key (Bytesutil.of_hex "000102030405060708090a0b0c0d0e0f") in
  check Alcotest.string "fips-197 appendix C.1"
    "69c4e0d86a7b0430d8cdb78070b4c55a"
    (hex (Aes.encrypt_block key (Bytesutil.of_hex "00112233445566778899aabbccddeeff")))

let test_aes_validation () =
  Alcotest.check_raises "short key" (Invalid_argument "Aes.expand_key: need 16 bytes")
    (fun () -> ignore (Aes.expand_key (Bytes.create 15)));
  let key = Aes.expand_key (Bytes.create 16) in
  Alcotest.check_raises "short block"
    (Invalid_argument "Aes.encrypt_block: need 16 bytes") (fun () ->
      ignore (Aes.encrypt_block key (Bytes.create 8)))

let cmac_key = "2b7e151628aed2a6abf7158809cf4f3c"

let test_cmac_sp800_38b () =
  let key = Bytesutil.of_hex cmac_key in
  let case msg_hex expected =
    check Alcotest.string expected expected
      (hex (Cmac.mac ~key (Bytesutil.of_hex msg_hex)))
  in
  case "" "bb1d6929e95937287fa37d129b756746";
  case "6bc1bee22e409f96e93d7e117393172a" "070a16b46b4d4144f79bdd9dd04a287c";
  (* 40 bytes: exercises the incomplete-final-block path over 3 blocks *)
  case
    "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411"
    "dfa66747de9ae63030ca32611497c827";
  (* 64 bytes: complete final block path *)
  case
    "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"
    "51f0bebf7e3b9d92fc49741779363cfe"

let test_cmac_verify () =
  let key = Bytesutil.of_hex cmac_key in
  let msg = Bytes.of_string "measurement result" in
  let tag = Cmac.mac ~key msg in
  check Alcotest.bool "verify ok" true (Cmac.verify ~key ~tag msg);
  check Alcotest.bool "verify bad" false
    (Cmac.verify ~key ~tag (Bytes.of_string "measurement forged"))

(* Raw CBC-MAC's classic flaw: the *observed* tag(m) = E(m) lets anyone
   forge tag(m || (m xor tag)) without the key. Under CMAC the observed tag
   is E(m xor K1), so the same recipe built from what the attacker actually
   sees no longer predicts the forged message's tag. *)
let test_cbc_mac_length_extension () =
  let key = Bytesutil.of_hex cmac_key in
  let m = Bytes.of_string "0123456789abcdef" (* one full block *) in
  let raw_tag = Cmac.cbc_mac_raw ~key m in
  let forged_raw = Bytes.cat m (Bytesutil.xor m raw_tag) in
  check Alcotest.bytes "raw CBC-MAC forgery works" raw_tag
    (Cmac.cbc_mac_raw ~key forged_raw);
  let cmac_tag = Cmac.mac ~key m in
  let forged_cmac = Bytes.cat m (Bytesutil.xor m cmac_tag) in
  check Alcotest.bool "same recipe fails against CMAC" false
    (Bytes.equal cmac_tag (Cmac.mac ~key forged_cmac))

(* --- HKDF (RFC 5869) -------------------------------------------------------------- *)

let test_hkdf_rfc5869_case1 () =
  let ikm = Bytes.make 22 '\x0b' in
  let salt = Bytesutil.of_hex "000102030405060708090a0b0c" in
  let info = Bytesutil.of_hex "f0f1f2f3f4f5f6f7f8f9" in
  let prk = Hkdf.extract ~salt ~ikm () in
  check Alcotest.string "prk"
    "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    (hex prk);
  check Alcotest.string "okm"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    (hex (Hkdf.expand ~prk ~info ~length:42))

let test_hkdf_rfc5869_case2 () =
  let ikm = Bytes.init 80 (fun i -> Char.chr i) in
  let salt = Bytes.init 80 (fun i -> Char.chr (0x60 + i)) in
  let info = Bytes.init 80 (fun i -> Char.chr (0xb0 + i)) in
  check Alcotest.string "okm (multi-block expand)"
    "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71cc30c58179ec3e87c14c01d5c1f3434f1d87"
    (hex (Hkdf.derive ~salt ~ikm ~info ~length:82 ()))

let test_hkdf_rfc5869_case3 () =
  let ikm = Bytes.make 22 '\x0b' in
  check Alcotest.string "okm (default salt, empty info)"
    "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
    (hex (Hkdf.derive ~ikm ~info:Bytes.empty ~length:42 ()))

let test_hkdf_validation () =
  let prk = Hkdf.extract ~ikm:(Bytes.of_string "x") () in
  Alcotest.check_raises "zero length" (Invalid_argument "Hkdf.expand: length out of range")
    (fun () -> ignore (Hkdf.expand ~prk ~info:Bytes.empty ~length:0));
  Alcotest.check_raises "too long" (Invalid_argument "Hkdf.expand: length out of range")
    (fun () -> ignore (Hkdf.expand ~prk ~info:Bytes.empty ~length:(255 * 32 + 1)))

let test_hkdf_info_separation () =
  let ikm = Bytes.of_string "master" in
  let a = Hkdf.derive ~ikm ~info:(Bytes.of_string "device-a") ~length:32 () in
  let b = Hkdf.derive ~ikm ~info:(Bytes.of_string "device-b") ~length:32 () in
  check Alcotest.bool "different info, different keys" false (Bytes.equal a b)

(* --- Algo / Mac_stream ---------------------------------------------------------- *)

let test_algo_names () =
  List.iter
    (fun h ->
      match Algo.hash_of_name (Algo.hash_name h) with
      | Some h' -> check Alcotest.bool "roundtrip" true (h = h')
      | None -> Alcotest.failf "name roundtrip failed for %s" (Algo.hash_name h))
    Algo.all_hashes;
  check Alcotest.bool "case-insensitive" true (Algo.hash_of_name "sha256" = Some Algo.SHA_256);
  check Alcotest.bool "unknown" true (Algo.hash_of_name "md5" = None)

let test_algo_digest_sizes () =
  check Alcotest.int "sha256" 32 (Algo.digest_size Algo.SHA_256);
  check Alcotest.int "sha512" 64 (Algo.digest_size Algo.SHA_512);
  check Alcotest.int "blake2b" 64 (Algo.digest_size Algo.BLAKE2b);
  check Alcotest.int "blake2s" 32 (Algo.digest_size Algo.BLAKE2s)

let test_mac_stream_matches_oneshot () =
  let key = Bytes.of_string "stream-key" in
  let msg = Bytes.of_string "stream-message-payload" in
  List.iter
    (fun hash ->
      let t = Mac_stream.create hash ~key in
      Mac_stream.update t msg;
      let streamed = Mac_stream.finalize t in
      check Alcotest.bytes (Algo.hash_name hash) (Algo.hmac hash ~key msg) streamed)
    Algo.all_hashes

let test_mac_stream_update_sub () =
  let key = Bytes.of_string "k" in
  let msg = Bytes.of_string "0123456789" in
  let t = Mac_stream.create Algo.SHA_256 ~key in
  Mac_stream.update_sub t msg ~pos:0 ~len:4;
  Mac_stream.update_sub t msg ~pos:4 ~len:6;
  check Alcotest.bytes "chunked" (Mac_stream.mac Algo.SHA_256 ~key msg) (Mac_stream.finalize t)

let test_keys_differ () =
  let msg = Bytes.of_string "same message" in
  List.iter
    (fun hash ->
      let a = Algo.hmac hash ~key:(Bytes.of_string "key-a") msg in
      let b = Algo.hmac hash ~key:(Bytes.of_string "key-b") msg in
      check Alcotest.bool (Algo.hash_name hash ^ " key separation") false (Bytes.equal a b))
    Algo.all_hashes

let () =
  Alcotest.run "ra_crypto"
    [
      ( "bytesutil",
        [
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "xor" `Quick test_xor;
          Alcotest.test_case "constant-time equal" `Quick test_constant_time_equal;
          qtest prop_load_store_roundtrip;
        ] );
      ("vectors", vector_tests);
      ( "blake2 modes",
        [
          Alcotest.test_case "keyed" `Quick test_blake2_keyed;
          Alcotest.test_case "sized" `Quick test_blake2_sized;
          Alcotest.test_case "parameter validation" `Quick test_blake2_param_validation;
        ] );
      ( "optimized vs checked",
        Alcotest.test_case "unsafe loads" `Quick test_unsafe_load_matches_checked
        :: List.map qtest equivalence_tests );
      ( "batch digest",
        [
          qtest prop_digest_many_matches_checked;
          qtest prop_algo_digest_many;
          Alcotest.test_case "lane validation" `Quick
            test_digest_many_lane_validation;
        ] );
      ( "incremental",
        [
          qtest (incremental_property (module Sha256));
          qtest (incremental_property (module Sha512));
          qtest (incremental_property (module Blake2b));
          qtest (incremental_property (module Blake2s));
          Alcotest.test_case "bounds" `Quick test_update_bounds;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc4231 vectors" `Quick test_hmac_vectors;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
          Alcotest.test_case "schedule reuse" `Quick test_hmac_schedule_reuse;
          qtest prop_hmac_verify_many;
          qtest prop_hmac_incremental;
        ] );
      ( "aes/cmac",
        [
          Alcotest.test_case "fips-197" `Quick test_aes_fips197;
          Alcotest.test_case "validation" `Quick test_aes_validation;
          Alcotest.test_case "sp800-38b vectors" `Quick test_cmac_sp800_38b;
          Alcotest.test_case "verify" `Quick test_cmac_verify;
          Alcotest.test_case "cbc-mac length extension" `Quick
            test_cbc_mac_length_extension;
        ] );
      ( "hkdf",
        [
          Alcotest.test_case "rfc5869 case 1" `Quick test_hkdf_rfc5869_case1;
          Alcotest.test_case "rfc5869 case 2" `Quick test_hkdf_rfc5869_case2;
          Alcotest.test_case "rfc5869 case 3" `Quick test_hkdf_rfc5869_case3;
          Alcotest.test_case "validation" `Quick test_hkdf_validation;
          Alcotest.test_case "info separation" `Quick test_hkdf_info_separation;
        ] );
      ( "algo",
        [
          Alcotest.test_case "names" `Quick test_algo_names;
          Alcotest.test_case "digest sizes" `Quick test_algo_digest_sizes;
          Alcotest.test_case "mac stream one-shot" `Quick test_mac_stream_matches_oneshot;
          Alcotest.test_case "mac stream chunks" `Quick test_mac_stream_update_sub;
          Alcotest.test_case "key separation" `Quick test_keys_differ;
        ] );
    ]
