(* Tests for the fleet supervisor: health state machine legality, circuit
   breaker monotonicity, the quarantine-and-remediate pipeline, gap-audit
   ingestion, and jobs-invariance of the fleet-chaos counters. *)

open Ra_sim
open Ra_device
open Ra_core
open Ra_supervisor
module Fleet_chaos = Ra_experiments.Fleet_chaos

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- state machine ------------------------------------------------------- *)

let all_causes =
  [
    Health.Verified_clean;
    Health.Verdict_tampered;
    Health.Report_timeout;
    Health.Gap_audit;
    Health.Breaker_open;
    Health.Probe_exhausted;
    Health.Flapping;
    Health.Isolated;
    Health.Update_pushed;
    Health.Update_verified;
    Health.Update_failed;
    Health.Probation_passed;
    Health.Probation_failed;
  ]

(* Whatever causes are thrown at the machine, in whatever order, every
   recorded transition is a declared edge and the recorded chain is
   contiguous from Healthy. *)
let prop_machine_never_leaves_declared_edges =
  QCheck.Test.make ~name:"no transition outside declared edges" ~count:500
    QCheck.(list (int_bound (List.length all_causes - 1)))
    (fun causes ->
      let m = Health.create () in
      List.iteri
        (fun round c -> ignore (Health.apply m ~round (List.nth all_causes c)))
        causes;
      let rec chain from_ = function
        | [] -> true
        | tr :: rest ->
          tr.Health.from_ = from_
          && List.mem (tr.Health.from_, tr.Health.cause, tr.Health.to_) Health.edges
          && chain tr.Health.to_ rest
      in
      chain Health.Healthy (Health.history m)
      && Health.transitions m = List.length (Health.history m))

let test_machine_absorbs_undeclared () =
  let m = Health.create () in
  (* no edge Healthy -[Update_verified]-> ... : absorbed, nothing recorded *)
  check Alcotest.bool "absorbed" true
    (Health.apply m ~round:0 Health.Update_verified = Health.Healthy);
  check Alcotest.int "nothing recorded" 0 (Health.transitions m);
  ignore (Health.apply m ~round:1 Health.Verdict_tampered);
  ignore (Health.apply m ~round:2 Health.Isolated);
  check Alcotest.bool "quarantine reason" true
    (Health.quarantine_reason m = Some Health.Isolated);
  check Alcotest.bool "compromised instant" true
    (Health.entered_compromised_at m = Some 1)

(* --- circuit breaker ----------------------------------------------------- *)

(* Monotonicity: while the breaker is open, allow never fires before the
   recorded deadline, whatever the op sequence. *)
let prop_breaker_no_probe_before_deadline =
  QCheck.Test.make ~name:"no probe before the backoff deadline" ~count:500
    QCheck.(pair small_int (small_list (pair (int_bound 2) (int_bound 10_000))))
    (fun (seed, ops) ->
      let b = Breaker.create ~rng:(Prng.create ~seed) () in
      let now = ref Timebase.zero in
      List.for_all
        (fun (op, dt_ms) ->
          now := Timebase.add !now (Timebase.ms dt_ms);
          match op with
          | 0 ->
            Breaker.record_failure b ~now:!now ~rto_hint:(Timebase.s 1);
            true
          | 1 ->
            Breaker.record_success b;
            true
          | _ -> (
            match Breaker.deadline b with
            | Some deadline when !now < deadline ->
              not (Breaker.allow b ~now:!now)
            | _ ->
              ignore (Breaker.allow b ~now:!now);
              true))
        ops)

let test_breaker_lifecycle () =
  let b = Breaker.create ~rng:(Prng.create ~seed:1) () in
  let now = Timebase.s 1 in
  check Alcotest.bool "closed allows" true (Breaker.allow b ~now);
  Breaker.record_failure b ~now ~rto_hint:(Timebase.ms 100);
  check Alcotest.bool "one failure: still closed" true (Breaker.allow b ~now);
  Breaker.record_failure b ~now ~rto_hint:(Timebase.ms 100);
  check Alcotest.bool "threshold: open" true (Breaker.phase b = Breaker.Open);
  check Alcotest.bool "open blocks" false (Breaker.allow b ~now);
  let deadline = Option.get (Breaker.deadline b) in
  check Alcotest.bool "cooldown >= base" true
    (Timebase.sub deadline now >= Timebase.s 30);
  (* probe at the deadline, fail it, probe again, fail, probe, fail:
     exhausted *)
  let now = ref deadline in
  for probe = 1 to 3 do
    check Alcotest.bool "probe allowed at deadline" true (Breaker.allow b ~now:!now);
    check Alcotest.bool "half-open" true (Breaker.phase b = Breaker.Half_open);
    check Alcotest.bool "one probe at a time" false (Breaker.allow b ~now:!now);
    Breaker.record_failure b ~now:!now ~rto_hint:(Timebase.ms 100);
    check Alcotest.int "probe counted" probe (Breaker.probes b);
    now := Option.value (Breaker.deadline b) ~default:!now
  done;
  check Alcotest.bool "exhausted after max probes" true (Breaker.exhausted b);
  (* a success resets everything *)
  ignore (Breaker.allow b ~now:!now);
  Breaker.record_success b;
  check Alcotest.bool "closed again" true (Breaker.phase b = Breaker.Closed);
  check Alcotest.bool "probe budget restored" false (Breaker.exhausted b);
  check Alcotest.int "failures cleared" 0 (Breaker.consecutive_failures b)

(* --- supervisor integration ---------------------------------------------- *)

let small_device_config =
  {
    Device.default_config with
    Device.blocks = 16;
    block_size = 256;
    modeled_block_bytes = 1024 * 1024;
  }

let make_fleet n =
  let fleet =
    Fleet.create ~master_secret:(Bytes.of_string "supervisor test master secret") ()
  in
  let ids =
    List.init n (fun i ->
        let id = Printf.sprintf "dev-%02d" i in
        ignore (Fleet.provision fleet id ~config:small_device_config ());
        id)
  in
  (fleet, ids)

let test_clean_fleet_converges_immediately () =
  let fleet, ids = make_fleet 4 in
  let sup = Supervisor.create fleet in
  let report = Supervisor.run ~jobs:1 sup in
  check Alcotest.bool "converged" true report.Supervisor.converged;
  check Alcotest.int "everyone healthy" 4 (List.length report.Supervisor.healthy);
  check Alcotest.int "no timeouts" 0 report.Supervisor.timeouts;
  List.iter
    (fun id ->
      check Alcotest.bool "healthy" true (Supervisor.health sup id = Health.Healthy))
    ids

let test_remediation_pipeline () =
  let fleet, _ = make_fleet 2 in
  let sup = Supervisor.create fleet in
  let device = Fleet.device fleet "dev-01" in
  ignore
    (Ra_malware.Malware.install device
       ~rng:(Prng.create ~seed:9)
       ~block:5 ~priority:8 Ra_malware.Malware.Static);
  let report = Supervisor.run ~jobs:1 sup in
  check Alcotest.bool "converged" true report.Supervisor.converged;
  check Alcotest.bool "re-admitted healthy" true
    (Supervisor.health sup "dev-01" = Health.Healthy);
  check Alcotest.bool "detected in round 0" true
    (List.assoc_opt "dev-01" report.Supervisor.detections = Some 0);
  check Alcotest.bool "remediated" true
    (List.mem "dev-01" report.Supervisor.remediated);
  (* the full pipeline is on the record *)
  let history = Health.history (Supervisor.machine sup "dev-01") in
  let causes = List.map (fun tr -> tr.Health.cause) history in
  check
    (Alcotest.list Alcotest.string)
    "pipeline edges"
    [
      "verdict-tampered"; "isolated"; "update-pushed"; "update-verified";
      "probation-passed";
    ]
    (List.map Health.cause_to_string causes);
  (* the clean bystander was untouched *)
  check Alcotest.bool "bystander healthy" true
    (Supervisor.health sup "dev-00" = Health.Healthy);
  check Alcotest.int "no false detections" 1
    (List.length report.Supervisor.detections)

let test_permanent_partition_quarantined () =
  let fleet, _ = make_fleet 2 in
  let sup = Supervisor.create fleet in
  Supervisor.set_channel sup "dev-01"
    {
      Channel.ideal with
      Channel.delay = Timebase.ms 40;
      partitions = [ (Timebase.zero, Timebase.s 100_000) ];
    };
  let report = Supervisor.run ~jobs:1 sup in
  check Alcotest.bool "converged" true report.Supervisor.converged;
  check Alcotest.bool "quarantined as unreachable" true
    (List.assoc_opt "dev-01" report.Supervisor.quarantined
    = Some Health.Probe_exhausted);
  check Alcotest.bool "never falsely detected" true
    (List.assoc_opt "dev-01" report.Supervisor.detections = None);
  (* unreachable devices are not remediation candidates: no update pushes *)
  check Alcotest.int "no pushes at an unresponsive device" 0
    report.Supervisor.remediation_pushes;
  let b = Supervisor.breaker sup "dev-01" in
  check Alcotest.bool "breaker exhausted" true (Breaker.exhausted b)

let test_gap_audit_ingestion () =
  let fleet, _ = make_fleet 1 in
  let sup = Supervisor.create fleet in
  (* a gap wider than the allowance demotes to Suspect (then the clean
     probe re-admits); within the allowance it is absorbed *)
  Supervisor.note_gap_audit sup "dev-00"
    { Erasmus.audit_clean = 5; audit_tampered = 0; gaps = [ (3, 5) ]; out_of_order = 0 };
  Supervisor.round ~jobs:1 sup;
  let history = Health.history (Supervisor.machine sup "dev-00") in
  check Alcotest.bool "gap recorded as demotion" true
    (List.exists
       (fun tr -> tr.Health.cause = Health.Gap_audit && tr.Health.to_ = Health.Suspect)
       history);
  check Alcotest.bool "clean probe re-admits" true
    (Supervisor.health sup "dev-00" = Health.Healthy);
  Supervisor.note_gap_audit sup "dev-00"
    { Erasmus.audit_clean = 5; audit_tampered = 0; gaps = [ (7, 7) ]; out_of_order = 0 };
  let before = Health.transitions (Supervisor.machine sup "dev-00") in
  Supervisor.round ~jobs:1 sup;
  check Alcotest.int "gap within allowance absorbed" before
    (Health.transitions (Supervisor.machine sup "dev-00"));
  (* a tampered stored report is verification evidence: the remediation
     pipeline fires *)
  Supervisor.note_gap_audit sup "dev-00"
    { Erasmus.audit_clean = 4; audit_tampered = 1; gaps = []; out_of_order = 0 };
  let report = Supervisor.run ~jobs:1 sup in
  check Alcotest.bool "tampered audit triggers detection" true
    (List.assoc_opt "dev-00" report.Supervisor.detections <> None);
  check Alcotest.bool "remediated and re-admitted" true
    (Supervisor.health sup "dev-00" = Health.Healthy)

(* --- fleet chaos --------------------------------------------------------- *)

let test_fleet_chaos_invariants_and_jobs_invariance () =
  let r1 = Fleet_chaos.run ~devices:30 ~seed:11 ~jobs:1 () in
  check (Alcotest.list Alcotest.string) "invariants hold" [] r1.Fleet_chaos.violations;
  let r4 = Fleet_chaos.run ~devices:30 ~seed:11 ~jobs:4 () in
  check Alcotest.string "counters bit-identical under jobs"
    r1.Fleet_chaos.report.Supervisor.counter_digest
    r4.Fleet_chaos.report.Supervisor.counter_digest

let () =
  Alcotest.run "ra_supervisor"
    [
      ( "health",
        [
          qtest prop_machine_never_leaves_declared_edges;
          Alcotest.test_case "absorbs undeclared causes" `Quick
            test_machine_absorbs_undeclared;
        ] );
      ( "breaker",
        [
          qtest prop_breaker_no_probe_before_deadline;
          Alcotest.test_case "lifecycle" `Quick test_breaker_lifecycle;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "clean fleet converges" `Quick
            test_clean_fleet_converges_immediately;
          Alcotest.test_case "remediation pipeline" `Quick test_remediation_pipeline;
          Alcotest.test_case "permanent partition quarantined" `Slow
            test_permanent_partition_quarantined;
          Alcotest.test_case "gap audit ingestion" `Quick test_gap_audit_ingestion;
        ] );
      ( "fleet-chaos",
        [
          Alcotest.test_case "invariants + jobs invariance" `Slow
            test_fleet_chaos_invariants_and_jobs_invariance;
        ] );
    ]
