(* Tests for the core attestation library: schemes, the measurement process,
   verifier, consistency checker, protocol, SMARM, ERASMUS, SeED and QoA. *)

open Ra_sim
open Ra_device
open Ra_core

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let small_device ?(blocks = 8) ?(data_blocks = []) ?(seed = 2) () =
  Device.create
    {
      Device.default_config with
      Device.seed;
      blocks;
      block_size = 128;
      modeled_block_bytes = 1024 * 1024;
      data_blocks;
    }

let run_mp ?(config = Mp.default_config) ?hooks device =
  let report = ref None in
  Mp.run device config
    ~nonce:(Prng.bytes (Engine.prng device.Device.engine) 16)
    ?hooks
    ~on_complete:(fun r -> report := Some r)
    ();
  Engine.run device.Device.engine;
  match !report with Some r -> r | None -> Alcotest.fail "MP did not complete"

(* --- Scheme -------------------------------------------------------------- *)

let test_scheme_names () =
  List.iter
    (fun s ->
      match Scheme.of_name s.Scheme.name with
      | Some s' -> check Alcotest.string "roundtrip" s.Scheme.name s'.Scheme.name
      | None -> Alcotest.failf "of_name failed for %s" s.Scheme.name)
    Scheme.all_basic;
  check Alcotest.bool "unknown" true (Scheme.of_name "hocus" = None);
  check Alcotest.bool "smart is atomic" true Scheme.smart.Scheme.atomic;
  check Alcotest.bool "smarm shuffles" true (Scheme.smarm.Scheme.order = Scheme.Shuffled);
  check Alcotest.bool "zero-data flag" true
    (Scheme.with_zero_data Scheme.no_lock).Scheme.zero_data;
  check Alcotest.bool "ext release delay" true
    (Scheme.lock_release_delay (Scheme.all_lock_ext (Timebase.s 2)) = Some (Timebase.s 2));
  check Alcotest.bool "non-ext has none" true
    (Scheme.lock_release_delay Scheme.dec_lock = None)

(* --- Mp / Report ------------------------------------------------------------ *)

let test_mp_produces_verifiable_report () =
  List.iter
    (fun scheme ->
      let device = small_device () in
      let verifier = Verifier.of_device device in
      let report = run_mp ~config:{ Mp.default_config with Mp.scheme } device in
      check Alcotest.string (scheme.Scheme.name ^ " named") scheme.Scheme.name
        report.Report.scheme_name;
      check Alcotest.bool
        (scheme.Scheme.name ^ " clean device verifies")
        true
        (Verifier.verify verifier report = Verifier.Clean))
    Scheme.all_basic

let test_mp_duration_matches_model () =
  let device = small_device () in
  let report = run_mp device in
  let expected =
    Cost_model.hash_time device.Device.config.Device.cost Ra_crypto.Algo.SHA_256
      ~bytes:(Device.attested_bytes device)
  in
  let duration = Timebase.sub report.Report.t_end report.Report.t_start in
  check Alcotest.int "duration = model time" expected duration

let test_mp_signature_adds_time () =
  let sign_cost device = Cost_model.sign_time device.Device.config.Device.cost Cost_model.ECDSA_256 in
  (* Atomic MP: the signature is part of the single uninterruptible job, so
     te moves out by exactly the signing cost. *)
  let plain_atomic = run_mp (small_device ()) in
  let device = small_device () in
  let signed_atomic =
    run_mp ~config:{ Mp.default_config with Mp.signature = Some Cost_model.ECDSA_256 } device
  in
  check Alcotest.int "atomic te includes signing"
    (Timebase.add
       (Timebase.sub plain_atomic.Report.t_end plain_atomic.Report.t_start)
       (sign_cost device))
    (Timebase.sub signed_atomic.Report.t_end signed_atomic.Report.t_start);
  (* Interruptible MP: te is hashing only; the signing job runs after. *)
  let plain_inter =
    run_mp ~config:{ Mp.default_config with Mp.scheme = Scheme.no_lock } (small_device ())
  in
  let signed_inter =
    run_mp
      ~config:
        { Mp.default_config with Mp.scheme = Scheme.no_lock;
          signature = Some Cost_model.ECDSA_256 }
      (small_device ())
  in
  check Alcotest.int "interruptible te excludes signing"
    (Timebase.sub plain_inter.Report.t_end plain_inter.Report.t_start)
    (Timebase.sub signed_inter.Report.t_end signed_inter.Report.t_start);
  check Alcotest.bool "signature recorded" true
    (signed_atomic.Report.signature = Some Cost_model.ECDSA_256)

let test_mp_order_shuffled () =
  let device = small_device ~blocks:64 () in
  let report = run_mp ~config:{ Mp.default_config with Mp.scheme = Scheme.smarm } device in
  let sorted = Array.copy report.Report.order in
  Array.sort Int.compare sorted;
  check Alcotest.bool "order is a permutation" true
    (sorted = Array.init 64 (fun i -> i));
  check Alcotest.bool "order is not the identity" true
    (report.Report.order <> Array.init 64 (fun i -> i))

let test_mp_interruptible_hooks_fire () =
  let device = small_device () in
  let boundaries = ref [] in
  let hooks =
    {
      Mp.on_start = (fun () -> boundaries := 0 :: !boundaries);
      on_block_measured = (fun ~measured ~total:_ -> boundaries := measured :: !boundaries);
    }
  in
  ignore (run_mp ~config:{ Mp.default_config with Mp.scheme = Scheme.no_lock } ~hooks device);
  check (Alcotest.list Alcotest.int) "start + every boundary"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]
    (List.rev !boundaries)

let test_mp_atomic_hooks_silent () =
  let device = small_device () in
  let fired = ref false in
  let hooks =
    {
      Mp.on_start = (fun () -> fired := true);
      on_block_measured = (fun ~measured:_ ~total:_ -> fired := true);
    }
  in
  ignore (run_mp ~hooks device);
  check Alcotest.bool "no interruptible points under SMART" false !fired

let test_mp_data_copy () =
  let device = small_device ~data_blocks:[ 2; 5 ] () in
  let report = run_mp ~config:{ Mp.default_config with Mp.scheme = Scheme.no_lock } device in
  check Alcotest.int "both data blocks copied" 2 (List.length report.Report.data_copy);
  check Alcotest.bool "copy of block 2 present" true
    (List.mem_assoc 2 report.Report.data_copy);
  (* zero-data variant ships no copy *)
  let device2 = small_device ~data_blocks:[ 2; 5 ] () in
  let report2 =
    run_mp
      ~config:{ Mp.default_config with Mp.scheme = Scheme.with_zero_data Scheme.no_lock }
      device2
  in
  check Alcotest.int "zero-data ships no copy" 0 (List.length report2.Report.data_copy)

let test_mac_over_deterministic () =
  let key = Bytes.of_string "k" and nonce = Bytes.of_string "n" in
  let content b = Bytes.make 4 (Char.chr (97 + b)) in
  let mac order =
    Mp.mac_over ~hash:Ra_crypto.Algo.SHA_256 ~key ~nonce ~counter:None ~order
      ~block_content:content
  in
  check Alcotest.bytes "deterministic" (mac [| 0; 1; 2 |]) (mac [| 0; 1; 2 |]);
  check Alcotest.bool "order matters" false
    (Bytes.equal (mac [| 0; 1; 2 |]) (mac [| 2; 1; 0 |]));
  let with_counter c =
    Mp.mac_over ~hash:Ra_crypto.Algo.SHA_256 ~key ~nonce ~counter:(Some c)
      ~order:[| 0 |] ~block_content:content
  in
  check Alcotest.bool "counter matters" false
    (Bytes.equal (with_counter 1) (with_counter 2))

(* --- Report wire format ---------------------------------------------------- *)

let report_equal a b =
  a.Report.scheme_name = b.Report.scheme_name
  && a.Report.hash = b.Report.hash
  && Bytes.equal a.Report.nonce b.Report.nonce
  && a.Report.order = b.Report.order
  && Bytes.equal a.Report.mac b.Report.mac
  && List.length a.Report.data_copy = List.length b.Report.data_copy
  && List.for_all2
       (fun (i, c) (j, d) -> i = j && Bytes.equal c d)
       a.Report.data_copy b.Report.data_copy
  && a.Report.t_start = b.Report.t_start
  && a.Report.t_end = b.Report.t_end
  && a.Report.t_release = b.Report.t_release
  && a.Report.signature = b.Report.signature
  && a.Report.counter = b.Report.counter

let test_report_roundtrip () =
  let device = small_device ~data_blocks:[ 2 ] () in
  let report =
    run_mp
      ~config:
        {
          Mp.default_config with
          Mp.scheme = Scheme.no_lock;
          signature = Some Cost_model.RSA_2048;
          counter = Some 42;
        }
      device
  in
  (match Report.decode (Report.encode report) with
  | Ok decoded -> check Alcotest.bool "roundtrip" true (report_equal report decoded)
  | Error e -> Alcotest.failf "decode failed: %s" e);
  (* the decoded report still verifies *)
  (match Report.decode (Report.encode report) with
  | Ok decoded ->
    let verifier = Verifier.of_device device in
    check Alcotest.bool "decoded report verifies" true
      (Verifier.verify verifier decoded = Verifier.Clean)
  | Error e -> Alcotest.failf "decode failed: %s" e)

let test_report_decode_rejects_garbage () =
  let device = small_device () in
  let report = run_mp device in
  let wire = Report.encode report in
  (* bad magic *)
  let bad = Bytes.copy wire in
  Bytes.set bad 0 'X';
  (match Report.decode bad with
  | Error "bad magic" -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" e
  | Ok _ -> Alcotest.fail "bad magic accepted");
  (* every truncation point must be rejected, never crash *)
  for cut = 0 to Bytes.length wire - 1 do
    match Report.decode (Bytes.sub wire 0 cut) with
    | Ok _ -> Alcotest.failf "truncated prefix of %d bytes accepted" cut
    | Error _ -> ()
  done;
  (* trailing garbage rejected *)
  (match Report.decode (Bytes.cat wire (Bytes.of_string "x")) with
  | Error "trailing bytes" -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" e
  | Ok _ -> Alcotest.fail "trailing bytes accepted");
  (* a flipped MAC byte still decodes but no longer verifies *)
  let mac_offset =
    (* locate the mac within the wire image by searching for it *)
    let mac = report.Report.mac in
    let rec find i =
      if i + Bytes.length mac > Bytes.length wire then
        Alcotest.fail "mac not found in wire image"
      else if Bytes.equal (Bytes.sub wire i (Bytes.length mac)) mac then i
      else find (i + 1)
    in
    find 0
  in
  let tampered = Bytes.copy wire in
  Bytes.set tampered mac_offset
    (Char.chr (Char.code (Bytes.get tampered mac_offset) lxor 1));
  match Report.decode tampered with
  | Ok decoded ->
    let verifier = Verifier.of_device device in
    check Alcotest.bool "tampered wire report rejected" true
      (Verifier.verify verifier decoded = Verifier.Tampered)
  | Error e -> Alcotest.failf "tampered report should still parse: %s" e

(* --- Verifier ------------------------------------------------------------------ *)

let test_verifier_detects_tampering () =
  let device = small_device () in
  let verifier = Verifier.of_device device in
  (* flip one byte of one block before measuring *)
  (match
     Memory.write device.Device.memory ~time:0 ~block:3 ~offset:0
       (Bytes.of_string "\xEE")
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "setup write failed");
  let report = run_mp device in
  check Alcotest.bool "single flipped byte detected" true
    (Verifier.verify verifier report = Verifier.Tampered)

let test_verifier_nonce_freshness () =
  let device = small_device () in
  let verifier = Verifier.of_device device in
  let report = run_mp device in
  check Alcotest.bool "fresh nonce accepted" true
    (Verifier.verify_fresh verifier ~nonce:report.Report.nonce report = Verifier.Clean);
  check Alcotest.bool "stale nonce rejected" true
    (Verifier.verify_fresh verifier ~nonce:(Bytes.of_string "other") report
     = Verifier.Tampered)

let test_verifier_malformed_reports () =
  let device = small_device () in
  let verifier = Verifier.of_device device in
  let report = run_mp device in
  let bad_order = { report with Report.order = [| 0; 0; 1; 2; 3; 4; 5; 6 |] } in
  check Alcotest.bool "duplicate order rejected" true
    (Verifier.verify verifier bad_order = Verifier.Tampered);
  check Alcotest.bool "expected_mac is None" true
    (Verifier.expected_mac verifier bad_order = None);
  let device2 = small_device ~data_blocks:[ 1 ] () in
  let verifier2 = Verifier.of_device device2 in
  let report2 =
    run_mp ~config:{ Mp.default_config with Mp.scheme = Scheme.no_lock } device2
  in
  let missing_copy = { report2 with Report.data_copy = [] } in
  check Alcotest.bool "missing data copy rejected" true
    (Verifier.verify verifier2 missing_copy = Verifier.Tampered)

let test_verifier_data_blocks_accepted () =
  (* app-style churn in a data block is fine when the copy travels along *)
  let device = small_device ~data_blocks:[ 1 ] () in
  let verifier = Verifier.of_device device in
  (match
     Memory.write device.Device.memory ~time:0 ~block:1 ~offset:0
       (Bytes.of_string "fresh sensor data")
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "setup write failed");
  let report =
    run_mp ~config:{ Mp.default_config with Mp.scheme = Scheme.no_lock } device
  in
  check Alcotest.bool "mutated data block verifies via copy" true
    (Verifier.verify verifier report = Verifier.Clean)

(* --- Consistency ------------------------------------------------------------------ *)

let test_consistency_untouched_memory () =
  let device = small_device () in
  let report = run_mp device in
  check Alcotest.bool "consistent at ts" true
    (Consistency.holds_at device report ~time:report.Report.t_start);
  check Alcotest.bool "consistent throughout" true
    (Consistency.consistent_throughout device report ~from_:report.Report.t_start
       ~until:report.Report.t_end)

let test_consistency_detects_change () =
  let device = small_device () in
  let report = run_mp device in
  (* mutate memory after the measurement: past instants stay consistent,
     later ones do not *)
  (match
     Memory.write device.Device.memory
       ~time:(Timebase.add report.Report.t_end (Timebase.s 1))
       ~block:0 ~offset:0 (Bytes.of_string "post-measurement write")
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write failed");
  check Alcotest.bool "still consistent at te" true
    (Consistency.holds_at device report ~time:report.Report.t_end);
  check Alcotest.bool "inconsistent after the write" false
    (Consistency.holds_at device report
       ~time:(Timebase.add report.Report.t_end (Timebase.s 2)));
  let probes =
    Consistency.check_instants device report
      [ ("te", report.Report.t_end);
        ("later", Timebase.add report.Report.t_end (Timebase.s 2)) ]
  in
  check Alcotest.bool "labels preserved" true
    (List.map (fun (l, _, _) -> l) probes = [ "te"; "later" ])

let test_consistency_profile_shape () =
  let device = small_device () in
  let report = run_mp device in
  let profile = Consistency.consistency_profile device report ~samples:16 ~margin:(Timebase.s 1) in
  check Alcotest.int "sample count" 16 (List.length profile);
  Alcotest.check_raises "too few samples"
    (Invalid_argument "Consistency.consistency_profile: samples < 2") (fun () ->
      ignore (Consistency.consistency_profile device report ~samples:1 ~margin:0))

(* --- Protocol ----------------------------------------------------------------------- *)

let test_protocol_event_order () =
  let device = small_device () in
  let verifier = Verifier.of_device device in
  let events = ref None in
  Protocol.on_demand device verifier Mp.default_config ~net_delay:(Timebase.ms 25)
    ~auth_time:(Timebase.us 100)
    ~on_done:(fun e -> events := Some e)
    ();
  Engine.run device.Device.engine;
  match !events with
  | None -> Alcotest.fail "protocol did not finish"
  | Some e ->
    check Alcotest.int "request travel time" (Timebase.ms 25)
      (Timebase.sub e.Protocol.request_received e.Protocol.request_sent);
    check Alcotest.bool "MP deferred past authentication" true
      (e.Protocol.mp_started >= Timebase.add e.Protocol.request_received (Timebase.us 100));
    check Alcotest.bool "monotone events" true
      (e.Protocol.mp_started <= e.Protocol.mp_finished
      && e.Protocol.mp_finished <= e.Protocol.report_sent
      && e.Protocol.report_sent < e.Protocol.report_received);
    check Alcotest.bool "clean verdict" true (e.Protocol.verdict = Verifier.Clean);
    check Alcotest.int "six markers" 6 (List.length (Protocol.events_to_markers e))

(* --- Timeline ------------------------------------------------------------------------- *)

let string_contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_timeline_render () =
  let out =
    Timeline.render
      [ ("start", Timebase.zero); ("middle", Timebase.ms 500); ("end", Timebase.s 1) ]
  in
  check Alcotest.bool "labels present" true
    (List.for_all
       (fun needle -> string_contains ~needle out)
       [ "start"; "middle"; "end" ])

let test_timeline_profile_render () =
  let out =
    Timeline.render_profile ~label:"demo"
      [ (Timebase.zero, true); (Timebase.ms 10, false); (Timebase.ms 20, true) ]
  in
  check Alcotest.bool "contains marks" true
    (String.contains out '#' && String.contains out '.')

(* --- Smarm math -------------------------------------------------------------------------- *)

let test_smarm_theory () =
  check (Alcotest.float 1e-9) "B=64"
    (((64. -. 1.) /. 64.) ** 64.)
    (Smarm.per_round_escape_probability ~blocks:64);
  check Alcotest.bool "tends to 1/e from below" true
    (Smarm.per_round_escape_probability ~blocks:10_000 < exp (-1.));
  check (Alcotest.float 1e-12) "rounds compose"
    (Smarm.per_round_escape_probability ~blocks:64 ** 3.)
    (Smarm.escape_probability ~blocks:64 ~rounds:3);
  let k = Smarm.rounds_for_target ~blocks:64 ~target:1e-6 in
  check Alcotest.bool "close to the paper's 13" true (k >= 13 && k <= 15);
  check Alcotest.bool "achieves target" true
    (Smarm.escape_probability ~blocks:64 ~rounds:k < 1e-6);
  check Alcotest.bool "one fewer round does not" true
    (Smarm.escape_probability ~blocks:64 ~rounds:(k - 1) >= 1e-6)

let test_smarm_rounds_runner () =
  let device = small_device ~blocks:16 () in
  let reports = ref [] in
  Smarm.run_rounds device
    { Mp.default_config with Mp.scheme = Scheme.smarm }
    ~rounds:3
    ~on_complete:(fun rs -> reports := rs)
    ();
  Engine.run device.Device.engine;
  check Alcotest.int "three rounds" 3 (List.length !reports);
  (* nonces must differ between rounds *)
  let nonces = List.map (fun r -> Bytes.to_string r.Report.nonce) !reports in
  check Alcotest.int "distinct nonces" 3 (List.length (List.sort_uniq String.compare nonces));
  Alcotest.check_raises "sequential scheme rejected"
    (Invalid_argument "Smarm.run_rounds: scheme must shuffle") (fun () ->
      Smarm.run_rounds device Mp.default_config ~rounds:2 ~on_complete:(fun _ -> ()) ())

(* --- Erasmus ---------------------------------------------------------------------------- *)

let test_erasmus_schedule_and_storage () =
  let device = small_device () in
  let erasmus =
    Erasmus.start device
      {
        Erasmus.default_config with
        Erasmus.period = Timebase.s 5;
        first_at = Timebase.s 1;
        capacity = 4;
      }
  in
  Engine.run ~until:(Timebase.s 32) device.Device.engine;
  Erasmus.stop erasmus;
  Engine.run ~until:(Timebase.s 40) device.Device.engine;
  check Alcotest.int "measurements at 1,6,...,31" 7 (Erasmus.measurements_taken erasmus);
  check Alcotest.int "ring buffer capped" 4 (List.length (Erasmus.stored erasmus));
  (* stored reports are the most recent, in order, with rising counters *)
  let counters =
    List.filter_map (fun r -> r.Report.counter) (Erasmus.stored erasmus)
  in
  check (Alcotest.list Alcotest.int) "latest counters" [ 4; 5; 6; 7 ] counters;
  check Alcotest.int "collect caps at max" 2
    (List.length (Erasmus.collect erasmus ~max:2));
  let verifier = Verifier.of_device device in
  List.iter
    (fun r ->
      check Alcotest.bool "self-measurement verifies" true
        (Verifier.verify verifier r = Verifier.Clean))
    (Erasmus.stored erasmus)

let test_erasmus_deferral () =
  let device = small_device () in
  (* occupy the CPU with a higher-priority job over the scheduled instant *)
  ignore
    (Cpu.submit device.Device.cpu ~name:"app" ~priority:10 ~duration:(Timebase.s 3)
       ~on_complete:(fun () -> ())
       ());
  let erasmus =
    Erasmus.start device
      {
        Erasmus.default_config with
        Erasmus.period = Timebase.s 30;
        first_at = Timebase.s 1;
        defer_if_app_running = Some (Timebase.s 1);
      }
  in
  Engine.run ~until:(Timebase.s 20) device.Device.engine;
  Erasmus.stop erasmus;
  Engine.run ~until:(Timebase.s 60) device.Device.engine;
  match Erasmus.stored erasmus with
  | [ r ] ->
    check Alcotest.bool "measurement deferred past the busy window" true
      (r.Report.t_start >= Timebase.s 3)
  | rs -> Alcotest.failf "expected exactly one report, got %d" (List.length rs)

let test_erasmus_on_demand_composition () =
  let device = small_device () in
  let erasmus =
    Erasmus.start device
      { Erasmus.default_config with Erasmus.period = Timebase.s 60; first_at = Timebase.s 50 }
  in
  let od_report = ref None in
  ignore
    (Engine.schedule device.Device.engine ~at:(Timebase.s 1) (fun _ ->
         Erasmus.on_demand_measure erasmus ~nonce:(Bytes.of_string "vrf-nonce")
           ~on_complete:(fun r -> od_report := Some r)));
  Engine.run ~until:(Timebase.s 30) device.Device.engine;
  Erasmus.stop erasmus;
  Engine.run ~until:(Timebase.s 120) device.Device.engine;
  match !od_report with
  | None -> Alcotest.fail "on-demand measurement missing"
  | Some r ->
    check Alcotest.bytes "uses the verifier's nonce" (Bytes.of_string "vrf-nonce")
      r.Report.nonce;
    check Alcotest.bool "also stored" true
      (List.exists
         (fun stored -> Bytes.equal stored.Report.nonce r.Report.nonce)
         (Erasmus.stored erasmus))

(* --- SeED -------------------------------------------------------------------------------- *)

let test_seed_schedule_deterministic () =
  let s1 = Seed_ra.schedule ~shared_seed:77 ~mean_interval:(Timebase.s 10) ~first_after:0 ~count:10 in
  let s2 = Seed_ra.schedule ~shared_seed:77 ~mean_interval:(Timebase.s 10) ~first_after:0 ~count:10 in
  check Alcotest.bool "same seed same schedule" true (s1 = s2);
  let s3 = Seed_ra.schedule ~shared_seed:78 ~mean_interval:(Timebase.s 10) ~first_after:0 ~count:10 in
  check Alcotest.bool "different seed different schedule" false (s1 = s3);
  check Alcotest.int "count" 10 (List.length s1);
  (* gaps within [0.5, 1.5] * mean *)
  let rec gaps_ok prev = function
    | [] -> true
    | t :: rest ->
      let gap = Timebase.sub t prev in
      gap >= Timebase.s 5 && gap <= Timebase.add (Timebase.s 15) 1 && gaps_ok t rest
  in
  check Alcotest.bool "gaps bounded" true (gaps_ok 0 s1)

let test_seed_prover_matches_schedule () =
  let device = small_device ~seed:4 () in
  let inbox = ref [] in
  let config =
    {
      Seed_ra.default_config with
      Seed_ra.shared_seed = 909;
      mean_interval = Timebase.s 10;
    }
  in
  let prover = Seed_ra.start device config ~send:(fun x -> inbox := x :: !inbox) in
  Engine.run ~until:(Timebase.s 65) device.Device.engine;
  Seed_ra.stop prover;
  Engine.run ~until:(Timebase.s 90) device.Device.engine;
  let received = List.rev !inbox in
  check Alcotest.bool "several reports sent" true (List.length received >= 3);
  let expected =
    Seed_ra.schedule ~shared_seed:909 ~mean_interval:(Timebase.s 10) ~first_after:0
      ~count:(List.length received)
  in
  let verifier = Verifier.of_device device in
  let outcome = Seed_ra.monitor verifier ~expected ~tolerance:(Timebase.s 5) received in
  check Alcotest.int "all accepted" (List.length received) outcome.Seed_ra.accepted;
  check Alcotest.int "none missing" 0 outcome.Seed_ra.missing;
  check Alcotest.int "no replays" 0 outcome.Seed_ra.replayed

let test_seed_replay_and_drop () =
  let device = small_device ~seed:4 () in
  let inbox = ref [] in
  let config =
    { Seed_ra.default_config with Seed_ra.shared_seed = 909; mean_interval = Timebase.s 10 }
  in
  let prover = Seed_ra.start device config ~send:(fun x -> inbox := x :: !inbox) in
  Engine.run ~until:(Timebase.s 65) device.Device.engine;
  Seed_ra.stop prover;
  Engine.run ~until:(Timebase.s 90) device.Device.engine;
  let received = List.rev !inbox in
  let expected =
    Seed_ra.schedule ~shared_seed:909 ~mean_interval:(Timebase.s 10) ~first_after:0
      ~count:(List.length received)
  in
  let verifier = Verifier.of_device device in
  (* replay: duplicate the first report at the end *)
  (match received with
  | first :: _ ->
    let outcome =
      Seed_ra.monitor verifier ~expected ~tolerance:(Timebase.s 5) (received @ [ first ])
    in
    check Alcotest.int "replay detected" 1 outcome.Seed_ra.replayed
  | [] -> Alcotest.fail "no reports");
  (* drop attack: a missing report shows up as a gap *)
  (match received with
  | _ :: rest ->
    let outcome = Seed_ra.monitor verifier ~expected ~tolerance:(Timebase.s 5) rest in
    check Alcotest.bool "drop detected" true (outcome.Seed_ra.missing >= 1)
  | [] -> Alcotest.fail "no reports")

(* --- properties over the whole measurement/verification pipeline ------------------------------- *)

(* Any non-empty set of tampered code blocks must flip the verdict, for any
   scheme: detection is a property of the MAC, not of lucky block choices. *)
let prop_any_tampering_detected =
  QCheck.Test.make ~name:"any tampered block set is detected" ~count:40
    QCheck.(pair (int_range 0 5) (list_of_size Gen.(1 -- 4) (int_range 0 7)))
    (fun (scheme_index, tampered_blocks) ->
      let scheme = List.nth Scheme.all_basic (scheme_index mod List.length Scheme.all_basic) in
      let device = small_device () in
      let verifier = Verifier.of_device device in
      List.iter
        (fun block ->
          match
            Memory.write device.Device.memory ~time:0 ~block ~offset:3
              (Bytes.of_string "x")
          with
          | Ok () -> ()
          | Error _ -> ())
        (List.sort_uniq Int.compare tampered_blocks);
      let report = run_mp ~config:{ Mp.default_config with Mp.scheme } device in
      Verifier.verify verifier report = Verifier.Tampered)

(* Without any writes, every scheme's report is consistent at every probe. *)
let prop_untouched_memory_always_consistent =
  QCheck.Test.make ~name:"no writes -> consistent everywhere" ~count:20
    QCheck.(pair (int_range 0 6) (int_range 0 100))
    (fun (scheme_index, probe_pct) ->
      let scheme =
        List.nth Scheme.all_with_extensions
          (scheme_index mod List.length Scheme.all_with_extensions)
      in
      let device = small_device () in
      let report = run_mp ~config:{ Mp.default_config with Mp.scheme } device in
      let span = Timebase.sub report.Report.t_release report.Report.t_start in
      let probe = Timebase.add report.Report.t_start (span * probe_pct / 100) in
      Consistency.holds_at device report ~time:probe)

(* Wire-format roundtrip over randomly perturbed reports. *)
let prop_wire_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:40
    QCheck.(triple (string_of_size Gen.(0 -- 40)) small_int bool)
    (fun (nonce, counter, with_signature) ->
      let device = small_device () in
      let base = run_mp device in
      let report =
        {
          base with
          Report.nonce = Bytes.of_string nonce;
          counter = Some (abs counter);
          signature = (if with_signature then Some Cost_model.RSA_4096 else None);
        }
      in
      match Report.decode (Report.encode report) with
      | Ok decoded ->
        Bytes.equal decoded.Report.nonce report.Report.nonce
        && decoded.Report.counter = report.Report.counter
        && decoded.Report.signature = report.Report.signature
        && Bytes.equal decoded.Report.mac report.Report.mac
      | Error _ -> false)

(* --- Merkle tree + incremental attestation ----------------------------------------------------- *)

let test_merkle_basics () =
  let leaves = Array.init 5 (fun i -> Bytes.make 8 (Char.chr (65 + i))) in
  let tree = Merkle.build Ra_crypto.Algo.SHA_256 ~leaves in
  check Alcotest.int "leaf count" 5 (Merkle.leaf_count tree);
  let original_root = Merkle.root tree in
  (* rebuilding gives the same root; different leaves give a different one *)
  let tree2 = Merkle.build Ra_crypto.Algo.SHA_256 ~leaves in
  check Alcotest.bytes "deterministic root" original_root (Merkle.root tree2);
  Merkle.update tree ~index:2 ~content:(Bytes.of_string "mutated!");
  check Alcotest.bool "update changes root" false
    (Bytes.equal original_root (Merkle.root tree));
  Merkle.update tree ~index:2 ~content:leaves.(2);
  check Alcotest.bytes "restoring restores the root" original_root (Merkle.root tree);
  Alcotest.check_raises "index range" (Invalid_argument "Merkle: index out of range")
    (fun () -> Merkle.update tree ~index:5 ~content:Bytes.empty);
  Alcotest.check_raises "empty" (Invalid_argument "Merkle.build: no leaves")
    (fun () -> ignore (Merkle.build Ra_crypto.Algo.SHA_256 ~leaves:[||]))

let test_merkle_update_equals_rebuild () =
  let rng = Prng.create ~seed:41 in
  let leaves = Array.init 13 (fun _ -> Prng.bytes rng 32) in
  let tree = Merkle.build Ra_crypto.Algo.SHA_256 ~leaves in
  (* mutate a few leaves incrementally *)
  List.iter
    (fun i ->
      leaves.(i) <- Prng.bytes rng 32;
      Merkle.update tree ~index:i ~content:leaves.(i))
    [ 0; 7; 12; 7 ];
  let rebuilt = Merkle.build Ra_crypto.Algo.SHA_256 ~leaves in
  check Alcotest.bytes "incremental = rebuild" (Merkle.root rebuilt) (Merkle.root tree)

let test_merkle_root_of_leaves () =
  let rng = Prng.create ~seed:43 in
  (* sizes straddling the pow2 padding boundaries *)
  List.iter
    (fun n ->
      let leaves = Array.init n (fun _ -> Prng.bytes rng 32) in
      let tree = Merkle.build Ra_crypto.Algo.SHA_256 ~leaves in
      check Alcotest.bytes
        (Printf.sprintf "root_of_leaves = build root (n=%d)" n)
        (Merkle.root tree)
        (Merkle.root_of_leaves Ra_crypto.Algo.SHA_256 ~leaves))
    [ 1; 2; 3; 4; 5; 8; 13; 16; 17; 31 ];
  Alcotest.check_raises "empty" (Invalid_argument "Merkle.root_of_leaves: no leaves")
    (fun () -> ignore (Merkle.root_of_leaves Ra_crypto.Algo.SHA_256 ~leaves:[||]))

let test_merkle_proofs () =
  let leaves = Array.init 11 (fun i -> Bytes.make 16 (Char.chr (48 + i))) in
  let tree = Merkle.build Ra_crypto.Algo.SHA_256 ~leaves in
  for i = 0 to 10 do
    let proof = Merkle.proof tree ~index:i in
    check Alcotest.bool
      (Printf.sprintf "proof %d verifies" i)
      true
      (Merkle.verify_proof Ra_crypto.Algo.SHA_256 ~root:(Merkle.root tree) ~index:i
         ~content:leaves.(i) ~leaf_count:11 ~proof)
  done;
  let proof = Merkle.proof tree ~index:3 in
  check Alcotest.bool "wrong content fails" false
    (Merkle.verify_proof Ra_crypto.Algo.SHA_256 ~root:(Merkle.root tree) ~index:3
       ~content:(Bytes.of_string "forged") ~leaf_count:11 ~proof);
  check Alcotest.bool "wrong index fails" false
    (Merkle.verify_proof Ra_crypto.Algo.SHA_256 ~root:(Merkle.root tree) ~index:4
       ~content:leaves.(3) ~leaf_count:11 ~proof)

let incremental_fixture () =
  let device = small_device ~blocks:16 () in
  let service = ref None in
  let t =
    Incremental.start device ~on_ready:(fun () -> service := Some ()) ()
  in
  Engine.run device.Device.engine;
  check Alcotest.bool "tree built" true (!service <> None);
  (device, t)

let incremental_attest device t =
  let result = ref None in
  Incremental.attest t ~nonce:(Prng.bytes (Engine.prng device.Device.engine) 16)
    ~on_complete:(fun r -> result := Some r);
  Engine.run device.Device.engine;
  match !result with Some r -> r | None -> Alcotest.fail "no incremental report"

let test_incremental_clean_and_dirty () =
  let device, t = incremental_fixture () in
  let expected_root =
    Incremental.expected_root Ra_crypto.Algo.SHA_256
      ~expected_image:(Memory.initial_image device.Device.memory)
      ~block_size:(Memory.block_size device.Device.memory)
  in
  let key = device.Device.config.Device.key in
  (* round 1: nothing dirty, fast, clean *)
  let r1 = incremental_attest device t in
  check Alcotest.int "no dirty blocks" 0 r1.Incremental.dirty_blocks;
  check Alcotest.bool "clean" true
    (Incremental.verify ~key ~hash:Ra_crypto.Algo.SHA_256 ~expected_root r1
     = Verifier.Clean);
  (* benign-looking write (a millisecond later, as in any real timeline):
     dirty tracking picks it up and the root changes *)
  ignore
    (Engine.schedule_after device.Device.engine ~delay:(Timebase.ms 1) (fun eng ->
         match
           Memory.write device.Device.memory ~time:(Engine.now eng) ~block:9
             ~offset:0 (Bytes.of_string "changed")
         with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "write failed"));
  Engine.run device.Device.engine;
  let r2 = incremental_attest device t in
  check Alcotest.int "one dirty block" 1 r2.Incremental.dirty_blocks;
  check Alcotest.bool "change detected" true
    (Incremental.verify ~key ~hash:Ra_crypto.Algo.SHA_256 ~expected_root r2
     = Verifier.Tampered)

let test_incremental_detects_malware () =
  let device, t = incremental_fixture () in
  let expected_root =
    Incremental.expected_root Ra_crypto.Algo.SHA_256
      ~expected_image:(Memory.initial_image device.Device.memory)
      ~block_size:(Memory.block_size device.Device.memory)
  in
  let rng = Prng.split (Engine.prng device.Device.engine) in
  ignore
    (Engine.schedule_after device.Device.engine ~delay:(Timebase.ms 1) (fun _ ->
         ignore
           (Ra_malware.Malware.install device ~rng ~block:4 ~priority:8
              Ra_malware.Malware.Static)));
  Engine.run device.Device.engine;
  let r = incremental_attest device t in
  check Alcotest.bool "at least the infected block dirty" true
    (r.Incremental.dirty_blocks >= 1);
  check Alcotest.bool "malware detected" true
    (Incremental.verify ~key:device.Device.config.Device.key
       ~hash:Ra_crypto.Algo.SHA_256 ~expected_root r
     = Verifier.Tampered)

let test_incremental_cost_scales_with_churn () =
  let device = small_device ~blocks:64 () in
  let full =
    Cost_model.hash_time device.Device.config.Device.cost Ra_crypto.Algo.SHA_256
      ~bytes:(Device.attested_bytes device)
  in
  let one = Incremental.attestation_cost device ~hash:Ra_crypto.Algo.SHA_256 ~dirty:1 in
  let ten = Incremental.attestation_cost device ~hash:Ra_crypto.Algo.SHA_256 ~dirty:10 in
  check Alcotest.bool "1 dirty block is ~64x cheaper than full" true (one * 30 < full);
  check Alcotest.bool "monotone in churn" true (ten > one)

(* --- Reliable protocol over a lossy network ---------------------------------------------------- *)

let run_reliable ?(channel = Channel.ideal) ?(max_attempts = 4) device verifier =
  let result = ref None in
  Reliable_protocol.run device verifier
    {
      Reliable_protocol.default_config with
      Reliable_protocol.channel;
      max_attempts;
      retry_timeout = Timebase.s 12;
    }
    ~on_done:(fun r -> result := Some r)
    ();
  Engine.run device.Device.engine;
  match !result with Some r -> r | None -> Alcotest.fail "session never concluded"

let test_reliable_ideal_network () =
  let device = small_device () in
  let r = run_reliable device (Verifier.of_device device) in
  check Alcotest.bool "clean verdict" true (r.Reliable_protocol.verdict = Some Verifier.Clean);
  check Alcotest.int "one attempt" 1 r.Reliable_protocol.attempts;
  check Alcotest.int "one measurement" 1 r.Reliable_protocol.measurements_run;
  check Alcotest.int "no duplicates" 0 r.Reliable_protocol.duplicates_suppressed

let test_reliable_recovers_from_loss () =
  (* find a seed where retries were actually needed, then require success *)
  let channel = { Channel.ideal with Channel.loss = 0.6 } in
  let needed_retry = ref false in
  for seed = 1 to 8 do
    let device = small_device ~seed () in
    let r = run_reliable ~channel ~max_attempts:10 device (Verifier.of_device device) in
    (match r.Reliable_protocol.verdict with
    | Some Verifier.Clean -> if r.Reliable_protocol.attempts > 1 then needed_retry := true
    | Some Verifier.Tampered -> Alcotest.fail "clean device reported tampered"
    | None -> () (* extremely unlucky seed: every attempt lost twice *));
    check Alcotest.bool "at most one measurement despite retries" true
      (r.Reliable_protocol.measurements_run <= 1)
  done;
  check Alcotest.bool "some seed exercised the retry path" true !needed_retry

let test_reliable_duplicate_suppression () =
  let channel = { Channel.ideal with Channel.duplicate = 1.0 } in
  let device = small_device () in
  let r = run_reliable ~channel device (Verifier.of_device device) in
  check Alcotest.bool "verdict ok" true (r.Reliable_protocol.verdict = Some Verifier.Clean);
  check Alcotest.int "duplicated request absorbed" 1 r.Reliable_protocol.duplicates_suppressed;
  check Alcotest.int "still a single measurement" 1 r.Reliable_protocol.measurements_run

let test_reliable_gives_up () =
  let channel = { Channel.ideal with Channel.loss = 1.0 } in
  let device = small_device () in
  let r = run_reliable ~channel ~max_attempts:3 device (Verifier.of_device device) in
  check Alcotest.bool "no verdict" true (r.Reliable_protocol.verdict = None);
  check Alcotest.int "all attempts spent" 3 r.Reliable_protocol.attempts;
  check Alcotest.bool "no completion time" true (r.Reliable_protocol.completed_at = None)

let test_reliable_detects_malware_through_loss () =
  let channel = { Channel.ideal with Channel.loss = 0.4 } in
  let device = small_device ~seed:3 () in
  let rng = Prng.split (Engine.prng device.Device.engine) in
  ignore (Ra_malware.Malware.install device ~rng ~block:5 ~priority:8 Ra_malware.Malware.Static);
  let r = run_reliable ~channel ~max_attempts:10 device (Verifier.of_device device) in
  check Alcotest.bool "tampered verdict survives retries" true
    (r.Reliable_protocol.verdict = Some Verifier.Tampered)

(* --- TyTAN per-process measurement ------------------------------------------------------------ *)

let tytan_fixture () =
  let device = small_device ~blocks:8 () in
  let processes = Tytan.partition device ~names:[ "proc-a"; "proc-b" ] in
  let config = { Tytan.processes; hash = Ra_crypto.Algo.SHA_256; priority = 5 } in
  (device, processes, config)

let run_tytan device config ?hooks () =
  let results = ref [] in
  Tytan.run device config
    ~nonce:(Prng.bytes (Engine.prng device.Device.engine) 16)
    ?hooks
    ~on_complete:(fun r -> results := r)
    ();
  Engine.run device.Device.engine;
  !results

let all_clean verdicts = List.for_all (fun (_, v) -> v = Verifier.Clean) verdicts

let test_tytan_partition () =
  let device, processes, _ = tytan_fixture () in
  ignore device;
  (match processes with
  | [ a; b ] ->
    check Alcotest.int "a starts at 0" 0 a.Tytan.first_block;
    check Alcotest.int "a spans half" 4 a.Tytan.block_span;
    check Alcotest.int "b starts after a" 4 b.Tytan.first_block
  | _ -> Alcotest.fail "expected two processes");
  Alcotest.check_raises "bad partition rejected"
    (Invalid_argument "Tytan.run: processes do not cover memory") (fun () ->
      let device = small_device ~blocks:8 () in
      Tytan.run device
        {
          Tytan.processes = [ { Tytan.name = "only"; first_block = 0; block_span = 4 } ];
          hash = Ra_crypto.Algo.SHA_256;
          priority = 5;
        }
        ~nonce:Bytes.empty
        ~on_complete:(fun _ -> ())
        ())

let test_tytan_clean_device () =
  let device, _, config = tytan_fixture () in
  let verifier = Verifier.of_device device in
  let results = run_tytan device config () in
  check Alcotest.int "one report per process" 2 (List.length results);
  check Alcotest.bool "all regions clean" true (all_clean (Tytan.verify_all verifier results))

let test_tytan_single_process_malware_caught () =
  (* malware confined to proc-b's region: while its region is measured the
     process is suspended, so it cannot move — caught. *)
  let device, _, config = tytan_fixture () in
  let verifier = Verifier.of_device device in
  let rng = Prng.split (Engine.prng device.Device.engine) in
  ignore (Ra_malware.Malware.install device ~rng ~block:6 ~priority:8 Ra_malware.Malware.Static);
  let results = run_tytan device config () in
  let verdicts = Tytan.verify_all verifier results in
  check Alcotest.bool "proc-a clean" true (List.assoc "proc-a" verdicts = Verifier.Clean);
  check Alcotest.bool "proc-b tampered" true (List.assoc "proc-b" verdicts = Verifier.Tampered)

(* The colluding pair of the paper: when one colluder's region is about to
   be measured, the *other* (still running) takes the payload into its own
   region and the old copy is scrubbed. The payload is never inside the
   region being measured, yet always on the device. *)
let test_tytan_colluding_processes_escape () =
  let device, processes, config = tytan_fixture () in
  let verifier = Verifier.of_device device in
  let mem = device.Device.memory in
  let payload = Ra_malware.Malware.payload device in
  let benign block =
    Bytes.sub (Memory.initial_image mem) (block * Memory.block_size mem)
      (Memory.block_size mem)
  in
  let a, b =
    match processes with [ a; b ] -> (a, b) | _ -> Alcotest.fail "two processes"
  in
  (* payload starts in proc-a's region *)
  let location = ref a.Tytan.first_block in
  let write block content =
    match Memory.set_block mem ~time:(Engine.now device.Device.engine) ~block content with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "colluder write failed"
  in
  write !location payload;
  let in_region p block =
    block >= p.Tytan.first_block && block < p.Tytan.first_block + p.Tytan.block_span
  in
  let hooks =
    {
      Tytan.on_region_start =
        (fun ~measured ->
          if in_region measured !location then begin
            (* the other colluder pulls the payload out *)
            let other = if measured.Tytan.name = a.Tytan.name then b else a in
            let target = other.Tytan.first_block in
            write target payload;
            write !location (benign !location);
            location := target
          end);
      on_region_done = (fun ~measured:_ -> ());
    }
  in
  let results = run_tytan device config ~hooks () in
  let verdicts = Tytan.verify_all verifier results in
  check Alcotest.bool "both regions verify clean" true (all_clean verdicts);
  check Alcotest.bytes "yet the payload is still resident" payload
    (Memory.read_block mem !location)

(* --- Secure erasure + code update ------------------------------------------------------------ *)

let run_update ?cheat_blocks device =
  let outcome = ref None in
  Code_update.run device Code_update.default_config ?cheat_blocks ~new_seed:77
    ~on_done:(fun o -> outcome := Some o)
    ();
  Engine.run device.Device.engine;
  match !outcome with Some o -> o | None -> Alcotest.fail "update did not finish"

let test_update_clean_device () =
  let device = small_device () in
  let o = run_update device in
  check Alcotest.bool "erasure proof accepted" true o.Code_update.erasure_proof_ok;
  check Alcotest.bool "new firmware attests clean" true
    (o.Code_update.update_verdict = Verifier.Clean);
  check Alcotest.bool "no malware" false o.Code_update.malware_survived;
  check Alcotest.bool "takes time" true (o.Code_update.completed_at > Timebase.zero);
  (* memory now holds the new image *)
  check Alcotest.bytes "memory = new firmware"
    (Device.firmware_image ~seed:77 ~size:(Memory.size device.Device.memory))
    (Memory.snapshot device.Device.memory)

let test_update_erases_malware () =
  let device = small_device () in
  let rng = Prng.split (Engine.prng device.Device.engine) in
  let malware =
    Ra_malware.Malware.install device ~rng ~block:3 ~priority:8 Ra_malware.Malware.Static
  in
  check Alcotest.bool "infected before" true (Ra_malware.Malware.present malware);
  let o = run_update device in
  check Alcotest.bool "honest erasure accepted" true o.Code_update.erasure_proof_ok;
  check Alcotest.bool "malware wiped" false o.Code_update.malware_survived;
  check Alcotest.bool "post-update attestation clean" true
    (o.Code_update.update_verdict = Verifier.Clean)

let test_update_cheating_erasure_caught () =
  (* a compromised erasure routine skips the malware's own block *)
  let device = small_device () in
  let rng = Prng.split (Engine.prng device.Device.engine) in
  ignore
    (Ra_malware.Malware.install device ~rng ~block:3 ~priority:8 Ra_malware.Malware.Static);
  let o = run_update ~cheat_blocks:[ 3 ] device in
  check Alcotest.bool "proof rejected" false o.Code_update.erasure_proof_ok;
  check Alcotest.bool "malware survived the cheat" true o.Code_update.malware_survived;
  check Alcotest.bool "update aborted as tampered" true
    (o.Code_update.update_verdict = Verifier.Tampered)

let test_update_cheat_anywhere_caught () =
  (* skipping any block — even a benign one — flips the proof: there is no
     unused corner of memory to cheat from *)
  let device = small_device () in
  let o = run_update ~cheat_blocks:[ 7 ] device in
  check Alcotest.bool "proof rejected" false o.Code_update.erasure_proof_ok

(* --- Software-based attestation (SWATT) ----------------------------------------------------- *)

let test_swatt_checksum_sensitivity () =
  let memory = Prng.bytes (Prng.create ~seed:5) 2048 in
  let nonce = Bytes.of_string "challenge-1" in
  let base = Swatt.checksum ~memory ~nonce ~iterations:50_000 in
  check Alcotest.bool "deterministic" true
    (Int64.equal base (Swatt.checksum ~memory ~nonce ~iterations:50_000));
  (* a single flipped byte changes the checksum *)
  let tampered = Bytes.copy memory in
  Bytes.set tampered 1000 (Char.chr (Char.code (Bytes.get tampered 1000) lxor 1));
  check Alcotest.bool "byte flip changes checksum" false
    (Int64.equal base (Swatt.checksum ~memory:tampered ~nonce ~iterations:50_000));
  (* a different nonce changes the walk *)
  check Alcotest.bool "nonce changes checksum" false
    (Int64.equal base
       (Swatt.checksum ~memory ~nonce:(Bytes.of_string "challenge-2")
          ~iterations:50_000))

let test_swatt_timing_detection () =
  let memory = Prng.bytes (Prng.create ~seed:6) 2048 in
  let config = { Swatt.default_config with Swatt.jitter_ns = 1_000. } in
  let rng = Prng.create ~seed:7 in
  let honest = Swatt.attest ~rng config ~memory ~prover:Swatt.Honest in
  check Alcotest.bool "honest accepted" true honest.Swatt.accepted;
  let compromised =
    Swatt.attest ~rng config ~memory ~prover:(Swatt.Redirecting { overhead = 1.15 })
  in
  check Alcotest.bool "redirection returns the right value" true
    compromised.Swatt.value_ok;
  check Alcotest.bool "but blows the time budget" false compromised.Swatt.time_ok;
  check Alcotest.bool "rejected overall" false compromised.Swatt.accepted

let test_swatt_jitter_erodes_detection () =
  (* the paper's "security is uncertain" point, measured *)
  let memory = Prng.bytes (Prng.create ~seed:8) 2048 in
  let rate jitter_ratio =
    let base = float_of_int Swatt.default_config.Swatt.iterations
               *. Swatt.default_config.Swatt.access_ns in
    let config = { Swatt.default_config with Swatt.jitter_ns = jitter_ratio *. base } in
    let rng = Prng.create ~seed:9 in
    let detected = ref 0 in
    for _ = 1 to 200 do
      if not (Swatt.attest ~rng config ~memory
                ~prover:(Swatt.Redirecting { overhead = 1.15 })).Swatt.accepted
      then incr detected
    done;
    float_of_int !detected /. 200.
  in
  let low_jitter = rate 0.01 in
  let high_jitter = rate 0.40 in
  check (Alcotest.float 0.01) "clean separation at low jitter" 1.0 low_jitter;
  check Alcotest.bool "detection collapses under jitter" true (high_jitter < 0.8)

(* --- Fleet -------------------------------------------------------------------------------- *)

let test_fleet_key_derivation () =
  let fleet = Fleet.create ~master_secret:(Bytes.of_string "fleet-master") () in
  let ka = Fleet.derive_key fleet "sensor-a" in
  let kb = Fleet.derive_key fleet "sensor-b" in
  check Alcotest.int "32-byte keys" 32 (Bytes.length ka);
  check Alcotest.bool "per-device separation" false (Bytes.equal ka kb);
  check Alcotest.bytes "deterministic" ka (Fleet.derive_key fleet "sensor-a");
  let other = Fleet.create ~master_secret:(Bytes.of_string "other-master") () in
  check Alcotest.bool "master separation" false
    (Bytes.equal ka (Fleet.derive_key other "sensor-a"))

let test_fleet_attest_all () =
  let fleet = Fleet.create ~master_secret:(Bytes.of_string "fleet-master") () in
  let config =
    { Ra_device.Device.default_config with Ra_device.Device.block_size = 128; blocks = 8 }
  in
  let ids = [ "alpha"; "bravo"; "charlie" ] in
  List.iter (fun id -> ignore (Fleet.provision fleet id ~config ())) ids;
  check (Alcotest.list Alcotest.string) "roster order" ids (Fleet.enrolled fleet);
  (* infect bravo *)
  let bravo = Fleet.device fleet "bravo" in
  let rng = Prng.split (Engine.prng bravo.Device.engine) in
  ignore (Ra_malware.Malware.install bravo ~rng ~block:3 ~priority:8 Ra_malware.Malware.Static);
  let roll = Fleet.attest_all fleet Mp.default_config in
  check (Alcotest.list Alcotest.string) "clean devices" [ "alpha"; "charlie" ]
    roll.Fleet.clean;
  check (Alcotest.list Alcotest.string) "tampered devices" [ "bravo" ] roll.Fleet.tampered

let test_fleet_duplicate_rejected () =
  let fleet = Fleet.create ~master_secret:(Bytes.of_string "m") () in
  let config =
    { Ra_device.Device.default_config with Ra_device.Device.block_size = 128; blocks = 4 }
  in
  ignore (Fleet.provision fleet "dup" ~config ());
  Alcotest.check_raises "duplicate id" (Invalid_argument "Fleet.provision: duplicate id")
    (fun () -> ignore (Fleet.provision fleet "dup" ~config ()))

let test_fleet_cross_device_key_rejected () =
  (* a report MAC'd with device A's key must not verify under device B's
     verifier, even with identical firmware configuration *)
  let fleet = Fleet.create ~master_secret:(Bytes.of_string "fleet-master") () in
  let config =
    { Ra_device.Device.default_config with Ra_device.Device.block_size = 128; blocks = 8 }
  in
  let dev_a = Fleet.provision fleet "a" ~config () in
  ignore (Fleet.provision fleet "b" ~config ());
  let report = run_mp dev_a in
  check Alcotest.bool "own verifier accepts" true
    (Verifier.verify (Fleet.verifier_for fleet "a") report = Verifier.Clean);
  check Alcotest.bool "sibling verifier rejects" true
    (Verifier.verify (Fleet.verifier_for fleet "b") report = Verifier.Tampered)

(* --- assorted edge cases --------------------------------------------------------------------- *)

let test_report_decode_bad_enums () =
  let device = small_device () in
  let report = run_mp device in
  let wire = Report.encode report in
  (* hash id lives right after the 6-byte magic *)
  let bad_hash = Bytes.copy wire in
  Bytes.set bad_hash 6 '\x7f';
  (match Report.decode bad_hash with
  | Error "unknown hash id" -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" e
  | Ok _ -> Alcotest.fail "bad hash id accepted");
  (* counter flag follows magic, hash id, scheme name (len byte + name), nonce (2+16) *)
  let flag_offset = 6 + 1 + 1 + String.length report.Report.scheme_name + 2 + 16 in
  let bad_flag = Bytes.copy wire in
  Bytes.set bad_flag flag_offset '\x09';
  match Report.decode bad_flag with
  | Error "bad counter flag" -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" e
  | Ok _ -> Alcotest.fail "bad counter flag accepted"

let test_timeline_single_marker () =
  let out = Timeline.render [ ("only", Timebase.ms 5) ] in
  check Alcotest.bool "renders" true (String.length out > 10);
  Alcotest.check_raises "empty rejected" (Invalid_argument "Timeline.render: empty")
    (fun () -> ignore (Timeline.render []))

let test_erasmus_validation () =
  let device = small_device () in
  Alcotest.check_raises "capacity" (Invalid_argument "Erasmus.start: capacity < 1")
    (fun () ->
      ignore
        (Erasmus.start device { Erasmus.default_config with Erasmus.capacity = 0 }))

let test_fleet_unknown_id () =
  let fleet = Fleet.create ~master_secret:(Bytes.of_string "m") () in
  Alcotest.check_raises "unknown device" Not_found (fun () ->
      ignore (Fleet.device fleet "ghost"))

let test_smarm_validation () =
  Alcotest.check_raises "blocks" (Invalid_argument "Smarm: blocks < 1") (fun () ->
      ignore (Smarm.per_round_escape_probability ~blocks:0));
  Alcotest.check_raises "target" (Invalid_argument "Smarm: target out of (0,1)")
    (fun () -> ignore (Smarm.rounds_for_target ~blocks:64 ~target:1.5));
  let device = small_device () in
  Alcotest.check_raises "rounds" (Invalid_argument "Smarm.run_rounds: rounds < 1")
    (fun () ->
      Smarm.run_rounds device
        { Mp.default_config with Mp.scheme = Scheme.smarm }
        ~rounds:0
        ~on_complete:(fun _ -> ())
        ())

let test_reliable_validation () =
  let device = small_device () in
  Alcotest.check_raises "attempts"
    (Invalid_argument "Reliable_protocol: max_attempts < 1") (fun () ->
      Reliable_protocol.run device
        (Verifier.of_device device)
        { Reliable_protocol.default_config with Reliable_protocol.max_attempts = 0 }
        ~on_done:(fun _ -> ())
        ())

let test_swatt_table_smoke () =
  let table =
    Swatt.separation_table ~trials:30 Swatt.default_config ~overhead:1.2
      ~jitter_levels:[ 0.0; 0.2 ]
  in
  check Alcotest.bool "table rendered" true (String.length table > 100)

let test_consistency_bad_interval () =
  let device = small_device () in
  let report = run_mp device in
  Alcotest.check_raises "reversed interval"
    (Invalid_argument "Consistency.consistent_throughout: bad interval") (fun () ->
      ignore
        (Consistency.consistent_throughout device report ~from_:(Timebase.s 5)
           ~until:(Timebase.s 1)))

(* --- QoA ---------------------------------------------------------------------------------- *)

let test_qoa_math () =
  let q = { Qoa.t_m = Timebase.s 10; t_c = Timebase.s 60; mp_duration = Timebase.s 1 } in
  check (Alcotest.float 1e-9) "short dwell" 0.5
    (Qoa.detection_probability q ~dwell:(Timebase.s 4));
  check (Alcotest.float 1e-9) "long dwell saturates" 1.0
    (Qoa.detection_probability q ~dwell:(Timebase.s 20));
  check Alcotest.int "always-caught dwell" (Timebase.s 9) (Qoa.min_dwell_always_detected q);
  check Alcotest.int "worst-case delay" (Timebase.s 71) (Qoa.worst_case_detection_delay q);
  let od = Qoa.on_demand ~mp_duration:(Timebase.s 1) ~request_period:(Timebase.s 30) in
  check Alcotest.int "on-demand conjoins T_M and T_C" (Timebase.s 30) od.Qoa.t_c;
  Alcotest.check_raises "negative dwell" (Invalid_argument "Qoa: negative dwell")
    (fun () -> ignore (Qoa.detection_probability q ~dwell:(-1)))

let prop_qoa_monotone_in_dwell =
  QCheck.Test.make ~name:"detection probability monotone in dwell" ~count:100
    QCheck.(pair (int_range 0 20) (int_range 0 20))
    (fun (d1, d2) ->
      let q = { Qoa.t_m = Timebase.s 10; t_c = Timebase.s 10; mp_duration = 0 } in
      let lo = min d1 d2 and hi = max d1 d2 in
      Qoa.detection_probability q ~dwell:(Timebase.s lo)
      <= Qoa.detection_probability q ~dwell:(Timebase.s hi))

let () =
  Alcotest.run "ra_core"
    [
      ("scheme", [ Alcotest.test_case "names & flags" `Quick test_scheme_names ]);
      ( "mp",
        [
          Alcotest.test_case "verifiable reports" `Quick test_mp_produces_verifiable_report;
          Alcotest.test_case "duration model" `Quick test_mp_duration_matches_model;
          Alcotest.test_case "signature time" `Quick test_mp_signature_adds_time;
          Alcotest.test_case "shuffled order" `Quick test_mp_order_shuffled;
          Alcotest.test_case "hooks fire" `Quick test_mp_interruptible_hooks_fire;
          Alcotest.test_case "atomic hooks silent" `Quick test_mp_atomic_hooks_silent;
          Alcotest.test_case "data copy" `Quick test_mp_data_copy;
          Alcotest.test_case "mac_over" `Quick test_mac_over_deterministic;
        ] );
      ( "report wire format",
        [
          Alcotest.test_case "roundtrip" `Quick test_report_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_report_decode_rejects_garbage;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "detects tampering" `Quick test_verifier_detects_tampering;
          Alcotest.test_case "nonce freshness" `Quick test_verifier_nonce_freshness;
          Alcotest.test_case "malformed reports" `Quick test_verifier_malformed_reports;
          Alcotest.test_case "data blocks" `Quick test_verifier_data_blocks_accepted;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "untouched memory" `Quick test_consistency_untouched_memory;
          Alcotest.test_case "detects change" `Quick test_consistency_detects_change;
          Alcotest.test_case "profile" `Quick test_consistency_profile_shape;
        ] );
      ("protocol", [ Alcotest.test_case "event order" `Quick test_protocol_event_order ]);
      ( "timeline",
        [
          Alcotest.test_case "render" `Quick test_timeline_render;
          Alcotest.test_case "profile" `Quick test_timeline_profile_render;
        ] );
      ( "smarm",
        [
          Alcotest.test_case "theory" `Quick test_smarm_theory;
          Alcotest.test_case "round runner" `Quick test_smarm_rounds_runner;
        ] );
      ( "erasmus",
        [
          Alcotest.test_case "schedule & storage" `Quick test_erasmus_schedule_and_storage;
          Alcotest.test_case "deferral" `Quick test_erasmus_deferral;
          Alcotest.test_case "on-demand composition" `Quick test_erasmus_on_demand_composition;
        ] );
      ( "seed",
        [
          Alcotest.test_case "deterministic schedule" `Quick test_seed_schedule_deterministic;
          Alcotest.test_case "prover matches schedule" `Quick test_seed_prover_matches_schedule;
          Alcotest.test_case "replay & drop" `Quick test_seed_replay_and_drop;
        ] );
      ( "pipeline properties",
        [
          qtest prop_any_tampering_detected;
          qtest prop_untouched_memory_always_consistent;
          qtest prop_wire_roundtrip;
        ] );
      ( "merkle / incremental",
        [
          Alcotest.test_case "merkle basics" `Quick test_merkle_basics;
          Alcotest.test_case "update = rebuild" `Quick test_merkle_update_equals_rebuild;
          Alcotest.test_case "root_of_leaves = build" `Quick test_merkle_root_of_leaves;
          Alcotest.test_case "proofs" `Quick test_merkle_proofs;
          Alcotest.test_case "clean & dirty rounds" `Quick test_incremental_clean_and_dirty;
          Alcotest.test_case "detects malware" `Quick test_incremental_detects_malware;
          Alcotest.test_case "cost scales with churn" `Quick
            test_incremental_cost_scales_with_churn;
        ] );
      ( "reliable protocol",
        [
          Alcotest.test_case "ideal network" `Quick test_reliable_ideal_network;
          Alcotest.test_case "recovers from loss" `Quick test_reliable_recovers_from_loss;
          Alcotest.test_case "duplicate suppression" `Quick test_reliable_duplicate_suppression;
          Alcotest.test_case "gives up" `Quick test_reliable_gives_up;
          Alcotest.test_case "detects malware through loss" `Quick
            test_reliable_detects_malware_through_loss;
        ] );
      ( "tytan",
        [
          Alcotest.test_case "partition" `Quick test_tytan_partition;
          Alcotest.test_case "clean device" `Quick test_tytan_clean_device;
          Alcotest.test_case "single-process malware caught" `Quick
            test_tytan_single_process_malware_caught;
          Alcotest.test_case "colluding processes escape" `Quick
            test_tytan_colluding_processes_escape;
        ] );
      ( "code update",
        [
          Alcotest.test_case "clean device" `Quick test_update_clean_device;
          Alcotest.test_case "erases malware" `Quick test_update_erases_malware;
          Alcotest.test_case "cheating erasure caught" `Quick
            test_update_cheating_erasure_caught;
          Alcotest.test_case "cheat anywhere caught" `Quick test_update_cheat_anywhere_caught;
        ] );
      ( "swatt",
        [
          Alcotest.test_case "checksum sensitivity" `Quick test_swatt_checksum_sensitivity;
          Alcotest.test_case "timing detection" `Quick test_swatt_timing_detection;
          Alcotest.test_case "jitter erodes detection" `Quick
            test_swatt_jitter_erodes_detection;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "key derivation" `Quick test_fleet_key_derivation;
          Alcotest.test_case "attest all" `Quick test_fleet_attest_all;
          Alcotest.test_case "duplicate rejected" `Quick test_fleet_duplicate_rejected;
          Alcotest.test_case "cross-device key rejected" `Quick
            test_fleet_cross_device_key_rejected;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "wire enums" `Quick test_report_decode_bad_enums;
          Alcotest.test_case "timeline" `Quick test_timeline_single_marker;
          Alcotest.test_case "erasmus validation" `Quick test_erasmus_validation;
          Alcotest.test_case "fleet unknown id" `Quick test_fleet_unknown_id;
          Alcotest.test_case "smarm validation" `Quick test_smarm_validation;
          Alcotest.test_case "reliable validation" `Quick test_reliable_validation;
          Alcotest.test_case "swatt table" `Quick test_swatt_table_smoke;
          Alcotest.test_case "consistency interval" `Quick test_consistency_bad_interval;
        ] );
      ( "qoa",
        [
          Alcotest.test_case "math" `Quick test_qoa_math;
          qtest prop_qoa_monotone_in_dwell;
        ] );
    ]
