(* Tests for the ralint rule engine (lib/lint): one positive (detected)
   and one negative (clean) fixture per rule family, suppression-comment
   and fingerprint behaviour, interface hygiene, and a qcheck property
   that the LINT_BASELINE.json round trip (emit -> parse -> compare) is
   the identity. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* Inline fixtures live under a path outside every allowlist unless a test
   says otherwise. *)
let lint ?config ?(file = "lib/core/fixture.ml") source =
  Ra_lint.lint_source ?config ~file source

let rules findings = List.map (fun f -> f.Ra_lint.rule) findings

let rules_testable = Alcotest.(list string)

(* --- family D: determinism ---------------------------------------------- *)

let d_positive () =
  check rules_testable "global Random fires D1" [ "D1" ]
    (rules (lint "let roll () = Random.int 6\n"));
  check rules_testable "self_init fires D4" [ "D4" ]
    (rules (lint "let () = Random.self_init ()\n"));
  check rules_testable "Random.State.make_self_init fires D4" [ "D4" ]
    (rules (lint "let st = Random.State.make_self_init ()\n"));
  check rules_testable "self_init through an alias fires D4" [ "D4" ]
    (rules (lint "let st = R.State.make_self_init ()\n"));
  check rules_testable "gettimeofday fires D2" [ "D2" ]
    (rules (lint "let now () = Unix.gettimeofday ()\n"));
  check rules_testable "Sys.time fires D2" [ "D2" ]
    (rules (lint "let cpu () = Sys.time ()\n"));
  check rules_testable "Hashtbl.iter fires D3" [ "D3" ]
    (rules (lint "let dump t = Hashtbl.iter (fun k _ -> print_string k) t\n"));
  check rules_testable "unsorted Hashtbl.fold escape fires D3" [ "D3" ]
    (rules (lint "let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []\n"))

let d_negative () =
  check rules_testable "Random.State is deterministic-by-seed" []
    (rules (lint "let roll st = Random.State.int st 6\n"));
  check rules_testable "explicitly seeded Random.State.make is clean" []
    (rules (lint "let st seed = Random.State.make [| seed |]\n"));
  check rules_testable "wall clock is allowed in benchkit" []
    (rules
       (lint ~file:"lib/experiments/benchkit.ml" "let t0 = Unix.gettimeofday ()\n"));
  check rules_testable "wall clock is allowed under bench/" []
    (rules (lint ~file:"bench/main.ml" "let t0 = Unix.gettimeofday ()\n"));
  check rules_testable "fold sorted at the site is clean" []
    (rules
       (lint
          "let keys t =\n\
          \  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])\n"))

(* --- family P: parallel-safety ------------------------------------------ *)

let p_positive () =
  check rules_testable "Mutex outside the allowlist fires P1" [ "P1" ]
    (rules (lint "let m = Mutex.create ()\n" |> List.filter (fun f -> f.Ra_lint.rule = "P1")));
  check rules_testable "Domain.spawn outside the allowlist fires P1" [ "P1" ]
    (rules (lint "let d f = Domain.spawn f\n"));
  check rules_testable "toplevel Hashtbl fires P2" [ "P2" ]
    (rules (lint "let memo = Hashtbl.create 16\n"));
  check rules_testable "toplevel ref behind a tuple fires P2" [ "P2" ]
    (rules (lint "let state = (ref 0, 1)\n"));
  check rules_testable "toplevel array literal fires P2" [ "P2" ]
    (rules (lint "let tbl = [| 1; 2; 3 |]\n"));
  check rules_testable "Unix socket call outside the shell fires P3" [ "P3" ]
    (rules (lint "let s () = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0\n"));
  check rules_testable "Unix.fork outside the shell fires P3" [ "P3" ]
    (rules (lint "let f () = Unix.fork ()\n"));
  check rules_testable "nested Unix path fires P3" [ "P3" ]
    (rules (lint ~file:"lib/experiments/fixture.ml" "let b () = Unix.LargeFile.stat \"x\"\n"))

let p_negative () =
  check rules_testable "Mutex inside lib/cache is allowed" []
    (rules (lint ~file:"lib/cache/ra_cache.ml" "let m = Mutex.create ()\n"));
  check rules_testable "Unix inside the socket shell is allowed" []
    (rules (lint ~file:"lib/server/tcp.ml" "let s () = Unix.listen fd 64\n"));
  check rules_testable "Unix inside the journal's file backend is allowed" []
    (rules (lint ~file:"lib/journal/disk.ml" "let s f = Unix.openfile f [] 0o644\n"));
  check rules_testable "a wall-clock read is D2's diagnosis, not P3's" [ "D2" ]
    (rules (lint "let now () = Unix.gettimeofday ()\n"));
  check rules_testable "per-call state is not module state" []
    (rules (lint "let fresh () = Hashtbl.create 16\n"));
  check rules_testable "P2 scoping excludes unreachable paths" []
    (rules
       (lint
          ~config:
            { Ra_lint.default_config with Ra_lint.p2_paths = Some [ "lib/core/" ] }
          ~file:"lib/hydra/fixture.ml" "let memo = Hashtbl.create 16\n"))

(* --- family U: unsafe audit --------------------------------------------- *)

let u_positive () =
  check rules_testable "bare unsafe access fires U1 and U2" [ "U1"; "U2" ]
    (rules (lint "let head b = Bytes.unsafe_get b 0\n"));
  check rules_testable "cross-check alone still fires U1" [ "U1" ]
    (rules
       (lint
          "(* cross-check: Checked.fixture in test_lint.ml *)\n\
           let head b = Bytes.unsafe_get b 0\n"));
  check rules_testable "bounds comment alone still fires U2" [ "U2" ]
    (rules
       (lint "(* bounds: b is non-empty by construction. *)\nlet head b = Bytes.unsafe_get b 0\n"))

let u_negative () =
  check rules_testable "bounds + cross-check is clean" []
    (rules
       (lint
          "(* cross-check: Checked.fixture in test_lint.ml.\n\
          \   bounds: b is non-empty by construction. *)\n\
           let head b = Bytes.unsafe_get b 0\n"));
  check rules_testable "bounds comment inside the function attaches" []
    (rules
       (lint
          "(* cross-check: Checked.fixture in test_lint.ml *)\n\
           let head b =\n\
          \  (* bounds: b is non-empty by construction. *)\n\
          \  Bytes.unsafe_get b 0\n"));
  check rules_testable "a far-away bounds comment does not attach"
    [ "U1" ]
    (rules
       (lint
          "(* cross-check: Checked.fixture in test_lint.ml.\n\
          \   bounds: for some other function far above. *)\n\
           let unrelated = 1\n\
           let also_unrelated = 2\n\
           let and_more = 3\n\
           let head b = Bytes.unsafe_get b 0\n"))

(* --- family I: interface hygiene ---------------------------------------- *)

let i_positive () =
  check rules_testable "missing .mli fires I1" [ "I1" ]
    (rules
       (Ra_lint.check_interface ~file:"lib/core/fixture.ml" ~mli_exists:false
          "let answer = 42\n"))

let i_negative () =
  check rules_testable "present .mli is clean" []
    (rules
       (Ra_lint.check_interface ~file:"lib/core/fixture.ml" ~mli_exists:true
          "let answer = 42\n"));
  check rules_testable "module-type-only file is exempt" []
    (rules
       (Ra_lint.check_interface ~file:"lib/core/fixture_intf.ml" ~mli_exists:false
          "module type S = sig\n  val x : int\nend\n"));
  check rules_testable "allowlisted file is exempt" []
    (rules
       (Ra_lint.check_interface ~file:"lib/crypto/digest_intf.ml" ~mli_exists:false
          "let not_actually_an_interface = 0\n"))

(* --- suppressions and fingerprints -------------------------------------- *)

let suppression () =
  check rules_testable "in-source waiver silences the named rule" []
    (rules
       (lint
          "(* ralint: allow P2 -- read-only table for tests. *)\n\
           let tbl = [| 1; 2 |]\n"));
  check rules_testable "waiver family letter covers the family" []
    (rules (lint "(* ralint: allow D -- fixture. *)\nlet roll () = Random.int 6\n"));
  check rules_testable "waiver covers adjacent attached items" []
    (rules
       (lint
          "(* ralint: allow P2 -- two read-only tables. *)\n\
           let a = [| 1 |]\n\
           let b = [| 2 |]\n"));
  check rules_testable "waiver for one rule leaves others firing" [ "D1" ]
    (rules (lint "(* ralint: allow P2 -- fixture. *)\nlet r () = Random.int 3\n"))

let fingerprints () =
  let fs =
    lint "let a b = Bytes.unsafe_get b 0\nlet c b = Bytes.unsafe_get b 1\n"
    |> List.filter (fun f -> f.Ra_lint.rule = "U1")
  in
  check (Alcotest.list Alcotest.string) "occurrence-indexed fingerprints"
    [
      "U1:lib/core/fixture.ml:Bytes.unsafe_get#0";
      "U1:lib/core/fixture.ml:Bytes.unsafe_get#1";
    ]
    (List.map (fun f -> f.Ra_lint.fingerprint) fs);
  (* A pure line move (leading comment) must not change fingerprints. *)
  let moved =
    lint
      "(* a comment that shifts every line *)\n\n\
       let a b = Bytes.unsafe_get b 0\nlet c b = Bytes.unsafe_get b 1\n"
    |> List.filter (fun f -> f.Ra_lint.rule = "U1")
  in
  check (Alcotest.list Alcotest.string) "fingerprints are line-move stable"
    (List.map (fun f -> f.Ra_lint.fingerprint) fs)
    (List.map (fun f -> f.Ra_lint.fingerprint) moved)

let parse_error () =
  Alcotest.check_raises "unparseable source raises"
    (Ra_lint.Lint_parse_error ("syntax error", 1)) (fun () ->
      ignore (lint "let let let\n"))

(* --- baseline ratchet ---------------------------------------------------- *)

let baseline_diff () =
  let findings =
    lint "let a b = Bytes.unsafe_get b 0\n"
  in
  (* All new against an empty baseline. *)
  let r0 = Ra_lint.diff ~baseline:[] findings in
  check Alcotest.int "all findings new" (List.length findings)
    (List.length (Ra_lint.new_findings r0));
  (* Accepted once baselined; nothing new, nothing stale. *)
  let baseline = List.map Ra_lint.entry_of_finding findings in
  let r1 = Ra_lint.diff ~baseline findings in
  check Alcotest.int "baselined findings are not new" 0
    (List.length (Ra_lint.new_findings r1));
  check Alcotest.int "no stale entries while sites fire" 0 (List.length r1.Ra_lint.stale);
  (* Fixed sites surface as drift. *)
  let r2 = Ra_lint.diff ~baseline [] in
  check Alcotest.int "fixed sites are stale" (List.length baseline)
    (List.length r2.Ra_lint.stale)

let entry_gen =
  let open QCheck in
  let token = string_small_of Gen.printable in
  Gen.map
    (fun ((r, f), p) -> { Ra_lint.b_rule = r; b_file = f; b_fingerprint = p })
    Gen.(pair (pair token.gen token.gen) token.gen)

let baseline_roundtrip =
  QCheck.Test.make ~count:200 ~name:"baseline emit -> parse -> compare is identity"
    (QCheck.make
       ~print:(fun es -> Ra_lint.baseline_to_json es)
       QCheck.Gen.(list_size (int_bound 12) entry_gen))
    (fun entries ->
      Ra_lint.baseline_of_json (Ra_lint.baseline_to_json entries) = entries)

(* --- interprocedural families L, O, C (Program) -------------------------- *)

let plint ?config sources =
  Ra_lint.Program.analyze ?config (Ra_lint.Program.load sources)

let sorted_rules findings = List.sort compare (rules findings)

(* family L: lock discipline *)

let store_file body = [ ("lib/cache/ra_cache.ml", "module Store = struct\n" ^ body ^ "end\n") ]

let l_positive () =
  check rules_testable "direct double acquire fires L1" [ "L1" ]
    (sorted_rules
       (plint
          (store_file
             "  let f t = Mutex.lock t.mutex; Mutex.lock t.mutex; Mutex.unlock t.mutex\n")));
  check rules_testable "double acquire through a callee fires L1" [ "L1" ]
    (sorted_rules
       (plint
          (store_file
             "  let inner t = Mutex.lock t.mutex; Mutex.unlock t.mutex\n\
             \  let outer t = Mutex.lock t.mutex; inner t; Mutex.unlock t.mutex\n")));
  check rules_testable "opposite acquisition orders fire L2" [ "L2" ]
    (sorted_rules
       (plint
          (store_file
             "  let ab t = Mutex.lock t.m1; Mutex.lock t.m2; Mutex.unlock t.m2; Mutex.unlock t.m1\n\
             \  let ba t = Mutex.lock t.m2; Mutex.lock t.m1; Mutex.unlock t.m1; Mutex.unlock t.m2\n")));
  check rules_testable "blocking syscall under a lock fires L3" [ "L3" ]
    (sorted_rules
       (plint
          (store_file
             "  let f t = Mutex.lock t.mutex; Unix.sleep 1; Mutex.unlock t.mutex\n")));
  check rules_testable "blocking callee under a lock fires L3" [ "L3" ]
    (sorted_rules
       (plint
          [ ( "lib/cache/ra_cache.ml",
              "module Store = struct\n\
              \  let slow () = Unix.sleep 1\n\
              \  let f t = Mutex.lock t.mutex; slow (); Mutex.unlock t.mutex\nend\n" ) ]));
  check rules_testable "fsync through Disk under a lock fires L3" [ "L3" ]
    (sorted_rules
       (plint
          (store_file
             "  let f t d = Mutex.lock t.mutex; d.Disk.sync d; Mutex.unlock t.mutex\n")));
  check rules_testable "digest hoisted out of the stripe lock fires L4" [ "L4" ]
    (sorted_rules
       (plint
          (store_file
             "  let compute t b = Algo.digest t.h b\n\
             \  let digest t b =\n\
             \    let d = compute t b in\n\
             \    Mutex.lock t.mutex; t.hits <- t.hits + 1; Mutex.unlock t.mutex; d\n")))

let l_negative () =
  check rules_testable "compute-inside-the-lock is clean" []
    (sorted_rules
       (plint
          (store_file
             "  let compute t b = Algo.digest t.h b\n\
             \  let digest t b =\n\
             \    Mutex.lock t.mutex;\n\
             \    let d = compute t b in\n\
             \    Mutex.unlock t.mutex; d\n")));
  check rules_testable "unlock before the blocking call is clean" []
    (sorted_rules
       (plint
          (store_file
             "  let f t = Mutex.lock t.mutex; Mutex.unlock t.mutex; Unix.sleep 1\n")));
  check rules_testable "Condition.wait releases the lock: not L3" []
    (sorted_rules
       (plint
          (store_file
             "  let f t = Mutex.lock t.mutex; Condition.wait t.cond t.mutex; Mutex.unlock t.mutex\n")));
  check rules_testable "balanced locking inside a lambda is clean" []
    (sorted_rules
       (plint
          (store_file
             "  let sum t f =\n\
             \    Array.fold_left\n\
             \      (fun acc s -> Mutex.lock s.mutex; let v = f s in Mutex.unlock s.mutex; acc + v)\n\
             \      0 t.stripes\n")));
  check rules_testable "consistent acquisition order is not L2" []
    (sorted_rules
       (plint
          (store_file
             "  let ab t = Mutex.lock t.m1; Mutex.lock t.m2; Mutex.unlock t.m2; Mutex.unlock t.m1\n\
             \  let ab2 t = Mutex.lock t.m1; Mutex.lock t.m2; Mutex.unlock t.m2; Mutex.unlock t.m1\n")));
  check rules_testable "digest outside the guarded scope is not L4" []
    (sorted_rules
       (plint
          [ ("lib/core/measure.ml", "let hash h b = Algo.digest h b\n") ]))

(* family O: protocol order *)

let core_file body = [ ("lib/server/core.ml", "module J = Ra_journal.Journal\n" ^ body) ]

let o_positive () =
  check rules_testable "Ack with no journal append fires O1" [ "O1" ]
    (sorted_rules (plint (core_file "let submit t d = Wire.Ack d\n")));
  check rules_testable "Ack after append but before commit fires O1" [ "O1" ]
    (sorted_rules
       (plint (core_file "let submit j d = J.append j d; Wire.Ack d\n")));
  check rules_testable "Ack on one unjournaled branch fires O1" [ "O1" ]
    (sorted_rules
       (plint
          (core_file
             "let submit j d ok =\n\
             \  if ok then begin J.append j d; J.commit j end;\n\
             \  Wire.Ack d\n")));
  check rules_testable "Journal.restart without ~validate fires O2" [ "O2" ]
    (sorted_rules
       (plint (core_file "let recover disk = J.restart disk ~keep:3\n")))

let o_negative () =
  check rules_testable "append+commit then Ack is clean" []
    (sorted_rules
       (plint
          (core_file "let submit j d = J.append j d; J.commit j; Wire.Ack d\n")));
  check rules_testable "journaling through a helper is clean" []
    (sorted_rules
       (plint
          (core_file
             "let persist j d = J.append j d; J.commit j\n\
              let submit j d = persist j d; Wire.Ack d\n")));
  check rules_testable "reject branches owe no journal entry" []
    (sorted_rules
       (plint
          (core_file
             "let submit j d ok =\n\
             \  if not ok then Wire.Rejected \"bad\"\n\
             \  else begin J.append j d; J.commit j; Wire.Ack d end\n")));
  check rules_testable "diverging branches drop out of the join" []
    (sorted_rules
       (plint
          (core_file
             "let submit j d ok =\n\
             \  if not ok then failwith \"bad\"\n\
             \  else begin J.append j d; J.commit j end;\n\
             \  Wire.Ack d\n")));
  check rules_testable "Ack outside lib/server Core is out of scope" []
    (sorted_rules
       (plint [ ("bin/loadgen.ml", "let expect d = Wire.Ack d\n") ]));
  check rules_testable "restart with ~validate is clean" []
    (sorted_rules
       (plint
          (core_file
             "let recover disk = J.restart ~validate:(fun _ -> true) disk ~keep:3\n")))

(* The regression the family exists for: a refactor of the real submit
   shape that hoists the Ack above the journal write must fail lint. *)
let o_reordered_core () =
  let reordered =
    "module J = Ra_journal.Journal\n\
     let submit t j device seq report =\n\
    \  if seq < 1 then Wire.Rejected \"sequence numbers start at 1\"\n\
    \  else begin\n\
    \    let ack = Wire.Ack { device; seq } in\n\
    \    J.append j (record device seq report);\n\
    \    J.commit j;\n\
    \    ack\n\
    \  end\n"
  and ordered =
    "module J = Ra_journal.Journal\n\
     let submit t j device seq report =\n\
    \  if seq < 1 then Wire.Rejected \"sequence numbers start at 1\"\n\
    \  else begin\n\
    \    J.append j (record device seq report);\n\
    \    J.commit j;\n\
    \    Wire.Ack { device; seq }\n\
    \  end\n"
  in
  check rules_testable "reordered Core submit fires O1" [ "O1" ]
    (sorted_rules (plint [ ("lib/server/core.ml", reordered) ]));
  check rules_testable "journal-before-Ack submit is clean" []
    (sorted_rules (plint [ ("lib/server/core.ml", ordered) ]))

(* family C: secret flow *)

let crypto_file body = [ ("lib/crypto/fixture.ml", body) ]

let c_positive () =
  check rules_testable "= on a key fires C1" [ "C1" ]
    (sorted_rules (plint (crypto_file "let check ~key probe = key = probe\n")));
  check rules_testable "Bytes.equal on a MAC tag fires C1" [ "C1" ]
    (sorted_rules
       (plint (crypto_file "let verify ~tag probe = Bytes.equal tag probe\n")));
  check rules_testable "comparing a MAC producer's output fires C1" [ "C1" ]
    (sorted_rules
       (plint
          (crypto_file
             "let verify ~key msg probe = Bytes.equal probe (Hmac.Sha256.mac ~key msg)\n")));
  check rules_testable "taint crossing into a comparing helper fires C1" [ "C1" ]
    (sorted_rules
       (plint
          (crypto_file
             "let eq a b = Bytes.equal a b\n\
              let verify ~key probe = eq key probe\n")));
  check rules_testable "taint through Bytes plumbing fires C1" [ "C1" ]
    (sorted_rules
       (plint
          (crypto_file
             "let check ~key probe = Bytes.equal (Bytes.sub key 0 16) probe\n")));
  check rules_testable "a secret in an exception message fires C2" [ "C2" ]
    (sorted_rules
       (plint (crypto_file "let boom ~key = failwith (Bytes.to_string key)\n")))

let c_negative () =
  check rules_testable "constant_time_equal is the sanctioned sink" []
    (sorted_rules
       (plint
          (crypto_file
             "let verify ~key probe = Bytesutil.constant_time_equal key probe\n")));
  check rules_testable "comparing public values is clean" []
    (sorted_rules
       (plint (crypto_file "let same a b = Bytes.equal a b\n")));
  check rules_testable "Nat.compare on curve coordinates is not a sink" []
    (sorted_rules
       (plint
          [ ("lib/pk/fixture.ml", "let le ~key other = Nat.compare key other <= 0\n") ]));
  check rules_testable "a journal record tag is not a MAC tag" []
    (sorted_rules
       (plint
          [ ( "lib/server/replay.ml",
              "let is_report ev report_tag = ev.Ev.tag = report_tag\n" ) ]));
  check rules_testable "an Error-branch message does not inherit Ok taint" []
    (sorted_rules
       (plint
          [ ( "lib/server/replay.ml",
              "let explain t d r =\n\
              \  match World.verify t ~device:d r with\n\
              \  | Ok (v, mac) -> Ok v\n\
              \  | Error e -> Error (Printf.sprintf \"replay failed: %s\" e)\n" );
            ( "lib/server/world.ml",
              "let verify t ~device r = Ok (0, Hmac.Sha256.mac ~key:t.key r)\n" )
          ]));
  check rules_testable "C findings stay inside the configured paths" []
    (sorted_rules
       (plint [ ("lib/core/fixture.ml", "let check ~key probe = key = probe\n") ]))

(* interprocedural waivers: near-site only *)

let program_waivers () =
  check rules_testable "a waiver directly above the flagged line holds" []
    (sorted_rules
       (plint
          (core_file
             "let submit t d =\n\
             \  (* ralint: allow O1 -- re-ack of an already-durable report *)\n\
             \  Wire.Ack d\n")));
  check rules_testable "a function-level waiver does not cover the body" [ "O1" ]
    (sorted_rules
       (plint
          (core_file
             "(* ralint: allow O1 -- too far from the site to count *)\n\
              let submit t d =\n\
             \  let x = ignore t in\n\
             \  ignore x;\n\
             \  Wire.Ack d\n")))

(* qcheck: interprocedural fingerprints are stable under pure line moves *)

let program_fingerprints () =
  (* two findings with the same (rule, token) must get occurrence indices *)
  let fs =
    plint
      (core_file "let a t d = Wire.Ack d\nlet b t d = Wire.Ack d\n")
  in
  check (Alcotest.list Alcotest.string) "occurrence-indexed fingerprints"
    [ "O1:lib/server/core.ml:Wire.Ack#0"; "O1:lib/server/core.ml:Wire.Ack#1" ]
    (List.map (fun f -> f.Ra_lint.fingerprint) fs)

let program_fingerprints_stable =
  QCheck.Test.make ~count:40
    ~name:"interprocedural fingerprints stable under line moves"
    QCheck.(int_bound 8)
    (fun n ->
      let pad = String.concat "" (List.init n (fun _ -> "(* moved *)\n")) in
      let body =
        "let persist j d = J.append j d; J.commit j\n\
         let a t d = Wire.Ack d\n\
         let b j d = J.append j d; Wire.Ack d\n"
      in
      let fps src =
        List.map
          (fun f -> f.Ra_lint.fingerprint)
          (plint (core_file src))
      in
      fps body = fps (pad ^ body))

(* --- repo-level invariants ----------------------------------------------- *)

let reachability () =
  (* The rule-P2 scope must include the libraries that submit Ra_parallel
     tasks and their dependencies, and must never include lib/parallel
     itself (it is the allowlisted implementation). *)
  (* cwd differs between `dune runtest` (the test's build dir) and a direct
     exec from the repo root; probe upward for the tree that holds lib/. *)
  let root =
    List.find
      (fun r -> Sys.file_exists (Filename.concat r "lib/parallel/dune"))
      [ "."; ".."; "../.."; "../../.." ]
  in
  let dirs = Ra_lint.Reach.parallel_reachable ~root in
  Alcotest.(check bool) "experiments submit tasks" true
    (List.mem "lib/experiments/" dirs);
  Alcotest.(check bool) "core is reachable from task closures" true
    (List.mem "lib/core/" dirs);
  Alcotest.(check bool) "crypto is reachable from task closures" true
    (List.mem "lib/crypto/" dirs)

let () =
  Alcotest.run "ra_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "D positive" `Quick d_positive;
          Alcotest.test_case "D negative" `Quick d_negative;
          Alcotest.test_case "P positive" `Quick p_positive;
          Alcotest.test_case "P negative" `Quick p_negative;
          Alcotest.test_case "U positive" `Quick u_positive;
          Alcotest.test_case "U negative" `Quick u_negative;
          Alcotest.test_case "I positive" `Quick i_positive;
          Alcotest.test_case "I negative" `Quick i_negative;
        ] );
      ( "engine",
        [
          Alcotest.test_case "suppressions" `Quick suppression;
          Alcotest.test_case "fingerprints" `Quick fingerprints;
          Alcotest.test_case "parse error" `Quick parse_error;
          Alcotest.test_case "reachability" `Quick reachability;
        ] );
      ( "program",
        [
          Alcotest.test_case "L positive" `Quick l_positive;
          Alcotest.test_case "L negative" `Quick l_negative;
          Alcotest.test_case "O positive" `Quick o_positive;
          Alcotest.test_case "O negative" `Quick o_negative;
          Alcotest.test_case "reordered Core regression" `Quick o_reordered_core;
          Alcotest.test_case "C positive" `Quick c_positive;
          Alcotest.test_case "C negative" `Quick c_negative;
          Alcotest.test_case "near-site waivers" `Quick program_waivers;
          Alcotest.test_case "fingerprints" `Quick program_fingerprints;
          qtest program_fingerprints_stable;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "diff semantics" `Quick baseline_diff;
          qtest baseline_roundtrip;
        ] );
    ]
