(* Integration tests: the experiment harnesses must reproduce the paper's
   qualitative results (Table 1, Fig. 2 claims, Fig. 4 matrix, Fig. 5 story,
   SMARM escape probabilities, the Section 2.5 latency blow-up). *)

open Ra_core
open Ra_experiments

let check = Alcotest.check

(* --- Runs ------------------------------------------------------------------- *)

let test_clean_runs_verify () =
  List.iter
    (fun scheme ->
      let outcome = Runs.run Runs.default_setup ~scheme ~adversary:Runs.No_malware in
      check Alcotest.bool (scheme.Scheme.name ^ " clean") false outcome.Runs.detected;
      check Alcotest.int
        (scheme.Scheme.name ^ " one report")
        1
        (List.length outcome.Runs.reports))
    Scheme.all_basic

let test_run_deterministic () =
  let adversary =
    Runs.Malicious
      { behavior = Ra_malware.Malware.Self_relocating Ra_malware.Malware.Uniform_hop;
        block = 40 }
  in
  let o1 = Runs.run Runs.default_setup ~scheme:Scheme.smarm ~adversary in
  let o2 = Runs.run Runs.default_setup ~scheme:Scheme.smarm ~adversary in
  check Alcotest.bool "same seed, same detection" o1.Runs.detected o2.Runs.detected;
  check Alcotest.int "same relocation count" o1.Runs.malware_relocations
    o2.Runs.malware_relocations

let test_static_malware_all_schemes () =
  List.iter
    (fun scheme ->
      let outcome =
        Runs.run Runs.default_setup ~scheme
          ~adversary:(Runs.Malicious { behavior = Ra_malware.Malware.Static; block = 40 })
      in
      check Alcotest.bool
        (scheme.Scheme.name ^ " detects static malware")
        true outcome.Runs.detected)
    Scheme.all_basic

(* Table 1 detection semantics, deterministic rows only (the probabilistic
   SMARM row is covered by the escape-rate tests below). *)
let test_table1_deterministic_rows () =
  let reloc scheme =
    (Runs.run Runs.default_setup ~scheme
       ~adversary:
         (Runs.Malicious
            { behavior = Ra_malware.Malware.Self_relocating Ra_malware.Malware.Half_split_hop;
              block = 40 }))
      .Runs.detected
  in
  let transient scheme =
    (Runs.run Runs.default_setup ~scheme
       ~adversary:
         (Runs.Malicious { behavior = Ra_malware.Malware.Evasive_erase; block = 40 }))
      .Runs.detected
  in
  (* SMART: both caught *)
  check Alcotest.bool "smart reloc" true (reloc Scheme.smart);
  check Alcotest.bool "smart transient" true (transient Scheme.smart);
  (* No-Lock: both escape *)
  check Alcotest.bool "no-lock reloc escapes" false (reloc Scheme.no_lock);
  check Alcotest.bool "no-lock transient escapes" false (transient Scheme.no_lock);
  (* All-Lock and Dec-Lock: both caught *)
  check Alcotest.bool "all-lock reloc" true (reloc Scheme.all_lock);
  check Alcotest.bool "all-lock transient" true (transient Scheme.all_lock);
  check Alcotest.bool "dec-lock reloc" true (reloc Scheme.dec_lock);
  check Alcotest.bool "dec-lock transient" true (transient Scheme.dec_lock);
  (* Inc-Lock: relocation caught, transient escapes *)
  check Alcotest.bool "inc-lock reloc" true (reloc Scheme.inc_lock);
  check Alcotest.bool "inc-lock transient escapes" false (transient Scheme.inc_lock);
  (* Cpy-Lock: writes divert into shadows, so both adversaries are caught *)
  check Alcotest.bool "cpy-lock reloc" true (reloc Scheme.cpy_lock);
  check Alcotest.bool "cpy-lock transient" true (transient Scheme.cpy_lock)

let test_cpy_lock_availability () =
  (* Cpy-Lock's point: All-Lock consistency without the write stalls. *)
  let cpy = Fire_alarm.run_scheme Scheme.cpy_lock in
  check Alcotest.int "no write stall" 0 cpy.Fire_alarm.app_blocked_ns;
  check Alcotest.int "no deadline misses" 0 cpy.Fire_alarm.deadline_misses;
  let consistency = Fig4.run_scheme Scheme.cpy_lock in
  check Alcotest.bool "consistent throughout [ts,te]" true
    consistency.Fig4.consistent_throughout_measure

let test_detection_rate_interval () =
  let rate, (lo, hi) =
    Runs.detection_rate Runs.default_setup ~scheme:Scheme.smart
      ~adversary:(Runs.Malicious { behavior = Ra_malware.Malware.Static; block = 1 })
      ~trials:5
  in
  check (Alcotest.float 1e-9) "certain detection" 1.0 rate;
  check Alcotest.bool "interval sane" true (lo <= rate && rate <= hi)

(* --- SMARM ------------------------------------------------------------------- *)

let test_smarm_game_matches_theory () =
  let blocks = 64 in
  let theory = Smarm.per_round_escape_probability ~blocks in
  let game = Smarm_sweep.game_escape_rate ~blocks ~rounds:1 ~trials:60_000 ~seed:3 in
  check (Alcotest.float 0.01) "abstract game" theory game

let test_smarm_simulation_matches_theory () =
  let escape, (lo, hi) =
    Smarm_sweep.simulated_escape_rate ~blocks:64 ~rounds:1 ~trials:120 ~seed:17 ()
  in
  let theory = Smarm.per_round_escape_probability ~blocks:64 in
  check Alcotest.bool "full simulation covers theory" true (lo <= theory && theory <= hi);
  check Alcotest.bool "escape within plausible band" true (escape > 0.2 && escape < 0.55)

let test_smarm_rounds_drive_escape_down () =
  let e1 = Smarm_sweep.game_escape_rate ~blocks:64 ~rounds:1 ~trials:20_000 ~seed:3 in
  let e3 = Smarm_sweep.game_escape_rate ~blocks:64 ~rounds:3 ~trials:20_000 ~seed:3 in
  check Alcotest.bool "monotone in rounds" true (e3 < e1);
  check (Alcotest.float 0.01) "three rounds ~ theory^3"
    (Smarm.escape_probability ~blocks:64 ~rounds:3)
    e3

(* --- Fig. 2 ------------------------------------------------------------------ *)

let test_fig2_claims_hold () =
  List.iter
    (fun claim ->
      check Alcotest.bool claim.Fig2.label true claim.Fig2.holds)
    (Fig2.claims Ra_device.Cost_model.odroid_xu4)

let test_fig2_hash_ordering () =
  (* at every size, BLAKE2b is the fastest and SHA-256 the slowest on the
     calibrated ODROID profile, matching the figure's ordering *)
  let cost = Ra_device.Cost_model.odroid_xu4 in
  List.iter
    (fun bytes ->
      let time h = Ra_device.Cost_model.hash_time cost h ~bytes in
      check Alcotest.bool "blake2b fastest" true
        (time Ra_crypto.Algo.BLAKE2b <= time Ra_crypto.Algo.SHA_512);
      check Alcotest.bool "sha256 slowest" true
        (time Ra_crypto.Algo.SHA_256 >= time Ra_crypto.Algo.BLAKE2s))
    [ 1024; 1024 * 1024; 100 * 1024 * 1024 ]

let test_fig2_render_nonempty () =
  let out = Fig2.render Ra_device.Cost_model.odroid_xu4 in
  check Alcotest.bool "mentions all hashes" true
    (List.for_all
       (fun h ->
         let name = Ra_crypto.Algo.hash_name h in
         let rec contains i =
           i + String.length name <= String.length out
           && (String.sub out i (String.length name) = name || contains (i + 1))
         in
         contains 0)
       Ra_crypto.Algo.all_hashes)

(* --- Fig. 4 ------------------------------------------------------------------- *)

let test_fig4_matches_paper () =
  List.iter
    (fun expectation ->
      let scheme =
        List.find
          (fun s -> s.Scheme.name = expectation.Fig4.scheme)
          Fig4.schemes
      in
      let r = Fig4.run_scheme scheme in
      check Alcotest.bool
        (expectation.Fig4.scheme ^ " @ts")
        expectation.Fig4.at_start r.Fig4.consistent_at_start;
      check Alcotest.bool
        (expectation.Fig4.scheme ^ " @te")
        expectation.Fig4.at_end r.Fig4.consistent_at_end;
      check Alcotest.bool
        (expectation.Fig4.scheme ^ " throughout")
        expectation.Fig4.throughout r.Fig4.consistent_throughout_measure)
    Fig4.expected

let test_fig4_ext_windows () =
  let all_ext = Fig4.run_scheme (Scheme.all_lock_ext (Ra_sim.Timebase.s 2)) in
  check Alcotest.bool "all-lock-ext consistent through tr" true
    all_ext.Fig4.consistent_throughout_release;
  check Alcotest.bool "tr = te + 2 s" true
    (Ra_sim.Timebase.sub all_ext.Fig4.t_release all_ext.Fig4.t_end = Ra_sim.Timebase.s 2);
  let inc_ext = Fig4.run_scheme (Scheme.inc_lock_ext (Ra_sim.Timebase.s 2)) in
  check Alcotest.bool "inc-lock-ext consistent at tr" true
    inc_ext.Fig4.consistent_at_release

(* --- Fig. 5 -------------------------------------------------------------------- *)

let test_fig5_story () =
  let story = Fig5.run_story () in
  check Alcotest.bool "infection 1 undetected" false story.Fig5.infection1_detected;
  check Alcotest.bool "infection 2 detected" true story.Fig5.infection2_detected;
  check Alcotest.bool "several measurements" true (List.length story.Fig5.measurements >= 6);
  check Alcotest.int "two collections" 2 (List.length story.Fig5.collections)

(* --- Fire alarm (Section 2.5) ----------------------------------------------------- *)

let test_fire_alarm_contrast () =
  let smart = Fire_alarm.run_scheme Scheme.smart in
  let no_lock = Fire_alarm.run_scheme Scheme.no_lock in
  (match (smart.Fire_alarm.alarm_latency, no_lock.Fire_alarm.alarm_latency) with
  | Some s, Some n ->
    check Alcotest.bool "SMART delays the alarm by seconds" true (s > Ra_sim.Timebase.s 5);
    check Alcotest.bool "interruptible alarm within ~1 period" true
      (n < Ra_sim.Timebase.add (Ra_sim.Timebase.s 1) (Ra_sim.Timebase.ms 100));
    check Alcotest.bool "at least 5x contrast" true (s > 5 * n)
  | _ -> Alcotest.fail "alarm missing");
  check Alcotest.bool "SMART misses deadlines" true (smart.Fire_alarm.deadline_misses > 0);
  check Alcotest.int "No-Lock misses none" 0 no_lock.Fire_alarm.deadline_misses

let test_fire_alarm_locking_availability () =
  let all_lock = Fire_alarm.run_scheme Scheme.all_lock in
  let inc_lock = Fire_alarm.run_scheme Scheme.inc_lock in
  check Alcotest.bool "all-lock stalls writes" true
    (all_lock.Fire_alarm.app_blocked_ns > Ra_sim.Timebase.s 1);
  check Alcotest.bool "inc-lock stalls far less" true
    (inc_lock.Fire_alarm.app_blocked_ns * 10 < all_lock.Fire_alarm.app_blocked_ns)

(* --- Ablations ---------------------------------------------------------------------- *)

(* Section 3.1.2 numerically: with hot data measured last, Dec-Lock stalls
   the app for most of the window while Inc-Lock barely does; with hot data
   first, the roles swap. Fire_alarm places data blocks at the end. *)
let test_ordering_ablation () =
  let dec = Fire_alarm.run_scheme ~seed:9 Scheme.dec_lock in
  let inc = Fire_alarm.run_scheme ~seed:9 Scheme.inc_lock in
  check Alcotest.bool "hot-data-last favours Inc-Lock" true
    (inc.Fire_alarm.app_blocked_ns * 10 < dec.Fire_alarm.app_blocked_ns);
  let table = Ablations.measurement_order ~seed:9 () in
  let contains needle =
    let rec scan i =
      i + String.length needle <= String.length table
      && (String.sub table i (String.length needle) = needle || scan (i + 1))
    in
    scan 0
  in
  check Alcotest.bool "table mentions both placements" true
    (contains "hot data measured first" && contains "hot data measured last")

let test_zero_data_ablation_matrix () =
  let data_block = 30 in
  let run scheme =
    Runs.run
      { Runs.default_setup with Runs.data_blocks = [ data_block ] }
      ~scheme
      ~adversary:
        (Runs.Malicious { behavior = Ra_malware.Malware.Static; block = data_block })
  in
  let plain = run Scheme.no_lock in
  check Alcotest.bool "malware in data region escapes" false plain.Runs.detected;
  check Alcotest.bool "and survives" true plain.Runs.malware_present_after;
  let zeroed = run (Scheme.with_zero_data Scheme.no_lock) in
  check Alcotest.bool "zeroing destroys it" false zeroed.Runs.malware_present_after

(* The hybrid design point: shuffled traversal plus Cpy-Lock detects both
   canonical adversaries in one interruptible round with zero write stall. *)
let test_hybrid_smarm_cpy_lock () =
  let scheme =
    {
      Scheme.name = "SMARM+Cpy-Lock";
      atomic = false;
      locking = Scheme.Cpy_lock;
      order = Scheme.Shuffled;
      zero_data = false;
    }
  in
  let rate behavior =
    fst
      (Runs.detection_rate Runs.default_setup ~scheme
         ~adversary:(Runs.Malicious { behavior; block = 40 })
         ~trials:15)
  in
  check (Alcotest.float 1e-9) "rover always caught" 1.0
    (rate (Ra_malware.Malware.Self_relocating Ra_malware.Malware.Uniform_hop));
  check (Alcotest.float 1e-9) "eraser always caught" 1.0
    (rate Ra_malware.Malware.Evasive_erase);
  let probe = Fire_alarm.run_scheme scheme in
  check Alcotest.int "zero write stall" 0 probe.Fire_alarm.app_blocked_ns

let test_platform_contrast_monotone () =
  let mcu = Ra_device.Cost_model.low_end_mcu in
  let odroid = Ra_device.Cost_model.odroid_xu4 in
  let t cost =
    Ra_device.Cost_model.hash_time cost Ra_crypto.Algo.SHA_256 ~bytes:(1024 * 1024)
  in
  check Alcotest.bool "MCU much slower" true (t mcu > 20 * t odroid)

(* --- DoS (SeED's resilience claim) ---------------------------------------------------- *)

let test_dos_modes () =
  (* SeED ignores the flood entirely *)
  let seed_mode = Dos.run ~mode:Dos.Non_interactive ~rate_per_s:1000. () in
  check (Alcotest.float 1e-9) "seed burns nothing" 0. seed_mode.Dos.attacker_cpu_fraction;
  check Alcotest.bool "seed app unaffected" true (seed_mode.Dos.app_max_latency_s < 0.01);
  (* the naive measure-on-request prover is degraded even at 1 req/s *)
  let naive = Dos.run ~mode:Dos.Measure_on_request ~rate_per_s:1. () in
  check Alcotest.bool "naive prover burns CPU" true
    (naive.Dos.attacker_cpu_fraction > 0.2);
  check Alcotest.bool "naive app latency blows up" true (naive.Dos.app_max_latency_s > 0.3);
  (* authentication bounds the damage *)
  let auth = Dos.run ~mode:Dos.Authenticate_then_drop ~rate_per_s:1000. () in
  check Alcotest.bool "auth caps the cost" true (auth.Dos.attacker_cpu_fraction < 0.25);
  check Alcotest.bool "auth keeps the app fast" true (auth.Dos.app_max_latency_s < 0.01)

let test_dos_monotone_in_rate () =
  let fraction rate =
    (Dos.run ~mode:Dos.Authenticate_then_drop ~rate_per_s:rate ()).Dos.attacker_cpu_fraction
  in
  check Alcotest.bool "more flood, more burn" true (fraction 1000. > fraction 10.)

(* --- Advisor (Table 1 as a decision procedure) ----------------------------------------- *)

let top_scheme profile = (List.hd (Advisor.recommend profile)).Advisor.scheme

let test_advisor_fire_alarm () =
  (* the paper's own scenario: tight deadline, writes, MPU, no shadows *)
  let pick = top_scheme Advisor.default_profile in
  check Alcotest.bool "an MPU-based interruptible scheme wins" true
    (List.mem pick [ "Dec-Lock"; "Inc-Lock" ]);
  (* with shadow memory available, Cpy-Lock dominates *)
  let pick =
    top_scheme { Advisor.default_profile with Advisor.has_shadow_memory = true }
  in
  check Alcotest.string "shadow memory unlocks Cpy-Lock" "Cpy-Lock" pick

let test_advisor_unattended () =
  let profile =
    {
      Advisor.default_profile with
      Advisor.unattended = true;
      has_secure_clock = true;
      hard_deadline_ms = None;
    }
  in
  check Alcotest.string "unattended + clock -> ERASMUS" "ERASMUS" (top_scheme profile)

let test_advisor_legacy_device () =
  (* no MPU, no clock, no shadows: only software options remain viable *)
  let profile =
    {
      Advisor.default_profile with
      Advisor.has_mpu = false;
      transient_threat = false;
    }
  in
  check Alcotest.string "legacy device falls back to SMARM" "SMARM" (top_scheme profile)

let test_advisor_no_deadline () =
  let profile =
    { Advisor.default_profile with Advisor.hard_deadline_ms = None;
      writes_during_attestation = false }
  in
  check Alcotest.string "no deadline: SMART's simplicity wins" "SMART"
    (top_scheme profile);
  (* every recommendation carries its reasoning *)
  List.iter
    (fun r -> check Alcotest.bool "rationale present" true (r.Advisor.rationale <> []))
    (Advisor.recommend profile)

(* --- render smoke tests ------------------------------------------------------------------ *)

let test_render_smoke () =
  let nonempty label s = check Alcotest.bool label true (String.length s > 100) in
  nonempty "latency table" (Latency_profile.latency_table ());
  nonempty "lock gantt" (Latency_profile.lock_gantt Scheme.dec_lock);
  nonempty "incremental churn" (Incremental_eval.churn_table ());
  nonempty "advisor" (Advisor.render Advisor.default_profile)

(* --- Tablefmt ------------------------------------------------------------------------ *)

let test_tablefmt () =
  let out = Tablefmt.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333" ] ] in
  let lines = String.split_on_char '\n' out in
  check Alcotest.int "header + rule + 2 rows (+ trailing)" 5 (List.length lines);
  let series =
    Tablefmt.render_series ~x_label:"x"
      ~series:[ ("s1", [ ("10", "a"); ("2", "b") ]); ("s2", [ ("10", "c") ]) ]
  in
  (* x values keep first-appearance order: 10 before 2 *)
  let lines = String.split_on_char '\n' series in
  (match lines with
  | _header :: _rule :: first_row :: _ ->
    check Alcotest.bool "first x is 10" true (String.length first_row >= 2 && String.sub first_row 0 2 = "10")
  | _ -> Alcotest.fail "unexpected shape")

(* --- Benchkit JSON string round trips ----------------------------------------------- *)
(* Journal and campaign metadata flow through escape_string/parse_json; the
   string layer must survive control characters, backslash soup and raw
   multi-byte UTF-8 byte-for-byte. *)

let json_string_roundtrip s =
  match Benchkit.parse_json ("\"" ^ Benchkit.escape_string s ^ "\"") with
  | Benchkit.J_string s' -> s'
  | _ -> Alcotest.fail "escaped string did not parse back as a string"

let test_json_string_escapes () =
  let rt label s =
    check Alcotest.string label s (json_string_roundtrip s)
  in
  (* every control character, one by one and all together *)
  for c = 0 to 0x1f do
    rt (Printf.sprintf "control 0x%02x" c) (String.make 1 (Char.chr c))
  done;
  rt "all controls" (String.init 0x20 Char.chr);
  (* backslashes and quotes, including already-escaped-looking text *)
  rt "backslash" {|a\b|};
  rt "double backslash" {|a\\b|};
  rt "quote" {|say "hi"|};
  rt "escape-lookalike" {|\n\tA\\"|};
  rt "trailing backslash" "tail\\";
  (* multi-byte UTF-8 passes through raw: 2-, 3- and 4-byte sequences *)
  rt "latin-1 accent" "caf\xc3\xa9";
  rt "cjk" "\xe6\x97\xa5\xe6\x9c\xac\xe8\xaa\x9e";
  rt "emoji" "\xf0\x9f\x94\xa5";
  rt "mixed" "wal\x00\\\"\n\xc3\xa9\xf0\x9f\x94\xa5 end";
  (* the emitter's own output for such a name parses back as a suite *)
  let suite =
    {
      Benchkit.suite = "journal \"kill\"\n\xe6\x97\xa5";
      metrics =
        [
          {
            Benchkit.name = "replay\\events\x01s";
            value = 42.;
            unit_ = "ev/s \xc3\xa9";
            direction = Benchkit.Higher_is_better;
            exact = true;
          };
        ];
    }
  in
  match Benchkit.parse_json (Benchkit.to_json suite) with
  | Benchkit.J_object fields ->
    (match List.assoc_opt "suite" fields with
    | Some (Benchkit.J_string s) ->
      check Alcotest.string "suite name round trips" suite.Benchkit.suite s
    | _ -> Alcotest.fail "no suite field");
    (match List.assoc_opt "metrics" fields with
    | Some (Benchkit.J_array [ Benchkit.J_object m ]) -> (
      match (List.assoc_opt "name" m, List.assoc_opt "unit" m) with
      | Some (Benchkit.J_string n), Some (Benchkit.J_string u) ->
        check Alcotest.string "metric name round trips" "replay\\events\x01s" n;
        check Alcotest.string "metric unit round trips" "ev/s \xc3\xa9" u
      | _ -> Alcotest.fail "metric fields missing")
    | _ -> Alcotest.fail "no metrics array")
  | _ -> Alcotest.fail "suite JSON did not parse as an object"

let json_roundtrip_prop =
  QCheck.Test.make ~count:500
    ~name:"parse_json (escape_string s) is the identity on any byte string"
    (QCheck.make
       ~print:(fun s -> Benchkit.escape_string s)
       QCheck.Gen.(string_size ~gen:char (int_bound 40)))
    (fun s -> String.equal s (json_string_roundtrip s))

let () =
  Alcotest.run "ra_experiments"
    [
      ( "runs",
        [
          Alcotest.test_case "clean verifies" `Quick test_clean_runs_verify;
          Alcotest.test_case "deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "static malware caught" `Quick test_static_malware_all_schemes;
          Alcotest.test_case "table1 deterministic rows" `Quick test_table1_deterministic_rows;
          Alcotest.test_case "cpy-lock availability" `Quick test_cpy_lock_availability;
          Alcotest.test_case "detection rate" `Quick test_detection_rate_interval;
        ] );
      ( "smarm",
        [
          Alcotest.test_case "game vs theory" `Quick test_smarm_game_matches_theory;
          Alcotest.test_case "simulation vs theory" `Slow test_smarm_simulation_matches_theory;
          Alcotest.test_case "rounds compound" `Quick test_smarm_rounds_drive_escape_down;
        ] );
      ( "fig2",
        [
          Alcotest.test_case "claims" `Quick test_fig2_claims_hold;
          Alcotest.test_case "hash ordering" `Quick test_fig2_hash_ordering;
          Alcotest.test_case "render" `Quick test_fig2_render_nonempty;
        ] );
      ( "fig4",
        [
          Alcotest.test_case "paper matrix" `Quick test_fig4_matches_paper;
          Alcotest.test_case "extension windows" `Quick test_fig4_ext_windows;
        ] );
      ("fig5", [ Alcotest.test_case "story" `Quick test_fig5_story ]);
      ( "fire alarm",
        [
          Alcotest.test_case "latency contrast" `Quick test_fire_alarm_contrast;
          Alcotest.test_case "locking availability" `Quick test_fire_alarm_locking_availability;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "ordering" `Quick test_ordering_ablation;
          Alcotest.test_case "zero-data" `Quick test_zero_data_ablation_matrix;
          Alcotest.test_case "hybrid smarm+cpy" `Quick test_hybrid_smarm_cpy_lock;
          Alcotest.test_case "platform contrast" `Quick test_platform_contrast_monotone;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "fire alarm profile" `Quick test_advisor_fire_alarm;
          Alcotest.test_case "unattended profile" `Quick test_advisor_unattended;
          Alcotest.test_case "legacy device" `Quick test_advisor_legacy_device;
          Alcotest.test_case "no deadline" `Quick test_advisor_no_deadline;
        ] );
      ( "render smoke",
        [ Alcotest.test_case "nonempty artifacts" `Slow test_render_smoke ] );
      ( "dos",
        [
          Alcotest.test_case "mode contrast" `Quick test_dos_modes;
          Alcotest.test_case "monotone in rate" `Quick test_dos_monotone_in_rate;
        ] );
      ("tablefmt", [ Alcotest.test_case "render" `Quick test_tablefmt ]);
      ( "benchkit json",
        [
          Alcotest.test_case "string escapes" `Quick test_json_string_escapes;
          QCheck_alcotest.to_alcotest json_roundtrip_prop;
        ] );
    ]
