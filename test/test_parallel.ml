(* The Ra_parallel determinism contract: fan-out must be invisible in the
   results — same bytes whatever the jobs count — and the pool must stay
   usable through nesting and task exceptions. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let test_init_matches_sequential () =
  let seq = Array.init 257 (fun i -> (i * 31) mod 97) in
  let par = Ra_parallel.parallel_init ~jobs:4 257 (fun i -> (i * 31) mod 97) in
  check (Alcotest.array Alcotest.int) "ordered results" seq par;
  check (Alcotest.array Alcotest.int) "empty" [||]
    (Ra_parallel.parallel_init ~jobs:4 0 (fun _ -> assert false))

let test_map_preserves_order () =
  let input = List.init 100 string_of_int in
  check
    (Alcotest.list Alcotest.string)
    "list map" input
    (Ra_parallel.parallel_list_map ~jobs:4 Fun.id input)

let test_seeded_init_jobs_invariant () =
  let draw prng _i = Ra_sim.Prng.int prng ~bound:1_000_000_000 in
  let one = Ra_parallel.seeded_init ~jobs:1 ~seed:99 64 draw in
  let four = Ra_parallel.seeded_init ~jobs:4 ~seed:99 64 draw in
  check (Alcotest.array Alcotest.int) "stream per index" one four

let test_nested_call_degrades () =
  let out =
    Ra_parallel.parallel_init ~jobs:4 8 (fun i ->
        check Alcotest.bool "inside task" true (Ra_parallel.running_inside_task ());
        let inner = Ra_parallel.parallel_init ~jobs:4 5 (fun j -> i * 10 + j) in
        Array.fold_left ( + ) 0 inner)
  in
  check Alcotest.bool "outside task" false (Ra_parallel.running_inside_task ());
  let expect = Array.init 8 (fun i -> (i * 50) + 10) in
  check (Alcotest.array Alcotest.int) "nested results" expect out

let test_exception_propagates () =
  (try
     ignore
       (Ra_parallel.parallel_init ~jobs:4 50 (fun i ->
            if i mod 7 = 3 then failwith (string_of_int i) else i));
     Alcotest.fail "no exception raised"
   with Failure m -> check Alcotest.string "lowest failing index" "3" m);
  (* pool still works after a failed batch *)
  let a = Ra_parallel.parallel_init ~jobs:4 20 (fun i -> i) in
  check Alcotest.int "pool alive" 19 a.(19)

(* The tentpole acceptance test: a full (reduced-trials) Table 1 computed on
   four domains must be byte-for-byte the table computed on one. *)
let test_table1_jobs_invariant () =
  let render jobs = Ra_experiments.Table1.render ~jobs ~trials:3 ~seed:5 () in
  check Alcotest.string "Table1 bytes" (render 1) (render 4)

let test_detection_rate_jobs_invariant () =
  let rate jobs =
    Ra_experiments.Runs.detection_rate ~jobs Ra_experiments.Runs.default_setup
      ~scheme:Ra_core.Scheme.smart
      ~adversary:
        (Ra_experiments.Runs.Malicious
           { behavior = Ra_malware.Malware.Static; block = 40 })
      ~trials:8
  in
  let r1, (lo1, hi1) = rate 1 in
  let r4, (lo4, hi4) = rate 4 in
  check (Alcotest.float 0.) "rate" r1 r4;
  check (Alcotest.float 0.) "interval lo" lo1 lo4;
  check (Alcotest.float 0.) "interval hi" hi1 hi4

let test_chaos_jobs_invariant () =
  let run jobs =
    Ra_experiments.Chaos.render (Ra_experiments.Chaos.run ~jobs ~trials:7 ())
  in
  check Alcotest.string "chaos summary bytes" (run 1) (run 4)

(* Satellite: ?chunk only changes how indices are grouped into pool
   tasks, never what lands where. *)
let prop_chunked_equals_unchunked =
  QCheck.Test.make ~name:"chunked init = unchunked init, any n/chunk/jobs"
    ~count:100
    QCheck.(triple (int_bound 200) (int_range 1 64) (int_range 1 4))
    (fun (n, chunk, jobs) ->
      let f i = (i * 2654435761) lxor (i lsl 7) in
      let plain = Ra_parallel.parallel_init ~jobs n f in
      let chunked = Ra_parallel.parallel_init ~jobs ~chunk n f in
      plain = Array.init n f && chunked = plain)

let test_chunk_validation () =
  (try
     ignore (Ra_parallel.parallel_init ~jobs:2 ~chunk:0 4 Fun.id);
     Alcotest.fail "chunk 0 accepted"
   with Invalid_argument _ -> ());
  (* chunk larger than n degenerates to one task *)
  let a = Ra_parallel.parallel_init ~jobs:4 ~chunk:1000 5 Fun.id in
  check (Alcotest.array Alcotest.int) "oversized chunk" [| 0; 1; 2; 3; 4 |] a

let test_default_jobs_override () =
  let before = Ra_parallel.default_jobs () in
  check Alcotest.bool "at least one" true (before >= 1);
  Ra_parallel.set_default_jobs 3;
  check Alcotest.int "override" 3 (Ra_parallel.default_jobs ());
  Ra_parallel.set_default_jobs 0;
  check Alcotest.int "clamped" 1 (Ra_parallel.default_jobs ())

let () =
  Alcotest.run "ra_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "init = sequential" `Quick test_init_matches_sequential;
          Alcotest.test_case "map order" `Quick test_map_preserves_order;
          Alcotest.test_case "nested degrades" `Quick test_nested_call_degrades;
          Alcotest.test_case "exceptions" `Quick test_exception_propagates;
          Alcotest.test_case "chunk validation" `Quick test_chunk_validation;
          qtest prop_chunked_equals_unchunked;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_override;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "seeded streams" `Quick test_seeded_init_jobs_invariant;
          Alcotest.test_case "detection rate" `Quick
            test_detection_rate_jobs_invariant;
          Alcotest.test_case "Table 1 byte-for-byte" `Slow
            test_table1_jobs_invariant;
          Alcotest.test_case "chaos summary byte-for-byte" `Quick
            test_chaos_jobs_invariant;
        ] );
    ]
