(* Tests for the attestation control plane: wire codec round trips, the
   deterministic server core (bounded queue, shedding, dedup, journaled
   ingest), crash recovery through Journal.restart, simulated-network
   campaigns under stream faults (determinism per seed, invariance across
   --jobs, restart root bit-identity), and the real-TCP shell (a stalled
   client must not block other sessions). *)

open Ra_server
module Prng = Ra_sim.Prng
module Frame = Ra_core.Frame
module Disk = Ra_journal.Disk

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let hex = Ra_crypto.Bytesutil.to_hex

(* --- wire codec ---------------------------------------------------------- *)

let arb_request =
  let open QCheck in
  oneof
    [
      map
        (fun (device, seq, report) ->
          Wire.Submit
            { device; seq = abs seq; report = Bytes.of_string report })
        (triple (string_of_size (Gen.int_bound 16)) small_int
           (string_of_size (Gen.int_bound 64)));
      always Wire.Fleet_health;
      map (fun d -> Wire.Quarantine d) (string_of_size (Gen.int_bound 16));
      always Wire.Fleet_root;
      always Wire.Counters;
    ]

let prop_request_roundtrip =
  QCheck.Test.make ~name:"wire request round trip" ~count:500 arb_request
    (fun req ->
      match Wire.decode_request (Wire.encode_request req) with
      | Ok req' -> req = req'
      | Error _ -> false)

let arb_response =
  let open QCheck in
  oneof
    [
      map
        (fun (device, seq) -> Wire.Ack { device; seq = abs seq })
        (pair (string_of_size (Gen.int_bound 16)) small_int);
      map
        (fun (q, c) -> Wire.Busy { queued = abs q; capacity = abs c })
        (pair small_int small_int);
      map (fun r -> Wire.Rejected r) (string_of_size (Gen.int_bound 32));
      map
        (fun entries -> Wire.Health entries)
        (small_list
           (pair (string_of_size (Gen.int_bound 12))
              (string_of_size (Gen.int_bound 12))));
      map (fun r -> Wire.Root (Bytes.of_string r)) (string_of_size (Gen.int_bound 32));
      map
        (fun (a, b, c, d, e) ->
          Wire.Stats
            {
              Wire.accepted = abs a;
              shed = abs b;
              deduped = abs c;
              rejected = abs d;
              recovered = abs e;
            })
        (tup5 small_int small_int small_int small_int small_int);
    ]

let prop_response_roundtrip =
  QCheck.Test.make ~name:"wire response round trip" ~count:500 arb_response
    (fun resp ->
      match Wire.decode_response (Wire.encode_response resp) with
      | Ok resp' -> resp = resp'
      | Error _ -> false)

let test_wire_rejects_garbage () =
  (match Wire.decode_request (Bytes.of_string "\x2a") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tag decoded");
  match Wire.decode_request Bytes.empty with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty request decoded"

(* --- netsim campaigns ---------------------------------------------------- *)

let smoke_config =
  {
    Netsim.default with
    Netsim.devices = 12;
    reports_per_device = 3;
    capacity = 5;
    seed = 11;
  }

let run_ok ?jobs config =
  match Netsim.run ?jobs config with
  | Ok o -> o
  | Error e -> Alcotest.failf "netsim campaign failed: %s" e

let test_netsim_ideal () =
  let o =
    run_ok { smoke_config with Netsim.faults = Ra_faults.Stream_faults.ideal }
  in
  check Alcotest.int "all items acked" 36 o.Netsim.acked;
  check Alcotest.int "all unique reports accepted" 36 o.Netsim.counters.Wire.accepted;
  check Alcotest.int "tampered verdicts match the infected set"
    (Loadgen.expected_tampered ~devices:12)
    o.Netsim.tampered;
  check Alcotest.int "no connection died" 0 o.Netsim.dead_conns

let test_netsim_sheds_and_converges () =
  let o = run_ok smoke_config in
  check Alcotest.int "all items acked despite faults" 36 o.Netsim.acked;
  check Alcotest.int "accepted is exactly the unique plan" 36
    o.Netsim.counters.Wire.accepted;
  if o.Netsim.counters.Wire.shed = 0 then
    Alcotest.fail "burst never overran the bounded queue (shed = 0)";
  if o.Netsim.busy = 0 then Alcotest.fail "no client ever absorbed a Busy";
  if o.Netsim.retries = 0 then Alcotest.fail "no client ever retried"

let outcome_signature (o : Netsim.outcome) =
  Printf.sprintf "acc=%d shed=%d dedup=%d rej=%d rec=%d acked=%d retries=%d busy=%d dead=%d root=%s"
    o.Netsim.counters.Wire.accepted o.Netsim.counters.Wire.shed
    o.Netsim.counters.Wire.deduped o.Netsim.counters.Wire.rejected
    o.Netsim.counters.Wire.recovered o.Netsim.acked o.Netsim.retries
    o.Netsim.busy o.Netsim.dead_conns (hex o.Netsim.root)

let prop_netsim_deterministic =
  QCheck.Test.make ~name:"campaign outcome is a pure function of the seed"
    ~count:6
    QCheck.(int_bound 1000)
    (fun seed ->
      let config = { smoke_config with Netsim.seed } in
      outcome_signature (run_ok config) = outcome_signature (run_ok config))

let prop_netsim_jobs_invariant =
  QCheck.Test.make ~name:"campaign outcome is invariant across --jobs"
    ~count:4
    QCheck.(int_bound 1000)
    (fun seed ->
      let config = { smoke_config with Netsim.seed } in
      outcome_signature (run_ok ~jobs:1 config)
      = outcome_signature (run_ok ~jobs:4 config))

let test_netsim_restart_root_bit_identical () =
  let unkilled = run_ok smoke_config in
  let killed = run_ok { smoke_config with Netsim.crash_at = Some 40 } in
  check Alcotest.int "one restart" 1 killed.Netsim.restarts;
  check Alcotest.string "fleet root bit-identical to the unkilled run"
    (hex unkilled.Netsim.root) (hex killed.Netsim.root);
  check Alcotest.int "accepted identical" unkilled.Netsim.counters.Wire.accepted
    killed.Netsim.counters.Wire.accepted;
  check Alcotest.int "tampered identical" unkilled.Netsim.tampered
    killed.Netsim.tampered;
  if killed.Netsim.counters.Wire.recovered = 0 then
    Alcotest.fail "the crash recovered nothing — it landed before any ingest"

(* --- real TCP shell ------------------------------------------------------- *)

let tcp_port = 7493

(* Fork a real server on [tcp_port] with a throwaway journal, run [f] in
   the parent once the listener answers, and always reap the child. *)
let with_server ~devices ~seed ~capacity f =
  let dir = Filename.temp_file "ra-server-test" "" in
  Sys.remove dir;
  let pid = Unix.fork () in
  if pid = 0 then begin
    (try
       let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
       Unix.dup2 null Unix.stdout;
       Unix.dup2 null Unix.stderr;
       Tcp.serve ~port:tcp_port ~dir ~config:{ Core.devices; seed; capacity } ()
     with _ -> ());
    exit 1
  end
  else
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid))
      (fun () ->
        let rec await n =
          if n = 0 then Alcotest.fail "server never came up";
          match Tcp.request ~port:tcp_port ~timeout_s:1.0 Wire.Counters with
          | Ok (Wire.Stats _) -> ()
          | _ ->
              ignore (Unix.select [] [] [] 0.1);
              await (n - 1)
        in
        await 50;
        f ())

let test_stalled_client_does_not_block () =
  with_server ~devices:8 ~seed:7 ~capacity:16 (fun () ->
      (* park a connection mid-frame: the magic plus half the length field,
         then silence — the classic slowloris posture *)
      let stalled = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect stalled
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", tcp_port));
      Fun.protect
        ~finally:(fun () -> try Unix.close stalled with Unix.Unix_error _ -> ())
        (fun () ->
          let stream = Frame.seal_stream (Wire.encode_request Wire.Fleet_root) in
          check Alcotest.int "half frame written" 4 (Unix.write stalled stream 0 4);
          (* while it hangs, a full campaign completes on other sockets *)
          match
            Tcp.run_campaign ~port:tcp_port ~give_up_after_s:60. ~devices:8
              ~seed:7 ~reports_per_device:2 ()
          with
          | Error e -> Alcotest.fail e
          | Ok c ->
              check Alcotest.int "every report acked past the stalled peer" 16
                c.Tcp.acked;
              check Alcotest.int "server accepted the full plan" 16
                c.Tcp.stats.Wire.accepted;
              check Alcotest.int "tampered verdicts match the plan"
                (Loadgen.expected_tampered ~devices:8)
                c.Tcp.tampered))

let test_tcp_quarantine_endpoint () =
  with_server ~devices:4 ~seed:9 ~capacity:8 (fun () ->
      (match Tcp.request ~port:tcp_port (Wire.Quarantine "node-00002") with
      | Ok (Wire.Ack { device = "node-00002"; seq = 0 }) -> ()
      | _ -> Alcotest.fail "quarantine not acknowledged");
      (match Tcp.request ~port:tcp_port (Wire.Quarantine "intruder") with
      | Ok (Wire.Rejected _) -> ()
      | _ -> Alcotest.fail "unknown device quarantine not rejected");
      match Tcp.request ~port:tcp_port Wire.Fleet_health with
      | Ok (Wire.Health entries) ->
          check Alcotest.int "health lists the whole fleet" 4
            (List.length entries);
          check Alcotest.string "quarantine visible in health" "quarantined"
            (List.assoc "node-00002" entries)
      | _ -> Alcotest.fail "health query failed")

let () =
  Alcotest.run "server"
    [
      ( "wire",
        [
          qtest prop_request_roundtrip;
          qtest prop_response_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_wire_rejects_garbage;
        ] );
      (* the tcp group forks a real server per test, and OCaml 5 forbids
         Unix.fork once domains exist — so it must run before the netsim
         group, whose Core.drain spins up the Ra_parallel pool *)
      ( "tcp",
        [
          Alcotest.test_case "stalled client cannot block other sessions"
            `Quick test_stalled_client_does_not_block;
          Alcotest.test_case "quarantine endpoint" `Quick
            test_tcp_quarantine_endpoint;
        ] );
      ( "netsim",
        [
          Alcotest.test_case "ideal network campaign" `Quick test_netsim_ideal;
          Alcotest.test_case "shedding under burst" `Quick
            test_netsim_sheds_and_converges;
          qtest prop_netsim_deterministic;
          qtest prop_netsim_jobs_invariant;
          Alcotest.test_case "restart root bit-identity" `Quick
            test_netsim_restart_root_bit_identical;
        ] );
    ]
