(** Deterministic fan-out over a fixed pool of OCaml 5 domains.

    The experiment drivers in this repository are embarrassingly parallel:
    Monte-Carlo trials, table rows and sweep points each derive everything
    they need from their own index. This module runs such index-addressed
    workloads across a domain pool while keeping the output {e bit-identical
    to the sequential run}, by construction:

    - results land in an array slot chosen by task index, never by
      completion order;
    - any randomness is derived {e before} the fan-out: {!seeded_init}
      splits one root {!Ra_sim.Prng} sequentially, so stream [i] does not
      depend on how indices are interleaved across domains;
    - nested calls from inside a task degrade to sequential execution, so a
      parallel driver can freely call another parallel driver.

    The pool is created lazily and grows to the largest [jobs] ever
    requested. Concurrency defaults to the [RA_JOBS] environment variable
    when set, else to [Domain.recommended_domain_count ()]; [RA_JOBS=1] (or
    [~jobs:1], or the [--jobs 1] flag on [ratool]) is the escape hatch that
    forces everything sequential. *)

val default_jobs : unit -> int
(** Current default concurrency: the last {!set_default_jobs} value, else
    [RA_JOBS], else [Domain.recommended_domain_count ()]. At least 1. *)

val set_default_jobs : int -> unit
(** Override the default for subsequent calls (the [--jobs] flag). Values
    below 1 are clamped to 1. *)

val parallel_init : ?jobs:int -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [parallel_init n f] is [Array.init n f] computed on the pool.
    [f] must be safe to call from any domain; each index is evaluated
    exactly once. Exceptions re-raise in the caller (lowest index wins).

    [chunk] (default 1) makes each pool task claim a contiguous run of
    [chunk] indices, evaluated in ascending order on one domain — a
    million-element fleet amortizes per-task claim overhead into n/chunk
    closures. Results are bit-identical for any [chunk] and any [jobs].
    Raises [Invalid_argument] when [chunk < 1]. *)

val parallel_map : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

val parallel_list_map : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!List.map}, preserving order. *)

val seeded_init :
  ?jobs:int -> seed:int -> int -> (Ra_sim.Prng.t -> int -> 'a) -> 'a array
(** [seeded_init ~seed n f] gives task [i] its own generator, split from a
    root seeded with [seed] before the fan-out. The generator handed to
    task [i] is a pure function of [(seed, i)], independent of [jobs]. *)

val running_inside_task : unit -> bool
(** True while the calling domain is executing a pool task (used by the
    drivers to decide that an inner fan-out should stay sequential). *)
