(* Fixed domain pool with deterministic, index-ordered results.

   Scheduling is a single atomic work counter: every participating domain
   (the submitting caller plus the pool workers) claims the next unclaimed
   index and writes its result into that index's slot. Which domain runs
   which index varies run to run; what each index computes, and where it
   lands, does not — that is the whole determinism contract. *)

type batch = {
  n : int;
  body : int -> unit; (* runs index i, stores its own result *)
  next : int Atomic.t; (* next index to claim *)
  unfinished : int Atomic.t; (* indices not yet completed *)
  slots : int Atomic.t; (* how many more workers may join *)
}

type pool = {
  mutex : Mutex.t;
  work : Condition.t; (* signalled when a batch is posted / shutdown *)
  finished : Condition.t; (* signalled when a batch fully completes *)
  mutable current : batch option;
  mutable generation : int; (* bumps per batch so workers skip stale ones *)
  mutable workers : int; (* domains spawned so far *)
  mutable shutdown : bool;
  mutable handles : unit Domain.t list;
}

let max_workers = 62 (* stdlib cap on live domains is 64ish; stay clear *)

let pool =
  {
    mutex = Mutex.create ();
    work = Condition.create ();
    finished = Condition.create ();
    current = None;
    generation = 0;
    workers = 0;
    shutdown = false;
    handles = [];
  }

let overridden_jobs = Atomic.make 0 (* 0 = no override *)

let env_jobs () =
  match Sys.getenv_opt "RA_JOBS" with
  | None -> None
  | Some s -> (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None)

let default_jobs () =
  match Atomic.get overridden_jobs with
  | n when n >= 1 -> n
  | _ ->
    (match env_jobs () with
    | Some n -> min n (max_workers + 1)
    | None -> max 1 (Domain.recommended_domain_count ()))

let set_default_jobs n = Atomic.set overridden_jobs (max 1 n)

(* Set while the current domain is executing a task body, so nested
   parallel_* calls degrade to sequential instead of deadlocking a worker
   on its own pool. *)
let inside_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let running_inside_task () = Domain.DLS.get inside_task

let run_task body i =
  Domain.DLS.set inside_task true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set inside_task false) (fun () ->
      body i)

(* Claim and run indices until the batch is drained. Returns with the
   caller having contributed zero or more completed tasks. *)
let drain b =
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add b.next 1 in
    if i >= b.n then continue := false
    else begin
      run_task b.body i;
      if Atomic.fetch_and_add b.unfinished (-1) = 1 then begin
        (* last task: wake the submitter *)
        Mutex.lock pool.mutex;
        Condition.broadcast pool.finished;
        Mutex.unlock pool.mutex
      end
    end
  done

let worker () =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while
      (not pool.shutdown)
      && (pool.current = None || pool.generation = !seen)
    do
      Condition.wait pool.work pool.mutex
    done;
    if pool.shutdown then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      seen := pool.generation;
      let b = Option.get pool.current in
      Mutex.unlock pool.mutex;
      (* respect the batch's jobs cap *)
      if Atomic.fetch_and_add b.slots (-1) > 0 then drain b
    end
  done

let shutdown_pool () =
  Mutex.lock pool.mutex;
  pool.shutdown <- true;
  Condition.broadcast pool.work;
  let handles = pool.handles in
  pool.handles <- [];
  Mutex.unlock pool.mutex;
  List.iter Domain.join handles

let () = at_exit shutdown_pool

(* Under the pool mutex: make sure at least [wanted] workers exist. *)
let ensure_workers wanted =
  let wanted = min wanted max_workers in
  while pool.workers < wanted && not pool.shutdown do
    pool.workers <- pool.workers + 1;
    pool.handles <- Domain.spawn worker :: pool.handles
  done

exception Task_error of int * exn * Printexc.raw_backtrace

let run_batch ~jobs n body =
  let first_error = Atomic.make None in
  let guarded i =
    try body i
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      (* keep the lowest-index error so failure reporting is deterministic *)
      let rec record () =
        match Atomic.get first_error with
        | Some (j, _, _) when j <= i -> ()
        | prev ->
          if not (Atomic.compare_and_set first_error prev (Some (i, e, bt)))
          then record ()
      in
      record ()
  in
  let b =
    {
      n;
      body = guarded;
      next = Atomic.make 0;
      unfinished = Atomic.make n;
      slots = Atomic.make (jobs - 1);
    }
  in
  Mutex.lock pool.mutex;
  ensure_workers (jobs - 1);
  pool.current <- Some b;
  pool.generation <- pool.generation + 1;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  drain b;
  Mutex.lock pool.mutex;
  while Atomic.get b.unfinished > 0 do
    Condition.wait pool.finished pool.mutex
  done;
  pool.current <- None;
  Mutex.unlock pool.mutex;
  match Atomic.get first_error with
  | Some (i, e, bt) -> raise (Task_error (i, e, bt))
  | None -> ()

(* [chunk]: pool tasks claim contiguous runs of [chunk] indices instead of
   single ones, so a million-element fleet posts n/chunk closures rather
   than n. Within a chunk, indices run in ascending order on one domain;
   each index is still evaluated exactly once into its own slot, so the
   output is bit-identical to the unchunked (and sequential) run — only
   the per-task claim overhead changes. *)
let parallel_init ?jobs ?(chunk = 1) n f =
  if n < 0 then invalid_arg "Ra_parallel.parallel_init: negative length";
  if chunk < 1 then invalid_arg "Ra_parallel.parallel_init: chunk < 1";
  let jobs = max 1 (Option.value jobs ~default:(default_jobs ())) in
  if jobs = 1 || n <= 1 || running_inside_task () then Array.init n f
  else begin
    let out = Array.make n None in
    let body =
      if chunk = 1 then fun i -> out.(i) <- Some (f i)
      else fun c ->
        let lo = c * chunk in
        let hi = min n (lo + chunk) - 1 in
        for i = lo to hi do
          out.(i) <- Some (f i)
        done
    in
    let tasks = if chunk = 1 then n else (n + chunk - 1) / chunk in
    (try run_batch ~jobs tasks body
     with Task_error (_, e, bt) -> Printexc.raise_with_backtrace e bt);
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every index < n was claimed exactly once *))
      out
  end

let parallel_map ?jobs ?chunk f a =
  parallel_init ?jobs ?chunk (Array.length a) (fun i -> f a.(i))

let parallel_list_map ?jobs ?chunk f l =
  Array.to_list (parallel_map ?jobs ?chunk f (Array.of_list l))

let seeded_init ?jobs ~seed n f =
  if n < 0 then invalid_arg "Ra_parallel.seeded_init: negative length";
  let root = Ra_sim.Prng.create ~seed in
  (* split in ascending index order, before any fan-out: stream i is a pure
     function of (seed, i), whatever the interleaving. An explicit loop
     because Array.init's evaluation order is unspecified. *)
  let prngs =
    if n = 0 then [||]
    else begin
      let a = Array.make n (Ra_sim.Prng.split root) in
      for i = 1 to n - 1 do
        a.(i) <- Ra_sim.Prng.split root
      done;
      a
    end
  in
  parallel_init ?jobs n (fun i -> f prngs.(i) i)
