open Ra_sim

type journal_entry = { when_ : Timebase.t; block : int; after : Bytes.t }

(* A block is writable, hard-locked (writes fail), or copy-on-write locked:
   writes succeed into a shadow while readers keep seeing the frozen
   content; the shadow merges into the block when the lock is released. *)
type lock_state = Unlocked | Locked_hard | Locked_cow of Bytes.t option ref

(* Per-block storage: [data.(b)] is the live content of block [b], and
   [versions.(b)] counts the times that content has changed since creation.
   Readers observing an unchanged version are guaranteed unchanged bytes,
   which is what the measurement digest cache keys on. Cow-diverted writes
   do not bump the version until the shadow merges — readers (and the
   cache) keep seeing the frozen content until then. *)
type t = {
  data : Bytes.t array;
  block_size : int;
  blocks : int;
  locks : lock_state array;
  versions : int array;
  initial : Bytes.t;
  mutable journal : journal_entry list; (* newest first *)
  mutable unlock_subscribers : (int -> unit) list;
}

type write_error = Locked of int

let create ~image ~block_size =
  let size = Bytes.length image in
  if block_size <= 0 || size = 0 || size mod block_size <> 0 then
    invalid_arg "Memory.create: image must be a positive multiple of block_size";
  let blocks = size / block_size in
  {
    data = Array.init blocks (fun b -> Bytes.sub image (b * block_size) block_size);
    block_size;
    blocks;
    locks = Array.make blocks Unlocked;
    versions = Array.make blocks 0;
    initial = Bytes.copy image;
    journal = [];
    unlock_subscribers = [];
  }

let block_count t = t.blocks
let block_size t = t.block_size
let size t = t.blocks * t.block_size

let check_block t block =
  if block < 0 || block >= t.blocks then invalid_arg "Memory: block out of range"

let read_block t block =
  check_block t block;
  Bytes.copy t.data.(block)

let with_block t block f =
  check_block t block;
  f t.data.(block)

let with_blocks t blocks f =
  Array.iter (check_block t) blocks;
  f (Array.map (fun block -> t.data.(block)) blocks)

let version t block =
  check_block t block;
  t.versions.(block)

let record t ~time ~block =
  let after = Bytes.copy t.data.(block) in
  t.journal <- { when_ = time; block; after } :: t.journal;
  t.versions.(block) <- t.versions.(block) + 1

let write t ~time ~block ~offset payload =
  check_block t block;
  let len = Bytes.length payload in
  if offset < 0 || offset + len > t.block_size then
    invalid_arg "Memory.write: slice exceeds block";
  match t.locks.(block) with
  | Locked_hard -> Error (Locked block)
  | Unlocked ->
    Bytes.blit payload 0 t.data.(block) offset len;
    record t ~time ~block;
    Ok ()
  | Locked_cow shadow ->
    (* Divert the write: readers keep the frozen content, the journal only
       changes when the shadow merges at release time. *)
    let base =
      match !shadow with
      | Some existing -> existing
      | None ->
        let copy = Bytes.copy t.data.(block) in
        shadow := Some copy;
        copy
    in
    Bytes.blit payload 0 base offset len;
    Ok ()

let set_block t ~time ~block payload =
  if Bytes.length payload <> t.block_size then
    invalid_arg "Memory.set_block: wrong payload size";
  write t ~time ~block ~offset:0 payload

let lock t block =
  check_block t block;
  t.locks.(block) <- Locked_hard

let lock_cow t block =
  check_block t block;
  match t.locks.(block) with
  | Locked_cow _ -> ()
  | Unlocked | Locked_hard -> t.locks.(block) <- Locked_cow (ref None)

let has_shadow t block =
  check_block t block;
  match t.locks.(block) with
  | Locked_cow { contents = Some _ } -> true
  | Locked_cow { contents = None } | Unlocked | Locked_hard -> false

let unlock ?time t block =
  check_block t block;
  match t.locks.(block) with
  | Unlocked -> ()
  | Locked_hard ->
    t.locks.(block) <- Unlocked;
    List.iter (fun f -> f block) t.unlock_subscribers
  | Locked_cow shadow ->
    (match !shadow with
    | None -> ()
    | Some pending ->
      (* Merging a shadow is a real content change: it must land in the
         journal at the actual release time, or the temporal-consistency
         reconstruction sees the merged bytes as present since time 0. *)
      let time =
        match time with
        | Some time -> time
        | None ->
          invalid_arg
            "Memory.unlock: releasing a cow lock with a pending shadow \
             requires ~time"
      in
      Bytes.blit pending 0 t.data.(block) 0 t.block_size;
      record t ~time ~block);
    t.locks.(block) <- Unlocked;
    List.iter (fun f -> f block) t.unlock_subscribers

let is_locked t block =
  check_block t block;
  match t.locks.(block) with
  | Unlocked -> false
  | Locked_hard | Locked_cow _ -> true

let locked_count t =
  Array.fold_left
    (fun acc l -> match l with Unlocked -> acc | Locked_hard | Locked_cow _ -> acc + 1)
    0 t.locks

let lock_all t =
  for block = 0 to t.blocks - 1 do
    t.locks.(block) <- Locked_hard
  done

let lock_all_cow t =
  for block = 0 to t.blocks - 1 do
    lock_cow t block
  done

let unlock_all ?time t =
  for block = 0 to t.blocks - 1 do
    unlock ?time t block
  done

let subscribe_unlock t f = t.unlock_subscribers <- f :: t.unlock_subscribers

let snapshot t =
  let image = Bytes.create (t.blocks * t.block_size) in
  Array.iteri
    (fun b content -> Bytes.blit content 0 image (b * t.block_size) t.block_size)
    t.data;
  image

let initial_image t = Bytes.copy t.initial

(* The journal is newest-first; for each block only the last write at or
   before [time] matters. *)
let content_at t ~time =
  let image = Bytes.copy t.initial in
  let applied = Array.make t.blocks false in
  let rec apply = function
    | [] -> ()
    | entry :: older ->
      if entry.when_ <= time && not applied.(entry.block) then begin
        Bytes.blit entry.after 0 image (entry.block * t.block_size) t.block_size;
        applied.(entry.block) <- true
      end;
      apply older
  in
  apply t.journal;
  image

let block_content_at t ~time ~block =
  check_block t block;
  let rec find = function
    | [] -> Bytes.sub t.initial (block * t.block_size) t.block_size
    | entry :: older ->
      if entry.block = block && entry.when_ <= time then Bytes.copy entry.after
      else find older
  in
  find t.journal

let writes_between t t1 t2 =
  List.rev
    (List.filter_map
       (fun e -> if e.when_ > t1 && e.when_ <= t2 then Some (e.when_, e.block) else None)
       t.journal)
