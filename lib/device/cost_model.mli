(** Calibrated timing model of a prover platform.

    The paper's quantitative results (Fig. 2, the Section 2.5 latency
    argument) come from an ODROID-XU4 board. We reproduce their *shape* with
    a per-platform cost model: a per-byte hashing rate per primitive and a
    fixed per-operation signing cost, calibrated against the numbers the
    paper itself reports (0.9 s to hash 100 MB with SHA-256, ~14 s for the
    full 2 GB with the fastest primitive). *)

open Ra_sim

type signature_alg =
  | RSA_1024
  | RSA_2048
  | RSA_4096
  | ECDSA_160
  | ECDSA_224
  | ECDSA_256

val all_signatures : signature_alg list
(** In the paper's Fig. 2 legend order. *)

val signature_name : signature_alg -> string

val signature_of_name : string -> signature_alg option

type t = {
  platform : string;
  hash_ns_per_byte : Ra_crypto.Algo.hash -> float;
  hash_setup_ns : float;  (** fixed cost per measurement (init + finalize) *)
  sign_ns : signature_alg -> float;
  verify_ns : signature_alg -> float;
  context_switch_ns : float;
  lock_op_ns : float;  (** MPU/MMU reconfiguration per block *)
  copy_ns_per_byte : float;  (** memcpy rate, used by relocating malware *)
}

val odroid_xu4 : t
(** The paper's evaluation platform. *)

val low_end_mcu : t
(** A much slower Cortex-M-class profile with software crypto, for
    ablations: the availability conflict is starker here. *)

val hash_time : t -> Ra_crypto.Algo.hash -> bytes:int -> Timebase.t
(** Time to measure [bytes] bytes: setup plus the per-byte rate. *)

val hash_time_raw : t -> Ra_crypto.Algo.hash -> bytes:int -> Timebase.t
(** Per-byte cost only, no setup term; used when a measurement is split
    into per-block work items that must sum to {!hash_time}. *)

val sign_time : t -> signature_alg -> Timebase.t

val verify_time : t -> signature_alg -> Timebase.t

val measurement_time :
  t -> Ra_crypto.Algo.hash -> ?signature:signature_alg -> bytes:int -> unit -> Timebase.t
(** Full MP cost: hash of [bytes], plus the signature when present (MAC-only
    otherwise, matching the paper's Section 2.4 composition). *)

val crossover_bytes : t -> Ra_crypto.Algo.hash -> signature_alg -> int
(** Input size at which hashing cost equals signing cost: the Section 2.4
    "point at which the cost of hashing exceeds that of signing". *)

type cache_accounting = {
  blocks_hashed : int;  (** blocks whose digest was actually computed *)
  blocks_hit : int;  (** blocks served from the digest cache *)
  modeled_ns_total : float;
      (** virtual-time cost charged to the prover: covers hits AND misses,
          because the simulated device has no digest cache — the cache is
          a host-side optimisation and must not perturb modeled timings *)
  modeled_ns_hit : float;
      (** the share of [modeled_ns_total] whose host-side hashing the
          cache skipped *)
}

val cache_accounting :
  t -> Ra_crypto.Algo.hash -> block_bytes:int -> hits:int -> misses:int ->
  cache_accounting
(** Pure function of the platform's per-byte rate and the hit/miss counts;
    cost models carry no mutable state, so accounting lives with the
    caller's counters ({!Ra_cache.stats}). *)
