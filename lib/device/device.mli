(** A complete simulated prover: engine, CPU, lockable memory, cost model,
    attestation key, and the split between code and data regions. *)

open Ra_sim

type config = {
  seed : int;
  blocks : int;
  block_size : int;  (** real bytes per block, hashed by the actual MP *)
  modeled_block_bytes : int;
      (** bytes per block charged to the cost model — lets a 256 KiB real
          image stand in for the paper's gigabyte-scale attested memory *)
  data_blocks : int list;  (** indices treated as volatile data (Section 2.3) *)
  cost : Cost_model.t;
  key : Bytes.t;  (** attestation key shared with the verifier *)
  digest_cache : bool;
      (** memoise per-block digests keyed on {!Memory.version} (default
          true); host-time optimisation only — modeled cost is unchanged *)
  store : Ra_cache.Store.t option;
      (** optional fleet-wide content-addressed store shared between
          devices (and their verifiers) so identical blocks hash once *)
}

val default_config : config
(** 64 blocks of 1 KiB real bytes, each modeling 16 MiB (1 GiB total,
    the Section 2.5 scenario), ODROID-XU4 costs, no data blocks. *)

type t = private {
  engine : Engine.t;
  cpu : Cpu.t;
  memory : Memory.t;
  config : config;
  cache : Ra_cache.t option;  (** present iff [config.digest_cache] *)
  mutable epoch : int;  (** boot generation; bumped by every {!crash} *)
  mutable up : bool;
  mutable crash_count : int;
  mutable last_boot_at : Timebase.t;
  mutable crash_hooks : (unit -> unit) list;
  mutable reboot_hooks : (unit -> unit) list;
}

val create : config -> t
(** The firmware image is generated deterministically from [seed]; the
    verifier reconstructs the same image from the same seed. *)

val firmware_image : seed:int -> size:int -> Bytes.t
(** The deterministic benign image generator shared with the verifier. *)

val attested_bytes : t -> int
(** Total modeled size: [blocks * modeled_block_bytes]. *)

val is_data_block : t -> int -> bool

val run : ?until:Timebase.t -> t -> unit
(** Convenience passthrough to {!Ra_sim.Engine.run}. *)

(** {2 Crash / reboot model}

    A crash is a power-loss event: every CPU job dies without completing
    (in-flight measurements included), MPU locks open, and registered crash
    hooks run so components can drop whatever volatile state they model
    (cached reports, session tables, self-measurement logs). The firmware
    image itself is flash-backed and survives. After [reboot_delay] the
    device is up again and reboot hooks run.

    Engine events scheduled before the crash still fire — they model
    hardware timers and the outside world. Components that must not act
    across a reboot guard their callbacks with {!epoch}. *)

val crash : ?reboot_delay:Timebase.t -> t -> unit
(** Crash now (no-op if already down). Default reboot delay: 250 ms. *)

val is_up : t -> bool
(** False between a crash and the corresponding boot completion. *)

val epoch : t -> int
(** Boot generation, starting at 0; incremented at each crash. Capture it
    when scheduling and compare on fire to detect an intervening reboot. *)

val crash_count : t -> int

val last_boot_at : t -> Timebase.t
(** Completion time of the most recent reboot (0 if never crashed). *)

val on_crash : t -> (unit -> unit) -> unit
(** Register a volatile-state-loss hook; hooks run synchronously inside
    {!crash}, in registration order, after the CPU flush. *)

val on_reboot : t -> (unit -> unit) -> unit
(** Register a boot-completion hook (e.g. resume a measurement schedule). *)
