(** Single-core preemptive priority CPU arbiter on top of the event engine.

    Work is submitted as jobs with a fixed CPU demand. A higher-priority job
    preempts the running one unless the latter was submitted [~atomic:true]
    — which is exactly how SMART-style uninterruptible attestation differs
    from the interruptible schemes. Preempted jobs resume with their
    remaining demand; equal priorities run in submission order. *)

open Ra_sim

type t

type job

val create : Engine.t -> t

val submit :
  t ->
  ?atomic:bool ->
  name:string ->
  priority:int ->
  duration:Timebase.t ->
  on_complete:(unit -> unit) ->
  unit ->
  job
(** Higher [priority] wins. [duration] must be non-negative; a zero-duration
    job still queues and completes when it would get the CPU. [on_complete]
    runs at the virtual instant the job's demand is exhausted. *)

val cancel : t -> job -> unit
(** No effect if the job already completed. *)

val flush : t -> unit
(** Cancel every queued and running job, atomic ones included, without
    running any [on_complete] — the power-loss semantics a device crash
    needs. CPU time consumed so far stays accounted. *)

val running : t -> (string * int) option
(** Name and priority of the job holding the CPU, if any. *)

val is_complete : job -> bool

val busy_ns : t -> name:string -> Timebase.t
(** Cumulative CPU time consumed by jobs with the given name — the run-time
    overhead accounting used by the Table 1 harness. *)

val total_busy_ns : t -> Timebase.t
