open Ra_sim

type state =
  | Waiting
  | Running of { started : Timebase.t; completion : Engine.event_id }
  | Complete
  | Cancelled

type job = {
  name : string;
  priority : int;
  atomic : bool;
  seq : int;
  mutable remaining : Timebase.t;
  mutable state : state;
  on_complete : unit -> unit;
}

type t = {
  engine : Engine.t;
  ready : job Eventq.t; (* keyed by negated priority, then seq: max-priority FIFO *)
  mutable current : job option;
  mutable next_seq : int;
  busy : (string, int) Hashtbl.t;
  mutable total_busy : int;
}

let create engine =
  {
    engine;
    ready = Eventq.create ();
    current = None;
    next_seq = 0;
    busy = Hashtbl.create 16;
    total_busy = 0;
  }

let account t job consumed =
  if consumed > 0 then begin
    let prev = Option.value ~default:0 (Hashtbl.find_opt t.busy job.name) in
    Hashtbl.replace t.busy job.name (prev + consumed);
    t.total_busy <- t.total_busy + consumed
  end

let push_ready t job = Eventq.push t.ready ~key:(-job.priority) ~seq:job.seq job

(* Pop the highest-priority non-cancelled waiting job. *)
let rec pop_ready t =
  if Eventq.is_empty t.ready then None
  else begin
    let job = Eventq.min_value t.ready in
    Eventq.drop_min t.ready;
    match job.state with
    | Waiting -> Some job
    | Cancelled | Complete | Running _ -> pop_ready t
  end

let rec peek_ready t =
  if Eventq.is_empty t.ready then None
  else
    let job = Eventq.min_value t.ready in
    match job.state with
    | Waiting -> Some job
    | Cancelled | Complete | Running _ ->
      Eventq.drop_min t.ready;
      peek_ready t

let rec start t job =
  let completion =
    Engine.schedule_after t.engine ~delay:job.remaining (fun _ ->
        job.state <- Complete;
        account t job job.remaining;
        job.remaining <- 0;
        t.current <- None;
        job.on_complete ();
        dispatch t)
  in
  job.state <- Running { started = Engine.now t.engine; completion };
  t.current <- Some job

and preempt t job =
  match job.state with
  | Running { started; completion } ->
    Engine.cancel t.engine completion;
    let consumed = Timebase.sub (Engine.now t.engine) started in
    account t job consumed;
    job.remaining <- Timebase.sub job.remaining consumed;
    job.state <- Waiting;
    push_ready t job;
    t.current <- None
  | Waiting | Complete | Cancelled -> ()

and dispatch t =
  match t.current with
  | Some running_job ->
    if not running_job.atomic then begin
      match peek_ready t with
      | Some candidate when candidate.priority > running_job.priority ->
        preempt t running_job;
        dispatch t
      | Some _ | None -> ()
    end
  | None ->
    (match pop_ready t with
    | Some job -> start t job
    | None -> ())

let submit t ?(atomic = false) ~name ~priority ~duration ~on_complete () =
  if duration < 0 then invalid_arg "Cpu.submit: negative duration";
  let job =
    {
      name;
      priority;
      atomic;
      seq = t.next_seq;
      remaining = duration;
      state = Waiting;
      on_complete;
    }
  in
  t.next_seq <- t.next_seq + 1;
  push_ready t job;
  dispatch t;
  job

let cancel t job =
  match job.state with
  | Complete | Cancelled -> ()
  | Waiting -> job.state <- Cancelled
  | Running { started; completion } ->
    Engine.cancel t.engine completion;
    account t job (Timebase.sub (Engine.now t.engine) started);
    job.state <- Cancelled;
    t.current <- None;
    dispatch t

let flush t =
  (match t.current with
  | Some job ->
    (match job.state with
    | Running { started; completion } ->
      Engine.cancel t.engine completion;
      account t job (Timebase.sub (Engine.now t.engine) started);
      job.state <- Cancelled
    | Waiting | Complete | Cancelled -> ());
    t.current <- None
  | None -> ());
  let rec drain () =
    if not (Eventq.is_empty t.ready) then begin
      let job = Eventq.min_value t.ready in
      Eventq.drop_min t.ready;
      (match job.state with
      | Waiting -> job.state <- Cancelled
      | Running _ | Complete | Cancelled -> ());
      drain ()
    end
  in
  drain ()

let running t =
  match t.current with
  | None -> None
  | Some job -> Some (job.name, job.priority)

let is_complete job = match job.state with Complete -> true | Waiting | Running _ | Cancelled -> false

let busy_ns t ~name = Option.value ~default:0 (Hashtbl.find_opt t.busy name)

let total_busy_ns t = t.total_busy
