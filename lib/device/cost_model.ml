open Ra_sim

type signature_alg =
  | RSA_1024
  | RSA_2048
  | RSA_4096
  | ECDSA_160
  | ECDSA_224
  | ECDSA_256

let all_signatures =
  [ RSA_1024; RSA_2048; RSA_4096; ECDSA_160; ECDSA_224; ECDSA_256 ]

let signature_name = function
  | RSA_1024 -> "RSA-1024"
  | RSA_2048 -> "RSA-2048"
  | RSA_4096 -> "RSA-4096"
  | ECDSA_160 -> "ECDSA-160"
  | ECDSA_224 -> "ECDSA-224"
  | ECDSA_256 -> "ECDSA-256"

let signature_of_name s =
  let norm =
    String.lowercase_ascii
      (String.concat "" (String.split_on_char '-' (String.trim s)))
  in
  match norm with
  | "rsa1024" -> Some RSA_1024
  | "rsa2048" -> Some RSA_2048
  | "rsa4096" -> Some RSA_4096
  | "ecdsa160" -> Some ECDSA_160
  | "ecdsa224" -> Some ECDSA_224
  | "ecdsa256" -> Some ECDSA_256
  | _ -> None

type t = {
  platform : string;
  hash_ns_per_byte : Ra_crypto.Algo.hash -> float;
  hash_setup_ns : float;
  sign_ns : signature_alg -> float;
  verify_ns : signature_alg -> float;
  context_switch_ns : float;
  lock_op_ns : float;
  copy_ns_per_byte : float;
}

(* Calibration anchors from the paper's own text: SHA-256 at 9 ns/B gives
   0.9 s per 100 MB; the fastest primitive (BLAKE2b) at 7 ns/B gives 14 s
   for the full 2 GB of RAM. Relative ordering of the other primitives and
   the signature costs follow typical Cortex-A15 measurements. *)
let odroid_xu4 =
  {
    platform = "ODROID-XU4";
    hash_ns_per_byte =
      (function
      | Ra_crypto.Algo.SHA_256 -> 9.0
      | Ra_crypto.Algo.SHA_512 -> 7.8
      | Ra_crypto.Algo.BLAKE2b -> 7.0
      | Ra_crypto.Algo.BLAKE2s -> 8.4);
    hash_setup_ns = 5_000.;
    sign_ns =
      (function
      | RSA_1024 -> 2.7e6
      | RSA_2048 -> 1.6e7
      | RSA_4096 -> 1.05e8
      | ECDSA_160 -> 7.5e5
      | ECDSA_224 -> 1.0e6
      | ECDSA_256 -> 1.2e6);
    verify_ns =
      (function
      | RSA_1024 -> 1.2e5
      | RSA_2048 -> 3.5e5
      | RSA_4096 -> 1.2e6
      | ECDSA_160 -> 1.5e6
      | ECDSA_224 -> 2.0e6
      | ECDSA_256 -> 2.4e6);
    context_switch_ns = 10_000.;
    lock_op_ns = 2_000.;
    copy_ns_per_byte = 1.0;
  }

(* Cortex-M0-class device at 48 MHz with software crypto: roughly 70x the
   per-byte cost and 3 orders of magnitude slower public-key operations. *)
let low_end_mcu =
  {
    platform = "low-end MCU";
    hash_ns_per_byte =
      (function
      | Ra_crypto.Algo.SHA_256 -> 620.
      | Ra_crypto.Algo.SHA_512 -> 1_450.
      | Ra_crypto.Algo.BLAKE2b -> 1_100.
      | Ra_crypto.Algo.BLAKE2s -> 540.);
    hash_setup_ns = 80_000.;
    sign_ns =
      (function
      | RSA_1024 -> 2.3e9
      | RSA_2048 -> 1.5e10
      | RSA_4096 -> 1.0e11
      | ECDSA_160 -> 9.0e8
      | ECDSA_224 -> 1.8e9
      | ECDSA_256 -> 2.5e9);
    verify_ns =
      (function
      | RSA_1024 -> 1.1e8
      | RSA_2048 -> 3.4e8
      | RSA_4096 -> 1.2e9
      | ECDSA_160 -> 1.8e9
      | ECDSA_224 -> 3.4e9
      | ECDSA_256 -> 4.8e9);
    context_switch_ns = 250_000.;
    lock_op_ns = 40_000.;
    copy_ns_per_byte = 45.;
  }

let round_ns f = Timebase.ns (int_of_float (Float.round f))

let hash_time t hash ~bytes =
  round_ns (t.hash_setup_ns +. (float_of_int bytes *. t.hash_ns_per_byte hash))

let hash_time_raw t hash ~bytes =
  round_ns (float_of_int bytes *. t.hash_ns_per_byte hash)

let sign_time t alg = round_ns (t.sign_ns alg)

let verify_time t alg = round_ns (t.verify_ns alg)

let measurement_time t hash ?signature ~bytes () =
  let base = hash_time t hash ~bytes in
  match signature with
  | None -> base
  | Some alg -> Timebase.add base (sign_time t alg)

let crossover_bytes t hash alg =
  int_of_float (Float.round (t.sign_ns alg /. t.hash_ns_per_byte hash))

type cache_accounting = {
  blocks_hashed : int;
  blocks_hit : int;
  modeled_ns_total : float;
  modeled_ns_hit : float;
}

(* Pure accounting: the prover is still modeled as hashing every block
   (the device has no digest cache; virtual-time cost never depends on
   hits), so the total charges all blocks and the hit share just reports
   how much host hashing the cache avoided in cost-model terms. *)
let cache_accounting t hash ~block_bytes ~hits ~misses =
  let per_block = float_of_int block_bytes *. t.hash_ns_per_byte hash in
  {
    blocks_hashed = misses;
    blocks_hit = hits;
    modeled_ns_total = float_of_int (hits + misses) *. per_block;
    modeled_ns_hit = float_of_int hits *. per_block;
  }
