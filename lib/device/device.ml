open Ra_sim

type config = {
  seed : int;
  blocks : int;
  block_size : int;
  modeled_block_bytes : int;
  data_blocks : int list;
  cost : Cost_model.t;
  key : Bytes.t;
  digest_cache : bool;
  store : Ra_cache.Store.t option;
}

(* ralint: allow P2 — the shared demo key Bytes is treated as immutable
   by every consumer (HMAC/CMAC read it, nothing writes); configs derived
   with { default_config with ... } alias it deliberately. *)
let default_config =
  {
    seed = 1;
    blocks = 64;
    block_size = 1024;
    modeled_block_bytes = 16 * 1024 * 1024;
    data_blocks = [];
    cost = Cost_model.odroid_xu4;
    key = Bytes.of_string "ra-safety-demo-attestation-key!!";
    digest_cache = true;
    store = None;
  }

type t = {
  engine : Engine.t;
  cpu : Cpu.t;
  memory : Memory.t;
  config : config;
  cache : Ra_cache.t option;
  mutable epoch : int;
  mutable up : bool;
  mutable crash_count : int;
  mutable last_boot_at : Timebase.t;
  mutable crash_hooks : (unit -> unit) list;
  mutable reboot_hooks : (unit -> unit) list;
}

(* The image is a pure function of the seed so prover and verifier can build
   identical copies without shipping the bytes around. *)
let firmware_image ~seed ~size =
  let rng = Prng.create ~seed:(seed lxor 0x46495257 (* "FIRW" *)) in
  Prng.bytes rng size

let create config =
  if config.blocks <= 0 then invalid_arg "Device.create: no blocks";
  List.iter
    (fun b ->
      if b < 0 || b >= config.blocks then
        invalid_arg "Device.create: data block out of range")
    config.data_blocks;
  let engine = Engine.create ~seed:config.seed () in
  let image = firmware_image ~seed:config.seed ~size:(config.blocks * config.block_size) in
  {
    engine;
    cpu = Cpu.create engine;
    memory = Memory.create ~image ~block_size:config.block_size;
    config;
    cache =
      (if config.digest_cache then Some (Ra_cache.create ?store:config.store ())
       else None);
    epoch = 0;
    up = true;
    crash_count = 0;
    last_boot_at = Timebase.zero;
    crash_hooks = [];
    reboot_hooks = [];
  }

let attested_bytes t = t.config.blocks * t.config.modeled_block_bytes

let is_data_block t block = List.mem block t.config.data_blocks

let run ?until t = Engine.run ?until t.engine

(* --- crash / reboot ------------------------------------------------------ *)

let epoch t = t.epoch

let is_up t = t.up

let crash_count t = t.crash_count

let last_boot_at t = t.last_boot_at

let on_crash t f = t.crash_hooks <- t.crash_hooks @ [ f ]

let on_reboot t f = t.reboot_hooks <- t.reboot_hooks @ [ f ]

let crash ?(reboot_delay = Timebase.ms 250) t =
  if reboot_delay < 0 then invalid_arg "Device.crash: negative reboot delay";
  if t.up then begin
    let eng = t.engine in
    t.up <- false;
    t.epoch <- t.epoch + 1;
    t.crash_count <- t.crash_count + 1;
    Engine.recordf eng ~tag:"device" "CRASH #%d: volatile state lost, reboot in %s"
      t.crash_count
      (Timebase.to_string reboot_delay);
    (* Power loss: every CPU job dies mid-flight (no completions), MPU locks
       are volatile and come up open. *)
    Cpu.flush t.cpu;
    Memory.unlock_all ~time:(Engine.now eng) t.memory;
    List.iter (fun f -> f ()) t.crash_hooks;
    ignore
      (Engine.schedule_after eng ~delay:reboot_delay (fun _ ->
           t.up <- true;
           t.last_boot_at <- Engine.now eng;
           Engine.recordf eng ~tag:"device" "boot complete (epoch %d)" t.epoch;
           List.iter (fun f -> f ()) t.reboot_hooks))
  end
