(** Prover memory: an array of lockable blocks holding real bytes.

    Locking a block makes it read-only, which is exactly the semantics the
    paper's memory-locking schemes need (Section 3.1): a write to a locked
    block fails and the caller decides whether to stall, retry or give up.

    Every successful write is journaled with its virtual time so that the
    temporal-consistency checker can reconstruct the exact memory image at
    any instant and decide which instants a measurement is consistent with. *)

open Ra_sim

type t

type write_error = Locked of int  (** the offending block *)

val create : image:Bytes.t -> block_size:int -> t
(** The image length must be a positive multiple of [block_size]. *)

val block_count : t -> int
val block_size : t -> int
val size : t -> int

val read_block : t -> int -> Bytes.t
(** A fresh copy of the block's current content. *)

val with_block : t -> int -> (Bytes.t -> 'a) -> 'a
(** Zero-copy read: [f] is applied to the block's live storage. [f] must
    not mutate the bytes or retain them past its return — use
    {!read_block} when a lasting copy is needed. *)

val with_blocks : t -> int array -> (Bytes.t array -> 'a) -> 'a
(** Zero-copy batch read: [f] is applied to the live storage of every
    listed block (same order). Same contract as {!with_block} — no
    mutation, no retention. This is what lets a whole measurement round
    feed the batch digest pipeline without copying each block. *)

val version : t -> int -> int
(** Monotonically-increasing per-block version counter, starting at 0.
    Bumped on every successful direct write and on every cow shadow merge
    — i.e. exactly when the content readers observe can change. Equal
    versions imply identical bytes, which is the contract the measurement
    digest cache relies on. Cow-diverted writes do not bump the version
    until the shadow merges. *)

val write :
  t -> time:Timebase.t -> block:int -> offset:int -> Bytes.t ->
  (unit, write_error) result
(** Fails with [Locked] without modifying anything if the block is locked.
    Raises [Invalid_argument] if the slice does not fit the block. *)

val set_block :
  t -> time:Timebase.t -> block:int -> Bytes.t -> (unit, write_error) result
(** Replace a whole block. *)

val lock : t -> int -> unit
(** Hard lock: writes fail with [Locked]. *)

val lock_cow : t -> int -> unit
(** Copy-on-write lock (the Cpy-Lock mechanism of the temporal-consistency
    paper the survey builds on): writes *succeed* into a per-block shadow,
    readers keep seeing the frozen content, and the shadow merges into the
    block when it is released. No effect on a block already cow-locked. *)

val has_shadow : t -> int -> bool
(** A cow-locked block received at least one diverted write. *)

val unlock : ?time:Timebase.t -> t -> int -> unit
(** Idempotent; notifies subscribers only on a locked-to-unlocked edge.
    Releasing a cow lock merges any pending shadow and journals the merge
    at [time]. Raises [Invalid_argument] if a pending shadow exists and no
    [~time] was supplied: a merge journaled at a default time corrupts the
    temporal-consistency reconstruction, so the current virtual time is
    mandatory exactly when it matters. *)

val is_locked : t -> int -> bool
val locked_count : t -> int
val lock_all : t -> unit
val lock_all_cow : t -> unit
val unlock_all : ?time:Timebase.t -> t -> unit

val subscribe_unlock : t -> (int -> unit) -> unit
(** Callbacks run synchronously inside {!unlock}/{!unlock_all}. *)

val snapshot : t -> Bytes.t
(** Full copy of the current content. *)

val initial_image : t -> Bytes.t
(** Copy of the content the memory was created with. *)

val content_at : t -> time:Timebase.t -> Bytes.t
(** Replay the write journal: the exact image as of [time] (inclusive). *)

val block_content_at : t -> time:Timebase.t -> block:int -> Bytes.t

val writes_between : t -> Timebase.t -> Timebase.t -> (Timebase.t * int) list
(** [(time, block)] of journaled writes with [t1 < time <= t2]. *)
