(** Chaos harness: every RA scheme family under randomized fault schedules
    (network corruption, loss, duplication, reordering, partitions, device
    crashes), with per-trial invariant checks:

    - a benign device is never reported Tampered, whatever the channel does;
    - the fire-alarm deadline is met while attestation retries around faults;
    - attestation completes after a partition heals or the device reboots;
    - a reboot forces a fresh measurement — no stale pre-crash report is
      accepted, and re-measurements are bounded by the crash count;
    - ERASMUS log wipes surface as audit gaps, never as Tampered;
    - SeED and swarm keep their accounting consistent under loss.

    Deterministic: the same seed replays the same fault plans and outcomes. *)

type trial_outcome = {
  trial : int;
  scheme : string;
  profile : string;
  plan : string;  (** the fault plan, rendered for logs *)
  completed_s : float option;
      (** completion time for on-demand schemes that reached a verdict *)
  violations : string list;  (** empty = all invariants held *)
}

type summary = {
  outcomes : trial_outcome list;
  total : int;
  failed : int;  (** trials with at least one violation *)
  violations : string list;  (** flattened, with trial context *)
  baselines : (string * float) list;
      (** fault-free completion seconds per on-demand scheme *)
}

val run : ?jobs:int -> ?seed:int -> trials:int -> unit -> summary
(** Trials fan out on the {!Ra_parallel} pool; each trial's fault plan is
    drawn from the master generator in trial order before the fan-out, so
    the summary is identical for every [jobs] value. *)

val render : summary -> string
(** Recovery-latency table (ideal vs under faults) plus the verdict line,
    listing every violation if any. *)
