open Ra_sim
open Ra_device
open Ra_core

type mode = Authenticate_then_drop | Measure_on_request | Non_interactive

let mode_name = function
  | Authenticate_then_drop -> "authenticate-then-drop"
  | Measure_on_request -> "measure-on-request"
  | Non_interactive -> "non-interactive (SeED)"

type result = {
  mode : mode;
  request_rate : float;
  app_max_latency_s : float;
  app_deadline_misses : int;
  attacker_cpu_fraction : float;
}

let auth_time = Timebase.us 200

let run ?(seed = 31) ?(horizon = Timebase.s 30) ~mode ~rate_per_s () =
  let device =
    Device.create
      {
        Device.default_config with
        Device.seed;
        block_size = 256;
        modeled_block_bytes = 1024 * 1024; (* 64 MiB: MP ~ 0.58 s *)
      }
  in
  let eng = device.Device.engine in
  let app =
    App.start eng device.Device.cpu device.Device.memory
      { App.default_config with App.first_activation = Timebase.ms 100 }
  in
  let rng = Prng.split (Engine.prng eng) in
  (* Bogus requests arrive as a Poisson process for the whole horizon. *)
  let serve_request () =
    match mode with
    | Non_interactive -> ()
    | Authenticate_then_drop ->
      ignore
        (Cpu.submit device.Device.cpu ~name:"dos-auth" ~priority:5
           ~duration:auth_time
           ~on_complete:(fun () -> ())
           ())
    | Measure_on_request ->
      ignore
        (Cpu.submit device.Device.cpu ~name:"dos-auth" ~priority:5 ~duration:auth_time
           ~on_complete:(fun () ->
             Mp.run device
               { Mp.default_config with Mp.scheme = Scheme.smart }
               ~nonce:(Prng.bytes rng 16)
               ~on_complete:(fun _ -> ())
               ())
           ())
  in
  if rate_per_s > 0. then begin
    let rec arrival at =
      if at <= horizon then
        ignore
          (Engine.schedule eng ~at (fun _ ->
               serve_request ();
               let gap = Prng.exponential rng ~mean:(1e9 /. rate_per_s) in
               arrival (Timebase.add at (max 1 (int_of_float gap)))))
    in
    arrival (Timebase.ms 200)
  end;
  Engine.run ~until:horizon eng;
  App.stop app;
  Engine.run ~until:(Timebase.add horizon (Timebase.s 20)) eng;
  let elapsed = Timebase.to_seconds (Engine.now eng) in
  let stats = App.latencies app in
  let attacker_busy =
    Cpu.busy_ns device.Device.cpu ~name:"dos-auth"
    + Cpu.busy_ns device.Device.cpu ~name:"mp"
  in
  {
    mode;
    request_rate = rate_per_s;
    app_max_latency_s = (if Stats.count stats = 0 then 0. else Stats.max_value stats);
    app_deadline_misses = App.deadline_misses app;
    attacker_cpu_fraction = float_of_int attacker_busy /. elapsed /. 1e9;
  }

(* --- duplicate taxonomy ------------------------------------------------- *)

type duplicate_result = {
  duplicate_rate : float;
  loss_rate : float;
  rp_attempts : int;
  retransmits : int;  (** request copies the verifier re-sent (loss-driven) *)
  channel_dups : int;  (** request copies the channel manufactured *)
  dup_replies : int;  (** reply copies the verifier threw away *)
  rp_measurements : int;
}

let run_duplicates ?(seed = 31) ~duplicate ~loss () =
  let device =
    Device.create
      { Device.default_config with Device.seed; block_size = 256 }
  in
  let eng = device.Device.engine in
  let verifier = Verifier.of_device device in
  let result = ref None in
  Reliable_protocol.run device verifier
    {
      Reliable_protocol.default_config with
      Reliable_protocol.channel =
        { Channel.ideal with Channel.delay = Timebase.ms 20; duplicate; loss };
      retry_timeout = Timebase.s 12;
      max_attempts = 10;
    }
    ~on_done:(fun r -> result := Some r)
    ();
  Engine.run eng;
  match !result with
  | None -> assert false (* bounded attempts always produce a result *)
  | Some r ->
    {
      duplicate_rate = duplicate;
      loss_rate = loss;
      rp_attempts = r.Reliable_protocol.attempts;
      retransmits = r.Reliable_protocol.retransmits_absorbed;
      channel_dups = r.Reliable_protocol.channel_duplicates_absorbed;
      dup_replies = r.Reliable_protocol.duplicate_replies_ignored;
      rp_measurements = r.Reliable_protocol.measurements_run;
    }

let render_duplicates ?seed () =
  let rows =
    List.map
      (fun (duplicate, loss) ->
        let r = run_duplicates ?seed ~duplicate ~loss () in
        [
          Printf.sprintf "%.0f%%" (r.duplicate_rate *. 100.);
          Printf.sprintf "%.0f%%" (r.loss_rate *. 100.);
          string_of_int r.rp_attempts;
          string_of_int r.retransmits;
          string_of_int r.channel_dups;
          string_of_int r.dup_replies;
          string_of_int r.rp_measurements;
        ])
      [ (0., 0.); (1.0, 0.); (0.5, 0.3); (0., 0.5) ]
  in
  "Duplicate taxonomy — why the prover saw a request twice\n"
  ^ Tablefmt.render
      ~header:
        [
          "dup rate";
          "loss rate";
          "attempts";
          "vrf retransmits";
          "channel dups";
          "dup replies";
          "MPs run";
        ]
      rows
  ^ "Whatever the mix, the prover measures once: retransmitted and\n\
     duplicated requests alike are absorbed by the session cache.\n"

let render ?seed () =
  let rows =
    List.concat_map
      (fun mode ->
        List.map
          (fun rate ->
            let r = run ?seed ~mode ~rate_per_s:rate () in
            [
              mode_name r.mode;
              Printf.sprintf "%.0f/s" r.request_rate;
              Printf.sprintf "%.3f s" r.app_max_latency_s;
              string_of_int r.app_deadline_misses;
              Printf.sprintf "%.1f%%" (r.attacker_cpu_fraction *. 100.);
            ])
          (match mode with
          | Measure_on_request -> [ 0.; 1.; 2.; 10. ]
          | Authenticate_then_drop | Non_interactive -> [ 0.; 10.; 100.; 1000. ]))
      [ Authenticate_then_drop; Measure_on_request; Non_interactive ]
  in
  "E-DoS — request flooding vs prover availability (Section 3.3)\n"
  ^ Tablefmt.render
      ~header:
        [ "prover mode"; "bogus requests"; "max app latency"; "deadline misses"; "CPU burnt" ]
      rows
