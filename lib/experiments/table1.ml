open Ra_sim
open Ra_device
open Ra_core

type row = {
  scheme : string;
  self_relocating_detection : float;
  transient_detection : float;
  app_stall_s : float;
  consistent_at_ts : bool;
  consistent_at_te : bool;
  consistent_throughout : bool;
  max_app_latency_s : float;
  unattended_detection : bool;
  extra_hw : string;
  overhead_note : string;
}

let hw_note scheme =
  match scheme with
  | "SMART" -> "baseline (ROM + access rules)"
  | "No-Lock" -> "baseline"
  | "All-Lock" | "Dec-Lock" | "Inc-Lock" -> "configurable MPU/MMU"
  | "SMARM" -> "none (opt. secure memory)"
  | "Cpy-Lock" -> "MPU/MMU + shadow memory"
  | "ERASMUS" -> "secure clock"
  | _ -> ""

(* Strongest adversary each scheme admits: a sequential-order-aware
   half-split hopper where the order is predictable, the SMARM-optimal
   uniform rover otherwise. *)
let self_reloc_adversary scheme =
  let strategy =
    match scheme.Scheme.order with
    | Scheme.Sequential -> Ra_malware.Malware.Half_split_hop
    | Scheme.Shuffled -> Ra_malware.Malware.Uniform_hop
  in
  Runs.Malicious
    { behavior = Ra_malware.Malware.Self_relocating strategy; block = 40 }

let transient_adversary =
  Runs.Malicious { behavior = Ra_malware.Malware.Evasive_erase; block = 40 }

(* Unattended setting: the infection dwells in [2 s, 30 s] and is long gone
   when a single on-demand measurement runs at t = 60 s. *)
let unattended_on_demand ~seed scheme =
  let device =
    Device.create
      { Device.default_config with Device.seed = seed; block_size = 256 }
  in
  let eng = device.Device.engine in
  let verifier = Verifier.of_device device in
  let rng = Prng.split (Engine.prng eng) in
  let _mal =
    Ra_malware.Malware.install device ~rng ~block:17 ~priority:8
      (Ra_malware.Malware.Transient { enter = Timebase.s 2; leave = Timebase.s 30 })
  in
  let verdict = ref Verifier.Clean in
  ignore
    (Engine.schedule eng ~at:(Timebase.s 60) (fun _ ->
         Mp.run device
           { Mp.default_config with Mp.scheme }
           ~nonce:(Prng.bytes (Engine.prng eng) 16)
           ~on_complete:(fun r -> verdict := Verifier.verify verifier r)
           ()));
  Engine.run eng;
  !verdict = Verifier.Tampered

let unattended_erasmus ~seed =
  let device =
    Device.create
      { Device.default_config with Device.seed = seed; block_size = 256 }
  in
  let eng = device.Device.engine in
  let verifier = Verifier.of_device device in
  let rng = Prng.split (Engine.prng eng) in
  let _mal =
    Ra_malware.Malware.install device ~rng ~block:17 ~priority:8
      (Ra_malware.Malware.Transient { enter = Timebase.s 2; leave = Timebase.s 30 })
  in
  let erasmus =
    Erasmus.start device
      { Erasmus.default_config with Erasmus.period = Timebase.s 10; first_at = Timebase.s 5 }
  in
  Engine.run ~until:(Timebase.s 60) eng;
  Erasmus.stop erasmus;
  Engine.run ~until:(Timebase.s 70) eng;
  List.exists
    (fun r -> Verifier.verify verifier r = Verifier.Tampered)
    (Erasmus.stored erasmus)

(* ERASMUS availability probe: the app runs while a self-measurement
   schedule with an atomic MP executes. *)
let erasmus_app_probe ~seed =
  let data_blocks = [ 60; 61; 62; 63 ] in
  let device =
    Device.create
      {
        Device.default_config with
        Device.seed = seed;
        block_size = 256;
        data_blocks;
      }
  in
  let eng = device.Device.engine in
  let app =
    App.start eng device.Device.cpu device.Device.memory
      {
        App.default_config with
        App.data_blocks;
        write_bytes = 32;
        first_activation = Timebase.ms 100;
      }
  in
  let erasmus =
    Erasmus.start device
      { Erasmus.default_config with Erasmus.period = Timebase.s 15; first_at = Timebase.s 2 }
  in
  Engine.run ~until:(Timebase.s 40) eng;
  App.stop app;
  Erasmus.stop erasmus;
  Engine.run ~until:(Timebase.s 55) eng;
  let stats = App.latencies app in
  ( Timebase.to_seconds (App.blocked_ns app),
    (if Stats.count stats = 0 then 0. else Stats.max_value stats) )

let scheme_row ?jobs ~trials ~seed scheme =
  let setup = { Runs.default_setup with Runs.seed } in
  let rounds = match scheme.Scheme.order with Scheme.Shuffled -> 13 | Scheme.Sequential -> 1 in
  let self_rate, _ =
    Runs.detection_rate ?jobs { setup with Runs.rounds } ~scheme
      ~adversary:(self_reloc_adversary scheme) ~trials
  in
  let transient_rate, _ =
    Runs.detection_rate ?jobs setup ~scheme ~adversary:transient_adversary ~trials
  in
  let probe = Fire_alarm.run_scheme ~seed scheme in
  let consistency = Fig4.run_scheme ~seed scheme in
  {
    scheme = scheme.Scheme.name;
    self_relocating_detection = self_rate;
    transient_detection = transient_rate;
    app_stall_s = Timebase.to_seconds probe.Fire_alarm.app_blocked_ns;
    consistent_at_ts = consistency.Fig4.consistent_at_start;
    consistent_at_te = consistency.Fig4.consistent_at_end;
    consistent_throughout = consistency.Fig4.consistent_throughout_measure;
    max_app_latency_s = probe.Fire_alarm.max_app_latency_s;
    unattended_detection = unattended_on_demand ~seed scheme;
    extra_hw = hw_note scheme.Scheme.name;
    overhead_note =
      (match scheme.Scheme.order with
      | Scheme.Shuffled -> "high (k independent rounds)"
      | Scheme.Sequential ->
        (match scheme.Scheme.locking with
        | Scheme.No_lock -> "baseline"
        | Scheme.All_lock | Scheme.All_lock_ext _ | Scheme.Dec_lock
        | Scheme.Inc_lock | Scheme.Inc_lock_ext _ -> "low (lock ops)"
        | Scheme.Cpy_lock -> "low (copy-on-write shadows)"));
  }

let erasmus_row ~seed =
  let stall, max_latency = erasmus_app_probe ~seed in
  {
    scheme = "ERASMUS";
    (* each self-measurement is an atomic SMART MP: both adversaries are
       caught whenever present, exactly as in the SMART row *)
    self_relocating_detection = 1.0;
    transient_detection = 1.0;
    app_stall_s = stall;
    consistent_at_ts = true;
    consistent_at_te = true;
    consistent_throughout = true;
    max_app_latency_s = max_latency;
    unattended_detection = unattended_erasmus ~seed;
    extra_hw = hw_note "ERASMUS";
    overhead_note = "none on demand (measurements amortised)";
  }

(* Rows are independent — each builds its devices from [seed] alone — so
   they fan out across the pool; the per-row trial loops then degrade to
   sequential inside pool tasks. *)
let compute ?jobs ?(trials = 40) ?(seed = 5) () =
  let schemes = Array.of_list Scheme.all_with_extensions in
  let n = Array.length schemes in
  Array.to_list
    (Ra_parallel.parallel_init ?jobs (n + 1) (fun i ->
         if i < n then scheme_row ?jobs ~trials ~seed schemes.(i)
         else erasmus_row ~seed))

let mark b = if b then "yes" else "no"

let render ?jobs ?trials ?seed () =
  let rows = compute ?jobs ?trials ?seed () in
  let cells =
    List.map
      (fun r ->
        [
          r.scheme;
          Printf.sprintf "%.2f" r.self_relocating_detection;
          Printf.sprintf "%.2f" r.transient_detection;
          Printf.sprintf "%.2f s" r.app_stall_s;
          Printf.sprintf "%s/%s/%s" (mark r.consistent_at_ts)
            (mark r.consistent_at_te) (mark r.consistent_throughout);
          Printf.sprintf "%.3f s" r.max_app_latency_s;
          mark r.unattended_detection;
          r.extra_hw;
          r.overhead_note;
        ])
      rows
  in
  "Table 1 / E3 — measured feature matrix (detection columns are rates over trials)\n"
  ^ Tablefmt.render
      ~header:
        [
          "scheme";
          "self-reloc det.";
          "transient det.";
          "app write stall";
          "cons ts/te/[ts,te]";
          "max app latency";
          "unattended";
          "extra HW";
          "run-time overhead";
        ]
      cells

let paper_expectations =
  [
    ("SMART", true, true);
    ("No-Lock", false, false);
    ("All-Lock", true, true);
    ("Dec-Lock", true, true);
    ("Inc-Lock", true, false);
    ("SMARM", true, false);
    ("Cpy-Lock", true, true);
    ("ERASMUS", true, true);
  ]
