(** Experiment E3 — Table 1: the feature matrix of all candidate solutions,
    with every checkmark *measured* rather than asserted:

    - malware detection columns are Monte-Carlo detection rates against the
      strongest adversary each scheme admits;
    - availability and interruptibility come from the critical application's
      stall time and worst-case latency during a 1 GiB measurement;
    - consistency columns come from the Fig. 4 injected-write checker;
    - the unattended column is a transient infection that has left long
      before the on-demand request arrives (only self-measurement catches
      it). *)

type row = {
  scheme : string;
  self_relocating_detection : float;  (** rate in [0,1] *)
  transient_detection : float;
  app_stall_s : float;  (** write-stall during one measurement *)
  consistent_at_ts : bool;
  consistent_at_te : bool;
  consistent_throughout : bool;
  max_app_latency_s : float;
  unattended_detection : bool;
  extra_hw : string;  (** qualitative, from the paper *)
  overhead_note : string;
}

val compute : ?jobs:int -> ?trials:int -> ?seed:int -> unit -> row list
(** SMART, No-Lock, All-Lock, Dec-Lock, Inc-Lock, SMARM (13 rounds for the
    detection column), and ERASMUS self-measurement. Default 40 trials.
    Rows fan out on the {!Ra_parallel} pool; the result is byte-for-byte
    identical for every [jobs] value. *)

val render : ?jobs:int -> ?trials:int -> ?seed:int -> unit -> string

val paper_expectations : (string * bool * bool) list
(** (scheme, detects self-relocating, detects transient) as printed in
    Table 1 of the paper — used by the test suite. *)
