(* Perf-regression toolkit: measure throughput/wall-time metrics, write them
   as BENCH_*.json, and diff a run against a committed baseline. JSON is
   hand-rolled (emitter and a small recursive-descent parser) because the
   build pulls in no JSON dependency. *)

type direction = Higher_is_better | Lower_is_better

(* [exact] marks deterministic metrics (event/byte/hit counts): they must
   reproduce bit-for-bit on any host and any job count, so the comparison
   gate checks equality instead of a wall-time tolerance. *)
type metric = {
  name : string;
  value : float;
  unit_ : string;
  direction : direction;
  exact : bool;
}

type suite = { suite : string; metrics : metric list }

(* --- measurement -------------------------------------------------------- *)

(* Repeat [f] until [budget] seconds elapse (at least once); returns
   (iterations, elapsed_seconds). *)
let timed_loop ~budget f =
  let t0 = Unix.gettimeofday () in
  let iters = ref 0 in
  let elapsed = ref 0. in
  while !elapsed < budget do
    f ();
    incr iters;
    elapsed := Unix.gettimeofday () -. t0
  done;
  (!iters, !elapsed)

let wall f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let throughput_metric ~name ~bytes ~budget f =
  let iters, elapsed = timed_loop ~budget f in
  {
    name;
    value = float_of_int (iters * bytes) /. elapsed /. 1e6;
    unit_ = "MB/s";
    direction = Higher_is_better;
    exact = false;
  }

let seconds_metric ~name value =
  { name; value; unit_ = "s"; direction = Lower_is_better; exact = false }

let ratio_metric ~name value =
  { name; value; unit_ = "x"; direction = Higher_is_better; exact = false }

let count_metric ~name value =
  {
    name;
    value = float_of_int value;
    unit_ = "count";
    direction = Higher_is_better;
    exact = true;
  }

(* quick mode trims buffer sizes and timing budgets so `ratool bench` and
   the CI smoke job finish in seconds; the shapes measured are the same *)
let crypto_metrics ?(quick = false) () =
  let budget = if quick then 0.15 else 1.0 in
  let size = (if quick then 1 else 4) * 1024 * 1024 in
  let buffer = Ra_sim.Prng.bytes (Ra_sim.Prng.create ~seed:1) size in
  let hash name digest =
    throughput_metric ~name ~bytes:size ~budget (fun () -> ignore (digest buffer))
  in
  [
    hash "sha256_mb_s" Ra_crypto.Sha256.digest;
    hash "sha512_mb_s" Ra_crypto.Sha512.digest;
    hash "blake2b_mb_s" Ra_crypto.Blake2b.digest;
    hash "blake2s_mb_s" Ra_crypto.Blake2s.digest;
    (let key = Bytes.of_string "bench-key" in
     throughput_metric ~name:"hmac_sha256_mb_s" ~bytes:size ~budget (fun () ->
         ignore (Ra_crypto.Hmac.Sha256.mac ~key buffer)));
  ]
  @
  (* Batch path over the same input bytes, re-cut as 1 KiB messages (the
     shape one fleet measurement round produces). The lane sweep records
     the interleaving win — and where register pressure takes it back —
     so a regression in either direction trips compare.exe. *)
  let msg = 1024 in
  let batch =
    Array.init (size / msg) (fun i -> Bytes.sub buffer (i * msg) msg)
  in
  let lanes_metric name lanes =
    throughput_metric ~name ~bytes:size ~budget (fun () ->
        ignore (Ra_crypto.Sha256_multi.digest_many ~lanes batch))
  in
  [
    throughput_metric ~name:"sha256_batch_mb_s" ~bytes:size ~budget (fun () ->
        ignore (Ra_crypto.Algo.digest_many Ra_crypto.Algo.SHA_256 batch));
    lanes_metric "sha256_lanes1_mb_s" 1;
    lanes_metric "sha256_lanes2_mb_s" 2;
    lanes_metric "sha256_lanes4_mb_s" 4;
    (let key = Bytes.of_string "bench-key" in
     let pairs =
       Array.map
         (fun m -> (m, Ra_crypto.Hmac.Sha256.mac ~key m))
         (Array.sub batch 0 (Array.length batch / 4))
     in
     let bytes = msg * Array.length pairs in
     throughput_metric ~name:"hmac_verify_batch_mb_s" ~bytes ~budget
       (fun () -> ignore (Ra_crypto.Hmac.Sha256.verify_many ~key pairs)));
  ]

let engine_events_metric ~budget =
  let events_per_iter = 10_000 in
  let iters, elapsed =
    timed_loop ~budget (fun () ->
        let eng = Ra_sim.Engine.create () in
        for i = 1 to events_per_iter do
          ignore (Ra_sim.Engine.schedule eng ~at:i (fun _ -> ()))
        done;
        Ra_sim.Engine.run eng)
  in
  {
    name = "engine_events_s";
    value = float_of_int (iters * events_per_iter) /. elapsed;
    unit_ = "events/s";
    direction = Higher_is_better;
    exact = false;
  }

(* 1000-device roll call on the fleet's shared firmware release, one device
   infected. Deliberately NOT shrunk in quick mode: the count metrics are
   exact and must reproduce identically in smoke runs, full runs, and on
   any host or job count. *)
let fleet_metrics ?jobs () =
  let open Ra_core in
  let fleet =
    Fleet.create ~master_secret:(Bytes.of_string "bench fleet master secret") ()
  in
  let config =
    {
      Ra_device.Device.default_config with
      Ra_device.Device.blocks = 16;
      block_size = 256;
      modeled_block_bytes = 1024 * 1024;
    }
  in
  let devices = 1000 in
  for i = 0 to devices - 1 do
    ignore (Fleet.provision fleet (Printf.sprintf "dev-%05d" i) ~config ())
  done;
  let infected = Fleet.device fleet "dev-00500" in
  let rng = Ra_sim.Prng.split (Ra_sim.Engine.prng infected.Ra_device.Device.engine) in
  ignore
    (Ra_malware.Malware.install infected ~rng ~block:3 ~priority:8
       Ra_malware.Malware.Static);
  let roll, roll_s =
    wall (fun () -> Fleet.roll_call fleet ?jobs Mp.default_config)
  in
  (* Second roll call over the same (unchanged) fleet: every device's
     per-block memo is warm, so [cache_hits] — pinned at zero on the cold
     pass by construction — becomes a real, gate-able count: any memo
     regression drops it and the exact comparison fails. *)
  let warm, warm_s =
    wall (fun () -> Fleet.roll_call fleet ?jobs Mp.default_config)
  in
  [
    seconds_metric ~name:"fleet_roll_call_s" roll_s;
    seconds_metric ~name:"fleet_warm_roll_call_s" warm_s;
    count_metric ~name:"fleet_clean" (List.length roll.Fleet.clean);
    count_metric ~name:"fleet_tampered" (List.length roll.Fleet.tampered);
    count_metric ~name:"fleet_digest_requests" roll.Fleet.digest_requests;
    count_metric ~name:"fleet_cache_hits" warm.Fleet.cache_hits;
    count_metric ~name:"fleet_store_hits" roll.Fleet.store_hits;
    count_metric ~name:"fleet_blocks_hashed" roll.Fleet.hashed;
    count_metric ~name:"fleet_batch_hashed" roll.Fleet.batch_hashed;
    count_metric ~name:"fleet_distinct_blocks" roll.Fleet.distinct_blocks;
    count_metric ~name:"fleet_warm_tampered" (List.length warm.Fleet.tampered);
    count_metric ~name:"fleet_store_stripes"
      (Ra_cache.Store.stripes (Fleet.store fleet));
  ]

(* Sharded roll call over a multi-segment virtual roster: 2.5 aggregation
   segments, so the hierarchy (segment roots -> shard roots -> fleet root)
   is genuinely exercised. [fleet_root_checks] counts re-runs at other
   (shards, jobs) points whose fleet root and counters matched the
   reference — the hierarchical-digest invariance, gated as an exact
   metric. NOT shrunk in quick mode. *)
let fleet_sharded_metrics ?jobs () =
  let open Ra_core in
  let devices = (2 * Fleet.segment_size) + Fleet.segment_size / 2 in
  let build () =
    let fleet =
      Fleet.create ~master_secret:(Bytes.of_string "bench sharded fleet secret") ()
    in
    let config =
      {
        Ra_device.Device.default_config with
        Ra_device.Device.blocks = 16;
        block_size = 256;
        modeled_block_bytes = 1024 * 1024;
      }
    in
    for i = 0 to devices - 1 do
      let tamper =
        if i mod 500 = 250 then
          Some
            (fun d ->
              let rng =
                Ra_sim.Prng.split (Ra_sim.Engine.prng d.Ra_device.Device.engine)
              in
              ignore
                (Ra_malware.Malware.install d ~rng ~block:5 ~priority:8
                   Ra_malware.Malware.Static))
        else None
      in
      Fleet.provision_virtual fleet (Printf.sprintf "shard-dev-%05d" i) ~config
        ?tamper ()
    done;
    fleet
  in
  let signature (r : Fleet.roll_call) =
    ( List.sort compare r.Fleet.clean,
      List.sort compare r.Fleet.tampered,
      r.Fleet.digest_requests,
      r.Fleet.cache_hits,
      r.Fleet.store_hits,
      r.Fleet.hashed,
      r.Fleet.batch_hashed,
      r.Fleet.distinct_blocks )
  in
  let reference, sharded_s =
    wall (fun () -> Fleet.sharded_roll_call (build ()) ?jobs ~shards:2 Mp.default_config)
  in
  let matches shards jobs =
    let r = Fleet.sharded_roll_call (build ()) ~jobs ~shards Mp.default_config in
    Bytes.equal r.Fleet.fleet_root reference.Fleet.fleet_root
    && signature r = signature reference
  in
  let checks = [ matches 1 1; matches 3 2 ] in
  [
    seconds_metric ~name:"fleet_sharded_roll_call_s" sharded_s;
    count_metric ~name:"fleet_shards" reference.Fleet.shards;
    count_metric ~name:"fleet_sharded_tampered"
      (List.length reference.Fleet.tampered);
    count_metric ~name:"fleet_root_checks"
      (List.length (List.filter Fun.id checks));
  ]

(* Million-device roll call, full mode only: wall-clock observations, never
   exact — quick smoke runs must stay cheap, and compare.exe's exact gate
   would otherwise flag them Missing_in_current. The counters at this scale
   are instead guarded by the CI 100k sharded gate (ratool fleet
   --check-jobs) and the sharded-vs-flat property tests. *)
let fleet_million_metrics ?jobs () =
  let devices = 1_000_000 in
  let r = Fleet_roll.run ~devices ~seed:7 ~shards:8 ?jobs () in
  [
    {
      name = "fleet_1m_roll_call_s";
      value = r.Fleet_roll.roll_s;
      unit_ = "s";
      direction = Lower_is_better;
      exact = false;
    };
    {
      name = "fleet_1m_devices_per_s";
      value = float_of_int devices /. r.Fleet_roll.roll_s;
      unit_ = "devices/s";
      direction = Higher_is_better;
      exact = false;
    };
    {
      name = "fleet_1m_provision_s";
      value = r.Fleet_roll.provision_s;
      unit_ = "s";
      direction = Lower_is_better;
      exact = false;
    };
  ]

(* Fleet-chaos convergence under the supervisor, 120 devices (every fault
   kind, 12x). Like fleet_metrics, NOT shrunk in quick mode: every count —
   rounds to convergence, terminal states, detections, remediations,
   attestations, timeouts — is exact and must be bit-identical on any
   host, mode, or job count. *)
let supervisor_metrics ?jobs () =
  let open Ra_supervisor in
  let r, chaos_s = wall (fun () -> Fleet_chaos.run ~devices:120 ~seed:7 ?jobs ()) in
  let rep = r.Fleet_chaos.report in
  [
    seconds_metric ~name:"supervisor_fleet_chaos_s" chaos_s;
    count_metric ~name:"supervisor_rounds" rep.Supervisor.rounds;
    count_metric ~name:"supervisor_converged" (if rep.Supervisor.converged then 1 else 0);
    count_metric ~name:"supervisor_violations" (List.length r.Fleet_chaos.violations);
    count_metric ~name:"supervisor_healthy" (List.length rep.Supervisor.healthy);
    count_metric ~name:"supervisor_quarantined"
      (List.length rep.Supervisor.quarantined);
    count_metric ~name:"supervisor_detections" (List.length rep.Supervisor.detections);
    count_metric ~name:"supervisor_remediated" (List.length rep.Supervisor.remediated);
    count_metric ~name:"supervisor_attestations" rep.Supervisor.attestations;
    count_metric ~name:"supervisor_timeouts" rep.Supervisor.timeouts;
    count_metric ~name:"supervisor_probes_blocked" rep.Supervisor.probes_blocked;
    count_metric ~name:"supervisor_remediation_pushes"
      rep.Supervisor.remediation_pushes;
  ]

(* Repeated self-measurement with a sparse write schedule (5 single-block
   writes across 10 rounds of 64 blocks — under 1%): the digest cache
   should collapse host time to O(changed blocks) while virtual-time
   behaviour stays identical. Like the fleet metrics, the hit/miss counts
   are exact and identical in quick and full mode. *)
let erasmus_metrics () =
  let open Ra_core in
  let run ~digest_cache =
    let device =
      Ra_device.Device.create
        {
          Ra_device.Device.default_config with
          Ra_device.Device.seed = 11;
          blocks = 64;
          block_size = 8192;
          modeled_block_bytes = 8192;
          digest_cache;
        }
    in
    let eng = device.Ra_device.Device.engine in
    let mem = device.Ra_device.Device.memory in
    (* one single-block write between selected rounds (period 10 s) *)
    List.iter
      (fun sec ->
        ignore
          (Ra_sim.Engine.schedule eng ~at:(Ra_sim.Timebase.s sec) (fun _ ->
               let payload = Bytes.make 8192 (Char.chr (sec mod 256)) in
               ignore
                 (Ra_device.Memory.set_block mem ~time:(Ra_sim.Engine.now eng)
                    ~block:(sec mod 64) payload))))
      [ 5; 25; 45; 65; 85 ];
    let era = Erasmus.start device Erasmus.default_config in
    let (), elapsed =
      wall (fun () -> Ra_device.Device.run ~until:(Ra_sim.Timebase.s 95) device)
    in
    Erasmus.stop era;
    (elapsed, device.Ra_device.Device.cache)
  in
  let uncached_s, _ = run ~digest_cache:false in
  let cached_s, cache = run ~digest_cache:true in
  let stats =
    match cache with
    | Some c -> Ra_cache.stats c
    | None -> { Ra_cache.hits = 0; store_hits = 0; misses = 0 }
  in
  [
    seconds_metric ~name:"erasmus_10r_uncached_s" uncached_s;
    seconds_metric ~name:"erasmus_10r_cached_s" cached_s;
    ratio_metric ~name:"erasmus_cached_speedup_x" (uncached_s /. cached_s);
    count_metric ~name:"erasmus_cache_hits" stats.Ra_cache.hits;
    count_metric ~name:"erasmus_cache_misses" stats.Ra_cache.misses;
  ]

(* Journal throughput over the in-memory disk: the record-framing and
   CRC cost without the host's fsync noise. The torn half-record on the
   tail makes every run exercise the truncating scan, and the exact
   counts prove it recovered all 20k records and nothing else. *)
let journal_metrics () =
  let open Ra_journal in
  let events = 20_000 in
  let ev i =
    {
      Event.tag = "edge";
      fields =
        [
          ("dev", Event.S (Printf.sprintf "dev-%05d" (i mod 1000)));
          ("round", Event.I (i / 1000));
          ("from", Event.I (i mod 7));
          ("cause", Event.I (i mod 13));
          ("to", Event.I ((i + 1) mod 7));
        ];
    }
  in
  let store = Disk.Mem.create () in
  let disk = Disk.Mem.disk store in
  let j = Journal.create disk in
  let (), append_s =
    wall (fun () ->
        for i = 0 to events - 1 do
          Journal.append j (ev i);
          if i mod 128 = 127 then Journal.commit j
        done;
        Journal.commit j)
  in
  disk.Disk.append Journal.wal_file (Bytes.of_string "RJ\x00\x00\x00\x2a\x00");
  let recovery, replay_s =
    wall (fun () ->
        match Journal.recover disk with
        | Error e -> failwith ("journal_metrics: " ^ e)
        | Ok r ->
          let v = Journal.verifier r.Journal.events in
          Array.iter (Journal.append v) r.Journal.events;
          (match Journal.verified v with
          | Ok () -> ()
          | Error e -> failwith ("journal_metrics: " ^ e));
          r)
  in
  [
    {
      name = "journal_append_records_s";
      value = float_of_int events /. append_s;
      unit_ = "records/s";
      direction = Higher_is_better;
      exact = false;
    };
    {
      name = "replay_events_s";
      value = float_of_int events /. replay_s;
      unit_ = "events/s";
      direction = Higher_is_better;
      exact = false;
    };
    count_metric ~name:"journal_recovered_events"
      (Array.length recovery.Journal.events);
    count_metric ~name:"journal_torn_tail_truncated"
      (match recovery.Journal.damage with Some _ -> 1 | None -> 0);
  ]

(* Attestation control plane over the simulated network: one seeded
   campaign under the default stream-fault mix with a kill -9 mid-ingest,
   and one fault-free run for the ingest rate. The counters are exact —
   a campaign outcome is a pure function of the seed (property-tested in
   test_server.ml) — so the comparison gate checks them for equality;
   only the reports/s wall metric carries host noise. *)
let server_metrics ?jobs () =
  let module N = Ra_server.Netsim in
  let chaos_config =
    {
      N.default with
      N.devices = 48;
      reports_per_device = 4;
      capacity = 12;
      seed = 7;
      crash_at = Some 60;
    }
  in
  let run config =
    match N.run ?jobs config with
    | Ok o -> o
    | Error e -> failwith ("server_metrics: " ^ e)
  in
  let chaos = run chaos_config in
  let clean_config =
    { chaos_config with N.faults = Ra_faults.Stream_faults.ideal; crash_at = None }
  in
  let clean, clean_s = wall (fun () -> run clean_config) in
  [
    count_metric ~name:"server_accepted" chaos.N.counters.Ra_server.Wire.accepted;
    count_metric ~name:"server_shed" chaos.N.counters.Ra_server.Wire.shed;
    count_metric ~name:"server_recovered"
      chaos.N.counters.Ra_server.Wire.recovered;
    {
      name = "server_reports_s";
      value = float_of_int clean.N.acked /. clean_s;
      unit_ = "reports/s";
      direction = Higher_is_better;
      exact = false;
    };
  ]

let sim_metrics ?(quick = false) ?jobs () =
  let budget = if quick then 0.15 else 1.0 in
  let table1_trials = if quick then 2 else 10 in
  let chaos_trials = if quick then 7 else 21 in
  let game_trials = if quick then 50_000 else 500_000 in
  let _, table1_s =
    wall (fun () -> Table1.compute ?jobs ~trials:table1_trials ~seed:5 ())
  in
  let _, chaos_s = wall (fun () -> Chaos.run ?jobs ~trials:chaos_trials ()) in
  let _, game_s =
    wall (fun () ->
        Smarm_sweep.game_escape_rate ~blocks:64 ~rounds:3 ~trials:game_trials
          ~seed:7)
  in
  let _, detection_s =
    wall (fun () ->
        Runs.detection_rate ?jobs Runs.default_setup ~scheme:Ra_core.Scheme.smart
          ~adversary:
            (Runs.Malicious { behavior = Ra_malware.Malware.Static; block = 40 })
          ~trials:(if quick then 6 else 24))
  in
  [
    engine_events_metric ~budget;
    seconds_metric ~name:"table1_wall_s" table1_s;
    seconds_metric ~name:"chaos_wall_s" chaos_s;
    seconds_metric ~name:"smarm_game_wall_s" game_s;
    seconds_metric ~name:"detection_rate_wall_s" detection_s;
  ]
  @ fleet_metrics ?jobs ()
  @ fleet_sharded_metrics ?jobs ()
  @ (if quick then [] else fleet_million_metrics ?jobs ())
  @ supervisor_metrics ?jobs ()
  @ erasmus_metrics ()
  @ journal_metrics ()
  @ server_metrics ?jobs ()

(* --- JSON emit ----------------------------------------------------------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json { suite; metrics } =
  let metric m =
    Printf.sprintf
      "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\", \
       \"higher_is_better\": %b, \"exact\": %b}"
      (escape_string m.name) m.value (escape_string m.unit_)
      (m.direction = Higher_is_better)
      m.exact
  in
  Printf.sprintf
    "{\n  \"schema\": \"ra-bench/1\",\n  \"suite\": \"%s\",\n  \"metrics\": [\n%s\n  ]\n}\n"
    (escape_string suite)
    (String.concat ",\n" (List.map metric metrics))

let write_file path suite =
  let oc = open_out path in
  output_string oc (to_json suite);
  close_out oc

(* --- JSON parse ---------------------------------------------------------- *)

type json =
  | J_null
  | J_bool of bool
  | J_number of float
  | J_string of string
  | J_array of json list
  | J_object of (string * json) list

exception Parse_error of string

let parse_json text =
  let pos = ref 0 in
  let len = String.length text in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("bad literal, expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= len then fail "unterminated escape";
        let e = text.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char buf e;
          loop ()
        | 'n' ->
          Buffer.add_char buf '\n';
          loop ()
        | 't' ->
          Buffer.add_char buf '\t';
          loop ()
        | 'r' ->
          Buffer.add_char buf '\r';
          loop ()
        | 'b' ->
          Buffer.add_char buf '\b';
          loop ()
        | 'u' ->
          if !pos + 4 > len then fail "short unicode escape";
          let code = int_of_string ("0x" ^ String.sub text !pos 4) in
          pos := !pos + 4;
          (* ASCII-range escapes only: enough for our own emitter's output *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?';
          loop ()
        | _ -> fail "unknown escape")
      | c ->
        Buffer.add_char buf c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char text.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_string (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        J_object []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, value) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        J_object (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        J_array []
      end
      else begin
        let rec items acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        J_array (items [])
      end
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> J_number (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let suite_of_json json =
  let assoc key fields =
    match List.assoc_opt key fields with
    | Some v -> v
    | None -> raise (Parse_error ("missing field " ^ key))
  in
  match json with
  | J_object fields ->
    let suite =
      match assoc "suite" fields with
      | J_string s -> s
      | _ -> raise (Parse_error "suite must be a string")
    in
    let metrics =
      match assoc "metrics" fields with
      | J_array items ->
        List.map
          (function
            | J_object m ->
              let name =
                match assoc "name" m with
                | J_string s -> s
                | _ -> raise (Parse_error "metric name must be a string")
              in
              let value =
                match assoc "value" m with
                | J_number f -> f
                | _ -> raise (Parse_error "metric value must be a number")
              in
              let unit_ =
                match assoc "unit" m with
                | J_string s -> s
                | _ -> raise (Parse_error "metric unit must be a string")
              in
              let direction =
                match assoc "higher_is_better" m with
                | J_bool true -> Higher_is_better
                | J_bool false -> Lower_is_better
                | _ -> raise (Parse_error "higher_is_better must be a bool")
              in
              (* optional for compatibility with pre-exact baselines *)
              let exact =
                match List.assoc_opt "exact" m with
                | Some (J_bool b) -> b
                | Some _ -> raise (Parse_error "exact must be a bool")
                | None -> false
              in
              { name; value; unit_; direction; exact }
            | _ -> raise (Parse_error "metric must be an object"))
          items
      | _ -> raise (Parse_error "metrics must be an array")
    in
    { suite; metrics }
  | _ -> raise (Parse_error "top level must be an object")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  suite_of_json (parse_json s)

(* --- comparison ---------------------------------------------------------- *)

type verdict = Ok_within_tolerance | Regression | Missing_in_current

type comparison = {
  metric : string;
  baseline : float;
  current : float option;
  ratio : float option; (* current / baseline *)
  verdict : verdict;
}

let compare_suites ~tolerance ~baseline ~current =
  List.map
    (fun base ->
      match
        List.find_opt (fun m -> m.name = base.name) current.metrics
      with
      | None ->
        {
          metric = base.name;
          baseline = base.value;
          current = None;
          ratio = None;
          verdict = Missing_in_current;
        }
      | Some cur ->
        let ratio = cur.value /. base.value in
        let regressed =
          if base.exact then cur.value <> base.value
          else
            match base.direction with
            | Higher_is_better -> ratio < 1. -. tolerance
            | Lower_is_better -> ratio > 1. +. tolerance
        in
        {
          metric = base.name;
          baseline = base.value;
          current = Some cur.value;
          ratio = Some ratio;
          verdict = (if regressed then Regression else Ok_within_tolerance);
        })
    baseline.metrics

let render_comparison ~tolerance comparisons =
  let buf = Buffer.create 256 in
  List.iter
    (fun c ->
      match (c.current, c.ratio, c.verdict) with
      | Some cur, Some ratio, verdict ->
        Buffer.add_string buf
          (Printf.sprintf "%-26s baseline %12.4g  current %12.4g  (%+.1f%%)%s\n"
             c.metric c.baseline cur
             ((ratio -. 1.) *. 100.)
             (if verdict = Regression then "  REGRESSION" else ""))
      | _ ->
        Buffer.add_string buf
          (Printf.sprintf "%-26s baseline %12.4g  MISSING in current run\n"
             c.metric c.baseline))
    comparisons;
  let failures =
    List.filter (fun c -> c.verdict <> Ok_within_tolerance) comparisons
  in
  Buffer.add_string buf
    (if failures = [] then
       Printf.sprintf "all %d metrics within %.0f%% of baseline\n"
         (List.length comparisons) (tolerance *. 100.)
     else
       Printf.sprintf "%d of %d metrics regressed beyond %.0f%%\n"
         (List.length failures) (List.length comparisons) (tolerance *. 100.));
  (Buffer.contents buf, failures = [])
