(* Perf-regression toolkit: measure throughput/wall-time metrics, write them
   as BENCH_*.json, and diff a run against a committed baseline. JSON is
   hand-rolled (emitter and a small recursive-descent parser) because the
   build pulls in no JSON dependency. *)

type direction = Higher_is_better | Lower_is_better

type metric = {
  name : string;
  value : float;
  unit_ : string;
  direction : direction;
}

type suite = { suite : string; metrics : metric list }

(* --- measurement -------------------------------------------------------- *)

(* Repeat [f] until [budget] seconds elapse (at least once); returns
   (iterations, elapsed_seconds). *)
let timed_loop ~budget f =
  let t0 = Unix.gettimeofday () in
  let iters = ref 0 in
  let elapsed = ref 0. in
  while !elapsed < budget do
    f ();
    incr iters;
    elapsed := Unix.gettimeofday () -. t0
  done;
  (!iters, !elapsed)

let wall f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let throughput_metric ~name ~bytes ~budget f =
  let iters, elapsed = timed_loop ~budget f in
  {
    name;
    value = float_of_int (iters * bytes) /. elapsed /. 1e6;
    unit_ = "MB/s";
    direction = Higher_is_better;
  }

let seconds_metric ~name value =
  { name; value; unit_ = "s"; direction = Lower_is_better }

(* quick mode trims buffer sizes and timing budgets so `ratool bench` and
   the CI smoke job finish in seconds; the shapes measured are the same *)
let crypto_metrics ?(quick = false) () =
  let budget = if quick then 0.15 else 1.0 in
  let size = (if quick then 1 else 4) * 1024 * 1024 in
  let buffer = Ra_sim.Prng.bytes (Ra_sim.Prng.create ~seed:1) size in
  let hash name digest =
    throughput_metric ~name ~bytes:size ~budget (fun () -> ignore (digest buffer))
  in
  [
    hash "sha256_mb_s" Ra_crypto.Sha256.digest;
    hash "sha512_mb_s" Ra_crypto.Sha512.digest;
    hash "blake2b_mb_s" Ra_crypto.Blake2b.digest;
    hash "blake2s_mb_s" Ra_crypto.Blake2s.digest;
    (let key = Bytes.of_string "bench-key" in
     throughput_metric ~name:"hmac_sha256_mb_s" ~bytes:size ~budget (fun () ->
         ignore (Ra_crypto.Hmac.Sha256.mac ~key buffer)));
  ]

let engine_events_metric ~budget =
  let events_per_iter = 10_000 in
  let iters, elapsed =
    timed_loop ~budget (fun () ->
        let eng = Ra_sim.Engine.create () in
        for i = 1 to events_per_iter do
          ignore (Ra_sim.Engine.schedule eng ~at:i (fun _ -> ()))
        done;
        Ra_sim.Engine.run eng)
  in
  {
    name = "engine_events_s";
    value = float_of_int (iters * events_per_iter) /. elapsed;
    unit_ = "events/s";
    direction = Higher_is_better;
  }

let sim_metrics ?(quick = false) ?jobs () =
  let budget = if quick then 0.15 else 1.0 in
  let table1_trials = if quick then 2 else 10 in
  let chaos_trials = if quick then 7 else 21 in
  let game_trials = if quick then 50_000 else 500_000 in
  let _, table1_s =
    wall (fun () -> Table1.compute ?jobs ~trials:table1_trials ~seed:5 ())
  in
  let _, chaos_s = wall (fun () -> Chaos.run ?jobs ~trials:chaos_trials ()) in
  let _, game_s =
    wall (fun () ->
        Smarm_sweep.game_escape_rate ~blocks:64 ~rounds:3 ~trials:game_trials
          ~seed:7)
  in
  let _, detection_s =
    wall (fun () ->
        Runs.detection_rate ?jobs Runs.default_setup ~scheme:Ra_core.Scheme.smart
          ~adversary:
            (Runs.Malicious { behavior = Ra_malware.Malware.Static; block = 40 })
          ~trials:(if quick then 6 else 24))
  in
  [
    engine_events_metric ~budget;
    seconds_metric ~name:"table1_wall_s" table1_s;
    seconds_metric ~name:"chaos_wall_s" chaos_s;
    seconds_metric ~name:"smarm_game_wall_s" game_s;
    seconds_metric ~name:"detection_rate_wall_s" detection_s;
  ]

(* --- JSON emit ----------------------------------------------------------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json { suite; metrics } =
  let metric m =
    Printf.sprintf
      "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\", \
       \"higher_is_better\": %b}"
      (escape_string m.name) m.value (escape_string m.unit_)
      (m.direction = Higher_is_better)
  in
  Printf.sprintf
    "{\n  \"schema\": \"ra-bench/1\",\n  \"suite\": \"%s\",\n  \"metrics\": [\n%s\n  ]\n}\n"
    (escape_string suite)
    (String.concat ",\n" (List.map metric metrics))

let write_file path suite =
  let oc = open_out path in
  output_string oc (to_json suite);
  close_out oc

(* --- JSON parse ---------------------------------------------------------- *)

type json =
  | J_null
  | J_bool of bool
  | J_number of float
  | J_string of string
  | J_array of json list
  | J_object of (string * json) list

exception Parse_error of string

let parse_json text =
  let pos = ref 0 in
  let len = String.length text in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("bad literal, expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= len then fail "unterminated escape";
        let e = text.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char buf e;
          loop ()
        | 'n' ->
          Buffer.add_char buf '\n';
          loop ()
        | 't' ->
          Buffer.add_char buf '\t';
          loop ()
        | 'r' ->
          Buffer.add_char buf '\r';
          loop ()
        | 'b' ->
          Buffer.add_char buf '\b';
          loop ()
        | 'u' ->
          if !pos + 4 > len then fail "short unicode escape";
          let code = int_of_string ("0x" ^ String.sub text !pos 4) in
          pos := !pos + 4;
          (* ASCII-range escapes only: enough for our own emitter's output *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?';
          loop ()
        | _ -> fail "unknown escape")
      | c ->
        Buffer.add_char buf c;
        loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char text.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_string (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        J_object []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, value) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        J_object (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        J_array []
      end
      else begin
        let rec items acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        J_array (items [])
      end
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> J_number (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let suite_of_json json =
  let assoc key fields =
    match List.assoc_opt key fields with
    | Some v -> v
    | None -> raise (Parse_error ("missing field " ^ key))
  in
  match json with
  | J_object fields ->
    let suite =
      match assoc "suite" fields with
      | J_string s -> s
      | _ -> raise (Parse_error "suite must be a string")
    in
    let metrics =
      match assoc "metrics" fields with
      | J_array items ->
        List.map
          (function
            | J_object m ->
              let name =
                match assoc "name" m with
                | J_string s -> s
                | _ -> raise (Parse_error "metric name must be a string")
              in
              let value =
                match assoc "value" m with
                | J_number f -> f
                | _ -> raise (Parse_error "metric value must be a number")
              in
              let unit_ =
                match assoc "unit" m with
                | J_string s -> s
                | _ -> raise (Parse_error "metric unit must be a string")
              in
              let direction =
                match assoc "higher_is_better" m with
                | J_bool true -> Higher_is_better
                | J_bool false -> Lower_is_better
                | _ -> raise (Parse_error "higher_is_better must be a bool")
              in
              { name; value; unit_; direction }
            | _ -> raise (Parse_error "metric must be an object"))
          items
      | _ -> raise (Parse_error "metrics must be an array")
    in
    { suite; metrics }
  | _ -> raise (Parse_error "top level must be an object")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  suite_of_json (parse_json s)

(* --- comparison ---------------------------------------------------------- *)

type verdict = Ok_within_tolerance | Regression | Missing_in_current

type comparison = {
  metric : string;
  baseline : float;
  current : float option;
  ratio : float option; (* current / baseline *)
  verdict : verdict;
}

let compare_suites ~tolerance ~baseline ~current =
  List.map
    (fun base ->
      match
        List.find_opt (fun m -> m.name = base.name) current.metrics
      with
      | None ->
        {
          metric = base.name;
          baseline = base.value;
          current = None;
          ratio = None;
          verdict = Missing_in_current;
        }
      | Some cur ->
        let ratio = cur.value /. base.value in
        let regressed =
          match base.direction with
          | Higher_is_better -> ratio < 1. -. tolerance
          | Lower_is_better -> ratio > 1. +. tolerance
        in
        {
          metric = base.name;
          baseline = base.value;
          current = Some cur.value;
          ratio = Some ratio;
          verdict = (if regressed then Regression else Ok_within_tolerance);
        })
    baseline.metrics

let render_comparison ~tolerance comparisons =
  let buf = Buffer.create 256 in
  List.iter
    (fun c ->
      match (c.current, c.ratio, c.verdict) with
      | Some cur, Some ratio, verdict ->
        Buffer.add_string buf
          (Printf.sprintf "%-26s baseline %12.4g  current %12.4g  (%+.1f%%)%s\n"
             c.metric c.baseline cur
             ((ratio -. 1.) *. 100.)
             (if verdict = Regression then "  REGRESSION" else ""))
      | _ ->
        Buffer.add_string buf
          (Printf.sprintf "%-26s baseline %12.4g  MISSING in current run\n"
             c.metric c.baseline))
    comparisons;
  let failures =
    List.filter (fun c -> c.verdict <> Ok_within_tolerance) comparisons
  in
  Buffer.add_string buf
    (if failures = [] then
       Printf.sprintf "all %d metrics within %.0f%% of baseline\n"
         (List.length comparisons) (tolerance *. 100.)
     else
       Printf.sprintf "%d of %d metrics regressed beyond %.0f%%\n"
         (List.length failures) (List.length comparisons) (tolerance *. 100.));
  (Buffer.contents buf, failures = [])
