(** The SeED DoS argument (Section 3.3), measured: interactive RA gives a
    network adversary a lever on the prover's CPU — every bogus request
    costs at least its authentication, and a prover that measures first and
    asks questions later is starved outright. SeED listens to nobody, so
    flooding it costs the attacker bandwidth and the prover nothing. *)

open Ra_sim

type mode =
  | Authenticate_then_drop  (** bogus requests cost one auth check *)
  | Measure_on_request  (** naive prover: every request triggers a full MP *)
  | Non_interactive  (** SeED: incoming requests are ignored *)

val mode_name : mode -> string

type result = {
  mode : mode;
  request_rate : float;  (** bogus requests per second *)
  app_max_latency_s : float;
  app_deadline_misses : int;
  attacker_cpu_fraction : float;  (** share of CPU burnt serving the flood *)
}

val run :
  ?seed:int ->
  ?horizon:Timebase.t ->
  mode:mode ->
  rate_per_s:float ->
  unit ->
  result
(** A 1 s / 2 ms critical app runs while the flood lasts. 64 MiB modeled
    memory keeps the naive prover's per-request MP around 0.6 s. *)

val render : ?seed:int -> unit -> string
(** The full sweep: three modes x several request rates. *)

(** {2 Duplicate taxonomy}

    A prover cannot stop the network from handing it the same request
    twice, but it can know why: {!Ra_core.Reliable_protocol} tags requests
    with attempt numbers, separating verifier retransmissions (loss-driven,
    the protocol working as designed) from channel-manufactured duplicates
    (possibly an amplification attempt). Either way the session cache keeps
    the measurement count at one. *)

type duplicate_result = {
  duplicate_rate : float;
  loss_rate : float;
  rp_attempts : int;
  retransmits : int;  (** request copies the verifier re-sent (loss-driven) *)
  channel_dups : int;  (** request copies the channel manufactured *)
  dup_replies : int;  (** reply copies the verifier threw away *)
  rp_measurements : int;
}

val run_duplicates :
  ?seed:int -> duplicate:float -> loss:float -> unit -> duplicate_result

val render_duplicates : ?seed:int -> unit -> string
