open Ra_sim
open Ra_device
open Ra_core

(* One measurement with the app writing into [data_blocks]; returns the
   app's total write-stall and worst latency. *)
let app_stall_probe ~seed ~blocks ~data_blocks ~scheme =
  let device =
    Device.create
      {
        Device.default_config with
        Device.seed = seed;
        blocks;
        block_size = 256;
        modeled_block_bytes = 1024 * 1024 * 1024 / blocks;
        data_blocks;
      }
  in
  let eng = device.Device.engine in
  let app =
    App.start eng device.Device.cpu device.Device.memory
      {
        App.default_config with
        App.data_blocks;
        write_bytes = 32;
        first_activation = Timebase.ms 100;
      }
  in
  let done_ = ref false in
  ignore
    (Engine.schedule eng ~at:(Timebase.ms 1500) (fun _ ->
         Mp.run device
           { Mp.default_config with Mp.scheme }
           ~nonce:(Prng.bytes (Engine.prng eng) 16)
           ~on_complete:(fun _ -> done_ := true)
           ()));
  Engine.run ~until:(Timebase.s 40) eng;
  App.stop app;
  Engine.run ~until:(Timebase.s 55) eng;
  assert !done_;
  let stats = App.latencies app in
  ( Timebase.to_seconds (App.blocked_ns app),
    (if Stats.count stats = 0 then 0. else Stats.max_value stats) )

let lock_granularity ?jobs ?(seed = 9) () =
  (* Each (blocks, scheme) cell builds its own device from [seed]; the
     cells fan out on the pool. *)
  let cells =
    List.concat_map
      (fun blocks ->
        List.map
          (fun scheme -> (blocks, scheme))
          [ Scheme.dec_lock; Scheme.inc_lock; Scheme.all_lock ])
      [ 16; 64; 256 ]
  in
  let rows =
    Ra_parallel.parallel_list_map ?jobs
      (fun (blocks, scheme) ->
        let stall, worst =
          app_stall_probe ~seed ~blocks ~data_blocks:[ blocks - 1 ] ~scheme
        in
        [
          string_of_int blocks;
          scheme.Scheme.name;
          Printf.sprintf "%.2f s" stall;
          Printf.sprintf "%.3f s" worst;
        ])
      cells
  in
  "Ablation — lock granularity (1 GiB attested; app writes the last block)\n"
  ^ Tablefmt.render
      ~header:[ "blocks"; "scheme"; "app write stall"; "worst app latency" ]
      rows

let measurement_order ?jobs ?(seed = 9) () =
  let blocks = 64 in
  let placements =
    [ ("hot data measured first", [ 0; 1; 2; 3 ]); ("hot data measured last", [ 60; 61; 62; 63 ]) ]
  in
  let cells =
    List.concat_map
      (fun placement ->
        List.map (fun scheme -> (placement, scheme)) [ Scheme.dec_lock; Scheme.inc_lock ])
      placements
  in
  let rows =
    Ra_parallel.parallel_list_map ?jobs
      (fun ((label, data_blocks), scheme) ->
        let stall, worst = app_stall_probe ~seed ~blocks ~data_blocks ~scheme in
        [
          scheme.Scheme.name;
          label;
          Printf.sprintf "%.2f s" stall;
          Printf.sprintf "%.3f s" worst;
        ])
      cells
  in
  "Ablation — position of hot data in the (sequential) measurement order\n"
  ^ Tablefmt.render
      ~header:[ "scheme"; "placement"; "app write stall"; "worst app latency" ]
      rows
  ^ "Section 3.1.2: Dec-Lock favours hot blocks first; Inc-Lock favours them last.\n"

let smarm_block_count ?jobs ?(seed = 13) ?(trials = 20000) () =
  let cost = Cost_model.odroid_xu4 in
  let rows =
    Ra_parallel.parallel_list_map ?jobs
      (fun blocks ->
        let escape = Smarm.per_round_escape_probability ~blocks in
        let game = Smarm_sweep.game_escape_rate ~blocks ~rounds:1 ~trials ~seed in
        let boundary_overhead =
          Timebase.to_seconds
            (Timebase.ns
               (blocks * int_of_float cost.Cost_model.context_switch_ns))
        in
        [
          string_of_int blocks;
          Printf.sprintf "%.4f" escape;
          Printf.sprintf "%.4f" game;
          Printf.sprintf "%.4f s" boundary_overhead;
        ])
      [ 4; 16; 64; 256; 1024 ]
  in
  Printf.sprintf
    "Ablation — SMARM block count B (64 MiB attested, %d game trials)\n" trials
  ^ Tablefmt.render
      ~header:
        [ "B"; "per-round escape (theory)"; "per-round escape (game)"; "boundary overhead" ]
      rows
  ^ "More blocks: escape tends to e^-1 from below, interruption latency\n\
     shrinks, but per-round boundary overhead grows.\n"

let zero_data_countermeasure ?(seed = 21) () =
  let data_block = 30 in
  let run scheme =
    Runs.run
      { Runs.default_setup with Runs.seed; data_blocks = [ data_block ] }
      ~scheme
      ~adversary:
        (Runs.Malicious { behavior = Ra_malware.Malware.Static; block = data_block })
  in
  let describe label outcome =
    [
      label;
      (if outcome.Runs.detected then "detected" else "escapes detection");
      (if outcome.Runs.malware_present_after then "still resident" else "destroyed");
    ]
  in
  let plain = run Scheme.no_lock in
  let zeroed = run (Scheme.with_zero_data Scheme.no_lock) in
  "Ablation — malware hiding in a volatile data region (Section 2.3)\n"
  ^ Tablefmt.render
      ~header:[ "configuration"; "verifier verdict"; "malware fate" ]
      [
        describe "data copied to Vrf verbatim" plain;
        describe "data zeroed before measuring" zeroed;
      ]

let platform_contrast () =
  let mib = 1024 * 1024 in
  let platforms = [ Cost_model.odroid_xu4; Cost_model.low_end_mcu ] in
  let rows =
    List.concat_map
      (fun cost ->
        List.map
          (fun (label, bytes, signature) ->
            let t =
              Cost_model.measurement_time cost Ra_crypto.Algo.SHA_256 ?signature
                ~bytes ()
            in
            [ cost.Cost_model.platform; label; Timebase.to_string t ])
          [
            ("hash 1 MB", mib, None);
            ("hash 1 MB + ECDSA-256", mib, Some Cost_model.ECDSA_256);
            ("hash 1 MB + RSA-2048", mib, Some Cost_model.RSA_2048);
            ("hash 64 MB", 64 * mib, None);
          ])
      platforms
  in
  "Ablation — platform contrast (atomic MP duration = worst-case app blackout)\n"
  ^ Tablefmt.render ~header:[ "platform"; "operation"; "MP duration" ] rows

let hybrid_schemes ?jobs ?(seed = 17) ?(trials = 30) () =
  let hybrid name locking order =
    { Scheme.name; atomic = false; locking; order; zero_data = false }
  in
  let schemes =
    [
      Scheme.dec_lock;
      Scheme.inc_lock;
      Scheme.smarm;
      hybrid "SMARM+Dec-Lock" Scheme.Dec_lock Scheme.Shuffled;
      hybrid "SMARM+Inc-Lock" Scheme.Inc_lock Scheme.Shuffled;
      hybrid "SMARM+Cpy-Lock" Scheme.Cpy_lock Scheme.Shuffled;
    ]
  in
  let setup = { Runs.default_setup with Runs.seed } in
  let rate scheme behavior =
    let r, _ =
      Runs.detection_rate ?jobs setup ~scheme
        ~adversary:(Runs.Malicious { behavior; block = 40 })
        ~trials
    in
    r
  in
  let rows =
    Ra_parallel.parallel_list_map ?jobs
      (fun scheme ->
        let rover = rate scheme (Ra_malware.Malware.Self_relocating Ra_malware.Malware.Uniform_hop) in
        let evasive = rate scheme Ra_malware.Malware.Evasive_erase in
        let stall, _ = app_stall_probe ~seed ~blocks:64 ~data_blocks:[ 60; 61; 62; 63 ] ~scheme in
        [
          scheme.Scheme.name;
          Printf.sprintf "%.2f" rover;
          Printf.sprintf "%.2f" evasive;
          Printf.sprintf "%.2f s" stall;
        ])
      schemes
  in
  Printf.sprintf
    "Ablation — hybrid schemes: traversal order x locking (%d trials)\n" trials
  ^ Tablefmt.render
      ~header:
        [ "scheme"; "rover detection"; "evasive detection"; "app write stall" ]
      rows
  ^ "Shuffling closes the rover's order oracle; locking closes the eraser's\n\
     window; Cpy-Lock does it without stalling writes.\n"
