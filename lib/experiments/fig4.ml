open Ra_sim
open Ra_device
open Ra_core

type result = {
  scheme : string;
  t_start : Timebase.t;
  t_end : Timebase.t;
  t_release : Timebase.t;
  consistent_at_start : bool;
  consistent_at_end : bool;
  consistent_at_release : bool;
  consistent_throughout_measure : bool;
  consistent_throughout_release : bool;
  write_b_landed_in_window : bool;
  profile : (Timebase.t * bool) list;
}

let ext_delay = Timebase.s 2

let schemes =
  [
    Scheme.smart;
    Scheme.no_lock;
    Scheme.all_lock;
    Scheme.all_lock_ext ext_delay;
    Scheme.dec_lock;
    Scheme.inc_lock;
    Scheme.inc_lock_ext ext_delay;
    Scheme.cpy_lock;
  ]

(* 8 blocks of ~0.5 s each: a 4 s measurement window with readable probes. *)
let blocks = 8
let block_real_bytes = 256
let modeled_block_bytes = 56 * 1024 * 1024
let mp_start = Timebase.s 1

(* ralint: allow P2 — constant write payload; Memory.set_block copies it
   into the block, so sharing across trials/domains is read-only. *)
let payload = Bytes.of_string "fig4-injected-write-payload!"

(* A writer task: attempts the write as a 1 us high-priority CPU job (so
   SMART's atomicity defers it past te, and the journal entry lands strictly
   after the measurement window); if the block is locked, it resumes 1 us
   after the block is next released — the stalled critical task of
   Section 3.1. *)
let inject device ~at ~block =
  let eng = device.Device.engine in
  let mem = device.Device.memory in
  let rec attempt () =
    match
      Memory.write mem ~time:(Engine.now eng) ~block ~offset:0 payload
    with
    | Ok () -> Engine.recordf eng ~tag:"writer" "write to block %d applied" block
    | Error (Memory.Locked _) ->
      Engine.recordf eng ~tag:"writer" "write to block %d stalled" block;
      let armed = ref true in
      Memory.subscribe_unlock mem (fun unlocked ->
          if !armed && unlocked = block then begin
            armed := false;
            ignore (Engine.schedule_after eng ~delay:(Timebase.us 1) (fun _ -> attempt ()))
          end)
  in
  ignore
    (Engine.schedule eng ~at (fun _ ->
         ignore
           (Cpu.submit device.Device.cpu ~name:"writer" ~priority:9
              ~duration:(Timebase.us 1) ~on_complete:attempt ())))

let run_scheme ?(seed = 7) scheme =
  let device =
    Device.create
      {
        Device.default_config with
        Device.seed;
        blocks;
        block_size = block_real_bytes;
        modeled_block_bytes;
      }
  in
  let mp_config = { Mp.default_config with Mp.scheme } in
  let report = ref None in
  (* Probe writes: A before ts; B twice inside the window — early (before
     block 5 is measured) and late (after block 2 is measured) so No-Lock is
     consistent nowhere; C between te and tr; D after tr. *)
  inject device ~at:(Timebase.ms 500) ~block:1;
  inject device ~at:(Timebase.add mp_start (Timebase.ms 1200)) ~block:5;
  inject device ~at:(Timebase.add mp_start (Timebase.ms 1700)) ~block:2;
  let te_estimate = Timebase.add mp_start (Timebase.ms (4 * 1000 + 50)) in
  inject device ~at:(Timebase.add te_estimate (Timebase.ms 500)) ~block:3;
  inject device
    ~at:(Timebase.add te_estimate (Timebase.add ext_delay (Timebase.s 1)))
    ~block:4;
  ignore
    (Engine.schedule device.Device.engine ~at:mp_start (fun eng ->
         Mp.run device mp_config
           ~nonce:(Prng.bytes (Engine.prng eng) 16)
           ~on_complete:(fun r -> report := Some r)
           ()));
  Engine.run device.Device.engine;
  match !report with
  | None -> failwith "Fig4.run_scheme: no report"
  | Some r ->
    let ts = r.Report.t_start
    and te = r.Report.t_end
    and tr = r.Report.t_release in
    let holds time = Consistency.holds_at device r ~time in
    {
      scheme = scheme.Scheme.name;
      t_start = ts;
      t_end = te;
      t_release = tr;
      consistent_at_start = holds ts;
      consistent_at_end = holds te;
      consistent_at_release = holds tr;
      consistent_throughout_measure =
        Consistency.consistent_throughout device r ~from_:ts ~until:te;
      consistent_throughout_release =
        Consistency.consistent_throughout device r ~from_:ts ~until:tr;
      write_b_landed_in_window =
        Memory.writes_between device.Device.memory ts te <> [];
      profile =
        Consistency.consistency_profile device r ~samples:64 ~margin:(Timebase.s 1);
    }

let mark b = if b then "yes" else "no"

let render ?seed () =
  let results = List.map (fun s -> run_scheme ?seed s) schemes in
  let rows =
    List.map
      (fun r ->
        [
          r.scheme;
          mark r.consistent_at_start;
          mark r.consistent_at_end;
          mark r.consistent_at_release;
          mark r.consistent_throughout_measure;
          mark r.consistent_throughout_release;
          mark r.write_b_landed_in_window;
        ])
      results
  in
  let table =
    Tablefmt.render
      ~header:
        [
          "scheme";
          "cons@ts";
          "cons@te";
          "cons@tr";
          "cons[ts,te]";
          "cons[ts,tr]";
          "write in window";
        ]
      rows
  in
  let strips =
    List.map
      (fun r ->
        Timeline.render_profile
          ~label:(Printf.sprintf "%s (# consistent, . not)" r.scheme)
          r.profile)
      results
  in
  "Fig. 4 / E4 — temporal consistency under injected writes\n" ^ table ^ "\n"
  ^ String.concat "\n" strips

type expectation = { scheme : string; at_start : bool; at_end : bool; throughout : bool }

let expected =
  [
    { scheme = "SMART"; at_start = true; at_end = true; throughout = true };
    { scheme = "No-Lock"; at_start = false; at_end = false; throughout = false };
    { scheme = "All-Lock"; at_start = true; at_end = true; throughout = true };
    { scheme = "All-Lock-Ext"; at_start = true; at_end = true; throughout = true };
    { scheme = "Dec-Lock"; at_start = true; at_end = false; throughout = false };
    { scheme = "Inc-Lock"; at_start = false; at_end = true; throughout = false };
    { scheme = "Inc-Lock-Ext"; at_start = false; at_end = true; throughout = false };
    { scheme = "Cpy-Lock"; at_start = true; at_end = true; throughout = true };
  ]
