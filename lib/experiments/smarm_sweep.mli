(** Experiment E5 — the SMARM escape-probability analysis of Section 3.2.

    Two estimators cross-validate the theory: a fast abstract Monte Carlo of
    the relocation game (millions of trials), and the full device simulation
    where a real roving payload is hunted by real shuffled measurements. *)

val game_escape_rate :
  blocks:int -> rounds:int -> trials:int -> seed:int -> float
(** Abstract game: a secret permutation per round; the adversary hops to a
    uniform block before every block measurement; caught when its block is
    the one measured. Exactly the model behind [(1 - 1/B)^B]. *)

val simulated_escape_rate :
  ?jobs:int ->
  blocks:int ->
  rounds:int ->
  trials:int ->
  seed:int ->
  unit ->
  float * (float * float)
(** Full-stack estimate via {!Runs.run} with a [Uniform_hop] adversary:
    escape = every round's report verified clean. Includes a 95% Wilson
    interval. Trials fan out on the {!Ra_parallel} pool. *)

val sweep_rounds :
  ?jobs:int ->
  blocks:int ->
  max_rounds:int ->
  game_trials:int ->
  seed:int ->
  unit ->
  string
(** Table: rounds vs theoretical escape, abstract-game estimate, and the
    e^-k approximation; plus the rounds needed for the paper's 1e-6 target.
    Sweep points run in parallel, each replaying the game from [seed]. *)

val sweep_blocks :
  ?jobs:int -> blocks_list:int list -> trials:int -> seed:int -> unit -> string
(** Per-round escape vs block count B, theory against the abstract game —
    showing convergence to e^-1 ~ 0.3679. *)
