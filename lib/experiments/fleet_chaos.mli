(** Fleet-scale chaos: the {!Ra_supervisor.Supervisor} closed loop —
    detection, circuit breaking, quarantine, remediation, re-admission —
    under a deterministic schedule of crash, partition, corruption and
    malware faults, with convergence invariants asserted over the whole
    fleet.

    Device [i] is assigned its fault kind by [i mod 10] (four control
    devices, one lossy, one infected, one healing and one permanent
    partition, one crash loop, one crash burst per decade), so any fleet
    size exercises every kind and the expected terminal state of every
    device is known in advance. The invariants checked:

    - the fleet converges (no livelock) within the round budget;
    - every device ends [Healthy] or [Quarantined] with a recorded reason;
    - every infected device is detected within the QoA bound
      ({!qoa_bound_rounds} supervision rounds), remediated and re-admitted;
    - no benign device is ever detected as tampered;
    - every recorded health transition is a declared edge;

    and the supervisor's [counter_digest] is bit-identical for any [jobs]
    value (checked by the caller — see [ratool fleet-chaos --check-jobs]
    and [test/test_supervisor.ml]). *)

type kind =
  | Control
  | Lossy
  | Infected
  | Partition_heals
  | Partition_forever
  | Crash_loop
  | Crash_burst

val kind_of_index : int -> kind
(** The deterministic fault schedule: [i mod 10]. *)

val kind_to_string : kind -> string

val qoa_bound_rounds : int
(** Detection deadline for an infected device, in supervision rounds. *)

type result = {
  devices : int;
  seed : int;
  jobs : int;
  report : Ra_supervisor.Supervisor.report;
  kinds : (Ra_core.Fleet.device_id * kind) list;
  violations : string list;  (** empty iff every invariant held *)
}

val run :
  ?devices:int -> ?seed:int -> ?jobs:int -> ?max_rounds:int -> unit -> result
(** Defaults: 200 devices, seed 7, jobs 1, 20 rounds. *)

val render : result -> string
(** Multi-line human-readable summary (convergence, terminal states,
    transition counts, digest, violations). *)
