(** Fleet-scale chaos: the {!Ra_supervisor.Supervisor} closed loop —
    detection, circuit breaking, quarantine, remediation, re-admission —
    under a deterministic schedule of crash, partition, corruption and
    malware faults, with convergence invariants asserted over the whole
    fleet.

    Device [i] is assigned its fault kind by [i mod 10] (four control
    devices, one lossy, one infected, one healing and one permanent
    partition, one crash loop, one crash burst per decade), so any fleet
    size exercises every kind and the expected terminal state of every
    device is known in advance. The invariants checked:

    - the fleet converges (no livelock) within the round budget;
    - every device ends [Healthy] or [Quarantined] with a recorded reason;
    - every infected device is detected within the QoA bound
      ({!qoa_bound_rounds} supervision rounds), remediated and re-admitted;
    - no benign device is ever detected as tampered;
    - every recorded health transition is a declared edge;

    and the supervisor's [counter_digest] is bit-identical for any [jobs]
    value (checked by the caller — see [ratool fleet-chaos --check-jobs]
    and [test/test_supervisor.ml]). *)

type kind =
  | Control
  | Lossy
  | Infected
  | Partition_heals
  | Partition_forever
  | Crash_loop
  | Crash_burst

val kind_of_index : int -> kind
(** The deterministic fault schedule: [i mod 10]. *)

val kind_to_string : kind -> string

val qoa_bound_rounds : int
(** Detection deadline for an infected device, in supervision rounds. *)

type result = {
  devices : int;
  seed : int;
  jobs : int;
  report : Ra_supervisor.Supervisor.report;
  kinds : (Ra_core.Fleet.device_id * kind) list;
  violations : string list;  (** empty iff every invariant held *)
}

val run :
  ?devices:int ->
  ?seed:int ->
  ?jobs:int ->
  ?shards:int ->
  ?max_rounds:int ->
  ?journal:Ra_journal.Journal.t ->
  unit ->
  result
(** Defaults: 200 devices, seed 7, jobs 1, 20 rounds. [shards] chunks
    each round's parallel execute phase (see
    {!Ra_supervisor.Supervisor.round}); results are identical for any
    value. With [journal], the
    campaign is recorded: a "campaign" header (the three numbers that
    rebuild the world deterministically), every supervisor record (see
    {!Ra_supervisor.Supervisor.create}), and a "campaign-end" carrying
    the counter digest. *)

(** {1 Crash / resume / replay}

    The campaign world is a pure function of [(devices, seed,
    max_rounds)], so a journal is a complete crash artifact: anyone can
    rebuild the world, re-execute the recorded prefix and compare every
    record. *)

val record_killed :
  disk:Ra_journal.Disk.t ->
  ?snapshot_every:int ->
  ?devices:int ->
  ?seed:int ->
  ?jobs:int ->
  ?shards:int ->
  ?max_rounds:int ->
  kill_at_round:int ->
  unit ->
  bool
(** Record a campaign into a fresh journal but kill the verifier after
    [kill_at_round] completed rounds, leaving a torn half-record on the
    WAL tail (the crash instant). Returns [true] if the kill happened;
    [false] means the campaign converged first and the journal is
    complete. *)

val resume :
  disk:Ra_journal.Disk.t ->
  ?jobs:int ->
  ?shards:int ->
  unit ->
  (result, string) Stdlib.result
(** Recover a killed campaign and finish it: re-execute the journaled
    prefix under a verify-mode journal (every re-emitted record is
    byte-compared against the recording), independently reconstruct the
    supervisor state from snapshot + deltas, require both to be
    [Bytes.equal], load it, truncate the WAL to the last committed round
    boundary and supervise to convergence while extending the same
    journal. The result's digest is bit-identical to an unkilled run of
    the same campaign, for any [jobs]. *)

val replay :
  disk:Ra_journal.Disk.t ->
  ?jobs:int ->
  ?shards:int ->
  unit ->
  (result, string) Stdlib.result
(** Re-run a complete recorded campaign bit-identically: every record,
    including the final digest, is verified against the journal, and the
    snapshot/delta reconstruction is cross-checked against the executed
    state. [Error] on any divergence. *)

val render : result -> string
(** Multi-line human-readable summary (convergence, terminal states,
    transition counts, digest, violations). *)
