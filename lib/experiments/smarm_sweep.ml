open Ra_sim
open Ra_core

(* One round of the abstract game: the adversary survives if it is never
   sitting in the block being measured. Positions and the secret permutation
   are both uniform, so each of the B checks catches it with probability
   1/B. *)
let play_round rng ~blocks =
  let order = Prng.permutation rng blocks in
  let rec step i =
    if i >= blocks then true
    else begin
      let position = Prng.int rng ~bound:blocks in
      if position = order.(i) then false else step (i + 1)
    end
  in
  step 0

let game_escape_rate ~blocks ~rounds ~trials ~seed =
  let rng = Prng.create ~seed in
  let escaped = ref 0 in
  for _ = 1 to trials do
    let rec rounds_left k = k = 0 || (play_round rng ~blocks && rounds_left (k - 1)) in
    if rounds_left rounds then incr escaped
  done;
  float_of_int !escaped /. float_of_int trials

let simulated_escape_rate ?jobs ~blocks ~rounds ~trials ~seed () =
  let setup =
    {
      Runs.default_setup with
      Runs.blocks;
      block_size = 64;
      modeled_block_bytes = 1024 * 1024;
      seed;
      rounds;
    }
  in
  let adversary =
    Runs.Malicious
      {
        behavior = Ra_malware.Malware.Self_relocating Ra_malware.Malware.Uniform_hop;
        block = blocks / 2;
      }
  in
  let rate, interval =
    Runs.detection_rate ?jobs setup ~scheme:Scheme.smarm ~adversary ~trials
  in
  let lo, hi = interval in
  (1. -. rate, (1. -. hi, 1. -. lo))

let sweep_rounds ?jobs ~blocks ~max_rounds ~game_trials ~seed () =
  (* Each sweep point replays the game from [seed], so the rows are
     independent and fan out on the pool. *)
  let rows =
    Ra_parallel.parallel_list_map ?jobs
      (fun k ->
        let theory = Smarm.escape_probability ~blocks ~rounds:k in
        let game = game_escape_rate ~blocks ~rounds:k ~trials:game_trials ~seed in
        [
          string_of_int k;
          Printf.sprintf "%.3e" theory;
          Printf.sprintf "%.3e" game;
          Printf.sprintf "%.3e" (exp (-.float_of_int k));
        ])
      (List.init max_rounds (fun i -> i + 1))
  in
  let target = 1e-6 in
  Tablefmt.render
    ~header:[ "rounds"; "theory (1-1/B)^Bk"; "abstract game"; "e^-k" ]
    rows
  ^ Printf.sprintf "rounds for escape < %.0e with B=%d: %d (paper: ~13)\n" target
      blocks
      (Smarm.rounds_for_target ~blocks ~target)

let sweep_blocks ?jobs ~blocks_list ~trials ~seed () =
  let rows =
    Ra_parallel.parallel_list_map ?jobs
      (fun blocks ->
        [
          string_of_int blocks;
          Printf.sprintf "%.4f" (Smarm.per_round_escape_probability ~blocks);
          Printf.sprintf "%.4f" (game_escape_rate ~blocks ~rounds:1 ~trials ~seed);
        ])
      blocks_list
  in
  Tablefmt.render ~header:[ "B (blocks)"; "theory (1-1/B)^B"; "abstract game" ] rows
  ^ Printf.sprintf "limit e^-1 = %.4f\n" (exp (-1.))
