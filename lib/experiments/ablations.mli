(** Ablations over the design choices DESIGN.md calls out. *)

val lock_granularity : ?jobs:int -> ?seed:int -> unit -> string
(** Block-count sweep (coarser vs finer locking) vs the application's write
    stall under Dec-Lock and Inc-Lock: finer granularity frees hot blocks
    sooner. *)

val measurement_order : ?jobs:int -> ?seed:int -> unit -> string
(** Where the application's hot data blocks sit in the (sequential)
    measurement order: Dec-Lock wants them measured first, Inc-Lock last —
    the ordering advice of Section 3.1.2. *)

val smarm_block_count : ?jobs:int -> ?seed:int -> ?trials:int -> unit -> string
(** SMARM per-round escape probability and per-round overhead as the block
    count B varies. *)

val zero_data_countermeasure : ?seed:int -> unit -> string
(** Malware hiding inside a volatile data region (whose contents are
    shipped verbatim to Vrf) escapes detection — unless the prover zeroes
    data regions before measuring (Section 2.3). *)

val platform_contrast : unit -> string
(** The Section 2.5 tension on a low-end MCU instead of the ODROID: MP
    durations explode, making atomic attestation untenable. *)

val hybrid_schemes : ?jobs:int -> ?seed:int -> ?trials:int -> unit -> string
(** The design space is a cross product the paper's Table 1 only samples:
    traversal order (sequential or shuffled) x locking. Measures detection
    of the uniform rover and the evasive eraser plus the app write stall
    for the hybrids — e.g. shuffled Dec-Lock detects both adversaries in a
    single interruptible round, paying Dec-Lock's availability price. *)
