(** Perf-regression toolkit behind [BENCH_crypto.json] / [BENCH_sim.json]:
    quick throughput and wall-time metrics, a dependency-free JSON round
    trip, and baseline comparison with a tolerance gate.

    The committed baselines are measured on one machine and compared on
    another in CI, so the compare tolerance is the knob that separates
    "regression" from "different host" — see [bench/compare.ml]. *)

type direction = Higher_is_better | Lower_is_better

type metric = {
  name : string;
  value : float;
  unit_ : string;
  direction : direction;
}

type suite = { suite : string; metrics : metric list }

val crypto_metrics : ?quick:bool -> unit -> metric list
(** MB/s of the four hashes plus HMAC-SHA-256 over a pseudo-random buffer.
    [quick] shrinks the buffer and timing budget for smoke runs. *)

val sim_metrics : ?quick:bool -> ?jobs:int -> unit -> metric list
(** Engine events/s plus wall-times of the Table 1, chaos, SMARM-game and
    detection-rate drivers ([jobs] is forwarded to the parallel ports). *)

val to_json : suite -> string

val write_file : string -> suite -> unit

exception Parse_error of string

val read_file : string -> suite
(** Parse a file written by {!write_file}. Raises {!Parse_error} (or
    [Sys_error]) on malformed input. *)

type verdict = Ok_within_tolerance | Regression | Missing_in_current

type comparison = {
  metric : string;
  baseline : float;
  current : float option;
  ratio : float option;  (** current / baseline *)
  verdict : verdict;
}

val compare_suites :
  tolerance:float -> baseline:suite -> current:suite -> comparison list
(** One entry per baseline metric. A metric regresses when it moves against
    its direction by more than [tolerance] (e.g. 0.2 = 20%). Metrics only
    present in the current run are ignored; metrics missing from the
    current run are verdicted {!Missing_in_current}. *)

val render_comparison :
  tolerance:float -> comparison list -> string * bool
(** Human-readable table plus [true] iff every verdict is
    {!Ok_within_tolerance}. *)
