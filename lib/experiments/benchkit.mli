(** Perf-regression toolkit behind [BENCH_crypto.json] / [BENCH_sim.json]:
    quick throughput and wall-time metrics, a dependency-free JSON round
    trip, and baseline comparison with a tolerance gate.

    The committed baselines are measured on one machine and compared on
    another in CI, so the compare tolerance is the knob that separates
    "regression" from "different host" — see [bench/compare.ml]. *)

type direction = Higher_is_better | Lower_is_better

type metric = {
  name : string;
  value : float;
  unit_ : string;
  direction : direction;
  exact : bool;
      (** deterministic count (events/bytes/hits): must reproduce
          bit-for-bit on any host, so comparison checks equality and
          ignores the tolerance *)
}

type suite = { suite : string; metrics : metric list }

val wall : (unit -> 'a) -> 'a * float
(** Result of the thunk and its wall-clock seconds. *)

val crypto_metrics : ?quick:bool -> unit -> metric list
(** MB/s of the four hashes plus HMAC-SHA-256 over a pseudo-random buffer.
    [quick] shrinks the buffer and timing budget for smoke runs. *)

val sim_metrics : ?quick:bool -> ?jobs:int -> unit -> metric list
(** Engine events/s plus wall-times of the Table 1, chaos, SMARM-game and
    detection-rate drivers ([jobs] is forwarded to the parallel ports),
    followed by {!fleet_metrics}, {!fleet_sharded_metrics},
    {!fleet_million_metrics} (full mode only), {!supervisor_metrics},
    {!erasmus_metrics} and {!journal_metrics}. *)

val fleet_metrics : ?jobs:int -> unit -> metric list
(** 1000-device shared-firmware roll call: cold wall time plus exact
    verdict and cache counters, then a second {e warm} roll call over the
    unchanged fleet whose memo hits back the [fleet_cache_hits] exact
    metric (zero on a cold pass by construction; a real gate on the warm
    one). Same size in quick and full mode so the exact metrics reproduce
    everywhere. *)

val fleet_sharded_metrics : ?jobs:int -> unit -> metric list
(** Sharded roll call over a 2.5-segment virtual roster: wall time, exact
    shard/verdict counts, and [fleet_root_checks] — re-runs at other
    (shards, jobs) points whose fleet Merkle root and counters matched the
    reference, gated exactly. Same size in quick and full mode. *)

val fleet_million_metrics : ?jobs:int -> unit -> metric list
(** Million-device sharded roll call via {!Fleet_roll}: wall-clock only
    (roll seconds, devices/s, provision seconds), never exact — quick
    smoke runs skip it, and exact counters at this scale are covered by
    the CI [ratool fleet --check-jobs] gate instead. *)

val supervisor_metrics : ?jobs:int -> unit -> metric list
(** 120-device fleet-chaos convergence under the health supervisor: wall
    time plus exact convergence counters (rounds, terminal states,
    detections, remediations, session totals). Same size in quick and
    full mode so the exact metrics reproduce everywhere. *)

val erasmus_metrics : unit -> metric list
(** ERASMUS, 10 self-measurement rounds with <1% of blocks written
    between rounds, with the digest cache off and on: wall times, the
    cached speedup, and exact hit/miss counts. *)

val journal_metrics : unit -> metric list
(** Write-ahead journal throughput over the in-memory disk: append+commit
    records/s, replay (recover + verify every record) events/s, plus exact
    recovered-record and torn-tail-detection counts — every run leaves a
    torn half-record on the WAL tail so the truncating scan is always
    exercised. Same size in quick and full mode so the exact metrics
    reproduce everywhere. *)

val to_json : suite -> string

val write_file : string -> suite -> unit

val escape_string : string -> string
(** JSON string-body escaping, shared with every other tool that emits
    JSON in this repo (ralint reports and baselines among them). *)

type json =
  | J_null
  | J_bool of bool
  | J_number of float
  | J_string of string
  | J_array of json list
  | J_object of (string * json) list

exception Parse_error of string

val parse_json : string -> json
(** The dependency-free recursive-descent parser behind {!read_file},
    exposed for the other JSON files in the repo (e.g. ralint's
    [LINT_BASELINE.json]). Raises {!Parse_error} on malformed input. *)

val read_file : string -> suite
(** Parse a file written by {!write_file}. Raises {!Parse_error} (or
    [Sys_error]) on malformed input. *)

type verdict = Ok_within_tolerance | Regression | Missing_in_current

type comparison = {
  metric : string;
  baseline : float;
  current : float option;
  ratio : float option;  (** current / baseline *)
  verdict : verdict;
}

val compare_suites :
  tolerance:float -> baseline:suite -> current:suite -> comparison list
(** One entry per baseline metric. A metric regresses when it moves against
    its direction by more than [tolerance] (e.g. 0.2 = 20%). Metrics only
    present in the current run are ignored; metrics missing from the
    current run are verdicted {!Missing_in_current}. *)

val render_comparison :
  tolerance:float -> comparison list -> string * bool
(** Human-readable table plus [true] iff every verdict is
    {!Ok_within_tolerance}. *)
