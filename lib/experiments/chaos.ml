open Ra_sim
open Ra_device
open Ra_core
open Ra_faults

(* Chaos harness: every scheme family runs under randomized fault plans
   (drawn deterministically from the seed), and each trial asserts the
   invariants that make faults survivable rather than fatal:

   - a benign device is never reported Tampered, no matter what the channel
     does to the traffic (corruption is caught at the frame check, not
     misread as malware);
   - the safety-critical application still meets its fire-alarm deadline;
   - after a partition heals or the device reboots, attestation completes;
   - a reboot never lets a stale pre-crash report satisfy a verifier
     (re-measurement count is bounded by crash count, and crash trials
     still end Clean). *)

type trial_outcome = {
  trial : int;
  scheme : string;
  profile : string;
  plan : string;
  completed_s : float option;
  violations : string list;
}

type summary = {
  outcomes : trial_outcome list;
  total : int;
  failed : int;
  violations : string list;
  baselines : (string * float) list;
}

let horizon = Timebase.s 60
let fire_at = Timebase.s 45

let mk_device ~seed ~modeled_block_bytes =
  Device.create
    {
      Device.default_config with
      Device.seed;
      block_size = 256;
      modeled_block_bytes;
    }

(* Retry budget sized for the harness's fault caps: worst case (35% loss and
   30% corruption both ways) a request-reply exchange succeeds with
   probability ~0.21, so 40 attempts leave a vanishing give-up probability
   even after a partition window burns a handful of them. *)
let rp_config ~scheme ~channel =
  {
    Reliable_protocol.default_config with
    Reliable_protocol.mp = { Mp.default_config with Mp.scheme };
    channel;
    retry_timeout = Timebase.s 2;
    max_attempts = 40;
    backoff = 1.6;
    backoff_jitter = 0.1;
    max_timeout = Timebase.s 6;
  }

(* --- on-demand schemes under Reliable_protocol -------------------------- *)

let run_reliable ~trial_seed ~scheme ~scheme_name ~profile rng =
  let plan = Faults.random_plan rng ~horizon profile in
  let device = mk_device ~seed:trial_seed ~modeled_block_bytes:(1024 * 1024) in
  let eng = device.Device.engine in
  let verifier = Verifier.of_device device in
  Faults.install device plan;
  let app =
    App.start eng device.Device.cpu device.Device.memory
      { App.default_config with App.first_activation = Timebase.ms 100 }
  in
  App.declare_fire app ~at:fire_at;
  let result = ref None in
  Reliable_protocol.run device verifier
    (rp_config ~scheme ~channel:plan.Faults.channel)
    ~on_done:(fun r -> result := Some r)
    ();
  Engine.run ~until:horizon eng;
  App.stop app;
  Engine.run ~until:(Timebase.s 300) eng;
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let completed_s = ref None in
  (match !result with
  | None -> fail "session never reported a result"
  | Some r ->
    (match r.Reliable_protocol.verdict with
    | Some Verifier.Tampered -> fail "benign device reported Tampered"
    | Some Verifier.Clean ->
      completed_s :=
        Option.map Timebase.to_seconds r.Reliable_protocol.completed_at
    | None ->
      fail "gave up after %d attempts (%d frames corrupted)"
        r.Reliable_protocol.attempts r.Reliable_protocol.corrupted_dropped);
    let crashes = Device.crash_count device in
    if r.Reliable_protocol.measurements_run > crashes + 1 then
      fail "ran %d measurements for one session (%d crashes)"
        r.Reliable_protocol.measurements_run crashes;
    (match (profile, r.Reliable_protocol.completed_at, plan.Faults.crash_at) with
    | Faults.With_crash, Some at, Some crash_at when at > crash_at ->
      (* completed after the reboot: must have re-measured, the pre-crash
         cache is gone *)
      if r.Reliable_protocol.measurements_run < 1 then
        fail "post-crash completion without any measurement"
    | _ -> ()));
  (match App.alarm_latency app with
  | None -> fail "fire alarm never sounded"
  | Some l ->
    if l > Timebase.s 2 then
      fail "fire alarm took %s (deadline 2 s)" (Timebase.to_string l));
  {
    trial = 0;
    scheme = scheme_name;
    profile = Faults.profile_to_string profile;
    plan = Faults.describe plan;
    completed_s = !completed_s;
    violations = List.rev !violations;
  }

(* --- ERASMUS: crash resilience of the self-measurement log -------------- *)

let run_erasmus ~trial_seed ~persistent rng =
  let plan = Faults.random_plan rng ~horizon Faults.With_crash in
  let device = mk_device ~seed:trial_seed ~modeled_block_bytes:(64 * 1024) in
  let eng = device.Device.engine in
  let verifier = Verifier.of_device device in
  Faults.install device plan;
  let era =
    Erasmus.start device
      {
        Erasmus.default_config with
        Erasmus.period = Timebase.s 2;
        capacity = 64;
        persistent_log = persistent;
      }
  in
  Engine.run ~until:horizon eng;
  Erasmus.stop era;
  Engine.run ~until:(Timebase.add horizon (Timebase.s 5)) eng;
  let audit = Erasmus.audit ~expect_from:1 verifier (Erasmus.stored era) in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  if audit.Erasmus.audit_tampered > 0 then
    fail "%d stored reports audited as Tampered" audit.Erasmus.audit_tampered;
  if audit.Erasmus.out_of_order > 0 then
    fail "%d reports out of order" audit.Erasmus.out_of_order;
  let crashes = Device.crash_count device in
  let gap_width = List.fold_left (fun a (lo, hi) -> a + hi - lo + 1) 0 audit.Erasmus.gaps in
  if crashes = 0 && audit.Erasmus.gaps <> [] then
    fail "log gap without any crash";
  if Erasmus.reports_lost_to_crash era > 0 && audit.Erasmus.gaps = [] then
    fail "crash wiped %d reports but the audit saw no gap"
      (Erasmus.reports_lost_to_crash era);
  if persistent && gap_width > crashes then
    (* a flash-backed log loses at most the measurement in flight per crash *)
    fail "persistent log lost %d counters across %d crashes" gap_width crashes;
  {
    trial = 0;
    scheme = (if persistent then "erasmus(flash)" else "erasmus(ram)");
    profile = Faults.profile_to_string Faults.With_crash;
    plan = Faults.describe plan;
    completed_s = None;
    violations = List.rev !violations;
  }

(* --- SeED: prover-initiated reports over a faulty uplink ---------------- *)

let run_seed ~trial_seed ~profile rng =
  let plan = Faults.random_plan rng ~horizon profile in
  (* duplication is off: SeED's replay defence rightly flags any repeated
     counter, so a duplicate-manufacturing channel needs a dedup layer this
     trial does not model. Corruption, loss and reordering stay on. *)
  let channel_config = { plan.Faults.channel with Channel.duplicate = 0. } in
  let device = mk_device ~seed:trial_seed ~modeled_block_bytes:(64 * 1024) in
  let eng = device.Device.engine in
  let verifier = Verifier.of_device device in
  Faults.install device plan;
  let inbox = ref [] in
  let corrupted = ref 0 in
  let uplink =
    Channel.create eng channel_config ~corrupt:Channel.flip_random_bit
      ~deliver:(fun frame ->
        match Frame.open_ frame with
        | Error _ -> incr corrupted
        | Ok payload ->
          (match Report.decode payload with
          | Ok report -> inbox := (Engine.now eng, report) :: !inbox
          | Error _ -> incr corrupted))
      ()
  in
  let mean_interval = Timebase.s 3 in
  let prover =
    Seed_ra.start device
      { Seed_ra.default_config with Seed_ra.mean_interval }
      ~send:(fun (_, report) ->
        Channel.send uplink (Frame.seal (Report.encode report)))
  in
  Engine.run ~until:horizon eng;
  Seed_ra.stop prover;
  Engine.run ~until:(Timebase.add horizon (Timebase.s 5)) eng;
  let expected =
    List.filter
      (fun t -> t <= horizon)
      (Seed_ra.schedule
         ~shared_seed:Seed_ra.default_config.Seed_ra.shared_seed ~mean_interval
         ~first_after:Timebase.zero
         ~count:(2 * (horizon / mean_interval)))
  in
  let outcome =
    Seed_ra.monitor verifier ~expected ~tolerance:(Timebase.s 2)
      (List.rev !inbox)
  in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  if outcome.Seed_ra.tampered > 0 then
    fail "%d benign reports classified Tampered" outcome.Seed_ra.tampered;
  if outcome.Seed_ra.replayed > 0 then
    fail "%d false replay flags on a duplicate-free channel"
      outcome.Seed_ra.replayed;
  if
    Device.crash_count device > 0
    && Seed_ra.missed_triggers prover = 0
    && outcome.Seed_ra.missing = 0 && !corrupted = 0
    && Channel.sent uplink = Channel.delivered uplink
    && Seed_ra.reports_sent prover < List.length expected
  then fail "reports vanished without any fault accounting for them";
  {
    trial = 0;
    scheme = "seed";
    profile = Faults.profile_to_string profile;
    plan = Faults.describe plan;
    completed_s = None;
    violations = List.rev !violations;
  }

(* --- swarm: collective attestation under link loss ---------------------- *)

let run_swarm ~trial_seed rng =
  let plan = Faults.random_plan rng ~horizon Faults.Network_only in
  (* the swarm simulator models loss only; cap it so the spanning tree is
     likely to form at all *)
  let loss = Float.min 0.2 plan.Faults.channel.Channel.loss in
  let config = { Ra_swarm.Swarm.default_config with Ra_swarm.Swarm.seed = trial_seed; loss } in
  let r = Ra_swarm.Swarm.run config ~infected:[] in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  if r.Ra_swarm.Swarm.tampered > 0 then
    fail "%d benign nodes reported tampered" r.Ra_swarm.Swarm.tampered;
  let accounted =
    r.Ra_swarm.Swarm.healthy + r.Ra_swarm.Swarm.tampered
    + r.Ra_swarm.Swarm.unresponsive
  in
  if accounted <> config.Ra_swarm.Swarm.nodes then
    fail "accounting broke: %d of %d nodes" accounted config.Ra_swarm.Swarm.nodes;
  {
    trial = 0;
    scheme = "swarm";
    profile = Printf.sprintf "network-only (loss=%.2f)" loss;
    plan = Faults.describe plan;
    completed_s = None;
    violations = List.rev !violations;
  }

(* --- baselines: fault-free completion time per on-demand scheme --------- *)

let baseline ~seed ~scheme ~scheme_name =
  let device = mk_device ~seed ~modeled_block_bytes:(1024 * 1024) in
  let eng = device.Device.engine in
  let verifier = Verifier.of_device device in
  let result = ref None in
  Reliable_protocol.run device verifier
    (rp_config ~scheme ~channel:Channel.ideal)
    ~on_done:(fun r -> result := Some r)
    ();
  Engine.run eng;
  match !result with
  | Some { Reliable_protocol.completed_at = Some at; _ } ->
    (scheme_name, Timebase.to_seconds at)
  | _ -> (scheme_name, Float.nan)

let rp_schemes =
  [
    ("smart", Scheme.smart);
    ("dec-lock", Scheme.dec_lock);
    ("inc-lock", Scheme.inc_lock);
    ("smarm", Scheme.smarm);
  ]

(* ralint: allow P2 — read-only profile table indexed per trial. *)
let profiles = [| Faults.Network_only; Faults.With_partition; Faults.With_crash |]

let run ?jobs ?(seed = 42) ~trials () =
  if trials < 1 then invalid_arg "Chaos.run: trials < 1";
  let master = Prng.create ~seed in
  (* Draw every trial's generator and seed from the master in trial order,
     before any fan-out, so trial i's randomness does not depend on how
     trials interleave across domains. *)
  let draws =
    let a = Array.make trials (Prng.create ~seed:0, 0) in
    for i = 0 to trials - 1 do
      let rng = Prng.split master in
      let trial_seed = 1 + Prng.int master ~bound:0x3FFFFFFF in
      a.(i) <- (rng, trial_seed)
    done;
    a
  in
  let outcomes =
    Array.to_list
      (Ra_parallel.parallel_init ?jobs trials (fun i ->
           let rng, trial_seed = draws.(i) in
           let profile = profiles.(i mod Array.length profiles) in
           let outcome =
             match i mod 7 with
             | 0 | 1 | 2 | 3 ->
               let scheme_name, scheme = List.nth rp_schemes (i mod 7) in
               run_reliable ~trial_seed ~scheme ~scheme_name ~profile rng
             | 4 -> run_erasmus ~trial_seed ~persistent:(i mod 2 = 0) rng
             | 5 -> run_seed ~trial_seed ~profile rng
             | _ -> run_swarm ~trial_seed rng
           in
           { outcome with trial = i }))
  in
  let violations =
    List.concat_map
      (fun o ->
        List.map
          (fun v ->
            Printf.sprintf "trial %d (%s, %s): %s" o.trial o.scheme o.profile v)
          o.violations)
      outcomes
  in
  let baselines =
    Ra_parallel.parallel_list_map ?jobs
      (fun (name, scheme) -> baseline ~seed ~scheme ~scheme_name:name)
      rp_schemes
  in
  {
    outcomes;
    total = trials;
    failed =
      List.length
        (List.filter (fun (o : trial_outcome) -> o.violations <> []) outcomes);
    violations;
    baselines;
  }

let render summary =
  let by_scheme = Hashtbl.create 8 in
  List.iter
    (fun o ->
      let runs, done_, lat_sum =
        Option.value ~default:(0, 0, 0.) (Hashtbl.find_opt by_scheme o.scheme)
      in
      let done_, lat_sum =
        match o.completed_s with
        | Some s -> (done_ + 1, lat_sum +. s)
        | None -> (done_, lat_sum)
      in
      Hashtbl.replace by_scheme o.scheme (runs + 1, done_, lat_sum))
    summary.outcomes;
  let rows =
    List.filter_map
      (fun (name, _) ->
        match Hashtbl.find_opt by_scheme name with
        | None -> None
        | Some (runs, done_, lat_sum) ->
          let base =
            try List.assoc name summary.baselines with Not_found -> Float.nan
          in
          let mean = if done_ = 0 then Float.nan else lat_sum /. float_of_int done_ in
          Some
            [
              name;
              string_of_int runs;
              string_of_int done_;
              Printf.sprintf "%.3f s" base;
              Printf.sprintf "%.3f s" mean;
              (if Float.is_nan mean || Float.is_nan base then "-"
               else Printf.sprintf "%.1fx" (mean /. base));
            ])
      rp_schemes
  in
  let extra =
    List.filter_map
      (fun scheme ->
        let n =
          List.length (List.filter (fun o -> o.scheme = scheme) summary.outcomes)
        in
        if n = 0 then None else Some [ scheme; string_of_int n; "-"; "-"; "-"; "-" ])
      [ "erasmus(flash)"; "erasmus(ram)"; "seed"; "swarm" ]
  in
  let table =
    Tablefmt.render
      ~header:
        [ "scheme"; "trials"; "completed"; "ideal"; "mean under faults"; "overhead" ]
      (rows @ extra)
  in
  let verdict =
    if summary.violations = [] then
      Printf.sprintf "%d trials, 0 invariant violations" summary.total
    else
      Printf.sprintf "%d trials, %d FAILED:\n  %s" summary.total summary.failed
        (String.concat "\n  " summary.violations)
  in
  "Chaos — randomized faults vs every RA scheme (invariant check)\n" ^ table
  ^ "\n" ^ verdict ^ "\n"
