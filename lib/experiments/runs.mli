(** Canonical single-run harness: one device, one scheme, one adversary,
    optionally the critical application, one measurement — fully wired and
    executed to completion. Every higher-level experiment builds on this. *)

open Ra_sim

open Ra_core

type adversary =
  | No_malware
  | Malicious of { behavior : Ra_malware.Malware.behavior; block : int }

type setup = {
  seed : int;
  blocks : int;
  block_size : int;  (** real bytes per block *)
  modeled_block_bytes : int;  (** bytes charged to the cost model per block *)
  data_blocks : int list;
  cost : Ra_device.Cost_model.t;
  hash : Ra_crypto.Algo.hash;
  signature : Ra_device.Cost_model.signature_alg option;
  mp_priority : int;
  malware_priority : int;
  app : Ra_device.App.config option;
  rounds : int;  (** successive measurements (1 except for SMARM) *)
  run_for : Timebase.t option;
      (** keep simulating past the last report, e.g. to observe lock
          extensions or post-measurement malware moves *)
}

val default_setup : setup
(** 64 blocks x 256 B real / 16 MiB modeled (1 GiB total), SHA-256,
    ODROID-XU4, MP priority 5, malware 8, no app, one round. *)

type outcome = {
  reports : Report.t list;  (** in round order *)
  verdicts : Verifier.verdict list;
  detected : bool;  (** some round reported tampering *)
  malware_present_after : bool;
  malware_relocations : int;
  malware_blocked_actions : int;
  app_latencies : Stats.t option;
  app_deadline_misses : int;
  app_blocked_ns : Timebase.t;
  mp_busy_ns : Timebase.t;  (** CPU consumed by measurement + signing *)
  device : Ra_device.Device.t;  (** post-run, for journal inspection *)
}

val run : setup -> scheme:Scheme.t -> adversary:adversary -> outcome
(** Build the device, install the adversary, start the app if configured,
    run [rounds] measurements back to back starting at t = 1 ms, verify
    each report, and drain the engine. Deterministic in [setup.seed]. *)

val detection_rate :
  ?jobs:int ->
  setup ->
  scheme:Scheme.t ->
  adversary:adversary ->
  trials:int ->
  float * (float * float)
(** Fraction of [trials] independent seeds whose {!outcome.detected} is
    true, with a 95% Wilson interval. Trials run on the {!Ra_parallel}
    pool ([jobs] defaults to {!Ra_parallel.default_jobs}); each trial seeds
    its own device, so the result is independent of [jobs]. *)
