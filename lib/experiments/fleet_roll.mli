(** Journaled million-device roll-call campaigns.

    The world is deterministic in (devices, seed): a shared firmware
    release, every 1000th device infected, all devices enrolled virtually
    so fleet size costs roster entries rather than live simulators. A
    campaign frames the {!Ra_core.Fleet} "roll-call" record — counters,
    fleet Merkle root, shard roots — between "campaign"/"campaign-end"
    records, and {!replay} re-executes the roll call in verify mode so
    every byte of the hierarchical digest is checked, not just the flat
    counters. *)

open Ra_core

type result = {
  devices : int;
  seed : int;
  shards : int;  (** requested; the effective count is in [roll.shards] *)
  jobs : int;
  roll : Fleet.roll_call;
  provision_s : float;  (** wall seconds to enrol the roster *)
  roll_s : float;  (** wall seconds for the sharded roll call *)
}

val device_config : Ra_device.Device.config
(** 16 blocks x 256 B host-side, modeling 1 MiB blocks — the same shape
    the fleet benchmarks use. *)

val expected_tampered : int -> int
(** How many of the first [devices] indices the infection schedule hits. *)

val build : devices:int -> seed:int -> Fleet.t
(** The campaign world, virtually provisioned; deterministic in both
    arguments. *)

val run :
  ?devices:int ->
  ?seed:int ->
  ?shards:int ->
  ?jobs:int ->
  ?journal:Ra_journal.Journal.t ->
  unit ->
  result
(** One sharded roll call over a fresh world. [shards] defaults to [jobs],
    [jobs] to {!Ra_parallel.default_jobs}. With [journal], the campaign
    frame and the roll-call record (fleet root and shard roots included)
    are committed; [jobs] is deliberately not recorded — the journal byte
    stream is identical for any value. *)

val replay :
  disk:Ra_journal.Disk.t -> ?jobs:int -> unit -> (result, string) Result.t
(** Recover a recorded campaign, rebuild the world from its parameters and
    re-execute the roll call in verify mode: every re-emitted record is
    byte-compared against the recording, so [Ok] proves the counters, the
    fleet root and the per-shard roots all reproduce. *)

val parse_campaign :
  Ra_journal.Event.t array -> (int * int * int, string) Result.t
(** [(devices, seed, shards)] from a journal's leading campaign record;
    [Error] if the journal belongs to a different experiment. *)

val render : result -> string
(** Human-readable summary (throughput, verdict partition, cache counters,
    fleet root). *)
