open Ra_core

(* Million-device roll calls as a journaled campaign. The world is
   deterministic in (devices, seed): one shared firmware release, every
   1000th device infected at a schedule-derived block, all of it enrolled
   virtually — the simulators are materialized inside the roll-call shard
   that attests them and dropped after, so fleet size costs roster entries,
   not live device heaps. The campaign journal frames Fleet's own
   "roll-call" record (counters, fleet root, shard roots), which is what
   lets `ratool replay` re-execute the roll call and byte-verify the whole
   hierarchical digest. *)

(* Local wall timer: Benchkit's full-mode suite runs this module's
   campaigns, so the dependency points from Benchkit to here, not back. *)
let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

type result = {
  devices : int;
  seed : int;
  shards : int;  (** requested; the effective count is in [roll.shards] *)
  jobs : int;
  roll : Fleet.roll_call;
  provision_s : float;
  roll_s : float;
}

let device_config =
  {
    Ra_device.Device.default_config with
    Ra_device.Device.blocks = 16;
    block_size = 256;
    modeled_block_bytes = 1024 * 1024;
  }

let infect device ~block =
  let rng = Ra_sim.Prng.split (Ra_sim.Engine.prng device.Ra_device.Device.engine) in
  ignore
    (Ra_malware.Malware.install device ~rng ~block ~priority:8
       Ra_malware.Malware.Static)

let infected i = i mod 1000 = 500

let build ~devices ~seed =
  let fleet =
    Fleet.create
      ~master_secret:
        (Bytes.of_string (Printf.sprintf "fleet-master-secret-%d" seed))
      ()
  in
  for i = 0 to devices - 1 do
    Fleet.provision_virtual fleet
      (Printf.sprintf "dev-%06d" i)
      ~config:device_config
      ?tamper:(if infected i then Some (fun d -> infect d ~block:(i mod 16)) else None)
      ()
  done;
  fleet

let expected_tampered devices =
  let n = ref 0 in
  for i = 0 to devices - 1 do
    if infected i then incr n
  done;
  !n

(* --- campaign framing in the journal ------------------------------------- *)

module J = Ra_journal.Journal
module Ev = Ra_journal.Event

(* jobs is deliberately absent: the journal byte stream must be identical
   for any --jobs, and it is — but shards is recorded, because the
   roll-call record's shard roots depend on it. *)
let campaign_event ~devices ~seed ~shards =
  Ev.make "campaign"
    [
      ("experiment", Ev.S "fleet-roll");
      ("devices", Ev.I devices);
      ("seed", Ev.I seed);
      ("shards", Ev.I shards);
    ]

let campaign_end_event roll =
  Ev.make "campaign-end" [ ("fleet-root", Ev.B roll.Fleet.fleet_root) ]

let parse_campaign events =
  if Array.length events = 0 then Error "journal is empty"
  else begin
    let e = events.(0) in
    if e.Ev.tag <> "campaign" then
      Error "journal does not start with a campaign record"
    else if Ev.find_s e "experiment" <> Some "fleet-roll" then
      Error "journal records a different experiment"
    else
      match
        (Ev.find_i e "devices", Ev.find_i e "seed", Ev.find_i e "shards")
      with
      | Some devices, Some seed, Some shards when devices > 0 && shards > 0 ->
        Ok (devices, seed, shards)
      | _ -> Error "malformed campaign record"
  end

let run ?(devices = 10_000) ?(seed = 7) ?shards ?jobs ?journal () =
  let jobs = Option.value jobs ~default:(Ra_parallel.default_jobs ()) in
  let shards = Option.value shards ~default:jobs in
  (match journal with
  | Some j ->
    J.append j (campaign_event ~devices ~seed ~shards);
    J.commit j
  | None -> ());
  let fleet, provision_s = wall (fun () -> build ~devices ~seed) in
  let roll, roll_s =
    wall (fun () ->
        Fleet.sharded_roll_call fleet ~jobs ~shards ?journal Mp.default_config)
  in
  (match journal with
  | Some j ->
    J.append j (campaign_end_event roll);
    J.commit j
  | None -> ());
  { devices; seed; shards; jobs; roll; provision_s; roll_s }

let ( let* ) = Result.bind

(* Re-execute the recorded campaign in verify mode: every re-emitted record
   — including the roll-call record's counters, fleet root and shard roots
   — is byte-compared against the recording, so a verified replay is a
   proof that the hierarchical digest reproduces. *)
let replay ~disk ?jobs () =
  let* r = J.recover disk in
  let events = r.J.events in
  let* devices, seed, shards = parse_campaign events in
  let* () =
    if
      Array.length events > 0
      && (events.(Array.length events - 1)).Ev.tag = "campaign-end"
    then Ok ()
    else Error "journal records an interrupted campaign (no campaign-end)"
  in
  let vj = J.verifier events in
  J.append vj (campaign_event ~devices ~seed ~shards);
  let fleet, provision_s = wall (fun () -> build ~devices ~seed) in
  let roll, roll_s =
    wall (fun () ->
        Fleet.sharded_roll_call fleet ?jobs ~shards ~journal:vj Mp.default_config)
  in
  J.append vj (campaign_end_event roll);
  let* () = Result.map_error (fun e -> "replay diverged: " ^ e) (J.verified vj) in
  Ok
    {
      devices;
      seed;
      shards;
      jobs = Option.value jobs ~default:(Ra_parallel.default_jobs ());
      roll;
      provision_s;
      roll_s;
    }

let render r =
  let b = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let roll = r.roll in
  p "fleet roll call: %d devices, %d shard(s) (%d requested), jobs %d, seed %d"
    r.devices roll.Fleet.shards r.shards r.jobs r.seed;
  p "  provisioned in %.2f s, roll call in %.2f s (%.0f devices/s)" r.provision_s
    r.roll_s
    (float_of_int r.devices /. r.roll_s);
  p "  clean %d | tampered %d (expected %d)%s"
    (List.length roll.Fleet.clean)
    (List.length roll.Fleet.tampered)
    (expected_tampered r.devices)
    (match roll.Fleet.tampered with
    | [] -> ""
    | id :: _ -> Printf.sprintf ", first: %s" id);
  p
    "  digest cache: %d requests, %d memo hits, %d store hits, %d hashed (%d \
     batched, %d distinct blocks) — hit rate %.2f%%"
    roll.Fleet.digest_requests roll.Fleet.cache_hits roll.Fleet.store_hits
    roll.Fleet.hashed roll.Fleet.batch_hashed roll.Fleet.distinct_blocks
    (100. *. Fleet.hit_rate roll);
  p "  fleet root: %s" (Ra_crypto.Bytesutil.to_hex roll.Fleet.fleet_root);
  let acct =
    Ra_device.Cost_model.cache_accounting device_config.Ra_device.Device.cost
      Ra_crypto.Algo.SHA_256
      ~block_bytes:device_config.Ra_device.Device.modeled_block_bytes
      ~hits:(roll.Fleet.cache_hits + roll.Fleet.store_hits)
      ~misses:roll.Fleet.hashed
  in
  p
    "  modeled prover hashing: %.1f s charged in virtual time (cache skipped \
     the host-side share of %.1f s of it)"
    (acct.Ra_device.Cost_model.modeled_ns_total /. 1e9)
    (acct.Ra_device.Cost_model.modeled_ns_hit /. 1e9);
  Buffer.contents b
