open Ra_sim
open Ra_device
open Ra_core
open Ra_supervisor

(* Fleet-scale chaos: N devices under one supervisor, each assigned a fault
   kind by a deterministic schedule (index mod 10), supervised until the
   fleet converges. The point is not the faults — PR 1's per-scheme harness
   covers those — but the closed loop: detection, circuit breaking,
   quarantine, remediation and re-admission must drive every device to a
   terminal state with a recorded reason, within a bounded number of rounds,
   with counters bit-identical under any [jobs] value. *)

type kind =
  | Control  (** ideal channel; must end Healthy untouched *)
  | Lossy  (** loss/corruption/duplication/reordering; must still end Healthy *)
  | Infected
      (** malware lands at [infect_at]; must be detected within the QoA
          bound, remediated, and re-admitted Healthy *)
  | Partition_heals  (** total outage for the first 75 s, then recovery *)
  | Partition_forever  (** never reachable again; must end Quarantined *)
  | Crash_loop
      (** crashes every 500 ms from t=30 s on, up only 100 ms at a time —
          no session can complete; must end Quarantined *)
  | Crash_burst
      (** crashes every 5 s during [30 s, 90 s), then stable; must ride it
          out and end Healthy *)

let kind_of_index i =
  match i mod 10 with
  | 0 | 1 | 2 | 3 -> Control
  | 4 -> Lossy
  | 5 -> Infected
  | 6 -> Partition_heals
  | 7 -> Partition_forever
  | 8 -> Crash_loop
  | _ -> Crash_burst

let kind_to_string = function
  | Control -> "control"
  | Lossy -> "lossy"
  | Infected -> "infected"
  | Partition_heals -> "partition-heals"
  | Partition_forever -> "partition-forever"
  | Crash_loop -> "crash-loop"
  | Crash_burst -> "crash-burst"

let infect_at = Timebase.s 35

(* Supervision rounds are 30 s, so the infection instant falls in round 1;
   QoA for the on-demand scheme is one collection period, padded to 3
   rounds to absorb the isolation round. *)
let qoa_bound_rounds = 3

type result = {
  devices : int;
  seed : int;
  jobs : int;
  report : Supervisor.report;
  kinds : (Fleet.device_id * kind) list;
  violations : string list;
}

let device_config =
  {
    Device.default_config with
    Device.blocks = 16;
    block_size = 256;
    modeled_block_bytes = 1024 * 1024;
  }

let lossy_channel delay =
  {
    Channel.ideal with
    Channel.delay;
    jitter = Timebase.ms 10;
    loss = 0.15;
    duplicate = 0.1;
    corrupt = 0.1;
    reorder = 0.1;
  }

let partition_channel delay ~until =
  { Channel.ideal with Channel.delay; partitions = [ (Timebase.zero, until) ] }

let arm_crash_schedule device ~first_at ~period ~reboot_delay ~stop_after =
  let eng = device.Device.engine in
  let rec tick _ =
    if Engine.now eng < stop_after then begin
      Device.crash ~reboot_delay device;
      ignore (Engine.schedule_after eng ~delay:period tick)
    end
  in
  ignore (Engine.schedule_after eng ~delay:first_at tick)

(* faults are armed for t >= 30 s, so a quiet first round must not count
   as convergence: supervise at least past the infection instant *)
let min_rounds = 4

(* --- world building ----------------------------------------------------- *)

(* Everything the campaign depends on, before any supervision round: the
   fleet, the supervisor (optionally journaled) and the armed fault
   schedules. Deterministic in (devices, seed, max_rounds), which is why a
   journal only needs to record those three numbers to rebuild the world. *)
let build ~devices ~seed ~max_rounds ~journal () =
  let master =
    Ra_crypto.Sha256.digest
      (Bytes.of_string (Printf.sprintf "fleet-chaos master secret %d" seed))
  in
  let fleet = Fleet.create ~master_secret:master () in
  let ids =
    List.init devices (fun i ->
        let id = Printf.sprintf "dev-%05d" i in
        ignore (Fleet.provision fleet id ~config:device_config ());
        id)
  in
  let kinds = List.mapi (fun i id -> (id, kind_of_index i)) ids in
  let sup = Supervisor.create ?journal fleet in
  let horizon = Timebase.s (30 * (max_rounds + 2)) in
  let delay = Timebase.ms 40 in
  List.iteri
    (fun i id ->
      let device = Fleet.device fleet id in
      match kind_of_index i with
      | Control -> ()
      | Lossy -> Supervisor.set_channel sup id (lossy_channel delay)
      | Infected ->
        let rng = Prng.create ~seed:(seed lxor (0x1f2e3d + i)) in
        ignore
          (Ra_malware.Malware.install device ~rng ~block:(3 + (i mod 5))
             ~priority:8
             (Ra_malware.Malware.Transient
                { enter = infect_at; leave = Timebase.add horizon (Timebase.s 1000) }))
      | Partition_heals ->
        Supervisor.set_channel sup id (partition_channel delay ~until:(Timebase.s 75))
      | Partition_forever ->
        Supervisor.set_channel sup id
          (partition_channel delay ~until:(Timebase.add horizon (Timebase.s 1000)))
      | Crash_loop ->
        arm_crash_schedule device ~first_at:(Timebase.s 30) ~period:(Timebase.ms 500)
          ~reboot_delay:(Timebase.ms 400) ~stop_after:horizon
      | Crash_burst ->
        arm_crash_schedule device ~first_at:(Timebase.s 30) ~period:(Timebase.s 5)
          ~reboot_delay:(Timebase.ms 250) ~stop_after:(Timebase.s 90))
    ids;
  (sup, kinds)

(* --- campaign framing in the journal ------------------------------------ *)

module J = Ra_journal.Journal
module Ev = Ra_journal.Event
module Dsk = Ra_journal.Disk

let campaign_event ~devices ~seed ~max_rounds =
  Ev.make "campaign"
    [
      ("experiment", Ev.S "fleet-chaos");
      ("devices", Ev.I devices);
      ("seed", Ev.I seed);
      ("max-rounds", Ev.I max_rounds);
    ]

let campaign_end_event report =
  Ev.make "campaign-end" [ ("digest", Ev.S report.Supervisor.counter_digest) ]

let parse_campaign events =
  if Array.length events = 0 then Error "journal is empty"
  else begin
    let e = events.(0) in
    if e.Ev.tag <> "campaign" then
      Error "journal does not start with a campaign record"
    else if Ev.find_s e "experiment" <> Some "fleet-chaos" then
      Error "journal records a different experiment"
    else
      match (Ev.find_i e "devices", Ev.find_i e "seed", Ev.find_i e "max-rounds") with
      | Some devices, Some seed, Some max_rounds when devices > 0 ->
        Ok (devices, seed, max_rounds)
      | _ -> Error "malformed campaign record"
  end

let validate sup kinds report ~max_rounds =
  (* --- convergence invariants ------------------------------------------- *)
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  if not report.Supervisor.converged then
    fail "fleet did not converge within %d rounds" max_rounds;
  List.iter (fun id -> fail "%s still unsettled" id) report.Supervisor.unsettled;
  let quarantined = report.Supervisor.quarantined in
  let detection id = List.assoc_opt id report.Supervisor.detections in
  List.iter
    (fun (id, kind) ->
      let state = Supervisor.health sup id in
      match kind with
      | Control | Lossy | Partition_heals | Crash_burst ->
        if state <> Health.Healthy then
          fail "%s (%s) ended %s, expected healthy" id (kind_to_string kind)
            (Health.state_to_string state);
        if detection id <> None then
          fail "%s (%s) falsely detected as tampered" id (kind_to_string kind)
      | Infected ->
        if state <> Health.Healthy then
          fail "%s (infected) ended %s, expected remediated back to healthy" id
            (Health.state_to_string state);
        if not (List.mem id report.Supervisor.remediated) then
          fail "%s (infected) was never remediated" id;
        (match detection id with
        | None -> fail "%s (infected) was never detected" id
        | Some round ->
          let infect_round = 1 in
          if round - infect_round > qoa_bound_rounds then
            fail "%s (infected) detected in round %d, beyond the QoA bound of %d rounds"
              id round qoa_bound_rounds)
      | Partition_forever | Crash_loop ->
        (match List.assoc_opt id quarantined with
        | Some (Health.Probe_exhausted | Health.Flapping) -> ()
        | Some reason ->
          fail "%s (%s) quarantined for %s, expected probe-exhausted" id
            (kind_to_string kind)
            (Health.cause_to_string reason)
        | None ->
          fail "%s (%s) ended %s, expected quarantined" id (kind_to_string kind)
            (Health.state_to_string state)))
    kinds;
  (* every recorded transition must be a declared edge *)
  List.iter
    (fun (id, _) ->
      List.iter
        (fun tr ->
          match Health.legal tr.Health.from_ tr.Health.cause with
          | Some to_ when to_ = tr.Health.to_ -> ()
          | _ ->
            fail "%s recorded an undeclared transition %s -[%s]-> %s" id
              (Health.state_to_string tr.Health.from_)
              (Health.cause_to_string tr.Health.cause)
              (Health.state_to_string tr.Health.to_))
        (Health.history (Supervisor.machine sup id)))
    kinds;
  List.rev !violations

let finish ~devices ~seed ~jobs ~max_rounds sup kinds report =
  {
    devices;
    seed;
    jobs;
    report;
    kinds;
    violations = validate sup kinds report ~max_rounds;
  }

let run ?(devices = 200) ?(seed = 7) ?(jobs = 1) ?shards ?(max_rounds = 20) ?journal () =
  (match journal with
  | Some j ->
    J.append j (campaign_event ~devices ~seed ~max_rounds);
    J.commit j
  | None -> ());
  let sup, kinds = build ~devices ~seed ~max_rounds ~journal () in
  let report = Supervisor.run ~jobs ?shards ~min_rounds ~max_rounds sup in
  (match journal with
  | Some j ->
    J.append j (campaign_end_event report);
    J.commit j
  | None -> ());
  finish ~devices ~seed ~jobs ~max_rounds sup kinds report

(* --- crash / resume / replay -------------------------------------------- *)

let record_killed ~disk ?(snapshot_every = 3) ?(devices = 200) ?(seed = 7)
    ?(jobs = 1) ?shards ?(max_rounds = 20) ~kill_at_round () =
  let j = J.create ~snapshot_every disk in
  J.append j (campaign_event ~devices ~seed ~max_rounds);
  J.commit j;
  let sup, _ = build ~devices ~seed ~max_rounds ~journal:(Some j) () in
  let rec loop () =
    if Supervisor.rounds_run sup >= kill_at_round then true
    else if
      (Supervisor.converged sup && Supervisor.rounds_run sup >= min_rounds)
      || Supervisor.rounds_run sup >= max_rounds
    then false
    else begin
      Supervisor.round ~jobs ?shards sup;
      loop ()
    end
  in
  let killed = loop () in
  if killed then
    (* the power goes out mid-append: leave a torn half-record on the WAL
       tail, exactly what recovery must detect and truncate *)
    disk.Dsk.append J.wal_file (Bytes.of_string "RJ\x00\x00\x00\x2a\x00")
  else begin
    (* the campaign converged before round K; complete the journal *)
    J.append j (campaign_end_event (Supervisor.report sup));
    J.commit j
  end;
  killed

let ( let* ) = Result.bind

(* Re-execute the journaled prefix in verify mode (each re-emitted record
   byte-compared against the recording), independently reconstruct the
   state from snapshot + deltas, and demand both roads end at the same
   bytes before continuing the campaign. The recover -> choose consistency
   point -> validate -> resume skeleton is Journal.restart — the same
   entry point the attestation server restarts through — with all the
   fleet-chaos-specific verification living in the [validate] callback. *)
let resume ~disk ?(jobs = 1) ?shards () =
  let ctx = ref None in
  let validate r ~keep =
    let events = r.J.events in
    let* devices, seed, max_rounds = parse_campaign events in
    let rounds_done, _ = Supervisor.Recovery.completed_rounds events in
    let* () =
      if rounds_done = 0 then
        Error "no completed round in the journal; nothing to resume"
      else Ok ()
    in
    let prefix = Array.sub events 0 keep in
    let vj = J.verifier prefix in
    J.append vj (campaign_event ~devices ~seed ~max_rounds);
    let sup, kinds = build ~devices ~seed ~max_rounds ~journal:(Some vj) () in
    let base0 = Supervisor.serialize sup in
    for _ = 1 to rounds_done do
      Supervisor.round ~jobs ?shards sup
    done;
    let* () =
      Result.map_error
        (fun e -> "replay of the journaled prefix diverged: " ^ e)
        (J.verified vj)
    in
    let base, after =
      match r.J.snapshot with
      | Some (_, covered, state) when covered <= keep -> (state, covered)
      | _ -> (base0, 0)
    in
    let* recovered = Supervisor.Recovery.reconstruct ~base ~after prefix in
    let* () =
      if Bytes.equal recovered (Supervisor.serialize sup) then Ok ()
      else
        Error
          "recovered state (snapshot + deltas) does not match the re-executed \
           supervisor"
    in
    let* () = Supervisor.load sup recovered in
    ctx := Some (sup, kinds, devices, seed, max_rounds);
    Ok ()
  in
  let keep r = snd (Supervisor.Recovery.completed_rounds r.J.events) in
  let* _, rj = J.restart ~validate disk ~keep in
  match !ctx with
  | None -> Error "restart validated but produced no supervisor (bug)"
  | Some (sup, kinds, devices, seed, max_rounds) ->
    Supervisor.attach_journal sup rj;
    let report = Supervisor.run ~jobs ?shards ~min_rounds ~max_rounds sup in
    J.append rj (campaign_end_event report);
    J.commit rj;
    Ok (finish ~devices ~seed ~jobs ~max_rounds sup kinds report)

let replay ~disk ?(jobs = 1) ?shards () =
  let* r = J.recover disk in
  let events = r.J.events in
  let* devices, seed, max_rounds = parse_campaign events in
  let* () =
    if
      Array.length events > 0
      && (events.(Array.length events - 1)).Ev.tag = "campaign-end"
    then Ok ()
    else
      Error
        "journal records an interrupted campaign (no campaign-end); resume it \
         first: ratool fleet-chaos --resume"
  in
  let rounds_done, keep = Supervisor.Recovery.completed_rounds events in
  let vj = J.verifier events in
  J.append vj (campaign_event ~devices ~seed ~max_rounds);
  let sup, kinds = build ~devices ~seed ~max_rounds ~journal:(Some vj) () in
  let base0 = Supervisor.serialize sup in
  for _ = 1 to rounds_done do
    Supervisor.round ~jobs ?shards sup
  done;
  let report = Supervisor.report sup in
  J.append vj (campaign_end_event report);
  let* () = Result.map_error (fun e -> "replay diverged: " ^ e) (J.verified vj) in
  (* cross-check the snapshot/delta road against the executed state *)
  let base, after =
    match r.J.snapshot with
    | Some (_, covered, state) when covered <= keep -> (state, covered)
    | _ -> (base0, 0)
  in
  let* recovered = Supervisor.Recovery.reconstruct ~base ~after events in
  let* () =
    if Bytes.equal recovered (Supervisor.serialize sup) then Ok ()
    else Error "recovered state (snapshot + deltas) does not match the replay"
  in
  Ok (finish ~devices ~seed ~jobs ~max_rounds sup kinds report)

let render r =
  let b = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let rep = r.report in
  p "fleet-chaos: %d devices, seed %d, jobs %d" r.devices r.seed r.jobs;
  p "  rounds: %d  converged: %b" rep.Supervisor.rounds rep.Supervisor.converged;
  p "  healthy: %d  quarantined: %d  unsettled: %d"
    (List.length rep.Supervisor.healthy)
    (List.length rep.Supervisor.quarantined)
    (List.length rep.Supervisor.unsettled);
  p "  detections: %d  remediated: %d  attestations: %d  timeouts: %d"
    (List.length rep.Supervisor.detections)
    (List.length rep.Supervisor.remediated)
    rep.Supervisor.attestations rep.Supervisor.timeouts;
  p "  probes blocked: %d  remediation pushes: %d" rep.Supervisor.probes_blocked
    rep.Supervisor.remediation_pushes;
  p "  transitions:";
  List.iter
    (fun ((from_, cause, to_), n) ->
      p "    %-12s -[%s]-> %-12s %d"
        (Health.state_to_string from_)
        (Health.cause_to_string cause)
        (Health.state_to_string to_)
        n)
    rep.Supervisor.transition_counts;
  p "  digest: %s" rep.Supervisor.counter_digest;
  (match r.violations with
  | [] -> p "  invariants: all hold"
  | vs ->
    p "  INVARIANT VIOLATIONS (%d):" (List.length vs);
    List.iter (fun v -> p "    - %s" v) vs);
  Buffer.contents b
