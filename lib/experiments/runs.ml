open Ra_sim
open Ra_device
open Ra_core

type adversary =
  | No_malware
  | Malicious of { behavior : Ra_malware.Malware.behavior; block : int }

type setup = {
  seed : int;
  blocks : int;
  block_size : int;
  modeled_block_bytes : int;
  data_blocks : int list;
  cost : Cost_model.t;
  hash : Ra_crypto.Algo.hash;
  signature : Cost_model.signature_alg option;
  mp_priority : int;
  malware_priority : int;
  app : App.config option;
  rounds : int;
  run_for : Timebase.t option;
}

let default_setup =
  {
    seed = 1;
    blocks = 64;
    block_size = 256;
    modeled_block_bytes = 16 * 1024 * 1024;
    data_blocks = [];
    cost = Cost_model.odroid_xu4;
    hash = Ra_crypto.Algo.SHA_256;
    signature = None;
    mp_priority = 5;
    malware_priority = 8;
    app = None;
    rounds = 1;
    run_for = None;
  }

type outcome = {
  reports : Report.t list;
  verdicts : Verifier.verdict list;
  detected : bool;
  malware_present_after : bool;
  malware_relocations : int;
  malware_blocked_actions : int;
  app_latencies : Stats.t option;
  app_deadline_misses : int;
  app_blocked_ns : Timebase.t;
  mp_busy_ns : Timebase.t;
  device : Device.t;
}

let run setup ~scheme ~adversary =
  let device =
    Device.create
      {
        Device.seed = setup.seed;
        blocks = setup.blocks;
        block_size = setup.block_size;
        modeled_block_bytes = setup.modeled_block_bytes;
        data_blocks = setup.data_blocks;
        cost = setup.cost;
        key = Device.default_config.Device.key;
        digest_cache = Device.default_config.Device.digest_cache;
        store = None;
      }
  in
  let eng = device.Device.engine in
  let verifier =
    Verifier.with_zero_data (Verifier.of_device device) scheme.Scheme.zero_data
  in
  let malware =
    match adversary with
    | No_malware -> None
    | Malicious { behavior; block } ->
      let rng = Prng.split (Engine.prng eng) in
      Some
        (Ra_malware.Malware.install device ~rng ~block
           ~priority:setup.malware_priority behavior)
  in
  let app =
    Option.map
      (fun config -> App.start eng device.Device.cpu device.Device.memory config)
      setup.app
  in
  let hooks =
    match malware with
    | None -> Mp.null_hooks
    | Some m ->
      {
        Mp.on_start = (fun () -> Ra_malware.Malware.on_mp_start m);
        on_block_measured =
          (fun ~measured ~total ->
            Ra_malware.Malware.on_block_measured m ~measured ~total);
      }
  in
  let mp_config =
    {
      Mp.scheme;
      hash = setup.hash;
      signature = setup.signature;
      priority = setup.mp_priority;
      counter = None;
    }
  in
  let reports = ref [] in
  ignore
    (Engine.schedule eng ~at:(Timebase.ms 1) (fun _ ->
         let rec round k acc =
           Mp.run device mp_config
             ~nonce:(Prng.bytes (Engine.prng eng) 16)
             ~hooks
             ~on_complete:(fun r ->
               let acc = r :: acc in
               if k + 1 < setup.rounds then round (k + 1) acc
               else reports := List.rev acc)
             ()
         in
         round 0 []));
  (match setup.run_for with
  | None ->
    (* Stop the app's infinite periodic schedule once the MP work is done:
       run in bounded slices until at least one report exists, then let any
       lock extension drain. *)
    (match app with
    | None -> Engine.run eng
    | Some a ->
      let rec pump guard =
        if guard = 0 then failwith "Runs.run: simulation did not converge";
        if !reports = [] || List.length !reports < setup.rounds then begin
          Engine.run ~until:(Timebase.add (Engine.now eng) (Timebase.s 2)) eng;
          pump (guard - 1)
        end
      in
      pump 10_000;
      App.stop a;
      Engine.run ~until:(Timebase.add (Engine.now eng) (Timebase.s 5)) eng)
  | Some horizon ->
    Engine.run ~until:horizon eng;
    Option.iter App.stop app;
    Engine.run ~until:(Timebase.add horizon (Timebase.s 5)) eng);
  let reports = !reports in
  let verdicts = List.map (Verifier.verify verifier) reports in
  let detected = List.exists (fun v -> v = Verifier.Tampered) verdicts in
  {
    reports;
    verdicts;
    detected;
    malware_present_after =
      (match malware with
      | None -> false
      | Some m -> Ra_malware.Malware.present m);
    malware_relocations =
      (match malware with None -> 0 | Some m -> Ra_malware.Malware.relocations m);
    malware_blocked_actions =
      (match malware with
      | None -> 0
      | Some m -> Ra_malware.Malware.blocked_actions m);
    app_latencies = Option.map App.latencies app;
    app_deadline_misses =
      (match app with None -> 0 | Some a -> App.deadline_misses a);
    app_blocked_ns = (match app with None -> 0 | Some a -> App.blocked_ns a);
    mp_busy_ns =
      Cpu.busy_ns device.Device.cpu ~name:"mp"
      + Cpu.busy_ns device.Device.cpu ~name:"mp-sign";
    device;
  }

let detection_rate ?jobs setup ~scheme ~adversary ~trials =
  if trials < 1 then invalid_arg "Runs.detection_rate: trials < 1";
  (* Each trial derives everything from its own seed, so the fan-out is
     bit-identical to the sequential loop regardless of [jobs]. *)
  let detections =
    Ra_parallel.parallel_init ?jobs trials (fun trial ->
        (run { setup with seed = setup.seed + (1000 * trial) } ~scheme ~adversary)
          .detected)
  in
  let detected = Array.fold_left (fun n d -> if d then n + 1 else n) 0 detections in
  let rate = float_of_int detected /. float_of_int trials in
  (rate, Stats.binomial_confidence ~successes:detected ~trials)
