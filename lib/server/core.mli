(** The deterministic core of the attestation server.

    Everything that decides an outcome is here — the bounded ingest
    queue, load shedding, duplicate suppression, journaling, report
    verification, the verdict table — and none of it touches a socket or
    a clock. Transports ({!Netsim} in simulation, {!Tcp} on real sockets)
    only move frames. Consequences:

    - the shed/accepted/deduped counters are a pure function of the
      request sequence, so overload behaviour is replayable per seed;
    - a kill -9 is survivable by construction: every accepted report is
      journaled and committed {e before} its [Ack], and {!recover}
      rebuilds the verdict table by re-verifying the journaled bytes
      through {!Ra_journal.Journal.restart} — verdicts are recomputed,
      never trusted from disk. *)

type config = {
  devices : int;  (** roster size (shared recipe with {!Loadgen}) *)
  seed : int;  (** fleet provisioning seed *)
  capacity : int;  (** bounded queue depth; beyond it, submissions shed *)
}

val default_config : config
(** 32 devices, seed 7, capacity 64. *)

type t

val create : ?config:config -> Ra_journal.Disk.t -> t
(** Fresh server over a fresh journal (any previous journal in [disk] is
    discarded); the header record pins the config so recovery needs no
    side channel. Raises [Invalid_argument] when [capacity < 1]. *)

val recover : Ra_journal.Disk.t -> (t, string) result
(** Restart after a crash: {!Ra_journal.Journal.restart} keeps every
    decodable acknowledged event (tail damage is truncated), the header
    rebuilds the world, and each journaled report is re-verified to
    rebuild verdicts and the dedup set. [counters] restart with
    [accepted = recovered =] the replayed count; [shed]/[deduped]/
    [rejected] are per-incarnation. *)

val handle : ?jobs:int -> t -> Wire.request -> Wire.response
(** Serve one request. [Submit] journals-then-acks, re-acks duplicates,
    or sheds with [Busy] when the queue is full. [Fleet_health] and
    [Fleet_root] drain the queue first, so their answers reflect every
    acknowledged report. *)

val drain : ?jobs:int -> t -> int
(** Verify everything queued and fold the verdicts into the world;
    returns the number of reports processed. Verification fans out over
    the domain pool grouped by device, and results apply in dequeue
    order — counters and root are bit-identical for any [jobs]. *)

val pending : t -> int
val counters : t -> Wire.counters
val root : t -> Bytes.t
val world : t -> World.t
val config : t -> config
