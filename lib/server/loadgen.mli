(** Deterministic load for the attestation server.

    The plan is a pure function of [(devices, seed, reports_per_device)]:
    each item is a real {!Ra_core.Report.t} produced by running the
    measurement process on a device provisioned from the same recipe as
    the server's {!World} — so the server verifies genuine evidence. A
    deterministic fraction of the fleet ([i mod 7 = 3]) is infected
    before attesting; the server must end with exactly those devices
    Tampered, which is the cross-boundary correctness check the chaos
    harness and the kill gate both lean on.

    Items are ordered round-major (every device's report 1, then every
    report 2, …): one round is a synchronized burst of [devices]
    submissions, the arrival pattern that overruns a bounded queue and
    exercises the shedding path. *)

type item = { device : string; seq : int; report : Bytes.t }

val plan : devices:int -> seed:int -> reports_per_device:int -> item array
(** Raises [Invalid_argument] on an empty campaign. *)

val is_tampered : int -> bool
(** Whether roster index [i] is infected in every plan. *)

val expected_tampered : devices:int -> int
(** How many of the first [devices] roster entries are infected. *)

val nonce : seed:int -> device:string -> seq:int -> Bytes.t
(** The 16-byte challenge folded into item [(device, seq)]'s MAC. *)

val submit_payload : item -> Bytes.t
(** The item as an encoded {!Wire.Submit} request (not yet framed). *)
