open Ra_journal

(* The control plane's message layer: every request and response is one
   Codec payload inside one stream frame (Frame.seal_stream). Tags are
   single bytes; unknown tags decode to Error, never to an exception, so
   a hostile peer can at worst get its connection dropped. *)

type request =
  | Submit of { device : string; seq : int; report : Bytes.t }
  | Fleet_health
  | Quarantine of string
  | Fleet_root
  | Counters

type counters = {
  accepted : int;
  shed : int;
  deduped : int;
  rejected : int;
  recovered : int;
}

type response =
  | Ack of { device : string; seq : int }
  | Busy of { queued : int; capacity : int }
  | Rejected of string
  | Health of (string * string) list
  | Root of Bytes.t
  | Stats of counters

let t_submit = 1
let t_health = 2
let t_quarantine = 3
let t_root = 4
let t_counters = 5

let encode_request req =
  let w = Codec.writer () in
  (match req with
  | Submit { device; seq; report } ->
      Codec.u8 w t_submit;
      Codec.str w device;
      Codec.i64 w seq;
      Codec.bytes w report
  | Fleet_health -> Codec.u8 w t_health
  | Quarantine device ->
      Codec.u8 w t_quarantine;
      Codec.str w device
  | Fleet_root -> Codec.u8 w t_root
  | Counters -> Codec.u8 w t_counters);
  Codec.contents w

let decode_request buf =
  match
    let r = Codec.reader buf in
    let req =
      match Codec.read_u8 r with
      | 1 ->
          let device = Codec.read_str r in
          let seq = Codec.read_i64 r in
          let report = Codec.read_bytes r in
          if seq < 0 then Codec.fail "negative sequence number";
          Submit { device; seq; report }
      | 2 -> Fleet_health
      | 3 -> Quarantine (Codec.read_str r)
      | 4 -> Fleet_root
      | 5 -> Counters
      | t -> Codec.fail (Printf.sprintf "unknown request tag %d" t)
    in
    Codec.expect_end r;
    req
  with
  | req -> Ok req
  | exception Codec.Corrupt msg -> Error msg

let r_ack = 1
let r_busy = 2
let r_rejected = 3
let r_health = 4
let r_root = 5
let r_stats = 6

let encode_response resp =
  let w = Codec.writer () in
  (match resp with
  | Ack { device; seq } ->
      Codec.u8 w r_ack;
      Codec.str w device;
      Codec.i64 w seq
  | Busy { queued; capacity } ->
      Codec.u8 w r_busy;
      Codec.i64 w queued;
      Codec.i64 w capacity
  | Rejected reason ->
      Codec.u8 w r_rejected;
      Codec.str w reason
  | Health entries ->
      Codec.u8 w r_health;
      Codec.i64 w (List.length entries);
      List.iter
        (fun (id, state) ->
          Codec.str w id;
          Codec.str w state)
        entries
  | Root root ->
      Codec.u8 w r_root;
      Codec.bytes w root
  | Stats c ->
      Codec.u8 w r_stats;
      Codec.i64 w c.accepted;
      Codec.i64 w c.shed;
      Codec.i64 w c.deduped;
      Codec.i64 w c.rejected;
      Codec.i64 w c.recovered);
  Codec.contents w

let decode_response buf =
  match
    let r = Codec.reader buf in
    let resp =
      match Codec.read_u8 r with
      | 1 ->
          let device = Codec.read_str r in
          let seq = Codec.read_i64 r in
          Ack { device; seq }
      | 2 ->
          let queued = Codec.read_i64 r in
          let capacity = Codec.read_i64 r in
          Busy { queued; capacity }
      | 3 -> Rejected (Codec.read_str r)
      | 4 ->
          let n = Codec.read_i64 r in
          if n < 0 || n > 10_000_000 then Codec.fail "implausible health size";
          let entries = List.init n (fun _ ->
            let id = Codec.read_str r in
            let state = Codec.read_str r in
            (id, state))
          in
          Health entries
      | 5 -> Root (Codec.read_bytes r)
      | 6 ->
          let accepted = Codec.read_i64 r in
          let shed = Codec.read_i64 r in
          let deduped = Codec.read_i64 r in
          let rejected = Codec.read_i64 r in
          let recovered = Codec.read_i64 r in
          Stats { accepted; shed; deduped; rejected; recovered }
      | t -> Codec.fail (Printf.sprintf "unknown response tag %d" t)
    in
    Codec.expect_end r;
    resp
  with
  | resp -> Ok resp
  | exception Codec.Corrupt msg -> Error msg

let response_to_string = function
  | Ack { device; seq } -> Printf.sprintf "ack %s#%d" device seq
  | Busy { queued; capacity } -> Printf.sprintf "busy %d/%d" queued capacity
  | Rejected reason -> "rejected: " ^ reason
  | Health entries -> Printf.sprintf "health (%d devices)" (List.length entries)
  | Root root -> Printf.sprintf "root %s" (Ra_crypto.Bytesutil.to_hex root)
  | Stats c ->
      Printf.sprintf "accepted=%d shed=%d deduped=%d rejected=%d recovered=%d"
        c.accepted c.shed c.deduped c.rejected c.recovered
