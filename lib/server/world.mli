(** The server's fleet world: roster, verifier views, verdict table.

    Built as a pure function of [(devices, seed)] — the same recipe
    {!Loadgen} uses for its prover fleet — so server and load generator
    share keys the way a manufacturer-enrolled fleet would, with no
    key exchange on the wire. The verdict table (highest-sequence verdict
    per device, plus operator quarantine flags) is what the routed
    endpoints serve, and {!root} reduces it to one Merkle root whose
    bit-identity across a crash/restart is the recovery gate. *)

open Ra_core

type t

val device_id : int -> string
(** Roster naming scheme ([node-%05d]), shared with the load generator. *)

val master_secret : seed:int -> Bytes.t

val device_config : Ra_device.Device.config
(** The provisioning config every fleet member runs (16 × 256-byte
    blocks, 1 MiB modeled). *)

val build : devices:int -> seed:int -> t
(** Provision the roster. Raises [Invalid_argument] when [devices < 1]. *)

val fleet : t -> Fleet.t
val devices : t -> int
val known : t -> string -> bool

val verify : t -> device:string -> Bytes.t -> (Verifier.verdict * Bytes.t, string) result
(** Decode and verify one submitted report against [device]'s expected
    image; returns the verdict and the report MAC (the Merkle leaf
    material). Builds a fresh verifier per call from immutable
    provisioning data, so concurrent calls from a parallel drain are
    safe. [Error] for unknown devices and undecodable reports. *)

val record : t -> device:string -> seq:int -> Verifier.verdict -> Bytes.t -> unit
(** Fold one verified submission into the verdict table. Submissions
    apply in sequence order: a stale [seq] (below the device's highest)
    is a no-op, so the table is independent of arrival order. *)

val quarantine : t -> string -> bool
(** Operator quarantine order; [false] for unknown devices. *)

val health : t -> (string * string) list
(** [(device, state)] in roster order; states are [quarantined], [clean],
    [tampered], [unreported]. *)

val verdict_counts : t -> int * int * int
(** (clean, tampered, unreported). *)

val root : t -> Bytes.t
(** Merkle root over per-device leaves [id || status || mac]. Quarantine
    overrides the verdict byte — operator orders are fleet state and must
    survive restart visibly. *)
