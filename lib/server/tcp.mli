(** The real-socket shell around {!Core} — the only module in the tree
    allowed to touch [Unix] sockets and the wall clock (ralint rule P3
    pins Unix usage here and in the journal's file backend).

    The server is a single-threaded select(2) loop over non-blocking
    connections: reads happen only on readable fds, responses drain
    through per-connection out-buffers on writable fds, so a client that
    stalls mid-frame or stops reading parks its own state without ever
    blocking another session — the stalled-client property the unit tests
    pin down. Every decision (shed/accept/dedup/journal/verdict) is
    {!Core}'s; kill -9 this process at any instant and a restart recovers
    through the journal. *)

val serve :
  ?host:string ->
  ?jobs:int ->
  ?config:Core.config ->
  ?fresh:bool ->
  port:int ->
  dir:string ->
  unit ->
  'a
(** Run the attestation server forever (it never returns; kill the
    process to stop it). If [dir] already holds a journal and [fresh] is
    false, the server restarts through {!Core.recover} — a failed
    recovery is a loud [exit 1], never a silent fresh start. [config]
    only applies to fresh starts; a recovered server re-reads its config
    from the journal header. *)

val request :
  ?host:string -> ?timeout_s:float -> port:int -> Wire.request -> (Wire.response, string) result
(** One request/response exchange on a fresh connection (used by the
    kill-gate script and ad-hoc inspection). *)

type campaign = {
  acked : int;
  retries : int;
  busy : int;  (** [Busy] frames absorbed (server shed under burst) *)
  reconnects : int;  (** connection attempts after a refused/dead socket *)
  stats : Wire.counters;  (** server's view, queried after the campaign *)
  root : Bytes.t;  (** fleet Merkle root, queried after the campaign *)
  tampered : int;
  clean : int;
  wall_s : float;
  reports_per_s : float;  (** acked / wall — honest, fsync-per-report *)
}

val run_campaign :
  ?host:string ->
  ?give_up_after_s:float ->
  port:int ->
  devices:int ->
  seed:int ->
  reports_per_device:int ->
  unit ->
  (campaign, string) result
(** Drive the deterministic {!Loadgen.plan} against a live server: one
    connection per device, RFC 6298 retry/backoff on [Busy], timeout and
    dead connections, reconnect-with-backoff while the server is down —
    so a campaign straddling a kill -9 + restart converges instead of
    failing. [Error] only when the campaign does not converge within
    [give_up_after_s] (default 180) or the final root/counters queries
    fail. *)

val render_campaign : campaign -> string
