open Ra_sim
open Ra_core
open Ra_faults

(* The simulated network: loadgen clients driving a Core over virtual
   byte streams with Stream_faults damage, in discrete steps. No socket,
   no clock, no thread — the whole campaign (every tear, stall, reset,
   shed Busy, retry and crash) is a pure function of the config, which is
   what lets server-chaos assert determinism per seed and invariance
   across --jobs, properties the real-TCP path can only approximate. *)

type config = {
  devices : int;
  reports_per_device : int;
  seed : int;
  capacity : int;
  drain_every : int;  (** steps between queue drains *)
  faults : Stream_faults.config;
  crash_at : int option;  (** kill -9 the server at this step *)
  max_steps : int;
}

let default =
  {
    devices = 24;
    reports_per_device = 4;
    seed = 7;
    capacity = 8;
    drain_every = 3;
    faults = Stream_faults.default;
    crash_at = None;
    max_steps = 20_000;
  }

type outcome = {
  counters : Wire.counters;
  root : Bytes.t;
  tampered : int;  (** devices the verdict table ended Tampered *)
  clean : int;
  acked : int;  (** client-side: items retired by an Ack *)
  retries : int;  (** client-side retransmissions *)
  busy : int;  (** Busy frames clients absorbed *)
  dead_conns : int;  (** connections lost to resets/corruption/crash *)
  restarts : int;
  steps : int;
}

(* One step of virtual time ~ 10 ms for the RTO arithmetic. *)
let step_ns = 10_000_000

let steps_of_rto rto = max 1 (rto / step_ns)

(* --- connections --------------------------------------------------------- *)

type chunk = { due : int; data : Bytes.t; kills : bool }

type conn = {
  cid : int;
  frng : Prng.t;  (* fault draws, both directions *)
  mutable alive : bool;
  server_reader : Frame.Reader.t;
  client_reader : Frame.Reader.t;
  mutable to_server : chunk list;  (* newest first; delivered oldest first *)
  mutable to_client : chunk list;
}

type client = {
  idx : int;
  mutable todo : Loadgen.item list;
  rtt : Rtt.t;
  mutable conn : conn option;
  mutable inflight : (int * int * bool) option;  (* seq, sent at, retransmitted *)
  mutable head_attempts : int;  (* transmissions of the current head item *)
  mutable deadline : int;
  mutable wait_until : int;
  mutable retries : int;
  mutable busy : int;
  mutable acked : int;
}

type sim = {
  config : config;
  store : Ra_journal.Disk.Mem.store;
  disk : Ra_journal.Disk.t;
  mutable core : Core.t;
  conn_rng : Prng.t;  (* split per connection, in creation order *)
  crash_rng : Prng.t;
  clients : client array;
  mutable conns : conn list;  (* live first-class handles, newest first *)
  mutable next_cid : int;
  mutable now : int;
  mutable dead_conns : int;
  mutable restarts : int;
}

let new_conn t =
  let c =
    {
      cid = t.next_cid;
      frng = Prng.split t.conn_rng;
      alive = true;
      server_reader = Frame.Reader.create ();
      client_reader = Frame.Reader.create ();
      to_server = [];
      to_client = [];
    }
  in
  t.next_cid <- t.next_cid + 1;
  t.conns <- c :: t.conns;
  c

let kill_conn t c =
  if c.alive then begin
    c.alive <- false;
    c.to_server <- [];
    c.to_client <- [];
    t.dead_conns <- t.dead_conns + 1
  end

(* Queue one framed write onto a direction, through the fault model. *)
let send t c ~to_server payload =
  if c.alive then begin
    let frame = Frame.seal_stream payload in
    let n = Bytes.length frame in
    let push chunk =
      if to_server then c.to_server <- chunk :: c.to_server
      else c.to_client <- chunk :: c.to_client
    in
    match Stream_faults.draw c.frng t.config.faults ~len:n with
    | Stream_faults.Deliver -> push { due = t.now + 1; data = frame; kills = false }
    | Stream_faults.Tear k ->
        push { due = t.now + 1; data = Bytes.sub frame 0 k; kills = false };
        push { due = t.now + 2; data = Bytes.sub frame k (n - k); kills = false }
    | Stream_faults.Stall steps ->
        push { due = t.now + 1 + steps; data = frame; kills = false }
    | Stream_faults.Reset_after k ->
        push { due = t.now + 1; data = Bytes.sub frame 0 k; kills = true }
    | Stream_faults.Corrupt_at i ->
        let bad = Bytes.copy frame in
        Bytes.set bad i (Char.chr (Char.code (Bytes.get bad i) lxor 0x40));
        push { due = t.now + 1; data = bad; kills = false }
  end

(* Deliver every chunk that is due on one direction; returns whether the
   connection must die once the delivered bytes are in (reset). *)
let deliver_due t c ~to_server =
  let pending = if to_server then c.to_server else c.to_client in
  let pending = List.rev pending in  (* oldest first *)
  let due, later = List.partition (fun ch -> ch.due <= t.now) pending in
  let later = List.rev later in
  if to_server then c.to_server <- later else c.to_client <- later;
  let reader = if to_server then c.server_reader else c.client_reader in
  List.fold_left
    (fun kills ch ->
      Frame.Reader.feed reader ch.data;
      kills || ch.kills)
    false due

(* --- server side --------------------------------------------------------- *)

let server_step t =
  List.iter
    (fun c ->
      if c.alive then begin
        let reset = deliver_due t c ~to_server:true in
        let rec pump () =
          match Frame.Reader.next c.server_reader with
          | Frame.Reader.Await -> ()
          | Frame.Reader.Corrupt _ -> kill_conn t c
          | Frame.Reader.Frame payload ->
              (match Wire.decode_request payload with
              | Error msg -> send t c ~to_server:false (Wire.encode_response (Wire.Rejected msg))
              | Ok req ->
                  let resp = Core.handle t.core req in
                  send t c ~to_server:false (Wire.encode_response resp));
              if c.alive then pump ()
        in
        pump ();
        if reset then kill_conn t c
      end)
    (List.rev t.conns)

let crash t =
  Ra_journal.Disk.Mem.crash ~rng:t.crash_rng t.store;
  List.iter (fun c -> kill_conn t c) t.conns;
  t.conns <- [];
  match Core.recover t.disk with
  | Ok core ->
      t.core <- core;
      t.restarts <- t.restarts + 1;
      Ok ()
  | Error e -> Error ("restart after crash failed: " ^ e)

(* --- client side --------------------------------------------------------- *)

let client_conn t cl =
  match cl.conn with
  | Some c when c.alive -> c
  | _ ->
      let c = new_conn t in
      cl.conn <- Some c;
      c

let send_head t cl =
  match cl.todo with
  | [] -> ()
  | item :: _ ->
      (* anything beyond the first transmission of this item is a
         retransmission: Karn's rule bars its Ack from feeding an RTT
         sample, and the campaign counts it *)
      let re = cl.head_attempts > 0 in
      let c = client_conn t cl in
      send t c ~to_server:true (Loadgen.submit_payload item);
      cl.head_attempts <- cl.head_attempts + 1;
      cl.inflight <- Some (item.Loadgen.seq, t.now, re);
      cl.deadline <- t.now + steps_of_rto (Rtt.rto cl.rtt);
      if re then cl.retries <- cl.retries + 1

let client_absorb t cl =
  match cl.conn with
  | None -> ()
  | Some c ->
      if c.alive then begin
        let reset = deliver_due t c ~to_server:false in
        let rec pump () =
          match Frame.Reader.next c.client_reader with
          | Frame.Reader.Await -> ()
          | Frame.Reader.Corrupt _ -> kill_conn t c
          | Frame.Reader.Frame payload ->
              (match (Wire.decode_response payload, cl.inflight, cl.todo) with
              | Ok (Wire.Ack { seq; _ }), Some (fseq, sent, re), item :: rest
                when seq = fseq && seq = item.Loadgen.seq ->
                  if not re then Rtt.observe cl.rtt ((t.now - sent) * step_ns);
                  Rtt.note_success cl.rtt;
                  cl.todo <- rest;
                  cl.inflight <- None;
                  cl.head_attempts <- 0;
                  cl.acked <- cl.acked + 1;
                  cl.wait_until <- t.now
              | Ok (Wire.Busy _), Some _, _ ->
                  cl.busy <- cl.busy + 1;
                  Rtt.backoff cl.rtt;
                  cl.inflight <- None;
                  cl.wait_until <- t.now + steps_of_rto (Rtt.rto cl.rtt)
              | Ok (Wire.Rejected _), Some _, _ ->
                  (* permanent; drop the item rather than loop forever
                     (never hit by a well-formed campaign) *)
                  cl.todo <- (match cl.todo with [] -> [] | _ :: r -> r);
                  cl.inflight <- None;
                  cl.head_attempts <- 0
              | _ -> () (* stale ack for a retired item, or unsolicited *));
              if c.alive then pump ()
        in
        pump ();
        if reset then kill_conn t c
      end

let client_step t cl =
  client_absorb t cl;
  let conn_dead = match cl.conn with Some c -> not c.alive | None -> false in
  if conn_dead && cl.inflight <> None then begin
    (* the connection died under our request: back off, reconnect,
       retransmit — the Ack may or may not have been journaled, dedup
       on the server sorts it out *)
    Rtt.backoff cl.rtt;
    cl.inflight <- None;
    cl.wait_until <- t.now + steps_of_rto (Rtt.rto cl.rtt)
  end;
  match cl.inflight with
  | Some _ when t.now >= cl.deadline ->
      Rtt.backoff cl.rtt;
      send_head t cl
  | Some _ -> ()
  | None -> if cl.todo <> [] && t.now >= cl.wait_until then send_head t cl

(* --- campaign ------------------------------------------------------------ *)

let run ?jobs config =
  if config.devices < 1 || config.capacity < 1 || config.drain_every < 1 then
    invalid_arg "Netsim.run: bad config";
  let plan =
    Loadgen.plan ~devices:config.devices ~seed:config.seed
      ~reports_per_device:config.reports_per_device
  in
  let store = Ra_journal.Disk.Mem.create () in
  let disk = Ra_journal.Disk.Mem.disk store in
  let core =
    Core.create
      ~config:
        { Core.devices = config.devices; seed = config.seed; capacity = config.capacity }
      disk
  in
  let per_client = Array.make config.devices [] in
  Array.iter
    (fun (item : Loadgen.item) ->
      (* recover the roster index from the id position in the plan *)
      let idx =
        int_of_string (String.sub item.Loadgen.device 5
                         (String.length item.Loadgen.device - 5))
      in
      per_client.(idx) <- item :: per_client.(idx))
    plan;
  let t =
    {
      config;
      store;
      disk;
      core;
      conn_rng = Prng.create ~seed:(config.seed lxor 0x7e57);
      crash_rng = Prng.create ~seed:(config.seed lxor 0xdead);
      clients =
        Array.init config.devices (fun idx ->
            {
              idx;
              todo = List.rev per_client.(idx);
              rtt =
                Rtt.create ~initial_rto:(Timebase.ms 120) ~min_rto:(Timebase.ms 40)
                  ~max_rto:(Timebase.s 5) ();
              conn = None;
              inflight = None;
              head_attempts = 0;
              deadline = 0;
              wait_until = 0;
              retries = 0;
              busy = 0;
              acked = 0;
            });
      conns = [];
      next_cid = 0;
      now = 0;
      dead_conns = 0;
      restarts = 0;
    }
  in
  let all_done () = Array.for_all (fun cl -> cl.todo = []) t.clients in
  let rec loop () =
    if all_done () then Ok ()
    else if t.now >= config.max_steps then
      Error
        (Printf.sprintf "campaign did not converge within %d steps" config.max_steps)
    else begin
      t.now <- t.now + 1;
      let crashed =
        match config.crash_at with
        | Some at when at = t.now -> crash t
        | _ -> Ok ()
      in
      match crashed with
      | Error _ as e -> e
      | Ok () ->
          server_step t;
          Array.iter (fun cl -> client_step t cl) t.clients;
          if t.now mod config.drain_every = 0 then ignore (Core.drain ?jobs t.core);
          (* drop dead connections the clients have abandoned *)
          t.conns <-
            List.filter
              (fun c ->
                c.alive
                || Array.exists
                     (fun cl -> match cl.conn with Some c' -> c' == c | None -> false)
                     t.clients)
              t.conns;
          loop ()
    end
  in
  match loop () with
  | Error _ as e -> e
  | Ok () ->
      ignore (Core.drain ?jobs t.core);
      let clean, tampered, _ = World.verdict_counts (Core.world t.core) in
      Ok
        {
          counters = Core.counters t.core;
          root = Core.root t.core;
          tampered;
          clean;
          acked = Array.fold_left (fun a cl -> a + cl.acked) 0 t.clients;
          retries = Array.fold_left (fun a cl -> a + cl.retries) 0 t.clients;
          busy = Array.fold_left (fun a cl -> a + cl.busy) 0 t.clients;
          dead_conns = t.dead_conns;
          restarts = t.restarts;
          steps = t.now;
        }
