open Ra_sim
open Ra_core

(* Deterministic load: the prover side of the control plane. The plan is
   a pure function of (devices, seed, reports_per_device) — each report
   is produced by actually running the measurement process on a device
   provisioned from the same recipe the server's World uses, so the
   server verifies real evidence, not canned bytes. A deterministic
   fraction of the fleet is infected before it attests; their reports
   must come back Tampered on the server's verdict table, which is how
   the end-to-end tests check that verdicts survive the network boundary
   and a restart. *)

type item = { device : string; seq : int; report : Bytes.t }

let tamper_every = 7
let tamper_phase = 3

let is_tampered i = i mod tamper_every = tamper_phase

let expected_tampered ~devices =
  let n = ref 0 in
  for i = 0 to devices - 1 do
    if is_tampered i then incr n
  done;
  !n

let nonce ~seed ~device ~seq =
  Bytes.sub
    (Ra_crypto.Sha256.digest
       (Bytes.of_string (Printf.sprintf "loadgen nonce %d %s %d" seed device seq)))
    0 16

let plan ~devices ~seed ~reports_per_device =
  if devices < 1 || reports_per_device < 1 then
    invalid_arg "Loadgen.plan: empty campaign";
  let fleet = Fleet.create ~master_secret:(World.master_secret ~seed) () in
  let by_device =
    Array.init devices (fun i ->
        let id = World.device_id i in
        let dev = Fleet.provision fleet id ~config:World.device_config () in
        if is_tampered i then
          ignore
            (Ra_malware.Malware.install dev
               ~rng:(Prng.create ~seed:(seed lxor (0x5eed + i)))
               ~block:(3 + (i mod 5))
               ~priority:8 Ra_malware.Malware.Static);
        Array.init reports_per_device (fun s ->
            let seq = s + 1 in
            let out = ref None in
            Mp.run dev Mp.default_config
              ~nonce:(nonce ~seed ~device:id ~seq)
              ~on_complete:(fun r -> out := Some r)
              ();
            Ra_device.Device.run dev;
            match !out with
            | Some r -> { device = id; seq; report = Report.encode r }
            | None -> failwith "loadgen: measurement never completed"))
  in
  (* Round-major order: every device's report 1, then every report 2 …
     one round is a synchronized burst of [devices] submissions, which is
     exactly the arrival pattern that overruns a bounded queue and forces
     the shedding path. *)
  Array.init (devices * reports_per_device) (fun k ->
      let s = k / devices and i = k mod devices in
      by_device.(i).(s))

let submit_payload item =
  Wire.encode_request
    (Wire.Submit { device = item.device; seq = item.seq; report = item.report })
