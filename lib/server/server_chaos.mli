(** End-to-end chaos gate for the attestation control plane.

    Each trial runs a seeded loadgen campaign over the simulated network
    ({!Netsim}) under the harsh {!Ra_faults.Stream_faults.default} mix,
    injects a kill -9 at a seed-derived step, restarts through
    {!Ra_journal.Journal.restart}, and demands convergence to the exact
    state of an unkilled fault-free run of the same campaign:

    - fleet Merkle root bit-identical;
    - accepted count and verdict split identical;
    - every item acknowledged (the retry/backoff loop converges);
    - exactly one restart, recovering a non-empty journal prefix;
    - the faulted run reproduces bit-for-bit when re-run with the same
      seed, and at a different [--jobs] value.

    [ratool server-chaos] and the CI gate drive this module. *)

type trial = {
  seed : int;
  crash_step : int;
  outcome : Netsim.outcome;
  failures : string list;  (** empty iff every invariant held *)
}

type report = {
  trials : trial list;
  devices : int;
  reports_per_device : int;
  capacity : int;
  total_shed : int;
  total_retries : int;
  total_busy : int;
  total_dead_conns : int;
}

val run :
  ?jobs:int ->
  ?trials:int ->
  ?devices:int ->
  ?reports_per_device:int ->
  ?capacity:int ->
  ?seed:int ->
  unit ->
  report
(** Defaults: 5 trials, 24 devices × 4 reports, capacity 8, seed 7. *)

val ok : report -> bool

val render : report -> string
(** Human-readable trial-by-trial summary. *)
