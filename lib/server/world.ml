open Ra_core

(* The server's fleet world: the roster, a verifier view per device, and
   the verdict table the routed endpoints serve from. Provisioning is a
   pure function of (devices, seed) — the load generator builds its
   prover fleet from the same recipe, so the server can verify traffic it
   has never seen without any key exchange, exactly like a fleet enrolled
   at manufacture time. *)

type entry = {
  mutable last_seq : int;  (* highest applied submission; 0 = none *)
  mutable verdict : Verifier.verdict option;
  mutable mac : Bytes.t;
  mutable quarantined : bool;
}

type t = {
  fleet : Fleet.t;
  roster : string array;
  index : (string, int) Hashtbl.t;
  entries : entry array;
}

let device_id i = Printf.sprintf "node-%05d" i

let master_secret ~seed =
  Ra_crypto.Sha256.digest
    (Bytes.of_string (Printf.sprintf "ra-server master secret %d" seed))

let device_config =
  {
    Ra_device.Device.default_config with
    Ra_device.Device.blocks = 16;
    block_size = 256;
    modeled_block_bytes = 1024 * 1024;
  }

let build ~devices ~seed =
  if devices < 1 then invalid_arg "World.build: devices < 1";
  let fleet = Fleet.create ~master_secret:(master_secret ~seed) () in
  let roster =
    Array.init devices (fun i ->
        let id = device_id i in
        ignore (Fleet.provision fleet id ~config:device_config ());
        id)
  in
  let index = Hashtbl.create (2 * devices) in
  Array.iteri (fun i id -> Hashtbl.replace index id i) roster;
  let entries =
    Array.init devices (fun _ ->
        { last_seq = 0; verdict = None; mac = Bytes.empty; quarantined = false })
  in
  { fleet; roster; index; entries }

let fleet t = t.fleet
let devices t = Array.length t.roster
let known t id = Hashtbl.mem t.index id

let verify t ~device report_bytes =
  match Hashtbl.find_opt t.index device with
  | None -> Error "unknown device"
  | Some _ -> (
      match Report.decode report_bytes with
      | Error e -> Error ("undecodable report: " ^ e)
      | Ok report ->
          let verifier = Fleet.verifier_for t.fleet device in
          Ok (Verifier.verify verifier report, report.Report.mac))

let record t ~device ~seq verdict mac =
  match Hashtbl.find_opt t.index device with
  | None -> invalid_arg "World.record: unknown device"
  | Some i ->
      let e = t.entries.(i) in
      if seq >= e.last_seq then begin
        e.last_seq <- seq;
        e.verdict <- Some verdict;
        e.mac <- mac
      end

let quarantine t device =
  match Hashtbl.find_opt t.index device with
  | None -> false
  | Some i ->
      t.entries.(i).quarantined <- true;
      true

let state_string e =
  if e.quarantined then "quarantined"
  else
    match e.verdict with
    | None -> "unreported"
    | Some Verifier.Clean -> "clean"
    | Some Verifier.Tampered -> "tampered"

let health t =
  Array.to_list
    (Array.mapi (fun i id -> (id, state_string t.entries.(i))) t.roster)

let verdict_counts t =
  let clean = ref 0 and tampered = ref 0 and unreported = ref 0 in
  Array.iter
    (fun e ->
      match e.verdict with
      | Some Verifier.Clean -> incr clean
      | Some Verifier.Tampered -> incr tampered
      | None -> incr unreported)
    t.entries;
  (!clean, !tampered, !unreported)

(* The leaf binds identity, status and the verified transcript MAC, so
   two runs agree on the root only if every device ended with the same
   evidence — the bit-identity the restart gate compares. Quarantine
   overrides the verdict byte: an operator order is part of fleet state
   and must survive a restart visibly. *)
let status_byte e =
  if e.quarantined then "\x03"
  else
    match e.verdict with
    | None -> "\x00"
    | Some Verifier.Clean -> "\x01"
    | Some Verifier.Tampered -> "\x02"

let root t =
  let leaves =
    Array.mapi
      (fun i id ->
        let e = t.entries.(i) in
        Bytes.concat Bytes.empty
          [ Bytes.of_string id; Bytes.of_string (status_byte e); e.mac ])
      t.roster
  in
  Merkle.root_of_leaves Ra_crypto.Algo.SHA_256 ~leaves
