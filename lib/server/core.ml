module J = Ra_journal.Journal
module Ev = Ra_journal.Event
module Disk = Ra_journal.Disk

(* The deterministic heart of the attestation server. Everything that
   decides an outcome lives here — bounded queue, shedding, dedup,
   journaling, verification, the verdict table — and none of it touches a
   socket or a clock. The transports (Netsim for the simulated network,
   Tcp for real sockets) only move frames; that is what makes the
   overload counters a pure function of the traffic and lets the chaos
   harness replay campaigns bit-identically. *)

type config = { devices : int; seed : int; capacity : int }

let default_config = { devices = 32; seed = 7; capacity = 64 }

type t = {
  config : config;
  world : World.t;
  journal : J.t;
  queue : (string * int * Bytes.t) Queue.t;
  seen : (string * int, unit) Hashtbl.t;
  mutable accepted : int;
  mutable shed : int;
  mutable deduped : int;
  mutable rejected : int;
  mutable recovered : int;
}

let header_tag = "server"
let report_tag = "report"
let quarantine_tag = "quarantine"

let header_event config =
  Ev.make header_tag
    [
      ("devices", Ev.I config.devices);
      ("seed", Ev.I config.seed);
      ("capacity", Ev.I config.capacity);
    ]

let parse_header events =
  if Array.length events = 0 then Error "journal is empty"
  else
    let e = events.(0) in
    if e.Ev.tag <> header_tag then
      Error "journal does not start with a server header"
    else
      match (Ev.find_i e "devices", Ev.find_i e "seed", Ev.find_i e "capacity") with
      | Some devices, Some seed, Some capacity when devices > 0 && capacity > 0 ->
          Ok { devices; seed; capacity }
      | _ -> Error "malformed server header"

let make config world journal =
  {
    config;
    world;
    journal;
    queue = Queue.create ();
    seen = Hashtbl.create 1024;
    accepted = 0;
    shed = 0;
    deduped = 0;
    rejected = 0;
    recovered = 0;
  }

let create ?(config = default_config) disk =
  if config.capacity < 1 then invalid_arg "Core.create: capacity < 1";
  let world = World.build ~devices:config.devices ~seed:config.seed in
  let j = J.create disk in
  J.append j (header_event config);
  J.commit j;
  make config world j

(* Replay one journaled mutation during recovery. Verification is
   deterministic, so re-verifying the journaled report bytes rebuilds the
   exact verdict table the pre-crash server held — verdicts themselves
   are never journaled. *)
let replay_event t ev =
  if ev.Ev.tag = report_tag then begin
    match (Ev.find_s ev "device", Ev.find_i ev "seq") with
    | Some device, Some seq -> (
        let report = Ev.getb ev "report" in
        match World.verify t.world ~device report with
        | Ok (verdict, mac) ->
            World.record t.world ~device ~seq verdict mac;
            Hashtbl.replace t.seen (device, seq) ();
            t.accepted <- t.accepted + 1;
            t.recovered <- t.recovered + 1;
            Ok ()
        | Error e ->
            Error (Printf.sprintf "journaled report %s#%d fails verification replay: %s"
                     device seq e))
    | _ -> Error "malformed report record"
  end
  else if ev.Ev.tag = quarantine_tag then begin
    match Ev.find_s ev "device" with
    | Some device ->
        ignore (World.quarantine t.world device);
        Ok ()
    | None -> Error "malformed quarantine record"
  end
  else Ok ()

let recover disk =
  let ctx = ref None in
  let validate (r : J.recovery) ~keep:_ =
    match parse_header r.J.events with
    | Error _ as e -> e
    | Ok config ->
        ctx := Some (config, r.J.events);
        Ok ()
  in
  (* Every acknowledged event is a consistency point for the server —
     unlike the supervisor there are no multi-event rounds to roll back
     to, so keep the whole decodable log. *)
  match J.restart ~validate disk ~keep:(fun r -> Array.length r.J.events) with
  | Error _ as e -> e
  | Ok (_, journal) -> (
      match !ctx with
      | None -> Error "restart validated but captured no header (bug)"
      | Some (config, events) ->
          let world = World.build ~devices:config.devices ~seed:config.seed in
          let t = make config world journal in
          let rec replay i =
            if i >= Array.length events then Ok t
            else
              match replay_event t events.(i) with
              | Ok () -> replay (i + 1)
              | Error _ as e -> e
          in
          replay 1)

let config t = t.config
let world t = t.world
let pending t = Queue.length t.queue
let root t = World.root t.world

let counters t =
  {
    Wire.accepted = t.accepted;
    shed = t.shed;
    deduped = t.deduped;
    rejected = t.rejected;
    recovered = t.recovered;
  }

let submit t ~device ~seq report =
  if not (World.known t.world device) then begin
    t.rejected <- t.rejected + 1;
    Wire.Rejected (Printf.sprintf "unknown device %s" device)
  end
  else if seq < 1 then begin
    t.rejected <- t.rejected + 1;
    Wire.Rejected "sequence numbers start at 1"
  end
  else if Hashtbl.mem t.seen (device, seq) then begin
    (* A retransmit of an already-durable report (the Ack was lost, or
       the client outlived a crash we recovered from): re-acknowledge
       without touching the journal. *)
    t.deduped <- t.deduped + 1;
    (* ralint: allow O1 — re-ack of a report (device, seq) already journaled
       and committed before its first Ack; nothing new to make durable *)
    Wire.Ack { device; seq }
  end
  else if Queue.length t.queue >= t.config.capacity then begin
    t.shed <- t.shed + 1;
    Wire.Busy { queued = Queue.length t.queue; capacity = t.config.capacity }
  end
  else begin
    (* Durable before acknowledged: the journal record and its commit
       precede the Ack, so an Ack the client acted on is never lost to a
       kill -9. *)
    J.append t.journal
      (Ev.make report_tag
         [ ("device", Ev.S device); ("seq", Ev.I seq); ("report", Ev.B report) ]);
    J.commit t.journal;
    Hashtbl.replace t.seen (device, seq) ();
    Queue.add (device, seq, report) t.queue;
    t.accepted <- t.accepted + 1;
    Wire.Ack { device; seq }
  end

(* Drain the accepted queue through verification. Batch items are grouped
   by device (one verifier view per group) and the groups verified on the
   domain pool; results are folded back in dequeue order, so verdict-table
   updates — and every counter — are bit-identical for any [jobs]. *)
let drain ?jobs t =
  let n = Queue.length t.queue in
  if n = 0 then 0
  else begin
    let batch = Array.init n (fun _ -> Queue.pop t.queue) in
    let groups = Hashtbl.create 64 in
    let order = ref [] in
    Array.iter
      (fun (device, seq, report) ->
        match Hashtbl.find_opt groups device with
        | Some items -> items := (seq, report) :: !items
        | None ->
            Hashtbl.replace groups device (ref [ (seq, report) ]);
            order := device :: !order)
      batch;
    let order = Array.of_list (List.rev !order) in
    let verified =
      Ra_parallel.parallel_map ?jobs
        (fun device ->
          let items = List.rev !(Hashtbl.find groups device) in
          List.map
            (fun (seq, report) ->
              (seq, World.verify t.world ~device report))
            items)
        order
    in
    Array.iteri
      (fun gi device ->
        List.iter
          (fun (seq, result) ->
            match result with
            | Ok (verdict, mac) -> World.record t.world ~device ~seq verdict mac
            | Error _ ->
                (* journaled bytes that fail to decode can only mean the
                   journal itself lied; submit already validated them *)
                assert false)
          verified.(gi))
      order;
    n
  end

let handle ?jobs t request =
  match request with
  | Wire.Submit { device; seq; report } -> submit t ~device ~seq report
  | Wire.Fleet_health ->
      ignore (drain ?jobs t);
      Wire.Health (World.health t.world)
  | Wire.Quarantine device ->
      if World.quarantine t.world device then begin
        J.append t.journal (Ev.make quarantine_tag [ ("device", Ev.S device) ]);
        J.commit t.journal;
        Wire.Ack { device; seq = 0 }
      end
      else begin
        t.rejected <- t.rejected + 1;
        Wire.Rejected (Printf.sprintf "unknown device %s" device)
      end
  | Wire.Fleet_root ->
      ignore (drain ?jobs t);
      Wire.Root (World.root t.world)
  | Wire.Counters -> Wire.Stats (counters t)
