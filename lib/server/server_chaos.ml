open Ra_sim

(* The end-to-end chaos gate for the control plane: seeded campaigns over
   the simulated network, each under the harsh stream-fault mix with a
   kill -9 injected mid-ingest, checked against an unkilled fault-free
   reference run of the same campaign. A trial passes only if the faulted,
   killed, restarted campaign converges to the exact state of the
   undisturbed one — same fleet root, same accepted count, same verdict
   split — and does so reproducibly (the faulted run is executed twice and
   at two --jobs values, which must agree bit for bit). *)

type trial = {
  seed : int;
  crash_step : int;
  outcome : Netsim.outcome;
  failures : string list;
}

type report = {
  trials : trial list;
  devices : int;
  reports_per_device : int;
  capacity : int;
  total_shed : int;
  total_retries : int;
  total_busy : int;
  total_dead_conns : int;
}

let ok report = List.for_all (fun t -> t.failures = []) report.trials

let signature (o : Netsim.outcome) =
  Printf.sprintf "acc=%d shed=%d dedup=%d rej=%d acked=%d retries=%d busy=%d dead=%d root=%s"
    o.Netsim.counters.Wire.accepted o.Netsim.counters.Wire.shed
    o.Netsim.counters.Wire.deduped o.Netsim.counters.Wire.rejected
    o.Netsim.acked o.Netsim.retries o.Netsim.busy o.Netsim.dead_conns
    (Ra_crypto.Bytesutil.to_hex o.Netsim.root)

let run_trial ?jobs ~devices ~reports_per_device ~capacity seed =
  let rng = Prng.create ~seed:(seed lxor 0xc4a05) in
  let crash_step = 20 + Prng.int rng ~bound:60 in
  let base =
    {
      Netsim.default with
      Netsim.devices;
      reports_per_device;
      capacity;
      seed;
    }
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let total = devices * reports_per_device in
  let faulted = { base with Netsim.crash_at = Some crash_step } in
  match Netsim.run ?jobs faulted with
  | Error e ->
      {
        seed;
        crash_step;
        outcome =
          {
            Netsim.counters =
              { Wire.accepted = 0; shed = 0; deduped = 0; rejected = 0; recovered = 0 };
            root = Bytes.empty;
            tampered = 0;
            clean = 0;
            acked = 0;
            retries = 0;
            busy = 0;
            dead_conns = 0;
            restarts = 0;
            steps = 0;
          };
        failures = [ "campaign failed outright: " ^ e ];
      }
  | Ok outcome ->
      (* the unkilled, fault-free reference *)
      (match Netsim.run ?jobs { base with Netsim.faults = Ra_faults.Stream_faults.ideal } with
      | Error e -> fail "reference run failed: %s" e
      | Ok reference ->
          if not (Bytes.equal outcome.Netsim.root reference.Netsim.root) then
            fail "fleet root diverged from the unkilled run: %s vs %s"
              (Ra_crypto.Bytesutil.to_hex outcome.Netsim.root)
              (Ra_crypto.Bytesutil.to_hex reference.Netsim.root);
          if outcome.Netsim.counters.Wire.accepted <> reference.Netsim.counters.Wire.accepted
          then
            fail "accepted diverged: %d vs %d" outcome.Netsim.counters.Wire.accepted
              reference.Netsim.counters.Wire.accepted;
          if outcome.Netsim.tampered <> reference.Netsim.tampered then
            fail "tampered verdicts diverged: %d vs %d" outcome.Netsim.tampered
              reference.Netsim.tampered);
      if outcome.Netsim.acked <> total then
        fail "campaign retired %d of %d items" outcome.Netsim.acked total;
      if outcome.Netsim.restarts <> 1 then
        fail "expected exactly one restart, saw %d" outcome.Netsim.restarts;
      if outcome.Netsim.counters.Wire.recovered = 0 then
        fail "restart recovered nothing from the journal";
      (* reproducibility: same seed, same bytes — twice, and across jobs *)
      (match Netsim.run ?jobs faulted with
      | Error e -> fail "determinism rerun failed: %s" e
      | Ok again ->
          if signature again <> signature outcome then
            fail "same seed produced different campaigns:\n  %s\n  %s"
              (signature outcome) (signature again));
      (match Netsim.run ~jobs:(match jobs with Some 1 -> 2 | _ -> 1) faulted with
      | Error e -> fail "jobs-invariance run failed: %s" e
      | Ok other ->
          if signature other <> signature outcome then
            fail "outcome depends on --jobs:\n  %s\n  %s" (signature outcome)
              (signature other));
      { seed; crash_step; outcome; failures = List.rev !failures }

let run ?jobs ?(trials = 5) ?(devices = 24) ?(reports_per_device = 4)
    ?(capacity = 8) ?(seed = 7) () =
  let trials =
    List.init trials (fun i ->
        run_trial ?jobs ~devices ~reports_per_device ~capacity (seed + (1000 * i)))
  in
  {
    trials;
    devices;
    reports_per_device;
    capacity;
    total_shed =
      List.fold_left (fun a t -> a + t.outcome.Netsim.counters.Wire.shed) 0 trials;
    total_retries = List.fold_left (fun a t -> a + t.outcome.Netsim.retries) 0 trials;
    total_busy = List.fold_left (fun a t -> a + t.outcome.Netsim.busy) 0 trials;
    total_dead_conns =
      List.fold_left (fun a t -> a + t.outcome.Netsim.dead_conns) 0 trials;
  }

let render r =
  let b = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  p "server-chaos: %d trial(s), %d devices x %d reports, queue capacity %d"
    (List.length r.trials) r.devices r.reports_per_device r.capacity;
  List.iter
    (fun t ->
      let o = t.outcome in
      p "  seed %-6d kill@%-3d %s" t.seed t.crash_step
        (if t.failures = [] then "ok" else "FAIL");
      p "    accepted=%d shed=%d deduped=%d recovered=%d acked=%d retries=%d busy=%d dead-conns=%d steps=%d"
        o.Netsim.counters.Wire.accepted o.Netsim.counters.Wire.shed
        o.Netsim.counters.Wire.deduped o.Netsim.counters.Wire.recovered
        o.Netsim.acked o.Netsim.retries o.Netsim.busy o.Netsim.dead_conns
        o.Netsim.steps;
      p "    root=%s" (Ra_crypto.Bytesutil.to_hex o.Netsim.root);
      List.iter (fun f -> p "    - %s" f) t.failures)
    r.trials;
  p "  totals: shed=%d retries=%d busy=%d dead-conns=%d" r.total_shed
    r.total_retries r.total_busy r.total_dead_conns;
  p "  invariants: %s" (if ok r then "all hold" else "VIOLATED");
  Buffer.contents b
