(** The attestation control plane's wire messages.

    One request or response is one {!Ra_journal.Codec} payload carried in
    one stream frame ({!Ra_core.Frame.seal_stream}); the frame layer
    handles integrity and reassembly, this layer handles meaning. All
    decoding is total: truncation, unknown tags and trailing bytes come
    back as [Error], so the worst a hostile payload achieves is a dropped
    connection. *)

type request =
  | Submit of { device : string; seq : int; report : Bytes.t }
      (** one attestation report ([report] is {!Ra_core.Report.encode}
          output); [(device, seq)] identifies the submission for dedup,
          so a retransmit after a lost Ack is re-acknowledged, never
          double-counted *)
  | Fleet_health  (** routed endpoint: per-device verdict summary *)
  | Quarantine of string  (** routed endpoint: operator quarantine order *)
  | Fleet_root  (** routed endpoint: fleet Merkle root over verdicts *)
  | Counters  (** routed endpoint: ingest counters *)

type counters = {
  accepted : int;  (** unique reports journaled then processed (ever) *)
  shed : int;  (** submissions refused with [Busy] since this start *)
  deduped : int;  (** retransmits re-acknowledged without re-journaling *)
  rejected : int;  (** malformed or unknown-device submissions *)
  recovered : int;  (** reports replayed out of the journal at restart *)
}

type response =
  | Ack of { device : string; seq : int }
      (** the report is durable (journaled and committed) — the client
          may retire it *)
  | Busy of { queued : int; capacity : int }
      (** bounded queue full: explicit backpressure. The client backs
          off (RFC 6298) and retries; nothing was journaled *)
  | Rejected of string  (** permanent: retrying the same bytes is useless *)
  | Health of (string * string) list  (** (device, state), roster order *)
  | Root of Bytes.t
  | Stats of counters

val encode_request : request -> Bytes.t
val decode_request : Bytes.t -> (request, string) result
val encode_response : response -> Bytes.t
val decode_response : Bytes.t -> (response, string) result

val response_to_string : response -> string
(** One-line rendering for logs and the loadgen trace. *)
