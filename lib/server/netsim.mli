(** The simulated network: a full loadgen-vs-server campaign in process.

    Clients drive a {!Core} over virtual byte streams damaged by
    {!Ra_faults.Stream_faults}, in discrete steps — no socket, no clock,
    no thread. The whole campaign (every torn write, stalled link,
    mid-frame reset, shed [Busy], RFC 6298 retry, and optionally a
    mid-campaign kill -9 with journal-backed restart) is a pure function
    of the config. That purity is what server-chaos gates on: counters
    deterministic per seed, invariant across [--jobs], and the
    post-restart fleet root bit-identical to an unkilled run's. The
    real-TCP path ({!Tcp}) reuses the same client logic shape but can
    only approximate these guarantees, which is why the gates live
    here. *)

type config = {
  devices : int;
  reports_per_device : int;
  seed : int;
  capacity : int;  (** server's bounded queue depth *)
  drain_every : int;  (** steps between verification drains *)
  faults : Ra_faults.Stream_faults.config;
  crash_at : int option;  (** kill -9 the server at this step *)
  max_steps : int;  (** fail-safe bound; exceeding it is an error *)
}

val default : config
(** 24 devices × 4 reports against a depth-8 queue under
    {!Ra_faults.Stream_faults.default} — busy enough to shed, harsh
    enough to retry. *)

type outcome = {
  counters : Wire.counters;
  root : Bytes.t;  (** fleet Merkle root after the final drain *)
  tampered : int;
  clean : int;
  acked : int;  (** items retired by an Ack; = plan size on success *)
  retries : int;
  busy : int;
  dead_conns : int;
  restarts : int;
  steps : int;
}

val run : ?jobs:int -> config -> (outcome, string) result
(** Run one campaign to completion (every item acknowledged). [Error]
    when the campaign exceeds [max_steps] or a post-crash restart fails —
    both recovery-invariant violations, surfaced, never masked. *)
