open Ra_core

(* The only file in the tree that touches sockets and the wall clock (the
   ralint Unix-confinement rule pins it here). Deliberately thin: every
   decision — shed or accept, dedup, journal, verdict — lives in Core;
   this file only moves bytes through select(2) and keeps one slow client
   from stalling the rest:

   - all accepted fds are non-blocking; reads happen only on
     select-readable fds, so a connection that stops mid-frame just
     parks its half-frame in its Reader;
   - responses go through a per-connection out-buffer flushed on
     select-writable, so a client that stops *reading* absorbs its own
     backpressure (and is disconnected at a buffer cap) instead of
     blocking the accept loop in write(2). *)

let chunk_size = 8192
let out_cap = 4 * 1024 * 1024

type tconn = {
  fd : Unix.file_descr;
  reader : Frame.Reader.t;
  mutable out : Bytes.t;  (* unsent response bytes *)
  mutable alive : bool;
}

let close_conn c =
  if c.alive then begin
    c.alive <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let flush_conn c =
  let n = Bytes.length c.out in
  if n > 0 then
    match Unix.write c.fd c.out 0 n with
    | written -> c.out <- Bytes.sub c.out written (n - written)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn c

let queue_response c payload =
  c.out <- Bytes.cat c.out (Frame.seal_stream payload);
  if Bytes.length c.out > out_cap then close_conn c else flush_conn c

let serve ?(host = "127.0.0.1") ?jobs ?(config = Core.default_config)
    ?(fresh = false) ~port ~dir () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let disk = Ra_journal.Disk.file ~dir in
  let has_journal = disk.Ra_journal.Disk.read Ra_journal.Journal.wal_file <> None in
  let core =
    if (not fresh) && has_journal then
      match Core.recover disk with
      | Ok core -> core
      | Error e ->
          Printf.eprintf "ra-server: recovery failed: %s\n%!" e;
          exit 1
    else Core.create ~config disk
  in
  let cfg = Core.config core in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listen_fd 64;
  let c0 = Core.counters core in
  Printf.printf
    "ra-server: listening on %s:%d (devices=%d seed=%d capacity=%d recovered=%d)\n%!"
    host port cfg.Core.devices cfg.Core.seed cfg.Core.capacity c0.Wire.recovered;
  let conns = ref [] in
  let buf = Bytes.create chunk_size in
  let handle_readable c =
    match Unix.read c.fd buf 0 chunk_size with
    | 0 -> close_conn c
    | n ->
        Frame.Reader.feed c.reader ~len:n buf;
        let rec pump () =
          match Frame.Reader.next c.reader with
          | Frame.Reader.Await -> ()
          | Frame.Reader.Corrupt _ -> close_conn c
          | Frame.Reader.Frame payload ->
              (match Wire.decode_request payload with
              | Error msg -> queue_response c (Wire.encode_response (Wire.Rejected msg))
              | Ok req ->
                  queue_response c (Wire.encode_response (Core.handle ?jobs core req)));
              if c.alive then pump ()
        in
        pump ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn c
  in
  let rec loop () =
    conns := List.filter (fun c -> c.alive) !conns;
    let rds = listen_fd :: List.map (fun c -> c.fd) !conns in
    let wrs =
      List.filter_map
        (fun c -> if Bytes.length c.out > 0 then Some c.fd else None)
        !conns
    in
    let readable, writable, _ =
      match Unix.select rds wrs [] 0.05 with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem listen_fd readable then begin
      match Unix.accept listen_fd with
      | fd, _ ->
          Unix.set_nonblock fd;
          conns :=
            { fd; reader = Frame.Reader.create (); out = Bytes.empty; alive = true }
            :: !conns
      | exception Unix.Unix_error _ -> ()
    end;
    List.iter
      (fun c -> if c.alive && List.mem c.fd readable then handle_readable c)
      !conns;
    List.iter
      (fun c -> if c.alive && List.mem c.fd writable then flush_conn c)
      !conns;
    if Core.pending core > 0 then ignore (Core.drain ?jobs core);
    loop ()
  in
  loop ()

(* --- client side --------------------------------------------------------- *)

let connect ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)

let send_frame fd payload =
  let frame = Frame.seal_stream payload in
  let n = Bytes.length frame in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write fd frame off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

(* Read whole frames off [fd] until the reader yields one, with an
   absolute deadline. *)
let read_frame fd reader ~deadline =
  let buf = Bytes.create chunk_size in
  let rec go () =
    match Frame.Reader.next reader with
    | Frame.Reader.Frame payload -> Ok payload
    | Frame.Reader.Corrupt msg -> Error ("stream corrupt: " ^ msg)
    | Frame.Reader.Await ->
        let timeout = deadline -. Unix.gettimeofday () in
        if timeout <= 0. then Error "timeout"
        else (
          match Unix.select [ fd ] [] [] timeout with
          | [], _, _ -> Error "timeout"
          | _ -> (
              match Unix.read fd buf 0 chunk_size with
              | 0 -> Error "connection closed"
              | n ->
                  Frame.Reader.feed reader ~len:n buf;
                  go ()
              | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let request ?(host = "127.0.0.1") ?(timeout_s = 5.) ~port req =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match connect ~host ~port with
  | Error e -> Error ("connect: " ^ e)
  | Ok fd ->
      let finish r =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        r
      in
      let deadline = Unix.gettimeofday () +. timeout_s in
      finish
        (match send_frame fd (Wire.encode_request req) with
        | Error e -> Error ("send: " ^ e)
        | Ok () -> (
            match read_frame fd (Frame.Reader.create ()) ~deadline with
            | Error e -> Error e
            | Ok payload -> Wire.decode_response payload))

(* --- the load-generator campaign over real sockets ----------------------- *)

type campaign = {
  acked : int;
  retries : int;
  busy : int;
  reconnects : int;
  stats : Wire.counters;
  root : Bytes.t;
  tampered : int;
  clean : int;
  wall_s : float;
  reports_per_s : float;
}

type lclient = {
  id : int;
  mutable todo : Loadgen.item list;
  rtt : Rtt.t;
  mutable fd : Unix.file_descr option;
  mutable reader : Frame.Reader.t;
  mutable inflight : (int * float * bool) option;  (* seq, sent at, retrans *)
  mutable attempts : int;
  mutable deadline : float;
  mutable wait_until : float;
  mutable retries : int;
  mutable busy : int;
  mutable acked : int;
  mutable reconnects : int;
}

let rto_s rtt = float_of_int (Rtt.rto rtt) /. 1e9

let drop_conn cl =
  (match cl.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  cl.fd <- None;
  cl.reader <- Frame.Reader.create ()

let run_campaign ?(host = "127.0.0.1") ?(give_up_after_s = 180.) ~port ~devices
    ~seed ~reports_per_device () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let plan = Loadgen.plan ~devices ~seed ~reports_per_device in
  let started = Unix.gettimeofday () in
  let give_up = started +. give_up_after_s in
  let per = Array.make devices [] in
  Array.iter
    (fun (item : Loadgen.item) ->
      let idx = int_of_string (String.sub item.Loadgen.device 5 5) in
      per.(idx) <- item :: per.(idx))
    plan;
  let clients =
    Array.init devices (fun id ->
        {
          id;
          todo = List.rev per.(id);
          rtt =
            Rtt.create
              ~initial_rto:(Ra_sim.Timebase.ms 250)
              ~min_rto:(Ra_sim.Timebase.ms 50)
              ~max_rto:(Ra_sim.Timebase.s 3) ();
          fd = None;
          reader = Frame.Reader.create ();
          inflight = None;
          attempts = 0;
          deadline = 0.;
          wait_until = 0.;
          retries = 0;
          busy = 0;
          acked = 0;
          reconnects = 0;
        })
  in
  let buf = Bytes.create chunk_size in
  let send_head now cl =
    match cl.todo with
    | [] -> ()
    | item :: _ -> (
        let conn =
          match cl.fd with
          | Some fd -> Ok fd
          | None -> (
              match connect ~host ~port with
              | Ok fd ->
                  cl.fd <- Some fd;
                  cl.reader <- Frame.Reader.create ();
                  Ok fd
              | Error _ as e ->
                  (* server down (e.g. mid kill-gate): back off and keep
                     trying — outliving the restart is the whole point *)
                  cl.reconnects <- cl.reconnects + 1;
                  cl.wait_until <- now +. 0.25;
                  e)
        in
        match conn with
        | Error _ -> ()
        | Ok fd -> (
            let re = cl.attempts > 0 in
            match send_frame fd (Loadgen.submit_payload item) with
            | Ok () ->
                cl.attempts <- cl.attempts + 1;
                cl.inflight <- Some (item.Loadgen.seq, now, re);
                cl.deadline <- now +. rto_s cl.rtt;
                if re then cl.retries <- cl.retries + 1
            | Error _ ->
                drop_conn cl;
                Rtt.backoff cl.rtt;
                cl.wait_until <- now +. rto_s cl.rtt))
  in
  let absorb now cl =
    match cl.fd with
    | None -> ()
    | Some fd -> (
        match Unix.read fd buf 0 chunk_size with
        | 0 ->
            drop_conn cl;
            if cl.inflight <> None then begin
              Rtt.backoff cl.rtt;
              cl.inflight <- None;
              cl.wait_until <- now +. rto_s cl.rtt
            end
        | n ->
            Frame.Reader.feed cl.reader ~len:n buf;
            let rec pump () =
              match Frame.Reader.next cl.reader with
              | Frame.Reader.Await -> ()
              | Frame.Reader.Corrupt _ -> drop_conn cl
              | Frame.Reader.Frame payload ->
                  (match (Wire.decode_response payload, cl.inflight, cl.todo) with
                  | Ok (Wire.Ack { seq; _ }), Some (fseq, sent, re), item :: rest
                    when seq = fseq && seq = item.Loadgen.seq ->
                      if not re then
                        Rtt.observe cl.rtt
                          (int_of_float ((now -. sent) *. 1e9));
                      Rtt.note_success cl.rtt;
                      cl.todo <- rest;
                      cl.inflight <- None;
                      cl.attempts <- 0;
                      cl.acked <- cl.acked + 1;
                      cl.wait_until <- now
                  | Ok (Wire.Busy _), Some _, _ ->
                      cl.busy <- cl.busy + 1;
                      Rtt.backoff cl.rtt;
                      cl.inflight <- None;
                      cl.wait_until <- now +. rto_s cl.rtt
                  | Ok (Wire.Rejected _), Some _, _ ->
                      cl.todo <- (match cl.todo with [] -> [] | _ :: r -> r);
                      cl.inflight <- None;
                      cl.attempts <- 0
                  | _ -> ());
                  if cl.fd <> None then pump ()
            in
            pump ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
        | exception Unix.Unix_error _ ->
            drop_conn cl;
            if cl.inflight <> None then begin
              Rtt.backoff cl.rtt;
              cl.inflight <- None;
              cl.wait_until <- now +. rto_s cl.rtt
            end)
  in
  let all_done () = Array.for_all (fun cl -> cl.todo = []) clients in
  let rec loop () =
    if all_done () then Ok ()
    else if Unix.gettimeofday () > give_up then
      Error
        (Printf.sprintf "campaign did not converge within %.0f s" give_up_after_s)
    else begin
      let now = Unix.gettimeofday () in
      Array.iter
        (fun cl ->
          match cl.inflight with
          | Some _ when now >= cl.deadline ->
              Rtt.backoff cl.rtt;
              send_head now cl
          | Some _ -> ()
          | None ->
              if cl.todo <> [] && now >= cl.wait_until then send_head now cl)
        clients;
      let fds =
        Array.to_list clients
        |> List.filter_map (fun cl ->
               match cl.fd with Some fd -> Some (fd, cl) | None -> None)
      in
      (match Unix.select (List.map fst fds) [] [] 0.02 with
      | readable, _, _ ->
          let now = Unix.gettimeofday () in
          List.iter
            (fun (fd, cl) -> if List.mem fd readable then absorb now cl)
            fds
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  match loop () with
  | Error _ as e -> e
  | Ok () ->
      Array.iter (fun cl -> drop_conn cl) clients;
      let wall_s = Unix.gettimeofday () -. started in
      let q req =
        match request ~host ~port req with
        | Ok resp -> Ok resp
        | Error e -> Error ("final query failed: " ^ e)
      in
      let ( let* ) = Result.bind in
      let* stats =
        match q Wire.Counters with
        | Ok (Wire.Stats s) -> Ok s
        | Ok r -> Error ("unexpected counters response: " ^ Wire.response_to_string r)
        | Error _ as e -> e
      in
      let* root =
        match q Wire.Fleet_root with
        | Ok (Wire.Root r) -> Ok r
        | Ok r -> Error ("unexpected root response: " ^ Wire.response_to_string r)
        | Error _ as e -> e
      in
      let* health =
        match q Wire.Fleet_health with
        | Ok (Wire.Health h) -> Ok h
        | Ok r -> Error ("unexpected health response: " ^ Wire.response_to_string r)
        | Error _ as e -> e
      in
      let acked = Array.fold_left (fun a cl -> a + cl.acked) 0 clients in
      let count state =
        List.fold_left (fun a (_, s) -> if s = state then a + 1 else a) 0 health
      in
      Ok
        {
          acked;
          retries = Array.fold_left (fun a cl -> a + cl.retries) 0 clients;
          busy = Array.fold_left (fun a cl -> a + cl.busy) 0 clients;
          reconnects = Array.fold_left (fun a cl -> a + cl.reconnects) 0 clients;
          stats;
          root;
          tampered = count "tampered";
          clean = count "clean";
          wall_s;
          reports_per_s = (if wall_s > 0. then float_of_int acked /. wall_s else 0.);
        }

let render_campaign (c : campaign) =
  let b = Buffer.create 512 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  p "loadgen: acked=%d retries=%d busy=%d reconnects=%d in %.2f s (%.0f reports/s)"
    c.acked c.retries c.busy c.reconnects c.wall_s c.reports_per_s;
  p "  server: accepted=%d shed=%d deduped=%d rejected=%d recovered=%d"
    c.stats.Wire.accepted c.stats.Wire.shed c.stats.Wire.deduped
    c.stats.Wire.rejected c.stats.Wire.recovered;
  p "  fleet:  clean=%d tampered=%d root=%s" c.clean c.tampered
    (Ra_crypto.Bytesutil.to_hex c.root);
  Buffer.contents b
