let name = "BLAKE2s"
let digest_size = 32
let block_size = 64

(* ralint: allow P2 — IV constant table, read-only after init. *)
let iv =
  [|
    0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
    0x1f83d9ab; 0x5be0cd19;
  |]

(* ralint: allow P2 — message-schedule permutation table, read-only. *)
let sigma =
  [|
    [| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 |];
    [| 14; 10; 4; 8; 9; 15; 13; 6; 1; 12; 0; 2; 11; 7; 5; 3 |];
    [| 11; 8; 12; 0; 5; 2; 15; 13; 10; 14; 3; 6; 7; 1; 9; 4 |];
    [| 7; 9; 3; 1; 13; 12; 11; 14; 2; 6; 5; 10; 4; 0; 15; 8 |];
    [| 9; 0; 5; 7; 2; 4; 10; 15; 14; 1; 11; 12; 6; 8; 3; 13 |];
    [| 2; 12; 6; 10; 0; 11; 8; 3; 4; 13; 7; 5; 15; 14; 1; 9 |];
    [| 12; 5; 1; 15; 14; 13; 4; 10; 0; 7; 6; 3; 9; 2; 8; 11 |];
    [| 13; 11; 7; 14; 12; 1; 3; 9; 5; 0; 15; 4; 8; 6; 2; 10 |];
    [| 6; 15; 14; 9; 11; 3; 0; 8; 12; 2; 13; 7; 1; 4; 10; 5 |];
    [| 10; 2; 8; 4; 7; 6; 1; 5; 15; 11; 9; 14; 3; 12; 13; 0 |];
  |]

type ctx = {
  h : int array;
  buf : Bytes.t;
  mutable buf_len : int;
  mutable t : int;
  out_len : int;
  m : int array;
  v : int array;
}

let mask = 0xFFFFFFFF

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

(* Hot loop. bounds: mirrors Blake2b.compress — the fixed G-function
   indices and sigma rows in 0..15 keep every unsafe access into the
   16-slot scratch arrays in range, and unsafe_load32_le reads 4*i with
   i <= 15 from the 64-byte buf.
   cross-check: Ra_crypto.Checked.blake2s keeps the bounds-checked
   reference that test/test_crypto.ml qcheck-diffs against this one. *)
let compress ctx ~last =
  let m = ctx.m and v = ctx.v in
  for i = 0 to 15 do
    Array.unsafe_set m i (Bytesutil.unsafe_load32_le ctx.buf (4 * i))
  done;
  for i = 0 to 7 do
    Array.unsafe_set v i (Array.unsafe_get ctx.h i);
    Array.unsafe_set v (i + 8) (Array.unsafe_get iv i)
  done;
  v.(12) <- v.(12) lxor (ctx.t land mask);
  v.(13) <- v.(13) lxor ((ctx.t lsr 32) land mask);
  if last then v.(14) <- v.(14) lxor mask;
  let g a b c d m0 m1 =
    let va = (Array.unsafe_get v a + Array.unsafe_get v b + m0) land mask in
    let vd = rotr (Array.unsafe_get v d lxor va) 16 in
    let vc = (Array.unsafe_get v c + vd) land mask in
    let vb = rotr (Array.unsafe_get v b lxor vc) 12 in
    let va = (va + vb + m1) land mask in
    let vd = rotr (vd lxor va) 8 in
    let vc = (vc + vd) land mask in
    let vb = rotr (vb lxor vc) 7 in
    Array.unsafe_set v a va;
    Array.unsafe_set v b vb;
    Array.unsafe_set v c vc;
    Array.unsafe_set v d vd
  in
  for r = 0 to 9 do
    let s = Array.unsafe_get sigma r in
    let mw i = Array.unsafe_get m (Array.unsafe_get s i) in
    g 0 4 8 12 (mw 0) (mw 1);
    g 1 5 9 13 (mw 2) (mw 3);
    g 2 6 10 14 (mw 4) (mw 5);
    g 3 7 11 15 (mw 6) (mw 7);
    g 0 5 10 15 (mw 8) (mw 9);
    g 1 6 11 12 (mw 10) (mw 11);
    g 2 7 8 13 (mw 12) (mw 13);
    g 3 4 9 14 (mw 14) (mw 15)
  done;
  for i = 0 to 7 do
    ctx.h.(i) <- ctx.h.(i) lxor v.(i) lxor v.(i + 8)
  done

let init_keyed ~key ~size =
  let key_len = Bytes.length key in
  if size < 1 || size > 32 then invalid_arg "Blake2s: digest size out of range";
  if key_len > 32 then invalid_arg "Blake2s: key longer than 32 bytes";
  let h = Array.copy iv in
  let param = 0x01010000 lor (key_len lsl 8) lor size in
  h.(0) <- h.(0) lxor param;
  let ctx =
    {
      h;
      buf = Bytes.make block_size '\000';
      buf_len = 0;
      t = 0;
      out_len = size;
      m = Array.make 16 0;
      v = Array.make 16 0;
    }
  in
  if key_len > 0 then begin
    Bytes.blit key 0 ctx.buf 0 key_len;
    ctx.buf_len <- block_size
  end;
  ctx

let init () = init_keyed ~key:Bytes.empty ~size:digest_size

let copy ctx =
  {
    h = Array.copy ctx.h;
    buf = Bytes.copy ctx.buf;
    buf_len = ctx.buf_len;
    t = ctx.t;
    out_len = ctx.out_len;
    m = Array.make 16 0; (* scratch, no state *)
    v = Array.make 16 0;
  }

let update ctx src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Blake2s.update: slice out of bounds";
  let offset = ref pos and remaining = ref len in
  while !remaining > 0 do
    if ctx.buf_len = block_size then begin
      ctx.t <- ctx.t + block_size;
      compress ctx ~last:false;
      ctx.buf_len <- 0
    end;
    let take = min !remaining (block_size - ctx.buf_len) in
    Bytes.blit src !offset ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    offset := !offset + take;
    remaining := !remaining - take
  done

let finalize ctx =
  ctx.t <- ctx.t + ctx.buf_len;
  Bytes.fill ctx.buf ctx.buf_len (block_size - ctx.buf_len) '\000';
  compress ctx ~last:true;
  let full = Bytes.create 32 in
  for i = 0 to 7 do
    Bytesutil.store32_le full (4 * i) ctx.h.(i)
  done;
  Bytes.sub full 0 ctx.out_len

let digest b =
  let ctx = init () in
  update ctx b ~pos:0 ~len:(Bytes.length b);
  finalize ctx

let hex_digest s = Bytesutil.to_hex (digest (Bytes.of_string s))

let mac ~key b =
  let ctx = init_keyed ~key ~size:digest_size in
  update ctx b ~pos:0 ~len:(Bytes.length b);
  finalize ctx

let digest_sized ~size b =
  let ctx = init_keyed ~key:Bytes.empty ~size in
  update ctx b ~pos:0 ~len:(Bytes.length b);
  finalize ctx
