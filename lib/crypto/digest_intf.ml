(** Common signature implemented by every hash function in this library.

    A context is single-use: after {!S.finalize} it must not be updated
    again. All functions operate on whole or sliced [Bytes.t]. *)

module type S = sig
  val name : string
  (** Canonical algorithm name, e.g. ["SHA-256"]. *)

  val digest_size : int
  (** Output length in bytes. *)

  val block_size : int
  (** Internal block length in bytes (needed by HMAC). *)

  type ctx

  val init : unit -> ctx

  val copy : ctx -> ctx
  (** Independent snapshot of the absorbed state: the original and the
      copy can be updated and finalized separately. This is what makes a
      precomputed HMAC key schedule reusable across messages. *)

  val update : ctx -> Bytes.t -> pos:int -> len:int -> unit
  (** Absorb [len] bytes of input starting at [pos]. Raises
      [Invalid_argument] if the slice is out of bounds. *)

  val finalize : ctx -> Bytes.t
  (** Produce the digest. The context must not be used afterwards. *)

  val digest : Bytes.t -> Bytes.t
  (** One-shot convenience: [digest b = finalize (init () |> update b)]. *)

  val hex_digest : string -> string
  (** One-shot over a string input, hex-encoded output. *)
end
