(** Bounds-checked reference implementations of the four hash functions.

    The production modules run their compress loops with unsafe array and
    byte accesses for speed; this module keeps an independent, fully
    checked, one-shot formulation of each hash compiled in so the qcheck
    equivalence tests can diff optimized against reference on random
    inputs. Use the production modules everywhere else. *)

val sha256 : Bytes.t -> Bytes.t
(** Must agree with [Sha256.digest] on every input. *)

val sha512 : Bytes.t -> Bytes.t
(** Must agree with [Sha512.digest] on every input. *)

val blake2b : Bytes.t -> Bytes.t
(** Must agree with [Blake2b.digest] (unkeyed, 64-byte) on every input. *)

val blake2s : Bytes.t -> Bytes.t
(** Must agree with [Blake2s.digest] (unkeyed, 32-byte) on every input. *)

val sha256_many : Bytes.t array -> Bytes.t array
(** Naive batch reference: [Array.map sha256]. Must agree with
    [Sha256_multi.digest_many] (every lane count) on every batch. *)
