type hash = SHA_256 | SHA_512 | BLAKE2b | BLAKE2s

let all_hashes = [ SHA_256; SHA_512; BLAKE2b; BLAKE2s ]

let hash_name = function
  | SHA_256 -> "SHA-256"
  | SHA_512 -> "SHA-512"
  | BLAKE2b -> "BLAKE2b"
  | BLAKE2s -> "BLAKE2s"

let hash_module = function
  | SHA_256 -> (module Sha256 : Digest_intf.S)
  | SHA_512 -> (module Sha512 : Digest_intf.S)
  | BLAKE2b -> (module Blake2b : Digest_intf.S)
  | BLAKE2s -> (module Blake2s : Digest_intf.S)

let normalise s =
  String.lowercase_ascii
    (String.concat "" (String.split_on_char '-' (String.trim s)))

let hash_of_name s =
  match normalise s with
  | "sha256" -> Some SHA_256
  | "sha512" -> Some SHA_512
  | "blake2b" -> Some BLAKE2b
  | "blake2s" -> Some BLAKE2s
  | _ -> None

let digest h b =
  let module H = (val hash_module h) in
  H.digest b

(* SHA-256 has an interleaved multi-block kernel; the other algorithms
   fall back to the scalar loop (BLAKE2's G already mixes four
   independent chains per round, so interleaving whole blocks on top of
   it was measured to buy nothing — see DESIGN.md). *)
let digest_many h msgs =
  match h with
  | SHA_256 -> Sha256_multi.digest_many msgs
  | SHA_512 | BLAKE2b | BLAKE2s ->
    let module H = (val hash_module h) in
    Array.map H.digest msgs

let hmac h ~key b =
  match h with
  | SHA_256 -> Hmac.Sha256.mac ~key b
  | SHA_512 -> Hmac.Sha512.mac ~key b
  | BLAKE2b -> Blake2b.mac ~key b
  | BLAKE2s -> Blake2s.mac ~key b

let digest_size h =
  let module H = (val hash_module h) in
  H.digest_size
