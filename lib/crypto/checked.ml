(* Bounds-checked reference implementations of the four hash functions.

   The production modules (Sha256, Sha512, Blake2b, Blake2s) run their
   compress loops with Array.unsafe_get/set and word-at-a-time unchecked
   byte loads; this module keeps the plain, fully checked formulation
   compiled in so the qcheck equivalence suite can diff the two on random
   inputs spanning block boundaries. Everything here favours obvious
   correctness over speed: byte-by-byte loads, default (checked) array
   accesses, one-shot processing with no streaming buffer. *)

let mask32 = 0xFFFFFFFF

let byte b i = Char.code (Bytes.get b i)

let load32_be b i =
  (byte b i lsl 24) lor (byte b (i + 1) lsl 16) lor (byte b (i + 2) lsl 8)
  lor byte b (i + 3)

let load32_le b i =
  byte b i lor (byte b (i + 1) lsl 8) lor (byte b (i + 2) lsl 16)
  lor (byte b (i + 3) lsl 24)

let load64_be b i =
  let hi = Int64.of_int (load32_be b i) in
  let lo = Int64.of_int (load32_be b (i + 4)) in
  Int64.logor (Int64.shift_left hi 32) lo

let load64_le b i =
  let lo = Int64.of_int (load32_le b i) in
  let hi = Int64.of_int (load32_le b (i + 4)) in
  Int64.logor (Int64.shift_left hi 32) lo

let store32_be b i v =
  Bytes.set b i (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (i + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (i + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (i + 3) (Char.chr (v land 0xff))

let store32_le b i v =
  Bytes.set b i (Char.chr (v land 0xff));
  Bytes.set b (i + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (i + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (i + 3) (Char.chr ((v lsr 24) land 0xff))

let store64_be b i v =
  store32_be b i (Int64.to_int (Int64.shift_right_logical v 32) land mask32);
  store32_be b (i + 4) (Int64.to_int v land mask32)

let store64_le b i v =
  store32_le b i (Int64.to_int v land mask32);
  store32_le b (i + 4) (Int64.to_int (Int64.shift_right_logical v 32) land mask32)

(* Pad a message for the SHA-2 family: 0x80, zeros, then the bit length in
   the trailing [length_bytes] big-endian bytes of the last block. *)
let sha2_pad msg ~block ~length_bytes =
  let len = Bytes.length msg in
  let rem = (len + 1 + length_bytes) mod block in
  let pad = if rem = 0 then 1 else 1 + (block - rem) in
  let out = Bytes.make (len + pad + length_bytes) '\000' in
  Bytes.blit msg 0 out 0 len;
  Bytes.set out len '\x80';
  store64_be out (Bytes.length out - 8) (Int64.of_int (8 * len));
  out

(* --- SHA-256 ----------------------------------------------------------- *)

(* ralint: allow P2 — round-constant table, read-only after init. *)
let sha256_k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

let sha256 msg =
  let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32 in
  let h = Array.copy [|
    0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
    0x1f83d9ab; 0x5be0cd19;
  |] in
  let padded = sha2_pad msg ~block:64 ~length_bytes:8 in
  let w = Array.make 64 0 in
  for blk = 0 to (Bytes.length padded / 64) - 1 do
    for i = 0 to 15 do
      w.(i) <- load32_be padded ((64 * blk) + (4 * i))
    done;
    for i = 16 to 63 do
      let s0 = rotr w.(i - 15) 7 lxor rotr w.(i - 15) 18 lxor (w.(i - 15) lsr 3) in
      let s1 = rotr w.(i - 2) 17 lxor rotr w.(i - 2) 19 lxor (w.(i - 2) lsr 10) in
      w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask32
    done;
    let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
    let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
    for i = 0 to 63 do
      let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
      let ch = (!e land !f) lxor (lnot !e land !g) in
      let temp1 = (!hh + s1 + ch + sha256_k.(i) + w.(i)) land mask32 in
      let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
      let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
      let temp2 = (s0 + maj) land mask32 in
      hh := !g; g := !f; f := !e;
      e := (!d + temp1) land mask32;
      d := !c; c := !b; b := !a;
      a := (temp1 + temp2) land mask32
    done;
    h.(0) <- (h.(0) + !a) land mask32;
    h.(1) <- (h.(1) + !b) land mask32;
    h.(2) <- (h.(2) + !c) land mask32;
    h.(3) <- (h.(3) + !d) land mask32;
    h.(4) <- (h.(4) + !e) land mask32;
    h.(5) <- (h.(5) + !f) land mask32;
    h.(6) <- (h.(6) + !g) land mask32;
    h.(7) <- (h.(7) + !hh) land mask32
  done;
  let out = Bytes.create 32 in
  for i = 0 to 7 do store32_be out (4 * i) h.(i) done;
  out

(* --- SHA-512 ----------------------------------------------------------- *)

(* ralint: allow P2 — round-constant table, read-only after init. *)
let sha512_k =
  [|
    0x428a2f98d728ae22L; 0x7137449123ef65cdL; 0xb5c0fbcfec4d3b2fL;
    0xe9b5dba58189dbbcL; 0x3956c25bf348b538L; 0x59f111f1b605d019L;
    0x923f82a4af194f9bL; 0xab1c5ed5da6d8118L; 0xd807aa98a3030242L;
    0x12835b0145706fbeL; 0x243185be4ee4b28cL; 0x550c7dc3d5ffb4e2L;
    0x72be5d74f27b896fL; 0x80deb1fe3b1696b1L; 0x9bdc06a725c71235L;
    0xc19bf174cf692694L; 0xe49b69c19ef14ad2L; 0xefbe4786384f25e3L;
    0x0fc19dc68b8cd5b5L; 0x240ca1cc77ac9c65L; 0x2de92c6f592b0275L;
    0x4a7484aa6ea6e483L; 0x5cb0a9dcbd41fbd4L; 0x76f988da831153b5L;
    0x983e5152ee66dfabL; 0xa831c66d2db43210L; 0xb00327c898fb213fL;
    0xbf597fc7beef0ee4L; 0xc6e00bf33da88fc2L; 0xd5a79147930aa725L;
    0x06ca6351e003826fL; 0x142929670a0e6e70L; 0x27b70a8546d22ffcL;
    0x2e1b21385c26c926L; 0x4d2c6dfc5ac42aedL; 0x53380d139d95b3dfL;
    0x650a73548baf63deL; 0x766a0abb3c77b2a8L; 0x81c2c92e47edaee6L;
    0x92722c851482353bL; 0xa2bfe8a14cf10364L; 0xa81a664bbc423001L;
    0xc24b8b70d0f89791L; 0xc76c51a30654be30L; 0xd192e819d6ef5218L;
    0xd69906245565a910L; 0xf40e35855771202aL; 0x106aa07032bbd1b8L;
    0x19a4c116b8d2d0c8L; 0x1e376c085141ab53L; 0x2748774cdf8eeb99L;
    0x34b0bcb5e19b48a8L; 0x391c0cb3c5c95a63L; 0x4ed8aa4ae3418acbL;
    0x5b9cca4f7763e373L; 0x682e6ff3d6b2b8a3L; 0x748f82ee5defb2fcL;
    0x78a5636f43172f60L; 0x84c87814a1f0ab72L; 0x8cc702081a6439ecL;
    0x90befffa23631e28L; 0xa4506cebde82bde9L; 0xbef9a3f7b2c67915L;
    0xc67178f2e372532bL; 0xca273eceea26619cL; 0xd186b8c721c0c207L;
    0xeada7dd6cde0eb1eL; 0xf57d4f7fee6ed178L; 0x06f067aa72176fbaL;
    0x0a637dc5a2c898a6L; 0x113f9804bef90daeL; 0x1b710b35131c471bL;
    0x28db77f523047d84L; 0x32caab7b40c72493L; 0x3c9ebe0a15c9bebcL;
    0x431d67c49c100d4cL; 0x4cc5d4becb3e42b6L; 0x597f299cfc657e2aL;
    0x5fcb6fab3ad6faecL; 0x6c44198c4a475817L;
  |]

let sha512 msg =
  let open Int64 in
  let rotr x n = logor (shift_right_logical x n) (shift_left x (64 - n)) in
  let h = Array.copy [|
    0x6a09e667f3bcc908L; 0xbb67ae8584caa73bL; 0x3c6ef372fe94f82bL;
    0xa54ff53a5f1d36f1L; 0x510e527fade682d1L; 0x9b05688c2b3e6c1fL;
    0x1f83d9abfb41bd6bL; 0x5be0cd19137e2179L;
  |] in
  let padded = sha2_pad msg ~block:128 ~length_bytes:16 in
  let w = Array.make 80 0L in
  for blk = 0 to (Bytes.length padded / 128) - 1 do
    for i = 0 to 15 do
      w.(i) <- load64_be padded ((128 * blk) + (8 * i))
    done;
    for i = 16 to 79 do
      let x = w.(i - 15) in
      let s0 = logxor (logxor (rotr x 1) (rotr x 8)) (shift_right_logical x 7) in
      let y = w.(i - 2) in
      let s1 = logxor (logxor (rotr y 19) (rotr y 61)) (shift_right_logical y 6) in
      w.(i) <- add (add w.(i - 16) s0) (add w.(i - 7) s1)
    done;
    let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
    let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
    for i = 0 to 79 do
      let s1 = logxor (logxor (rotr !e 14) (rotr !e 18)) (rotr !e 41) in
      let ch = logxor (logand !e !f) (logand (lognot !e) !g) in
      let temp1 = add (add !hh s1) (add ch (add sha512_k.(i) w.(i))) in
      let s0 = logxor (logxor (rotr !a 28) (rotr !a 34)) (rotr !a 39) in
      let maj = logxor (logxor (logand !a !b) (logand !a !c)) (logand !b !c) in
      let temp2 = add s0 maj in
      hh := !g; g := !f; f := !e;
      e := add !d temp1;
      d := !c; c := !b; b := !a;
      a := add temp1 temp2
    done;
    h.(0) <- add h.(0) !a; h.(1) <- add h.(1) !b;
    h.(2) <- add h.(2) !c; h.(3) <- add h.(3) !d;
    h.(4) <- add h.(4) !e; h.(5) <- add h.(5) !f;
    h.(6) <- add h.(6) !g; h.(7) <- add h.(7) !hh
  done;
  let out = Bytes.create 64 in
  for i = 0 to 7 do store64_be out (8 * i) h.(i) done;
  out

(* --- BLAKE2 (shared round shape, specialised per word size) ------------ *)

(* ralint: allow P2 — permutation constant table, read-only. *)
let sigma =
  [|
    [| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 |];
    [| 14; 10; 4; 8; 9; 15; 13; 6; 1; 12; 0; 2; 11; 7; 5; 3 |];
    [| 11; 8; 12; 0; 5; 2; 15; 13; 10; 14; 3; 6; 7; 1; 9; 4 |];
    [| 7; 9; 3; 1; 13; 12; 11; 14; 2; 6; 5; 10; 4; 0; 15; 8 |];
    [| 9; 0; 5; 7; 2; 4; 10; 15; 14; 1; 11; 12; 6; 8; 3; 13 |];
    [| 2; 12; 6; 10; 0; 11; 8; 3; 4; 13; 7; 5; 15; 14; 1; 9 |];
    [| 12; 5; 1; 15; 14; 13; 4; 10; 0; 7; 6; 3; 9; 2; 8; 11 |];
    [| 13; 11; 7; 14; 12; 1; 3; 9; 5; 0; 15; 4; 8; 6; 2; 10 |];
    [| 6; 15; 14; 9; 11; 3; 0; 8; 12; 2; 13; 7; 1; 4; 10; 5 |];
    [| 10; 2; 8; 4; 7; 6; 1; 5; 15; 11; 9; 14; 3; 12; 13; 0 |];
  |]

let blake2b msg =
  let open Int64 in
  let rotr x n = logor (shift_right_logical x n) (shift_left x (64 - n)) in
  let iv = [|
    0x6a09e667f3bcc908L; 0xbb67ae8584caa73bL; 0x3c6ef372fe94f82bL;
    0xa54ff53a5f1d36f1L; 0x510e527fade682d1L; 0x9b05688c2b3e6c1fL;
    0x1f83d9abfb41bd6bL; 0x5be0cd19137e2179L;
  |] in
  let h = Array.copy iv in
  h.(0) <- logxor h.(0) (of_int (0x01010000 lor 64));
  let len = Bytes.length msg in
  let nblocks = Stdlib.max 1 ((len + 127) / 128) in
  let m = Array.make 16 0L and v = Array.make 16 0L in
  let compress_block ~t ~last block =
    for i = 0 to 15 do m.(i) <- load64_le block (8 * i) done;
    for i = 0 to 7 do
      v.(i) <- h.(i);
      v.(i + 8) <- iv.(i)
    done;
    v.(12) <- logxor v.(12) (of_int t);
    if last then v.(14) <- lognot v.(14);
    let g r i a b c d =
      let s = sigma.(r mod 10) in
      v.(a) <- add (add v.(a) v.(b)) m.(s.(2 * i));
      v.(d) <- rotr (logxor v.(d) v.(a)) 32;
      v.(c) <- add v.(c) v.(d);
      v.(b) <- rotr (logxor v.(b) v.(c)) 24;
      v.(a) <- add (add v.(a) v.(b)) m.(s.((2 * i) + 1));
      v.(d) <- rotr (logxor v.(d) v.(a)) 16;
      v.(c) <- add v.(c) v.(d);
      v.(b) <- rotr (logxor v.(b) v.(c)) 63
    in
    for r = 0 to 11 do
      g r 0 0 4 8 12; g r 1 1 5 9 13; g r 2 2 6 10 14; g r 3 3 7 11 15;
      g r 4 0 5 10 15; g r 5 1 6 11 12; g r 6 2 7 8 13; g r 7 3 4 9 14
    done;
    for i = 0 to 7 do
      h.(i) <- logxor h.(i) (logxor v.(i) v.(i + 8))
    done
  in
  for blk = 0 to nblocks - 1 do
    let last = blk = nblocks - 1 in
    let t = Stdlib.min len ((blk + 1) * 128) in
    let block = Bytes.make 128 '\000' in
    Bytes.blit msg (blk * 128) block 0 (Stdlib.min 128 (len - (blk * 128)));
    compress_block ~t ~last block
  done;
  let out = Bytes.create 64 in
  for i = 0 to 7 do store64_le out (8 * i) h.(i) done;
  out

let blake2s msg =
  let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32 in
  let iv = [|
    0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
    0x1f83d9ab; 0x5be0cd19;
  |] in
  let h = Array.copy iv in
  h.(0) <- h.(0) lxor (0x01010000 lor 32);
  let len = Bytes.length msg in
  let nblocks = max 1 ((len + 63) / 64) in
  let m = Array.make 16 0 and v = Array.make 16 0 in
  let compress_block ~t ~last block =
    for i = 0 to 15 do m.(i) <- load32_le block (4 * i) done;
    for i = 0 to 7 do
      v.(i) <- h.(i);
      v.(i + 8) <- iv.(i)
    done;
    v.(12) <- v.(12) lxor (t land mask32);
    v.(13) <- v.(13) lxor ((t lsr 32) land mask32);
    if last then v.(14) <- v.(14) lxor mask32;
    let g r i a b c d =
      let s = sigma.(r) in
      v.(a) <- (v.(a) + v.(b) + m.(s.(2 * i))) land mask32;
      v.(d) <- rotr (v.(d) lxor v.(a)) 16;
      v.(c) <- (v.(c) + v.(d)) land mask32;
      v.(b) <- rotr (v.(b) lxor v.(c)) 12;
      v.(a) <- (v.(a) + v.(b) + m.(s.((2 * i) + 1))) land mask32;
      v.(d) <- rotr (v.(d) lxor v.(a)) 8;
      v.(c) <- (v.(c) + v.(d)) land mask32;
      v.(b) <- rotr (v.(b) lxor v.(c)) 7
    in
    for r = 0 to 9 do
      g r 0 0 4 8 12; g r 1 1 5 9 13; g r 2 2 6 10 14; g r 3 3 7 11 15;
      g r 4 0 5 10 15; g r 5 1 6 11 12; g r 6 2 7 8 13; g r 7 3 4 9 14
    done;
    for i = 0 to 7 do
      h.(i) <- h.(i) lxor v.(i) lxor v.(i + 8)
    done
  in
  for blk = 0 to nblocks - 1 do
    let last = blk = nblocks - 1 in
    let t = min len ((blk + 1) * 64) in
    let block = Bytes.make 64 '\000' in
    Bytes.blit msg (blk * 64) block 0 (min 64 (len - (blk * 64)));
    compress_block ~t ~last block
  done;
  let out = Bytes.create 32 in
  for i = 0 to 7 do store32_le out (4 * i) h.(i) done;
  out

(* Batch reference: the interleaved kernel must be observationally just a
   map of the one-shot over the batch. *)
let sha256_many msgs = Array.map sha256 msgs
