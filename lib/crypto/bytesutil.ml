(* cross-check: every unsafe_* load/store here is exercised against the
   byte-at-a-time Checked implementations (lib/crypto/checked.ml) by the
   qcheck diff tests in test/test_crypto.ml. *)

let hex_digits = "0123456789abcdef"

(* bounds: out has 2n bytes; i < n so 2i+1 <= 2n-1, and v is a byte so
   both nibble indexes into hex_digits are < 16. *)
let to_hex b =
  let n = Bytes.length b in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let v = Char.code (Bytes.unsafe_get b i) in
    Bytes.unsafe_set out (2 * i) hex_digits.[v lsr 4];
    Bytes.unsafe_set out ((2 * i) + 1) hex_digits.[v land 0xf]
  done;
  Bytes.unsafe_to_string out

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Bytesutil.of_hex: invalid character"

(* bounds: out has n/2 bytes and i < n/2; nibble rejects non-hex input
   before unsafe_chr ever sees a value, and the lor of two nibbles is
   always < 256. *)
let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Bytesutil.of_hex: odd length";
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    Bytes.unsafe_set out i
      (Char.unsafe_chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
  done;
  out

(* bounds: lengths of a, b and out are all n (checked above); the lxor of
   two bytes stays < 256. *)
let xor a b =
  let n = Bytes.length a in
  if Bytes.length b <> n then invalid_arg "Bytesutil.xor: length mismatch";
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set out i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get a i) lxor Char.code (Bytes.unsafe_get b i)))
  done;
  out

(* bounds: both inputs checked to have length n before the loop; i < n. *)
let constant_time_equal a b =
  let n = Bytes.length a in
  if Bytes.length b <> n then false
  else begin
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc lor (Char.code (Bytes.unsafe_get a i) lxor Char.code (Bytes.unsafe_get b i))
    done;
    !acc = 0
  end

(* Word-at-a-time loads. The %caml_bytes_get32u/64u primitives compile to a
   single (unaligned) memory access with no bounds check; the compress loops
   of the hash functions only ever call them with offsets that the loop
   structure already bounds, so the checked wrappers below stay the public
   default while the [unsafe_] variants carry the hot paths. *)
external get_32u : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external get_64u : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external swap32 : int32 -> int32 = "%bswap_int32"
external swap64 : int64 -> int64 = "%bswap_int64"

let mask32 = 0xFFFFFFFF

let unsafe_load32_be b i =
  let v = if Sys.big_endian then get_32u b i else swap32 (get_32u b i) in
  Int32.to_int v land mask32

let unsafe_load32_le b i =
  let v = if Sys.big_endian then swap32 (get_32u b i) else get_32u b i in
  Int32.to_int v land mask32

let unsafe_load64_be b i =
  if Sys.big_endian then get_64u b i else swap64 (get_64u b i)

let unsafe_load64_le b i =
  if Sys.big_endian then swap64 (get_64u b i) else get_64u b i

let check_bounds name b i width =
  if i < 0 || i + width > Bytes.length b then invalid_arg name

(* bounds: check_bounds validates [i, i+4) before the unsafe load. *)
let load32_be b i =
  check_bounds "Bytesutil.load32_be" b i 4;
  unsafe_load32_be b i

(* bounds: callers (hash finalize paths) guarantee [i, i+4) is inside b;
   each stored value is masked to a byte before unsafe_chr. *)
let store32_be b i v =
  Bytes.unsafe_set b i (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set b (i + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (i + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (i + 3) (Char.unsafe_chr (v land 0xff))

(* bounds: check_bounds validates [i, i+4) before the unsafe load. *)
let load32_le b i =
  check_bounds "Bytesutil.load32_le" b i 4;
  unsafe_load32_le b i

(* bounds: callers guarantee [i, i+4) is inside b; each stored value is
   masked to a byte before unsafe_chr. *)
let store32_le b i v =
  Bytes.unsafe_set b i (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (i + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (i + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (i + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

(* bounds: check_bounds validates [i, i+8) before the unsafe load. *)
let load64_be b i =
  check_bounds "Bytesutil.load64_be" b i 8;
  unsafe_load64_be b i

let store64_be b i v =
  store32_be b i (Int64.to_int (Int64.shift_right_logical v 32) land 0xFFFFFFFF);
  store32_be b (i + 4) (Int64.to_int v land 0xFFFFFFFF)

(* bounds: check_bounds validates [i, i+8) before the unsafe load. *)
let load64_le b i =
  check_bounds "Bytesutil.load64_le" b i 8;
  unsafe_load64_le b i

let store64_le b i v =
  store32_le b i (Int64.to_int v land 0xFFFFFFFF);
  store32_le b (i + 4) (Int64.to_int (Int64.shift_right_logical v 32) land 0xFFFFFFFF)
