(** Enumeration of the hash primitives the paper benchmarks (Fig. 2), with
    first-class-module dispatch so callers can be parameterised by choice. *)

type hash = SHA_256 | SHA_512 | BLAKE2b | BLAKE2s

val all_hashes : hash list
(** In the paper's Fig. 2 order. *)

val hash_name : hash -> string

val hash_module : hash -> (module Digest_intf.S)

val hash_of_name : string -> hash option
(** Case-insensitive; accepts e.g. ["sha256"], ["SHA-256"], ["blake2b"]. *)

val digest : hash -> Bytes.t -> Bytes.t

val digest_many : hash -> Bytes.t array -> Bytes.t array
(** Digest a batch of independent messages, bit-identical to mapping
    {!digest} but routed through an interleaved multi-way kernel where
    one exists (SHA-256; the rest fall back to the scalar loop).
    Worth it whenever the caller already holds many blocks — one fleet
    measurement round produces thousands. *)

val hmac : hash -> key:Bytes.t -> Bytes.t -> Bytes.t
(** HMAC for the SHA family; native keyed mode for the BLAKE2 family
    (BLAKE2's designed-in MAC, cheaper than wrapping it in HMAC). *)

val digest_size : hash -> int
