(** Byte-level helpers shared by the hash implementations. *)

val to_hex : Bytes.t -> string
(** Lowercase hexadecimal encoding. *)

val of_hex : string -> Bytes.t
(** Inverse of {!to_hex}. Raises [Invalid_argument] on odd length or
    non-hex characters. *)

val xor : Bytes.t -> Bytes.t -> Bytes.t
(** Byte-wise xor. Raises [Invalid_argument] on length mismatch. *)

val constant_time_equal : Bytes.t -> Bytes.t -> bool
(** Comparison whose running time depends only on the length, as required
    when comparing MACs. Unequal lengths return [false] immediately. *)

val load32_be : Bytes.t -> int -> int
(** Big-endian 32-bit load, result in [\[0, 2^32)]. Bounds-checked; raises
    [Invalid_argument] when the 4-byte window does not fit. *)

val unsafe_load32_be : Bytes.t -> int -> int
(** Single-instruction load with {e no} bounds check. Only for call sites
    where the index is statically bounded (the hash compress loops). *)

val unsafe_load32_le : Bytes.t -> int -> int

val unsafe_load64_be : Bytes.t -> int -> int64

val unsafe_load64_le : Bytes.t -> int -> int64

val store32_be : Bytes.t -> int -> int -> unit

val load32_le : Bytes.t -> int -> int

val store32_le : Bytes.t -> int -> int -> unit

val load64_be : Bytes.t -> int -> int64

val store64_be : Bytes.t -> int -> int64 -> unit

val load64_le : Bytes.t -> int -> int64

val store64_le : Bytes.t -> int -> int64 -> unit
