module Make (H : Digest_intf.S) = struct
  (* Precomputed key schedule: the inner state after absorbing the ipad
     block and the outer state after absorbing the opad block. Deriving it
     costs the key normalisation plus two compress calls; every MAC under
     the same key clones these states instead of re-deriving them, which
     is what keeps batch verification from paying the key setup per
     report. *)
  type schedule = { inner0 : H.ctx; outer0 : H.ctx }

  type ctx = { inner : H.ctx; sched : schedule }

  let normalise_key key =
    let block = Bytes.make H.block_size '\000' in
    if Bytes.length key > H.block_size then begin
      let hashed = H.digest key in
      Bytes.blit hashed 0 block 0 (Bytes.length hashed)
    end
    else Bytes.blit key 0 block 0 (Bytes.length key);
    block

  let schedule ~key =
    let key_block = normalise_key key in
    let ipad = Bytes.map (fun c -> Char.chr (Char.code c lxor 0x36)) key_block in
    let opad = Bytes.map (fun c -> Char.chr (Char.code c lxor 0x5c)) key_block in
    let inner0 = H.init () in
    H.update inner0 ipad ~pos:0 ~len:H.block_size;
    let outer0 = H.init () in
    H.update outer0 opad ~pos:0 ~len:H.block_size;
    { inner0; outer0 }

  let init_with sched = { inner = H.copy sched.inner0; sched }

  let init ~key = init_with (schedule ~key)

  let update t src ~pos ~len = H.update t.inner src ~pos ~len

  let finalize t =
    let inner_digest = H.finalize t.inner in
    let outer = H.copy t.sched.outer0 in
    H.update outer inner_digest ~pos:0 ~len:(Bytes.length inner_digest);
    H.finalize outer

  let mac_with sched msg =
    let t = init_with sched in
    update t msg ~pos:0 ~len:(Bytes.length msg);
    finalize t

  let mac ~key msg = mac_with (schedule ~key) msg

  let verify_with sched ~tag msg =
    Bytesutil.constant_time_equal tag (mac_with sched msg)

  let verify ~key ~tag msg = verify_with (schedule ~key) ~tag msg

  let verify_many ~key pairs =
    let sched = schedule ~key in
    Array.map (fun (msg, tag) -> verify_with sched ~tag msg) pairs
end

module Sha256 = Make (Sha256)
module Sha512 = Make (Sha512)
