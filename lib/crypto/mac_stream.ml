type inner =
  | Hmac256 of Hmac.Sha256.ctx
  | Hmac512 of Hmac.Sha512.ctx
  | B2b of Blake2b.ctx
  | B2s of Blake2s.ctx

type t = inner

let create hash ~key =
  match hash with
  | Algo.SHA_256 -> Hmac256 (Hmac.Sha256.init ~key)
  | Algo.SHA_512 -> Hmac512 (Hmac.Sha512.init ~key)
  | Algo.BLAKE2b -> B2b (Blake2b.init_keyed ~key ~size:Blake2b.digest_size)
  | Algo.BLAKE2s -> B2s (Blake2s.init_keyed ~key ~size:Blake2s.digest_size)

(* Key schedules: the HMAC family stores the precomputed ipad/opad
   states; the BLAKE2 family the post-key-block context. Either way, one
   key setup serves any number of messages via a cheap state copy. *)
type key_schedule =
  | Sched256 of Hmac.Sha256.schedule
  | Sched512 of Hmac.Sha512.schedule
  | SchedB2b of Blake2b.ctx
  | SchedB2s of Blake2s.ctx

let schedule hash ~key =
  match hash with
  | Algo.SHA_256 -> Sched256 (Hmac.Sha256.schedule ~key)
  | Algo.SHA_512 -> Sched512 (Hmac.Sha512.schedule ~key)
  | Algo.BLAKE2b -> SchedB2b (Blake2b.init_keyed ~key ~size:Blake2b.digest_size)
  | Algo.BLAKE2s -> SchedB2s (Blake2s.init_keyed ~key ~size:Blake2s.digest_size)

let create_with = function
  | Sched256 s -> Hmac256 (Hmac.Sha256.init_with s)
  | Sched512 s -> Hmac512 (Hmac.Sha512.init_with s)
  | SchedB2b c -> B2b (Blake2b.copy c)
  | SchedB2s c -> B2s (Blake2s.copy c)

let update_sub t src ~pos ~len =
  match t with
  | Hmac256 c -> Hmac.Sha256.update c src ~pos ~len
  | Hmac512 c -> Hmac.Sha512.update c src ~pos ~len
  | B2b c -> Blake2b.update c src ~pos ~len
  | B2s c -> Blake2s.update c src ~pos ~len

let update t src = update_sub t src ~pos:0 ~len:(Bytes.length src)

let finalize = function
  | Hmac256 c -> Hmac.Sha256.finalize c
  | Hmac512 c -> Hmac.Sha512.finalize c
  | B2b c -> Blake2b.finalize c
  | B2s c -> Blake2s.finalize c

let mac hash ~key msg =
  let t = create hash ~key in
  update t msg;
  finalize t
