(* Interleaved multi-way SHA-256: the batch counterpart to Sha256.

   GENERATED FILE -- emitted by tools/gen_sha256_multi.py. Edit the
   generator and re-run it (python3 tools/gen_sha256_multi.py) instead of
   editing this file by hand; the kernels below are deliberately
   straight-line so that N independent compress dependency chains are
   woven through one instruction stream and hide each other's latency.
   Rationale for the exact formulation lives in the generator's docstring
   and DESIGN.md's performance notes.

   cross-check: Ra_crypto.Checked.sha256_many keeps a bounds-checked
   one-shot reference; test/test_crypto.ml qcheck-diffs every lane
   configuration of digest_many against it (ragged lengths, odd batches,
   block-boundary sizes). *)

let mask = 0xFFFFFFFF

(* Same rotation trick as Sha256: the 32-bit word duplicated into bits
   32..62 turns rotr into one logical shift; every rotation count used is
   >= 2 so the copy of bit 31 that falls off the 63-bit int never lands
   in an extracted window. *)
let dup x = x lor (x lsl 32)

(* ralint: allow P2 -- SHA-256 initial state, read-only after init. *)
let iv =
  [|
    0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
    0x1f83d9ab; 0x5be0cd19;
  |]

(* bounds: every unsafe access on a w<l> scratch uses a literal index in
   0..63 against the 64-word arrays digest_many allocates; every unsafe
   access on an st<l> state a literal index in 0..7 against 8-word
   arrays; and every unsafe_load32_be reads at p<l> + 4*i with i <= 15,
   inside the 64-byte block that digest_many's whole-block loop bound
   (p<l> + 64 <= length b<l>) guarantees. *)
let compress2 st0 st1 w0 w1 b0 p0 b1 p1 =
  let msk = mask in
  let m0_0 = Bytesutil.unsafe_load32_be b0 (p0 + 0) in
  Array.unsafe_set w0 0 (m0_0 + 0x428a2f98);
  let m0_1 = Bytesutil.unsafe_load32_be b0 (p0 + 4) in
  Array.unsafe_set w0 1 (m0_1 + 0x71374491);
  let m0_2 = Bytesutil.unsafe_load32_be b0 (p0 + 8) in
  Array.unsafe_set w0 2 (m0_2 + 0xb5c0fbcf);
  let m0_3 = Bytesutil.unsafe_load32_be b0 (p0 + 12) in
  Array.unsafe_set w0 3 (m0_3 + 0xe9b5dba5);
  let m0_4 = Bytesutil.unsafe_load32_be b0 (p0 + 16) in
  Array.unsafe_set w0 4 (m0_4 + 0x3956c25b);
  let m0_5 = Bytesutil.unsafe_load32_be b0 (p0 + 20) in
  Array.unsafe_set w0 5 (m0_5 + 0x59f111f1);
  let m0_6 = Bytesutil.unsafe_load32_be b0 (p0 + 24) in
  Array.unsafe_set w0 6 (m0_6 + 0x923f82a4);
  let m0_7 = Bytesutil.unsafe_load32_be b0 (p0 + 28) in
  Array.unsafe_set w0 7 (m0_7 + 0xab1c5ed5);
  let m0_8 = Bytesutil.unsafe_load32_be b0 (p0 + 32) in
  Array.unsafe_set w0 8 (m0_8 + 0xd807aa98);
  let m0_9 = Bytesutil.unsafe_load32_be b0 (p0 + 36) in
  Array.unsafe_set w0 9 (m0_9 + 0x12835b01);
  let m0_10 = Bytesutil.unsafe_load32_be b0 (p0 + 40) in
  Array.unsafe_set w0 10 (m0_10 + 0x243185be);
  let m0_11 = Bytesutil.unsafe_load32_be b0 (p0 + 44) in
  Array.unsafe_set w0 11 (m0_11 + 0x550c7dc3);
  let m0_12 = Bytesutil.unsafe_load32_be b0 (p0 + 48) in
  Array.unsafe_set w0 12 (m0_12 + 0x72be5d74);
  let m0_13 = Bytesutil.unsafe_load32_be b0 (p0 + 52) in
  Array.unsafe_set w0 13 (m0_13 + 0x80deb1fe);
  let m0_14 = Bytesutil.unsafe_load32_be b0 (p0 + 56) in
  Array.unsafe_set w0 14 (m0_14 + 0x9bdc06a7);
  let m0_15 = Bytesutil.unsafe_load32_be b0 (p0 + 60) in
  Array.unsafe_set w0 15 (m0_15 + 0xc19bf174);
  let x15 = dup m0_1 and x2 = dup m0_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_14 lsr 10)) land msk in
  let m0_0 = (m0_0 + s0 + m0_9 + s1) land msk in
  Array.unsafe_set w0 16 (m0_0 + 0xe49b69c1);
  let x15 = dup m0_2 and x2 = dup m0_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_15 lsr 10)) land msk in
  let m0_1 = (m0_1 + s0 + m0_10 + s1) land msk in
  Array.unsafe_set w0 17 (m0_1 + 0xefbe4786);
  let x15 = dup m0_3 and x2 = dup m0_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_0 lsr 10)) land msk in
  let m0_2 = (m0_2 + s0 + m0_11 + s1) land msk in
  Array.unsafe_set w0 18 (m0_2 + 0x0fc19dc6);
  let x15 = dup m0_4 and x2 = dup m0_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_1 lsr 10)) land msk in
  let m0_3 = (m0_3 + s0 + m0_12 + s1) land msk in
  Array.unsafe_set w0 19 (m0_3 + 0x240ca1cc);
  let x15 = dup m0_5 and x2 = dup m0_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_2 lsr 10)) land msk in
  let m0_4 = (m0_4 + s0 + m0_13 + s1) land msk in
  Array.unsafe_set w0 20 (m0_4 + 0x2de92c6f);
  let x15 = dup m0_6 and x2 = dup m0_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_3 lsr 10)) land msk in
  let m0_5 = (m0_5 + s0 + m0_14 + s1) land msk in
  Array.unsafe_set w0 21 (m0_5 + 0x4a7484aa);
  let x15 = dup m0_7 and x2 = dup m0_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_4 lsr 10)) land msk in
  let m0_6 = (m0_6 + s0 + m0_15 + s1) land msk in
  Array.unsafe_set w0 22 (m0_6 + 0x5cb0a9dc);
  let x15 = dup m0_8 and x2 = dup m0_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_5 lsr 10)) land msk in
  let m0_7 = (m0_7 + s0 + m0_0 + s1) land msk in
  Array.unsafe_set w0 23 (m0_7 + 0x76f988da);
  let x15 = dup m0_9 and x2 = dup m0_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_6 lsr 10)) land msk in
  let m0_8 = (m0_8 + s0 + m0_1 + s1) land msk in
  Array.unsafe_set w0 24 (m0_8 + 0x983e5152);
  let x15 = dup m0_10 and x2 = dup m0_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_7 lsr 10)) land msk in
  let m0_9 = (m0_9 + s0 + m0_2 + s1) land msk in
  Array.unsafe_set w0 25 (m0_9 + 0xa831c66d);
  let x15 = dup m0_11 and x2 = dup m0_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_8 lsr 10)) land msk in
  let m0_10 = (m0_10 + s0 + m0_3 + s1) land msk in
  Array.unsafe_set w0 26 (m0_10 + 0xb00327c8);
  let x15 = dup m0_12 and x2 = dup m0_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_9 lsr 10)) land msk in
  let m0_11 = (m0_11 + s0 + m0_4 + s1) land msk in
  Array.unsafe_set w0 27 (m0_11 + 0xbf597fc7);
  let x15 = dup m0_13 and x2 = dup m0_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_10 lsr 10)) land msk in
  let m0_12 = (m0_12 + s0 + m0_5 + s1) land msk in
  Array.unsafe_set w0 28 (m0_12 + 0xc6e00bf3);
  let x15 = dup m0_14 and x2 = dup m0_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_11 lsr 10)) land msk in
  let m0_13 = (m0_13 + s0 + m0_6 + s1) land msk in
  Array.unsafe_set w0 29 (m0_13 + 0xd5a79147);
  let x15 = dup m0_15 and x2 = dup m0_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_12 lsr 10)) land msk in
  let m0_14 = (m0_14 + s0 + m0_7 + s1) land msk in
  Array.unsafe_set w0 30 (m0_14 + 0x06ca6351);
  let x15 = dup m0_0 and x2 = dup m0_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_13 lsr 10)) land msk in
  let m0_15 = (m0_15 + s0 + m0_8 + s1) land msk in
  Array.unsafe_set w0 31 (m0_15 + 0x14292967);
  let x15 = dup m0_1 and x2 = dup m0_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_14 lsr 10)) land msk in
  let m0_0 = (m0_0 + s0 + m0_9 + s1) land msk in
  Array.unsafe_set w0 32 (m0_0 + 0x27b70a85);
  let x15 = dup m0_2 and x2 = dup m0_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_15 lsr 10)) land msk in
  let m0_1 = (m0_1 + s0 + m0_10 + s1) land msk in
  Array.unsafe_set w0 33 (m0_1 + 0x2e1b2138);
  let x15 = dup m0_3 and x2 = dup m0_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_0 lsr 10)) land msk in
  let m0_2 = (m0_2 + s0 + m0_11 + s1) land msk in
  Array.unsafe_set w0 34 (m0_2 + 0x4d2c6dfc);
  let x15 = dup m0_4 and x2 = dup m0_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_1 lsr 10)) land msk in
  let m0_3 = (m0_3 + s0 + m0_12 + s1) land msk in
  Array.unsafe_set w0 35 (m0_3 + 0x53380d13);
  let x15 = dup m0_5 and x2 = dup m0_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_2 lsr 10)) land msk in
  let m0_4 = (m0_4 + s0 + m0_13 + s1) land msk in
  Array.unsafe_set w0 36 (m0_4 + 0x650a7354);
  let x15 = dup m0_6 and x2 = dup m0_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_3 lsr 10)) land msk in
  let m0_5 = (m0_5 + s0 + m0_14 + s1) land msk in
  Array.unsafe_set w0 37 (m0_5 + 0x766a0abb);
  let x15 = dup m0_7 and x2 = dup m0_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_4 lsr 10)) land msk in
  let m0_6 = (m0_6 + s0 + m0_15 + s1) land msk in
  Array.unsafe_set w0 38 (m0_6 + 0x81c2c92e);
  let x15 = dup m0_8 and x2 = dup m0_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_5 lsr 10)) land msk in
  let m0_7 = (m0_7 + s0 + m0_0 + s1) land msk in
  Array.unsafe_set w0 39 (m0_7 + 0x92722c85);
  let x15 = dup m0_9 and x2 = dup m0_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_6 lsr 10)) land msk in
  let m0_8 = (m0_8 + s0 + m0_1 + s1) land msk in
  Array.unsafe_set w0 40 (m0_8 + 0xa2bfe8a1);
  let x15 = dup m0_10 and x2 = dup m0_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_7 lsr 10)) land msk in
  let m0_9 = (m0_9 + s0 + m0_2 + s1) land msk in
  Array.unsafe_set w0 41 (m0_9 + 0xa81a664b);
  let x15 = dup m0_11 and x2 = dup m0_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_8 lsr 10)) land msk in
  let m0_10 = (m0_10 + s0 + m0_3 + s1) land msk in
  Array.unsafe_set w0 42 (m0_10 + 0xc24b8b70);
  let x15 = dup m0_12 and x2 = dup m0_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_9 lsr 10)) land msk in
  let m0_11 = (m0_11 + s0 + m0_4 + s1) land msk in
  Array.unsafe_set w0 43 (m0_11 + 0xc76c51a3);
  let x15 = dup m0_13 and x2 = dup m0_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_10 lsr 10)) land msk in
  let m0_12 = (m0_12 + s0 + m0_5 + s1) land msk in
  Array.unsafe_set w0 44 (m0_12 + 0xd192e819);
  let x15 = dup m0_14 and x2 = dup m0_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_11 lsr 10)) land msk in
  let m0_13 = (m0_13 + s0 + m0_6 + s1) land msk in
  Array.unsafe_set w0 45 (m0_13 + 0xd6990624);
  let x15 = dup m0_15 and x2 = dup m0_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_12 lsr 10)) land msk in
  let m0_14 = (m0_14 + s0 + m0_7 + s1) land msk in
  Array.unsafe_set w0 46 (m0_14 + 0xf40e3585);
  let x15 = dup m0_0 and x2 = dup m0_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_13 lsr 10)) land msk in
  let m0_15 = (m0_15 + s0 + m0_8 + s1) land msk in
  Array.unsafe_set w0 47 (m0_15 + 0x106aa070);
  let x15 = dup m0_1 and x2 = dup m0_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_14 lsr 10)) land msk in
  let m0_0 = (m0_0 + s0 + m0_9 + s1) land msk in
  Array.unsafe_set w0 48 (m0_0 + 0x19a4c116);
  let x15 = dup m0_2 and x2 = dup m0_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_15 lsr 10)) land msk in
  let m0_1 = (m0_1 + s0 + m0_10 + s1) land msk in
  Array.unsafe_set w0 49 (m0_1 + 0x1e376c08);
  let x15 = dup m0_3 and x2 = dup m0_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_0 lsr 10)) land msk in
  let m0_2 = (m0_2 + s0 + m0_11 + s1) land msk in
  Array.unsafe_set w0 50 (m0_2 + 0x2748774c);
  let x15 = dup m0_4 and x2 = dup m0_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_1 lsr 10)) land msk in
  let m0_3 = (m0_3 + s0 + m0_12 + s1) land msk in
  Array.unsafe_set w0 51 (m0_3 + 0x34b0bcb5);
  let x15 = dup m0_5 and x2 = dup m0_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_2 lsr 10)) land msk in
  let m0_4 = (m0_4 + s0 + m0_13 + s1) land msk in
  Array.unsafe_set w0 52 (m0_4 + 0x391c0cb3);
  let x15 = dup m0_6 and x2 = dup m0_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_3 lsr 10)) land msk in
  let m0_5 = (m0_5 + s0 + m0_14 + s1) land msk in
  Array.unsafe_set w0 53 (m0_5 + 0x4ed8aa4a);
  let x15 = dup m0_7 and x2 = dup m0_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_4 lsr 10)) land msk in
  let m0_6 = (m0_6 + s0 + m0_15 + s1) land msk in
  Array.unsafe_set w0 54 (m0_6 + 0x5b9cca4f);
  let x15 = dup m0_8 and x2 = dup m0_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_5 lsr 10)) land msk in
  let m0_7 = (m0_7 + s0 + m0_0 + s1) land msk in
  Array.unsafe_set w0 55 (m0_7 + 0x682e6ff3);
  let x15 = dup m0_9 and x2 = dup m0_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_6 lsr 10)) land msk in
  let m0_8 = (m0_8 + s0 + m0_1 + s1) land msk in
  Array.unsafe_set w0 56 (m0_8 + 0x748f82ee);
  let x15 = dup m0_10 and x2 = dup m0_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_7 lsr 10)) land msk in
  let m0_9 = (m0_9 + s0 + m0_2 + s1) land msk in
  Array.unsafe_set w0 57 (m0_9 + 0x78a5636f);
  let x15 = dup m0_11 and x2 = dup m0_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_8 lsr 10)) land msk in
  let m0_10 = (m0_10 + s0 + m0_3 + s1) land msk in
  Array.unsafe_set w0 58 (m0_10 + 0x84c87814);
  let x15 = dup m0_12 and x2 = dup m0_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_9 lsr 10)) land msk in
  let m0_11 = (m0_11 + s0 + m0_4 + s1) land msk in
  Array.unsafe_set w0 59 (m0_11 + 0x8cc70208);
  let x15 = dup m0_13 and x2 = dup m0_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_10 lsr 10)) land msk in
  let m0_12 = (m0_12 + s0 + m0_5 + s1) land msk in
  Array.unsafe_set w0 60 (m0_12 + 0x90befffa);
  let x15 = dup m0_14 and x2 = dup m0_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_11 lsr 10)) land msk in
  let m0_13 = (m0_13 + s0 + m0_6 + s1) land msk in
  Array.unsafe_set w0 61 (m0_13 + 0xa4506ceb);
  let x15 = dup m0_15 and x2 = dup m0_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_12 lsr 10)) land msk in
  let m0_14 = (m0_14 + s0 + m0_7 + s1) land msk in
  Array.unsafe_set w0 62 (m0_14 + 0xbef9a3f7);
  let x15 = dup m0_0 and x2 = dup m0_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_13 lsr 10)) land msk in
  let m0_15 = (m0_15 + s0 + m0_8 + s1) land msk in
  Array.unsafe_set w0 63 (m0_15 + 0xc67178f2);
  let m1_0 = Bytesutil.unsafe_load32_be b1 (p1 + 0) in
  Array.unsafe_set w1 0 (m1_0 + 0x428a2f98);
  let m1_1 = Bytesutil.unsafe_load32_be b1 (p1 + 4) in
  Array.unsafe_set w1 1 (m1_1 + 0x71374491);
  let m1_2 = Bytesutil.unsafe_load32_be b1 (p1 + 8) in
  Array.unsafe_set w1 2 (m1_2 + 0xb5c0fbcf);
  let m1_3 = Bytesutil.unsafe_load32_be b1 (p1 + 12) in
  Array.unsafe_set w1 3 (m1_3 + 0xe9b5dba5);
  let m1_4 = Bytesutil.unsafe_load32_be b1 (p1 + 16) in
  Array.unsafe_set w1 4 (m1_4 + 0x3956c25b);
  let m1_5 = Bytesutil.unsafe_load32_be b1 (p1 + 20) in
  Array.unsafe_set w1 5 (m1_5 + 0x59f111f1);
  let m1_6 = Bytesutil.unsafe_load32_be b1 (p1 + 24) in
  Array.unsafe_set w1 6 (m1_6 + 0x923f82a4);
  let m1_7 = Bytesutil.unsafe_load32_be b1 (p1 + 28) in
  Array.unsafe_set w1 7 (m1_7 + 0xab1c5ed5);
  let m1_8 = Bytesutil.unsafe_load32_be b1 (p1 + 32) in
  Array.unsafe_set w1 8 (m1_8 + 0xd807aa98);
  let m1_9 = Bytesutil.unsafe_load32_be b1 (p1 + 36) in
  Array.unsafe_set w1 9 (m1_9 + 0x12835b01);
  let m1_10 = Bytesutil.unsafe_load32_be b1 (p1 + 40) in
  Array.unsafe_set w1 10 (m1_10 + 0x243185be);
  let m1_11 = Bytesutil.unsafe_load32_be b1 (p1 + 44) in
  Array.unsafe_set w1 11 (m1_11 + 0x550c7dc3);
  let m1_12 = Bytesutil.unsafe_load32_be b1 (p1 + 48) in
  Array.unsafe_set w1 12 (m1_12 + 0x72be5d74);
  let m1_13 = Bytesutil.unsafe_load32_be b1 (p1 + 52) in
  Array.unsafe_set w1 13 (m1_13 + 0x80deb1fe);
  let m1_14 = Bytesutil.unsafe_load32_be b1 (p1 + 56) in
  Array.unsafe_set w1 14 (m1_14 + 0x9bdc06a7);
  let m1_15 = Bytesutil.unsafe_load32_be b1 (p1 + 60) in
  Array.unsafe_set w1 15 (m1_15 + 0xc19bf174);
  let x15 = dup m1_1 and x2 = dup m1_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_14 lsr 10)) land msk in
  let m1_0 = (m1_0 + s0 + m1_9 + s1) land msk in
  Array.unsafe_set w1 16 (m1_0 + 0xe49b69c1);
  let x15 = dup m1_2 and x2 = dup m1_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_15 lsr 10)) land msk in
  let m1_1 = (m1_1 + s0 + m1_10 + s1) land msk in
  Array.unsafe_set w1 17 (m1_1 + 0xefbe4786);
  let x15 = dup m1_3 and x2 = dup m1_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_0 lsr 10)) land msk in
  let m1_2 = (m1_2 + s0 + m1_11 + s1) land msk in
  Array.unsafe_set w1 18 (m1_2 + 0x0fc19dc6);
  let x15 = dup m1_4 and x2 = dup m1_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_1 lsr 10)) land msk in
  let m1_3 = (m1_3 + s0 + m1_12 + s1) land msk in
  Array.unsafe_set w1 19 (m1_3 + 0x240ca1cc);
  let x15 = dup m1_5 and x2 = dup m1_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_2 lsr 10)) land msk in
  let m1_4 = (m1_4 + s0 + m1_13 + s1) land msk in
  Array.unsafe_set w1 20 (m1_4 + 0x2de92c6f);
  let x15 = dup m1_6 and x2 = dup m1_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_3 lsr 10)) land msk in
  let m1_5 = (m1_5 + s0 + m1_14 + s1) land msk in
  Array.unsafe_set w1 21 (m1_5 + 0x4a7484aa);
  let x15 = dup m1_7 and x2 = dup m1_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_4 lsr 10)) land msk in
  let m1_6 = (m1_6 + s0 + m1_15 + s1) land msk in
  Array.unsafe_set w1 22 (m1_6 + 0x5cb0a9dc);
  let x15 = dup m1_8 and x2 = dup m1_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_5 lsr 10)) land msk in
  let m1_7 = (m1_7 + s0 + m1_0 + s1) land msk in
  Array.unsafe_set w1 23 (m1_7 + 0x76f988da);
  let x15 = dup m1_9 and x2 = dup m1_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_6 lsr 10)) land msk in
  let m1_8 = (m1_8 + s0 + m1_1 + s1) land msk in
  Array.unsafe_set w1 24 (m1_8 + 0x983e5152);
  let x15 = dup m1_10 and x2 = dup m1_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_7 lsr 10)) land msk in
  let m1_9 = (m1_9 + s0 + m1_2 + s1) land msk in
  Array.unsafe_set w1 25 (m1_9 + 0xa831c66d);
  let x15 = dup m1_11 and x2 = dup m1_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_8 lsr 10)) land msk in
  let m1_10 = (m1_10 + s0 + m1_3 + s1) land msk in
  Array.unsafe_set w1 26 (m1_10 + 0xb00327c8);
  let x15 = dup m1_12 and x2 = dup m1_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_9 lsr 10)) land msk in
  let m1_11 = (m1_11 + s0 + m1_4 + s1) land msk in
  Array.unsafe_set w1 27 (m1_11 + 0xbf597fc7);
  let x15 = dup m1_13 and x2 = dup m1_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_10 lsr 10)) land msk in
  let m1_12 = (m1_12 + s0 + m1_5 + s1) land msk in
  Array.unsafe_set w1 28 (m1_12 + 0xc6e00bf3);
  let x15 = dup m1_14 and x2 = dup m1_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_11 lsr 10)) land msk in
  let m1_13 = (m1_13 + s0 + m1_6 + s1) land msk in
  Array.unsafe_set w1 29 (m1_13 + 0xd5a79147);
  let x15 = dup m1_15 and x2 = dup m1_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_12 lsr 10)) land msk in
  let m1_14 = (m1_14 + s0 + m1_7 + s1) land msk in
  Array.unsafe_set w1 30 (m1_14 + 0x06ca6351);
  let x15 = dup m1_0 and x2 = dup m1_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_13 lsr 10)) land msk in
  let m1_15 = (m1_15 + s0 + m1_8 + s1) land msk in
  Array.unsafe_set w1 31 (m1_15 + 0x14292967);
  let x15 = dup m1_1 and x2 = dup m1_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_14 lsr 10)) land msk in
  let m1_0 = (m1_0 + s0 + m1_9 + s1) land msk in
  Array.unsafe_set w1 32 (m1_0 + 0x27b70a85);
  let x15 = dup m1_2 and x2 = dup m1_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_15 lsr 10)) land msk in
  let m1_1 = (m1_1 + s0 + m1_10 + s1) land msk in
  Array.unsafe_set w1 33 (m1_1 + 0x2e1b2138);
  let x15 = dup m1_3 and x2 = dup m1_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_0 lsr 10)) land msk in
  let m1_2 = (m1_2 + s0 + m1_11 + s1) land msk in
  Array.unsafe_set w1 34 (m1_2 + 0x4d2c6dfc);
  let x15 = dup m1_4 and x2 = dup m1_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_1 lsr 10)) land msk in
  let m1_3 = (m1_3 + s0 + m1_12 + s1) land msk in
  Array.unsafe_set w1 35 (m1_3 + 0x53380d13);
  let x15 = dup m1_5 and x2 = dup m1_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_2 lsr 10)) land msk in
  let m1_4 = (m1_4 + s0 + m1_13 + s1) land msk in
  Array.unsafe_set w1 36 (m1_4 + 0x650a7354);
  let x15 = dup m1_6 and x2 = dup m1_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_3 lsr 10)) land msk in
  let m1_5 = (m1_5 + s0 + m1_14 + s1) land msk in
  Array.unsafe_set w1 37 (m1_5 + 0x766a0abb);
  let x15 = dup m1_7 and x2 = dup m1_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_4 lsr 10)) land msk in
  let m1_6 = (m1_6 + s0 + m1_15 + s1) land msk in
  Array.unsafe_set w1 38 (m1_6 + 0x81c2c92e);
  let x15 = dup m1_8 and x2 = dup m1_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_5 lsr 10)) land msk in
  let m1_7 = (m1_7 + s0 + m1_0 + s1) land msk in
  Array.unsafe_set w1 39 (m1_7 + 0x92722c85);
  let x15 = dup m1_9 and x2 = dup m1_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_6 lsr 10)) land msk in
  let m1_8 = (m1_8 + s0 + m1_1 + s1) land msk in
  Array.unsafe_set w1 40 (m1_8 + 0xa2bfe8a1);
  let x15 = dup m1_10 and x2 = dup m1_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_7 lsr 10)) land msk in
  let m1_9 = (m1_9 + s0 + m1_2 + s1) land msk in
  Array.unsafe_set w1 41 (m1_9 + 0xa81a664b);
  let x15 = dup m1_11 and x2 = dup m1_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_8 lsr 10)) land msk in
  let m1_10 = (m1_10 + s0 + m1_3 + s1) land msk in
  Array.unsafe_set w1 42 (m1_10 + 0xc24b8b70);
  let x15 = dup m1_12 and x2 = dup m1_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_9 lsr 10)) land msk in
  let m1_11 = (m1_11 + s0 + m1_4 + s1) land msk in
  Array.unsafe_set w1 43 (m1_11 + 0xc76c51a3);
  let x15 = dup m1_13 and x2 = dup m1_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_10 lsr 10)) land msk in
  let m1_12 = (m1_12 + s0 + m1_5 + s1) land msk in
  Array.unsafe_set w1 44 (m1_12 + 0xd192e819);
  let x15 = dup m1_14 and x2 = dup m1_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_11 lsr 10)) land msk in
  let m1_13 = (m1_13 + s0 + m1_6 + s1) land msk in
  Array.unsafe_set w1 45 (m1_13 + 0xd6990624);
  let x15 = dup m1_15 and x2 = dup m1_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_12 lsr 10)) land msk in
  let m1_14 = (m1_14 + s0 + m1_7 + s1) land msk in
  Array.unsafe_set w1 46 (m1_14 + 0xf40e3585);
  let x15 = dup m1_0 and x2 = dup m1_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_13 lsr 10)) land msk in
  let m1_15 = (m1_15 + s0 + m1_8 + s1) land msk in
  Array.unsafe_set w1 47 (m1_15 + 0x106aa070);
  let x15 = dup m1_1 and x2 = dup m1_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_14 lsr 10)) land msk in
  let m1_0 = (m1_0 + s0 + m1_9 + s1) land msk in
  Array.unsafe_set w1 48 (m1_0 + 0x19a4c116);
  let x15 = dup m1_2 and x2 = dup m1_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_15 lsr 10)) land msk in
  let m1_1 = (m1_1 + s0 + m1_10 + s1) land msk in
  Array.unsafe_set w1 49 (m1_1 + 0x1e376c08);
  let x15 = dup m1_3 and x2 = dup m1_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_0 lsr 10)) land msk in
  let m1_2 = (m1_2 + s0 + m1_11 + s1) land msk in
  Array.unsafe_set w1 50 (m1_2 + 0x2748774c);
  let x15 = dup m1_4 and x2 = dup m1_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_1 lsr 10)) land msk in
  let m1_3 = (m1_3 + s0 + m1_12 + s1) land msk in
  Array.unsafe_set w1 51 (m1_3 + 0x34b0bcb5);
  let x15 = dup m1_5 and x2 = dup m1_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_2 lsr 10)) land msk in
  let m1_4 = (m1_4 + s0 + m1_13 + s1) land msk in
  Array.unsafe_set w1 52 (m1_4 + 0x391c0cb3);
  let x15 = dup m1_6 and x2 = dup m1_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_3 lsr 10)) land msk in
  let m1_5 = (m1_5 + s0 + m1_14 + s1) land msk in
  Array.unsafe_set w1 53 (m1_5 + 0x4ed8aa4a);
  let x15 = dup m1_7 and x2 = dup m1_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_4 lsr 10)) land msk in
  let m1_6 = (m1_6 + s0 + m1_15 + s1) land msk in
  Array.unsafe_set w1 54 (m1_6 + 0x5b9cca4f);
  let x15 = dup m1_8 and x2 = dup m1_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_5 lsr 10)) land msk in
  let m1_7 = (m1_7 + s0 + m1_0 + s1) land msk in
  Array.unsafe_set w1 55 (m1_7 + 0x682e6ff3);
  let x15 = dup m1_9 and x2 = dup m1_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_6 lsr 10)) land msk in
  let m1_8 = (m1_8 + s0 + m1_1 + s1) land msk in
  Array.unsafe_set w1 56 (m1_8 + 0x748f82ee);
  let x15 = dup m1_10 and x2 = dup m1_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_7 lsr 10)) land msk in
  let m1_9 = (m1_9 + s0 + m1_2 + s1) land msk in
  Array.unsafe_set w1 57 (m1_9 + 0x78a5636f);
  let x15 = dup m1_11 and x2 = dup m1_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_8 lsr 10)) land msk in
  let m1_10 = (m1_10 + s0 + m1_3 + s1) land msk in
  Array.unsafe_set w1 58 (m1_10 + 0x84c87814);
  let x15 = dup m1_12 and x2 = dup m1_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_9 lsr 10)) land msk in
  let m1_11 = (m1_11 + s0 + m1_4 + s1) land msk in
  Array.unsafe_set w1 59 (m1_11 + 0x8cc70208);
  let x15 = dup m1_13 and x2 = dup m1_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_10 lsr 10)) land msk in
  let m1_12 = (m1_12 + s0 + m1_5 + s1) land msk in
  Array.unsafe_set w1 60 (m1_12 + 0x90befffa);
  let x15 = dup m1_14 and x2 = dup m1_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_11 lsr 10)) land msk in
  let m1_13 = (m1_13 + s0 + m1_6 + s1) land msk in
  Array.unsafe_set w1 61 (m1_13 + 0xa4506ceb);
  let x15 = dup m1_15 and x2 = dup m1_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_12 lsr 10)) land msk in
  let m1_14 = (m1_14 + s0 + m1_7 + s1) land msk in
  Array.unsafe_set w1 62 (m1_14 + 0xbef9a3f7);
  let x15 = dup m1_0 and x2 = dup m1_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_13 lsr 10)) land msk in
  let m1_15 = (m1_15 + s0 + m1_8 + s1) land msk in
  Array.unsafe_set w1 63 (m1_15 + 0xc67178f2);
  let rec go r msk a0 b0 c0 d0 e0 f0 g0 h0 a1 b1 c1 d1 e1 f1 g1 h1 =
    if r = 64 then begin
      Array.unsafe_set st0 0 ((Array.unsafe_get st0 0 + a0) land msk);
      Array.unsafe_set st0 1 ((Array.unsafe_get st0 1 + b0) land msk);
      Array.unsafe_set st0 2 ((Array.unsafe_get st0 2 + c0) land msk);
      Array.unsafe_set st0 3 ((Array.unsafe_get st0 3 + d0) land msk);
      Array.unsafe_set st0 4 ((Array.unsafe_get st0 4 + e0) land msk);
      Array.unsafe_set st0 5 ((Array.unsafe_get st0 5 + f0) land msk);
      Array.unsafe_set st0 6 ((Array.unsafe_get st0 6 + g0) land msk);
      Array.unsafe_set st0 7 ((Array.unsafe_get st0 7 + h0) land msk);
      Array.unsafe_set st1 0 ((Array.unsafe_get st1 0 + a1) land msk);
      Array.unsafe_set st1 1 ((Array.unsafe_get st1 1 + b1) land msk);
      Array.unsafe_set st1 2 ((Array.unsafe_get st1 2 + c1) land msk);
      Array.unsafe_set st1 3 ((Array.unsafe_get st1 3 + d1) land msk);
      Array.unsafe_set st1 4 ((Array.unsafe_get st1 4 + e1) land msk);
      Array.unsafe_set st1 5 ((Array.unsafe_get st1 5 + f1) land msk);
      Array.unsafe_set st1 6 ((Array.unsafe_get st1 6 + g1) land msk);
      Array.unsafe_set st1 7 ((Array.unsafe_get st1 7 + h1) land msk);
    end
    else begin
      let ee = e0 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = g0 lxor (e0 land (f0 lxor g0)) in
      let t1 = h0 + s1 + ch + Array.unsafe_get w0 (r + 0) in
      let aa = a0 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((a0 lxor b0) land c0) lxor (a0 land b0) in
      let d0 = d0 + t1 in
      let h0 = t1 + s0 + mj in
      let ee = e1 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = g1 lxor (e1 land (f1 lxor g1)) in
      let t1 = h1 + s1 + ch + Array.unsafe_get w1 (r + 0) in
      let aa = a1 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((a1 lxor b1) land c1) lxor (a1 land b1) in
      let d1 = d1 + t1 in
      let h1 = t1 + s0 + mj in
      let ee = d0 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = f0 lxor (d0 land (e0 lxor f0)) in
      let t1 = g0 + s1 + ch + Array.unsafe_get w0 (r + 1) in
      let aa = h0 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((h0 lxor a0) land b0) lxor (h0 land a0) in
      let c0 = c0 + t1 in
      let g0 = t1 + s0 + mj in
      let ee = d1 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = f1 lxor (d1 land (e1 lxor f1)) in
      let t1 = g1 + s1 + ch + Array.unsafe_get w1 (r + 1) in
      let aa = h1 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((h1 lxor a1) land b1) lxor (h1 land a1) in
      let c1 = c1 + t1 in
      let g1 = t1 + s0 + mj in
      let ee = c0 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = e0 lxor (c0 land (d0 lxor e0)) in
      let t1 = f0 + s1 + ch + Array.unsafe_get w0 (r + 2) in
      let aa = g0 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((g0 lxor h0) land a0) lxor (g0 land h0) in
      let b0 = b0 + t1 in
      let f0 = t1 + s0 + mj in
      let ee = c1 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = e1 lxor (c1 land (d1 lxor e1)) in
      let t1 = f1 + s1 + ch + Array.unsafe_get w1 (r + 2) in
      let aa = g1 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((g1 lxor h1) land a1) lxor (g1 land h1) in
      let b1 = b1 + t1 in
      let f1 = t1 + s0 + mj in
      let ee = b0 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = d0 lxor (b0 land (c0 lxor d0)) in
      let t1 = e0 + s1 + ch + Array.unsafe_get w0 (r + 3) in
      let aa = f0 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((f0 lxor g0) land h0) lxor (f0 land g0) in
      let a0 = a0 + t1 in
      let e0 = t1 + s0 + mj in
      let ee = b1 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = d1 lxor (b1 land (c1 lxor d1)) in
      let t1 = e1 + s1 + ch + Array.unsafe_get w1 (r + 3) in
      let aa = f1 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((f1 lxor g1) land h1) lxor (f1 land g1) in
      let a1 = a1 + t1 in
      let e1 = t1 + s0 + mj in
      let ee = a0 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = c0 lxor (a0 land (b0 lxor c0)) in
      let t1 = d0 + s1 + ch + Array.unsafe_get w0 (r + 4) in
      let aa = e0 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((e0 lxor f0) land g0) lxor (e0 land f0) in
      let h0 = h0 + t1 in
      let d0 = t1 + s0 + mj in
      let ee = a1 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = c1 lxor (a1 land (b1 lxor c1)) in
      let t1 = d1 + s1 + ch + Array.unsafe_get w1 (r + 4) in
      let aa = e1 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((e1 lxor f1) land g1) lxor (e1 land f1) in
      let h1 = h1 + t1 in
      let d1 = t1 + s0 + mj in
      let ee = h0 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = b0 lxor (h0 land (a0 lxor b0)) in
      let t1 = c0 + s1 + ch + Array.unsafe_get w0 (r + 5) in
      let aa = d0 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((d0 lxor e0) land f0) lxor (d0 land e0) in
      let g0 = g0 + t1 in
      let c0 = t1 + s0 + mj in
      let ee = h1 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = b1 lxor (h1 land (a1 lxor b1)) in
      let t1 = c1 + s1 + ch + Array.unsafe_get w1 (r + 5) in
      let aa = d1 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((d1 lxor e1) land f1) lxor (d1 land e1) in
      let g1 = g1 + t1 in
      let c1 = t1 + s0 + mj in
      let ee = g0 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = a0 lxor (g0 land (h0 lxor a0)) in
      let t1 = b0 + s1 + ch + Array.unsafe_get w0 (r + 6) in
      let aa = c0 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((c0 lxor d0) land e0) lxor (c0 land d0) in
      let f0 = f0 + t1 in
      let b0 = t1 + s0 + mj in
      let ee = g1 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = a1 lxor (g1 land (h1 lxor a1)) in
      let t1 = b1 + s1 + ch + Array.unsafe_get w1 (r + 6) in
      let aa = c1 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((c1 lxor d1) land e1) lxor (c1 land d1) in
      let f1 = f1 + t1 in
      let b1 = t1 + s0 + mj in
      let ee = f0 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = h0 lxor (f0 land (g0 lxor h0)) in
      let t1 = a0 + s1 + ch + Array.unsafe_get w0 (r + 7) in
      let aa = b0 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((b0 lxor c0) land d0) lxor (b0 land c0) in
      let e0 = e0 + t1 in
      let a0 = t1 + s0 + mj in
      let ee = f1 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = h1 lxor (f1 land (g1 lxor h1)) in
      let t1 = a1 + s1 + ch + Array.unsafe_get w1 (r + 7) in
      let aa = b1 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((b1 lxor c1) land d1) lxor (b1 land c1) in
      let e1 = e1 + t1 in
      let a1 = t1 + s0 + mj in
      go (r + 8) msk a0 b0 c0 d0 e0 f0 g0 h0 a1 b1 c1 d1 e1 f1 g1 h1
    end
  in
  go 0 msk (Array.unsafe_get st0 0) (Array.unsafe_get st0 1) (Array.unsafe_get st0 2) (Array.unsafe_get st0 3) (Array.unsafe_get st0 4) (Array.unsafe_get st0 5) (Array.unsafe_get st0 6) (Array.unsafe_get st0 7) (Array.unsafe_get st1 0) (Array.unsafe_get st1 1) (Array.unsafe_get st1 2) (Array.unsafe_get st1 3) (Array.unsafe_get st1 4) (Array.unsafe_get st1 5) (Array.unsafe_get st1 6) (Array.unsafe_get st1 7)

(* bounds: every unsafe access on a w<l> scratch uses a literal index in
   0..63 against the 64-word arrays digest_many allocates; every unsafe
   access on an st<l> state a literal index in 0..7 against 8-word
   arrays; and every unsafe_load32_be reads at p<l> + 4*i with i <= 15,
   inside the 64-byte block that digest_many's whole-block loop bound
   (p<l> + 64 <= length b<l>) guarantees. *)
let compress4 st0 st1 st2 st3 w0 w1 w2 w3 b0 p0 b1 p1 b2 p2 b3 p3 =
  let msk = mask in
  let m0_0 = Bytesutil.unsafe_load32_be b0 (p0 + 0) in
  Array.unsafe_set w0 0 (m0_0 + 0x428a2f98);
  let m0_1 = Bytesutil.unsafe_load32_be b0 (p0 + 4) in
  Array.unsafe_set w0 1 (m0_1 + 0x71374491);
  let m0_2 = Bytesutil.unsafe_load32_be b0 (p0 + 8) in
  Array.unsafe_set w0 2 (m0_2 + 0xb5c0fbcf);
  let m0_3 = Bytesutil.unsafe_load32_be b0 (p0 + 12) in
  Array.unsafe_set w0 3 (m0_3 + 0xe9b5dba5);
  let m0_4 = Bytesutil.unsafe_load32_be b0 (p0 + 16) in
  Array.unsafe_set w0 4 (m0_4 + 0x3956c25b);
  let m0_5 = Bytesutil.unsafe_load32_be b0 (p0 + 20) in
  Array.unsafe_set w0 5 (m0_5 + 0x59f111f1);
  let m0_6 = Bytesutil.unsafe_load32_be b0 (p0 + 24) in
  Array.unsafe_set w0 6 (m0_6 + 0x923f82a4);
  let m0_7 = Bytesutil.unsafe_load32_be b0 (p0 + 28) in
  Array.unsafe_set w0 7 (m0_7 + 0xab1c5ed5);
  let m0_8 = Bytesutil.unsafe_load32_be b0 (p0 + 32) in
  Array.unsafe_set w0 8 (m0_8 + 0xd807aa98);
  let m0_9 = Bytesutil.unsafe_load32_be b0 (p0 + 36) in
  Array.unsafe_set w0 9 (m0_9 + 0x12835b01);
  let m0_10 = Bytesutil.unsafe_load32_be b0 (p0 + 40) in
  Array.unsafe_set w0 10 (m0_10 + 0x243185be);
  let m0_11 = Bytesutil.unsafe_load32_be b0 (p0 + 44) in
  Array.unsafe_set w0 11 (m0_11 + 0x550c7dc3);
  let m0_12 = Bytesutil.unsafe_load32_be b0 (p0 + 48) in
  Array.unsafe_set w0 12 (m0_12 + 0x72be5d74);
  let m0_13 = Bytesutil.unsafe_load32_be b0 (p0 + 52) in
  Array.unsafe_set w0 13 (m0_13 + 0x80deb1fe);
  let m0_14 = Bytesutil.unsafe_load32_be b0 (p0 + 56) in
  Array.unsafe_set w0 14 (m0_14 + 0x9bdc06a7);
  let m0_15 = Bytesutil.unsafe_load32_be b0 (p0 + 60) in
  Array.unsafe_set w0 15 (m0_15 + 0xc19bf174);
  let x15 = dup m0_1 and x2 = dup m0_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_14 lsr 10)) land msk in
  let m0_0 = (m0_0 + s0 + m0_9 + s1) land msk in
  Array.unsafe_set w0 16 (m0_0 + 0xe49b69c1);
  let x15 = dup m0_2 and x2 = dup m0_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_15 lsr 10)) land msk in
  let m0_1 = (m0_1 + s0 + m0_10 + s1) land msk in
  Array.unsafe_set w0 17 (m0_1 + 0xefbe4786);
  let x15 = dup m0_3 and x2 = dup m0_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_0 lsr 10)) land msk in
  let m0_2 = (m0_2 + s0 + m0_11 + s1) land msk in
  Array.unsafe_set w0 18 (m0_2 + 0x0fc19dc6);
  let x15 = dup m0_4 and x2 = dup m0_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_1 lsr 10)) land msk in
  let m0_3 = (m0_3 + s0 + m0_12 + s1) land msk in
  Array.unsafe_set w0 19 (m0_3 + 0x240ca1cc);
  let x15 = dup m0_5 and x2 = dup m0_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_2 lsr 10)) land msk in
  let m0_4 = (m0_4 + s0 + m0_13 + s1) land msk in
  Array.unsafe_set w0 20 (m0_4 + 0x2de92c6f);
  let x15 = dup m0_6 and x2 = dup m0_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_3 lsr 10)) land msk in
  let m0_5 = (m0_5 + s0 + m0_14 + s1) land msk in
  Array.unsafe_set w0 21 (m0_5 + 0x4a7484aa);
  let x15 = dup m0_7 and x2 = dup m0_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_4 lsr 10)) land msk in
  let m0_6 = (m0_6 + s0 + m0_15 + s1) land msk in
  Array.unsafe_set w0 22 (m0_6 + 0x5cb0a9dc);
  let x15 = dup m0_8 and x2 = dup m0_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_5 lsr 10)) land msk in
  let m0_7 = (m0_7 + s0 + m0_0 + s1) land msk in
  Array.unsafe_set w0 23 (m0_7 + 0x76f988da);
  let x15 = dup m0_9 and x2 = dup m0_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_6 lsr 10)) land msk in
  let m0_8 = (m0_8 + s0 + m0_1 + s1) land msk in
  Array.unsafe_set w0 24 (m0_8 + 0x983e5152);
  let x15 = dup m0_10 and x2 = dup m0_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_7 lsr 10)) land msk in
  let m0_9 = (m0_9 + s0 + m0_2 + s1) land msk in
  Array.unsafe_set w0 25 (m0_9 + 0xa831c66d);
  let x15 = dup m0_11 and x2 = dup m0_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_8 lsr 10)) land msk in
  let m0_10 = (m0_10 + s0 + m0_3 + s1) land msk in
  Array.unsafe_set w0 26 (m0_10 + 0xb00327c8);
  let x15 = dup m0_12 and x2 = dup m0_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_9 lsr 10)) land msk in
  let m0_11 = (m0_11 + s0 + m0_4 + s1) land msk in
  Array.unsafe_set w0 27 (m0_11 + 0xbf597fc7);
  let x15 = dup m0_13 and x2 = dup m0_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_10 lsr 10)) land msk in
  let m0_12 = (m0_12 + s0 + m0_5 + s1) land msk in
  Array.unsafe_set w0 28 (m0_12 + 0xc6e00bf3);
  let x15 = dup m0_14 and x2 = dup m0_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_11 lsr 10)) land msk in
  let m0_13 = (m0_13 + s0 + m0_6 + s1) land msk in
  Array.unsafe_set w0 29 (m0_13 + 0xd5a79147);
  let x15 = dup m0_15 and x2 = dup m0_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_12 lsr 10)) land msk in
  let m0_14 = (m0_14 + s0 + m0_7 + s1) land msk in
  Array.unsafe_set w0 30 (m0_14 + 0x06ca6351);
  let x15 = dup m0_0 and x2 = dup m0_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_13 lsr 10)) land msk in
  let m0_15 = (m0_15 + s0 + m0_8 + s1) land msk in
  Array.unsafe_set w0 31 (m0_15 + 0x14292967);
  let x15 = dup m0_1 and x2 = dup m0_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_14 lsr 10)) land msk in
  let m0_0 = (m0_0 + s0 + m0_9 + s1) land msk in
  Array.unsafe_set w0 32 (m0_0 + 0x27b70a85);
  let x15 = dup m0_2 and x2 = dup m0_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_15 lsr 10)) land msk in
  let m0_1 = (m0_1 + s0 + m0_10 + s1) land msk in
  Array.unsafe_set w0 33 (m0_1 + 0x2e1b2138);
  let x15 = dup m0_3 and x2 = dup m0_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_0 lsr 10)) land msk in
  let m0_2 = (m0_2 + s0 + m0_11 + s1) land msk in
  Array.unsafe_set w0 34 (m0_2 + 0x4d2c6dfc);
  let x15 = dup m0_4 and x2 = dup m0_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_1 lsr 10)) land msk in
  let m0_3 = (m0_3 + s0 + m0_12 + s1) land msk in
  Array.unsafe_set w0 35 (m0_3 + 0x53380d13);
  let x15 = dup m0_5 and x2 = dup m0_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_2 lsr 10)) land msk in
  let m0_4 = (m0_4 + s0 + m0_13 + s1) land msk in
  Array.unsafe_set w0 36 (m0_4 + 0x650a7354);
  let x15 = dup m0_6 and x2 = dup m0_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_3 lsr 10)) land msk in
  let m0_5 = (m0_5 + s0 + m0_14 + s1) land msk in
  Array.unsafe_set w0 37 (m0_5 + 0x766a0abb);
  let x15 = dup m0_7 and x2 = dup m0_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_4 lsr 10)) land msk in
  let m0_6 = (m0_6 + s0 + m0_15 + s1) land msk in
  Array.unsafe_set w0 38 (m0_6 + 0x81c2c92e);
  let x15 = dup m0_8 and x2 = dup m0_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_5 lsr 10)) land msk in
  let m0_7 = (m0_7 + s0 + m0_0 + s1) land msk in
  Array.unsafe_set w0 39 (m0_7 + 0x92722c85);
  let x15 = dup m0_9 and x2 = dup m0_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_6 lsr 10)) land msk in
  let m0_8 = (m0_8 + s0 + m0_1 + s1) land msk in
  Array.unsafe_set w0 40 (m0_8 + 0xa2bfe8a1);
  let x15 = dup m0_10 and x2 = dup m0_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_7 lsr 10)) land msk in
  let m0_9 = (m0_9 + s0 + m0_2 + s1) land msk in
  Array.unsafe_set w0 41 (m0_9 + 0xa81a664b);
  let x15 = dup m0_11 and x2 = dup m0_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_8 lsr 10)) land msk in
  let m0_10 = (m0_10 + s0 + m0_3 + s1) land msk in
  Array.unsafe_set w0 42 (m0_10 + 0xc24b8b70);
  let x15 = dup m0_12 and x2 = dup m0_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_9 lsr 10)) land msk in
  let m0_11 = (m0_11 + s0 + m0_4 + s1) land msk in
  Array.unsafe_set w0 43 (m0_11 + 0xc76c51a3);
  let x15 = dup m0_13 and x2 = dup m0_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_10 lsr 10)) land msk in
  let m0_12 = (m0_12 + s0 + m0_5 + s1) land msk in
  Array.unsafe_set w0 44 (m0_12 + 0xd192e819);
  let x15 = dup m0_14 and x2 = dup m0_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_11 lsr 10)) land msk in
  let m0_13 = (m0_13 + s0 + m0_6 + s1) land msk in
  Array.unsafe_set w0 45 (m0_13 + 0xd6990624);
  let x15 = dup m0_15 and x2 = dup m0_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_12 lsr 10)) land msk in
  let m0_14 = (m0_14 + s0 + m0_7 + s1) land msk in
  Array.unsafe_set w0 46 (m0_14 + 0xf40e3585);
  let x15 = dup m0_0 and x2 = dup m0_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_13 lsr 10)) land msk in
  let m0_15 = (m0_15 + s0 + m0_8 + s1) land msk in
  Array.unsafe_set w0 47 (m0_15 + 0x106aa070);
  let x15 = dup m0_1 and x2 = dup m0_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_14 lsr 10)) land msk in
  let m0_0 = (m0_0 + s0 + m0_9 + s1) land msk in
  Array.unsafe_set w0 48 (m0_0 + 0x19a4c116);
  let x15 = dup m0_2 and x2 = dup m0_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_15 lsr 10)) land msk in
  let m0_1 = (m0_1 + s0 + m0_10 + s1) land msk in
  Array.unsafe_set w0 49 (m0_1 + 0x1e376c08);
  let x15 = dup m0_3 and x2 = dup m0_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_0 lsr 10)) land msk in
  let m0_2 = (m0_2 + s0 + m0_11 + s1) land msk in
  Array.unsafe_set w0 50 (m0_2 + 0x2748774c);
  let x15 = dup m0_4 and x2 = dup m0_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_1 lsr 10)) land msk in
  let m0_3 = (m0_3 + s0 + m0_12 + s1) land msk in
  Array.unsafe_set w0 51 (m0_3 + 0x34b0bcb5);
  let x15 = dup m0_5 and x2 = dup m0_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_2 lsr 10)) land msk in
  let m0_4 = (m0_4 + s0 + m0_13 + s1) land msk in
  Array.unsafe_set w0 52 (m0_4 + 0x391c0cb3);
  let x15 = dup m0_6 and x2 = dup m0_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_3 lsr 10)) land msk in
  let m0_5 = (m0_5 + s0 + m0_14 + s1) land msk in
  Array.unsafe_set w0 53 (m0_5 + 0x4ed8aa4a);
  let x15 = dup m0_7 and x2 = dup m0_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_4 lsr 10)) land msk in
  let m0_6 = (m0_6 + s0 + m0_15 + s1) land msk in
  Array.unsafe_set w0 54 (m0_6 + 0x5b9cca4f);
  let x15 = dup m0_8 and x2 = dup m0_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_5 lsr 10)) land msk in
  let m0_7 = (m0_7 + s0 + m0_0 + s1) land msk in
  Array.unsafe_set w0 55 (m0_7 + 0x682e6ff3);
  let x15 = dup m0_9 and x2 = dup m0_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_6 lsr 10)) land msk in
  let m0_8 = (m0_8 + s0 + m0_1 + s1) land msk in
  Array.unsafe_set w0 56 (m0_8 + 0x748f82ee);
  let x15 = dup m0_10 and x2 = dup m0_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_7 lsr 10)) land msk in
  let m0_9 = (m0_9 + s0 + m0_2 + s1) land msk in
  Array.unsafe_set w0 57 (m0_9 + 0x78a5636f);
  let x15 = dup m0_11 and x2 = dup m0_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_8 lsr 10)) land msk in
  let m0_10 = (m0_10 + s0 + m0_3 + s1) land msk in
  Array.unsafe_set w0 58 (m0_10 + 0x84c87814);
  let x15 = dup m0_12 and x2 = dup m0_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_9 lsr 10)) land msk in
  let m0_11 = (m0_11 + s0 + m0_4 + s1) land msk in
  Array.unsafe_set w0 59 (m0_11 + 0x8cc70208);
  let x15 = dup m0_13 and x2 = dup m0_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_10 lsr 10)) land msk in
  let m0_12 = (m0_12 + s0 + m0_5 + s1) land msk in
  Array.unsafe_set w0 60 (m0_12 + 0x90befffa);
  let x15 = dup m0_14 and x2 = dup m0_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_11 lsr 10)) land msk in
  let m0_13 = (m0_13 + s0 + m0_6 + s1) land msk in
  Array.unsafe_set w0 61 (m0_13 + 0xa4506ceb);
  let x15 = dup m0_15 and x2 = dup m0_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_12 lsr 10)) land msk in
  let m0_14 = (m0_14 + s0 + m0_7 + s1) land msk in
  Array.unsafe_set w0 62 (m0_14 + 0xbef9a3f7);
  let x15 = dup m0_0 and x2 = dup m0_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m0_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m0_13 lsr 10)) land msk in
  let m0_15 = (m0_15 + s0 + m0_8 + s1) land msk in
  Array.unsafe_set w0 63 (m0_15 + 0xc67178f2);
  let m1_0 = Bytesutil.unsafe_load32_be b1 (p1 + 0) in
  Array.unsafe_set w1 0 (m1_0 + 0x428a2f98);
  let m1_1 = Bytesutil.unsafe_load32_be b1 (p1 + 4) in
  Array.unsafe_set w1 1 (m1_1 + 0x71374491);
  let m1_2 = Bytesutil.unsafe_load32_be b1 (p1 + 8) in
  Array.unsafe_set w1 2 (m1_2 + 0xb5c0fbcf);
  let m1_3 = Bytesutil.unsafe_load32_be b1 (p1 + 12) in
  Array.unsafe_set w1 3 (m1_3 + 0xe9b5dba5);
  let m1_4 = Bytesutil.unsafe_load32_be b1 (p1 + 16) in
  Array.unsafe_set w1 4 (m1_4 + 0x3956c25b);
  let m1_5 = Bytesutil.unsafe_load32_be b1 (p1 + 20) in
  Array.unsafe_set w1 5 (m1_5 + 0x59f111f1);
  let m1_6 = Bytesutil.unsafe_load32_be b1 (p1 + 24) in
  Array.unsafe_set w1 6 (m1_6 + 0x923f82a4);
  let m1_7 = Bytesutil.unsafe_load32_be b1 (p1 + 28) in
  Array.unsafe_set w1 7 (m1_7 + 0xab1c5ed5);
  let m1_8 = Bytesutil.unsafe_load32_be b1 (p1 + 32) in
  Array.unsafe_set w1 8 (m1_8 + 0xd807aa98);
  let m1_9 = Bytesutil.unsafe_load32_be b1 (p1 + 36) in
  Array.unsafe_set w1 9 (m1_9 + 0x12835b01);
  let m1_10 = Bytesutil.unsafe_load32_be b1 (p1 + 40) in
  Array.unsafe_set w1 10 (m1_10 + 0x243185be);
  let m1_11 = Bytesutil.unsafe_load32_be b1 (p1 + 44) in
  Array.unsafe_set w1 11 (m1_11 + 0x550c7dc3);
  let m1_12 = Bytesutil.unsafe_load32_be b1 (p1 + 48) in
  Array.unsafe_set w1 12 (m1_12 + 0x72be5d74);
  let m1_13 = Bytesutil.unsafe_load32_be b1 (p1 + 52) in
  Array.unsafe_set w1 13 (m1_13 + 0x80deb1fe);
  let m1_14 = Bytesutil.unsafe_load32_be b1 (p1 + 56) in
  Array.unsafe_set w1 14 (m1_14 + 0x9bdc06a7);
  let m1_15 = Bytesutil.unsafe_load32_be b1 (p1 + 60) in
  Array.unsafe_set w1 15 (m1_15 + 0xc19bf174);
  let x15 = dup m1_1 and x2 = dup m1_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_14 lsr 10)) land msk in
  let m1_0 = (m1_0 + s0 + m1_9 + s1) land msk in
  Array.unsafe_set w1 16 (m1_0 + 0xe49b69c1);
  let x15 = dup m1_2 and x2 = dup m1_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_15 lsr 10)) land msk in
  let m1_1 = (m1_1 + s0 + m1_10 + s1) land msk in
  Array.unsafe_set w1 17 (m1_1 + 0xefbe4786);
  let x15 = dup m1_3 and x2 = dup m1_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_0 lsr 10)) land msk in
  let m1_2 = (m1_2 + s0 + m1_11 + s1) land msk in
  Array.unsafe_set w1 18 (m1_2 + 0x0fc19dc6);
  let x15 = dup m1_4 and x2 = dup m1_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_1 lsr 10)) land msk in
  let m1_3 = (m1_3 + s0 + m1_12 + s1) land msk in
  Array.unsafe_set w1 19 (m1_3 + 0x240ca1cc);
  let x15 = dup m1_5 and x2 = dup m1_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_2 lsr 10)) land msk in
  let m1_4 = (m1_4 + s0 + m1_13 + s1) land msk in
  Array.unsafe_set w1 20 (m1_4 + 0x2de92c6f);
  let x15 = dup m1_6 and x2 = dup m1_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_3 lsr 10)) land msk in
  let m1_5 = (m1_5 + s0 + m1_14 + s1) land msk in
  Array.unsafe_set w1 21 (m1_5 + 0x4a7484aa);
  let x15 = dup m1_7 and x2 = dup m1_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_4 lsr 10)) land msk in
  let m1_6 = (m1_6 + s0 + m1_15 + s1) land msk in
  Array.unsafe_set w1 22 (m1_6 + 0x5cb0a9dc);
  let x15 = dup m1_8 and x2 = dup m1_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_5 lsr 10)) land msk in
  let m1_7 = (m1_7 + s0 + m1_0 + s1) land msk in
  Array.unsafe_set w1 23 (m1_7 + 0x76f988da);
  let x15 = dup m1_9 and x2 = dup m1_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_6 lsr 10)) land msk in
  let m1_8 = (m1_8 + s0 + m1_1 + s1) land msk in
  Array.unsafe_set w1 24 (m1_8 + 0x983e5152);
  let x15 = dup m1_10 and x2 = dup m1_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_7 lsr 10)) land msk in
  let m1_9 = (m1_9 + s0 + m1_2 + s1) land msk in
  Array.unsafe_set w1 25 (m1_9 + 0xa831c66d);
  let x15 = dup m1_11 and x2 = dup m1_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_8 lsr 10)) land msk in
  let m1_10 = (m1_10 + s0 + m1_3 + s1) land msk in
  Array.unsafe_set w1 26 (m1_10 + 0xb00327c8);
  let x15 = dup m1_12 and x2 = dup m1_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_9 lsr 10)) land msk in
  let m1_11 = (m1_11 + s0 + m1_4 + s1) land msk in
  Array.unsafe_set w1 27 (m1_11 + 0xbf597fc7);
  let x15 = dup m1_13 and x2 = dup m1_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_10 lsr 10)) land msk in
  let m1_12 = (m1_12 + s0 + m1_5 + s1) land msk in
  Array.unsafe_set w1 28 (m1_12 + 0xc6e00bf3);
  let x15 = dup m1_14 and x2 = dup m1_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_11 lsr 10)) land msk in
  let m1_13 = (m1_13 + s0 + m1_6 + s1) land msk in
  Array.unsafe_set w1 29 (m1_13 + 0xd5a79147);
  let x15 = dup m1_15 and x2 = dup m1_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_12 lsr 10)) land msk in
  let m1_14 = (m1_14 + s0 + m1_7 + s1) land msk in
  Array.unsafe_set w1 30 (m1_14 + 0x06ca6351);
  let x15 = dup m1_0 and x2 = dup m1_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_13 lsr 10)) land msk in
  let m1_15 = (m1_15 + s0 + m1_8 + s1) land msk in
  Array.unsafe_set w1 31 (m1_15 + 0x14292967);
  let x15 = dup m1_1 and x2 = dup m1_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_14 lsr 10)) land msk in
  let m1_0 = (m1_0 + s0 + m1_9 + s1) land msk in
  Array.unsafe_set w1 32 (m1_0 + 0x27b70a85);
  let x15 = dup m1_2 and x2 = dup m1_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_15 lsr 10)) land msk in
  let m1_1 = (m1_1 + s0 + m1_10 + s1) land msk in
  Array.unsafe_set w1 33 (m1_1 + 0x2e1b2138);
  let x15 = dup m1_3 and x2 = dup m1_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_0 lsr 10)) land msk in
  let m1_2 = (m1_2 + s0 + m1_11 + s1) land msk in
  Array.unsafe_set w1 34 (m1_2 + 0x4d2c6dfc);
  let x15 = dup m1_4 and x2 = dup m1_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_1 lsr 10)) land msk in
  let m1_3 = (m1_3 + s0 + m1_12 + s1) land msk in
  Array.unsafe_set w1 35 (m1_3 + 0x53380d13);
  let x15 = dup m1_5 and x2 = dup m1_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_2 lsr 10)) land msk in
  let m1_4 = (m1_4 + s0 + m1_13 + s1) land msk in
  Array.unsafe_set w1 36 (m1_4 + 0x650a7354);
  let x15 = dup m1_6 and x2 = dup m1_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_3 lsr 10)) land msk in
  let m1_5 = (m1_5 + s0 + m1_14 + s1) land msk in
  Array.unsafe_set w1 37 (m1_5 + 0x766a0abb);
  let x15 = dup m1_7 and x2 = dup m1_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_4 lsr 10)) land msk in
  let m1_6 = (m1_6 + s0 + m1_15 + s1) land msk in
  Array.unsafe_set w1 38 (m1_6 + 0x81c2c92e);
  let x15 = dup m1_8 and x2 = dup m1_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_5 lsr 10)) land msk in
  let m1_7 = (m1_7 + s0 + m1_0 + s1) land msk in
  Array.unsafe_set w1 39 (m1_7 + 0x92722c85);
  let x15 = dup m1_9 and x2 = dup m1_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_6 lsr 10)) land msk in
  let m1_8 = (m1_8 + s0 + m1_1 + s1) land msk in
  Array.unsafe_set w1 40 (m1_8 + 0xa2bfe8a1);
  let x15 = dup m1_10 and x2 = dup m1_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_7 lsr 10)) land msk in
  let m1_9 = (m1_9 + s0 + m1_2 + s1) land msk in
  Array.unsafe_set w1 41 (m1_9 + 0xa81a664b);
  let x15 = dup m1_11 and x2 = dup m1_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_8 lsr 10)) land msk in
  let m1_10 = (m1_10 + s0 + m1_3 + s1) land msk in
  Array.unsafe_set w1 42 (m1_10 + 0xc24b8b70);
  let x15 = dup m1_12 and x2 = dup m1_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_9 lsr 10)) land msk in
  let m1_11 = (m1_11 + s0 + m1_4 + s1) land msk in
  Array.unsafe_set w1 43 (m1_11 + 0xc76c51a3);
  let x15 = dup m1_13 and x2 = dup m1_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_10 lsr 10)) land msk in
  let m1_12 = (m1_12 + s0 + m1_5 + s1) land msk in
  Array.unsafe_set w1 44 (m1_12 + 0xd192e819);
  let x15 = dup m1_14 and x2 = dup m1_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_11 lsr 10)) land msk in
  let m1_13 = (m1_13 + s0 + m1_6 + s1) land msk in
  Array.unsafe_set w1 45 (m1_13 + 0xd6990624);
  let x15 = dup m1_15 and x2 = dup m1_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_12 lsr 10)) land msk in
  let m1_14 = (m1_14 + s0 + m1_7 + s1) land msk in
  Array.unsafe_set w1 46 (m1_14 + 0xf40e3585);
  let x15 = dup m1_0 and x2 = dup m1_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_13 lsr 10)) land msk in
  let m1_15 = (m1_15 + s0 + m1_8 + s1) land msk in
  Array.unsafe_set w1 47 (m1_15 + 0x106aa070);
  let x15 = dup m1_1 and x2 = dup m1_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_14 lsr 10)) land msk in
  let m1_0 = (m1_0 + s0 + m1_9 + s1) land msk in
  Array.unsafe_set w1 48 (m1_0 + 0x19a4c116);
  let x15 = dup m1_2 and x2 = dup m1_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_15 lsr 10)) land msk in
  let m1_1 = (m1_1 + s0 + m1_10 + s1) land msk in
  Array.unsafe_set w1 49 (m1_1 + 0x1e376c08);
  let x15 = dup m1_3 and x2 = dup m1_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_0 lsr 10)) land msk in
  let m1_2 = (m1_2 + s0 + m1_11 + s1) land msk in
  Array.unsafe_set w1 50 (m1_2 + 0x2748774c);
  let x15 = dup m1_4 and x2 = dup m1_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_1 lsr 10)) land msk in
  let m1_3 = (m1_3 + s0 + m1_12 + s1) land msk in
  Array.unsafe_set w1 51 (m1_3 + 0x34b0bcb5);
  let x15 = dup m1_5 and x2 = dup m1_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_2 lsr 10)) land msk in
  let m1_4 = (m1_4 + s0 + m1_13 + s1) land msk in
  Array.unsafe_set w1 52 (m1_4 + 0x391c0cb3);
  let x15 = dup m1_6 and x2 = dup m1_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_3 lsr 10)) land msk in
  let m1_5 = (m1_5 + s0 + m1_14 + s1) land msk in
  Array.unsafe_set w1 53 (m1_5 + 0x4ed8aa4a);
  let x15 = dup m1_7 and x2 = dup m1_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_4 lsr 10)) land msk in
  let m1_6 = (m1_6 + s0 + m1_15 + s1) land msk in
  Array.unsafe_set w1 54 (m1_6 + 0x5b9cca4f);
  let x15 = dup m1_8 and x2 = dup m1_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_5 lsr 10)) land msk in
  let m1_7 = (m1_7 + s0 + m1_0 + s1) land msk in
  Array.unsafe_set w1 55 (m1_7 + 0x682e6ff3);
  let x15 = dup m1_9 and x2 = dup m1_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_6 lsr 10)) land msk in
  let m1_8 = (m1_8 + s0 + m1_1 + s1) land msk in
  Array.unsafe_set w1 56 (m1_8 + 0x748f82ee);
  let x15 = dup m1_10 and x2 = dup m1_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_7 lsr 10)) land msk in
  let m1_9 = (m1_9 + s0 + m1_2 + s1) land msk in
  Array.unsafe_set w1 57 (m1_9 + 0x78a5636f);
  let x15 = dup m1_11 and x2 = dup m1_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_8 lsr 10)) land msk in
  let m1_10 = (m1_10 + s0 + m1_3 + s1) land msk in
  Array.unsafe_set w1 58 (m1_10 + 0x84c87814);
  let x15 = dup m1_12 and x2 = dup m1_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_9 lsr 10)) land msk in
  let m1_11 = (m1_11 + s0 + m1_4 + s1) land msk in
  Array.unsafe_set w1 59 (m1_11 + 0x8cc70208);
  let x15 = dup m1_13 and x2 = dup m1_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_10 lsr 10)) land msk in
  let m1_12 = (m1_12 + s0 + m1_5 + s1) land msk in
  Array.unsafe_set w1 60 (m1_12 + 0x90befffa);
  let x15 = dup m1_14 and x2 = dup m1_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_11 lsr 10)) land msk in
  let m1_13 = (m1_13 + s0 + m1_6 + s1) land msk in
  Array.unsafe_set w1 61 (m1_13 + 0xa4506ceb);
  let x15 = dup m1_15 and x2 = dup m1_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_12 lsr 10)) land msk in
  let m1_14 = (m1_14 + s0 + m1_7 + s1) land msk in
  Array.unsafe_set w1 62 (m1_14 + 0xbef9a3f7);
  let x15 = dup m1_0 and x2 = dup m1_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m1_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m1_13 lsr 10)) land msk in
  let m1_15 = (m1_15 + s0 + m1_8 + s1) land msk in
  Array.unsafe_set w1 63 (m1_15 + 0xc67178f2);
  let m2_0 = Bytesutil.unsafe_load32_be b2 (p2 + 0) in
  Array.unsafe_set w2 0 (m2_0 + 0x428a2f98);
  let m2_1 = Bytesutil.unsafe_load32_be b2 (p2 + 4) in
  Array.unsafe_set w2 1 (m2_1 + 0x71374491);
  let m2_2 = Bytesutil.unsafe_load32_be b2 (p2 + 8) in
  Array.unsafe_set w2 2 (m2_2 + 0xb5c0fbcf);
  let m2_3 = Bytesutil.unsafe_load32_be b2 (p2 + 12) in
  Array.unsafe_set w2 3 (m2_3 + 0xe9b5dba5);
  let m2_4 = Bytesutil.unsafe_load32_be b2 (p2 + 16) in
  Array.unsafe_set w2 4 (m2_4 + 0x3956c25b);
  let m2_5 = Bytesutil.unsafe_load32_be b2 (p2 + 20) in
  Array.unsafe_set w2 5 (m2_5 + 0x59f111f1);
  let m2_6 = Bytesutil.unsafe_load32_be b2 (p2 + 24) in
  Array.unsafe_set w2 6 (m2_6 + 0x923f82a4);
  let m2_7 = Bytesutil.unsafe_load32_be b2 (p2 + 28) in
  Array.unsafe_set w2 7 (m2_7 + 0xab1c5ed5);
  let m2_8 = Bytesutil.unsafe_load32_be b2 (p2 + 32) in
  Array.unsafe_set w2 8 (m2_8 + 0xd807aa98);
  let m2_9 = Bytesutil.unsafe_load32_be b2 (p2 + 36) in
  Array.unsafe_set w2 9 (m2_9 + 0x12835b01);
  let m2_10 = Bytesutil.unsafe_load32_be b2 (p2 + 40) in
  Array.unsafe_set w2 10 (m2_10 + 0x243185be);
  let m2_11 = Bytesutil.unsafe_load32_be b2 (p2 + 44) in
  Array.unsafe_set w2 11 (m2_11 + 0x550c7dc3);
  let m2_12 = Bytesutil.unsafe_load32_be b2 (p2 + 48) in
  Array.unsafe_set w2 12 (m2_12 + 0x72be5d74);
  let m2_13 = Bytesutil.unsafe_load32_be b2 (p2 + 52) in
  Array.unsafe_set w2 13 (m2_13 + 0x80deb1fe);
  let m2_14 = Bytesutil.unsafe_load32_be b2 (p2 + 56) in
  Array.unsafe_set w2 14 (m2_14 + 0x9bdc06a7);
  let m2_15 = Bytesutil.unsafe_load32_be b2 (p2 + 60) in
  Array.unsafe_set w2 15 (m2_15 + 0xc19bf174);
  let x15 = dup m2_1 and x2 = dup m2_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_14 lsr 10)) land msk in
  let m2_0 = (m2_0 + s0 + m2_9 + s1) land msk in
  Array.unsafe_set w2 16 (m2_0 + 0xe49b69c1);
  let x15 = dup m2_2 and x2 = dup m2_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_15 lsr 10)) land msk in
  let m2_1 = (m2_1 + s0 + m2_10 + s1) land msk in
  Array.unsafe_set w2 17 (m2_1 + 0xefbe4786);
  let x15 = dup m2_3 and x2 = dup m2_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_0 lsr 10)) land msk in
  let m2_2 = (m2_2 + s0 + m2_11 + s1) land msk in
  Array.unsafe_set w2 18 (m2_2 + 0x0fc19dc6);
  let x15 = dup m2_4 and x2 = dup m2_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_1 lsr 10)) land msk in
  let m2_3 = (m2_3 + s0 + m2_12 + s1) land msk in
  Array.unsafe_set w2 19 (m2_3 + 0x240ca1cc);
  let x15 = dup m2_5 and x2 = dup m2_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_2 lsr 10)) land msk in
  let m2_4 = (m2_4 + s0 + m2_13 + s1) land msk in
  Array.unsafe_set w2 20 (m2_4 + 0x2de92c6f);
  let x15 = dup m2_6 and x2 = dup m2_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_3 lsr 10)) land msk in
  let m2_5 = (m2_5 + s0 + m2_14 + s1) land msk in
  Array.unsafe_set w2 21 (m2_5 + 0x4a7484aa);
  let x15 = dup m2_7 and x2 = dup m2_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_4 lsr 10)) land msk in
  let m2_6 = (m2_6 + s0 + m2_15 + s1) land msk in
  Array.unsafe_set w2 22 (m2_6 + 0x5cb0a9dc);
  let x15 = dup m2_8 and x2 = dup m2_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_5 lsr 10)) land msk in
  let m2_7 = (m2_7 + s0 + m2_0 + s1) land msk in
  Array.unsafe_set w2 23 (m2_7 + 0x76f988da);
  let x15 = dup m2_9 and x2 = dup m2_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_6 lsr 10)) land msk in
  let m2_8 = (m2_8 + s0 + m2_1 + s1) land msk in
  Array.unsafe_set w2 24 (m2_8 + 0x983e5152);
  let x15 = dup m2_10 and x2 = dup m2_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_7 lsr 10)) land msk in
  let m2_9 = (m2_9 + s0 + m2_2 + s1) land msk in
  Array.unsafe_set w2 25 (m2_9 + 0xa831c66d);
  let x15 = dup m2_11 and x2 = dup m2_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_8 lsr 10)) land msk in
  let m2_10 = (m2_10 + s0 + m2_3 + s1) land msk in
  Array.unsafe_set w2 26 (m2_10 + 0xb00327c8);
  let x15 = dup m2_12 and x2 = dup m2_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_9 lsr 10)) land msk in
  let m2_11 = (m2_11 + s0 + m2_4 + s1) land msk in
  Array.unsafe_set w2 27 (m2_11 + 0xbf597fc7);
  let x15 = dup m2_13 and x2 = dup m2_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_10 lsr 10)) land msk in
  let m2_12 = (m2_12 + s0 + m2_5 + s1) land msk in
  Array.unsafe_set w2 28 (m2_12 + 0xc6e00bf3);
  let x15 = dup m2_14 and x2 = dup m2_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_11 lsr 10)) land msk in
  let m2_13 = (m2_13 + s0 + m2_6 + s1) land msk in
  Array.unsafe_set w2 29 (m2_13 + 0xd5a79147);
  let x15 = dup m2_15 and x2 = dup m2_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_12 lsr 10)) land msk in
  let m2_14 = (m2_14 + s0 + m2_7 + s1) land msk in
  Array.unsafe_set w2 30 (m2_14 + 0x06ca6351);
  let x15 = dup m2_0 and x2 = dup m2_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_13 lsr 10)) land msk in
  let m2_15 = (m2_15 + s0 + m2_8 + s1) land msk in
  Array.unsafe_set w2 31 (m2_15 + 0x14292967);
  let x15 = dup m2_1 and x2 = dup m2_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_14 lsr 10)) land msk in
  let m2_0 = (m2_0 + s0 + m2_9 + s1) land msk in
  Array.unsafe_set w2 32 (m2_0 + 0x27b70a85);
  let x15 = dup m2_2 and x2 = dup m2_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_15 lsr 10)) land msk in
  let m2_1 = (m2_1 + s0 + m2_10 + s1) land msk in
  Array.unsafe_set w2 33 (m2_1 + 0x2e1b2138);
  let x15 = dup m2_3 and x2 = dup m2_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_0 lsr 10)) land msk in
  let m2_2 = (m2_2 + s0 + m2_11 + s1) land msk in
  Array.unsafe_set w2 34 (m2_2 + 0x4d2c6dfc);
  let x15 = dup m2_4 and x2 = dup m2_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_1 lsr 10)) land msk in
  let m2_3 = (m2_3 + s0 + m2_12 + s1) land msk in
  Array.unsafe_set w2 35 (m2_3 + 0x53380d13);
  let x15 = dup m2_5 and x2 = dup m2_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_2 lsr 10)) land msk in
  let m2_4 = (m2_4 + s0 + m2_13 + s1) land msk in
  Array.unsafe_set w2 36 (m2_4 + 0x650a7354);
  let x15 = dup m2_6 and x2 = dup m2_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_3 lsr 10)) land msk in
  let m2_5 = (m2_5 + s0 + m2_14 + s1) land msk in
  Array.unsafe_set w2 37 (m2_5 + 0x766a0abb);
  let x15 = dup m2_7 and x2 = dup m2_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_4 lsr 10)) land msk in
  let m2_6 = (m2_6 + s0 + m2_15 + s1) land msk in
  Array.unsafe_set w2 38 (m2_6 + 0x81c2c92e);
  let x15 = dup m2_8 and x2 = dup m2_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_5 lsr 10)) land msk in
  let m2_7 = (m2_7 + s0 + m2_0 + s1) land msk in
  Array.unsafe_set w2 39 (m2_7 + 0x92722c85);
  let x15 = dup m2_9 and x2 = dup m2_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_6 lsr 10)) land msk in
  let m2_8 = (m2_8 + s0 + m2_1 + s1) land msk in
  Array.unsafe_set w2 40 (m2_8 + 0xa2bfe8a1);
  let x15 = dup m2_10 and x2 = dup m2_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_7 lsr 10)) land msk in
  let m2_9 = (m2_9 + s0 + m2_2 + s1) land msk in
  Array.unsafe_set w2 41 (m2_9 + 0xa81a664b);
  let x15 = dup m2_11 and x2 = dup m2_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_8 lsr 10)) land msk in
  let m2_10 = (m2_10 + s0 + m2_3 + s1) land msk in
  Array.unsafe_set w2 42 (m2_10 + 0xc24b8b70);
  let x15 = dup m2_12 and x2 = dup m2_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_9 lsr 10)) land msk in
  let m2_11 = (m2_11 + s0 + m2_4 + s1) land msk in
  Array.unsafe_set w2 43 (m2_11 + 0xc76c51a3);
  let x15 = dup m2_13 and x2 = dup m2_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_10 lsr 10)) land msk in
  let m2_12 = (m2_12 + s0 + m2_5 + s1) land msk in
  Array.unsafe_set w2 44 (m2_12 + 0xd192e819);
  let x15 = dup m2_14 and x2 = dup m2_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_11 lsr 10)) land msk in
  let m2_13 = (m2_13 + s0 + m2_6 + s1) land msk in
  Array.unsafe_set w2 45 (m2_13 + 0xd6990624);
  let x15 = dup m2_15 and x2 = dup m2_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_12 lsr 10)) land msk in
  let m2_14 = (m2_14 + s0 + m2_7 + s1) land msk in
  Array.unsafe_set w2 46 (m2_14 + 0xf40e3585);
  let x15 = dup m2_0 and x2 = dup m2_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_13 lsr 10)) land msk in
  let m2_15 = (m2_15 + s0 + m2_8 + s1) land msk in
  Array.unsafe_set w2 47 (m2_15 + 0x106aa070);
  let x15 = dup m2_1 and x2 = dup m2_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_14 lsr 10)) land msk in
  let m2_0 = (m2_0 + s0 + m2_9 + s1) land msk in
  Array.unsafe_set w2 48 (m2_0 + 0x19a4c116);
  let x15 = dup m2_2 and x2 = dup m2_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_15 lsr 10)) land msk in
  let m2_1 = (m2_1 + s0 + m2_10 + s1) land msk in
  Array.unsafe_set w2 49 (m2_1 + 0x1e376c08);
  let x15 = dup m2_3 and x2 = dup m2_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_0 lsr 10)) land msk in
  let m2_2 = (m2_2 + s0 + m2_11 + s1) land msk in
  Array.unsafe_set w2 50 (m2_2 + 0x2748774c);
  let x15 = dup m2_4 and x2 = dup m2_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_1 lsr 10)) land msk in
  let m2_3 = (m2_3 + s0 + m2_12 + s1) land msk in
  Array.unsafe_set w2 51 (m2_3 + 0x34b0bcb5);
  let x15 = dup m2_5 and x2 = dup m2_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_2 lsr 10)) land msk in
  let m2_4 = (m2_4 + s0 + m2_13 + s1) land msk in
  Array.unsafe_set w2 52 (m2_4 + 0x391c0cb3);
  let x15 = dup m2_6 and x2 = dup m2_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_3 lsr 10)) land msk in
  let m2_5 = (m2_5 + s0 + m2_14 + s1) land msk in
  Array.unsafe_set w2 53 (m2_5 + 0x4ed8aa4a);
  let x15 = dup m2_7 and x2 = dup m2_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_4 lsr 10)) land msk in
  let m2_6 = (m2_6 + s0 + m2_15 + s1) land msk in
  Array.unsafe_set w2 54 (m2_6 + 0x5b9cca4f);
  let x15 = dup m2_8 and x2 = dup m2_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_5 lsr 10)) land msk in
  let m2_7 = (m2_7 + s0 + m2_0 + s1) land msk in
  Array.unsafe_set w2 55 (m2_7 + 0x682e6ff3);
  let x15 = dup m2_9 and x2 = dup m2_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_6 lsr 10)) land msk in
  let m2_8 = (m2_8 + s0 + m2_1 + s1) land msk in
  Array.unsafe_set w2 56 (m2_8 + 0x748f82ee);
  let x15 = dup m2_10 and x2 = dup m2_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_7 lsr 10)) land msk in
  let m2_9 = (m2_9 + s0 + m2_2 + s1) land msk in
  Array.unsafe_set w2 57 (m2_9 + 0x78a5636f);
  let x15 = dup m2_11 and x2 = dup m2_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_8 lsr 10)) land msk in
  let m2_10 = (m2_10 + s0 + m2_3 + s1) land msk in
  Array.unsafe_set w2 58 (m2_10 + 0x84c87814);
  let x15 = dup m2_12 and x2 = dup m2_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_9 lsr 10)) land msk in
  let m2_11 = (m2_11 + s0 + m2_4 + s1) land msk in
  Array.unsafe_set w2 59 (m2_11 + 0x8cc70208);
  let x15 = dup m2_13 and x2 = dup m2_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_10 lsr 10)) land msk in
  let m2_12 = (m2_12 + s0 + m2_5 + s1) land msk in
  Array.unsafe_set w2 60 (m2_12 + 0x90befffa);
  let x15 = dup m2_14 and x2 = dup m2_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_11 lsr 10)) land msk in
  let m2_13 = (m2_13 + s0 + m2_6 + s1) land msk in
  Array.unsafe_set w2 61 (m2_13 + 0xa4506ceb);
  let x15 = dup m2_15 and x2 = dup m2_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_12 lsr 10)) land msk in
  let m2_14 = (m2_14 + s0 + m2_7 + s1) land msk in
  Array.unsafe_set w2 62 (m2_14 + 0xbef9a3f7);
  let x15 = dup m2_0 and x2 = dup m2_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m2_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m2_13 lsr 10)) land msk in
  let m2_15 = (m2_15 + s0 + m2_8 + s1) land msk in
  Array.unsafe_set w2 63 (m2_15 + 0xc67178f2);
  let m3_0 = Bytesutil.unsafe_load32_be b3 (p3 + 0) in
  Array.unsafe_set w3 0 (m3_0 + 0x428a2f98);
  let m3_1 = Bytesutil.unsafe_load32_be b3 (p3 + 4) in
  Array.unsafe_set w3 1 (m3_1 + 0x71374491);
  let m3_2 = Bytesutil.unsafe_load32_be b3 (p3 + 8) in
  Array.unsafe_set w3 2 (m3_2 + 0xb5c0fbcf);
  let m3_3 = Bytesutil.unsafe_load32_be b3 (p3 + 12) in
  Array.unsafe_set w3 3 (m3_3 + 0xe9b5dba5);
  let m3_4 = Bytesutil.unsafe_load32_be b3 (p3 + 16) in
  Array.unsafe_set w3 4 (m3_4 + 0x3956c25b);
  let m3_5 = Bytesutil.unsafe_load32_be b3 (p3 + 20) in
  Array.unsafe_set w3 5 (m3_5 + 0x59f111f1);
  let m3_6 = Bytesutil.unsafe_load32_be b3 (p3 + 24) in
  Array.unsafe_set w3 6 (m3_6 + 0x923f82a4);
  let m3_7 = Bytesutil.unsafe_load32_be b3 (p3 + 28) in
  Array.unsafe_set w3 7 (m3_7 + 0xab1c5ed5);
  let m3_8 = Bytesutil.unsafe_load32_be b3 (p3 + 32) in
  Array.unsafe_set w3 8 (m3_8 + 0xd807aa98);
  let m3_9 = Bytesutil.unsafe_load32_be b3 (p3 + 36) in
  Array.unsafe_set w3 9 (m3_9 + 0x12835b01);
  let m3_10 = Bytesutil.unsafe_load32_be b3 (p3 + 40) in
  Array.unsafe_set w3 10 (m3_10 + 0x243185be);
  let m3_11 = Bytesutil.unsafe_load32_be b3 (p3 + 44) in
  Array.unsafe_set w3 11 (m3_11 + 0x550c7dc3);
  let m3_12 = Bytesutil.unsafe_load32_be b3 (p3 + 48) in
  Array.unsafe_set w3 12 (m3_12 + 0x72be5d74);
  let m3_13 = Bytesutil.unsafe_load32_be b3 (p3 + 52) in
  Array.unsafe_set w3 13 (m3_13 + 0x80deb1fe);
  let m3_14 = Bytesutil.unsafe_load32_be b3 (p3 + 56) in
  Array.unsafe_set w3 14 (m3_14 + 0x9bdc06a7);
  let m3_15 = Bytesutil.unsafe_load32_be b3 (p3 + 60) in
  Array.unsafe_set w3 15 (m3_15 + 0xc19bf174);
  let x15 = dup m3_1 and x2 = dup m3_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_14 lsr 10)) land msk in
  let m3_0 = (m3_0 + s0 + m3_9 + s1) land msk in
  Array.unsafe_set w3 16 (m3_0 + 0xe49b69c1);
  let x15 = dup m3_2 and x2 = dup m3_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_15 lsr 10)) land msk in
  let m3_1 = (m3_1 + s0 + m3_10 + s1) land msk in
  Array.unsafe_set w3 17 (m3_1 + 0xefbe4786);
  let x15 = dup m3_3 and x2 = dup m3_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_0 lsr 10)) land msk in
  let m3_2 = (m3_2 + s0 + m3_11 + s1) land msk in
  Array.unsafe_set w3 18 (m3_2 + 0x0fc19dc6);
  let x15 = dup m3_4 and x2 = dup m3_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_1 lsr 10)) land msk in
  let m3_3 = (m3_3 + s0 + m3_12 + s1) land msk in
  Array.unsafe_set w3 19 (m3_3 + 0x240ca1cc);
  let x15 = dup m3_5 and x2 = dup m3_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_2 lsr 10)) land msk in
  let m3_4 = (m3_4 + s0 + m3_13 + s1) land msk in
  Array.unsafe_set w3 20 (m3_4 + 0x2de92c6f);
  let x15 = dup m3_6 and x2 = dup m3_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_3 lsr 10)) land msk in
  let m3_5 = (m3_5 + s0 + m3_14 + s1) land msk in
  Array.unsafe_set w3 21 (m3_5 + 0x4a7484aa);
  let x15 = dup m3_7 and x2 = dup m3_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_4 lsr 10)) land msk in
  let m3_6 = (m3_6 + s0 + m3_15 + s1) land msk in
  Array.unsafe_set w3 22 (m3_6 + 0x5cb0a9dc);
  let x15 = dup m3_8 and x2 = dup m3_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_5 lsr 10)) land msk in
  let m3_7 = (m3_7 + s0 + m3_0 + s1) land msk in
  Array.unsafe_set w3 23 (m3_7 + 0x76f988da);
  let x15 = dup m3_9 and x2 = dup m3_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_6 lsr 10)) land msk in
  let m3_8 = (m3_8 + s0 + m3_1 + s1) land msk in
  Array.unsafe_set w3 24 (m3_8 + 0x983e5152);
  let x15 = dup m3_10 and x2 = dup m3_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_7 lsr 10)) land msk in
  let m3_9 = (m3_9 + s0 + m3_2 + s1) land msk in
  Array.unsafe_set w3 25 (m3_9 + 0xa831c66d);
  let x15 = dup m3_11 and x2 = dup m3_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_8 lsr 10)) land msk in
  let m3_10 = (m3_10 + s0 + m3_3 + s1) land msk in
  Array.unsafe_set w3 26 (m3_10 + 0xb00327c8);
  let x15 = dup m3_12 and x2 = dup m3_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_9 lsr 10)) land msk in
  let m3_11 = (m3_11 + s0 + m3_4 + s1) land msk in
  Array.unsafe_set w3 27 (m3_11 + 0xbf597fc7);
  let x15 = dup m3_13 and x2 = dup m3_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_10 lsr 10)) land msk in
  let m3_12 = (m3_12 + s0 + m3_5 + s1) land msk in
  Array.unsafe_set w3 28 (m3_12 + 0xc6e00bf3);
  let x15 = dup m3_14 and x2 = dup m3_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_11 lsr 10)) land msk in
  let m3_13 = (m3_13 + s0 + m3_6 + s1) land msk in
  Array.unsafe_set w3 29 (m3_13 + 0xd5a79147);
  let x15 = dup m3_15 and x2 = dup m3_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_12 lsr 10)) land msk in
  let m3_14 = (m3_14 + s0 + m3_7 + s1) land msk in
  Array.unsafe_set w3 30 (m3_14 + 0x06ca6351);
  let x15 = dup m3_0 and x2 = dup m3_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_13 lsr 10)) land msk in
  let m3_15 = (m3_15 + s0 + m3_8 + s1) land msk in
  Array.unsafe_set w3 31 (m3_15 + 0x14292967);
  let x15 = dup m3_1 and x2 = dup m3_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_14 lsr 10)) land msk in
  let m3_0 = (m3_0 + s0 + m3_9 + s1) land msk in
  Array.unsafe_set w3 32 (m3_0 + 0x27b70a85);
  let x15 = dup m3_2 and x2 = dup m3_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_15 lsr 10)) land msk in
  let m3_1 = (m3_1 + s0 + m3_10 + s1) land msk in
  Array.unsafe_set w3 33 (m3_1 + 0x2e1b2138);
  let x15 = dup m3_3 and x2 = dup m3_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_0 lsr 10)) land msk in
  let m3_2 = (m3_2 + s0 + m3_11 + s1) land msk in
  Array.unsafe_set w3 34 (m3_2 + 0x4d2c6dfc);
  let x15 = dup m3_4 and x2 = dup m3_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_1 lsr 10)) land msk in
  let m3_3 = (m3_3 + s0 + m3_12 + s1) land msk in
  Array.unsafe_set w3 35 (m3_3 + 0x53380d13);
  let x15 = dup m3_5 and x2 = dup m3_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_2 lsr 10)) land msk in
  let m3_4 = (m3_4 + s0 + m3_13 + s1) land msk in
  Array.unsafe_set w3 36 (m3_4 + 0x650a7354);
  let x15 = dup m3_6 and x2 = dup m3_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_3 lsr 10)) land msk in
  let m3_5 = (m3_5 + s0 + m3_14 + s1) land msk in
  Array.unsafe_set w3 37 (m3_5 + 0x766a0abb);
  let x15 = dup m3_7 and x2 = dup m3_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_4 lsr 10)) land msk in
  let m3_6 = (m3_6 + s0 + m3_15 + s1) land msk in
  Array.unsafe_set w3 38 (m3_6 + 0x81c2c92e);
  let x15 = dup m3_8 and x2 = dup m3_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_5 lsr 10)) land msk in
  let m3_7 = (m3_7 + s0 + m3_0 + s1) land msk in
  Array.unsafe_set w3 39 (m3_7 + 0x92722c85);
  let x15 = dup m3_9 and x2 = dup m3_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_6 lsr 10)) land msk in
  let m3_8 = (m3_8 + s0 + m3_1 + s1) land msk in
  Array.unsafe_set w3 40 (m3_8 + 0xa2bfe8a1);
  let x15 = dup m3_10 and x2 = dup m3_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_7 lsr 10)) land msk in
  let m3_9 = (m3_9 + s0 + m3_2 + s1) land msk in
  Array.unsafe_set w3 41 (m3_9 + 0xa81a664b);
  let x15 = dup m3_11 and x2 = dup m3_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_8 lsr 10)) land msk in
  let m3_10 = (m3_10 + s0 + m3_3 + s1) land msk in
  Array.unsafe_set w3 42 (m3_10 + 0xc24b8b70);
  let x15 = dup m3_12 and x2 = dup m3_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_9 lsr 10)) land msk in
  let m3_11 = (m3_11 + s0 + m3_4 + s1) land msk in
  Array.unsafe_set w3 43 (m3_11 + 0xc76c51a3);
  let x15 = dup m3_13 and x2 = dup m3_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_10 lsr 10)) land msk in
  let m3_12 = (m3_12 + s0 + m3_5 + s1) land msk in
  Array.unsafe_set w3 44 (m3_12 + 0xd192e819);
  let x15 = dup m3_14 and x2 = dup m3_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_11 lsr 10)) land msk in
  let m3_13 = (m3_13 + s0 + m3_6 + s1) land msk in
  Array.unsafe_set w3 45 (m3_13 + 0xd6990624);
  let x15 = dup m3_15 and x2 = dup m3_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_12 lsr 10)) land msk in
  let m3_14 = (m3_14 + s0 + m3_7 + s1) land msk in
  Array.unsafe_set w3 46 (m3_14 + 0xf40e3585);
  let x15 = dup m3_0 and x2 = dup m3_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_13 lsr 10)) land msk in
  let m3_15 = (m3_15 + s0 + m3_8 + s1) land msk in
  Array.unsafe_set w3 47 (m3_15 + 0x106aa070);
  let x15 = dup m3_1 and x2 = dup m3_14 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_1 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_14 lsr 10)) land msk in
  let m3_0 = (m3_0 + s0 + m3_9 + s1) land msk in
  Array.unsafe_set w3 48 (m3_0 + 0x19a4c116);
  let x15 = dup m3_2 and x2 = dup m3_15 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_2 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_15 lsr 10)) land msk in
  let m3_1 = (m3_1 + s0 + m3_10 + s1) land msk in
  Array.unsafe_set w3 49 (m3_1 + 0x1e376c08);
  let x15 = dup m3_3 and x2 = dup m3_0 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_3 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_0 lsr 10)) land msk in
  let m3_2 = (m3_2 + s0 + m3_11 + s1) land msk in
  Array.unsafe_set w3 50 (m3_2 + 0x2748774c);
  let x15 = dup m3_4 and x2 = dup m3_1 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_4 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_1 lsr 10)) land msk in
  let m3_3 = (m3_3 + s0 + m3_12 + s1) land msk in
  Array.unsafe_set w3 51 (m3_3 + 0x34b0bcb5);
  let x15 = dup m3_5 and x2 = dup m3_2 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_5 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_2 lsr 10)) land msk in
  let m3_4 = (m3_4 + s0 + m3_13 + s1) land msk in
  Array.unsafe_set w3 52 (m3_4 + 0x391c0cb3);
  let x15 = dup m3_6 and x2 = dup m3_3 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_6 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_3 lsr 10)) land msk in
  let m3_5 = (m3_5 + s0 + m3_14 + s1) land msk in
  Array.unsafe_set w3 53 (m3_5 + 0x4ed8aa4a);
  let x15 = dup m3_7 and x2 = dup m3_4 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_7 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_4 lsr 10)) land msk in
  let m3_6 = (m3_6 + s0 + m3_15 + s1) land msk in
  Array.unsafe_set w3 54 (m3_6 + 0x5b9cca4f);
  let x15 = dup m3_8 and x2 = dup m3_5 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_8 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_5 lsr 10)) land msk in
  let m3_7 = (m3_7 + s0 + m3_0 + s1) land msk in
  Array.unsafe_set w3 55 (m3_7 + 0x682e6ff3);
  let x15 = dup m3_9 and x2 = dup m3_6 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_9 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_6 lsr 10)) land msk in
  let m3_8 = (m3_8 + s0 + m3_1 + s1) land msk in
  Array.unsafe_set w3 56 (m3_8 + 0x748f82ee);
  let x15 = dup m3_10 and x2 = dup m3_7 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_10 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_7 lsr 10)) land msk in
  let m3_9 = (m3_9 + s0 + m3_2 + s1) land msk in
  Array.unsafe_set w3 57 (m3_9 + 0x78a5636f);
  let x15 = dup m3_11 and x2 = dup m3_8 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_11 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_8 lsr 10)) land msk in
  let m3_10 = (m3_10 + s0 + m3_3 + s1) land msk in
  Array.unsafe_set w3 58 (m3_10 + 0x84c87814);
  let x15 = dup m3_12 and x2 = dup m3_9 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_12 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_9 lsr 10)) land msk in
  let m3_11 = (m3_11 + s0 + m3_4 + s1) land msk in
  Array.unsafe_set w3 59 (m3_11 + 0x8cc70208);
  let x15 = dup m3_13 and x2 = dup m3_10 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_13 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_10 lsr 10)) land msk in
  let m3_12 = (m3_12 + s0 + m3_5 + s1) land msk in
  Array.unsafe_set w3 60 (m3_12 + 0x90befffa);
  let x15 = dup m3_14 and x2 = dup m3_11 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_14 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_11 lsr 10)) land msk in
  let m3_13 = (m3_13 + s0 + m3_6 + s1) land msk in
  Array.unsafe_set w3 61 (m3_13 + 0xa4506ceb);
  let x15 = dup m3_15 and x2 = dup m3_12 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_15 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_12 lsr 10)) land msk in
  let m3_14 = (m3_14 + s0 + m3_7 + s1) land msk in
  Array.unsafe_set w3 62 (m3_14 + 0xbef9a3f7);
  let x15 = dup m3_0 and x2 = dup m3_13 in
  let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (m3_0 lsr 3)) land msk in
  let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (m3_13 lsr 10)) land msk in
  let m3_15 = (m3_15 + s0 + m3_8 + s1) land msk in
  Array.unsafe_set w3 63 (m3_15 + 0xc67178f2);
  let rec go r msk a0 b0 c0 d0 e0 f0 g0 h0 a1 b1 c1 d1 e1 f1 g1 h1 a2 b2 c2 d2 e2 f2 g2 h2 a3 b3 c3 d3 e3 f3 g3 h3 =
    if r = 64 then begin
      Array.unsafe_set st0 0 ((Array.unsafe_get st0 0 + a0) land msk);
      Array.unsafe_set st0 1 ((Array.unsafe_get st0 1 + b0) land msk);
      Array.unsafe_set st0 2 ((Array.unsafe_get st0 2 + c0) land msk);
      Array.unsafe_set st0 3 ((Array.unsafe_get st0 3 + d0) land msk);
      Array.unsafe_set st0 4 ((Array.unsafe_get st0 4 + e0) land msk);
      Array.unsafe_set st0 5 ((Array.unsafe_get st0 5 + f0) land msk);
      Array.unsafe_set st0 6 ((Array.unsafe_get st0 6 + g0) land msk);
      Array.unsafe_set st0 7 ((Array.unsafe_get st0 7 + h0) land msk);
      Array.unsafe_set st1 0 ((Array.unsafe_get st1 0 + a1) land msk);
      Array.unsafe_set st1 1 ((Array.unsafe_get st1 1 + b1) land msk);
      Array.unsafe_set st1 2 ((Array.unsafe_get st1 2 + c1) land msk);
      Array.unsafe_set st1 3 ((Array.unsafe_get st1 3 + d1) land msk);
      Array.unsafe_set st1 4 ((Array.unsafe_get st1 4 + e1) land msk);
      Array.unsafe_set st1 5 ((Array.unsafe_get st1 5 + f1) land msk);
      Array.unsafe_set st1 6 ((Array.unsafe_get st1 6 + g1) land msk);
      Array.unsafe_set st1 7 ((Array.unsafe_get st1 7 + h1) land msk);
      Array.unsafe_set st2 0 ((Array.unsafe_get st2 0 + a2) land msk);
      Array.unsafe_set st2 1 ((Array.unsafe_get st2 1 + b2) land msk);
      Array.unsafe_set st2 2 ((Array.unsafe_get st2 2 + c2) land msk);
      Array.unsafe_set st2 3 ((Array.unsafe_get st2 3 + d2) land msk);
      Array.unsafe_set st2 4 ((Array.unsafe_get st2 4 + e2) land msk);
      Array.unsafe_set st2 5 ((Array.unsafe_get st2 5 + f2) land msk);
      Array.unsafe_set st2 6 ((Array.unsafe_get st2 6 + g2) land msk);
      Array.unsafe_set st2 7 ((Array.unsafe_get st2 7 + h2) land msk);
      Array.unsafe_set st3 0 ((Array.unsafe_get st3 0 + a3) land msk);
      Array.unsafe_set st3 1 ((Array.unsafe_get st3 1 + b3) land msk);
      Array.unsafe_set st3 2 ((Array.unsafe_get st3 2 + c3) land msk);
      Array.unsafe_set st3 3 ((Array.unsafe_get st3 3 + d3) land msk);
      Array.unsafe_set st3 4 ((Array.unsafe_get st3 4 + e3) land msk);
      Array.unsafe_set st3 5 ((Array.unsafe_get st3 5 + f3) land msk);
      Array.unsafe_set st3 6 ((Array.unsafe_get st3 6 + g3) land msk);
      Array.unsafe_set st3 7 ((Array.unsafe_get st3 7 + h3) land msk);
    end
    else begin
      let ee = e0 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = g0 lxor (e0 land (f0 lxor g0)) in
      let t1 = h0 + s1 + ch + Array.unsafe_get w0 (r + 0) in
      let aa = a0 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((a0 lxor b0) land c0) lxor (a0 land b0) in
      let d0 = d0 + t1 in
      let h0 = t1 + s0 + mj in
      let ee = e1 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = g1 lxor (e1 land (f1 lxor g1)) in
      let t1 = h1 + s1 + ch + Array.unsafe_get w1 (r + 0) in
      let aa = a1 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((a1 lxor b1) land c1) lxor (a1 land b1) in
      let d1 = d1 + t1 in
      let h1 = t1 + s0 + mj in
      let ee = e2 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = g2 lxor (e2 land (f2 lxor g2)) in
      let t1 = h2 + s1 + ch + Array.unsafe_get w2 (r + 0) in
      let aa = a2 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((a2 lxor b2) land c2) lxor (a2 land b2) in
      let d2 = d2 + t1 in
      let h2 = t1 + s0 + mj in
      let ee = e3 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = g3 lxor (e3 land (f3 lxor g3)) in
      let t1 = h3 + s1 + ch + Array.unsafe_get w3 (r + 0) in
      let aa = a3 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((a3 lxor b3) land c3) lxor (a3 land b3) in
      let d3 = d3 + t1 in
      let h3 = t1 + s0 + mj in
      let ee = d0 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = f0 lxor (d0 land (e0 lxor f0)) in
      let t1 = g0 + s1 + ch + Array.unsafe_get w0 (r + 1) in
      let aa = h0 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((h0 lxor a0) land b0) lxor (h0 land a0) in
      let c0 = c0 + t1 in
      let g0 = t1 + s0 + mj in
      let ee = d1 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = f1 lxor (d1 land (e1 lxor f1)) in
      let t1 = g1 + s1 + ch + Array.unsafe_get w1 (r + 1) in
      let aa = h1 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((h1 lxor a1) land b1) lxor (h1 land a1) in
      let c1 = c1 + t1 in
      let g1 = t1 + s0 + mj in
      let ee = d2 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = f2 lxor (d2 land (e2 lxor f2)) in
      let t1 = g2 + s1 + ch + Array.unsafe_get w2 (r + 1) in
      let aa = h2 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((h2 lxor a2) land b2) lxor (h2 land a2) in
      let c2 = c2 + t1 in
      let g2 = t1 + s0 + mj in
      let ee = d3 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = f3 lxor (d3 land (e3 lxor f3)) in
      let t1 = g3 + s1 + ch + Array.unsafe_get w3 (r + 1) in
      let aa = h3 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((h3 lxor a3) land b3) lxor (h3 land a3) in
      let c3 = c3 + t1 in
      let g3 = t1 + s0 + mj in
      let ee = c0 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = e0 lxor (c0 land (d0 lxor e0)) in
      let t1 = f0 + s1 + ch + Array.unsafe_get w0 (r + 2) in
      let aa = g0 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((g0 lxor h0) land a0) lxor (g0 land h0) in
      let b0 = b0 + t1 in
      let f0 = t1 + s0 + mj in
      let ee = c1 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = e1 lxor (c1 land (d1 lxor e1)) in
      let t1 = f1 + s1 + ch + Array.unsafe_get w1 (r + 2) in
      let aa = g1 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((g1 lxor h1) land a1) lxor (g1 land h1) in
      let b1 = b1 + t1 in
      let f1 = t1 + s0 + mj in
      let ee = c2 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = e2 lxor (c2 land (d2 lxor e2)) in
      let t1 = f2 + s1 + ch + Array.unsafe_get w2 (r + 2) in
      let aa = g2 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((g2 lxor h2) land a2) lxor (g2 land h2) in
      let b2 = b2 + t1 in
      let f2 = t1 + s0 + mj in
      let ee = c3 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = e3 lxor (c3 land (d3 lxor e3)) in
      let t1 = f3 + s1 + ch + Array.unsafe_get w3 (r + 2) in
      let aa = g3 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((g3 lxor h3) land a3) lxor (g3 land h3) in
      let b3 = b3 + t1 in
      let f3 = t1 + s0 + mj in
      let ee = b0 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = d0 lxor (b0 land (c0 lxor d0)) in
      let t1 = e0 + s1 + ch + Array.unsafe_get w0 (r + 3) in
      let aa = f0 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((f0 lxor g0) land h0) lxor (f0 land g0) in
      let a0 = a0 + t1 in
      let e0 = t1 + s0 + mj in
      let ee = b1 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = d1 lxor (b1 land (c1 lxor d1)) in
      let t1 = e1 + s1 + ch + Array.unsafe_get w1 (r + 3) in
      let aa = f1 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((f1 lxor g1) land h1) lxor (f1 land g1) in
      let a1 = a1 + t1 in
      let e1 = t1 + s0 + mj in
      let ee = b2 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = d2 lxor (b2 land (c2 lxor d2)) in
      let t1 = e2 + s1 + ch + Array.unsafe_get w2 (r + 3) in
      let aa = f2 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((f2 lxor g2) land h2) lxor (f2 land g2) in
      let a2 = a2 + t1 in
      let e2 = t1 + s0 + mj in
      let ee = b3 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = d3 lxor (b3 land (c3 lxor d3)) in
      let t1 = e3 + s1 + ch + Array.unsafe_get w3 (r + 3) in
      let aa = f3 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((f3 lxor g3) land h3) lxor (f3 land g3) in
      let a3 = a3 + t1 in
      let e3 = t1 + s0 + mj in
      let ee = a0 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = c0 lxor (a0 land (b0 lxor c0)) in
      let t1 = d0 + s1 + ch + Array.unsafe_get w0 (r + 4) in
      let aa = e0 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((e0 lxor f0) land g0) lxor (e0 land f0) in
      let h0 = h0 + t1 in
      let d0 = t1 + s0 + mj in
      let ee = a1 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = c1 lxor (a1 land (b1 lxor c1)) in
      let t1 = d1 + s1 + ch + Array.unsafe_get w1 (r + 4) in
      let aa = e1 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((e1 lxor f1) land g1) lxor (e1 land f1) in
      let h1 = h1 + t1 in
      let d1 = t1 + s0 + mj in
      let ee = a2 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = c2 lxor (a2 land (b2 lxor c2)) in
      let t1 = d2 + s1 + ch + Array.unsafe_get w2 (r + 4) in
      let aa = e2 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((e2 lxor f2) land g2) lxor (e2 land f2) in
      let h2 = h2 + t1 in
      let d2 = t1 + s0 + mj in
      let ee = a3 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = c3 lxor (a3 land (b3 lxor c3)) in
      let t1 = d3 + s1 + ch + Array.unsafe_get w3 (r + 4) in
      let aa = e3 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((e3 lxor f3) land g3) lxor (e3 land f3) in
      let h3 = h3 + t1 in
      let d3 = t1 + s0 + mj in
      let ee = h0 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = b0 lxor (h0 land (a0 lxor b0)) in
      let t1 = c0 + s1 + ch + Array.unsafe_get w0 (r + 5) in
      let aa = d0 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((d0 lxor e0) land f0) lxor (d0 land e0) in
      let g0 = g0 + t1 in
      let c0 = t1 + s0 + mj in
      let ee = h1 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = b1 lxor (h1 land (a1 lxor b1)) in
      let t1 = c1 + s1 + ch + Array.unsafe_get w1 (r + 5) in
      let aa = d1 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((d1 lxor e1) land f1) lxor (d1 land e1) in
      let g1 = g1 + t1 in
      let c1 = t1 + s0 + mj in
      let ee = h2 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = b2 lxor (h2 land (a2 lxor b2)) in
      let t1 = c2 + s1 + ch + Array.unsafe_get w2 (r + 5) in
      let aa = d2 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((d2 lxor e2) land f2) lxor (d2 land e2) in
      let g2 = g2 + t1 in
      let c2 = t1 + s0 + mj in
      let ee = h3 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = b3 lxor (h3 land (a3 lxor b3)) in
      let t1 = c3 + s1 + ch + Array.unsafe_get w3 (r + 5) in
      let aa = d3 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((d3 lxor e3) land f3) lxor (d3 land e3) in
      let g3 = g3 + t1 in
      let c3 = t1 + s0 + mj in
      let ee = g0 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = a0 lxor (g0 land (h0 lxor a0)) in
      let t1 = b0 + s1 + ch + Array.unsafe_get w0 (r + 6) in
      let aa = c0 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((c0 lxor d0) land e0) lxor (c0 land d0) in
      let f0 = f0 + t1 in
      let b0 = t1 + s0 + mj in
      let ee = g1 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = a1 lxor (g1 land (h1 lxor a1)) in
      let t1 = b1 + s1 + ch + Array.unsafe_get w1 (r + 6) in
      let aa = c1 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((c1 lxor d1) land e1) lxor (c1 land d1) in
      let f1 = f1 + t1 in
      let b1 = t1 + s0 + mj in
      let ee = g2 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = a2 lxor (g2 land (h2 lxor a2)) in
      let t1 = b2 + s1 + ch + Array.unsafe_get w2 (r + 6) in
      let aa = c2 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((c2 lxor d2) land e2) lxor (c2 land d2) in
      let f2 = f2 + t1 in
      let b2 = t1 + s0 + mj in
      let ee = g3 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = a3 lxor (g3 land (h3 lxor a3)) in
      let t1 = b3 + s1 + ch + Array.unsafe_get w3 (r + 6) in
      let aa = c3 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((c3 lxor d3) land e3) lxor (c3 land d3) in
      let f3 = f3 + t1 in
      let b3 = t1 + s0 + mj in
      let ee = f0 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = h0 lxor (f0 land (g0 lxor h0)) in
      let t1 = a0 + s1 + ch + Array.unsafe_get w0 (r + 7) in
      let aa = b0 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((b0 lxor c0) land d0) lxor (b0 land c0) in
      let e0 = e0 + t1 in
      let a0 = t1 + s0 + mj in
      let ee = f1 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = h1 lxor (f1 land (g1 lxor h1)) in
      let t1 = a1 + s1 + ch + Array.unsafe_get w1 (r + 7) in
      let aa = b1 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((b1 lxor c1) land d1) lxor (b1 land c1) in
      let e1 = e1 + t1 in
      let a1 = t1 + s0 + mj in
      let ee = f2 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = h2 lxor (f2 land (g2 lxor h2)) in
      let t1 = a2 + s1 + ch + Array.unsafe_get w2 (r + 7) in
      let aa = b2 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((b2 lxor c2) land d2) lxor (b2 land c2) in
      let e2 = e2 + t1 in
      let a2 = t1 + s0 + mj in
      let ee = f3 land msk in
      let ee = ee lor (ee lsl 32) in
      let s1 = (ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25) in
      let ch = h3 lxor (f3 land (g3 lxor h3)) in
      let t1 = a3 + s1 + ch + Array.unsafe_get w3 (r + 7) in
      let aa = b3 land msk in
      let aa = aa lor (aa lsl 32) in
      let s0 = (aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22) in
      let mj = ((b3 lxor c3) land d3) lxor (b3 land c3) in
      let e3 = e3 + t1 in
      let a3 = t1 + s0 + mj in
      go (r + 8) msk a0 b0 c0 d0 e0 f0 g0 h0 a1 b1 c1 d1 e1 f1 g1 h1 a2 b2 c2 d2 e2 f2 g2 h2 a3 b3 c3 d3 e3 f3 g3 h3
    end
  in
  go 0 msk (Array.unsafe_get st0 0) (Array.unsafe_get st0 1) (Array.unsafe_get st0 2) (Array.unsafe_get st0 3) (Array.unsafe_get st0 4) (Array.unsafe_get st0 5) (Array.unsafe_get st0 6) (Array.unsafe_get st0 7) (Array.unsafe_get st1 0) (Array.unsafe_get st1 1) (Array.unsafe_get st1 2) (Array.unsafe_get st1 3) (Array.unsafe_get st1 4) (Array.unsafe_get st1 5) (Array.unsafe_get st1 6) (Array.unsafe_get st1 7) (Array.unsafe_get st2 0) (Array.unsafe_get st2 1) (Array.unsafe_get st2 2) (Array.unsafe_get st2 3) (Array.unsafe_get st2 4) (Array.unsafe_get st2 5) (Array.unsafe_get st2 6) (Array.unsafe_get st2 7) (Array.unsafe_get st3 0) (Array.unsafe_get st3 1) (Array.unsafe_get st3 2) (Array.unsafe_get st3 3) (Array.unsafe_get st3 4) (Array.unsafe_get st3 5) (Array.unsafe_get st3 6) (Array.unsafe_get st3 7)

(* Single-lane tail once lockstep runs out: remaining whole blocks, then
   FIPS 180-4 padding (0x80, zeros, 64-bit big-endian bit length) in one
   or two synthesised blocks. *)
let finish_lane st w msg pos =
  let len = Bytes.length msg in
  let pos = ref pos in
  while len - !pos >= 64 do
    Sha256.compress_words st w msg !pos;
    pos := !pos + 64
  done;
  let rem = len - !pos in
  let tail_blocks = if rem + 9 <= 64 then 1 else 2 in
  let tail = Bytes.make (64 * tail_blocks) '\000' in
  Bytes.blit msg !pos tail 0 rem;
  Bytes.set tail rem '\x80';
  Bytesutil.store64_be tail ((64 * tail_blocks) - 8) (Int64.of_int (8 * len));
  Sha256.compress_words st w tail 0;
  if tail_blocks = 2 then Sha256.compress_words st w tail 64;
  let out = Bytes.create 32 in
  for j = 0 to 7 do
    Bytesutil.store32_be out (4 * j) st.(j)
  done;
  out

let digest_pair st0 st1 w0 w1 out i m0 m1 =
  Array.blit iv 0 st0 0 8;
  Array.blit iv 0 st1 0 8;
  let common = min (Bytes.length m0 / 64) (Bytes.length m1 / 64) in
  for b = 0 to common - 1 do
    compress2 st0 st1 w0 w1 m0 (64 * b) m1 (64 * b)
  done;
  out.(i) <- finish_lane st0 w0 m0 (64 * common);
  out.(i + 1) <- finish_lane st1 w1 m1 (64 * common)

let digest_quad st0 st1 st2 st3 w0 w1 w2 w3 out i m0 m1 m2 m3 =
  Array.blit iv 0 st0 0 8;
  Array.blit iv 0 st1 0 8;
  Array.blit iv 0 st2 0 8;
  Array.blit iv 0 st3 0 8;
  let common =
    min
      (min (Bytes.length m0 / 64) (Bytes.length m1 / 64))
      (min (Bytes.length m2 / 64) (Bytes.length m3 / 64))
  in
  for b = 0 to common - 1 do
    compress4 st0 st1 st2 st3 w0 w1 w2 w3 m0 (64 * b) m1 (64 * b) m2 (64 * b)
      m3 (64 * b)
  done;
  out.(i) <- finish_lane st0 w0 m0 (64 * common);
  out.(i + 1) <- finish_lane st1 w1 m1 (64 * common);
  out.(i + 2) <- finish_lane st2 w2 m2 (64 * common);
  out.(i + 3) <- finish_lane st3 w3 m3 (64 * common)

let digest_many ?(lanes = 2) msgs =
  (match lanes with
  | 1 | 2 | 4 -> ()
  | _ -> invalid_arg "Sha256_multi.digest_many: lanes must be 1, 2 or 4");
  let n = Array.length msgs in
  let out = Array.make n Bytes.empty in
  if lanes = 1 then
    for i = 0 to n - 1 do
      out.(i) <- Sha256.digest msgs.(i)
    done
  else begin
    let st0 = Array.make 8 0 and st1 = Array.make 8 0 in
    let w0 = Array.make 64 0 and w1 = Array.make 64 0 in
    let i = ref 0 in
    if lanes = 4 then begin
      let st2 = Array.make 8 0 and st3 = Array.make 8 0 in
      let w2 = Array.make 64 0 and w3 = Array.make 64 0 in
      while !i + 4 <= n do
        digest_quad st0 st1 st2 st3 w0 w1 w2 w3 out !i msgs.(!i)
          msgs.(!i + 1)
          msgs.(!i + 2)
          msgs.(!i + 3);
        i := !i + 4
      done
    end;
    while !i + 2 <= n do
      digest_pair st0 st1 w0 w1 out !i msgs.(!i) msgs.(!i + 1);
      i := !i + 2
    done;
    if !i < n then out.(!i) <- Sha256.digest msgs.(!i)
  end;
  out
