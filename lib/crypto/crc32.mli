(** CRC-32 (ISO-HDLC / IEEE 802.3, the zlib checksum), from scratch.

    This is a {e frame check sequence}, not a cryptographic primitive: it
    detects in-flight corruption (every single-bit flip, every burst up to
    32 bits) so the transport layer can separate "damaged in transit" from
    "MAC mismatch — tampered device". Authenticity still comes from the
    report MAC. *)

val digest : Bytes.t -> int
(** The CRC of a payload, in [\[0, 2^32)]. [digest "123456789"] is
    [0xCBF43926]. *)

val update : int -> Bytes.t -> int
(** Streaming form: [update (update 0 a) b = digest (a ^ b)]. *)

val to_bytes : int -> Bytes.t
(** Big-endian 4-byte encoding. *)
