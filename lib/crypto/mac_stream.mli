(** Streaming keyed-integrity context, generic over the hash choice.

    The measurement process absorbs prover memory block by block; this
    wrapper selects HMAC for the SHA family and the native keyed mode for
    the BLAKE2 family (its designed-in MAC). *)

type t

val create : Algo.hash -> key:Bytes.t -> t

type key_schedule
(** Precomputed key state (HMAC ipad/opad, or BLAKE2 post-key block):
    derive once, then mint any number of independent contexts from it
    with {!create_with} — what batch verification leans on. *)

val schedule : Algo.hash -> key:Bytes.t -> key_schedule

val create_with : key_schedule -> t
(** [create_with (schedule h ~key)] is equivalent to [create h ~key]
    without re-deriving the key state. *)

val update : t -> Bytes.t -> unit

val update_sub : t -> Bytes.t -> pos:int -> len:int -> unit

val finalize : t -> Bytes.t
(** The context must not be used afterwards. *)

val mac : Algo.hash -> key:Bytes.t -> Bytes.t -> Bytes.t
(** One-shot convenience equal to create/update/finalize. *)
