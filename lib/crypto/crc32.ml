(* CRC-32/ISO-HDLC (the IEEE 802.3 / zlib polynomial), reflected form:
   polynomial 0xEDB88320, init 0xFFFFFFFF, final xor 0xFFFFFFFF. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let update crc payload =
  let table = Lazy.force table in
  let crc = ref (crc lxor 0xFFFFFFFF) in
  Bytes.iter
    (fun byte ->
      crc := table.((!crc lxor Char.code byte) land 0xff) lxor (!crc lsr 8))
    payload;
  !crc lxor 0xFFFFFFFF

let digest payload = update 0 payload

let to_bytes crc =
  let b = Bytes.create 4 in
  Bytesutil.store32_be b 0 crc;
  b
