(** HMAC (RFC 2104 / FIPS 198-1), generic over any hash of this library. *)

module Make (H : Digest_intf.S) : sig
  type schedule
  (** Precomputed ipad/opad key state. Deriving one costs the key setup
      once; it can then be shared across any number of messages (it is
      never consumed). *)

  type ctx

  val schedule : key:Bytes.t -> schedule
  (** Keys longer than the hash block size are hashed first, shorter keys
      zero-padded, per the HMAC specification. *)

  val init_with : schedule -> ctx
  (** Start a MAC from a precomputed key schedule. *)

  val init : key:Bytes.t -> ctx
  (** [init ~key = init_with (schedule ~key)]. *)

  val update : ctx -> Bytes.t -> pos:int -> len:int -> unit

  val finalize : ctx -> Bytes.t
  (** Produces the [H.digest_size]-byte tag; the context is then dead,
      but its underlying key schedule stays valid — start the next
      message with {!init_with} (or {!mac_with}) instead of re-deriving
      the key. *)

  val mac : key:Bytes.t -> Bytes.t -> Bytes.t
  (** One-shot convenience. *)

  val mac_with : schedule -> Bytes.t -> Bytes.t
  (** One-shot from a precomputed key schedule. *)

  val verify : key:Bytes.t -> tag:Bytes.t -> Bytes.t -> bool
  (** Constant-time tag check. *)

  val verify_with : schedule -> tag:Bytes.t -> Bytes.t -> bool
  (** Constant-time tag check from a precomputed key schedule. *)

  val verify_many : key:Bytes.t -> (Bytes.t * Bytes.t) array -> bool array
  (** [verify_many ~key pairs] checks each [(message, tag)] pair,
      deriving the key schedule exactly once for the whole batch. Result
      order matches input order; each compare is constant-time. *)
end

module Sha256 : module type of Make (Sha256)
module Sha512 : module type of Make (Sha512)
