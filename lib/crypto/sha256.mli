(** SHA-256 (FIPS 180-4), implemented from scratch in pure OCaml. *)

include Digest_intf.S

val compress_words : int array -> int array -> Bytes.t -> int -> unit
(** [compress_words h w block pos] runs one compress over the 64-byte
    block at [pos], updating the 8-word state [h] in place with [w] as
    64-word schedule scratch. Internal plumbing for {!Sha256_multi}'s
    ragged-tail finishes — the block must be fully in bounds. *)
