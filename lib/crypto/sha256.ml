(* SHA-256 over native ints masked to 32 bits. On a 64-bit platform this is
   both simpler and faster than boxed Int32 arithmetic. *)

let name = "SHA-256"
let digest_size = 32
let block_size = 64

(* ralint: allow P2 — round-constant table, read-only after init. *)
let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array; (* 8 state words *)
  buf : Bytes.t; (* partial block *)
  mutable buf_len : int;
  mutable total : int; (* total bytes absorbed *)
  w : int array; (* message schedule scratch *)
}

let init () =
  {
    h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
        0x1f83d9ab; 0x5be0cd19;
      |];
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0;
    w = Array.make 64 0;
  }

let mask = 0xFFFFFFFF

(* Rotation trick for 64-bit hosts: with the 32-bit word duplicated into
   bits 32..62, [rotr x n] is a single logical shift of the doubled word
   ([(dup x) lsr n land mask]). Every rotation count used below is >= 2, so
   the copy of bit 31 that falls off the 63-bit OCaml int (it would sit at
   bit 63) is never part of the extracted window. *)
let dup x = x lor (x lsl 32)

(* Hot loop. bounds: indices into [w] and [k] are bounded by the loop
   structure (16-word schedule expanded to 64, both arrays 64 long), and
   every unsafe_load32_be offset pos + 4*i with i <= 15 sits inside the
   64-byte block that the caller validated (update's blocking here;
   Sha256_multi's whole-block loop bounds for the batch path).
   cross-check: Ra_crypto.Checked.sha256 keeps a straightforward
   bounds-checked implementation that test/test_crypto.ml qcheck-diffs
   against this one. *)
let compress_words h w block pos =
  for i = 0 to 15 do
    Array.unsafe_set w i (Bytesutil.unsafe_load32_be block (pos + (4 * i)))
  done;
  for i = 16 to 63 do
    let w15 = Array.unsafe_get w (i - 15) in
    let w2 = Array.unsafe_get w (i - 2) in
    let x15 = dup w15 and x2 = dup w2 in
    let s0 = ((x15 lsr 7) lxor (x15 lsr 18) lxor (w15 lsr 3)) land mask in
    let s1 = ((x2 lsr 17) lxor (x2 lsr 19) lxor (w2 lsr 10)) land mask in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1)
      land mask)
  done;
  (* The rounds run as a tail-recursive loop so the eight state words live
     in registers and the a..h rotation is pure argument renaming instead
     of eight memory writes per round. *)
  let rec rounds i a b c d e f g hh =
    if i = 64 then begin
      h.(0) <- (h.(0) + a) land mask;
      h.(1) <- (h.(1) + b) land mask;
      h.(2) <- (h.(2) + c) land mask;
      h.(3) <- (h.(3) + d) land mask;
      h.(4) <- (h.(4) + e) land mask;
      h.(5) <- (h.(5) + f) land mask;
      h.(6) <- (h.(6) + g) land mask;
      h.(7) <- (h.(7) + hh) land mask
    end
    else begin
      let ee = dup e in
      let s1 = ((ee lsr 6) lxor (ee lsr 11) lxor (ee lsr 25)) land mask in
      let ch = (e land f) lxor (lnot e land g) in
      let temp1 =
        (hh + s1 + ch + Array.unsafe_get k i + Array.unsafe_get w i) land mask
      in
      let aa = dup a in
      let s0 = ((aa lsr 2) lxor (aa lsr 13) lxor (aa lsr 22)) land mask in
      let maj = (a land b) lxor (a land c) lxor (b land c) in
      rounds (i + 1)
        ((temp1 + s0 + maj) land mask)
        a b c
        ((d + temp1) land mask)
        e f g
    end
  in
  rounds 0 h.(0) h.(1) h.(2) h.(3) h.(4) h.(5) h.(6) h.(7)

let compress ctx block pos = compress_words ctx.h ctx.w block pos

let copy ctx =
  {
    h = Array.copy ctx.h;
    buf = Bytes.copy ctx.buf;
    buf_len = ctx.buf_len;
    total = ctx.total;
    w = Array.make 64 0; (* scratch, no state *)
  }

let update ctx src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Sha256.update: slice out of bounds";
  ctx.total <- ctx.total + len;
  let offset = ref pos and remaining = ref len in
  (* Fill a partial buffered block first. *)
  if ctx.buf_len > 0 then begin
    let take = min !remaining (block_size - ctx.buf_len) in
    Bytes.blit src !offset ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    offset := !offset + take;
    remaining := !remaining - take;
    if ctx.buf_len = block_size then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= block_size do
    compress ctx src !offset;
    offset := !offset + block_size;
    remaining := !remaining - block_size
  done;
  if !remaining > 0 then begin
    Bytes.blit src !offset ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let finalize ctx =
  let bit_len = Int64.of_int (8 * ctx.total) in
  (* Padding: 0x80, zeros, 64-bit big-endian length. *)
  let pad_len =
    let rem = (ctx.total + 1 + 8) mod block_size in
    if rem = 0 then 1 else 1 + (block_size - rem)
  in
  let tail = Bytes.make (pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  Bytesutil.store64_be tail pad_len bit_len;
  (* Bypass the total counter: feed padding through update's buffering. *)
  let saved_total = ctx.total in
  update ctx tail ~pos:0 ~len:(Bytes.length tail);
  ctx.total <- saved_total;
  assert (ctx.buf_len = 0);
  let out = Bytes.create digest_size in
  for i = 0 to 7 do
    Bytesutil.store32_be out (4 * i) ctx.h.(i)
  done;
  out

let digest b =
  let ctx = init () in
  update ctx b ~pos:0 ~len:(Bytes.length b);
  finalize ctx

let hex_digest s = Bytesutil.to_hex (digest (Bytes.of_string s))
