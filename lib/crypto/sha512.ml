let name = "SHA-512"
let digest_size = 64
let block_size = 128

(* ralint: allow P2 — round-constant table, read-only after init. *)
let k =
  [|
    0x428a2f98d728ae22L; 0x7137449123ef65cdL; 0xb5c0fbcfec4d3b2fL;
    0xe9b5dba58189dbbcL; 0x3956c25bf348b538L; 0x59f111f1b605d019L;
    0x923f82a4af194f9bL; 0xab1c5ed5da6d8118L; 0xd807aa98a3030242L;
    0x12835b0145706fbeL; 0x243185be4ee4b28cL; 0x550c7dc3d5ffb4e2L;
    0x72be5d74f27b896fL; 0x80deb1fe3b1696b1L; 0x9bdc06a725c71235L;
    0xc19bf174cf692694L; 0xe49b69c19ef14ad2L; 0xefbe4786384f25e3L;
    0x0fc19dc68b8cd5b5L; 0x240ca1cc77ac9c65L; 0x2de92c6f592b0275L;
    0x4a7484aa6ea6e483L; 0x5cb0a9dcbd41fbd4L; 0x76f988da831153b5L;
    0x983e5152ee66dfabL; 0xa831c66d2db43210L; 0xb00327c898fb213fL;
    0xbf597fc7beef0ee4L; 0xc6e00bf33da88fc2L; 0xd5a79147930aa725L;
    0x06ca6351e003826fL; 0x142929670a0e6e70L; 0x27b70a8546d22ffcL;
    0x2e1b21385c26c926L; 0x4d2c6dfc5ac42aedL; 0x53380d139d95b3dfL;
    0x650a73548baf63deL; 0x766a0abb3c77b2a8L; 0x81c2c92e47edaee6L;
    0x92722c851482353bL; 0xa2bfe8a14cf10364L; 0xa81a664bbc423001L;
    0xc24b8b70d0f89791L; 0xc76c51a30654be30L; 0xd192e819d6ef5218L;
    0xd69906245565a910L; 0xf40e35855771202aL; 0x106aa07032bbd1b8L;
    0x19a4c116b8d2d0c8L; 0x1e376c085141ab53L; 0x2748774cdf8eeb99L;
    0x34b0bcb5e19b48a8L; 0x391c0cb3c5c95a63L; 0x4ed8aa4ae3418acbL;
    0x5b9cca4f7763e373L; 0x682e6ff3d6b2b8a3L; 0x748f82ee5defb2fcL;
    0x78a5636f43172f60L; 0x84c87814a1f0ab72L; 0x8cc702081a6439ecL;
    0x90befffa23631e28L; 0xa4506cebde82bde9L; 0xbef9a3f7b2c67915L;
    0xc67178f2e372532bL; 0xca273eceea26619cL; 0xd186b8c721c0c207L;
    0xeada7dd6cde0eb1eL; 0xf57d4f7fee6ed178L; 0x06f067aa72176fbaL;
    0x0a637dc5a2c898a6L; 0x113f9804bef90daeL; 0x1b710b35131c471bL;
    0x28db77f523047d84L; 0x32caab7b40c72493L; 0x3c9ebe0a15c9bebcL;
    0x431d67c49c100d4cL; 0x4cc5d4becb3e42b6L; 0x597f299cfc657e2aL;
    0x5fcb6fab3ad6faecL; 0x6c44198c4a475817L;
  |]

type ctx = {
  h : int64 array;
  buf : Bytes.t;
  mutable buf_len : int;
  mutable total : int;
  w : int64 array;
}

let init () =
  {
    h =
      [|
        0x6a09e667f3bcc908L; 0xbb67ae8584caa73bL; 0x3c6ef372fe94f82bL;
        0xa54ff53a5f1d36f1L; 0x510e527fade682d1L; 0x9b05688c2b3e6c1fL;
        0x1f83d9abfb41bd6bL; 0x5be0cd19137e2179L;
      |];
    buf = Bytes.create block_size;
    buf_len = 0;
    total = 0;
    w = Array.make 80 0L;
  }

let copy ctx =
  {
    h = Array.copy ctx.h;
    buf = Bytes.copy ctx.buf;
    buf_len = ctx.buf_len;
    total = ctx.total;
    w = Array.make 80 0L; (* scratch, no state *)
  }

let rotr x n =
  Int64.logor (Int64.shift_right_logical x n) (Int64.shift_left x (64 - n))

(* Hot loop. bounds: all [w]/[k] indices are bounded by the loop structure
   (16-word schedule expanded to 80, both arrays 80 long), and every
   unsafe_load64_be offset pos + 8*i with i <= 15 sits inside the 128-byte
   block that update's blocking already validated.
   cross-check: Ra_crypto.Checked.sha512 keeps the bounds-checked
   reference that test/test_crypto.ml qcheck-diffs against this one. *)
let compress ctx block pos =
  let open Int64 in
  let w = ctx.w in
  for i = 0 to 15 do
    Array.unsafe_set w i (Bytesutil.unsafe_load64_be block (pos + (8 * i)))
  done;
  for i = 16 to 79 do
    let x = Array.unsafe_get w (i - 15) in
    let s0 = logxor (logxor (rotr x 1) (rotr x 8)) (shift_right_logical x 7) in
    let y = Array.unsafe_get w (i - 2) in
    let s1 = logxor (logxor (rotr y 19) (rotr y 61)) (shift_right_logical y 6) in
    Array.unsafe_set w i
      (add
         (add (Array.unsafe_get w (i - 16)) s0)
         (add (Array.unsafe_get w (i - 7)) s1))
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 79 do
    let e' = !e and a' = !a in
    let s1 = logxor (logxor (rotr e' 14) (rotr e' 18)) (rotr e' 41) in
    let ch = logxor (logand e' !f) (logand (lognot e') !g) in
    let temp1 =
      add (add !hh s1)
        (add ch (add (Array.unsafe_get k i) (Array.unsafe_get w i)))
    in
    let s0 = logxor (logxor (rotr a' 28) (rotr a' 34)) (rotr a' 39) in
    let maj = logxor (logxor (logand a' !b) (logand a' !c)) (logand !b !c) in
    let temp2 = add s0 maj in
    hh := !g;
    g := !f;
    f := e';
    e := add !d temp1;
    d := !c;
    c := !b;
    b := a';
    a := add temp1 temp2
  done;
  h.(0) <- add h.(0) !a;
  h.(1) <- add h.(1) !b;
  h.(2) <- add h.(2) !c;
  h.(3) <- add h.(3) !d;
  h.(4) <- add h.(4) !e;
  h.(5) <- add h.(5) !f;
  h.(6) <- add h.(6) !g;
  h.(7) <- add h.(7) !hh

let update ctx src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length src then
    invalid_arg "Sha512.update: slice out of bounds";
  ctx.total <- ctx.total + len;
  let offset = ref pos and remaining = ref len in
  if ctx.buf_len > 0 then begin
    let take = min !remaining (block_size - ctx.buf_len) in
    Bytes.blit src !offset ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    offset := !offset + take;
    remaining := !remaining - take;
    if ctx.buf_len = block_size then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= block_size do
    compress ctx src !offset;
    offset := !offset + block_size;
    remaining := !remaining - block_size
  done;
  if !remaining > 0 then begin
    Bytes.blit src !offset ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let finalize ctx =
  let bit_len = Int64.of_int (8 * ctx.total) in
  (* 128-bit length field; inputs here never exceed 2^61 bytes so the high
     word is always zero. *)
  let pad_len =
    let rem = (ctx.total + 1 + 16) mod block_size in
    if rem = 0 then 1 else 1 + (block_size - rem)
  in
  let tail = Bytes.make (pad_len + 16) '\000' in
  Bytes.set tail 0 '\x80';
  Bytesutil.store64_be tail (pad_len + 8) bit_len;
  let saved_total = ctx.total in
  update ctx tail ~pos:0 ~len:(Bytes.length tail);
  ctx.total <- saved_total;
  assert (ctx.buf_len = 0);
  let out = Bytes.create digest_size in
  for i = 0 to 7 do
    Bytesutil.store64_be out (8 * i) ctx.h.(i)
  done;
  out

let digest b =
  let ctx = init () in
  update ctx b ~pos:0 ~len:(Bytes.length b);
  finalize ctx

let hex_digest s = Bytesutil.to_hex (digest (Bytes.of_string s))
