(* Structure-of-arrays binary min-heap ordered by (key, seq).

   Unlike {!Heap}, pushing allocates no per-entry record and the minimum is
   read through [min_key]/[min_seq]/[min_value] + [drop_min] instead of an
   option-wrapped tuple, so a full push/pop cycle on a warm queue allocates
   nothing. Keys and sequence numbers live in unboxed [int array]s; values
   in a parallel ['a array]. A dropped slot keeps its last value until it is
   overwritten, so values must tolerate being referenced past their pop.

   cross-check: {!Heap} is the bounds-checked reference; test/test_sim.ml
   qcheck-diffs full push/pop schedules between the two (stable-sort
   equivalence property). *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
}

let create () = { keys = [||]; seqs = [||]; vals = [||]; size = 0 }

let length q = q.size

let is_empty q = q.size = 0

let grow q value =
  let cap = Array.length q.keys in
  if cap = 0 then begin
    q.keys <- Array.make 8 0;
    q.seqs <- Array.make 8 0;
    q.vals <- Array.make 8 value
  end
  else begin
    let fresh_cap = 2 * cap in
    let keys = Array.make fresh_cap 0 in
    let seqs = Array.make fresh_cap 0 in
    let vals = Array.make fresh_cap value in
    Array.blit q.keys 0 keys 0 q.size;
    Array.blit q.seqs 0 seqs 0 q.size;
    Array.blit q.vals 0 vals 0 q.size;
    q.keys <- keys;
    q.seqs <- seqs;
    q.vals <- vals
  end

(* (key, seq) lexicographic order; seq breaks ties FIFO.

   Both sifts are hole-based: the moving entry is held in registers while
   the hole walks the tree, so each level costs one 3-array store instead
   of a 3-array swap — about half the memory traffic of the classic
   swap-based version, and the engine pop path is exactly this. *)

(* bounds: callers pass heap slots already inside [0, size), and size never
   exceeds the capacity shared by all three parallel arrays. *)
let move q ~from into =
  Array.unsafe_set q.keys into (Array.unsafe_get q.keys from);
  Array.unsafe_set q.seqs into (Array.unsafe_get q.seqs from);
  Array.unsafe_set q.vals into (Array.unsafe_get q.vals from)

(* bounds: [i] is a hole index returned by rise/sink, both of which stay
   within [0, size) <= capacity. *)
let place q ~key ~seq value i =
  Array.unsafe_set q.keys i key;
  Array.unsafe_set q.seqs i seq;
  Array.unsafe_set q.vals i value

(* Walk the hole at [i] up while (key, seq) beats the parent.
   bounds: parent = (i-1)/2 < i and the initial hole is < size. *)
let rec rise q ~key ~seq i =
  if i = 0 then i
  else begin
    let parent = (i - 1) / 2 in
    let pk = Array.unsafe_get q.keys parent in
    if key < pk || (key = pk && seq < Array.unsafe_get q.seqs parent) then begin
      move q ~from:parent i;
      rise q ~key ~seq parent
    end
    else i
  end

(* Walk the hole at [i] down while a child beats (key, seq).
   bounds: children are only read after the l >= size / r < size guards. *)
let rec sink q ~key ~seq i =
  let l = (2 * i) + 1 in
  if l >= q.size then i
  else begin
    let r = l + 1 in
    let c =
      if r < q.size then begin
        let lk = Array.unsafe_get q.keys l and rk = Array.unsafe_get q.keys r in
        if
          rk < lk
          || (rk = lk && Array.unsafe_get q.seqs r < Array.unsafe_get q.seqs l)
        then r
        else l
      end
      else l
    in
    let ck = Array.unsafe_get q.keys c in
    if ck < key || (ck = key && Array.unsafe_get q.seqs c < seq) then begin
      move q ~from:c i;
      sink q ~key ~seq c
    end
    else i
  end

let push q ~key ~seq value =
  if q.size >= Array.length q.keys then grow q value;
  let i = q.size in
  q.size <- i + 1;
  place q ~key ~seq value (rise q ~key ~seq i)

(* bounds: the emptiness check guarantees slot 0 is live. *)
let min_key q =
  if q.size = 0 then invalid_arg "Eventq.min_key: empty";
  Array.unsafe_get q.keys 0

(* bounds: the emptiness check guarantees slot 0 is live. *)
let min_seq q =
  if q.size = 0 then invalid_arg "Eventq.min_seq: empty";
  Array.unsafe_get q.seqs 0

(* bounds: the emptiness check guarantees slot 0 is live. *)
let min_value q =
  if q.size = 0 then invalid_arg "Eventq.min_value: empty";
  Array.unsafe_get q.vals 0

(* bounds: the emptiness check guarantees [last] = size - 1 is a live
   slot; the sifted hole stays within the shrunken heap. *)
let drop_min q =
  if q.size = 0 then invalid_arg "Eventq.drop_min: empty";
  let last = q.size - 1 in
  q.size <- last;
  if last > 0 then begin
    let key = Array.unsafe_get q.keys last in
    let seq = Array.unsafe_get q.seqs last in
    let value = Array.unsafe_get q.vals last in
    place q ~key ~seq value (sink q ~key ~seq 0)
  end

let clear q = q.size <- 0
