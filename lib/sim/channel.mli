(** A point-to-point message channel with delay, jitter, loss, duplication,
    payload corruption, reordering and scheduled partitions — the network
    between verifier and prover.

    Faults are applied to each {!send} in a fixed, documented order so runs
    are reproducible from the engine seed:

    + {b partition} — if the send instant falls inside a configured
      partition window the message is dropped outright;
    + {b loss} — otherwise the message is dropped with probability [loss];
    + {b duplicate} — a surviving message spawns a second copy with
      probability [duplicate];
    + {b corrupt} — each copy is independently mutated with probability
      [corrupt] (one random bit-flip when using {!flip_random_bit});
    + {b delay} — each copy is scheduled at [delay + U[0,jitter]], plus,
      with probability [reorder], a displacement uniform in
      [(0, 4*delay]] that lets it overtake or trail neighbouring sends. *)

type config = {
  delay : Timebase.t;  (** base one-way latency *)
  jitter : Timebase.t;  (** extra uniform latency in [\[0, jitter\]] *)
  loss : float;  (** independent per-message loss probability *)
  duplicate : float;  (** probability a delivered message arrives twice *)
  corrupt : float;
      (** per-copy probability the payload is mutated in flight; requires a
          [~corrupt] mutator at {!create} when positive *)
  reorder : float;
      (** per-copy probability of an extra displacement uniform in
          [(0, 4*delay]], which reorders it against neighbouring sends *)
  partitions : (Timebase.t * Timebase.t) list;
      (** [\[start, stop)] windows of total outage: every send inside a
          window is dropped (100% loss), regardless of [loss] *)
}

val ideal : config
(** 40 ms, no jitter, no loss, no duplication, no corruption, no
    reordering, no partitions. *)

type 'a t

val create :
  Engine.t -> config -> ?corrupt:(Prng.t -> 'a -> 'a) -> deliver:('a -> unit) -> unit -> 'a t
(** [deliver] runs at the (jittered) arrival time of each surviving copy.
    [corrupt] is the in-flight mutator applied to corrupted copies; it must
    return a fresh value (never mutate the original — the sender may hold
    it). Raises [Invalid_argument] if [config.corrupt > 0] and no mutator is
    given, or any probability or partition window is malformed. *)

val send : 'a t -> 'a -> unit
(** Queue a message now. All fault decisions are drawn per send from the
    engine's random stream, in the order documented above, so runs are
    reproducible. *)

val flip_random_bit : Prng.t -> Bytes.t -> Bytes.t
(** A fresh copy with one uniformly chosen bit flipped — the canonical
    [~corrupt] mutator for byte-frame channels. Empty payloads are returned
    unchanged. *)

val sent : 'a t -> int
(** Messages handed to {!send}. *)

val delivered : 'a t -> int
(** Copies actually delivered (duplicates count twice). *)

val corrupted : 'a t -> int
(** Copies mutated in flight (all of them still delivered). *)

val reordered : 'a t -> int
(** Copies that received a reordering displacement. *)

val partition_drops : 'a t -> int
(** Sends swallowed by a partition window. *)
