type event_id = int

(* The heap payload carries its own cancellation flag; [tracked] indexes the
   queued-and-live events by id. An entry leaves [tracked] exactly when it
   is cancelled or popped, so the table never outgrows the queue — cancelling
   an id that already fired (or was never issued) is a no-op rather than a
   permanent tombstone and a corrupted [live] counter. *)
type t = {
  mutable clock : Timebase.t;
  mutable next_seq : int;
  mutable live : int;
  queue : cell Heap.t;
  tracked : (event_id, cell) Hashtbl.t;
  prng : Prng.t;
  trace : Trace.t;
}

and cell = { callback : t -> unit; mutable active : bool }

let create ?(seed = 42) () =
  {
    clock = Timebase.zero;
    next_seq = 0;
    live = 0;
    queue = Heap.create ();
    tracked = Hashtbl.create 64;
    prng = Prng.create ~seed;
    trace = Trace.create ();
  }

let now t = t.clock

let prng t = t.prng

let trace t = t.trace

let record t ~tag detail = Trace.record t.trace ~time:t.clock ~tag detail

let recordf t ~tag fmt = Trace.recordf t.trace ~time:t.clock ~tag fmt

let schedule t ~at callback =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %d is before now %d" at t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.live <- t.live + 1;
  let cell = { callback; active = true } in
  Hashtbl.replace t.tracked seq cell;
  Heap.push t.queue ~key:at ~seq cell;
  seq

let schedule_after t ~delay callback =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(Timebase.add t.clock delay) callback

let cancel t id =
  match Hashtbl.find_opt t.tracked id with
  | None -> () (* already fired, already cancelled, or never issued *)
  | Some cell ->
    cell.active <- false;
    Hashtbl.remove t.tracked id;
    t.live <- t.live - 1

let pending t = t.live

let tracked_events t = Hashtbl.length t.tracked

(* Pop until a non-cancelled event is found. *)
let rec pop_live t =
  match Heap.pop t.queue with
  | None -> None
  | Some (time, seq, cell) ->
    if cell.active then begin
      Hashtbl.remove t.tracked seq;
      Some (time, cell.callback)
    end
    else pop_live t

let step t =
  match pop_live t with
  | None -> false
  | Some (time, callback) ->
    t.clock <- time;
    t.live <- t.live - 1;
    callback t;
    true

let rec peek_live t =
  match Heap.peek t.queue with
  | None -> None
  | Some (time, _, cell) ->
    if cell.active then Some time
    else begin
      ignore (Heap.pop t.queue);
      peek_live t
    end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
    let continue = ref true in
    while !continue do
      match peek_live t with
      | Some time when time <= horizon -> ignore (step t)
      | Some _ | None -> continue := false
    done;
    if t.clock < horizon then t.clock <- horizon
