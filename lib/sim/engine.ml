(* The cancellation handle IS the queued cell: cancelling flips its [active]
   flag in place and popping flips it back off, so there is no id-to-event
   table to maintain (the old Hashtbl dominated the hot path) and a cancel
   after the event fired is naturally a no-op. [live] counts queued active
   events; a cell leaves the live count exactly once, on cancel or on pop. *)
type event_id = { callback : t -> unit; mutable active : bool }

and t = {
  mutable clock : Timebase.t;
  mutable next_seq : int;
  mutable live : int;
  queue : event_id Eventq.t;
  prng : Prng.t;
  trace : Trace.t;
}

let create ?(seed = 42) () =
  {
    clock = Timebase.zero;
    next_seq = 0;
    live = 0;
    queue = Eventq.create ();
    prng = Prng.create ~seed;
    trace = Trace.create ();
  }

let now t = t.clock

let prng t = t.prng

let trace t = t.trace

let record t ~tag detail = Trace.record t.trace ~time:t.clock ~tag detail

let recordf t ~tag fmt = Trace.recordf t.trace ~time:t.clock ~tag fmt

let schedule t ~at callback =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %d is before now %d" at t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.live <- t.live + 1;
  let cell = { callback; active = true } in
  Eventq.push t.queue ~key:at ~seq cell;
  cell

let schedule_after t ~delay callback =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(Timebase.add t.clock delay) callback

let cancel t cell =
  if cell.active then begin
    cell.active <- false;
    t.live <- t.live - 1
  end

let pending t = t.live

let tracked_events t = t.live

(* Drop cancelled entries off the top of the queue. After this either the
   queue is empty or its minimum is live. *)
let rec settle t =
  if not (Eventq.is_empty t.queue) then
    if not (Eventq.min_value t.queue).active then begin
      Eventq.drop_min t.queue;
      settle t
    end

let step t =
  settle t;
  if Eventq.is_empty t.queue then false
  else begin
    let cell = Eventq.min_value t.queue in
    t.clock <- Eventq.min_key t.queue;
    Eventq.drop_min t.queue;
    cell.active <- false;
    t.live <- t.live - 1;
    cell.callback t;
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
    let continue = ref true in
    while !continue do
      settle t;
      if Eventq.is_empty t.queue || Eventq.min_key t.queue > horizon then
        continue := false
      else ignore (step t)
    done;
    if t.clock < horizon then t.clock <- horizon
