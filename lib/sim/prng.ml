type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used only to expand a seed into the xoshiro state, as
   recommended by the xoshiro authors. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  let seed = Int64.to_int (bits64 g) in
  create ~seed

(* Rejection sampling over the top bits keeps the distribution exactly
   uniform for any bound, not just powers of two. *)
let int g ~bound =
  assert (bound > 0);
  let mask = Int64.of_int max_int in
  let rec loop () =
    let r = Int64.to_int (Int64.logand (bits64 g) mask) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then loop () else v
  in
  if bound land (bound - 1) = 0 then
    Int64.to_int (Int64.logand (bits64 g) (Int64.of_int (bound - 1)))
  else loop ()

let float g =
  let bits = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float bits *. 0x1.0p-53

let bool g = Int64.logand (bits64 g) 1L = 1L

let bernoulli g ~p =
  assert (p >= 0. && p <= 1.);
  float g < p

let exponential g ~mean =
  let u = 1.0 -. float g in
  -.mean *. log u

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place g a;
  a

(* bounds: b has exactly n bytes and i < n; int ~bound:256 yields a value
   in [0, 256) so unsafe_chr is total.
   cross-check: determinism and distribution of the generator are pinned
   by the fixed-seed stream tests in test/test_sim.ml. *)
let bytes g n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int g ~bound:256))
  done;
  b

let state_bytes = 32

let to_bytes g =
  let b = Bytes.create state_bytes in
  Bytes.set_int64_be b 0 g.s0;
  Bytes.set_int64_be b 8 g.s1;
  Bytes.set_int64_be b 16 g.s2;
  Bytes.set_int64_be b 24 g.s3;
  b

let set_bytes g b =
  if Bytes.length b <> state_bytes then invalid_arg "Prng.set_bytes: need 32 bytes";
  g.s0 <- Bytes.get_int64_be b 0;
  g.s1 <- Bytes.get_int64_be b 8;
  g.s2 <- Bytes.get_int64_be b 16;
  g.s3 <- Bytes.get_int64_be b 24
