(** Allocation-free binary min-heap ordered by [(key, seq)].

    Drop-in ordering semantics of {!Heap} (stable FIFO tie-break on [seq])
    with a structure-of-arrays layout: [push] on a warm queue and the
    [min_key]/[min_seq]/[min_value] + [drop_min] pop protocol allocate
    nothing, which is what the simulator hot loop wants.

    The min-accessors raise [Invalid_argument] on an empty queue — guard
    with {!is_empty}. Popped value slots are only cleared when overwritten
    by a later push, so values may be retained by the queue slightly past
    their pop; that is fine for heap-allocated callbacks/cells and for any
    value without a disposal obligation. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> key:int -> seq:int -> 'a -> unit

val min_key : 'a t -> int
(** Key of the minimum entry. Raises on empty. *)

val min_seq : 'a t -> int
(** Sequence number of the minimum entry. Raises on empty. *)

val min_value : 'a t -> 'a
(** Value of the minimum entry, without removing it. Raises on empty. *)

val drop_min : 'a t -> unit
(** Remove the minimum entry. Raises on empty. *)

val clear : 'a t -> unit
