(** Deterministic pseudo-random number generation for simulations.

    Implements SplitMix64 (for seeding) and xoshiro256** (for the stream),
    both from scratch, so that every simulation in this repository is
    reproducible from a single integer seed and independent of the OCaml
    stdlib [Random] implementation. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator whose whole stream is a pure function
    of [seed]. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** [split g] draws from [g] to seed a fresh, statistically independent
    generator. Useful to give each simulated component its own stream. *)

val bits64 : t -> int64
(** Next 64 raw bits. *)

val int : t -> bound:int -> int
(** [int g ~bound] is uniform in [\[0, bound)]. [bound] must be positive.
    Uses rejection sampling, so the distribution is exactly uniform. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53 bits of precision. *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [bernoulli g ~p] is true with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation g n] is a uniformly random permutation of [0 .. n-1]. *)

val bytes : t -> int -> Bytes.t
(** [bytes g n] is [n] uniformly random bytes. *)

val state_bytes : int
(** Size of the serialized state: 32 bytes. *)

val to_bytes : t -> Bytes.t
(** The full generator state, big-endian. With {!set_bytes} this lets a
    recovered supervisor resume a stream exactly where a crashed one
    left off. *)

val set_bytes : t -> Bytes.t -> unit
(** Overwrite the state in place from a {!to_bytes} image. Raises
    [Invalid_argument] on a wrong-sized buffer. *)
