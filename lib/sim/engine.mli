(** Deterministic discrete-event simulation kernel.

    Events are closures scheduled at virtual times; ties execute in
    scheduling order. The engine owns a {!Prng.t} and a {!Trace.t} so that
    a whole experiment is reproducible from one seed. *)

type t

type event_id
(** Handle for cancellation. The handle is the queued event itself, so
    cancellation is O(1) flag flip with no side table. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] starts at time 0 with an empty queue. Default seed 42. *)

val now : t -> Timebase.t

val prng : t -> Prng.t
(** The engine's root random stream. Components that need independent
    streams should {!Prng.split} it once at setup. *)

val trace : t -> Trace.t

val record : t -> tag:string -> string -> unit
(** Record a trace entry at the current virtual time. *)

val recordf : t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val schedule : t -> at:Timebase.t -> (t -> unit) -> event_id
(** Schedule a callback at absolute time [at]. [at] must not be in the
    past; raises [Invalid_argument] otherwise. *)

val schedule_after : t -> delay:Timebase.t -> (t -> unit) -> event_id
(** Schedule relative to {!now}. [delay] must be non-negative. *)

val cancel : t -> event_id -> unit
(** Cancelled events are skipped when their time comes. Idempotent, and a
    no-op on events that already fired. *)

val pending : t -> int
(** Number of live (non-cancelled) queued events. *)

val tracked_events : t -> int
(** Number of live tracked events — equals {!pending}, and in particular
    stays bounded by the queue length no matter how many events are
    cancelled over the engine's lifetime (diagnostic for tests; there is
    no longer a side table, so this is simply the live count). *)

val step : t -> bool
(** Execute the next event. Returns [false] if the queue was empty. *)

val run : ?until:Timebase.t -> t -> unit
(** Execute events until the queue is empty, or, if [until] is given, until
    the next event would occur strictly after [until]; in that case time is
    advanced to [until] and remaining events stay queued. *)
