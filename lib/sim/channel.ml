type config = {
  delay : Timebase.t;
  jitter : Timebase.t;
  loss : float;
  duplicate : float;
  corrupt : float;
  reorder : float;
  partitions : (Timebase.t * Timebase.t) list;
}

let ideal =
  {
    delay = Timebase.ms 40;
    jitter = 0;
    loss = 0.;
    duplicate = 0.;
    corrupt = 0.;
    reorder = 0.;
    partitions = [];
  }

type 'a t = {
  engine : Engine.t;
  config : config;
  deliver : 'a -> unit;
  mutate : (Prng.t -> 'a -> 'a) option;
  rng : Prng.t;
  mutable sent : int;
  mutable delivered : int;
  mutable corrupted : int;
  mutable reordered : int;
  mutable partition_drops : int;
}

let check_probability name p =
  if p < 0. || p > 1. then invalid_arg ("Channel: bad " ^ name)

let create engine config ?corrupt ~deliver () =
  check_probability "loss" config.loss;
  check_probability "duplicate" config.duplicate;
  check_probability "corrupt" config.corrupt;
  check_probability "reorder" config.reorder;
  if config.corrupt > 0. && corrupt = None then
    invalid_arg "Channel: corrupt > 0 requires a ~corrupt mutator";
  List.iter
    (fun (a, b) -> if a < 0 || b < a then invalid_arg "Channel: bad partition window")
    config.partitions;
  {
    engine;
    config;
    deliver;
    mutate = corrupt;
    rng = Prng.split (Engine.prng engine);
    sent = 0;
    delivered = 0;
    corrupted = 0;
    reordered = 0;
    partition_drops = 0;
  }

let partitioned t now =
  List.exists (fun (a, b) -> now >= a && now < b) t.config.partitions

(* One surviving copy: corrupt first (payload decided when the frame leaves
   the radio), then latency = base + jitter + an optional reordering
   displacement of up to 4x the base delay, enough to land after frames sent
   later. *)
let deliver_copy t message =
  let message, hit =
    if t.config.corrupt > 0. && Prng.bernoulli t.rng ~p:t.config.corrupt then
      match t.mutate with
      | Some f -> (f t.rng message, true)
      | None -> (message, false)
    else (message, false)
  in
  if hit then t.corrupted <- t.corrupted + 1;
  let displacement =
    if t.config.reorder > 0. && Prng.bernoulli t.rng ~p:t.config.reorder then begin
      t.reordered <- t.reordered + 1;
      1 + Prng.int t.rng ~bound:(4 * max 1 t.config.delay)
    end
    else 0
  in
  let latency =
    Timebase.add
      (Timebase.add t.config.delay
         (if t.config.jitter > 0 then Prng.int t.rng ~bound:(t.config.jitter + 1) else 0))
      displacement
  in
  ignore
    (Engine.schedule_after t.engine ~delay:latency (fun _ ->
         t.delivered <- t.delivered + 1;
         t.deliver message))

let send t message =
  t.sent <- t.sent + 1;
  if partitioned t (Engine.now t.engine) then
    t.partition_drops <- t.partition_drops + 1
  else if not (Prng.bernoulli t.rng ~p:t.config.loss) then begin
    deliver_copy t message;
    if Prng.bernoulli t.rng ~p:t.config.duplicate then deliver_copy t message
  end

let flip_random_bit rng payload =
  let n = Bytes.length payload in
  if n = 0 then payload
  else begin
    let copy = Bytes.copy payload in
    let bit = Prng.int rng ~bound:(n * 8) in
    let byte = bit / 8 in
    Bytes.set copy byte
      (Char.chr (Char.code (Bytes.get copy byte) lxor (1 lsl (bit mod 8))));
    copy
  end

let sent t = t.sent

let delivered t = t.delivered

let corrupted t = t.corrupted

let reordered t = t.reordered

let partition_drops t = t.partition_drops
