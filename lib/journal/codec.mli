(** Deterministic binary encoding shared by journal records and state
    snapshots.

    Integers are 8-byte big-endian, strings and byte blobs are
    length-prefixed, so every encoder output is a pure function of the
    values written — byte-identical across hosts and runs, which is what
    lets replay compare re-emitted records against the recorded stream
    with [Bytes.equal]. *)

exception Corrupt of string
(** Raised by the reader on truncation or malformed framing. Recovery
    code catches it and degrades to an [Error] result. *)

type writer

val writer : unit -> writer
val contents : writer -> Bytes.t

val u8 : writer -> int -> unit
val i64 : writer -> int -> unit
val i64raw : writer -> int64 -> unit
(** Raw 64 bits, for float payloads stored via [Int64.bits_of_float]. *)

val str : writer -> string -> unit
val bytes : writer -> Bytes.t -> unit

type reader

val reader : Bytes.t -> reader
val read_u8 : reader -> int
val read_i64 : reader -> int
val read_i64raw : reader -> int64
val read_str : reader -> string
val read_bytes : reader -> Bytes.t
val at_end : reader -> bool

val expect_end : reader -> unit
(** Raises {!Corrupt} when unread bytes remain — decodes must consume
    their input exactly. *)

val fail : string -> 'a
(** Raise {!Corrupt} from a decoder (e.g. a failed semantic check). *)
