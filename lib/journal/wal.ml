open Ra_crypto

let header_len = 10 (* magic 2 + seq 4 + len 4 *)

let max_payload = 1 lsl 30

let encode ~seq payload =
  let n = Bytes.length payload in
  if n > max_payload then invalid_arg "Wal.encode: payload too large";
  let b = Bytes.create (header_len + n + 4) in
  Bytes.set b 0 'R';
  Bytes.set b 1 'J';
  Bytesutil.store32_be b 2 seq;
  Bytesutil.store32_be b 6 n;
  Bytes.blit payload 0 b header_len n;
  let crc = Crc32.digest (Bytes.sub b 0 (header_len + n)) in
  Bytesutil.store32_be b (header_len + n) crc;
  b

type scan = {
  records : Bytes.t list;
  offsets : int array;
  good_bytes : int;
  damage : string option;
}

let scan ?(first_seq = 1) buf =
  let len = Bytes.length buf in
  let records = ref [] in
  let offsets = ref [] in
  let pos = ref 0 in
  let seq = ref first_seq in
  let damage = ref None in
  let stop msg = damage := Some msg in
  while !damage = None && !pos < len do
    let p = !pos in
    if len - p < header_len + 4 then
      stop (Printf.sprintf "torn record header at offset %d" p)
    else if Bytes.get buf p <> 'R' || Bytes.get buf (p + 1) <> 'J' then
      stop (Printf.sprintf "bad magic at offset %d" p)
    else begin
      let rseq = Bytesutil.load32_be buf (p + 2) in
      let n = Bytesutil.load32_be buf (p + 6) in
      if n > max_payload then
        stop (Printf.sprintf "implausible record length %d at offset %d" n p)
      else if len - p < header_len + n + 4 then
        stop (Printf.sprintf "torn record body at offset %d" p)
      else begin
        let crc = Crc32.digest (Bytes.sub buf p (header_len + n)) in
        let stored = Bytesutil.load32_be buf (p + header_len + n) in
        if crc <> stored then
          stop (Printf.sprintf "CRC mismatch at offset %d" p)
        else if rseq <> !seq land 0xffffffff then
          stop
            (Printf.sprintf
               "sequence break at offset %d: expected %d, found %d \
                (duplicated or reordered tail)"
               p !seq rseq)
        else begin
          records := Bytes.sub buf (p + header_len) n :: !records;
          pos := p + header_len + n + 4;
          offsets := !pos :: !offsets;
          incr seq
        end
      end
    end
  done;
  {
    records = List.rev !records;
    offsets = Array.of_list (List.rev !offsets);
    good_bytes = !pos;
    damage = !damage;
  }
