type value = I of int | S of string | B of Bytes.t

type t = { tag : string; fields : (string * value) list }

let make tag fields = { tag; fields }

let max_fields = 4096

let encode e =
  let w = Codec.writer () in
  Codec.str w e.tag;
  Codec.i64 w (List.length e.fields);
  List.iter
    (fun (k, v) ->
      Codec.str w k;
      match v with
      | I n ->
          Codec.u8 w 0;
          Codec.i64 w n
      | S s ->
          Codec.u8 w 1;
          Codec.str w s
      | B b ->
          Codec.u8 w 2;
          Codec.bytes w b)
    e.fields;
  Codec.contents w

let decode buf =
  match
    let r = Codec.reader buf in
    let tag = Codec.read_str r in
    let n = Codec.read_i64 r in
    if n < 0 || n > max_fields then Codec.fail "implausible field count";
    let fields =
      List.init n (fun _ ->
          let k = Codec.read_str r in
          let v =
            match Codec.read_u8 r with
            | 0 -> I (Codec.read_i64 r)
            | 1 -> S (Codec.read_str r)
            | 2 -> B (Codec.read_bytes r)
            | t -> Codec.fail (Printf.sprintf "unknown field type %d" t)
          in
          (k, v))
    in
    Codec.expect_end r;
    { tag; fields }
  with
  | e -> Ok e
  | exception Codec.Corrupt msg -> Error msg

(* (=) is structural on Bytes.t, so this compares blob contents. *)
let equal a b = a = b

let to_string e =
  let field (k, v) =
    match v with
    | I n -> Printf.sprintf "%s=%d" k n
    | S s -> Printf.sprintf "%s=%S" k s
    | B b ->
        Printf.sprintf "%s=<%dB crc %08x>" k (Bytes.length b)
          (Ra_crypto.Crc32.digest b)
  in
  Printf.sprintf "%s{%s}" e.tag (String.concat " " (List.map field e.fields))

let find e k = List.assoc_opt k e.fields

let find_i e k = match find e k with Some (I n) -> Some n | _ -> None

let find_s e k = match find e k with Some (S s) -> Some s | _ -> None

let missing e k ty =
  Codec.fail (Printf.sprintf "event %s: missing %s field %S" e.tag ty k)

let geti e k = match find e k with Some (I n) -> n | _ -> missing e k "int"

let gets e k = match find e k with Some (S s) -> s | _ -> missing e k "string"

let getb e k = match find e k with Some (B b) -> b | _ -> missing e k "bytes"
