(** The write-ahead journal: durable fleet state as an event log plus
    crash-consistent snapshots.

    Write path — every state change is appended as an {!Event.t} {e
    before} it is applied in memory ({!append}), and {!commit} ([fsync])
    runs at each round boundary: a record is {e acknowledged} once
    committed, and recovery never loses an acknowledged record. Every
    [snapshot_every] rounds a full state snapshot is written to a temp
    file and atomically renamed into place; a ["snapshot"] marker event
    chains the snapshot into the record stream, so the log carries its
    own recovery map.

    Read path — {!recover} scans the WAL (torn or duplicated tails are
    truncated, see {!Wal}), decodes the events, and picks the newest
    snapshot whose CRC checks out and whose covered-event count is
    consistent with the log; a snapshot that lost its rename to a crash
    simply falls back to the previous one. {!resume} then truncates the
    WAL to a chosen consistency point and reopens it for recording with
    the sequence numbering continued, so a resumed campaign extends the
    same log.

    Verify mode — {!verifier} builds a journal over a recorded event
    array instead of a disk: every {!append} is compared against the next
    recorded event and the first divergence is captured. Running a
    campaign against a verifier is what makes replay {e bit-identical},
    not merely plausible. *)

type t

val wal_file : string
(** Name of the log file inside the journal directory (["wal"]). *)

val create : ?snapshot_every:int -> Disk.t -> t
(** Start a fresh journal in [disk], discarding any previous journal
    files there. [snapshot_every] (default 3) is the snapshot period in
    rounds. *)

val append : t -> Event.t -> unit
(** Record mode: frame and append the event (not yet durable). Verify
    mode: compare against the next recorded event. *)

val commit : t -> unit
(** Make all appended records durable. No-op in verify mode. *)

val want_snapshot : t -> round:int -> bool

val snapshot : t -> round:int -> state:Bytes.t -> unit
(** Write [state] as the snapshot for completed round [round]:
    commit the log, write-temp, [fsync], atomic rename, directory sync,
    then append and commit a ["snapshot"] marker event. No-op in verify
    mode. *)

type recovery = {
  events : Event.t array;  (** every decodable acknowledged event *)
  offsets : int array;  (** truncation point after each event *)
  snapshot : (int * int * Bytes.t) option;
      (** newest usable snapshot as [(round, events_covered, state)] *)
  damage : string option;  (** tail damage dropped by the scan, if any *)
}

val recover : Disk.t -> (recovery, string) result
(** Never fails on tail damage — that is truncated and reported via
    [damage]. [Error] only when there is no journal at all. *)

val resume : ?snapshot_every:int -> Disk.t -> recovery -> keep:int -> t
(** Reopen for recording, keeping exactly the first [keep] events:
    truncates the WAL at [offsets.(keep - 1)] (dropping any intact but
    uncommitted suffix past the chosen consistency point) and continues
    the sequence numbering from [keep + 1]. *)

val restart :
  ?snapshot_every:int ->
  ?validate:(recovery -> keep:int -> (unit, string) result) ->
  Disk.t ->
  keep:(recovery -> int) ->
  (recovery * t, string) result
(** The one restart path every consumer shares: {!recover}, choose a
    consistency point with [keep] (e.g. the last completed round, or the
    whole log), optionally [validate] the kept prefix (replay
    verification, state reconstruction), then {!resume} there. [Error]
    when there is no journal, when [keep] points outside the log, or when
    [validate] rejects — in which case the WAL is left untouched, so a
    failed restart can be inspected. *)

val verifier : Event.t array -> t
(** A verify-mode journal over a recorded event stream. Recorded
    ["snapshot"] markers are skipped automatically, since a replay does
    not re-take snapshots. *)

val verified : t -> (unit, string) result
(** Verify mode: [Ok] iff every recorded event was re-emitted, in order,
    with no divergence and nothing left over. Record mode: always [Ok]. *)

val position : t -> int
(** Events appended (record mode) or matched (verify mode) so far. *)
