(** Journal events: a generic tagged record with named fields.

    The journal itself stays schema-agnostic — the supervisor, fleet and
    experiment layers own the meaning of each tag ("edge", "attest",
    "round-end", …) and this module only guarantees a canonical,
    deterministic encoding: same tag and fields in the same order produce
    the same bytes, so replay can compare re-emitted events against the
    recorded stream structurally or byte-for-byte. *)

type value =
  | I of int
  | S of string
  | B of Bytes.t  (** opaque blob, e.g. a serialized device state *)

type t = { tag : string; fields : (string * value) list }

val make : string -> (string * value) list -> t

val encode : t -> Bytes.t
val decode : Bytes.t -> (t, string) result

val equal : t -> t -> bool

val to_string : t -> string
(** One-line rendering for divergence reports; blobs are abbreviated to
    their length and CRC. *)

(** Field accessors. The [get*] variants raise {!Codec.Corrupt} when the
    field is missing or has the wrong type — recovery paths catch this
    and report the journal as damaged. *)

val find_i : t -> string -> int option
val find_s : t -> string -> string option
val geti : t -> string -> int
val gets : t -> string -> string
val getb : t -> string -> Bytes.t
