open Ra_crypto

let wal_file = "wal"

let snap_tmp = "snap.tmp"

let snap_prefix = "snap-"

let snap_name round = Printf.sprintf "%s%08d" snap_prefix round

let snapshot_marker = "snapshot"

type record_state = {
  disk : Disk.t;
  snapshot_every : int;
  mutable next_seq : int;
}

type verify_state = {
  recorded : Event.t array;
  mutable pos : int;
  mutable divergence : string option;
}

type t = Record of record_state | Verify of verify_state

let create ?(snapshot_every = 3) disk =
  List.iter
    (fun f ->
      if
        f = wal_file || f = snap_tmp
        || String.length f >= String.length snap_prefix
           && String.sub f 0 (String.length snap_prefix) = snap_prefix
      then disk.Disk.remove f)
    (disk.Disk.list ());
  disk.Disk.write wal_file Bytes.empty;
  disk.Disk.sync wal_file;
  disk.Disk.sync_dir ();
  Record { disk; snapshot_every; next_seq = 1 }

let skip_markers v =
  while
    v.pos < Array.length v.recorded
    && (v.recorded.(v.pos)).Event.tag = snapshot_marker
  do
    v.pos <- v.pos + 1
  done

let append t ev =
  match t with
  | Record r ->
      r.disk.Disk.append wal_file (Wal.encode ~seq:r.next_seq (Event.encode ev));
      r.next_seq <- r.next_seq + 1
  | Verify v ->
      if v.divergence = None then begin
        skip_markers v;
        if v.pos >= Array.length v.recorded then
          v.divergence <-
            Some
              (Printf.sprintf "replay emitted an event past the recorded log: %s"
                 (Event.to_string ev))
        else begin
          let expected = v.recorded.(v.pos) in
          if not (Event.equal expected ev) then
            v.divergence <-
              Some
                (Printf.sprintf "divergence at event %d:\n  recorded: %s\n  replayed: %s"
                   v.pos
                   (Event.to_string expected)
                   (Event.to_string ev))
          else v.pos <- v.pos + 1
        end
      end

let commit t =
  match t with
  | Record r -> r.disk.Disk.sync wal_file
  | Verify _ -> ()

let want_snapshot t ~round =
  match t with
  | Record r -> round > 0 && round mod r.snapshot_every = 0
  | Verify _ -> false

let snapshot t ~round ~state =
  match t with
  | Verify _ -> ()
  | Record r ->
      (* the events the snapshot claims to cover must be durable first *)
      commit t;
      let covered = r.next_seq - 1 in
      let w = Codec.writer () in
      Codec.i64 w round;
      Codec.i64 w covered;
      Codec.bytes w state;
      let payload = Codec.contents w in
      let framed = Bytes.create (Bytes.length payload + 4) in
      Bytes.blit payload 0 framed 0 (Bytes.length payload);
      Bytesutil.store32_be framed (Bytes.length payload) (Crc32.digest payload);
      r.disk.Disk.write snap_tmp framed;
      r.disk.Disk.sync snap_tmp;
      r.disk.Disk.rename snap_tmp (snap_name round);
      r.disk.Disk.sync_dir ();
      append t
        (Event.make snapshot_marker
           [ ("round", Event.I round); ("upto", Event.I covered) ]);
      commit t

let decode_snapshot buf =
  let n = Bytes.length buf in
  if n < 4 then Error "snapshot too short"
  else begin
    let payload = Bytes.sub buf 0 (n - 4) in
    if Bytesutil.load32_be buf (n - 4) <> Crc32.digest payload then
      Error "snapshot CRC mismatch"
    else
      match
        let r = Codec.reader payload in
        let round = Codec.read_i64 r in
        let covered = Codec.read_i64 r in
        let state = Codec.read_bytes r in
        Codec.expect_end r;
        (round, covered, state)
      with
      | s -> Ok s
      | exception Codec.Corrupt msg -> Error msg
  end

type recovery = {
  events : Event.t array;
  offsets : int array;
  snapshot : (int * int * Bytes.t) option;
  damage : string option;
}

let recover disk =
  match disk.Disk.read wal_file with
  | None -> Error "no journal found (missing wal file)"
  | Some buf ->
      let scan = Wal.scan buf in
      (* decode; an undecodable payload (CRC-valid but semantically
         damaged) also truncates the accepted prefix *)
      let events = ref [] in
      let damage = ref scan.Wal.damage in
      let rec decode i = function
        | [] -> i
        | payload :: rest -> (
            match Event.decode payload with
            | Ok e ->
                events := e :: !events;
                decode (i + 1) rest
            | Error msg ->
                damage := Some (Printf.sprintf "record %d undecodable: %s" i msg);
                i)
      in
      let kept = decode 0 scan.Wal.records in
      let events = Array.of_list (List.rev !events) in
      let offsets = Array.sub scan.Wal.offsets 0 kept in
      let snapshot =
        disk.Disk.list ()
        |> List.filter (fun f ->
               String.length f > String.length snap_prefix
               && String.sub f 0 (String.length snap_prefix) = snap_prefix)
        |> List.sort (fun a b -> compare b a) (* newest first *)
        |> List.find_map (fun f ->
               match disk.Disk.read f with
               | None -> None
               | Some buf -> (
                   match decode_snapshot buf with
                   | Ok (round, covered, state) when covered <= Array.length events
                     ->
                       Some (round, covered, state)
                   | _ -> None))
      in
      Ok { events; offsets; snapshot; damage = !damage }

let resume ?(snapshot_every = 3) disk recovery ~keep =
  if keep < 0 || keep > Array.length recovery.events then
    invalid_arg "Journal.resume: keep out of range";
  let good = if keep = 0 then 0 else recovery.offsets.(keep - 1) in
  disk.Disk.truncate wal_file good;
  disk.Disk.sync wal_file;
  Record { disk; snapshot_every; next_seq = keep + 1 }

let restart ?snapshot_every ?validate disk ~keep =
  match recover disk with
  | Error _ as e -> e
  | Ok recovery -> (
      let k = keep recovery in
      if k < 0 || k > Array.length recovery.events then
        Error
          (Printf.sprintf "restart: consistency point %d outside log of %d event(s)"
             k (Array.length recovery.events))
      else
        let checked =
          match validate with
          | None -> Ok ()
          | Some check -> check recovery ~keep:k
        in
        match checked with
        | Error _ as e -> e
        | Ok () -> Ok (recovery, resume ?snapshot_every disk recovery ~keep:k))

let verifier recorded = Verify { recorded; pos = 0; divergence = None }

let verified t =
  match t with
  | Record _ -> Ok ()
  | Verify v -> (
      match v.divergence with
      | Some d -> Error d
      | None ->
          skip_markers v;
          if v.pos = Array.length v.recorded then Ok ()
          else
            Error
              (Printf.sprintf
                 "replay stopped %d event(s) short of the recorded log (next: %s)"
                 (Array.length v.recorded - v.pos)
                 (Event.to_string v.recorded.(v.pos))))

let position t =
  match t with Record r -> r.next_seq - 1 | Verify v -> v.pos
