type t = {
  read : string -> Bytes.t option;
  write : string -> Bytes.t -> unit;
  append : string -> Bytes.t -> unit;
  truncate : string -> int -> unit;
  sync : string -> unit;
  rename : string -> string -> unit;
  remove : string -> unit;
  sync_dir : unit -> unit;
  list : unit -> string list;
}

(* ------------------------------------------------------------------ *)
(* Real directory backend                                              *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let file ~dir =
  mkdir_p dir;
  let path name = Filename.concat dir name in
  let read name =
    let p = path name in
    if not (Sys.file_exists p) then None
    else begin
      let ic = open_in_bin p in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          let b = Bytes.create n in
          really_input ic b 0 n;
          Some b)
    end
  in
  let write name b =
    let oc = open_out_bin (path name) in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_bytes oc b)
  in
  let append name b =
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (path name)
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_bytes oc b)
  in
  let truncate name len = Unix.truncate (path name) len in
  let sync name =
    match Unix.openfile (path name) [ Unix.O_WRONLY ] 0o644 with
    | fd -> Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  let rename from_ to_ = Sys.rename (path from_) (path to_) in
  let remove name = if Sys.file_exists (path name) then Sys.remove (path name) in
  let sync_dir () =
    (* Directory fsync is the POSIX way to make renames durable; some
       platforms refuse to open a directory for reading — best effort. *)
    match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
    | fd ->
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  let list () = Sys.readdir dir |> Array.to_list |> List.sort compare in
  { read; write; append; truncate; sync; rename; remove; sync_dir; list }

(* ------------------------------------------------------------------ *)
(* In-memory backend with crash injection                              *)
(* ------------------------------------------------------------------ *)

module Mem = struct
  type op = Set of Bytes.t | Append of Bytes.t

  type entry = {
    mutable synced : Bytes.t option;  (* None: absent in the durable state *)
    mutable ops : op list;  (* newest first *)
  }

  type store = {
    (* assoc list, not Hashtbl: iteration order must be deterministic *)
    mutable files : (string * entry) list;
    (* renames visible now but durable only after sync_dir; oldest first *)
    mutable pending : (string * string * entry option) list;
  }

  type faults = {
    drop_write : float;
    tear_write : float;
    duplicate_tail : float;
    undo_rename : float;
  }

  let no_faults =
    { drop_write = 0.0; tear_write = 0.0; duplicate_tail = 0.0; undo_rename = 0.0 }

  let default_faults =
    { drop_write = 0.25; tear_write = 0.3; duplicate_tail = 0.2; undo_rename = 0.4 }

  let create () = { files = []; pending = [] }

  let entry st name =
    match List.assoc_opt name st.files with
    | Some e -> e
    | None ->
        let e = { synced = None; ops = [] } in
        st.files <- st.files @ [ (name, e) ];
        e

  (* The file as a normal (crash-free) reader sees it: synced base plus
     every unsynced op in order. *)
  let view e =
    List.fold_left
      (fun cur op ->
        match op with
        | Set b -> Some (Bytes.copy b)
        | Append b -> (
            match cur with
            | None -> Some (Bytes.copy b)
            | Some c -> Some (Bytes.cat c b)))
      (Option.map Bytes.copy e.synced)
      (List.rev e.ops)

  let exists e = view e <> None

  let bernoulli rng p = p > 0.0 && Ra_sim.Prng.float rng < p

  (* Resolve one file's unsynced ops under the fault mix. An op after a
     dropped or torn one never lands: the write queue was cut there.
     One growable buffer, not Bytes.cat per op — a WAL commit must cost
     the batch, not the whole file so far. *)
  let resolve ?(faults = no_faults) ?rng e =
    let buf = Buffer.create 256 in
    let present = ref false in
    (match e.synced with
    | Some b ->
        Buffer.add_bytes buf b;
        present := true
    | None -> ());
    (* start of the appended-since-last-Set region (duplicate_tail only
       replays bytes from the unsynced appended suffix) *)
    let app_start = ref (Buffer.length buf) in
    let stopped = ref false in
    let prefix rng b =
      let n = Bytes.length b in
      if n = 0 then b else Bytes.sub b 0 (Ra_sim.Prng.int rng ~bound:n)
    in
    List.iter
      (fun op ->
        if not !stopped then
          match (op, rng) with
          | _, Some rng when bernoulli rng faults.drop_write -> stopped := true
          | Set b, Some rng when bernoulli rng faults.tear_write ->
              Buffer.clear buf;
              Buffer.add_bytes buf (prefix rng b);
              present := true;
              app_start := Buffer.length buf;
              stopped := true
          | Set b, _ ->
              Buffer.clear buf;
              Buffer.add_bytes buf b;
              present := true;
              app_start := Buffer.length buf
          | Append b, Some rng when bernoulli rng faults.tear_write ->
              Buffer.add_bytes buf (prefix rng b);
              present := true;
              stopped := true
          | Append b, _ ->
              Buffer.add_bytes buf b;
              present := true)
      (List.rev e.ops);
    (match rng with
    | Some rng
      when Buffer.length buf > !app_start && bernoulli rng faults.duplicate_tail ->
        let tail = Buffer.sub buf !app_start (Buffer.length buf - !app_start) in
        let n = String.length tail in
        let start = Ra_sim.Prng.int rng ~bound:n in
        Buffer.add_string buf (String.sub tail start (n - start))
    | _ -> ());
    e.synced <- (if !present then Some (Buffer.to_bytes buf) else None);
    e.ops <- []

  let disk st =
    let read name =
      match List.assoc_opt name st.files with
      | None -> None
      | Some e -> view e
    in
    let write name b = (entry st name).ops <- [ Set (Bytes.copy b) ] in
    let append name b =
      let e = entry st name in
      e.ops <- Append (Bytes.copy b) :: e.ops
    in
    let truncate name len =
      let e = entry st name in
      match view e with
      | None -> ()
      | Some b ->
          let len = min len (Bytes.length b) in
          e.ops <- [ Set (Bytes.sub b 0 len) ]
    in
    let sync name =
      match List.assoc_opt name st.files with
      | None -> ()
      | Some e -> resolve e
    in
    let rename from_ to_ =
      match List.assoc_opt from_ st.files with
      | None -> invalid_arg ("Disk.Mem.rename: no such file " ^ from_)
      | Some e ->
          let displaced = List.assoc_opt to_ st.files in
          st.files <-
            List.filter (fun (n, _) -> n <> from_ && n <> to_) st.files
            @ [ (to_, e) ];
          st.pending <- st.pending @ [ (from_, to_, displaced) ]
    in
    let remove name = st.files <- List.filter (fun (n, _) -> n <> name) st.files in
    let sync_dir () = st.pending <- [] in
    let list () =
      st.files
      |> List.filter (fun (_, e) -> exists e)
      |> List.map fst
      |> List.sort compare
    in
    { read; write; append; truncate; sync; rename; remove; sync_dir; list }

  let undo_rename st (from_, to_, displaced) =
    match List.assoc_opt to_ st.files with
    | None -> ()
    | Some e ->
        st.files <- List.filter (fun (n, _) -> n <> to_ && n <> from_) st.files;
        st.files <- st.files @ [ (from_, e) ];
        (match displaced with
        | Some d -> st.files <- st.files @ [ (to_, d) ]
        | None -> ())

  let crash ?(faults = default_faults) ~rng st =
    List.iter (fun (_, e) -> resolve ~faults ~rng e) st.files;
    (* newest rename first, so chained renames unwind consistently *)
    List.iter
      (fun r -> if bernoulli rng faults.undo_rename then undo_rename st r)
      (List.rev st.pending);
    st.pending <- [];
    (* files that never became durable are gone *)
    st.files <- List.filter (fun (_, e) -> e.synced <> None) st.files

  let synced_length st name =
    match List.assoc_opt name st.files with
    | Some { synced = Some b; _ } -> Bytes.length b
    | _ -> 0
end
