(** Storage abstraction for the journal, as a record of operations.

    Two backends: {!file} for real directories (used by [ratool]), and
    {!Mem} for tests and benchmarks. The in-memory backend models the
    durability contract of a POSIX file system precisely enough to
    crash-inject it: writes and appends land in a per-file {e unsynced}
    op log, renames are visible immediately but only survive a crash
    after {!type-t.sync_dir}, and {!Mem.crash} resolves the unsynced
    state under a configurable fault mix — short writes, torn appends,
    duplicated tails, undone renames — exactly the damage the WAL scan
    and snapshot fallback must shrug off. *)

type t = {
  read : string -> Bytes.t option;  (** whole file; [None] if absent *)
  write : string -> Bytes.t -> unit;  (** create or truncate-and-write *)
  append : string -> Bytes.t -> unit;  (** create if absent *)
  truncate : string -> int -> unit;
  sync : string -> unit;
      (** make the file's current contents durable ([fsync]) *)
  rename : string -> string -> unit;  (** atomic replace *)
  remove : string -> unit;
  sync_dir : unit -> unit;
      (** make renames durable (directory [fsync]) *)
  list : unit -> string list;  (** sorted file names *)
}

val file : dir:string -> t
(** Files under [dir] (created if missing). [sync] is a real [fsync];
    [sync_dir] fsyncs the directory where the platform allows it. *)

module Mem : sig
  type store

  (** Per-operation fault probabilities applied by {!crash} when
      resolving unsynced state. Synced state is never touched. *)
  type faults = {
    drop_write : float;  (** unsynced op vanishes entirely *)
    tear_write : float;  (** only a prefix of the op's bytes survive *)
    duplicate_tail : float;
        (** a suffix of the file's unsynced appended region is appended
            again — the classic re-ordered/replayed tail *)
    undo_rename : float;  (** a rename not yet covered by [sync_dir] *)
  }

  val no_faults : faults

  val default_faults : faults
  (** A harsh mix used by the qcheck crash properties. *)

  val create : unit -> store
  val disk : store -> t

  val crash : ?faults:faults -> rng:Ra_sim.Prng.t -> store -> unit
  (** Simulate power loss: resolve every file's unsynced ops under
      [faults] (an op after a dropped-or-torn one never lands, matching
      a write queue cut at an arbitrary point), then undo any
      not-yet-durable rename chosen by [undo_rename]. Deterministic for
      a given [rng] state. *)

  val synced_length : store -> string -> int
  (** Length the file would have after a fault-free crash — i.e. the
      acknowledged (synced) byte count. 0 if absent. *)
end
