(** Record framing for the write-ahead log.

    Each record is ["RJ"] (2 bytes) + sequence number (u32 BE) + payload
    length (u32 BE) + payload + CRC-32 (u32 BE, over everything before
    it) — the same [Crc32] frame-check discipline as the network
    {!Ra_core.Frame}. The scan accepts the longest prefix of records
    whose CRCs check out {e and} whose sequence numbers are contiguous:
    a torn tail fails the CRC, a duplicated tail (re-appended bytes after
    a crash) repeats a sequence number. Everything after the first damage
    is discarded — by the WAL rule, nothing after an unsynced record was
    ever acknowledged. *)

val encode : seq:int -> Bytes.t -> Bytes.t

type scan = {
  records : Bytes.t list;  (** accepted payloads, in order *)
  offsets : int array;
      (** [offsets.(i)] is the byte offset just after record [i] — the
          truncation point that keeps records [0..i] *)
  good_bytes : int;  (** offset after the last accepted record *)
  damage : string option;
      (** why the scan stopped early, [None] for a clean log *)
}

val scan : ?first_seq:int -> Bytes.t -> scan
