exception Corrupt of string

let fail msg = raise (Corrupt msg)

type writer = Buffer.t

let writer () = Buffer.create 256

let contents w = Buffer.to_bytes w

let u8 w v = Buffer.add_char w (Char.chr (v land 0xff))

let i64raw w v =
  let b = Bytes.create 8 in
  Ra_crypto.Bytesutil.store64_be b 0 v;
  Buffer.add_bytes w b

let i64 w v = i64raw w (Int64.of_int v)

let bytes w b =
  i64 w (Bytes.length b);
  Buffer.add_bytes w b

let str w s = bytes w (Bytes.of_string s)

type reader = { src : Bytes.t; mutable pos : int }

let reader src = { src; pos = 0 }

let need r n =
  if n < 0 || r.pos + n > Bytes.length r.src then fail "truncated encoding"

let read_u8 r =
  need r 1;
  let v = Char.code (Bytes.get r.src r.pos) in
  r.pos <- r.pos + 1;
  v

let read_i64raw r =
  need r 8;
  let v = Ra_crypto.Bytesutil.load64_be r.src r.pos in
  r.pos <- r.pos + 8;
  v

let read_i64 r = Int64.to_int (read_i64raw r)

let read_bytes r =
  let n = read_i64 r in
  need r n;
  let b = Bytes.sub r.src r.pos n in
  r.pos <- r.pos + n;
  b

let read_str r = Bytes.to_string (read_bytes r)

let at_end r = r.pos = Bytes.length r.src

let expect_end r = if not (at_end r) then fail "trailing bytes after encoding"
