(** Two-level measurement digest cache.

    Level 1 — per-device memo keyed [(algo, block, version)]: re-measuring
    a block whose {!Ra_device.Memory.version} counter has not moved is a
    table hit; any content change bumps the version and invalidates the
    entry for free. (The dependency actually runs the other way — this
    library only sees the version as an [int] — so it sits below
    [ra_device] in the build graph.)

    Level 2 — optional fleet-wide content-addressed {!Store} keyed by the
    block's actual bytes: identical firmware blocks across enrolled
    devices, or across prover and verifier, hash exactly once no matter
    how many parties measure them.

    Digests returned by either level are shared values — callers must not
    mutate them. The cache only changes where host CPU time is spent;
    modeled (virtual-time) measurement cost is charged in full by the
    caller regardless of hits, keeping simulated timings paper-faithful
    (see {!Ra_device.Cost_model.cache_accounting}). *)

open Ra_crypto

type stats = {
  mutable hits : int;        (** level-1 memo hits (version unchanged) *)
  mutable store_hits : int;  (** memo misses resolved by the shared store *)
  mutable misses : int;      (** digests actually computed on behalf of this device *)
}

module Store : sig
  (** Content-addressed digest store, safe to share across domains. The
      key space is lock-striped: each stripe (a pure function of the
      content bytes) has its own table, mutex and counters, so concurrent
      shards hashing distinct content take distinct locks. The digest for
      a fresh content is computed inside its stripe's critical section,
      so each distinct content is hashed exactly once globally — which
      makes all derived hit/miss counts deterministic under any parallel
      job count and any shard count. *)

  type t

  val create : ?stripes:int -> unit -> t
  (** [stripes] (default 16) is rounded up to a power of two and clamped
      to [1, 4096]. [create ~stripes:1 ()] is the flat single-mutex store
      the striped one is qcheck-diffed against. *)

  val stripes : t -> int

  val digest : t -> Algo.hash -> Bytes.t -> bool * Bytes.t
  (** [digest t algo content] returns [(hit, digest)]. [content] is
      borrowed for the duration of the call (probed zero-copy, copied only
      on first insertion). The digest is shared: do not mutate. *)

  val digest_many : t -> Algo.hash -> Bytes.t array -> (bool * Bytes.t) array
  (** Batch {!digest}: the batch is partitioned by stripe and each
      stripe's sub-batch is resolved under one acquisition of that
      stripe's lock — hits and misses split first, then all misses
      computed together through the interleaved kernel. Results, table
      state and every counter are bit-identical to calling {!digest} once
      per element in order (an in-batch duplicate counts as a hit after
      its first occurrence). Contents are borrowed for the duration of
      the call. *)

  val lookups : t -> int
  (** Counter reads sum over stripes, stripe lock by stripe lock —
      deterministic whenever the store is quiescent (e.g. at a roll-call
      barrier). *)

  val computed : t -> int
  (** Number of digests actually computed = number of distinct
      [(algo, content)] pairs ever seen. *)

  val batched_computes : t -> int
  (** The subset of {!computed} performed inside {!digest_many}. When
      every compute in a run flows through the batch entry point this
      equals {!computed} — and is then jobs-invariant for the same
      reason. *)

  val distinct_contents : t -> int
end

type t

val create : ?store:Store.t -> unit -> t

val store : t -> Store.t option

val stats : t -> stats
(** Live counters (not a copy). *)

val block_digest : t -> Algo.hash -> block:int -> version:int -> Bytes.t -> Bytes.t
(** [block_digest t algo ~block ~version content] returns the digest of
    [content], consulting the memo (keyed on [block]/[version]) and then
    the shared store. [content] is borrowed — safe to call from inside
    {!Ra_device.Memory.with_block}. The result is shared: do not mutate. *)

val block_digest_many :
  t ->
  Algo.hash ->
  blocks:int array ->
  versions:int array ->
  Bytes.t array ->
  Bytes.t array
(** Batch {!block_digest} over the {e distinct} blocks of one measurement
    round: memo probes first, then a single {!Store.digest_many} over the
    misses. For distinct blocks the results and all counters are
    bit-identical to calling {!block_digest} per block in order. Raises
    [Invalid_argument] on length mismatches. *)

val requests : stats -> int
(** Total digest requests = hits + store_hits + misses. *)
