open Ra_crypto

let algo_tag = function
  | Algo.SHA_256 -> 0
  | Algo.SHA_512 -> 1
  | Algo.BLAKE2b -> 2
  | Algo.BLAKE2s -> 3

type stats = {
  mutable hits : int;
  mutable store_hits : int;
  mutable misses : int;
}

module Store = struct
  (* Content-addressed digest store shared across devices (and with the
     verifier side). Keys are (algo, content); OCaml's polymorphic hash
     fully mixes short strings and full structural equality resolves any
     bucket collision, so two distinct contents can never share a digest.

     Lock striping: the key space is split across [stripes] independent
     stripes, each with its own table, mutex and counters. A content's
     stripe is a pure function of its bytes, so the compute-once
     discipline holds per stripe — and therefore globally — while
     concurrent shards hashing distinct content take distinct locks and
     never contend. The digest is still computed INSIDE the stripe's
     critical section: when several domains race on the same fresh
     content, exactly one computes it and the rest observe a hit. That
     makes [computed] (and every count derived from it) deterministic
     under any --jobs and any shard count; the public counters are sums
     over stripes, taken stripe-by-stripe at read time, so they are
     deterministic whenever the store is quiescent (which is when the
     fleet layer reads them — at roll-call barriers). *)
  type stripe = {
    table : (int * string, Bytes.t) Hashtbl.t;
    mutex : Mutex.t;
    mutable lookups : int;
    mutable computed : int;
    mutable batched_computes : int;
  }

  type t = {
    stripes : stripe array;
    mask : int; (* stripe count - 1; count is a power of two *)
  }

  let default_stripes = 16

  let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

  let create ?(stripes = default_stripes) () =
    let count = pow2_at_least (max 1 (min stripes 4096)) 1 in
    {
      stripes =
        Array.init count (fun _ ->
            {
              table = Hashtbl.create 256;
              mutex = Mutex.create ();
              lookups = 0;
              computed = 0;
              batched_computes = 0;
            });
      mask = count - 1;
    }

  let stripes t = t.mask + 1

  (* Stripe selection must be a pure, run-independent function of the key
     bytes: the polymorphic hash of (tag, content-string) is exactly that
     (no randomized seeding), and it is the same mixing the stripe tables
     themselves use.
     bounds: unsafe_to_string is an ownership cast, not an access — the
     view exists only for the hash computation and is never stored.
     cross-check: test/test_cache.ml qcheck-diffs the striped store
     against a stripes:1 store under adversarial schedules. *)
  let stripe_of t tag content =
    t.stripes.(Hashtbl.hash (tag, Bytes.unsafe_to_string content) land t.mask)

  (* [content] is borrowed: probed with a zero-copy string view, copied
     into the table only the first time it is seen. The returned digest is
     shared — callers must treat it as immutable.
     bounds: unsafe_to_string is an ownership cast, not an access — the
     view lives only for the probe, inside the lock, and is never stored.
     cross-check: test/test_cache.ml qcheck-diffs cached digests against
     uncached Algo.digest under adversarial write schedules. *)
  let digest t algo content =
    let tag = algo_tag algo in
    let s = stripe_of t tag content in
    Mutex.lock s.mutex;
    s.lookups <- s.lookups + 1;
    let result =
      match Hashtbl.find_opt s.table (tag, Bytes.unsafe_to_string content) with
      | Some d -> (true, d)
      | None ->
        let d = Algo.digest algo content in
        s.computed <- s.computed + 1;
        Hashtbl.replace s.table (tag, Bytes.to_string content) d;
        (false, d)
    in
    Mutex.unlock s.mutex;
    result

  (* Batch lookup: the batch is partitioned by stripe, and each stripe's
     sub-batch is resolved under ONE acquisition of that stripe's lock —
     hits and misses split first, then all misses computed together by the
     interleaved kernel (Algo.digest_many), still inside the critical
     section. An element's classification (table hit, first-occurrence
     miss, in-batch duplicate) depends only on its own stripe's table and
     the sub-batch it shares that stripe with — duplicates always land in
     the same stripe — so results, table state and every counter are
     bit-identical to replaying the same contents through single [digest]
     calls in order, for any job count. Stripes are visited in ascending
     index order and never nested, so concurrent batches cannot deadlock.
     bounds: unsafe_to_string is an ownership cast, not an access — the
     zero-copy views live only inside the lock, keying a scratch
     first-occurrence table that is dropped before unlock; the permanent
     table still receives a Bytes.to_string copy.
     cross-check: test/test_cache.ml qcheck-diffs digest_many results and
     all counters against a sequential replay through Store.digest. *)
  let digest_many t algo contents =
    let n = Array.length contents in
    let results = Array.make n (false, Bytes.empty) in
    if n > 0 then begin
      let tag = algo_tag algo in
      let nstripes = t.mask + 1 in
      (* deterministic partition: per-stripe index lists in input order *)
      let by_stripe = Array.make nstripes [] in
      for i = n - 1 downto 0 do
        let k =
          Hashtbl.hash (tag, Bytes.unsafe_to_string contents.(i)) land t.mask
        in
        by_stripe.(k) <- i :: by_stripe.(k)
      done;
      for k = 0 to nstripes - 1 do
        match by_stripe.(k) with
        | [] -> ()
        | members ->
          let s = t.stripes.(k) in
          Mutex.lock s.mutex;
          s.lookups <- s.lookups + List.length members;
          let pending = Hashtbl.create 8 in
          let dup_of = Hashtbl.create 8 in
          let miss_rev = ref [] in
          List.iter
            (fun i ->
              let key = (tag, Bytes.unsafe_to_string contents.(i)) in
              match Hashtbl.find_opt s.table key with
              | Some d -> results.(i) <- (true, d)
              | None -> (
                match Hashtbl.find_opt pending key with
                | Some first -> Hashtbl.add dup_of i first
                | None ->
                  Hashtbl.add pending key i;
                  miss_rev := i :: !miss_rev))
            members;
          let miss = Array.of_list (List.rev !miss_rev) in
          let fresh =
            Algo.digest_many algo (Array.map (fun i -> contents.(i)) miss)
          in
          s.computed <- s.computed + Array.length miss;
          s.batched_computes <- s.batched_computes + Array.length miss;
          Array.iteri
            (fun j i ->
              let d = fresh.(j) in
              Hashtbl.replace s.table (tag, Bytes.to_string contents.(i)) d;
              results.(i) <- (false, d))
            miss;
          List.iter
            (fun i ->
              match Hashtbl.find_opt dup_of i with
              | Some first -> results.(i) <- (true, snd results.(first))
              | None -> ())
            members;
          Mutex.unlock s.mutex
      done
    end;
    results

  (* Counter reads sum stripe-by-stripe, taking each stripe's lock in
     turn; deterministic whenever no domain is concurrently writing. *)
  let sum_over t f =
    Array.fold_left
      (fun acc s ->
        Mutex.lock s.mutex;
        let v = f s in
        Mutex.unlock s.mutex;
        acc + v)
      0 t.stripes

  let lookups t = sum_over t (fun s -> s.lookups)

  let computed t = sum_over t (fun s -> s.computed)

  let batched_computes t = sum_over t (fun s -> s.batched_computes)

  let distinct_contents t = sum_over t (fun s -> Hashtbl.length s.table)
end

(* Per-device memo: (algo, block) -> (version, digest). One entry per
   block and algorithm — re-measuring an unchanged block is a pure table
   hit with no byte comparison, because Memory guarantees equal versions
   imply identical bytes. A stale version falls through to the shared
   store (if any) and the entry is replaced. *)
type t = {
  memo : (int * int, int * Bytes.t) Hashtbl.t;
  store : Store.t option;
  stats : stats;
}

let create ?store () =
  {
    memo = Hashtbl.create 64;
    store;
    stats = { hits = 0; store_hits = 0; misses = 0 };
  }

let store t = t.store

let stats t = t.stats

let block_digest t algo ~block ~version content =
  let key = (algo_tag algo, block) in
  match Hashtbl.find_opt t.memo key with
  | Some (v, d) when v = version ->
    t.stats.hits <- t.stats.hits + 1;
    d
  | _ ->
    let d =
      match t.store with
      | Some s ->
        let hit, d = Store.digest s algo content in
        if hit then t.stats.store_hits <- t.stats.store_hits + 1
        else t.stats.misses <- t.stats.misses + 1;
        d
      | None ->
        t.stats.misses <- t.stats.misses + 1;
        Algo.digest algo content
    in
    Hashtbl.replace t.memo key (version, d);
    d

(* Batch counterpart of [block_digest] for the distinct blocks of one
   measurement round: all memo probes first, then a single
   Store.digest_many over the misses. Because the blocks are distinct the
   memo probes are independent of each other, so every counter (memo
   hits, store hits, misses, and all store counters) lands exactly as if
   [block_digest] had been called once per block in order. *)
let block_digest_many t algo ~blocks ~versions contents =
  let n = Array.length blocks in
  if Array.length versions <> n || Array.length contents <> n then
    invalid_arg "Ra_cache.block_digest_many: length mismatch";
  let out = Array.make n Bytes.empty in
  let tag = algo_tag algo in
  let miss_rev = ref [] in
  for i = 0 to n - 1 do
    match Hashtbl.find_opt t.memo (tag, blocks.(i)) with
    | Some (v, d) when v = versions.(i) ->
      t.stats.hits <- t.stats.hits + 1;
      out.(i) <- d
    | _ -> miss_rev := i :: !miss_rev
  done;
  let miss = Array.of_list (List.rev !miss_rev) in
  (match t.store with
  | Some s ->
    let res = Store.digest_many s algo (Array.map (fun i -> contents.(i)) miss) in
    Array.iteri
      (fun k i ->
        let hit, d = res.(k) in
        if hit then t.stats.store_hits <- t.stats.store_hits + 1
        else t.stats.misses <- t.stats.misses + 1;
        Hashtbl.replace t.memo (tag, blocks.(i)) (versions.(i), d);
        out.(i) <- d)
      miss
  | None ->
    let ds = Algo.digest_many algo (Array.map (fun i -> contents.(i)) miss) in
    Array.iteri
      (fun k i ->
        t.stats.misses <- t.stats.misses + 1;
        Hashtbl.replace t.memo (tag, blocks.(i)) (versions.(i), ds.(k));
        out.(i) <- ds.(k))
      miss);
  out

let requests stats = stats.hits + stats.store_hits + stats.misses
