open Ra_crypto

let algo_tag = function
  | Algo.SHA_256 -> 0
  | Algo.SHA_512 -> 1
  | Algo.BLAKE2b -> 2
  | Algo.BLAKE2s -> 3

type stats = {
  mutable hits : int;
  mutable store_hits : int;
  mutable misses : int;
}

module Store = struct
  (* Content-addressed digest store shared across devices (and with the
     verifier side). Keys are (algo, content); OCaml's polymorphic hash
     fully mixes short strings and full structural equality resolves any
     bucket collision, so two distinct contents can never share a digest.

     The digest is computed INSIDE the critical section: when several
     domains race on the same fresh content, exactly one computes it and
     the rest observe a hit. That makes [computed] (and therefore every
     hit/miss count derived from it) deterministic under any --jobs. *)
  type t = {
    table : (int * string, Bytes.t) Hashtbl.t;
    mutex : Mutex.t;
    mutable lookups : int;
    mutable computed : int;
    mutable batched_computes : int;
  }

  let create () =
    {
      table = Hashtbl.create 256;
      mutex = Mutex.create ();
      lookups = 0;
      computed = 0;
      batched_computes = 0;
    }

  (* [content] is borrowed: probed with a zero-copy string view, copied
     into the table only the first time it is seen. The returned digest is
     shared — callers must treat it as immutable.
     bounds: unsafe_to_string is an ownership cast, not an access — the
     view lives only for the probe, inside the lock, and is never stored.
     cross-check: test/test_cache.ml qcheck-diffs cached digests against
     uncached Algo.digest under adversarial write schedules. *)
  let digest t algo content =
    Mutex.lock t.mutex;
    t.lookups <- t.lookups + 1;
    let tag = algo_tag algo in
    let result =
      match Hashtbl.find_opt t.table (tag, Bytes.unsafe_to_string content) with
      | Some d -> (true, d)
      | None ->
        let d = Algo.digest algo content in
        t.computed <- t.computed + 1;
        Hashtbl.replace t.table (tag, Bytes.to_string content) d;
        (false, d)
    in
    Mutex.unlock t.mutex;
    result

  (* Batch lookup: the whole batch is partitioned into hits and misses
     under ONE lock acquisition, and all misses are computed together by
     the interleaved kernel (Algo.digest_many) — still inside the
     critical section, so the compute-once discipline and every counter
     stay bit-identical to replaying the same contents through single
     [digest] calls, for any job count. An in-batch duplicate behaves
     exactly like that sequential replay: its first occurrence computes,
     later ones observe hits.
     bounds: unsafe_to_string is an ownership cast, not an access — the
     zero-copy views live only inside the lock, keying a scratch
     first-occurrence table that is dropped before unlock; the permanent
     table still receives a Bytes.to_string copy.
     cross-check: test/test_cache.ml qcheck-diffs digest_many results and
     all counters against a sequential replay through Store.digest. *)
  let digest_many t algo contents =
    let n = Array.length contents in
    let results = Array.make n (false, Bytes.empty) in
    if n > 0 then begin
      Mutex.lock t.mutex;
      t.lookups <- t.lookups + n;
      let tag = algo_tag algo in
      let pending = Hashtbl.create 8 in
      let dup_of = Array.make n (-1) in
      let miss_rev = ref [] in
      for i = 0 to n - 1 do
        let key = (tag, Bytes.unsafe_to_string contents.(i)) in
        match Hashtbl.find_opt t.table key with
        | Some d -> results.(i) <- (true, d)
        | None -> (
          match Hashtbl.find_opt pending key with
          | Some first -> dup_of.(i) <- first
          | None ->
            Hashtbl.add pending key i;
            miss_rev := i :: !miss_rev)
      done;
      let miss = Array.of_list (List.rev !miss_rev) in
      let fresh =
        Algo.digest_many algo (Array.map (fun i -> contents.(i)) miss)
      in
      t.computed <- t.computed + Array.length miss;
      t.batched_computes <- t.batched_computes + Array.length miss;
      Array.iteri
        (fun k i ->
          let d = fresh.(k) in
          Hashtbl.replace t.table (tag, Bytes.to_string contents.(i)) d;
          results.(i) <- (false, d))
        miss;
      for i = 0 to n - 1 do
        if dup_of.(i) >= 0 then results.(i) <- (true, snd results.(dup_of.(i)))
      done;
      Mutex.unlock t.mutex
    end;
    results

  let lookups t =
    Mutex.lock t.mutex;
    let n = t.lookups in
    Mutex.unlock t.mutex;
    n

  let computed t =
    Mutex.lock t.mutex;
    let n = t.computed in
    Mutex.unlock t.mutex;
    n

  let batched_computes t =
    Mutex.lock t.mutex;
    let n = t.batched_computes in
    Mutex.unlock t.mutex;
    n

  let distinct_contents t =
    Mutex.lock t.mutex;
    let n = Hashtbl.length t.table in
    Mutex.unlock t.mutex;
    n
end

(* Per-device memo: (algo, block) -> (version, digest). One entry per
   block and algorithm — re-measuring an unchanged block is a pure table
   hit with no byte comparison, because Memory guarantees equal versions
   imply identical bytes. A stale version falls through to the shared
   store (if any) and the entry is replaced. *)
type t = {
  memo : (int * int, int * Bytes.t) Hashtbl.t;
  store : Store.t option;
  stats : stats;
}

let create ?store () =
  {
    memo = Hashtbl.create 64;
    store;
    stats = { hits = 0; store_hits = 0; misses = 0 };
  }

let store t = t.store

let stats t = t.stats

let block_digest t algo ~block ~version content =
  let key = (algo_tag algo, block) in
  match Hashtbl.find_opt t.memo key with
  | Some (v, d) when v = version ->
    t.stats.hits <- t.stats.hits + 1;
    d
  | _ ->
    let d =
      match t.store with
      | Some s ->
        let hit, d = Store.digest s algo content in
        if hit then t.stats.store_hits <- t.stats.store_hits + 1
        else t.stats.misses <- t.stats.misses + 1;
        d
      | None ->
        t.stats.misses <- t.stats.misses + 1;
        Algo.digest algo content
    in
    Hashtbl.replace t.memo key (version, d);
    d

(* Batch counterpart of [block_digest] for the distinct blocks of one
   measurement round: all memo probes first, then a single
   Store.digest_many over the misses. Because the blocks are distinct the
   memo probes are independent of each other, so every counter (memo
   hits, store hits, misses, and all store counters) lands exactly as if
   [block_digest] had been called once per block in order. *)
let block_digest_many t algo ~blocks ~versions contents =
  let n = Array.length blocks in
  if Array.length versions <> n || Array.length contents <> n then
    invalid_arg "Ra_cache.block_digest_many: length mismatch";
  let out = Array.make n Bytes.empty in
  let tag = algo_tag algo in
  let miss_rev = ref [] in
  for i = 0 to n - 1 do
    match Hashtbl.find_opt t.memo (tag, blocks.(i)) with
    | Some (v, d) when v = versions.(i) ->
      t.stats.hits <- t.stats.hits + 1;
      out.(i) <- d
    | _ -> miss_rev := i :: !miss_rev
  done;
  let miss = Array.of_list (List.rev !miss_rev) in
  (match t.store with
  | Some s ->
    let res = Store.digest_many s algo (Array.map (fun i -> contents.(i)) miss) in
    Array.iteri
      (fun k i ->
        let hit, d = res.(k) in
        if hit then t.stats.store_hits <- t.stats.store_hits + 1
        else t.stats.misses <- t.stats.misses + 1;
        Hashtbl.replace t.memo (tag, blocks.(i)) (versions.(i), d);
        out.(i) <- d)
      miss
  | None ->
    let ds = Algo.digest_many algo (Array.map (fun i -> contents.(i)) miss) in
    Array.iteri
      (fun k i ->
        t.stats.misses <- t.stats.misses + 1;
        Hashtbl.replace t.memo (tag, blocks.(i)) (versions.(i), ds.(k));
        out.(i) <- ds.(k))
      miss);
  out

let requests stats = stats.hits + stats.store_hits + stats.misses
