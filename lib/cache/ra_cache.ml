open Ra_crypto

let algo_tag = function
  | Algo.SHA_256 -> 0
  | Algo.SHA_512 -> 1
  | Algo.BLAKE2b -> 2
  | Algo.BLAKE2s -> 3

type stats = {
  mutable hits : int;
  mutable store_hits : int;
  mutable misses : int;
}

module Store = struct
  (* Content-addressed digest store shared across devices (and with the
     verifier side). Keys are (algo, content); OCaml's polymorphic hash
     fully mixes short strings and full structural equality resolves any
     bucket collision, so two distinct contents can never share a digest.

     The digest is computed INSIDE the critical section: when several
     domains race on the same fresh content, exactly one computes it and
     the rest observe a hit. That makes [computed] (and therefore every
     hit/miss count derived from it) deterministic under any --jobs. *)
  type t = {
    table : (int * string, Bytes.t) Hashtbl.t;
    mutex : Mutex.t;
    mutable lookups : int;
    mutable computed : int;
  }

  let create () =
    { table = Hashtbl.create 256; mutex = Mutex.create (); lookups = 0; computed = 0 }

  (* [content] is borrowed: probed with a zero-copy string view, copied
     into the table only the first time it is seen. The returned digest is
     shared — callers must treat it as immutable.
     bounds: unsafe_to_string is an ownership cast, not an access — the
     view lives only for the probe, inside the lock, and is never stored.
     cross-check: test/test_cache.ml qcheck-diffs cached digests against
     uncached Algo.digest under adversarial write schedules. *)
  let digest t algo content =
    Mutex.lock t.mutex;
    t.lookups <- t.lookups + 1;
    let tag = algo_tag algo in
    let result =
      match Hashtbl.find_opt t.table (tag, Bytes.unsafe_to_string content) with
      | Some d -> (true, d)
      | None ->
        let d = Algo.digest algo content in
        t.computed <- t.computed + 1;
        Hashtbl.replace t.table (tag, Bytes.to_string content) d;
        (false, d)
    in
    Mutex.unlock t.mutex;
    result

  let lookups t =
    Mutex.lock t.mutex;
    let n = t.lookups in
    Mutex.unlock t.mutex;
    n

  let computed t =
    Mutex.lock t.mutex;
    let n = t.computed in
    Mutex.unlock t.mutex;
    n

  let distinct_contents t =
    Mutex.lock t.mutex;
    let n = Hashtbl.length t.table in
    Mutex.unlock t.mutex;
    n
end

(* Per-device memo: (algo, block) -> (version, digest). One entry per
   block and algorithm — re-measuring an unchanged block is a pure table
   hit with no byte comparison, because Memory guarantees equal versions
   imply identical bytes. A stale version falls through to the shared
   store (if any) and the entry is replaced. *)
type t = {
  memo : (int * int, int * Bytes.t) Hashtbl.t;
  store : Store.t option;
  stats : stats;
}

let create ?store () =
  {
    memo = Hashtbl.create 64;
    store;
    stats = { hits = 0; store_hits = 0; misses = 0 };
  }

let store t = t.store

let stats t = t.stats

let block_digest t algo ~block ~version content =
  let key = (algo_tag algo, block) in
  match Hashtbl.find_opt t.memo key with
  | Some (v, d) when v = version ->
    t.stats.hits <- t.stats.hits + 1;
    d
  | _ ->
    let d =
      match t.store with
      | Some s ->
        let hit, d = Store.digest s algo content in
        if hit then t.stats.store_hits <- t.stats.store_hits + 1
        else t.stats.misses <- t.stats.misses + 1;
        d
      | None ->
        t.stats.misses <- t.stats.misses + 1;
        Algo.digest algo content
    in
    Hashtbl.replace t.memo key (version, d);
    d

let requests stats = stats.hits + stats.store_hits + stats.misses
