(* Summary-based interprocedural analysis for the L (lock discipline) and
   O (protocol order) rule families (DESIGN.md §14).

   Each function body is walked once per fixpoint round by a small
   abstract interpreter whose state is the multiset of currently-held
   lock classes plus a journal phase (none / appended / committed).
   Branches fork the state and join conservatively: held locks join by
   union (a lock held on SOME path counts as held), the journal phase by
   minimum (an Ack is only safe if EVERY path journaled first), and
   diverging branches (raise / failwith / exit) drop out of the join.
   Lambda literals are walked where they appear, joined as "runs zero or
   more times at this program point" — which is exactly how the repo uses
   them (iterators under a held stripe lock).

   Per-function summaries — lock classes transitively acquired, a
   blocking-call witness, kernel-digest reachability while unlocked, the
   guaranteed journal effect — feed back into callers on the next round;
   the lattices are finite and grow monotonically, so the fixpoint
   terminates in a handful of rounds. Findings are emitted in a final
   pass over the converged summaries. *)

type raw = {
  r_rule : string;
  r_file : string;
  r_loc : Location.t;
  r_token : string;
  r_msg : string;
}

type options = {
  o_core : string list; (* file prefixes where O1 (journal-before-Ack) applies *)
  digest_guard : (string * string) list;
      (* (file prefix, submodule name): where kernel digests must happen
         under a held lock (rule L4) *)
}

let default_options =
  { o_core = [ "lib/server/core.ml" ]; digest_guard = [ ("lib/cache/", "Store") ] }

type jeff = J_id | J_appended | J_committed

type info = {
  fn : Callgraph.func;
  mutable acquires : string list; (* sorted distinct lock classes, transitive *)
  mutable order : (string * string * Location.t) list; (* held before acquired *)
  mutable blocking : string option; (* witness token, transitive *)
  mutable digest_unlocked : (string * Location.t) option;
      (* witness: a kernel digest reachable from entry with no lock held *)
  mutable jeff : jeff; (* guaranteed journal effect on every non-diverging path *)
}

let prefix_matches prefixes file =
  List.exists
    (fun p ->
      String.length p <= String.length file && String.sub file 0 (String.length p) = p)
    prefixes

let in_digest_guard options (f : Callgraph.func) =
  List.exists
    (fun (prefix, submodule) ->
      prefix_matches [ prefix ] f.Callgraph.fn_file
      && List.mem submodule f.Callgraph.scope)
    options.digest_guard

(* --- classification helpers ---------------------------------------------- *)

let last = function [] -> "" | l -> List.nth l (List.length l - 1)

(* The lock class of `Mutex.lock E`: the file plus the innermost name of
   the lock expression, so every stripe of lib/cache's store shares one
   class ("…ra_cache.ml:mutex") that is distinct from the pool mutex of
   lib/parallel. *)
let lock_class ~file arg =
  let name =
    match Callgraph.access_path arg with
    | Some p when p <> [] -> last p
    | _ -> "_lock"
  in
  file ^ ":" ^ name

let crypto_kernel_modules =
  [ "Algo"; "Sha256"; "Sha512"; "Blake2b"; "Blake2s"; "Sha256_multi"; "Checked" ]

let kernel_names = [ "digest"; "digest_many"; "digest_bytes" ]

(* A call that actually hashes bytes: resolved into lib/crypto, or (for
   unresolved fixtures) a token like Algo.digest_many. *)
let is_digest_kernel ~resolved expanded =
  match resolved with
  | Some (g : Callgraph.func) ->
    prefix_matches [ "lib/crypto/" ] g.Callgraph.fn_file
    && List.mem g.Callgraph.fn_name kernel_names
  | None ->
    List.mem (last expanded) kernel_names
    && List.exists (fun m -> List.mem m crypto_kernel_modules) expanded

(* Calls that can block the holder of a lock: live syscalls (minus pure
   clock reads, which are D2's business and harmless under a lock),
   fsyncs through the Disk abstraction, and joining a domain. *)
let is_blocking ~resolved:_ expanded =
  match expanded with
  | "Unix" :: rest -> rest <> [ "gettimeofday" ] && rest <> [ "time" ]
  | [ "Domain"; "join" ] -> true
  | p ->
    let l = last p in
    l = "fsync" || l = "sync_dir" || (l = "sync" && List.mem "Disk" p)

(* Journal-module operations, matched on the alias-expanded path so that
   `module J = Ra_journal.Journal` call sites count. *)
let journal_op expanded =
  if List.mem "Journal" expanded then
    match last expanded with
    | ("append" | "commit" | "restart") as op -> Some op
    | _ -> None
  else None

let diverging_calls = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "exit" ]

(* --- abstract state ------------------------------------------------------ *)

type st = { held : string list; j : int (* 0 none, 1 appended, 2 committed *) }

let entry_state = { held = []; j = 0 }

let union a b = List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) a b

(* Join of branch exits; [None] marks a diverging branch. *)
let join a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some { held = union a.held b.held; j = min a.j b.j }

(* Immediate sub-expressions, for constructs the walker has no special
   case for: one level of the default traversal with a non-recursing
   collector. *)
let sub_expressions e =
  let acc = ref [] in
  let it =
    { Ast_iterator.default_iterator with expr = (fun _ x -> acc := x :: !acc) }
  in
  Ast_iterator.default_iterator.expr it e;
  List.rev !acc

(* --- the interpreter ----------------------------------------------------- *)

type pass = {
  options : options;
  cg : Callgraph.t;
  infos : (string, info) Hashtbl.t;
  mutable emit : raw list; (* only filled during the final pass *)
  mutable emitting : bool;
  mutable edges : (string * string) list; (* caller -> resolved callee *)
  (* facts accumulated for the CURRENT function's summary *)
  mutable cur : info;
}

let add_raw p rule loc token msg =
  if p.emitting then
    p.emit <-
      { r_rule = rule; r_file = p.cur.fn.Callgraph.fn_file; r_loc = loc;
        r_token = token; r_msg = msg }
      :: p.emit

let note_acquire p cls = p.cur.acquires <- union p.cur.acquires [ cls ]

let note_order p held cls loc =
  List.iter
    (fun h ->
      if h <> cls
         && not (List.exists (fun (a, b, _) -> a = h && b = cls) p.cur.order)
      then p.cur.order <- (h, cls, loc) :: p.cur.order)
    held

let note_blocking p token =
  if p.cur.blocking = None then p.cur.blocking <- Some token

let note_digest_unlocked p token loc =
  if p.cur.digest_unlocked = None then p.cur.digest_unlocked <- Some (token, loc)

let remove_one x l =
  let rec go = function
    | [] -> []
    | y :: rest -> if y = x then rest else y :: go rest
  in
  go l

let scope p = p.cur.fn.Callgraph.scope
let file p = p.cur.fn.Callgraph.fn_file

let in_o_core p = prefix_matches p.options.o_core (file p)

(* Process one call site. [args] are the labelled arguments of the
   application (already walked); returns the state after the call. *)
let apply_call p st ~loc ~path ~args =
  let token = Callgraph.token_of_path path in
  let expanded = Callgraph.expand_alias p.cg ~scope:(scope p) path in
  let resolved = Callgraph.resolve p.cg ~scope:(scope p) path in
  (match resolved with
  | Some g -> p.edges <- (p.cur.fn.Callgraph.qname, g.Callgraph.qname) :: p.edges
  | None -> ());
  match expanded with
  | [ "Mutex"; "lock" ] ->
    let cls =
      match args with
      | (_, arg) :: _ -> lock_class ~file:(file p) arg
      | [] -> file p ^ ":_lock"
    in
    if List.mem cls st.held then
      add_raw p "L1" loc token
        (Printf.sprintf
           "double acquire of lock class %s: this path already holds it, so \
            a second Mutex.lock self-deadlocks the domain"
           cls);
    note_acquire p cls;
    note_order p st.held cls loc;
    { st with held = cls :: st.held }
  | [ "Mutex"; "unlock" ] ->
    let cls =
      match args with
      | (_, arg) :: _ -> lock_class ~file:(file p) arg
      | [] -> file p ^ ":_lock"
    in
    { st with held = remove_one cls st.held }
  | _ ->
    (* journal phase *)
    let st =
      match journal_op expanded with
      | Some "append" -> { st with j = 1 }
      | Some "commit" -> { st with j = (if st.j >= 1 then 2 else st.j) }
      | Some "restart" ->
        let has_validate =
          List.exists
            (fun (lbl, _) ->
              match lbl with
              | Asttypes.Labelled "validate" | Asttypes.Optional "validate" ->
                true
              | _ -> false)
            args
        in
        if not has_validate then
          add_raw p "O2" loc token
            "Journal.restart without ~validate: recovery must check the \
             journal's consistency point before resuming, or a truncated \
             log silently resumes from a state the fleet never reached";
        st
      | _ -> st
    in
    (* blocking *)
    if is_blocking ~resolved expanded then begin
      note_blocking p token;
      if st.held <> [] then
        add_raw p "L3" loc token
          (Printf.sprintf
             "blocking call %s while holding lock class %s: a stalled \
              syscall under a lock stalls every domain contending for it"
             token (String.concat ", " st.held))
    end;
    (* kernel digests under the store guard *)
    if is_digest_kernel ~resolved expanded then begin
      if st.held = [] then note_digest_unlocked p token loc
    end;
    (* summaries of resolved callees *)
    (match resolved with
    | None -> st
    | Some g -> (
      match Hashtbl.find_opt p.infos g.Callgraph.qname with
      | None -> st
      | Some gi ->
        List.iter
          (fun h ->
            if List.mem h gi.acquires then
              add_raw p "L1" loc token
                (Printf.sprintf
                   "call to %s while holding lock class %s, which it may \
                    acquire again (via %s): self-deadlock on re-entry"
                   token h g.Callgraph.qname))
          st.held;
        (* order pairs across the call: held here, acquired in callee *)
        List.iter
          (fun a -> if not (List.mem a st.held) then note_order p st.held a loc)
          gi.acquires;
        (match gi.blocking with
        | Some w ->
          if st.held <> [] then
            add_raw p "L3" loc token
              (Printf.sprintf
                 "call to %s while holding lock class %s blocks (via %s): a \
                  stalled syscall under a lock stalls every contender"
                 token (String.concat ", " st.held) w);
          note_blocking p ("via " ^ g.Callgraph.qname)
        | None -> ());
        (* kernel reachability for L4: calling a function that can reach a
           digest kernel without acquiring a lock on the way, while not
           holding one here, leaves the kernel unguarded *)
        (if gi.digest_unlocked <> None && st.held = [] then
           note_digest_unlocked p ("via " ^ token) loc);
        let st =
          match gi.jeff with
          | J_id -> st
          | J_appended -> { st with j = 1 }
          | J_committed -> { st with j = 2 }
        in
        st))

(* Walk an expression; returns the exit state, or [None] if every path
   diverges. *)
let rec walk p st e =
  let open Parsetree in
  match e.pexp_desc with
  | Pexp_sequence (a, b) -> (
    match walk p st a with None -> None | Some st -> walk p st b)
  | Pexp_let (_, vbs, body) ->
    let st =
      List.fold_left
        (fun st vb ->
          match st with
          | None -> None
          | Some st -> walk p st vb.pvb_expr)
        (Some st) vbs
    in
    (match st with None -> None | Some st -> walk p st body)
  | Pexp_ifthenelse (c, t, f) -> (
    match walk p st c with
    | None -> None
    | Some st ->
      let a = walk p st t in
      let b = match f with Some f -> walk p st f | None -> Some st in
      join a b)
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) -> (
    match walk p st scrut with
    | None -> None
    | Some st ->
      List.fold_left
        (fun acc case ->
          (match case.pc_guard with
          | Some g -> ignore (walk p st g)
          | None -> ());
          join acc (walk p st case.pc_rhs))
        None cases)
  | Pexp_while (c, body) ->
    ignore (walk p st c);
    join (Some st) (walk p st body)
  | Pexp_for (_, lo, hi, _, body) -> (
    match walk p st lo with
    | None -> None
    | Some st -> (
      match walk p st hi with
      | None -> None
      | Some st -> join (Some st) (walk p st body)))
  | Pexp_fun (_, default, _, body) ->
    (match default with Some d -> ignore (walk p st d) | None -> ());
    (* a lambda literal: its body runs zero or more times wherever the
       value is used; effects join at the definition point *)
    join (Some st) (walk p st body)
  | Pexp_function cases ->
    List.iter (fun case -> ignore (walk p st case.pc_rhs)) cases;
    Some st
  | Pexp_construct ({ txt; _ }, arg) ->
    let st =
      match arg with
      | Some a -> walk p st a
      | None -> Some st
    in
    (match st with
    | Some st when in_o_core p && last (Longident.flatten txt) = "Ack" ->
      if st.j < 2 then
        add_raw p "O1" e.pexp_loc
          (Callgraph.token_of_path (Longident.flatten txt))
          (if st.j = 0 then
             "Ack emitted on a path with no journal append: a client that \
              acts on this Ack loses the report to a kill -9 — append and \
              commit to the journal first"
           else
             "Ack emitted after journal append but before commit: the \
              record is not durable until Journal.commit runs");
      Some st
    | st -> st)
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
    ->
    None
  | Pexp_apply (fn, args) -> (
    match Callgraph.access_path fn with
    | Some [ op ] when op = "|>" || op = "@@" -> (
      (* a |> f  /  f @@ a: rewrite to the direct application *)
      match args with
      | [ (_, a); (_, b) ] ->
        let f, x = if op = "|>" then (b, a) else (a, b) in
        walk_pipe p st ~f ~x
      | _ -> walk_default p st e)
    | Some path when List.length path = 1 && List.mem (List.hd path) diverging_calls
      ->
      List.iter (fun (_, a) -> ignore (walk p st a)) args;
      None
    | Some path ->
      let st =
        List.fold_left
          (fun st (_, a) ->
            match st with None -> None | Some st -> walk p st a)
          (Some st) args
      in
      (match st with
      | None -> None
      | Some st -> Some (apply_call p st ~loc:e.pexp_loc ~path ~args))
    | None -> walk_default p st e)
  | _ -> walk_default p st e

and walk_pipe p st ~f ~x =
  match walk p st x with
  | None -> None
  | Some st -> (
    match Callgraph.access_path f with
    | Some path -> Some (apply_call p st ~loc:f.Parsetree.pexp_loc ~path ~args:[])
    | None -> walk p st f)

and walk_default p st e =
  List.fold_left
    (fun st sub -> match st with None -> None | Some st -> walk p st sub)
    (Some st) (sub_expressions e)

(* --- fixpoint ------------------------------------------------------------ *)

(* The binding's own fun chain is the function, not a lambda literal:
   peel it before walking, or the Pexp_fun "runs zero or more times" join
   would erase every function's guaranteed effects. *)
let rec peel_funs e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (_, _, _, body) -> peel_funs body
  | Parsetree.Pexp_constraint (e, _) | Parsetree.Pexp_newtype (_, e) ->
    peel_funs e
  | _ -> e

let fresh_info fn =
  {
    fn;
    acquires = [];
    order = [];
    blocking = None;
    digest_unlocked = None;
    jeff = J_id;
  }

let analyze_function p info =
  let before =
    (List.sort compare info.acquires, info.blocking <> None,
     info.digest_unlocked <> None, info.jeff, List.length info.order)
  in
  info.acquires <- [];
  info.order <- [];
  info.blocking <- None;
  info.digest_unlocked <- None;
  p.cur <- info;
  let exit = walk p entry_state (peel_funs info.fn.Callgraph.body) in
  info.jeff <-
    (match exit with
    | Some { j = 2; _ } -> J_committed
    | Some { j = 1; _ } -> J_appended
    | _ -> J_id);
  let after =
    (List.sort compare info.acquires, info.blocking <> None,
     info.digest_unlocked <> None, info.jeff, List.length info.order)
  in
  before <> after

let run ?(options = default_options) cg =
  let funcs = Callgraph.functions cg in
  let infos = Hashtbl.create 256 in
  List.iter
    (fun f -> Hashtbl.replace infos f.Callgraph.qname (fresh_info f))
    funcs;
  match funcs with
  | [] -> ([], infos)
  | f0 :: _ ->
  let p =
    { options; cg; infos; emit = []; emitting = false; edges = [];
      cur = fresh_info f0 }
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    List.iter
      (fun f ->
        let info = Hashtbl.find infos f.Callgraph.qname in
        if analyze_function p info then changed := true)
      funcs
  done;
  (* final pass: emit site findings with converged callee summaries *)
  p.emitting <- true;
  p.edges <- [];
  List.iter
    (fun f -> ignore (analyze_function p (Hashtbl.find infos f.Callgraph.qname)))
    funcs;
  (* L4: kernel digest reachable unguarded from an entry point of a
     digest-guard scope. Entry point: reachable from outside the scope,
     or not called from inside it (public surface). *)
  let in_scope qname =
    match Hashtbl.find_opt infos qname with
    | Some i -> in_digest_guard options i.fn
    | None -> false
  in
  let by_qname =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun q i acc -> (q, i) :: acc) infos [])
  in
  List.iter
    (fun (qname, info) ->
      if in_digest_guard options info.fn then
        match info.digest_unlocked with
        | Some (token, loc) ->
          let callers =
            List.filter_map
              (fun (a, b) -> if b = qname then Some a else None)
              p.edges
          in
          let inside = List.filter in_scope callers in
          let outside = List.filter (fun c -> not (in_scope c)) callers in
          if outside <> [] || inside = [] then
            p.emit <-
              {
                r_rule = "L4";
                r_file = info.fn.Callgraph.fn_file;
                r_loc = loc;
                r_token = token;
                r_msg =
                  Printf.sprintf
                    "digest computation (%s) reachable from %s with no \
                     stripe lock held: the compute-inside-the-lock \
                     discipline is what makes store counters deterministic \
                     under any --jobs — hash inside the critical section"
                    token info.fn.Callgraph.qname;
              }
              :: p.emit
        | None -> ())
    by_qname;
  (* L2: lock-order inversion — (a before b) somewhere and (b before a)
     somewhere else. Reported at the lexicographically-first direction's
     witness so the finding is deterministic. *)
  let all_pairs =
    List.sort
      (fun (qa, _, (a1, b1, _)) (qb, _, (a2, b2, _)) ->
        compare (qa, a1, b1) (qb, a2, b2))
      (Hashtbl.fold
         (fun q info acc ->
           List.map (fun o -> (q, info.fn.Callgraph.fn_file, o)) info.order @ acc)
         infos [])
  in
  List.iter
    (fun (_, file, (a, b, loc)) ->
      if a < b
         && List.exists (fun (_, _, (x, y, _)) -> x = b && y = a) all_pairs
      then
        p.emit <-
          {
            r_rule = "L2";
            r_file = file;
            r_loc = loc;
            r_token = Printf.sprintf "%s<%s" a b;
            r_msg =
              Printf.sprintf
                "lock-order inversion: %s is acquired while holding %s here, \
                 and the opposite order exists elsewhere in the program — \
                 two domains taking the two paths deadlock"
                b a;
          }
          :: p.emit)
    all_pairs;
  (p.emit, infos)

(* --- debug dump ----------------------------------------------------------- *)

let dump_info (info : info) =
  let locks =
    match info.acquires with
    | [] -> "-"
    | l -> String.concat "," (List.sort compare l)
  in
  Printf.sprintf "%-44s locks=%s%s%s journal=%s" info.fn.Callgraph.qname locks
    (match info.blocking with Some w -> " blocking=" ^ w | None -> "")
    (match info.digest_unlocked with
    | Some (w, _) -> " digest-unlocked=" ^ w
    | None -> "")
    (match info.jeff with
    | J_id -> "id"
    | J_appended -> "appended"
    | J_committed -> "committed")
