(** Project-specific static analysis over the repo's own sources (see
    DESIGN.md §10). Parses with compiler-libs and enforces the invariants
    the simulator otherwise only checks dynamically:

    - {b D determinism}: D1 global-PRNG [Random], D2 wall-clock reads
      outside the benchmark allowlist, D3 [Hashtbl] iteration order
      escaping without a sort at the site.
    - {b P parallel-safety}: P1 [Domain]/[Mutex]/[Atomic]/... outside
      [lib/parallel] + [lib/cache], P2 module-level mutable state in code
      reachable from [Ra_parallel] task closures, P3 [Unix] syscalls
      outside the socket shell ([lib/server/tcp.ml]) and the journal's
      file backend ([lib/journal/disk.ml]) — wall-clock reads are D2's,
      everything else [Unix] is P3's.
    - {b U unsafe audit}: U1 [unsafe_*] access in a function without a
      [(* bounds: ... *)] justification, U2 an unsafe-using module without
      a [(* cross-check: ... *)] naming its reference implementation.
    - {b I interface hygiene}: I1 [lib/**.ml] without a matching [.mli]
      (module-type-only files exempt).

    On top of the per-file walker, {!Program} runs a summary-based
    interprocedural analysis (DESIGN.md §14) with three more families:

    - {b L lock discipline}: L1 double acquire (direct or through a
      callee), L2 lock-order inversion program-wide, L3 blocking calls
      ([Unix.*], fsync, [Domain.join]) while holding a lock, L4 kernel
      digest computation reachable outside the owning stripe lock.
    - {b O protocol order}: O1 every Ack-emitting path in the verifier
      [Core] journals (append {e and} commit) first, O2 every
      [Journal.restart] caller passes [~validate].
    - {b C secret flow}: C1 early-exit comparisons ([=], [compare],
      [Bytes.equal], …) on values carrying key/MAC taint, C2 secrets
      formatted into exceptions or logs.

    Checks are syntactic and conservative. A site can be waived in-source
    with [(* ralint: allow <RULE> — reason *)] (for L/O/C the waiver must
    sit on or directly above the flagged line), or accepted into the
    committed ratchet baseline ([LINT_BASELINE.json]): baselined findings
    keep passing, new ones fail, fixed ones are reported as drift. *)

type finding = {
  rule : string;  (** e.g. ["D3"] *)
  file : string;  (** repo-relative path *)
  line : int;
  col : int;
  fingerprint : string;
      (** stable across pure line moves: rule + file + flagged token +
          per-file occurrence index *)
  message : string;
}

type config = {
  time_allowlist : string list;
  parallel_allowlist : string list;
  interface_allowlist : string list;
  unix_allowlist : string list;
      (** path prefixes where [Unix] syscalls are the point (rule P3):
          the socket shell, the journal's file backend, and the
          fork-driven real-socket tests in [test/test_server.ml] *)
  p2_paths : string list option;
      (** [None]: P2 applies everywhere outside [parallel_allowlist];
          [Some prefixes]: only under these (the reachable set from
          {!Reach.parallel_reachable}) *)
  comment_reach : int;
      (** lines above a binding an attaching comment may end (default 3) *)
  o_core_paths : string list;
      (** files whose Ack constructions O1 holds to journal-then-commit *)
  digest_guard : (string * string) list;
      (** (file prefix, submodule): kernel digests must run under a held
          lock there (rule L4) *)
  c_paths : string list;
      (** path prefixes where secret-flow findings (C1/C2) are reported *)
  secret_tag_paths : string list;
      (** where the name ["tag"] seeds taint (a MAC tag, not a record tag) *)
}

val default_config : config

exception Lint_parse_error of string * int
(** Message and line; raised when a linted file does not parse. *)

val lint_source : ?config:config -> file:string -> string -> finding list
(** Run rule families D, P and U over one implementation source. [file] is
    the repo-relative path used for allowlists and fingerprints. Findings
    are in (line, column) order. Not reentrant: compiler-libs keeps lexer
    comment state globally. *)

val check_interface :
  ?config:config -> file:string -> mli_exists:bool -> string -> finding list
(** Rule I for one [.ml] source: empty when [mli_exists], when the file is
    allowlisted, or when the structure is module-type-only. *)

(** {1 Baseline ratchet} *)

type baseline_entry = { b_rule : string; b_file : string; b_fingerprint : string }

val baseline_to_json : baseline_entry list -> string

val baseline_of_json : string -> baseline_entry list
(** Raises [Ra_experiments.Benchkit.Parse_error] on malformed input.
    [baseline_of_json (baseline_to_json b) = b] — property-tested in
    [test/test_lint.ml]. *)

val entry_of_finding : finding -> baseline_entry

type verdict = New | Baselined

type report = {
  findings : (finding * verdict) list;
  stale : baseline_entry list;
      (** accepted sites that no longer fire — ratchet can tighten *)
}

val diff : baseline:baseline_entry list -> finding list -> report

val new_findings : report -> finding list
(** The findings that must fail the run (not covered by the baseline). *)

val render_human : report -> string

val render_json : report -> string

(** {1 Interprocedural analysis (families L, O, C)} *)

module Program : sig
  type t

  val load : (string * string) list -> t
  (** [(file, source)] pairs. Sources that do not parse are skipped (the
      per-file pass reports those). Not reentrant, like {!lint_source}. *)

  val analyze : ?config:config -> t -> finding list
  (** Fixpoint over the call graph, then the L/O/C rules. Findings carry
      the same occurrence-indexed fingerprints as the per-file pass and
      honour near-site [(* ralint: allow ... *)] waivers. *)

  val summaries : ?config:config -> t -> string
  (** Debug dump: one line per function with its converged lock/journal
      summary, plus a taint line where taint is non-trivial. *)
end

(** {1 Rule P2 scope} *)

module Reach : sig
  val parallel_reachable : root:string -> string list
  (** Directory prefixes (["lib/<d>/"]) of every library whose code a
      [Ra_parallel] task closure can run: libraries that mention
      [Ra_parallel] plus their transitive dune dependencies, computed
      from [lib/*/dune]. *)
end
