(* Secret-flow analysis for the C rule family: name-seeded key/MAC taint
   propagated through byte plumbing and call summaries to fixpoint; sinks
   are early-exit comparisons (C1) and exception/log formatting (C2).
   DESIGN.md §14. *)

module IntSet : Set.S with type elt = int

type options = {
  c_paths : string list; (* file prefixes where C findings are reported *)
  secret_tag_paths : string list; (* where "tag" names a MAC tag *)
}

val default_options : options

type tinfo = {
  fn : Callgraph.func;
  mutable ret_always : bool;
  mutable ret_deps : IntSet.t;
  mutable cmp_deps : IntSet.t;
}

val run :
  ?options:options -> Callgraph.t -> Summary.raw list * (string, tinfo) Hashtbl.t

val dump_tinfo : tinfo -> string
