(* Program representation for the interprocedural ralint passes: parsed
   units, a table of structure-level functions under qualified names, and
   alias-aware resolution of call-site ident paths (DESIGN.md §14). *)

exception Parse_error of string * int (* message, line *)

type unit_info = {
  u_file : string;
  u_modname : string;
  u_structure : Parsetree.structure;
  u_comments : (string * Location.t) list;
}

type func = {
  qname : string; (* dotted scope + name, e.g. "Ra_cache.Store.digest" *)
  fn_file : string;
  fn_name : string;
  scope : string list; (* enclosing module path, head = unit module *)
  params : string list; (* value parameters in order; "_" for non-vars *)
  body : Parsetree.expression;
  floc : Location.t;
}

type t

(* Parse one implementation; not reentrant (compiler-libs lexer state is
   global), so parse one file at a time. Raises [Parse_error]. *)
val parse :
  file:string -> string -> Parsetree.structure * (string * Location.t) list

val modname_of_file : string -> string
val unit_of_source : file:string -> string -> unit_info
val build : unit_info list -> t

(* Expand a leading `module A = B.C` alias visible from [scope]. *)
val expand_alias : t -> scope:string list -> string list -> string list

val resolve : t -> scope:string list -> string list -> func option
val functions : t -> func list
val find : t -> string -> func option
val token_of_path : string list -> string

(* The dotted path of an ident or field-access chain, if the expression
   is one: `disk.Disk.sync` -> Some ["disk"; "Disk"; "sync"]. *)
val access_path : Parsetree.expression -> string list option
