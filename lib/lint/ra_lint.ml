(* Project-specific static analysis over the repo's own sources, in the
   spirit of VRASED's "establish RA guarantees statically": the invariants
   the simulator otherwise only observes dynamically — bit-identical
   results under any --jobs, deterministic event ordering, audited
   unsafe_* hot loops — are checked here against the Parsetree before a
   single event fires. Parsing uses compiler-libs.common (ships with the
   compiler), so the linter adds no external dependency.

   Rule families (see DESIGN.md §10):
     D determinism     D1 global-PRNG Random, D2 wall-clock time,
                       D3 Hashtbl iteration order escaping unsorted,
                       D4 self-seeding (Random.self_init and friends)
     P parallel-safety P1 Domain/Mutex/Atomic outside lib/parallel + lib/cache,
                       P2 module-level mutable state reachable from tasks
     U unsafe audit    U1 unsafe_* site without a (* bounds: ... *) comment,
                       U2 unsafe-using module without a (* cross-check: ... *)
     I interface       I1 lib/**.ml without a matching .mli
   Findings are syntactic and conservative; a human can waive a site with
   an in-source (* ralint: allow <RULE> — reason *) comment, or accept it
   into the committed ratchet baseline (LINT_BASELINE.json). *)

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  fingerprint : string;
  message : string;
}

type config = {
  time_allowlist : string list;
      (* path prefixes (or exact files) where wall-clock reads are the point *)
  parallel_allowlist : string list;
      (* path prefixes allowed to touch Domain/Mutex/Atomic and to hold
         lock-guarded module state *)
  interface_allowlist : string list;
      (* .ml files excused from rule I even though they are not
         module-type-only *)
  unix_allowlist : string list;
      (* path prefixes allowed to make Unix syscalls: the socket shell and
         the journal's file backend; everything else must stay simulated *)
  p2_paths : string list option;
      (* None: rule P2 applies everywhere outside [parallel_allowlist];
         Some prefixes: only under these (the Ra_parallel-reachable set) *)
  comment_reach : int;
      (* how many lines above a binding an attaching comment may end *)
  o_core_paths : string list;
      (* files whose Ack constructions rule O1 holds to journal-then-commit *)
  digest_guard : (string * string) list;
      (* (file prefix, submodule): kernel digests must run under a held
         lock there (rule L4) *)
  c_paths : string list;
      (* path prefixes where secret-flow findings (C1/C2) are reported *)
  secret_tag_paths : string list;
      (* where the name "tag" seeds taint (a MAC tag, not a record tag) *)
}

let default_config =
  {
    time_allowlist =
      [
        "lib/experiments/benchkit.ml";
        "lib/experiments/fleet_roll.ml";
        "lib/server/tcp.ml";
        "bench/";
      ];
    parallel_allowlist = [ "lib/parallel/"; "lib/cache/" ];
    interface_allowlist = [ "lib/crypto/digest_intf.ml" ];
    unix_allowlist =
      [ "lib/server/tcp.ml"; "lib/journal/disk.ml"; "test/test_server.ml" ];
    p2_paths = None;
    comment_reach = 3;
    o_core_paths = [ "lib/server/core.ml" ];
    digest_guard = [ ("lib/cache/", "Store") ];
    c_paths = [ "lib/crypto/"; "lib/pk/"; "lib/server/" ];
    secret_tag_paths = [ "lib/crypto/"; "lib/pk/" ];
  }

let path_matches prefixes file =
  List.exists
    (fun p -> String.length p <= String.length file && String.sub file 0 (String.length p) = p)
    prefixes

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* --- source parsing ----------------------------------------------------- *)

exception Lint_parse_error of string * int (* message, line *)

(* Parse one implementation file, returning the structure and the comment
   list the lexer accumulated alongside it. Compiler-libs keeps comment
   state globally, so this is not reentrant — lint one file at a time. *)
let parse_with_comments ~file source =
  Lexer.init ();
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | str -> (str, Lexer.comments ())
  | exception Syntaxerr.Error err ->
    let loc = Syntaxerr.location_of_error err in
    raise (Lint_parse_error ("syntax error", loc.loc_start.pos_lnum))
  | exception Lexer.Error (_, loc) ->
    raise (Lint_parse_error ("lexer error", loc.loc_start.pos_lnum))

(* --- rule engine --------------------------------------------------------- *)

type raw = { r_rule : string; r_loc : Location.t; r_token : string; r_msg : string }

type ctx = {
  cfg : config;
  file : string;
  mutable raws : raw list;
  mutable binding : Location.t option; (* innermost structure-level binding *)
  mutable sort_depth : int;
  mutable unsafe_sites : (Location.t * Location.t option * string) list;
}

let sort_functions =
  [
    [ "List"; "sort" ];
    [ "List"; "stable_sort" ];
    [ "List"; "fast_sort" ];
    [ "List"; "sort_uniq" ];
    [ "Array"; "sort" ];
    [ "Array"; "stable_sort" ];
    [ "Array"; "fast_sort" ];
  ]

let parallel_modules = [ "Domain"; "Mutex"; "Atomic"; "Condition"; "Semaphore"; "Thread" ]

let raise_raw ctx rule loc token msg =
  ctx.raws <- { r_rule = rule; r_loc = loc; r_token = token; r_msg = msg } :: ctx.raws

let ident_path e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> Some (Longident.flatten txt)
  | _ -> None

let check_ident ctx path loc =
  let token = String.concat "." path in
  match path with
  (* D4 before D1: Random.self_init is also a Random.* use, but the
     self-seeding diagnosis is the actionable one (and it catches
     Random.State.make_self_init, which D1's two-component match misses) *)
  | _ when (match List.rev path with
           | ("self_init" | "make_self_init") :: _ -> true
           | _ -> false) ->
    raise_raw ctx "D4" loc token
      (Printf.sprintf
         "self-seeded PRNG %s: an ambient (time/device-entropy) seed makes \
          the run unreproducible and the journal unreplayable; every stream \
          must derive from an explicit recorded seed"
         token)
  | [ "Random"; _ ] ->
    raise_raw ctx "D1" loc token
      (Printf.sprintf
         "global-PRNG %s: ambient seed breaks run reproducibility; use \
          Ra_sim.Prng (or Random.State with an explicit seed)"
         token)
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
    if not (path_matches ctx.cfg.time_allowlist ctx.file) then
      raise_raw ctx "D2" loc token
        (Printf.sprintf
           "wall-clock read %s outside the benchmark allowlist: simulated \
            components must take time from Engine.now"
           token)
  (* after D2: time reads already have their own diagnosis; every other
     Unix value is a live syscall and belongs in the socket shell *)
  | "Unix" :: _ :: _ ->
    if not (path_matches ctx.cfg.unix_allowlist ctx.file) then
      raise_raw ctx "P3" loc token
        (Printf.sprintf
           "syscall %s outside lib/server/tcp.ml and the journal's file \
            backend: sockets, processes and file descriptors break the \
            deterministic-simulation contract — route I/O through the \
            Tcp shell or the Disk abstraction"
           token)
  | [ "Hashtbl"; "iter" ] ->
    raise_raw ctx "D3" loc token
      "Hashtbl.iter visits bindings in hash-bucket order; the iteration \
       order leaks into effects — iterate a sorted snapshot instead"
  | [ "Hashtbl"; "fold" ] ->
    if ctx.sort_depth = 0 then
      raise_raw ctx "D3" loc token
        "Hashtbl.fold result escapes without an explicit sort at the fold \
         site; bucket order would leak into digests/output"
  | _ when List.exists (fun c -> starts_with ~prefix:"unsafe_" c) path ->
    ctx.unsafe_sites <- (loc, ctx.binding, token) :: ctx.unsafe_sites
  | root :: _ :: _ when List.mem root parallel_modules ->
    if not (path_matches ctx.cfg.parallel_allowlist ctx.file) then
      raise_raw ctx "P1" loc token
        (Printf.sprintf
           "parallel primitive %s outside lib/parallel + lib/cache: task \
            closures must stay free of ad-hoc synchronisation so results \
            are bit-identical for any --jobs"
           token)
  | _ -> ()

(* Does [e] construct mutable state when evaluated at module init?
   Function bodies are skipped: state created per call is not shared.
   Returns a description of the first mutable constructor found. *)
let rec mutable_init e =
  let open Parsetree in
  match e.pexp_desc with
  | Pexp_array _ -> Some "array literal"
  | Pexp_apply (fn, args) -> (
    let from_args () =
      List.fold_left
        (fun acc (_, a) -> match acc with Some _ -> acc | None -> mutable_init a)
        None args
    in
    match ident_path fn with
    | Some [ "ref" ] -> Some "ref"
    | Some ([ ("Hashtbl" | "Queue" | "Stack" | "Buffer" | "Weak"); "create" ] as p)
    | Some ([ "Array"; ("make" | "create_float" | "init" | "make_matrix") ] as p)
    | Some ([ "Bytes"; ("make" | "create" | "init" | "of_string") ] as p) ->
      Some (String.concat "." p)
    | _ -> from_args ())
  | Pexp_tuple es -> List.fold_left
      (fun acc x -> match acc with Some _ -> acc | None -> mutable_init x) None es
  | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) -> mutable_init arg
  | Pexp_record (fields, base) ->
    let acc =
      List.fold_left
        (fun acc (_, x) -> match acc with Some _ -> acc | None -> mutable_init x)
        None fields
    in
    (match (acc, base) with Some _, _ -> acc | None, Some b -> mutable_init b | None, None -> None)
  | Pexp_let (_, vbs, body) ->
    let acc =
      List.fold_left
        (fun acc vb ->
          match acc with Some _ -> acc | None -> mutable_init vb.pvb_expr)
        None vbs
    in
    (match acc with Some _ -> acc | None -> mutable_init body)
  | Pexp_sequence (a, b) -> (
    match mutable_init a with Some d -> Some d | None -> mutable_init b)
  | Pexp_ifthenelse (_, t, f) -> (
    match mutable_init t with
    | Some d -> Some d
    | None -> ( match f with Some f -> mutable_init f | None -> None))
  | Pexp_constraint (x, _) | Pexp_coerce (x, _, _) | Pexp_open (_, x) -> mutable_init x
  | _ -> None

let binding_name vb =
  match vb.Parsetree.pvb_pat.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } -> txt
  | _ -> "_"

let make_iterator ctx =
  let open Ast_iterator in
  let p2_active =
    (not (path_matches ctx.cfg.parallel_allowlist ctx.file))
    &&
    match ctx.cfg.p2_paths with
    | None -> true
    | Some prefixes -> path_matches prefixes ctx.file
  in
  let expr it e =
    (match ident_path e with
    | Some path -> check_ident ctx path e.Parsetree.pexp_loc
    | None -> ());
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_apply (fn, args)
      when (match ident_path fn with
           | Some p -> List.mem p sort_functions
           | None -> false) ->
      it.expr it fn;
      ctx.sort_depth <- ctx.sort_depth + 1;
      List.iter (fun (_, a) -> it.expr it a) args;
      ctx.sort_depth <- ctx.sort_depth - 1
    | _ -> default_iterator.expr it e
  in
  let structure_item it item =
    match item.Parsetree.pstr_desc with
    | Parsetree.Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          (if p2_active then
             match mutable_init vb.Parsetree.pvb_expr with
             | Some desc ->
               raise_raw ctx "P2" vb.pvb_loc (binding_name vb)
                 (Printf.sprintf
                    "module-level mutable state `%s' (%s) is shared across \
                     domains once this module runs inside Ra_parallel tasks"
                    (binding_name vb) desc)
             | None -> ());
          let saved = ctx.binding in
          ctx.binding <- Some vb.Parsetree.pvb_loc;
          default_iterator.value_binding it vb;
          ctx.binding <- saved)
        vbs
    | _ -> default_iterator.structure_item it item
  in
  { default_iterator with expr; structure_item }

(* --- comments: bounds/cross-check attachment, suppressions -------------- *)

let comment_contains (text, _) needle =
  let tl = String.length text and nl = String.length needle in
  let rec scan i = i + nl <= tl && (String.sub text i nl = needle || scan (i + 1)) in
  nl > 0 && scan 0

let loc_lines (loc : Location.t) = (loc.loc_start.pos_lnum, loc.loc_end.pos_lnum)

(* A comment attaches to a range when it sits inside it, or ends within
   [reach] lines above its first line. *)
let attaches ~reach (cloc : Location.t) (start_line, end_line) =
  let cs, ce = loc_lines cloc in
  (cs >= start_line && ce <= end_line)
  || (ce < start_line && start_line - ce <= reach)

let has_attached_comment ~reach comments range needle =
  List.exists
    (fun ((_, cloc) as c) -> comment_contains c needle && attaches ~reach cloc range)
    comments

(* (* ralint: allow D3 P1 — reason *) — rule ids or whole families. *)
let suppression_rules (text, _) =
  let marker = "ralint: allow" in
  let tl = String.length text and ml = String.length marker in
  let rec find i =
    if i + ml > tl then None
    else if String.sub text i ml = marker then Some (i + ml)
    else find (i + 1)
  in
  match find 0 with
  | None -> []
  | Some start ->
    let is_sep c = c = ' ' || c = ',' || c = '\t' || c = '\n' in
    let rec words i acc cur =
      if i >= tl then List.rev (if cur = "" then acc else cur :: acc)
      else if is_sep text.[i] then
        words (i + 1) (if cur = "" then acc else cur :: acc) ""
      else words (i + 1) acc (cur ^ String.make 1 text.[i])
    in
    let rule_like w =
      (String.length w = 1 || String.length w = 2)
      && (match w.[0] with 'A' .. 'Z' -> true | _ -> false)
      && (String.length w = 1 || match w.[1] with '0' .. '9' -> true | _ -> false)
    in
    (* take leading rule-shaped words; the free-form reason follows *)
    let rec take = function
      | w :: rest when rule_like w -> w :: take rest
      | _ -> []
    in
    take (words start [] "")

let suppressed ~reach ~comments ~item_ranges finding =
  List.exists
    (fun ((_, cloc) as c) ->
      match suppression_rules c with
      | [] -> false
      | rules ->
        let attached =
          List.filter (fun range -> attaches ~reach cloc range) item_ranges
        in
        let covers =
          match attached with
          | [] ->
            let cs, ce = loc_lines cloc in
            finding.line >= cs && finding.line <= ce + 1
          | ranges ->
            List.exists (fun (s, e) -> finding.line >= s && finding.line <= e) ranges
        in
        covers
        && List.exists
             (fun r -> r = finding.rule || r = String.make 1 finding.rule.[0])
             rules)
    comments

(* --- fingerprints -------------------------------------------------------- *)

(* Stable across pure line moves: rule + file + flagged token + the
   occurrence index of that (rule, token) pair within the file. *)
let assign_fingerprints file findings =
  let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.map
    (fun (rule, loc, token, msg) ->
      let key = rule ^ ":" ^ token in
      let n = Option.value ~default:0 (Hashtbl.find_opt counts key) in
      Hashtbl.replace counts key (n + 1);
      let line, col =
        ( loc.Location.loc_start.pos_lnum,
          loc.Location.loc_start.pos_cnum - loc.Location.loc_start.pos_bol )
      in
      {
        rule;
        file;
        line;
        col;
        fingerprint = Printf.sprintf "%s:%s:%s#%d" rule file token n;
        message = msg;
      })
    findings

(* --- per-file entry point ------------------------------------------------ *)

let lint_source ?(config = default_config) ~file source =
  let str, comments = parse_with_comments ~file source in
  let ctx =
    { cfg = config; file; raws = []; binding = None; sort_depth = 0; unsafe_sites = [] }
  in
  let it = make_iterator ctx in
  it.Ast_iterator.structure it str;
  let reach = config.comment_reach in
  (* U1: every unsafe site's innermost structure-level binding must carry a
     bounds: comment. *)
  List.iter
    (fun (loc, binding, token) ->
      let justified =
        match binding with
        | None -> false
        | Some bloc ->
          has_attached_comment ~reach comments (loc_lines bloc) "bounds:"
      in
      if not justified then
        raise_raw ctx "U1" loc token
          (Printf.sprintf
             "unsafe access %s in a function without a (* bounds: ... *) \
              justification comment"
             token))
    ctx.unsafe_sites;
  (* U2: an unsafe-using module must name its reference cross-check. *)
  (match
     List.sort
       (fun (a, _, _) (b, _, _) ->
         compare a.Location.loc_start.pos_lnum b.Location.loc_start.pos_lnum)
       ctx.unsafe_sites
   with
  | (first_loc, _, _) :: _
    when not (List.exists (fun c -> comment_contains c "cross-check:") comments) ->
    raise_raw ctx "U2" first_loc (Filename.basename file)
      "module uses unsafe accesses but no (* cross-check: ... *) comment \
       names its Checked/qcheck reference implementation"
  | _ -> ());
  let item_ranges =
    List.map (fun item -> loc_lines item.Parsetree.pstr_loc) str
  in
  let ordered =
    List.sort
      (fun a b ->
        compare
          (a.r_loc.Location.loc_start.pos_lnum, a.r_loc.Location.loc_start.pos_cnum, a.r_rule)
          (b.r_loc.Location.loc_start.pos_lnum, b.r_loc.Location.loc_start.pos_cnum, b.r_rule))
      ctx.raws
  in
  assign_fingerprints file
    (List.map (fun r -> (r.r_rule, r.r_loc, r.r_token, r.r_msg)) ordered)
  |> List.filter (fun f -> not (suppressed ~reach ~comments ~item_ranges f))

(* --- rule I: interface hygiene ------------------------------------------- *)

(* A file whose structure holds only module types (plus attributes and
   docstrings) is its own interface; everything else under lib/ needs a
   matching .mli unless explicitly allowlisted. *)
let interface_only str =
  str <> []
  && List.for_all
       (fun item ->
         match item.Parsetree.pstr_desc with
         | Parsetree.Pstr_modtype _ | Parsetree.Pstr_attribute _ -> true
         | _ -> false)
       str

let check_interface ?(config = default_config) ~file ~mli_exists source =
  if path_matches config.interface_allowlist file || mli_exists then []
  else
    let str, _ = parse_with_comments ~file source in
    if interface_only str then []
    else
      [
        {
          rule = "I1";
          file;
          line = 1;
          col = 0;
          fingerprint = Printf.sprintf "I1:%s" file;
          message =
            Printf.sprintf
              "missing interface %s (module-type-only files are exempt; \
               allowlist deliberate omissions in the lint config)"
              (Filename.remove_extension (Filename.basename file) ^ ".mli");
        };
      ]

(* --- baseline ratchet ---------------------------------------------------- *)

type baseline_entry = { b_rule : string; b_file : string; b_fingerprint : string }

let baseline_schema = "ralint-baseline/1"

let baseline_to_json entries =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"schema\": \"%s\",\n  \"findings\": [" baseline_schema);
  List.iteri
    (fun i e ->
      Buffer.add_string buf (if i = 0 then "\n" else ",\n");
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"rule\": \"%s\", \"file\": \"%s\", \"fingerprint\": \"%s\"}"
           (Ra_experiments.Benchkit.escape_string e.b_rule)
           (Ra_experiments.Benchkit.escape_string e.b_file)
           (Ra_experiments.Benchkit.escape_string e.b_fingerprint)))
    entries;
  Buffer.add_string buf (if entries = [] then "]\n}\n" else "\n  ]\n}\n");
  Buffer.contents buf

let baseline_of_json text =
  let open Ra_experiments.Benchkit in
  let fail msg = raise (Parse_error msg) in
  let str = function J_string s -> s | _ -> fail "expected string" in
  match parse_json text with
  | J_object fields ->
    (match List.assoc_opt "schema" fields with
    | Some (J_string s) when s = baseline_schema -> ()
    | Some (J_string s) -> fail ("unknown baseline schema " ^ s)
    | _ -> fail "baseline missing schema");
    (match List.assoc_opt "findings" fields with
    | Some (J_array items) ->
      List.map
        (function
          | J_object f ->
            let get k =
              match List.assoc_opt k f with
              | Some v -> str v
              | None -> fail ("baseline entry missing " ^ k)
            in
            { b_rule = get "rule"; b_file = get "file"; b_fingerprint = get "fingerprint" }
          | _ -> fail "baseline entry must be an object")
        items
    | _ -> fail "baseline missing findings array")
  | _ -> fail "baseline top level must be an object"

let entry_of_finding f = { b_rule = f.rule; b_file = f.file; b_fingerprint = f.fingerprint }

type verdict = New | Baselined

type report = {
  findings : (finding * verdict) list; (* file/line order *)
  stale : baseline_entry list; (* accepted sites that no longer fire *)
}

let diff ~baseline findings =
  let fires fp = List.exists (fun f -> f.fingerprint = fp) findings in
  {
    findings =
      List.map
        (fun f ->
          let accepted =
            List.exists (fun b -> b.b_fingerprint = f.fingerprint) baseline
          in
          (f, if accepted then Baselined else New))
        findings;
    stale = List.filter (fun b -> not (fires b.b_fingerprint)) baseline;
  }

let new_findings report =
  List.filter_map (fun (f, v) -> if v = New then Some f else None) report.findings

(* --- rendering ----------------------------------------------------------- *)

let render_human report =
  let buf = Buffer.create 512 in
  List.iter
    (fun ((f : finding), v) ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d:%d: [%s]%s %s\n" f.file f.line f.col f.rule
           (match v with New -> "" | Baselined -> " (baselined)")
           f.message))
    report.findings;
  (* bench/compare.exe-style drift section: entries the ratchet still
     carries but that no longer fire — tighten the baseline. *)
  if report.stale <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "baseline drift: %d accepted finding(s) no longer fire:\n"
         (List.length report.stale));
    List.iter
      (fun b ->
        Buffer.add_string buf
          (Printf.sprintf "  %-32s baseline %-4s  current FIXED\n" b.b_file b.b_rule))
      report.stale;
    Buffer.add_string buf "re-ratchet with: ralint --update-baseline\n"
  end;
  let news = List.length (new_findings report) in
  let total = List.length report.findings in
  Buffer.add_string buf
    (if total = 0 && report.stale = [] then "ralint: clean (0 findings)\n"
     else
       Printf.sprintf "ralint: %d finding(s): %d new, %d baselined, %d stale baseline entr%s\n"
         total news (total - news)
         (List.length report.stale)
         (if List.length report.stale = 1 then "y" else "ies"));
  Buffer.contents buf

let render_json report =
  let esc = Ra_experiments.Benchkit.escape_string in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"schema\": \"ralint/1\",\n  \"findings\": [";
  List.iteri
    (fun i ((f : finding), v) ->
      Buffer.add_string buf (if i = 0 then "\n" else ",\n");
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": %d, \
            \"fingerprint\": \"%s\", \"status\": \"%s\", \"message\": \"%s\"}"
           (esc f.rule) (esc f.file) f.line f.col (esc f.fingerprint)
           (match v with New -> "new" | Baselined -> "baselined")
           (esc f.message)))
    report.findings;
  Buffer.add_string buf (if report.findings = [] then "],\n" else "\n  ],\n");
  Buffer.add_string buf "  \"stale\": [";
  List.iteri
    (fun i b ->
      Buffer.add_string buf (if i = 0 then "\n" else ",\n");
      Buffer.add_string buf
        (Printf.sprintf "    {\"rule\": \"%s\", \"file\": \"%s\", \"fingerprint\": \"%s\"}"
           (esc b.b_rule) (esc b.b_file) (esc b.b_fingerprint)))
    report.stale;
  Buffer.add_string buf (if report.stale = [] then "],\n" else "\n  ],\n");
  (* per-family counts, uploaded as Benchkit metrics by CI *)
  let families = [ "D"; "P"; "U"; "I"; "L"; "O"; "C"; "E" ] in
  let count fam =
    List.length
      (List.filter
         (fun ((f : finding), _) -> String.make 1 f.rule.[0] = fam)
         report.findings)
  in
  Buffer.add_string buf "  \"families\": {";
  List.iteri
    (fun i fam ->
      Buffer.add_string buf
        (Printf.sprintf "%s\"%s\": %d" (if i = 0 then "" else ", ") fam (count fam)))
    families;
  Buffer.add_string buf "},\n";
  let news = List.length (new_findings report) in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"summary\": {\"total\": %d, \"new\": %d, \"baselined\": %d, \"stale\": %d}\n}\n"
       (List.length report.findings)
       news
       (List.length report.findings - news)
       (List.length report.stale));
  Buffer.contents buf

(* --- Ra_parallel reachability (rule P2 scope) ---------------------------- *)

module Reach = struct
  (* Library-level over-approximation of "code a Ra_parallel task closure
     can run": libraries whose sources mention Ra_parallel submit tasks,
     and their closures can call anything in those libraries' transitive
     dune dependencies. Parsed from lib/*/dune with a token scanner —
     enough for this repo's flat (library (name ...) (libraries ...))
     stanzas. *)

  let tokenize text =
    let buf = Buffer.create 64 and out = ref [] in
    let flush () =
      if Buffer.length buf > 0 then begin
        out := Buffer.contents buf :: !out;
        Buffer.clear buf
      end
    in
    String.iter
      (fun c ->
        match c with
        | '(' | ')' ->
          flush ();
          out := String.make 1 c :: !out
        | ' ' | '\t' | '\n' | '\r' -> flush ()
        | c -> Buffer.add_char buf c)
      text;
    flush ();
    List.rev !out

  let read_text path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s

  (* (name, dir, deps) per library stanza found under [root]/lib/<d>/dune *)
  let libraries ~root =
    let lib_root = Filename.concat root "lib" in
    let dirs =
      if Sys.file_exists lib_root && Sys.is_directory lib_root then
        List.filter
          (fun d -> Sys.is_directory (Filename.concat lib_root d))
          (List.sort compare (Array.to_list (Sys.readdir lib_root)))
      else []
    in
    List.filter_map
      (fun d ->
        let dune = Filename.concat (Filename.concat lib_root d) "dune" in
        if not (Sys.file_exists dune) then None
        else
          let toks = tokenize (read_text dune) in
          let rec name = function
            | "name" :: n :: _ -> Some n
            | _ :: rest -> name rest
            | [] -> None
          in
          let rec deps = function
            | "libraries" :: rest ->
              let rec take acc = function
                | ")" :: _ | [] -> List.rev acc
                | t :: rest -> take (t :: acc) rest
              in
              take [] rest
            | _ :: rest -> deps rest
            | [] -> []
          in
          match name toks with
          | Some n -> Some (n, "lib/" ^ d ^ "/", deps toks)
          | None -> None)
      dirs

  let mentions_parallel ~root dir =
    let full = Filename.concat root dir in
    Sys.file_exists full
    && Array.exists
         (fun f ->
           Filename.check_suffix f ".ml"
           &&
           let text = read_text (Filename.concat full f) in
           let needle = "Ra_parallel" in
           let tl = String.length text and nl = String.length needle in
           let rec scan i = i + nl <= tl && (String.sub text i nl = needle || scan (i + 1)) in
           scan 0)
         (Sys.readdir full)

  let parallel_reachable ~root =
    let libs = libraries ~root in
    let submitters =
      List.filter (fun (n, dir, _) -> n <> "ra_parallel" && mentions_parallel ~root dir) libs
    in
    let rec closure seen = function
      | [] -> seen
      | n :: rest ->
        if List.mem n seen then closure seen rest
        else
          let deps =
            match List.find_opt (fun (n', _, _) -> n' = n) libs with
            | Some (_, _, ds) -> List.filter (fun d -> List.exists (fun (n', _, _) -> n' = d) libs) ds
            | None -> []
          in
          closure (n :: seen) (deps @ rest)
    in
    let reachable = closure [] (List.map (fun (n, _, _) -> n) submitters) in
    List.sort compare
      (List.filter_map
         (fun (n, dir, _) -> if List.mem n reachable then Some dir else None)
         libs)
end

(* --- interprocedural analysis (families L, O, C) ------------------------- *)

module Program = struct
  type t = { cg : Callgraph.t; units : Callgraph.unit_info list }

  (* Unparseable sources are skipped here: the per-file pass already
     reports them (E1 in the driver), and one broken file should not
     take the whole-program analysis down with it. *)
  let load sources =
    let units =
      List.filter_map
        (fun (file, text) ->
          match Callgraph.unit_of_source ~file text with
          | u -> Some u
          | exception Callgraph.Parse_error _ -> None)
        sources
    in
    { cg = Callgraph.build units; units }

  let options_of_config config =
    ( { Summary.o_core = config.o_core_paths; digest_guard = config.digest_guard },
      { Taint.c_paths = config.c_paths; secret_tag_paths = config.secret_tag_paths }
    )

  let analyze ?(config = default_config) t =
    let sopt, topt = options_of_config config in
    let sraws, _ = Summary.run ~options:sopt t.cg in
    let traws, _ = Taint.run ~options:topt t.cg in
    let by_file : (string, Summary.raw list) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (r : Summary.raw) ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_file r.r_file) in
        Hashtbl.replace by_file r.r_file (r :: cur))
      (sraws @ traws);
    let files =
      List.sort_uniq compare
        (List.map (fun (r : Summary.raw) -> r.r_file) (sraws @ traws))
    in
    List.concat_map
      (fun file ->
        let ordered =
          List.sort
            (fun (a : Summary.raw) (b : Summary.raw) ->
              compare
                ( a.r_loc.Location.loc_start.pos_lnum,
                  a.r_loc.Location.loc_start.pos_cnum,
                  a.r_rule )
                ( b.r_loc.Location.loc_start.pos_lnum,
                  b.r_loc.Location.loc_start.pos_cnum,
                  b.r_rule ))
            (Hashtbl.find by_file file)
        in
        let comments =
          match
            List.find_opt (fun u -> u.Callgraph.u_file = file) t.units
          with
          | Some u -> u.Callgraph.u_comments
          | None -> []
        in
        assign_fingerprints file
          (List.map
             (fun (r : Summary.raw) -> (r.r_rule, r.r_loc, r.r_token, r.r_msg))
             ordered)
        (* interprocedural waivers are near-site only (item_ranges = []):
           the allow comment must sit on, or directly above, the flagged
           line — a function-level waiver would silence the whole protocol
           check, not one reviewed site *)
        |> List.filter
             (fun f ->
               not
                 (suppressed ~reach:config.comment_reach ~comments
                    ~item_ranges:[] f)))
      files

  let summaries ?(config = default_config) t =
    let sopt, topt = options_of_config config in
    let _, sinfos = Summary.run ~options:sopt t.cg in
    let _, tinfos = Taint.run ~options:topt t.cg in
    let buf = Buffer.create 4096 in
    List.iter
      (fun (f : Callgraph.func) ->
        (match Hashtbl.find_opt sinfos f.Callgraph.qname with
        | Some i ->
          Buffer.add_string buf (Summary.dump_info i);
          Buffer.add_char buf '\n'
        | None -> ());
        match Hashtbl.find_opt tinfos f.Callgraph.qname with
        | Some i
          when i.Taint.ret_always
               || not (Taint.IntSet.is_empty i.Taint.ret_deps)
               || not (Taint.IntSet.is_empty i.Taint.cmp_deps) ->
          Buffer.add_string buf ("  " ^ Taint.dump_tinfo i);
          Buffer.add_char buf '\n'
        | _ -> ())
      (Callgraph.functions t.cg);
    Buffer.contents buf
end
