(* Interprocedural lock-discipline (L) and protocol-order (O) analysis:
   per-function summaries over an abstract held-locks + journal-phase
   state, iterated to fixpoint over the call graph (DESIGN.md §14). *)

type raw = {
  r_rule : string;
  r_file : string;
  r_loc : Location.t;
  r_token : string;
  r_msg : string;
}

type options = {
  o_core : string list; (* file prefixes where O1 (journal-before-Ack) applies *)
  digest_guard : (string * string) list;
      (* (file prefix, submodule): kernel digests must run under a lock *)
}

val default_options : options

type jeff = J_id | J_appended | J_committed

type info = {
  fn : Callgraph.func;
  mutable acquires : string list;
  mutable order : (string * string * Location.t) list;
  mutable blocking : string option;
  mutable digest_unlocked : (string * Location.t) option;
  mutable jeff : jeff;
}

(* Fixpoint + emission: raw L1/L2/L3/L4/O1/O2 findings (unsuppressed,
   unfingerprinted) and the converged per-function summaries. *)
val run : ?options:options -> Callgraph.t -> raw list * (string, info) Hashtbl.t

val dump_info : info -> string

(* Shared walker helpers, also used by the taint pass. *)
val last : string list -> string
val sub_expressions : Parsetree.expression -> Parsetree.expression list
