(* Secret-flow analysis for the C rule family (DESIGN.md §14).

   Taint seeds are key material by name (key / secret / mac, their
   suffixed forms, and tag — the latter only under lib/crypto and lib/pk,
   where "tag" means a MAC tag rather than a journal record tag) plus the
   outputs of the MAC producers (Hmac.*.mac, Mac_stream.finalize). Taint
   propagates through byte/string plumbing (Bytes.sub, concat, …) and
   through calls, via per-function summaries computed to fixpoint:

     ret_always  — the return value is tainted regardless of arguments
     ret_deps    — the return value is tainted when argument i is
     cmp_deps    — argument i reaches an early-exit comparison inside

   The sinks are OCaml's early-exit comparisons: polymorphic = / <> /
   compare and Bytes/String equal/compare. Their running time depends on
   the position of the first differing byte, so comparing a secret with
   one hands a remote attacker a timing oracle on the secret, byte by
   byte; `Bytesutil.constant_time_equal` is the sanctioned comparator and
   is deliberately NOT a sink. `Nat.compare` is also not a sink: the
   simulation-grade bignum code in lib/pk compares public curve
   coordinates with it, and flagging those would train people to waive.
   C1 fires when a directly-tainted value reaches a sink (at the compare,
   or at the call site whose argument flows to a callee's sink); C2 fires
   when a tainted value is formatted into an exception or log string.
   Arguments are matched to parameters positionally, which is exact for
   this repo's call style (labels appear in definition order). *)

module IntSet = Set.Make (Int)

type options = {
  c_paths : string list; (* file prefixes where C findings are reported *)
  secret_tag_paths : string list; (* where "tag" names a MAC tag *)
}

let default_options =
  {
    c_paths = [ "lib/crypto/"; "lib/pk/"; "lib/server/" ];
    secret_tag_paths = [ "lib/crypto/"; "lib/pk/" ];
  }

type tval = { direct : bool; deps : IntSet.t }

let untainted = { direct = false; deps = IntSet.empty }
let tjoin a b = { direct = a.direct || b.direct; deps = IntSet.union a.deps b.deps }

type tinfo = {
  fn : Callgraph.func;
  mutable ret_always : bool;
  mutable ret_deps : IntSet.t;
  mutable cmp_deps : IntSet.t;
}

let prefix_matches prefixes file =
  List.exists
    (fun p ->
      String.length p <= String.length file && String.sub file 0 (String.length p) = p)
    prefixes

let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let seed_name ~tag_ok n =
  let n = String.lowercase_ascii n in
  n = "key" || n = "secret" || n = "ikey" || n = "okey" || n = "mac"
  || has_suffix n "_key" || has_suffix n "_secret" || has_suffix n "_mac"
  || (tag_ok && (n = "tag" || has_suffix n "_tag"))

let mac_producer_modules = [ "Hmac"; "Cmac"; "Mac_stream" ]
let mac_producer_names = [ "mac"; "mac_with"; "finalize" ]

let is_mac_producer expanded =
  List.exists (fun m -> List.mem m mac_producer_modules) expanded
  && List.mem (Summary.last expanded) mac_producer_names

let is_propagator = function
  | [ "Bytes"; op ] ->
    List.mem op
      [ "sub"; "copy"; "cat"; "concat"; "of_string"; "to_string"; "extend";
        "get"; "unsafe_get"; "sub_string" ]
  | [ "String"; op ] ->
    List.mem op [ "sub"; "concat"; "of_bytes"; "to_bytes"; "get"; "cat" ]
  | _ -> false

let cmp_sinks =
  [ [ "=" ]; [ "<>" ]; [ "compare" ]; [ "Bytes"; "equal" ]; [ "Bytes"; "compare" ];
    [ "String"; "equal" ]; [ "String"; "compare" ] ]

let is_log_sink = function
  | [ ("failwith" | "invalid_arg" | "print_string" | "print_endline"
      | "prerr_endline" | "prerr_string") ] ->
    true
  | [ ("Printf" | "Format"); _ ] -> true
  | _ -> false

(* --- the walker ----------------------------------------------------------- *)

type pass = {
  options : options;
  cg : Callgraph.t;
  infos : (string, tinfo) Hashtbl.t;
  mutable emit : Summary.raw list;
  mutable emitting : bool;
  mutable cur : tinfo;
}

let add_raw p rule loc token msg =
  if p.emitting && prefix_matches p.options.c_paths p.cur.fn.Callgraph.fn_file
  then
    p.emit <-
      {
        Summary.r_rule = rule;
        r_file = p.cur.fn.Callgraph.fn_file;
        r_loc = loc;
        r_token = token;
        r_msg = msg;
      }
      :: p.emit

let tag_ok p = prefix_matches p.options.secret_tag_paths p.cur.fn.Callgraph.fn_file

let pattern_vars pat =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it x ->
          (match x.Parsetree.ppat_desc with
          | Parsetree.Ppat_var { txt; _ } -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat it x);
    }
  in
  it.pat it pat;
  !acc

let bind_pattern env pat tv =
  List.iter (fun name -> Hashtbl.replace env name tv) (pattern_vars pat)

(* Scrutinee taint distributed into a match case: only through
   "transparent" patterns (vars, aliases, tuples, records, arrays).
   Constructor payloads are NOT tainted — `match verify r with Ok (v, mac)
   | Error e`: the Error message e must not inherit the Ok branch's MAC
   taint or every error formatter lights up. Payload vars that really
   carry secrets (mac above) are caught by the name seeds instead. *)
let rec bind_case_pattern env pat tv =
  match pat.Parsetree.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } -> Hashtbl.replace env txt tv
  | Parsetree.Ppat_alias (inner, { txt; _ }) ->
    Hashtbl.replace env txt tv;
    bind_case_pattern env inner tv
  | Parsetree.Ppat_tuple pats | Parsetree.Ppat_array pats ->
    List.iter (fun x -> bind_case_pattern env x tv) pats
  | Parsetree.Ppat_record (fields, _) ->
    List.iter (fun (_, x) -> bind_case_pattern env x tv) fields
  | Parsetree.Ppat_constraint (inner, _) | Parsetree.Ppat_open (_, inner)
  | Parsetree.Ppat_lazy inner ->
    bind_case_pattern env inner tv
  | Parsetree.Ppat_or (a, b) ->
    bind_case_pattern env a tv;
    bind_case_pattern env b tv
  | _ -> ()

let note_cmp_deps p deps = p.cur.cmp_deps <- IntSet.union p.cur.cmp_deps deps

let c1_msg token =
  Printf.sprintf
    "early-exit comparison (%s) on a value carrying key/MAC material: the \
     compare returns at the first differing byte, which leaks a timing \
     oracle on the secret — use Bytesutil.constant_time_equal"
    token

let rec eval p env e =
  let open Parsetree in
  match e.pexp_desc with
  | Pexp_ident _ | Pexp_field _ -> (
    match Callgraph.access_path e with
    | Some path when path <> [] ->
      let name = Summary.last path in
      let bound =
        match path with
        | [ v ] -> Option.value ~default:untainted (Hashtbl.find_opt env v)
        | _ -> untainted
      in
      if seed_name ~tag_ok:(tag_ok p) name then { bound with direct = true }
      else bound
    | _ -> untainted)
  | Pexp_constant _ -> untainted
  | Pexp_let (_, vbs, body) ->
    List.iter (fun vb -> bind_pattern env vb.pvb_pat (eval p env vb.pvb_expr)) vbs;
    eval p env body
  | Pexp_sequence (a, b) ->
    ignore (eval p env a);
    eval p env b
  | Pexp_ifthenelse (c, t, f) ->
    ignore (eval p env c);
    let tv = eval p env t in
    (match f with Some f -> tjoin tv (eval p env f) | None -> tv)
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
    let tv = eval p env scrut in
    List.fold_left
      (fun acc case ->
        bind_case_pattern env case.pc_lhs tv;
        (match case.pc_guard with
        | Some g -> ignore (eval p env g)
        | None -> ());
        tjoin acc (eval p env case.pc_rhs))
      untainted cases
  | Pexp_fun (_, default, pat, body) ->
    (match default with Some d -> ignore (eval p env d) | None -> ());
    bind_pattern env pat untainted;
    ignore (eval p env body);
    untainted
  | Pexp_function cases ->
    List.iter (fun case -> ignore (eval p env case.pc_rhs)) cases;
    untainted
  | Pexp_construct (_, Some arg) | Pexp_variant (_, Some arg) -> eval p env arg
  | Pexp_construct (_, None) | Pexp_variant (_, None) -> untainted
  | Pexp_tuple es | Pexp_array es ->
    List.fold_left (fun acc x -> tjoin acc (eval p env x)) untainted es
  | Pexp_record (fields, base) ->
    let tv =
      List.fold_left (fun acc (_, x) -> tjoin acc (eval p env x)) untainted fields
    in
    (match base with Some b -> tjoin tv (eval p env b) | None -> tv)
  | Pexp_constraint (x, _) -> eval p env x
  | Pexp_apply (fn, args) -> (
    match Callgraph.access_path fn with
    | Some [ op ] when op = "|>" || op = "@@" -> (
      match args with
      | [ (_, a); (_, b) ] ->
        let f, x = if op = "|>" then (b, a) else (a, b) in
        eval p env
          {
            e with
            pexp_desc = Pexp_apply (f, [ (Asttypes.Nolabel, x) ]);
          }
      | _ -> eval_default p env e)
    | Some path ->
      let tvs = List.map (fun (_, a) -> eval p env a) args in
      apply p env ~loc:e.pexp_loc ~path ~args ~tvs
    | None -> eval_default p env e)
  | _ -> eval_default p env e

and eval_default p env e =
  List.fold_left
    (fun acc sub -> tjoin acc (eval p env sub))
    untainted (Summary.sub_expressions e)

and apply p _env ~loc ~path ~args:_ ~tvs =
  let token = Callgraph.token_of_path path in
  let expanded = Callgraph.expand_alias p.cg ~scope:p.cur.fn.Callgraph.scope path in
  (* early-exit comparison sinks *)
  if List.mem expanded cmp_sinks && List.length tvs >= 2 then begin
    let joined = List.fold_left tjoin untainted tvs in
    if joined.direct then add_raw p "C1" loc token (c1_msg token);
    note_cmp_deps p joined.deps;
    untainted
  end
  else if is_log_sink expanded then begin
    let joined = List.fold_left tjoin untainted tvs in
    if joined.direct then
      add_raw p "C2" loc token
        (Printf.sprintf
           "key/MAC material flows into %s: secrets must not reach \
            exception messages or logs"
           token);
    untainted
  end
  else if is_mac_producer expanded then
    (* the produced tag is itself secret-equivalent *)
    { direct = true;
      deps = List.fold_left (fun acc t -> IntSet.union acc t.deps) IntSet.empty tvs }
  else if is_propagator expanded then List.fold_left tjoin untainted tvs
  else
    match Callgraph.resolve p.cg ~scope:p.cur.fn.Callgraph.scope path with
    | None -> untainted
    | Some g -> (
      match Hashtbl.find_opt p.infos g.Callgraph.qname with
      | None -> untainted
      | Some gi ->
        let arg i = try List.nth tvs i with _ -> untainted in
        (* a tainted argument feeding a callee-internal compare *)
        IntSet.iter
          (fun i ->
            let t = arg i in
            if t.direct then
              add_raw p "C1" loc token
                (Printf.sprintf
                   "key/MAC material passed to %s, which compares argument \
                    %d with an early-exit comparison: the timing oracle \
                    crosses the call — use Bytesutil.constant_time_equal \
                    in the callee"
                   token (i + 1));
            note_cmp_deps p t.deps)
          gi.cmp_deps;
        let direct =
          gi.ret_always || IntSet.exists (fun i -> (arg i).direct) gi.ret_deps
        in
        let deps =
          IntSet.fold
            (fun i acc -> IntSet.union acc (arg i).deps)
            gi.ret_deps IntSet.empty
        in
        { direct; deps })

(* Peel the fun chain exactly as Callgraph.fn_params does, binding each
   parameter: seed-named parameters are directly tainted, and every
   parameter carries its own index for the hypothetical summaries. *)
let rec peel_funs e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (_, _, _, body) -> peel_funs body
  | Parsetree.Pexp_constraint (e, _) | Parsetree.Pexp_newtype (_, e) ->
    peel_funs e
  | _ -> e

let analyze_tinfo p info =
  let before = (info.ret_always, info.ret_deps, info.cmp_deps) in
  info.cmp_deps <- IntSet.empty;
  p.cur <- info;
  let env = Hashtbl.create 16 in
  List.iteri
    (fun i name ->
      if name <> "_" then
        Hashtbl.replace env name
          {
            direct = seed_name ~tag_ok:(tag_ok p) name;
            deps = IntSet.singleton i;
          })
    info.fn.Callgraph.params;
  let tv = eval p env (peel_funs info.fn.Callgraph.body) in
  info.ret_always <- tv.direct;
  info.ret_deps <- tv.deps;
  before <> (info.ret_always, info.ret_deps, info.cmp_deps)

let run ?(options = default_options) cg =
  let funcs = Callgraph.functions cg in
  let infos = Hashtbl.create 256 in
  List.iter
    (fun f ->
      Hashtbl.replace infos f.Callgraph.qname
        { fn = f; ret_always = false; ret_deps = IntSet.empty;
          cmp_deps = IntSet.empty })
    funcs;
  match funcs with
  | [] -> ([], infos)
  | f0 :: _ ->
    let p =
      { options; cg; infos; emit = []; emitting = false;
        cur = Hashtbl.find infos f0.Callgraph.qname }
    in
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds < 64 do
      changed := false;
      incr rounds;
      List.iter
        (fun f ->
          if analyze_tinfo p (Hashtbl.find infos f.Callgraph.qname) then
            changed := true)
        funcs
    done;
    p.emitting <- true;
    List.iter
      (fun f -> ignore (analyze_tinfo p (Hashtbl.find infos f.Callgraph.qname)))
      funcs;
    (p.emit, infos)

let dump_tinfo (info : tinfo) =
  let set s =
    if IntSet.is_empty s then "-"
    else String.concat "," (List.map string_of_int (IntSet.elements s))
  in
  Printf.sprintf "%-44s ret=%s ret-deps=%s cmp-deps=%s" info.fn.Callgraph.qname
    (if info.ret_always then "tainted" else "clean")
    (set info.ret_deps) (set info.cmp_deps)
