(* Program representation for the interprocedural ralint passes
   (DESIGN.md §14): every scanned file parsed once, every structure-level
   function binding registered under a qualified name, and call-site
   ident paths resolved through module aliases to those names. The
   resolution is deliberately syntactic — module name = capitalised file
   basename, submodules and functor bodies tracked by nesting, `module
   J = Ra_journal.Journal` aliases expanded — which is exact for this
   repo's flat dune layout and degrades to "unresolved" (never to a wrong
   edge) on anything fancier. *)

exception Parse_error of string * int (* message, line *)

(* Parse one implementation file, returning the structure and the comment
   list the lexer accumulated alongside it. Compiler-libs keeps comment
   state globally, so this is not reentrant — parse one file at a time. *)
let parse ~file source =
  Lexer.init ();
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | str -> (str, Lexer.comments ())
  | exception Syntaxerr.Error err ->
    let loc = Syntaxerr.location_of_error err in
    raise (Parse_error ("syntax error", loc.loc_start.pos_lnum))
  | exception Lexer.Error (_, loc) ->
    raise (Parse_error ("lexer error", loc.loc_start.pos_lnum))

type unit_info = {
  u_file : string;
  u_modname : string; (* capitalised basename: lib/cache/ra_cache.ml -> Ra_cache *)
  u_structure : Parsetree.structure;
  u_comments : (string * Location.t) list;
}

type func = {
  qname : string; (* dotted scope + name, e.g. "Ra_cache.Store.digest" *)
  fn_file : string;
  fn_name : string;
  scope : string list; (* enclosing module path, head = unit module *)
  params : string list; (* value parameters in order; "_" for non-vars *)
  body : Parsetree.expression; (* the whole binding expression (fun chain) *)
  floc : Location.t;
}

type t = {
  units : unit_info list;
  funcs : (string, func) Hashtbl.t; (* qname -> func *)
  unit_mods : (string, string) Hashtbl.t; (* module name -> file *)
  aliases : (string * string, string list) Hashtbl.t;
      (* (dotted scope, alias) -> target path, from `module A = B.C` and
         `module A = F (X)` (the functor case maps to F's body) *)
}

let modname_of_file file =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename file))

let unit_of_source ~file source =
  let str, comments = parse ~file source in
  {
    u_file = file;
    u_modname = modname_of_file file;
    u_structure = str;
    u_comments = comments;
  }

let dotted = String.concat "."

(* Value parameters of a binding, peeled off the fun chain. Labelled and
   optional arguments keep their label name (that is what taint seeding
   matches on); unnamed patterns become "_". *)
let rec fn_params e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (label, _, pat, body) ->
    let name =
      match label with
      | Asttypes.Labelled l | Asttypes.Optional l -> l
      | Asttypes.Nolabel -> (
        match pat.Parsetree.ppat_desc with
        | Parsetree.Ppat_var { txt; _ } -> txt
        | Parsetree.Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
          txt
        | _ -> "_")
    in
    name :: fn_params body
  | Parsetree.Pexp_constraint (e, _) | Parsetree.Pexp_newtype (_, e) ->
    fn_params e
  | _ -> []

let build units =
  let t =
    {
      units;
      funcs = Hashtbl.create 256;
      unit_mods = Hashtbl.create 64;
      aliases = Hashtbl.create 32;
    }
  in
  let register_funcs u =
    Hashtbl.replace t.unit_mods u.u_modname u.u_file;
    let rec walk_structure scope items =
      List.iter (walk_item scope) items
    and walk_item scope item =
      match item.Parsetree.pstr_desc with
      | Parsetree.Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match vb.Parsetree.pvb_pat.ppat_desc with
            | Parsetree.Ppat_var { txt = name; _ } ->
              let qname = dotted (scope @ [ name ]) in
              Hashtbl.replace t.funcs qname
                {
                  qname;
                  fn_file = u.u_file;
                  fn_name = name;
                  scope;
                  params = fn_params vb.pvb_expr;
                  body = vb.pvb_expr;
                  floc = vb.pvb_loc;
                }
            | _ -> ())
          vbs
      | Parsetree.Pstr_module
          { pmb_name = { txt = Some m; _ }; pmb_expr; _ } ->
        walk_module (scope @ [ m ]) pmb_expr
      | Parsetree.Pstr_recmodule mbs ->
        List.iter
          (fun (mb : Parsetree.module_binding) ->
            match mb.pmb_name.txt with
            | Some m -> walk_module (scope @ [ m ]) mb.pmb_expr
            | None -> ())
          mbs
      | _ -> ()
    and walk_module scope mexpr =
      match mexpr.Parsetree.pmod_desc with
      | Parsetree.Pmod_structure items -> walk_structure scope items
      | Parsetree.Pmod_functor (_, body) ->
        (* functions land directly under the functor's name: every
           instantiation shares one summary, which is sound for effects *)
        walk_module scope body
      | Parsetree.Pmod_constraint (m, _) -> walk_module scope m
      | Parsetree.Pmod_ident { txt; _ } ->
        (match (List.rev scope, Longident.flatten txt) with
        | alias :: outer_rev, target ->
          Hashtbl.replace t.aliases
            (dotted (List.rev outer_rev), alias)
            target
        | [], _ -> ())
      | Parsetree.Pmod_apply (f, _) -> (
        (* module Sha256 = Make (Sha256): calls through the instance
           resolve to the functor body's functions *)
        match (f.Parsetree.pmod_desc, List.rev scope) with
        | Parsetree.Pmod_ident { txt; _ }, alias :: outer_rev ->
          Hashtbl.replace t.aliases
            (dotted (List.rev outer_rev), alias)
            (Longident.flatten txt)
        | _ -> ())
      | _ -> ()
    in
    walk_structure [ u.u_modname ] u.u_structure
  in
  List.iter register_funcs units;
  t

(* Enclosing scope prefixes, innermost first: ["Ra_cache";"Store"] ->
   [["Ra_cache";"Store"]; ["Ra_cache"]]. *)
let rec scope_prefixes scope =
  match scope with
  | [] -> []
  | _ -> scope :: scope_prefixes (List.filteri (fun i _ -> i < List.length scope - 1) scope)

(* Expand a leading module alias visible from [scope] (innermost wins). *)
let expand_alias t ~scope path =
  match path with
  | head :: rest ->
    let rec try_scopes = function
      | [] -> path
      | prefix :: outer -> (
        match Hashtbl.find_opt t.aliases (dotted prefix, head) with
        | Some target -> target @ rest
        | None -> try_scopes outer)
    in
    try_scopes (scope_prefixes scope @ [ [] ])
  | [] -> path

(* Resolve a call-site ident path to a registered function, if any. *)
let resolve t ~scope path =
  let try_qname parts = Hashtbl.find_opt t.funcs (dotted parts) in
  let first_some f l = List.fold_left (fun acc x -> match acc with Some _ -> acc | None -> f x) None l in
  match path with
  | [] -> None
  | [ f ] ->
    (* unqualified: innermost enclosing module first *)
    first_some (fun prefix -> try_qname (prefix @ [ f ])) (scope_prefixes scope)
  | _ -> (
    let expanded = expand_alias t ~scope path in
    (* same-unit submodule reference, innermost enclosing scope first *)
    match
      first_some
        (fun prefix -> try_qname (prefix @ expanded))
        (scope_prefixes scope)
    with
    | Some f -> Some f
    | None -> (
      (* cross-unit: leftmost component that names a scanned unit *)
      let rec from_unit = function
        | m :: rest when Hashtbl.mem t.unit_mods m -> try_qname (m :: rest)
        | _ :: (_ :: _ as rest) -> from_unit rest
        | _ -> None
      in
      match from_unit expanded with
      | Some f -> Some f
      | None ->
        (* functor instance two levels deep: Hmac.Sha256.mac where
           Sha256 aliases Make inside unit Hmac *)
        (match expanded with
        | u :: inst :: rest when Hashtbl.mem t.unit_mods u -> (
          match Hashtbl.find_opt t.aliases (u, inst) with
          | Some target -> try_qname (u :: (target @ rest))
          | None -> None)
        | _ -> None)))

let functions t =
  List.sort
    (fun a b -> compare a.qname b.qname)
    (Hashtbl.fold (fun _ f acc -> f :: acc) t.funcs [])

let find t qname = Hashtbl.find_opt t.funcs qname

(* The token a finding reports for a call or access site: the dotted
   source path as written (not alias-expanded), so fingerprints track what
   the file says. *)
let token_of_path = dotted

(* --- expression helpers shared by the passes ----------------------------- *)

(* The dotted path of an ident or a field-access chain: `J.append` ->
   ["J";"append"], `s.mutex` -> ["s";"mutex"], `disk.Disk.sync` ->
   ["disk";"Disk";"sync"]. Anything else -> None. *)
let rec access_path e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> Some (Longident.flatten txt)
  | Parsetree.Pexp_field (base, { txt; _ }) -> (
    match access_path base with
    | Some p -> Some (p @ Longident.flatten txt)
    | None -> Some (Longident.flatten txt))
  | _ -> None
