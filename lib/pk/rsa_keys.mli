(** Fixed RSA test keys (e = 65537), generated offline once and embedded so
    that benchmarks and tests are reproducible without a prime generator.
    These keys protect nothing; they exist to measure and exercise signing.

    Moduli and private exponents are lowercase hex, sized by the name. *)

val e : int

val n1024 : string

val d1024 : string

val n2048 : string

val d2048 : string

val n4096 : string

val d4096 : string
