(** ERASMUS (Section 3.3): recurrent self-measurements stored on the prover
    and collected by the verifier later, decoupling measurement frequency
    (T_M) from collection frequency (T_C). *)

open Ra_sim

type config = {
  mp : Mp.config;
  period : Timebase.t;  (** T_M *)
  first_at : Timebase.t;
  capacity : int;  (** ring buffer of stored reports *)
  defer_if_app_running : Timebase.t option;
      (** context-aware scheduling: postpone by this much when a
          higher-priority job holds the CPU at the scheduled instant *)
  persistent_log : bool;
      (** [true]: the report log is flash-backed and survives a crash;
          [false] (default): RAM-only — a crash wipes it, which the
          verifier later detects as a counter gap *)
}

val default_config : config
(** SMART MP, T_M = 10 s, capacity 32, no deferral, volatile log. *)

type t

val start : Ra_device.Device.t -> ?hooks:Mp.hooks -> config -> t
(** Begin the self-measurement schedule. Each measurement carries a fresh
    monotonic counter (its freshness evidence) and a counter-derived nonce.

    Crash behaviour: an in-flight measurement dies with the CPU, the log is
    wiped unless [persistent_log], the monotonic counter survives (it is
    hardware), and the schedule re-arms itself on reboot — no measurement
    runs while the device is down. *)

val stop : t -> unit

val stored : t -> Report.t list
(** Reports currently held, oldest first, at most [capacity]. *)

val collect : t -> max:int -> Report.t list
(** What Vrf pulls during a collection visit: up to [max] most recent
    reports, oldest first. Collected reports stay stored (idempotent). *)

val measurements_taken : t -> int

val reports_lost_to_crash : t -> int
(** Stored reports wiped by crashes (always 0 with [persistent_log]). *)

val on_demand_measure : t -> nonce:Bytes.t -> on_complete:(Report.t -> unit) -> unit
(** ERASMUS composed with on-demand RA: run an extra measurement right now
    with the verifier's nonce (maximum freshness), independent of the
    schedule. *)

type audit = {
  audit_clean : int;
  audit_tampered : int;  (** reports failing MAC verification *)
  gaps : (int * int) list;
      (** missing counter ranges, inclusive — evidence that measurements ran
          but their reports vanished (e.g. a reboot wiped a volatile log) *)
  out_of_order : int;
      (** reports with a missing counter or one at/below the running
          high-water mark *)
}

val audit : ?expect_from:int -> Verifier.t -> Report.t list -> audit
(** What Vrf concludes from a collected batch (oldest first). A log gap is
    an explicit verdict the operator can act on — distinct from [Tampered]
    and never an excuse to crash the collector. [expect_from] is the first
    counter value Vrf expects (e.g. [1] after provisioning, or one past the
    last counter it saw at the previous collection visit). *)
