open Ra_sim

type config = {
  iterations : int;
  access_ns : float;
  jitter_ns : float;
  slack : float;
}

let default_config =
  { iterations = 200_000; access_ns = 18.; jitter_ns = 50_000.; slack = 1.10 }

(* A nonce-seeded pseudorandom walk. The mixing is deliberately simple (this
   is the *software-based* approach the paper contrasts with cryptographic
   MACs) but every byte of memory is reachable and order matters. *)
(* bounds: addr comes from Prng.int ~bound:size, so it is always inside
   [memory]; size > 0 is checked before the loop.
   cross-check: the checksum's traversal-order sensitivity is exercised
   against the paper's redirection adversary in test/test_core.ml. *)
let checksum ~memory ~nonce ~iterations =
  let seed =
    let digest = Ra_crypto.Sha256.digest nonce in
    Int64.to_int (Ra_crypto.Bytesutil.load64_be digest 0)
  in
  let rng = Prng.create ~seed in
  let size = Bytes.length memory in
  if size = 0 then invalid_arg "Swatt.checksum: empty memory";
  let acc = ref (Int64.of_int seed) in
  let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k)) in
  for _ = 1 to iterations do
    let addr = Prng.int rng ~bound:size in
    let value = Int64.of_int (Char.code (Bytes.unsafe_get memory addr)) in
    acc := Int64.add (rotl (Int64.logxor !acc value) 13) (Int64.of_int addr)
  done;
  !acc

type prover = Honest | Redirecting of { overhead : float }

type outcome = {
  value_ok : bool;
  time_ok : bool;
  accepted : bool;
  response_ns : float;
  threshold_ns : float;
}

let attest ~rng config ~memory ~prover =
  let nonce = Prng.bytes rng 16 in
  let expected_value = checksum ~memory ~nonce ~iterations:config.iterations in
  let base_ns = float_of_int config.iterations *. config.access_ns in
  let value, compute_ns =
    match prover with
    | Honest -> (expected_value, base_ns)
    | Redirecting { overhead } ->
      (* the redirection layer hides the modifications perfectly, value-wise *)
      (expected_value, base_ns *. overhead)
  in
  let jitter = Prng.float rng *. config.jitter_ns in
  let response_ns = compute_ns +. jitter in
  let threshold_ns = (base_ns *. config.slack) +. config.jitter_ns in
  let value_ok = Int64.equal value expected_value in
  let time_ok = response_ns <= threshold_ns in
  { value_ok; time_ok; accepted = value_ok && time_ok; response_ns; threshold_ns }

let separation_table ?(seed = 19) ?(trials = 400) config ~overhead ~jitter_levels =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "SWATT timing separation (overhead x%.2f, slack %.0f%%, %d trials)\n"
       overhead
       ((config.slack -. 1.) *. 100.)
       trials);
  Buffer.add_string buf "jitter/base   honest accepted       compromised detected\n";
  Buffer.add_string buf "-----------   --------------------  ----------------------\n";
  let memory = Prng.bytes (Prng.create ~seed) 4096 in
  List.iter
    (fun jitter_ratio ->
      let base_ns = float_of_int config.iterations *. config.access_ns in
      let cfg = { config with jitter_ns = jitter_ratio *. base_ns } in
      let rng = Prng.create ~seed:(seed + int_of_float (jitter_ratio *. 1000.)) in
      let count prover =
        let hits = ref 0 in
        for _ = 1 to trials do
          if (attest ~rng cfg ~memory ~prover).accepted then incr hits
        done;
        float_of_int !hits /. float_of_int trials
      in
      let honest_accept = count Honest in
      let compromised_accept = count (Redirecting { overhead }) in
      Buffer.add_string buf
        (Printf.sprintf "%-13s %-21s %s\n"
           (Printf.sprintf "%.0f%%" (jitter_ratio *. 100.))
           (Printf.sprintf "%.2f (want 1.00)" honest_accept)
           (Printf.sprintf "%.2f (want 1.00)" (1. -. compromised_accept))))
    jitter_levels;
  Buffer.contents buf
