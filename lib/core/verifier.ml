type t = {
  key : Bytes.t;
  expected_image : Bytes.t;
  block_size : int;
  data_blocks : int list;
  zero_data : bool;
  (* Expected code-block digests are nonce-independent, so they are
     memoised per verifier — (hash, block) -> digest — and optionally
     resolved through the fleet's content-addressed store, where the
     prover side has usually already paid for them. Data blocks are never
     memoised: their expected content varies per report. *)
  memo : (Ra_crypto.Algo.hash * int, Bytes.t) Hashtbl.t;
  store : Ra_cache.Store.t option;
}

type verdict = Clean | Tampered

let verdict_to_string = function Clean -> "clean" | Tampered -> "TAMPERED"

let create ?store ~key ~expected_image ~block_size ~data_blocks ~zero_data () =
  if Bytes.length expected_image mod block_size <> 0 then
    invalid_arg "Verifier.create: image not a multiple of block size";
  {
    key;
    expected_image;
    block_size;
    data_blocks;
    zero_data;
    memo = Hashtbl.create 64;
    store;
  }

let of_device device =
  let config = device.Ra_device.Device.config in
  let size = config.Ra_device.Device.blocks * config.Ra_device.Device.block_size in
  create
    ?store:config.Ra_device.Device.store
    ~key:config.Ra_device.Device.key
    ~expected_image:
      (Ra_device.Device.firmware_image ~seed:config.Ra_device.Device.seed ~size)
    ~block_size:config.Ra_device.Device.block_size
    ~data_blocks:config.Ra_device.Device.data_blocks
    ~zero_data:false ()

let with_zero_data t zero_data = { t with zero_data }

(* distinct, in-range blocks; full coverage is checked separately so that
   per-process (TyTAN-style) region reports can share the machinery *)
let valid_order order blocks =
  let seen = Array.make blocks false in
  Array.for_all
    (fun b ->
      if b < 0 || b >= blocks || seen.(b) then false
      else begin
        seen.(b) <- true;
        true
      end)
    order


let digest_content_many t hash contents =
  match t.store with
  | Some store -> Array.map snd (Ra_cache.Store.digest_many store hash contents)
  | None -> Ra_crypto.Algo.digest_many hash contents

(* Expected digests for a whole report are gathered as one batch: memo
   probes and data-copy resolution first, then a single batch digest for
   everything still unknown. Mirrors the prover's batch path, so both
   sides of a fleet drive the shared store exclusively through its
   single-lock batch entry point — and the store counters still land
   exactly as the per-block calls would have. *)
let expected_mac_with ?sched t report =
  let blocks = Bytes.length t.expected_image / t.block_size in
  if not (valid_order report.Report.order blocks) then None
  else begin
    let hash = report.Report.hash in
    let n = Array.length report.Report.order in
    let digests = Array.make n None in
    let todo_idx = ref [] and todo_content = ref [] in
    let missing = ref false in
    Array.iteri
      (fun i block ->
        let enqueue content =
          todo_idx := i :: !todo_idx;
          todo_content := content :: !todo_content
        in
        if List.mem block t.data_blocks then begin
          if t.zero_data then enqueue (Bytes.make t.block_size '\000')
          else
            match List.assoc_opt block report.Report.data_copy with
            | Some content -> enqueue content
            | None -> missing := true
        end
        else
          match Hashtbl.find_opt t.memo (hash, block) with
          | Some d -> digests.(i) <- Some d
          | None ->
            enqueue
              (Bytes.sub t.expected_image (block * t.block_size) t.block_size))
      report.Report.order;
    (* A missing data copy aborts cleanly before any digesting. *)
    if !missing then None
    else begin
      let idxs = Array.of_list (List.rev !todo_idx) in
      let contents = Array.of_list (List.rev !todo_content) in
      let fresh = digest_content_many t hash contents in
      Array.iteri
        (fun k i ->
          let block = report.Report.order.(i) in
          if not (List.mem block t.data_blocks) then
            Hashtbl.replace t.memo (hash, block) fresh.(k);
          digests.(i) <- Some fresh.(k))
        idxs;
      Some
        (Mp.mac_over_digests ?sched ~hash ~key:t.key
           ~nonce:report.Report.nonce ~counter:report.Report.counter
           ~order:report.Report.order
           ~digests:(Array.map Option.get digests) ())
    end
  end

let expected_mac t report = expected_mac_with t report

let mac_matches ?sched t report =
  match expected_mac_with ?sched t report with
  | None -> false
  | Some mac -> Ra_crypto.Bytesutil.constant_time_equal mac report.Report.mac

let verify_with ?sched t report =
  let blocks = Bytes.length t.expected_image / t.block_size in
  if Array.length report.Report.order = blocks && mac_matches ?sched t report
  then Clean
  else Tampered

let verify t report = verify_with t report

(* Batch verification: one key-schedule derivation per hash algorithm in
   the batch (almost always exactly one), shared across every report;
   expected digests already flow batch-wise per report. Each tag compare
   stays constant-time. *)
let verify_many t reports =
  let scheds = Hashtbl.create 2 in
  let sched_for hash =
    match Hashtbl.find_opt scheds hash with
    | Some s -> s
    | None ->
      let s = Ra_crypto.Mac_stream.schedule hash ~key:t.key in
      Hashtbl.add scheds hash s;
      s
  in
  Array.map
    (fun report -> verify_with ~sched:(sched_for report.Report.hash) t report)
    reports

let verify_region t ~region report =
  let sorted a =
    let copy = Array.copy a in
    Array.sort Int.compare copy;
    copy
  in
  if sorted report.Report.order = sorted (Array.of_list region) && mac_matches t report
  then Clean
  else Tampered

let verify_fresh t ~nonce report =
  if Bytes.equal nonce report.Report.nonce then verify t report else Tampered
