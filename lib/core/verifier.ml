type t = {
  key : Bytes.t;
  expected_image : Bytes.t;
  block_size : int;
  data_blocks : int list;
  zero_data : bool;
  (* Expected code-block digests are nonce-independent, so they are
     memoised per verifier — (hash, block) -> digest — and optionally
     resolved through the fleet's content-addressed store, where the
     prover side has usually already paid for them. Data blocks are never
     memoised: their expected content varies per report. *)
  memo : (Ra_crypto.Algo.hash * int, Bytes.t) Hashtbl.t;
  store : Ra_cache.Store.t option;
}

type verdict = Clean | Tampered

let verdict_to_string = function Clean -> "clean" | Tampered -> "TAMPERED"

let create ?store ~key ~expected_image ~block_size ~data_blocks ~zero_data () =
  if Bytes.length expected_image mod block_size <> 0 then
    invalid_arg "Verifier.create: image not a multiple of block size";
  {
    key;
    expected_image;
    block_size;
    data_blocks;
    zero_data;
    memo = Hashtbl.create 64;
    store;
  }

let of_device device =
  let config = device.Ra_device.Device.config in
  let size = config.Ra_device.Device.blocks * config.Ra_device.Device.block_size in
  create
    ?store:config.Ra_device.Device.store
    ~key:config.Ra_device.Device.key
    ~expected_image:
      (Ra_device.Device.firmware_image ~seed:config.Ra_device.Device.seed ~size)
    ~block_size:config.Ra_device.Device.block_size
    ~data_blocks:config.Ra_device.Device.data_blocks
    ~zero_data:false ()

let with_zero_data t zero_data = { t with zero_data }

(* distinct, in-range blocks; full coverage is checked separately so that
   per-process (TyTAN-style) region reports can share the machinery *)
let valid_order order blocks =
  let seen = Array.make blocks false in
  Array.for_all
    (fun b ->
      if b < 0 || b >= blocks || seen.(b) then false
      else begin
        seen.(b) <- true;
        true
      end)
    order


let digest_content t hash content =
  match t.store with
  | Some store -> snd (Ra_cache.Store.digest store hash content)
  | None -> Ra_crypto.Algo.digest hash content

let expected_block_digest t report hash block =
  if List.mem block t.data_blocks then
    if t.zero_data then Some (digest_content t hash (Bytes.make t.block_size '\000'))
    else
      Option.map (digest_content t hash)
        (List.assoc_opt block report.Report.data_copy)
  else
    match Hashtbl.find_opt t.memo (hash, block) with
    | Some d -> Some d
    | None ->
      let content = Bytes.sub t.expected_image (block * t.block_size) t.block_size in
      let d = digest_content t hash content in
      Hashtbl.replace t.memo (hash, block) d;
      Some d

let expected_mac t report =
  let blocks = Bytes.length t.expected_image / t.block_size in
  if not (valid_order report.Report.order blocks) then None
  else begin
    (* Gather digests first so a missing data copy aborts cleanly. *)
    let digests =
      Array.map
        (fun b -> expected_block_digest t report report.Report.hash b)
        report.Report.order
    in
    if Array.exists Option.is_none digests then None
    else
      Some
        (Mp.mac_over_digests ~hash:report.Report.hash ~key:t.key
           ~nonce:report.Report.nonce ~counter:report.Report.counter
           ~order:report.Report.order
           ~digests:(Array.map Option.get digests))
  end

let mac_matches t report =
  match expected_mac t report with
  | None -> false
  | Some mac -> Ra_crypto.Bytesutil.constant_time_equal mac report.Report.mac

let verify t report =
  let blocks = Bytes.length t.expected_image / t.block_size in
  if Array.length report.Report.order = blocks && mac_matches t report then Clean
  else Tampered

let verify_region t ~region report =
  let sorted a =
    let copy = Array.copy a in
    Array.sort Int.compare copy;
    copy
  in
  if sorted report.Report.order = sorted (Array.of_list region) && mac_matches t report
  then Clean
  else Tampered

let verify_fresh t ~nonce report =
  if Bytes.equal nonce report.Report.nonce then verify t report else Tampered
