open Ra_sim
open Ra_device

type config = {
  scheme : Scheme.t;
  hash : Ra_crypto.Algo.hash;
  signature : Cost_model.signature_alg option;
  priority : int;
  counter : int option;
}

let default_config =
  {
    scheme = Scheme.smart;
    hash = Ra_crypto.Algo.SHA_256;
    signature = None;
    priority = 5;
    counter = None;
  }

type hooks = {
  on_start : unit -> unit;
  on_block_measured : measured:int -> total:int -> unit;
}

let null_hooks = { on_start = (fun () -> ()); on_block_measured = (fun ~measured:_ ~total:_ -> ()) }

let index_bytes i =
  let b = Bytes.create 4 in
  Ra_crypto.Bytesutil.store32_be b 0 i;
  b

let counter_bytes c =
  let b = Bytes.create 8 in
  Ra_crypto.Bytesutil.store64_be b 0 (Int64.of_int c);
  b

(* The measurement is hash-then-MAC: the keyed stream absorbs the unkeyed
   digest of each block rather than its raw bytes. Per-block digests are
   key-independent, which is what lets {!Ra_cache} memoise them per device
   and share them across a whole fleet; the MAC itself still binds nonce,
   counter, traversal order and every block index under the device key. *)
let mac_over_digests ?sched ~hash ~key ~nonce ~counter ~order ~digests () =
  if Array.length digests <> Array.length order then
    invalid_arg "Mp.mac_over_digests: digests/order length mismatch";
  let ctx =
    match sched with
    | Some s -> Ra_crypto.Mac_stream.create_with s
    | None -> Ra_crypto.Mac_stream.create hash ~key
  in
  Ra_crypto.Mac_stream.update ctx nonce;
  (match counter with
  | Some c -> Ra_crypto.Mac_stream.update ctx (counter_bytes c)
  | None -> ());
  Array.iteri
    (fun i block ->
      Ra_crypto.Mac_stream.update ctx (index_bytes block);
      Ra_crypto.Mac_stream.update ctx digests.(i))
    order;
  Ra_crypto.Mac_stream.finalize ctx

let mac_over ~hash ~key ~nonce ~counter ~order ~block_content =
  let digests =
    Array.map (fun block -> Ra_crypto.Algo.digest hash (block_content block)) order
  in
  mac_over_digests ~hash ~key ~nonce ~counter ~order ~digests ()

(* Digest one block through the device's cache when it has one: a hit on
   an unchanged version (or on identical content in the shared store)
   skips the host-side hash. Reads are zero-copy; the returned digest is
   shared and must not be mutated. *)
let block_digest device hash block =
  let mem = device.Device.memory in
  Memory.with_block mem block (fun content ->
      match device.Device.cache with
      | Some cache ->
        Ra_cache.block_digest cache hash ~block ~version:(Memory.version mem block)
          content
      | None -> Ra_crypto.Algo.digest hash content)

(* Batch counterpart of [block_digest]: one zero-copy borrow of every
   block in the traversal order, one pass through the cache's batch entry
   point — so the whole round costs one store lock acquisition and the
   misses go through the interleaved kernel together. *)
let block_digests device hash order =
  let mem = device.Device.memory in
  Memory.with_blocks mem order (fun contents ->
      match device.Device.cache with
      | Some cache ->
        Ra_cache.block_digest_many cache hash ~blocks:order
          ~versions:(Array.map (Memory.version mem) order)
          contents
      | None -> Ra_crypto.Algo.digest_many hash contents)

(* Shared run state threaded through the per-block continuation chain. *)
type state = {
  device : Device.t;
  config : config;
  nonce : Bytes.t;
  hooks : hooks;
  order : int array;
  ctx : Ra_crypto.Mac_stream.t;
  mutable data_copy : (int * Bytes.t) list;
  t_start : Timebase.t;
  on_complete : Report.t -> unit;
}

let engine st = st.device.Device.engine
let memory st = st.device.Device.memory
let cost st = st.device.Device.config.Device.cost

let block_duration st =
  Cost_model.hash_time_raw (cost st) st.config.hash
    ~bytes:st.device.Device.config.Device.modeled_block_bytes

let lock_duration st n_ops =
  Timebase.ns (int_of_float (Float.round ((cost st).Cost_model.lock_op_ns *. float_of_int n_ops)))

(* Zero the volatile data regions before measuring (Section 2.3): makes it
   impossible for malware to hide there and spares the report a data copy. *)
let zero_data_blocks st =
  let mem = memory st in
  let zeroes = Bytes.make (Memory.block_size mem) '\000' in
  List.iter
    (fun block ->
      match Memory.set_block mem ~time:(Engine.now (engine st)) ~block zeroes with
      | Ok () -> ()
      | Error (Memory.Locked _) -> ())
    st.device.Device.config.Device.data_blocks

let apply_initial_locks st =
  let mem = memory st in
  match st.config.scheme.Scheme.locking with
  | Scheme.All_lock | Scheme.All_lock_ext _ | Scheme.Dec_lock ->
    Memory.lock_all mem;
    Engine.record (engine st) ~tag:"mp" "lock: all blocks locked"
  | Scheme.Cpy_lock ->
    Memory.lock_all_cow mem;
    Engine.record (engine st) ~tag:"mp" "lock: all blocks cow-locked"
  | Scheme.No_lock | Scheme.Inc_lock | Scheme.Inc_lock_ext _ -> ()

let finish st ~t_end ~t_release =
  let mac = Ra_crypto.Mac_stream.finalize st.ctx in
  let report =
    {
      Report.scheme_name = st.config.scheme.Scheme.name;
      hash = st.config.hash;
      nonce = st.nonce;
      order = st.order;
      mac;
      data_copy = List.rev st.data_copy;
      t_start = st.t_start;
      t_end;
      t_release;
      signature = st.config.signature;
      counter = st.config.counter;
    }
  in
  st.on_complete report

let release_locks st ~t_end k =
  let mem = memory st in
  let eng = engine st in
  match st.config.scheme.Scheme.locking with
  | Scheme.No_lock | Scheme.Dec_lock -> k t_end
  | Scheme.All_lock | Scheme.Inc_lock ->
    Memory.unlock_all ~time:(Engine.now eng) mem;
    Engine.record eng ~tag:"mp" "lock: all blocks released";
    k t_end
  | Scheme.Cpy_lock ->
    (* Merging the dirty shadows back costs real copy time, so the merged
       writes land strictly after te: the report stays consistent with the
       whole frozen window. *)
    let dirty = ref 0 in
    for block = 0 to Memory.block_count mem - 1 do
      if Memory.has_shadow mem block then incr dirty
    done;
    let merge_ns =
      (cost st).Cost_model.copy_ns_per_byte
      *. float_of_int (!dirty * Memory.block_size mem)
    in
    let duration = max 1 (int_of_float (Float.round merge_ns)) in
    ignore
      (Cpu.submit st.device.Device.cpu ~name:"mp-merge" ~priority:st.config.priority
         ~duration
         ~on_complete:(fun () ->
           Memory.unlock_all ~time:(Engine.now eng) mem;
           Engine.recordf eng ~tag:"mp" "lock: %d shadows merged, all blocks released"
             !dirty;
           k (Engine.now eng))
         ())
  | Scheme.All_lock_ext delay | Scheme.Inc_lock_ext delay ->
    let t_release = Timebase.add t_end delay in
    ignore
      (Engine.schedule eng ~at:t_release (fun _ ->
           Memory.unlock_all ~time:(Engine.now eng) mem;
           Engine.record eng ~tag:"mp" "lock: extension over, all blocks released"));
    k t_release

let sign_then_finish st ~t_end ~t_release =
  match st.config.signature with
  | None -> finish st ~t_end ~t_release
  | Some alg ->
    ignore
      (Cpu.submit st.device.Device.cpu ~name:"mp-sign" ~priority:st.config.priority
         ~duration:(Cost_model.sign_time (cost st) alg)
         ~on_complete:(fun () -> finish st ~t_end ~t_release)
         ())

(* Interruptible path: one CPU job per block; measurement state advances in
   the completion callback, where preempting jobs have already drained. *)
let rec measure_block st idx =
  let total = Array.length st.order in
  let block = st.order.(idx) in
  let mem = memory st in
  let eng = engine st in
  (match st.config.scheme.Scheme.locking with
  | Scheme.Inc_lock | Scheme.Inc_lock_ext _ ->
    Memory.lock mem block;
    Engine.recordf eng ~tag:"mp" "lock: block %d locked (inc)" block
  | Scheme.No_lock | Scheme.All_lock | Scheme.All_lock_ext _ | Scheme.Dec_lock
  | Scheme.Cpy_lock -> ());
  let duration =
    Timebase.add (block_duration st)
      (match st.config.scheme.Scheme.locking with
      | Scheme.Inc_lock | Scheme.Inc_lock_ext _ | Scheme.Dec_lock -> lock_duration st 1
      | Scheme.No_lock | Scheme.All_lock | Scheme.All_lock_ext _ | Scheme.Cpy_lock ->
        Timebase.zero)
  in
  ignore
    (Cpu.submit st.device.Device.cpu ~name:"mp" ~priority:st.config.priority ~duration
       ~on_complete:(fun () ->
         let digest = block_digest st.device st.config.hash block in
         Ra_crypto.Mac_stream.update st.ctx (index_bytes block);
         Ra_crypto.Mac_stream.update st.ctx digest;
         if Device.is_data_block st.device block && not st.config.scheme.Scheme.zero_data
         then st.data_copy <- (block, Memory.read_block mem block) :: st.data_copy;
         (match st.config.scheme.Scheme.locking with
         | Scheme.Dec_lock ->
           Memory.unlock ~time:(Engine.now eng) mem block;
           Engine.recordf eng ~tag:"mp" "lock: block %d released (dec)" block
         | Scheme.No_lock | Scheme.All_lock | Scheme.All_lock_ext _
         | Scheme.Inc_lock | Scheme.Inc_lock_ext _ | Scheme.Cpy_lock -> ());
         Engine.recordf eng ~tag:"mp" "measured block %d (%d/%d)" block (idx + 1) total;
         st.hooks.on_block_measured ~measured:(idx + 1) ~total;
         if idx + 1 < total then measure_block st (idx + 1)
         else begin
           let t_end = Engine.now eng in
           Engine.record eng ~tag:"mp" "te: measurement complete";
           release_locks st ~t_end (fun t_release ->
               sign_then_finish st ~t_end ~t_release)
         end)
       ())

(* Atomic path (SMART): a single uninterruptible CPU job covering setup,
   every block, and the signature. Nothing else can run, so digesting the
   whole memory at the end equals its state throughout the window. *)
let run_atomic st =
  let total = Array.length st.order in
  let eng = engine st in
  let duration =
    let hashing =
      Timebase.add
        (Cost_model.hash_time (cost st) st.config.hash ~bytes:0)
        (block_duration st * total)
    in
    match st.config.signature with
    | None -> hashing
    | Some alg -> Timebase.add hashing (Cost_model.sign_time (cost st) alg)
  in
  ignore
    (Cpu.submit st.device.Device.cpu ~atomic:true ~name:"mp" ~priority:st.config.priority
       ~duration
       ~on_complete:(fun () ->
         let mem = memory st in
         (* The atomic window froze memory, so the whole traversal order
            can be digested as one batch. *)
         let digests = block_digests st.device st.config.hash st.order in
         Array.iteri
           (fun i block ->
             Ra_crypto.Mac_stream.update st.ctx (index_bytes block);
             Ra_crypto.Mac_stream.update st.ctx digests.(i);
             if Device.is_data_block st.device block && not st.config.scheme.Scheme.zero_data
             then st.data_copy <- (block, Memory.read_block mem block) :: st.data_copy)
           st.order;
         let t_end = Engine.now eng in
         Engine.record eng ~tag:"mp" "te: atomic measurement complete";
         release_locks st ~t_end (fun t_release -> finish st ~t_end ~t_release))
       ())

let run device config ~nonce ?(hooks = null_hooks) ~on_complete () =
  let eng = device.Device.engine in
  let n = Memory.block_count device.Device.memory in
  let order =
    match config.scheme.Scheme.order with
    | Scheme.Sequential -> Array.init n (fun i -> i)
    | Scheme.Shuffled -> Prng.permutation (Engine.prng eng) n
  in
  let st =
    {
      device;
      config;
      nonce;
      hooks;
      order;
      ctx = Ra_crypto.Mac_stream.create config.hash ~key:device.Device.config.Device.key;
      data_copy = [];
      t_start = Engine.now eng;
      on_complete;
    }
  in
  Engine.recordf eng ~tag:"mp" "ts: %s measurement starts (%d blocks, %s)"
    config.scheme.Scheme.name n
    (Ra_crypto.Algo.hash_name config.hash);
  if config.scheme.Scheme.zero_data then zero_data_blocks st;
  apply_initial_locks st;
  Ra_crypto.Mac_stream.update st.ctx nonce;
  (match config.counter with
  | Some c -> Ra_crypto.Mac_stream.update st.ctx (counter_bytes c)
  | None -> ());
  if config.scheme.Scheme.atomic then run_atomic st
  else begin
    hooks.on_start ();
    (* charge the fixed setup cost as a first small job *)
    ignore
      (Cpu.submit device.Device.cpu ~name:"mp" ~priority:config.priority
         ~duration:(Cost_model.hash_time (cost st) config.hash ~bytes:0)
         ~on_complete:(fun () -> measure_block st 0)
         ())
  end
