open Ra_sim

type device_id = string

(* A roster entry is either a live device or a recipe for one. Virtual
   entries exist for million-device fleets: materializing 1M simulators up
   front is gigabytes of live heap that the GC then walks on every minor
   collection — the roll-call wall ROADMAP item 2 describes. A virtual
   device is created inside the roll-call task that attests it and dropped
   as soon as its report is in, so the live set stays O(shard width). *)
type entry =
  | Materialized of Ra_device.Device.t
  | Virtual of Ra_device.Device.config * (Ra_device.Device.t -> unit) option

type t = {
  master_secret : Bytes.t;
  store : Ra_cache.Store.t;
  firmware_seed : int;
  mutable roster : (device_id * entry) list; (* newest first *)
  ids : (device_id, unit) Hashtbl.t; (* duplicate check in O(1), not O(roster) *)
}

(* One firmware image for the whole fleet, derived from the master secret:
   provisioned devices run the same release, which is exactly what makes
   the content-addressed store pay off — every clean device's blocks are
   already in it after the first measurement anywhere in the fleet. *)
let create ?stripes ~master_secret () =
  let digest =
    Ra_crypto.Sha256.digest (Bytes.cat (Bytes.of_string "fleet firmware v1:") master_secret)
  in
  {
    master_secret;
    store = Ra_cache.Store.create ?stripes ();
    firmware_seed = Ra_crypto.Bytesutil.load32_be digest 0;
    roster = [];
    ids = Hashtbl.create 64;
  }

let derive_key t id =
  Ra_crypto.Hkdf.derive ~ikm:t.master_secret
    ~info:(Bytes.of_string ("ra-safety attestation key v1:" ^ id))
    ~length:32 ()

let store t = t.store

let fleet_config t id config =
  {
    config with
    Ra_device.Device.key = derive_key t id;
    seed = t.firmware_seed;
    store = Some t.store;
  }

let register t id entry =
  if Hashtbl.mem t.ids id then invalid_arg "Fleet.provision: duplicate id";
  Hashtbl.replace t.ids id ();
  t.roster <- (id, entry) :: t.roster

let provision t id ?(config = Ra_device.Device.default_config) () =
  let device = Ra_device.Device.create (fleet_config t id config) in
  register t id (Materialized device);
  device

let provision_virtual t id ?(config = Ra_device.Device.default_config) ?tamper () =
  register t id (Virtual (fleet_config t id config, tamper))

let materialize (_, entry) =
  match entry with
  | Materialized device -> device
  | Virtual (config, tamper) ->
    let device = Ra_device.Device.create config in
    Option.iter (fun f -> f device) tamper;
    device

let device t id = materialize (id, List.assoc id t.roster)

let verifier_for t id = Verifier.of_device (device t id)

let enrolled t = List.rev_map fst t.roster

type roll_call = {
  clean : device_id list;
  tampered : device_id list;
  digest_requests : int;
  cache_hits : int;
  store_hits : int;
  hashed : int;
  batch_hashed : int;
      (* of [hashed], how many went through the store's batch entry point;
         equals [hashed] when every party measures atomically (both the
         prover's round and the verifier's report check batch their
         digests), making it as jobs-invariant as the rest. *)
  distinct_blocks : int;
  shards : int;
  shard_roots : Bytes.t array;
  fleet_root : Bytes.t;
}

let hit_rate rc =
  if rc.digest_requests = 0 then 0.
  else float_of_int (rc.cache_hits + rc.store_hits) /. float_of_int rc.digest_requests

(* --- hierarchical Merkle aggregation ------------------------------------- *)

(* The aggregation tree is built over fixed-width SEGMENTS of the roster,
   not over shards: segment s covers devices [s*1024, (s+1)*1024), whatever
   the shard count, and the fleet root is the Merkle root over the segment
   roots. Decoupling the tree shape from the parallel fan-out is what makes
   the fleet root invariant across --shards and --jobs; shards only decide
   which domain computes which contiguous run of segments. Shard roots
   (the root over each shard's own segment roots) are the diagnosis handle:
   a divergent fleet root is localized by comparing shard roots, then the
   shard's segment roots, then the 1024 reports of the odd segment out. *)
let segment_size = 1024

let fleet_hash = Ra_crypto.Algo.SHA_256

let verdict_byte = function
  | Some Verifier.Clean -> "\x01"
  | Some Verifier.Tampered -> "\x02"
  | None -> "\x00"

(* Report leaf: id, verdict and the report MAC — the verifier-checked
   transcript digest, so two runs agree on a leaf only if the device sent
   byte-identical evidence. *)
let report_leaf (id, verdict, mac) =
  Bytes.concat Bytes.empty
    [ Bytes.of_string id; Bytes.of_string (verdict_byte verdict); mac ]

let segment_count n = (n + segment_size - 1) / segment_size

(* Attest one roster entry: the full on-demand protocol against a fresh
   verifier view. Returns the verdict, the report MAC (the Merkle leaf
   material) and this device's memo-hit delta, so the caller never has to
   hold the device itself — materialized or virtual, the entry is dropped
   when the task returns. *)
let attest_entry mp_config ~net_delay (id, entry) =
  let dev = materialize (id, entry) in
  let memo_hits cache =
    match cache with
    | None -> 0
    | Some cache -> (Ra_cache.stats cache).Ra_cache.hits
  in
  let hits0 = memo_hits dev.Ra_device.Device.cache in
  let verdict = ref None in
  let mac = ref Bytes.empty in
  let verifier = Verifier.of_device dev in
  Protocol.on_demand dev verifier mp_config ~net_delay
    ~auth_time:(Timebase.us 200)
    ~on_done:(fun events ->
      verdict := Some events.Protocol.verdict;
      mac := events.Protocol.report.Report.mac)
    ();
  Ra_device.Device.run dev;
  ((id, !verdict, !mac), memo_hits dev.Ra_device.Device.cache - hits0)

(* Counter barrier: store counters are read before the fan-out and after it
   has fully settled. WHICH party computes a shared digest first is a race
   under [jobs] > 1, but the store computes each distinct content exactly
   once, so the deltas — and therefore the whole result — are invariant
   under [jobs] and [shards]. *)
let assemble t ~shards ~shard_roots ~fleet_root ~results ~memo_hits
    ~lookups0 ~computed0 ~batched0 ~journal =
  let clean = ref [] and tampered = ref [] in
  Array.iter
    (fun (id, verdict, _mac) ->
      match verdict with
      | Some Verifier.Clean -> clean := id :: !clean
      | Some Verifier.Tampered | None -> tampered := id :: !tampered)
    results;
  let lookups = Ra_cache.Store.lookups t.store - lookups0 in
  let computed = Ra_cache.Store.computed t.store - computed0 in
  let result =
    {
      clean = List.rev !clean;
      tampered = List.rev !tampered;
      digest_requests = memo_hits + lookups;
      cache_hits = memo_hits;
      store_hits = lookups - computed;
      hashed = computed;
      batch_hashed = Ra_cache.Store.batched_computes t.store - batched0;
      distinct_blocks = Ra_cache.Store.distinct_contents t.store;
      shards;
      shard_roots;
      fleet_root;
    }
  in
  (* Cache/store provenance: one committed record per roll call, after the
     parallel fan-out has fully settled — the counters and roots are
     jobs- and shards-invariant, so the record is too. Replay re-runs the
     roll call and byte-compares this record, which now re-verifies the
     whole hierarchical digest, not just the flat counters. *)
  (match journal with
  | None -> ()
  | Some j ->
    let open Ra_journal in
    Journal.append j
      (Event.make "roll-call"
         [
           ("devices", Event.I (Array.length results));
           ("shards", Event.I result.shards);
           ("clean", Event.I (List.length result.clean));
           ("tampered", Event.I (List.length result.tampered));
           ("requests", Event.I result.digest_requests);
           ("cache-hits", Event.I result.cache_hits);
           ("store-hits", Event.I result.store_hits);
           ("hashed", Event.I result.hashed);
           ("batch-hashed", Event.I result.batch_hashed);
           ("distinct", Event.I result.distinct_blocks);
           ("fleet-root", Event.B result.fleet_root);
           ("shard-roots", Event.B (Bytes.concat Bytes.empty
                                      (Array.to_list result.shard_roots)));
         ]);
    Journal.commit j);
  result

(* Devices are fully independent (own engine, own memory, own verifier
   view), so the roll call fans out over the deterministic domain pool,
   one task per device. *)
let roll_call t ?jobs ?journal ?(net_delay = Timebase.ms 40) mp_config =
  let roster = Array.of_list (List.rev t.roster) in
  let n = Array.length roster in
  let lookups0 = Ra_cache.Store.lookups t.store in
  let computed0 = Ra_cache.Store.computed t.store in
  let batched0 = Ra_cache.Store.batched_computes t.store in
  let attested =
    Ra_parallel.parallel_init ?jobs n (fun i ->
        attest_entry mp_config ~net_delay roster.(i))
  in
  let results = Array.map fst attested in
  let memo_hits = Array.fold_left (fun acc (_, d) -> acc + d) 0 attested in
  let shard_roots, fleet_root =
    if n = 0 then ([||], Bytes.empty)
    else begin
      let leaves = Array.map report_leaf results in
      let seg_roots =
        Array.init (segment_count n) (fun s ->
            let lo = s * segment_size in
            let len = min segment_size (n - lo) in
            Merkle.root_of_leaves fleet_hash ~leaves:(Array.sub leaves lo len))
      in
      let root = Merkle.root_of_leaves fleet_hash ~leaves:seg_roots in
      ([| root |], root)
    end
  in
  assemble t ~shards:1 ~shard_roots ~fleet_root ~results ~memo_hits ~lookups0
    ~computed0 ~batched0 ~journal

(* Sharded roll call: the roster's segments are split into [shards]
   contiguous runs, one pool task per shard. Each task walks its own
   devices sequentially — materializing virtual entries on the fly — and
   reduces every finished segment to its root immediately, so a shard's
   live state is one segment of leaves plus its report triples. The merge
   at the pool barrier is pure: concatenation in shard order is roster
   order, and the fleet root over the concatenated segment roots is the
   same root the flat roll call computes. *)
let sharded_roll_call t ?jobs ?shards ?journal ?(net_delay = Timebase.ms 40)
    mp_config =
  let roster = Array.of_list (List.rev t.roster) in
  let n = Array.length roster in
  if n = 0 then
    let lookups0 = Ra_cache.Store.lookups t.store in
    let computed0 = Ra_cache.Store.computed t.store in
    let batched0 = Ra_cache.Store.batched_computes t.store in
    assemble t ~shards:1 ~shard_roots:[||] ~fleet_root:Bytes.empty
      ~results:[||] ~memo_hits:0 ~lookups0 ~computed0 ~batched0 ~journal
  else begin
    let requested =
      max 1 (Option.value shards ~default:(Ra_parallel.default_jobs ()))
    in
    let nsegs = segment_count n in
    (* a segment is never split across shards, so at most one shard per
       segment is meaningful *)
    let nshards = min requested nsegs in
    let segs_per, extra = (nsegs / nshards, nsegs mod nshards) in
    let seg_lo s = (s * segs_per) + min s extra in
    let lookups0 = Ra_cache.Store.lookups t.store in
    let computed0 = Ra_cache.Store.computed t.store in
    let batched0 = Ra_cache.Store.batched_computes t.store in
    let shard_outputs =
      Ra_parallel.parallel_init ?jobs nshards (fun s ->
          let seg0 = seg_lo s and seg1 = seg_lo (s + 1) in
          let dev_lo = seg0 * segment_size in
          let dev_hi = min n (seg1 * segment_size) in
          let results = Array.make (dev_hi - dev_lo) ("", None, Bytes.empty) in
          let memo_hits = ref 0 in
          let seg_roots = Array.make (seg1 - seg0) Bytes.empty in
          for seg = seg0 to seg1 - 1 do
            let lo = seg * segment_size in
            let len = min segment_size (n - lo) in
            let leaves =
              Array.init len (fun k ->
                  let r, d =
                    attest_entry mp_config ~net_delay roster.(lo + k)
                  in
                  results.(lo + k - dev_lo) <- r;
                  memo_hits := !memo_hits + d;
                  report_leaf r)
            in
            seg_roots.(seg - seg0) <- Merkle.root_of_leaves fleet_hash ~leaves
          done;
          (results, seg_roots, !memo_hits))
    in
    let results = Array.concat (Array.to_list (Array.map (fun (r, _, _) -> r) shard_outputs)) in
    let memo_hits = Array.fold_left (fun acc (_, _, d) -> acc + d) 0 shard_outputs in
    let shard_roots =
      Array.map
        (fun (_, seg_roots, _) -> Merkle.root_of_leaves fleet_hash ~leaves:seg_roots)
        shard_outputs
    in
    let all_seg_roots =
      Array.concat (Array.to_list (Array.map (fun (_, sr, _) -> sr) shard_outputs))
    in
    let fleet_root = Merkle.root_of_leaves fleet_hash ~leaves:all_seg_roots in
    assemble t ~shards:nshards ~shard_roots ~fleet_root ~results ~memo_hits
      ~lookups0 ~computed0 ~batched0 ~journal
  end

let attest_all t ?net_delay mp_config = roll_call t ~jobs:1 ?net_delay mp_config
