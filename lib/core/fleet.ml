open Ra_sim

type device_id = string

type t = {
  master_secret : Bytes.t;
  store : Ra_cache.Store.t;
  firmware_seed : int;
  mutable roster : (device_id * Ra_device.Device.t) list; (* newest first *)
}

(* One firmware image for the whole fleet, derived from the master secret:
   provisioned devices run the same release, which is exactly what makes
   the content-addressed store pay off — every clean device's blocks are
   already in it after the first measurement anywhere in the fleet. *)
let create ~master_secret =
  let digest =
    Ra_crypto.Sha256.digest (Bytes.cat (Bytes.of_string "fleet firmware v1:") master_secret)
  in
  {
    master_secret;
    store = Ra_cache.Store.create ();
    firmware_seed = Ra_crypto.Bytesutil.load32_be digest 0;
    roster = [];
  }

let derive_key t id =
  Ra_crypto.Hkdf.derive ~ikm:t.master_secret
    ~info:(Bytes.of_string ("ra-safety attestation key v1:" ^ id))
    ~length:32 ()

let store t = t.store

let provision t id ?(config = Ra_device.Device.default_config) () =
  if List.mem_assoc id t.roster then invalid_arg "Fleet.provision: duplicate id";
  let device =
    Ra_device.Device.create
      {
        config with
        Ra_device.Device.key = derive_key t id;
        seed = t.firmware_seed;
        store = Some t.store;
      }
  in
  t.roster <- (id, device) :: t.roster;
  device

let device t id = List.assoc id t.roster

let verifier_for t id = Verifier.of_device (device t id)

let enrolled t = List.rev_map fst t.roster

type roll_call = {
  clean : device_id list;
  tampered : device_id list;
  digest_requests : int;
  cache_hits : int;
  store_hits : int;
  hashed : int;
  batch_hashed : int;
      (* of [hashed], how many went through the store's batch entry point;
         equals [hashed] when every party measures atomically (both the
         prover's round and the verifier's report check batch their
         digests), making it as jobs-invariant as the rest. *)
  distinct_blocks : int;
}

let hit_rate rc =
  if rc.digest_requests = 0 then 0.
  else float_of_int (rc.cache_hits + rc.store_hits) /. float_of_int rc.digest_requests

(* Devices are fully independent (own engine, own memory, own verifier
   view), so the roll call fans out over the deterministic domain pool.
   Verdicts are a pure function of each device. Counters are taken from
   per-device memos (whose hits depend only on that device's own history)
   and from store-level deltas: WHICH party computes a shared digest first
   is a race under [jobs] > 1, but the store computes each distinct
   content exactly once, so the totals — and therefore the whole result —
   are invariant under [jobs]. *)
let roll_call t ?jobs ?journal ?(net_delay = Timebase.ms 40) mp_config =
  let roster = Array.of_list (List.rev t.roster) in
  let memo_hits_sum () =
    Array.fold_left
      (fun acc (_, dev) ->
        match dev.Ra_device.Device.cache with
        | None -> acc
        | Some cache -> acc + (Ra_cache.stats cache).Ra_cache.hits)
      0 roster
  in
  let memo_hits0 = memo_hits_sum () in
  let lookups0 = Ra_cache.Store.lookups t.store in
  let computed0 = Ra_cache.Store.computed t.store in
  let batched0 = Ra_cache.Store.batched_computes t.store in
  let verdicts =
    Ra_parallel.parallel_init ?jobs (Array.length roster) (fun i ->
        let id, dev = roster.(i) in
        let verifier = Verifier.of_device dev in
        let verdict = ref None in
        Protocol.on_demand dev verifier mp_config ~net_delay
          ~auth_time:(Timebase.us 200)
          ~on_done:(fun events -> verdict := Some events.Protocol.verdict)
          ();
        Ra_device.Device.run dev;
        (id, !verdict))
  in
  let clean = ref [] and tampered = ref [] in
  Array.iter
    (fun (id, verdict) ->
      match verdict with
      | Some Verifier.Clean -> clean := id :: !clean
      | Some Verifier.Tampered | None -> tampered := id :: !tampered)
    verdicts;
  let memo_hits = memo_hits_sum () - memo_hits0 in
  let lookups = Ra_cache.Store.lookups t.store - lookups0 in
  let computed = Ra_cache.Store.computed t.store - computed0 in
  let result =
    {
      clean = List.rev !clean;
      tampered = List.rev !tampered;
      digest_requests = memo_hits + lookups;
      cache_hits = memo_hits;
      store_hits = lookups - computed;
      hashed = computed;
      batch_hashed = Ra_cache.Store.batched_computes t.store - batched0;
      distinct_blocks = Ra_cache.Store.distinct_contents t.store;
    }
  in
  (* Cache/store provenance: one committed record per roll call, after
     the parallel fan-out has fully settled — the counters are
     jobs-invariant, so the record is too. *)
  (match journal with
  | None -> ()
  | Some j ->
    let open Ra_journal in
    Journal.append j
      (Event.make "roll-call"
         [
           ("devices", Event.I (Array.length roster));
           ("clean", Event.I (List.length result.clean));
           ("tampered", Event.I (List.length result.tampered));
           ("requests", Event.I result.digest_requests);
           ("cache-hits", Event.I result.cache_hits);
           ("store-hits", Event.I result.store_hits);
           ("hashed", Event.I result.hashed);
           ("batch-hashed", Event.I result.batch_hashed);
           ("distinct", Event.I result.distinct_blocks);
         ]);
    Journal.commit j);
  result

let attest_all t ?net_delay mp_config = roll_call t ~jobs:1 ?net_delay mp_config
