let seal payload =
  let n = Bytes.length payload in
  let frame = Bytes.create (n + 4) in
  Bytes.blit payload 0 frame 0 n;
  Ra_crypto.Bytesutil.store32_be frame n (Ra_crypto.Crc32.digest payload);
  frame

let open_ frame =
  let n = Bytes.length frame - 4 in
  if n < 0 then Error "frame too short"
  else begin
    let payload = Bytes.sub frame 0 n in
    if Ra_crypto.Bytesutil.load32_be frame n = Ra_crypto.Crc32.digest payload then
      Ok payload
    else Error "frame check failed"
  end
