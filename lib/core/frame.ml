let seal payload =
  let n = Bytes.length payload in
  let frame = Bytes.create (n + 4) in
  Bytes.blit payload 0 frame 0 n;
  Ra_crypto.Bytesutil.store32_be frame n (Ra_crypto.Crc32.digest payload);
  frame

let open_ frame =
  let n = Bytes.length frame - 4 in
  if n < 0 then Error "frame too short"
  else begin
    let payload = Bytes.sub frame 0 n in
    if Ra_crypto.Bytesutil.load32_be frame n = Ra_crypto.Crc32.digest payload then
      Ok payload
    else Error "frame check failed"
  end

(* --- stream framing ------------------------------------------------------ *)

(* Over a datagram the payload length is implicit in the datagram itself;
   over a byte stream it is not, so the stream encoding prepends a magic
   and an explicit big-endian length:

     'R' 'F' | u32 payload length | payload | u32 crc32(payload)

   The magic is a cheap desynchronisation tripwire: a reader that lands
   mid-frame (torn write, resumed half-read) fails on the magic or the
   CRC, never by parsing payload bytes as a header. *)

let stream_magic0 = 'R'
let stream_magic1 = 'F'
let stream_overhead = 2 + 4 + 4

(* Large enough for any report burst a device legitimately sends, small
   enough that a hostile length field cannot make the reader allocate
   gigabytes before the CRC check. *)
let max_payload = 1 lsl 20

let seal_stream payload =
  let n = Bytes.length payload in
  if n > max_payload then invalid_arg "Frame.seal_stream: payload too large";
  let frame = Bytes.create (n + stream_overhead) in
  Bytes.set frame 0 stream_magic0;
  Bytes.set frame 1 stream_magic1;
  Ra_crypto.Bytesutil.store32_be frame 2 n;
  Bytes.blit payload 0 frame 6 n;
  Ra_crypto.Bytesutil.store32_be frame (6 + n) (Ra_crypto.Crc32.digest payload);
  frame

module Reader = struct
  (* Accumulating reassembly buffer: [buf.[start .. start+len)] holds the
     bytes not yet consumed. Feeding appends; parsing consumes whole
     frames from the front. The buffer is compacted before it grows, so a
     long-lived connection does not leak its own history. *)
  type t = {
    mutable buf : Bytes.t;
    mutable start : int;
    mutable len : int;
    mutable dead : string option;  (* first framing error, sticky *)
    mutable frames : int;
    mutable bytes_fed : int;
  }

  type result = Frame of Bytes.t | Await | Corrupt of string

  let create () =
    { buf = Bytes.create 4096; start = 0; len = 0; dead = None; frames = 0; bytes_fed = 0 }

  let buffered t = t.len
  let frames t = t.frames
  let bytes_fed t = t.bytes_fed

  let ensure_room t extra =
    let cap = Bytes.length t.buf in
    if t.start + t.len + extra > cap then begin
      (* compact first; grow only if the frame really needs it *)
      if t.start > 0 then begin
        Bytes.blit t.buf t.start t.buf 0 t.len;
        t.start <- 0
      end;
      if t.len + extra > cap then begin
        let cap' = max (t.len + extra) (2 * cap) in
        let buf' = Bytes.create cap' in
        Bytes.blit t.buf 0 buf' 0 t.len;
        t.buf <- buf'
      end
    end

  let feed t ?(off = 0) ?len chunk =
    let len = match len with Some l -> l | None -> Bytes.length chunk - off in
    if off < 0 || len < 0 || off + len > Bytes.length chunk then
      invalid_arg "Frame.Reader.feed";
    if t.dead = None && len > 0 then begin
      ensure_room t len;
      Bytes.blit chunk off t.buf (t.start + t.len) len;
      t.len <- t.len + len;
      t.bytes_fed <- t.bytes_fed + len
    end

  let die t msg =
    t.dead <- Some msg;
    t.len <- 0;
    Corrupt msg

  let next t =
    match t.dead with
    | Some msg -> Corrupt msg
    | None ->
      if t.len < 6 then Await
      else begin
        let at i = Bytes.get t.buf (t.start + i) in
        if at 0 <> stream_magic0 || at 1 <> stream_magic1 then
          die t "bad stream magic"
        else begin
          let n = Ra_crypto.Bytesutil.load32_be t.buf (t.start + 2) in
          if n > max_payload then
            die t (Printf.sprintf "frame length %d exceeds limit" n)
          else if t.len < n + stream_overhead then Await
          else begin
            let payload = Bytes.sub t.buf (t.start + 6) n in
            let crc = Ra_crypto.Bytesutil.load32_be t.buf (t.start + 6 + n) in
            if crc <> Ra_crypto.Crc32.digest payload then
              die t "stream frame check failed"
            else begin
              t.start <- t.start + n + stream_overhead;
              t.len <- t.len - (n + stream_overhead);
              if t.len = 0 then t.start <- 0;
              t.frames <- t.frames + 1;
              Frame payload
            end
          end
        end
      end
end
