open Ra_sim

type t = {
  initial_rto : Timebase.t;
  min_rto : Timebase.t;
  max_rto : Timebase.t;
  mutable srtt : float;
  mutable rttvar : float;
  mutable have_sample : bool;
  mutable rto : Timebase.t;
  mutable samples : int;
  mutable backoffs : int;
  mutable clamped : int;
  mutable gave_up : bool;
}

let create ?(initial_rto = Timebase.s 15) ?(min_rto = Timebase.ms 200)
    ?(max_rto = Timebase.minutes 2) () =
  if min_rto <= 0 || max_rto < min_rto || initial_rto <= 0 then
    invalid_arg "Rtt.create: bad bounds";
  {
    initial_rto = min (max initial_rto min_rto) max_rto;
    min_rto;
    max_rto;
    srtt = 0.;
    rttvar = 0.;
    have_sample = false;
    rto = min (max initial_rto min_rto) max_rto;
    samples = 0;
    backoffs = 0;
    clamped = 0;
    gave_up = false;
  }

let clamp t v =
  let v = int_of_float (Float.round v) in
  min t.max_rto (max t.min_rto v)

(* RFC 6298 / Jacobson-Karels: alpha = 1/8, beta = 1/4, RTO = SRTT + 4*RTTVAR.
   The caller enforces Karn's rule by only feeding samples from exchanges
   that were never retransmitted. *)
let observe t sample =
  (* A prover whose clock reset mid-exchange (reboot) can hand back a
     timestamp that makes the apparent RTT zero or negative. Folding that
     into SRTT would poison the estimator (and a negative RTTVAR would
     drag the RTO below every real RTT), so clamp to the smallest positive
     sample and count the event instead of raising. *)
  let r =
    if sample <= 0 then begin
      t.clamped <- t.clamped + 1;
      1.
    end
    else float_of_int sample
  in
  if not t.have_sample then begin
    t.srtt <- r;
    t.rttvar <- r /. 2.;
    t.have_sample <- true
  end
  else begin
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. r));
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. r)
  end;
  t.samples <- t.samples + 1;
  t.rto <- clamp t (t.srtt +. (4. *. t.rttvar))

let backoff t =
  t.backoffs <- t.backoffs + 1;
  t.rto <- min t.max_rto (max t.min_rto (t.rto * 2))

let note_gave_up t = t.gave_up <- true

(* Karn's rule suppresses the RTT sample of any retransmitted exchange, so
   after a give-up the first successful session often completes without
   ever calling {!observe} — yet it proves the peer is answering again.
   Drop the accumulated backoff multiplier and re-anchor the RTO on the
   estimate (or the initial RTO when there has never been a sample). *)
let note_success t =
  if t.gave_up || t.backoffs > 0 then begin
    t.backoffs <- 0;
    t.rto <-
      (if t.have_sample then clamp t (t.srtt +. (4. *. t.rttvar))
       else t.initial_rto)
  end;
  t.gave_up <- false

let rto t = t.rto

let srtt t = if t.have_sample then Some (int_of_float (Float.round t.srtt)) else None

let samples t = t.samples

let backoffs t = t.backoffs

let clamped t = t.clamped

(* State save/restore for crash recovery. Only the mutable estimator
   fields travel; the bounds are rebuilt by the owner's constructor and
   must match. Floats are stored bit-exact so a restored estimator
   produces the identical RTO stream. *)
let save t =
  let w = Ra_journal.Codec.writer () in
  Ra_journal.Codec.i64raw w (Int64.bits_of_float t.srtt);
  Ra_journal.Codec.i64raw w (Int64.bits_of_float t.rttvar);
  Ra_journal.Codec.u8 w (if t.have_sample then 1 else 0);
  Ra_journal.Codec.i64 w t.rto;
  Ra_journal.Codec.i64 w t.samples;
  Ra_journal.Codec.i64 w t.backoffs;
  Ra_journal.Codec.i64 w t.clamped;
  Ra_journal.Codec.u8 w (if t.gave_up then 1 else 0);
  Ra_journal.Codec.contents w

let restore t b =
  match
    let r = Ra_journal.Codec.reader b in
    let srtt = Int64.float_of_bits (Ra_journal.Codec.read_i64raw r) in
    let rttvar = Int64.float_of_bits (Ra_journal.Codec.read_i64raw r) in
    let have_sample = Ra_journal.Codec.read_u8 r <> 0 in
    let rto = Ra_journal.Codec.read_i64 r in
    let samples = Ra_journal.Codec.read_i64 r in
    let backoffs = Ra_journal.Codec.read_i64 r in
    let clamped = Ra_journal.Codec.read_i64 r in
    let gave_up = Ra_journal.Codec.read_u8 r <> 0 in
    Ra_journal.Codec.expect_end r;
    (srtt, rttvar, have_sample, rto, samples, backoffs, clamped, gave_up)
  with
  | srtt, rttvar, have_sample, rto, samples, backoffs, clamped, gave_up ->
      if rto < t.min_rto || rto > t.max_rto then Error "Rtt.restore: RTO out of bounds"
      else begin
        t.srtt <- srtt;
        t.rttvar <- rttvar;
        t.have_sample <- have_sample;
        t.rto <- rto;
        t.samples <- samples;
        t.backoffs <- backoffs;
        t.clamped <- clamped;
        t.gave_up <- gave_up;
        Ok ()
      end
  | exception Ra_journal.Codec.Corrupt msg -> Error ("Rtt.restore: " ^ msg)
