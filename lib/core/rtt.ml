open Ra_sim

type t = {
  min_rto : Timebase.t;
  max_rto : Timebase.t;
  mutable srtt : float;
  mutable rttvar : float;
  mutable have_sample : bool;
  mutable rto : Timebase.t;
  mutable samples : int;
  mutable backoffs : int;
}

let create ?(initial_rto = Timebase.s 15) ?(min_rto = Timebase.ms 200)
    ?(max_rto = Timebase.minutes 2) () =
  if min_rto <= 0 || max_rto < min_rto || initial_rto <= 0 then
    invalid_arg "Rtt.create: bad bounds";
  {
    min_rto;
    max_rto;
    srtt = 0.;
    rttvar = 0.;
    have_sample = false;
    rto = min (max initial_rto min_rto) max_rto;
    samples = 0;
    backoffs = 0;
  }

let clamp t v =
  let v = int_of_float (Float.round v) in
  min t.max_rto (max t.min_rto v)

(* RFC 6298 / Jacobson-Karels: alpha = 1/8, beta = 1/4, RTO = SRTT + 4*RTTVAR.
   The caller enforces Karn's rule by only feeding samples from exchanges
   that were never retransmitted. *)
let observe t sample =
  if sample < 0 then invalid_arg "Rtt.observe: negative sample";
  let r = float_of_int sample in
  if not t.have_sample then begin
    t.srtt <- r;
    t.rttvar <- r /. 2.;
    t.have_sample <- true
  end
  else begin
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. r));
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. r)
  end;
  t.samples <- t.samples + 1;
  t.rto <- clamp t (t.srtt +. (4. *. t.rttvar))

let backoff t =
  t.backoffs <- t.backoffs + 1;
  t.rto <- min t.max_rto (max t.min_rto (t.rto * 2))

let rto t = t.rto

let srtt t = if t.have_sample then Some (int_of_float (Float.round t.srtt)) else None

let samples t = t.samples
