(** The verifier (Vrf): holds the attestation key and the expected benign
    image, and decides whether a report shows tampering.

    Detection is computed, not asserted: the verifier recomputes the exact
    MAC the prover should have produced over the benign image (splicing in
    the reported copies of volatile data regions, per Section 2.3) and
    compares. Malware bytes measured anywhere in code regions make the
    comparison fail. *)

type t

type verdict = Clean | Tampered

val verdict_to_string : verdict -> string

val create :
  ?store:Ra_cache.Store.t ->
  key:Bytes.t ->
  expected_image:Bytes.t ->
  block_size:int ->
  data_blocks:int list ->
  zero_data:bool ->
  unit ->
  t
(** Expected code-block digests are memoised inside the verifier, and when
    [store] is given they are resolved through the fleet-wide
    content-addressed store — so a clean device's blocks are hashed once
    across prover and verifier, not twice. *)

val of_device : Ra_device.Device.t -> t
(** Build the verifier's view from the same provisioning data as the device
    (seed-derived firmware image, shared key, data-region map). The verifier
    never reads the device's live memory. *)

val with_zero_data : t -> bool -> t

val expected_mac : t -> Report.t -> Bytes.t option
(** What the MAC should be for a benign prover; [None] when the report is
    malformed (a volatile block's copy is missing, or an order that is not
    a permutation). *)

val verify : t -> Report.t -> verdict
(** Requires the report to cover all blocks (its order is a permutation). *)

val verify_many : t -> Report.t array -> verdict array
(** Batch {!verify}: derives the MAC key schedule once per hash algorithm
    in the batch and shares it across all reports; expected block digests
    are gathered batch-wise per report (one store lock acquisition,
    interleaved hashing of misses). Verdicts are bit-identical to mapping
    {!verify}; every tag compare stays constant-time. *)

val verify_region : t -> region:int list -> Report.t -> verdict
(** Per-process (TyTAN-style) verification: the report must cover exactly
    [region]'s blocks, in any order, with a matching MAC. *)

val verify_fresh : t -> nonce:Bytes.t -> Report.t -> verdict
(** Additionally requires the report's nonce to equal the challenge. *)
