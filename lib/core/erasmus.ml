open Ra_sim
open Ra_device

type config = {
  mp : Mp.config;
  period : Timebase.t;
  first_at : Timebase.t;
  capacity : int;
  defer_if_app_running : Timebase.t option;
  persistent_log : bool;
}

let default_config =
  {
    mp = Mp.default_config;
    period = Timebase.s 10;
    first_at = Timebase.zero;
    capacity = 32;
    defer_if_app_running = None;
    persistent_log = false;
  }

type t = {
  device : Device.t;
  config : config;
  hooks : Mp.hooks;
  mutable running : bool;
  mutable counter : int;
  mutable reports : Report.t list; (* newest first, clipped to capacity *)
  mutable reports_lost_to_crash : int;
}

let counter_nonce counter =
  let b = Bytes.create 8 in
  Ra_crypto.Bytesutil.store64_be b 0 (Int64.of_int counter);
  b

let store t report =
  let rec clip n = function
    | [] -> []
    | _ when n = 0 -> []
    | r :: rest -> r :: clip (n - 1) rest
  in
  t.reports <- clip t.config.capacity (report :: t.reports)

(* Timers armed before a crash still fire (the engine models the outside
   world), so every scheduled continuation captures the boot epoch and goes
   quiet if the device rebooted in between; the reboot hook re-arms the
   schedule exactly once. *)
let rec measure t =
  if t.running && Device.is_up t.device then begin
    let eng = t.device.Device.engine in
    let ep = Device.epoch t.device in
    let busy_with_higher_priority () =
      match Cpu.running t.device.Device.cpu with
      | Some (_, priority) -> priority > t.config.mp.Mp.priority
      | None -> false
    in
    match t.config.defer_if_app_running with
    | Some delay when busy_with_higher_priority () ->
      Engine.record eng ~tag:"erasmus" "measurement deferred (app running)";
      ignore
        (Engine.schedule_after eng ~delay (fun _ ->
             if Device.epoch t.device = ep then measure t))
    | Some _ | None ->
      t.counter <- t.counter + 1;
      let counter = t.counter in
      Engine.recordf eng ~tag:"erasmus" "self-measurement #%d starts" counter;
      Mp.run t.device
        { t.config.mp with Mp.counter = Some counter }
        ~nonce:(counter_nonce counter) ~hooks:t.hooks
        ~on_complete:(fun report ->
          store t report;
          Engine.recordf eng ~tag:"erasmus" "self-measurement #%d stored" counter)
        ();
      ignore
        (Engine.schedule_after eng ~delay:t.config.period (fun _ ->
             if Device.epoch t.device = ep then measure t))
  end

let start device ?(hooks = Mp.null_hooks) config =
  if config.capacity < 1 then invalid_arg "Erasmus.start: capacity < 1";
  let t =
    {
      device;
      config;
      hooks;
      running = true;
      counter = 0;
      reports = [];
      reports_lost_to_crash = 0;
    }
  in
  (* The monotonic counter is hardware (it survives reboots, which is what
     makes log gaps detectable); the report log is RAM unless the config
     says it is flash-backed. *)
  Device.on_crash device (fun () ->
      if not config.persistent_log then begin
        t.reports_lost_to_crash <-
          t.reports_lost_to_crash + List.length t.reports;
        t.reports <- []
      end);
  Device.on_reboot device (fun () -> if t.running then measure t);
  let ep = Device.epoch device in
  ignore
    (Engine.schedule device.Device.engine ~at:config.first_at (fun _ ->
         if Device.epoch device = ep then measure t));
  t

let stop t = t.running <- false

let stored t = List.rev t.reports

let collect t ~max:limit =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | r :: rest -> r :: take (n - 1) rest
  in
  List.rev (take limit t.reports)

let measurements_taken t = t.counter

let reports_lost_to_crash t = t.reports_lost_to_crash

let on_demand_measure t ~nonce ~on_complete =
  t.counter <- t.counter + 1;
  Mp.run t.device
    { t.config.mp with Mp.counter = Some t.counter }
    ~hooks:t.hooks ~nonce
    ~on_complete:(fun report ->
      store t report;
      on_complete report)
    ()

(* --- collection-time audit ---------------------------------------------- *)

type audit = {
  audit_clean : int;
  audit_tampered : int;
  gaps : (int * int) list;
  out_of_order : int;
}

let audit ?expect_from verifier reports =
  let clean = ref 0 and tampered = ref 0 in
  let gaps = ref [] and out_of_order = ref 0 in
  let prev = ref (Option.map (fun c -> c - 1) expect_from) in
  List.iter
    (fun report ->
      (match Verifier.verify verifier report with
      | Verifier.Clean -> incr clean
      | Verifier.Tampered -> incr tampered);
      match report.Report.counter with
      | None -> incr out_of_order
      | Some c ->
        (match !prev with
        | Some p when c <= p -> incr out_of_order
        | Some p when c > p + 1 -> gaps := (p + 1, c - 1) :: !gaps
        | Some _ | None -> ());
        (match !prev with
        | Some p when c <= p -> () (* keep the high-water mark *)
        | _ -> prev := Some c))
    reports;
  {
    audit_clean = !clean;
    audit_tampered = !tampered;
    gaps = List.rev !gaps;
    out_of_order = !out_of_order;
  }
