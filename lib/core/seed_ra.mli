(** SeED (Section 3.3): non-interactive, prover-initiated attestation.

    Trigger instants are derived pseudorandomly from a seed shared with the
    verifier and kept away from all software on the prover (the paper's
    dedicated timeout circuit). Reports carry a monotonic counter against
    replay; the verifier knows when to expect a report, so a communication
    adversary dropping reports is detected as a gap. *)

open Ra_sim

type config = {
  mp : Mp.config;
  shared_seed : int;
  mean_interval : Timebase.t;
  first_after : Timebase.t;
}

val default_config : config

val schedule : shared_seed:int -> mean_interval:Timebase.t -> first_after:Timebase.t -> count:int -> Timebase.t list
(** The trigger instants both sides derive: each gap is uniform in
    [\[0.5, 1.5\] * mean_interval] from a seed-keyed stream. *)

type prover

val start :
  Ra_device.Device.t ->
  config ->
  send:(Timebase.t * Report.t -> unit) ->
  prover
(** Fires measurements at the schedule instants; [send] models the uplink
    (a lossy channel or the verifier's inbox). The trigger circuit is
    dedicated hardware: it keeps ticking through crashes, so after a reboot
    the next instant fires normally — triggers landing while the device is
    down are counted as {!missed_triggers}, and the verifier observes the
    absent reports as schedule gaps, not as tampering. *)

val stop : prover -> unit

val reports_sent : prover -> int

val missed_triggers : prover -> int
(** Triggers that fired while the device was crashed (no MP could run). *)

(** Verifier-side monitoring. *)

type outcome = {
  accepted : int;
  tampered : int;
  replayed : int;  (** counter not strictly increasing *)
  missing : int;  (** expected instants with no report in tolerance *)
}

val monitor :
  Verifier.t ->
  expected:Timebase.t list ->
  tolerance:Timebase.t ->
  (Timebase.t * Report.t) list ->
  outcome
(** Classify a received stream against the expected schedule. *)
