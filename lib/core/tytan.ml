open Ra_sim
open Ra_device

type process = { name : string; first_block : int; block_span : int }

type config = {
  processes : process list;
  hash : Ra_crypto.Algo.hash;
  priority : int;
}

let partition device ~names =
  let blocks = Memory.block_count device.Device.memory in
  let count = List.length names in
  if count = 0 then invalid_arg "Tytan.partition: no names";
  let base = blocks / count and extra = blocks mod count in
  let _, processes =
    List.fold_left
      (fun (next, acc) (i, name) ->
        let span = base + (if i < extra then 1 else 0) in
        (next + span, { name; first_block = next; block_span = span } :: acc))
      (0, [])
      (List.mapi (fun i n -> (i, n)) names)
  in
  List.rev processes

type hooks = {
  on_region_start : measured:process -> unit;
  on_region_done : measured:process -> unit;
}

let null_hooks =
  { on_region_start = (fun ~measured:_ -> ()); on_region_done = (fun ~measured:_ -> ()) }

let check_partition config blocks =
  let covered = Array.make blocks false in
  List.iter
    (fun p ->
      if p.first_block < 0 || p.block_span < 1 || p.first_block + p.block_span > blocks
      then invalid_arg "Tytan.run: process region out of range";
      for b = p.first_block to p.first_block + p.block_span - 1 do
        if covered.(b) then invalid_arg "Tytan.run: overlapping process regions";
        covered.(b) <- true
      done)
    config.processes;
  if not (Array.for_all (fun c -> c) covered) then
    invalid_arg "Tytan.run: processes do not cover memory"

let region_nonce ~nonce process = Bytes.cat nonce (Bytes.of_string process.name)

let run device config ~nonce ?(hooks = null_hooks) ~on_complete () =
  let mem = device.Device.memory in
  let eng = device.Device.engine in
  let cost = device.Device.config.Device.cost in
  check_partition config (Memory.block_count mem);
  let block_duration =
    Cost_model.hash_time_raw cost config.hash
      ~bytes:device.Device.config.Device.modeled_block_bytes
  in
  let index_bytes i =
    let b = Bytes.create 4 in
    Ra_crypto.Bytesutil.store32_be b 0 i;
    b
  in
  (* Measure one region: an interruptible chain of per-block CPU jobs. *)
  let measure_region process k =
    hooks.on_region_start ~measured:process;
    let t_start = Engine.now eng in
    Engine.recordf eng ~tag:"tytan" "measuring process %s (blocks %d..%d)"
      process.name process.first_block
      (process.first_block + process.block_span - 1);
    let ctx =
      Ra_crypto.Mac_stream.create config.hash ~key:device.Device.config.Device.key
    in
    Ra_crypto.Mac_stream.update ctx (region_nonce ~nonce process);
    let order =
      Array.init process.block_span (fun i -> process.first_block + i)
    in
    let rec step idx =
      if idx >= Array.length order then begin
        let report =
          {
            Report.scheme_name = "TyTAN:" ^ process.name;
            hash = config.hash;
            nonce = region_nonce ~nonce process;
            order;
            mac = Ra_crypto.Mac_stream.finalize ctx;
            data_copy = [];
            t_start;
            t_end = Engine.now eng;
            t_release = Engine.now eng;
            signature = None;
            counter = None;
          }
        in
        hooks.on_region_done ~measured:process;
        k report
      end
      else
        ignore
          (Cpu.submit device.Device.cpu ~name:"tytan-mp" ~priority:config.priority
             ~duration:block_duration
             ~on_complete:(fun () ->
               let block = order.(idx) in
               Ra_crypto.Mac_stream.update ctx (index_bytes block);
               Ra_crypto.Mac_stream.update ctx (Mp.block_digest device config.hash block);
               step (idx + 1))
             ())
    in
    step 0
  in
  let rec regions pending acc =
    match pending with
    | [] -> on_complete (List.rev acc)
    | process :: rest ->
      measure_region process (fun report -> regions rest ((process, report) :: acc))
  in
  regions config.processes []

let verify_all verifier results =
  List.map
    (fun (process, report) ->
      let region =
        List.init process.block_span (fun i -> process.first_block + i)
      in
      (process.name, Verifier.verify_region verifier ~region report))
    results
