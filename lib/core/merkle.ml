(* Complete binary tree in an array: nodes.(1) is the root and node i has
   children 2i and 2i+1; leaves occupy [size, 2*size). The leaf count is
   padded to a power of two with empty-content sentinels. *)

type t = {
  hash : Ra_crypto.Algo.hash;
  size : int; (* padded power-of-two leaf count *)
  real_leaves : int;
  nodes : Bytes.t array;
  mutable digests : int;
}

(* ralint: allow P2 — domain-separation prefixes; only ever read (passed
   to Bytes.concat), never written. *)
let leaf_prefix = Bytes.of_string "\x00"
let node_prefix = Bytes.of_string "\x01"

let leaf_digest t ~index ~content =
  t.digests <- t.digests + 1;
  let ib = Bytes.create 4 in
  Ra_crypto.Bytesutil.store32_be ib 0 index;
  Ra_crypto.Algo.digest t.hash (Bytes.concat Bytes.empty [ leaf_prefix; ib; content ])

let node_digest t left right =
  t.digests <- t.digests + 1;
  Ra_crypto.Algo.digest t.hash (Bytes.concat Bytes.empty [ node_prefix; left; right ])

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

let build hash ~leaves =
  let real_leaves = Array.length leaves in
  if real_leaves = 0 then invalid_arg "Merkle.build: no leaves";
  let size = next_pow2 real_leaves 1 in
  let t =
    { hash; size; real_leaves; nodes = Array.make (2 * size) Bytes.empty; digests = 0 }
  in
  for i = 0 to size - 1 do
    let content = if i < real_leaves then leaves.(i) else Bytes.empty in
    t.nodes.(size + i) <- leaf_digest t ~index:i ~content
  done;
  for i = size - 1 downto 1 do
    t.nodes.(i) <- node_digest t t.nodes.(2 * i) t.nodes.((2 * i) + 1)
  done;
  t

(* Root-only construction: one scratch level of digests, folded in place
   level by level, so aggregating a million leaves allocates O(leaves)
   digests instead of retaining a 2x node array for updates/proofs it
   will never serve. Bit-identical to [root (build hash ~leaves)]. *)
let root_of_leaves hash ~leaves =
  let real_leaves = Array.length leaves in
  if real_leaves = 0 then invalid_arg "Merkle.root_of_leaves: no leaves";
  let size = next_pow2 real_leaves 1 in
  let t = { hash; size; real_leaves; nodes = [||]; digests = 0 } in
  let level =
    Array.init size (fun i ->
        let content = if i < real_leaves then leaves.(i) else Bytes.empty in
        leaf_digest t ~index:i ~content)
  in
  let width = ref size in
  while !width > 1 do
    let w = !width / 2 in
    for i = 0 to w - 1 do
      level.(i) <- node_digest t level.(2 * i) level.((2 * i) + 1)
    done;
    width := w
  done;
  level.(0)

let of_memory hash memory =
  build hash
    ~leaves:
      (Array.init (Ra_device.Memory.block_count memory) (fun i ->
           Ra_device.Memory.read_block memory i))

let leaf_count t = t.real_leaves

let root t = t.nodes.(1)

let check_index t index =
  if index < 0 || index >= t.real_leaves then invalid_arg "Merkle: index out of range"

let update t ~index ~content =
  check_index t index;
  let node = ref (t.size + index) in
  t.nodes.(!node) <- leaf_digest t ~index ~content;
  while !node > 1 do
    node := !node / 2;
    t.nodes.(!node) <- node_digest t t.nodes.(2 * !node) t.nodes.((2 * !node) + 1)
  done

let proof t ~index =
  check_index t index;
  let rec collect node acc =
    if node <= 1 then List.rev acc
    else collect (node / 2) (t.nodes.(node lxor 1) :: acc)
  in
  collect (t.size + index) []

let verify_proof hash ~root:expected ~index ~content ~leaf_count ~proof =
  if index < 0 || index >= leaf_count then false
  else begin
    let size = next_pow2 leaf_count 1 in
    (* a throwaway counter-carrier for the digest helpers *)
    let t =
      { hash; size; real_leaves = leaf_count; nodes = [||]; digests = 0 }
    in
    let rec climb node acc = function
      | [] -> node = 1 && Ra_crypto.Bytesutil.constant_time_equal acc expected
      | sibling :: rest ->
        let parent = node / 2 in
        let combined =
          if node land 1 = 0 then node_digest t acc sibling
          else node_digest t sibling acc
        in
        climb parent combined rest
    in
    climb (size + index) (leaf_digest t ~index ~content) proof
  end

let digests_performed t = t.digests
