(** TCP-style adaptive retransmission timeout (RFC 6298 / Jacobson-Karels).

    A verifier that polls the same prover repeatedly shares one estimator
    across sessions: each clean exchange feeds an RTT sample, the RTO tracks
    [SRTT + 4*RTTVAR], and every retransmission backs the RTO off
    exponentially until an un-retransmitted exchange re-anchors it (Karn's
    rule — the caller must not feed samples from retransmitted exchanges,
    and {!Reliable_protocol.run} does not). *)

open Ra_sim

type t

val create :
  ?initial_rto:Timebase.t -> ?min_rto:Timebase.t -> ?max_rto:Timebase.t -> unit -> t
(** Defaults: initial 15 s (conservative, pre-sample), floor 200 ms,
    ceiling 2 min. *)

val observe : t -> Timebase.t -> unit
(** Feed one RTT sample (request sent to report verified, no
    retransmissions in between). *)

val backoff : t -> unit
(** Double the RTO (capped) — call once per retransmission. *)

val rto : t -> Timebase.t
(** The current retransmission timeout. *)

val srtt : t -> Timebase.t option
(** Smoothed RTT, once at least one sample arrived. *)

val samples : t -> int
